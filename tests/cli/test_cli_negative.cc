/**
 * @file
 * Negative-path tests for the `nsbench serve`/`loadgen` CLI.
 *
 * Each case runs the real binary (path baked in via NSBENCH_CLI_PATH)
 * with an invalid invocation and asserts the contract the chaos tier
 * depends on: a non-zero exit code, a clear one-line message on
 * stderr, and no hang — validation happens before the server spins
 * up, so a bad flag can never leave worker threads behind.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace
{

/** Captured outcome of one CLI invocation. */
struct CliResult
{
    int exitCode = -1;
    std::string output; ///< stdout + stderr, interleaved.
};

/**
 * Runs the nsbench binary with @p args (under optional environment
 * assignments @p env), capturing output and exit code.
 */
CliResult
runCli(const std::string &args, const std::string &env = "")
{
    // 2>&1 folds stderr into the pipe; the tests only assert on
    // message presence, not on which stream carried it.
    std::string command = (env.empty() ? "" : env + " ") +
                          std::string(NSBENCH_CLI_PATH) + " " +
                          args + " 2>&1";
    CliResult result;
    FILE *pipe = popen(command.c_str(), "r");
    if (pipe == nullptr)
        return result;
    std::array<char, 256> buffer;
    while (fgets(buffer.data(), buffer.size(), pipe) != nullptr)
        result.output += buffer.data();
    int status = pclose(pipe);
    if (WIFEXITED(status))
        result.exitCode = WEXITSTATUS(status);
    return result;
}

TEST(CliNegative, UnknownWorkloadFailsFast)
{
    CliResult result =
        runCli("serve --workloads NoSuchThing --duration 0.1");
    EXPECT_EQ(result.exitCode, 1);
    EXPECT_NE(result.output.find("unknown workload"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, ZeroWorkersIsRejectedBeforeServing)
{
    CliResult result = runCli("serve --workers 0 --duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("--workers must be positive"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, ZeroDurationIsRejected)
{
    CliResult result = runCli("serve --duration 0");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("--duration must be positive"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, MalformedFaultSpecIsRejected)
{
    CliResult result =
        runCli("serve --faults serve.worker.run --duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("--faults:"), std::string::npos)
        << result.output;
}

TEST(CliNegative, UnknownFailpointSiteIsRejected)
{
    CliResult result =
        runCli("serve --faults not.a.site=0.5 --duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("unknown failpoint site"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, OutOfRangeProbabilityIsRejected)
{
    CliResult result =
        runCli("serve --faults serve.worker.run=1.5 --duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("probability"), std::string::npos)
        << result.output;
}

TEST(CliNegative, NegativeRetriesIsRejected)
{
    CliResult result =
        runCli("serve --retries -1 --duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("--retries must be >= 0"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, OutOfRangeShedFractionIsRejected)
{
    CliResult result =
        runCli("serve --shed-at 1.5 --duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("--shed-at must be in [0, 1]"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, ZeroClientsClosedLoopIsRejected)
{
    CliResult result =
        runCli("serve --clients 0 --duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("--clients must be positive"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, ZeroDelayFaultSuffixIsRejected)
{
    // `~0` would silently disable the delay action; the parser must
    // refuse it rather than arm a no-op schedule.
    CliResult result = runCli(
        "serve --faults serve.worker.run=0.5~0 --duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("'~' delay must be positive"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, NonNumericDelayFaultSuffixIsRejected)
{
    CliResult result = runCli(
        "serve --faults serve.worker.run=0.5~fast --duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("'~' needs a number"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, OutOfRangeHedgeBudgetIsRejected)
{
    CliResult result =
        runCli("route --backends 127.0.0.1:1 --hedge-budget 1.5 "
               "--duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("--hedge-budget must be in [0, 1]"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, InvertedHedgeDelayClampIsRejected)
{
    CliResult result = runCli(
        "route --listen 127.0.0.1:0 --backends 127.0.0.1:1 "
        "--hedge-min-delay-us 5000 --hedge-max-delay-us 1000 "
        "--duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("--hedge-min-delay-us must not "
                                 "exceed"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, BreakerLatencyFactorMustExceedOne)
{
    // A factor <= 1 would trip on any backend at or below the
    // reference latency — i.e. on perfectly healthy ones.
    CliResult result = runCli(
        "route --backends 127.0.0.1:1 --breaker-latency-factor 1.0 "
        "--duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find(
                  "--breaker-latency-factor must be > 1"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, NegativeSojournTargetIsRejected)
{
    CliResult result =
        runCli("serve --target-sojourn-us -5 --duration 0.1");
    EXPECT_EQ(result.exitCode, 2);
    EXPECT_NE(result.output.find("--target-sojourn-us must be >= 0"),
              std::string::npos)
        << result.output;
}

TEST(CliNegative, MalformedEnvSpecWarnsAndServesCleanly)
{
    // A bad NSBENCH_FAILPOINTS value must not kill the binary —
    // library init warns and stays disarmed (CI sets the variable
    // fleet-wide; one typo must not fail every job).
    CliResult result =
        runCli("serve --workloads LNN --duration 0.1 --clients 1",
               "NSBENCH_FAILPOINTS=nonsense");
    EXPECT_EQ(result.exitCode, 0) << result.output;
}

} // namespace
