/**
 * @file
 * Remainder-handling regressions for the VSA codebook sweeps.
 *
 * The cleanup nearest-neighbour sweep chunks the entry list by a
 * work-derived grain and combines per-chunk winners in index order.
 * With small atom dimensions the grain lands in the hundreds, so a
 * codebook with entries % grain != 0 ends on a partial chunk — a path
 * no seed test reached. The winner must be found wherever it lives,
 * including inside that tail chunk, and ties must resolve to the
 * earliest entry exactly as the serial sweep would.
 */

#include <gtest/gtest.h>

#include "tensor/tensor.hh"
#include "util/rng.hh"
#include "util/threadpool.hh"
#include "vsa/codebook.hh"

namespace
{

using namespace nsbench;
using nsbench::tensor::Tensor;
using nsbench::util::Rng;

// grainFor(2 * d) with d = 64 gives a 256-entry chunk; 700 entries
// make two full chunks plus a partial tail. (The dimension must stay
// large enough that random bipolar atoms are collision-free: at
// d = 16 a codebook this size contains duplicate atoms and the
// earliest duplicate legitimately wins the sweep.)
constexpr int64_t kDim = 64;
constexpr int64_t kEntries = 700;
constexpr int64_t kSweepGrain = 256;

TEST(CodebookTails, WinnerInPartialTailChunk)
{
    Rng rng{401};
    vsa::Codebook book(kEntries, kDim, rng);
    // Query each region: first chunk, a middle chunk, and deep inside
    // the partial tail chunk.
    for (int64_t target : {int64_t{3}, kSweepGrain + 7,
                           2 * kSweepGrain + (kEntries - 1 -
                                              2 * kSweepGrain)}) {
        Tensor query = book.atom(target);
        auto result = book.cleanup(query);
        EXPECT_EQ(result.index, target);
        EXPECT_NEAR(result.similarity, 1.0f, 1e-5f);
    }
}

TEST(CodebookTails, TieResolvesToEarliestEntry)
{
    Rng rng{402};
    // Duplicate one atom across a chunk boundary: rows are copied so
    // similarities tie exactly, and the serial rule (first strict
    // maximum) must pick the earlier entry at any width.
    Tensor atoms = Tensor::bipolar({kEntries, kDim}, rng);
    auto pa = atoms.data();
    auto d = static_cast<size_t>(kDim);
    // Entry 5 duplicated into the tail chunk and at the very end.
    for (int64_t dup : {2 * kSweepGrain + 11, kEntries - 1}) {
        std::copy(&pa[5 * d], &pa[6 * d],
                  &pa[static_cast<size_t>(dup) * d]);
    }
    vsa::Codebook book(atoms);
    auto result = book.cleanup(book.atom(5));
    EXPECT_EQ(result.index, 5);
}

TEST(CodebookTails, StableAcrossWidths)
{
    Rng rng{403};
    vsa::Codebook book(kEntries, kDim, rng);
    Tensor query = book.atom(2 * kSweepGrain + 42);

    util::ThreadPool::setGlobalThreads(1);
    auto want = book.cleanup(query);
    for (int width : {2, 4, 13}) {
        util::ThreadPool::setGlobalThreads(width);
        auto got = book.cleanup(query);
        EXPECT_EQ(got.index, want.index) << "width " << width;
        EXPECT_EQ(got.similarity, want.similarity)
            << "width " << width;
    }
    util::ThreadPool::setGlobalThreads(0);
}

} // namespace
