#include <gtest/gtest.h>

#include <cmath>

#include "core/profiler.hh"
#include "vsa/codebook.hh"
#include "vsa/ops.hh"
#include "vsa/resonator.hh"

namespace
{

using namespace nsbench::vsa;
using nsbench::tensor::Tensor;
using nsbench::util::Rng;

TEST(Codebook, AtomsAreBipolarAndStable)
{
    Rng rng(1);
    Codebook book(16, 256, rng);
    EXPECT_EQ(book.entries(), 16);
    EXPECT_EQ(book.dim(), 256);
    EXPECT_EQ(book.bytes(), 16u * 256 * 4);
    Tensor a0 = book.atom(0);
    for (float v : a0.data())
        EXPECT_TRUE(v == 1.0f || v == -1.0f);
    Tensor again = book.atom(0);
    for (int64_t i = 0; i < 256; i++)
        EXPECT_EQ(a0(i), again(i));
}

TEST(Codebook, CleanupFindsExactAtom)
{
    Rng rng(2);
    Codebook book(32, 1024, rng);
    for (int64_t e : {0L, 7L, 31L}) {
        auto res = book.cleanup(book.atom(e));
        EXPECT_EQ(res.index, e);
        EXPECT_NEAR(res.similarity, 1.0f, 1e-5);
    }
}

TEST(Codebook, CleanupToleratesNoise)
{
    Rng rng(3);
    Codebook book(32, 2048, rng);
    Tensor noisy = book.atom(5);
    // Flip 20% of positions.
    auto data = noisy.data();
    for (size_t i = 0; i < data.size(); i += 5)
        data[i] = -data[i];
    auto res = book.cleanup(noisy);
    EXPECT_EQ(res.index, 5);
    EXPECT_GT(res.similarity, 0.5f);
}

TEST(Codebook, EncodeDecodeRoundTripOnPeakedPmf)
{
    Rng rng(4);
    Codebook book(24, 2048, rng);
    Tensor pmf = Tensor::zeros({24});
    pmf(3) = 0.8f;
    pmf(10) = 0.2f;
    Tensor hv = book.encodePmf(pmf);
    Tensor decoded = book.decodePmf(hv);
    // The dominant entry survives the round trip.
    int64_t best = 0;
    for (int64_t e = 1; e < 24; e++) {
        if (decoded(e) > decoded(best))
            best = e;
    }
    EXPECT_EQ(best, 3);
    // Decoded PMF sums to one.
    float sum = 0.0f;
    for (int64_t e = 0; e < 24; e++)
        sum += decoded(e);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(Codebook, EncodeSkipsBelowThreshold)
{
    Rng rng(5);
    Codebook book(8, 512, rng);
    Tensor pmf = Tensor::zeros({8});
    pmf(2) = 1.0f;
    Tensor hv = book.encodePmf(pmf);
    // Encoding a one-hot PMF reproduces the atom exactly.
    EXPECT_FLOAT_EQ(cosineSimilarity(hv, book.atom(2)), 1.0f);
}

TEST(Codebook, SparsityRecordedUnderStageLabel)
{
    auto &prof = nsbench::core::globalProfiler();
    prof.reset();
    Rng rng(6);
    Codebook book(20, 256, rng);
    Tensor pmf = Tensor::zeros({20});
    pmf(0) = 1.0f; // 19/20 zeros
    book.encodePmf(pmf, "pmf_to_vsa/test");
    auto recs = prof.sparsityRecords();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].stage, "pmf_to_vsa/test");
    EXPECT_DOUBLE_EQ(recs[0].ratio(), 0.95);
    prof.reset();
}

TEST(Codebook, DecodeThresholdSparsifies)
{
    auto &prof = nsbench::core::globalProfiler();
    prof.reset();
    Rng rng(7);
    Codebook book(64, 2048, rng);
    Tensor pmf = Tensor::zeros({64});
    pmf(9) = 1.0f;
    Tensor hv = book.encodePmf(pmf);
    // With a positive threshold, random-atom similarities clamp to 0.
    Tensor decoded = book.decodePmf(hv, "vsa_to_pmf/test", 0.1f);
    EXPECT_NEAR(decoded(9), 1.0f, 1e-4);
    auto recs = prof.sparsityRecords();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_GT(recs[0].ratio(), 0.9);
    prof.reset();
}

TEST(Resonator, FactorizesTwoFactorProduct)
{
    Rng rng(8);
    Codebook book_a(8, 1024, rng);
    Codebook book_b(8, 1024, rng);
    Tensor composite = bind(book_a.atom(3), book_b.atom(5));
    auto result = factorize(composite, {&book_a, &book_b});
    EXPECT_TRUE(result.converged);
    ASSERT_EQ(result.factors.size(), 2u);
    EXPECT_EQ(result.factors[0], 3);
    EXPECT_EQ(result.factors[1], 5);
}

TEST(Resonator, FactorizesThreeFactorProduct)
{
    Rng rng(9);
    Codebook a(6, 2048, rng), b(6, 2048, rng), c(6, 2048, rng);
    Tensor composite = bind(bind(a.atom(1), b.atom(4)), c.atom(2));
    auto result = factorize(composite, {&a, &b, &c});
    ASSERT_EQ(result.factors.size(), 3u);
    EXPECT_EQ(result.factors[0], 1);
    EXPECT_EQ(result.factors[1], 4);
    EXPECT_EQ(result.factors[2], 2);
}

TEST(CodebookDeath, BadSizes)
{
    Rng rng(1);
    EXPECT_DEATH(Codebook(0, 16, rng), "non-positive");
    Codebook book(4, 16, rng);
    EXPECT_DEATH(book.atom(4), "out of range");
    Tensor wrong = Tensor::zeros({3});
    EXPECT_DEATH(book.encodePmf(wrong), "length");
    EXPECT_DEATH(book.decodePmf(wrong), "dimension mismatch");
}

} // namespace
