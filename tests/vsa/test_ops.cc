#include <gtest/gtest.h>

#include <cmath>

#include "vsa/fft.hh"
#include "vsa/ops.hh"

namespace
{

using namespace nsbench::vsa;
using nsbench::tensor::Tensor;
using nsbench::util::Rng;

TEST(VsaOps, RandomHypervectorIsBipolar)
{
    Rng rng(1);
    Tensor hv = randomHypervector(256, rng);
    EXPECT_EQ(hv.numel(), 256);
    for (float v : hv.data())
        EXPECT_TRUE(v == 1.0f || v == -1.0f);
}

TEST(VsaOps, BindIsSelfInverseForBipolar)
{
    Rng rng(2);
    Tensor a = randomHypervector(512, rng);
    Tensor b = randomHypervector(512, rng);
    Tensor bound = bind(a, b);
    Tensor recovered = unbind(bound, b);
    EXPECT_FLOAT_EQ(cosineSimilarity(recovered, a), 1.0f);
    EXPECT_FLOAT_EQ(hammingSimilarity(recovered, a), 1.0f);
}

TEST(VsaOps, BindingDecorrelates)
{
    Rng rng(3);
    Tensor a = randomHypervector(2048, rng);
    Tensor b = randomHypervector(2048, rng);
    Tensor bound = bind(a, b);
    // The bound vector is quasi-orthogonal to both factors.
    EXPECT_LT(std::abs(cosineSimilarity(bound, a)), 0.1f);
    EXPECT_LT(std::abs(cosineSimilarity(bound, b)), 0.1f);
}

TEST(VsaOps, RandomVectorsQuasiOrthogonal)
{
    Rng rng(4);
    Tensor a = randomHypervector(4096, rng);
    Tensor b = randomHypervector(4096, rng);
    EXPECT_LT(std::abs(cosineSimilarity(a, b)), 0.08f);
    EXPECT_NEAR(hammingSimilarity(a, b), 0.5f, 0.05f);
}

TEST(VsaOps, BundlePreservesMemberSimilarity)
{
    Rng rng(5);
    std::vector<Tensor> members;
    for (int i = 0; i < 5; i++)
        members.push_back(randomHypervector(2048, rng));
    Tensor super = bundleMajority(members);
    Tensor outsider = randomHypervector(2048, rng);
    for (const auto &m : members) {
        EXPECT_GT(cosineSimilarity(super, m), 0.2f);
        EXPECT_GT(cosineSimilarity(super, m),
                  std::abs(cosineSimilarity(super, outsider)) + 0.1f);
    }
}

TEST(VsaOps, BundleIsElementwiseSum)
{
    Tensor a({3}, {1, -1, 1});
    Tensor b({3}, {1, 1, -1});
    Tensor s = bundle({a, b});
    EXPECT_EQ(s(0), 2.0f);
    EXPECT_EQ(s(1), 0.0f);
    EXPECT_EQ(s(2), 0.0f);
    Tensor m = bundleMajority({a, b});
    EXPECT_EQ(m(0), 1.0f);
    EXPECT_EQ(m(1), 1.0f); // ties break to +1
}

TEST(VsaOps, PermuteShiftRoundTrip)
{
    Rng rng(6);
    Tensor a = randomHypervector(128, rng);
    Tensor p = permuteShift(a, 13);
    EXPECT_LT(std::abs(cosineSimilarity(p, a)), 0.3f);
    Tensor back = permuteShift(p, -13);
    EXPECT_FLOAT_EQ(cosineSimilarity(back, a), 1.0f);
}

TEST(VsaOps, PermuteShiftExactPlacement)
{
    Tensor a({4}, {1, 2, 3, 4});
    Tensor p = permuteShift(a, 1);
    EXPECT_EQ(p(0), 4.0f);
    EXPECT_EQ(p(1), 1.0f);
    EXPECT_EQ(p(3), 3.0f);
    // Shifts are modular.
    Tensor q = permuteShift(a, 5);
    for (int64_t i = 0; i < 4; i++)
        EXPECT_EQ(q(i), p(i));
}

TEST(VsaOps, CircularConvolutionKnownValues)
{
    Tensor a({3}, {1, 2, 3});
    Tensor b({3}, {4, 5, 6});
    Tensor c = circularConvolve(a, b);
    // c[k] = sum_j a[j] b[(k-j) mod 3]
    EXPECT_FLOAT_EQ(c(0), 1 * 4 + 2 * 6 + 3 * 5); // 31
    EXPECT_FLOAT_EQ(c(1), 1 * 5 + 2 * 4 + 3 * 6); // 31
    EXPECT_FLOAT_EQ(c(2), 1 * 6 + 2 * 5 + 3 * 4); // 28
}

TEST(VsaOps, CircularConvolutionCommutes)
{
    Rng rng(7);
    Tensor a = Tensor::randn({64}, rng);
    Tensor b = Tensor::randn({64}, rng);
    Tensor ab = circularConvolve(a, b);
    Tensor ba = circularConvolve(b, a);
    for (int64_t i = 0; i < 64; i++)
        EXPECT_NEAR(ab(i), ba(i), 1e-3);
}

TEST(VsaOps, CircularCorrelationUnbindsHrr)
{
    Rng rng(8);
    // Unit-norm random vectors make correlation an approximate inverse.
    Tensor a = Tensor::randn({1024}, rng, 0.0f,
                             1.0f / std::sqrt(1024.0f));
    Tensor b = Tensor::randn({1024}, rng, 0.0f,
                             1.0f / std::sqrt(1024.0f));
    Tensor bound = circularConvolve(a, b);
    Tensor recovered = circularCorrelate(b, bound);
    EXPECT_GT(cosineSimilarity(recovered, a), 0.6f);
}

TEST(VsaOps, FftMatchesNaiveConvolution)
{
    Rng rng(9);
    Tensor a = Tensor::randn({256}, rng);
    Tensor b = Tensor::randn({256}, rng);
    Tensor naive = circularConvolve(a, b);
    Tensor fast = fftCircularConvolve(a, b);
    for (int64_t i = 0; i < 256; i++)
        EXPECT_NEAR(naive(i), fast(i), 1e-2);
}

TEST(Fft, RoundTrip)
{
    std::vector<std::complex<double>> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    fft(v, false);
    fft(v, true);
    for (size_t i = 0; i < v.size(); i++) {
        EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-9);
        EXPECT_NEAR(v[i].imag(), 0.0, 1e-9);
    }
}

TEST(Fft, PowerOfTwoCheck)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(VsaOps, UnitaryVectorHasUnitNormAndUnitSpectrum)
{
    Rng rng(21);
    Tensor u = unitaryVector(512, rng);
    double norm = 0.0;
    for (float v : u.data())
        norm += static_cast<double>(v) * v;
    EXPECT_NEAR(norm, 1.0, 1e-6);
    // Convolving two unitary vectors preserves the norm exactly.
    Tensor w = unitaryVector(512, rng);
    Tensor c = circularConvolve(u, w);
    double cnorm = 0.0;
    for (float v : c.data())
        cnorm += static_cast<double>(v) * v;
    EXPECT_NEAR(cnorm, 1.0, 1e-4);
}

TEST(VsaOps, ConvPowerGroupLaws)
{
    Rng rng(22);
    Tensor base = unitaryVector(256, rng);
    // Power 0 is the convolution identity.
    Tensor p0 = convPower(base, 0);
    Tensor conv_with_identity = circularConvolve(base, p0);
    EXPECT_GT(cosineSimilarity(conv_with_identity, base), 0.999f);
    // p(a) (*) p(b) = p(a+b).
    Tensor p2 = convPower(base, 2);
    Tensor p3 = convPower(base, 3);
    Tensor p5 = convPower(base, 5);
    Tensor prod = circularConvolve(p2, p3);
    EXPECT_GT(cosineSimilarity(prod, p5), 0.999f);
    // Negative powers invert.
    Tensor pm2 = convPower(base, -2);
    Tensor identity = circularConvolve(p2, pm2);
    EXPECT_GT(cosineSimilarity(identity, p0), 0.999f);
}

TEST(VsaOps, ConvPowersAreQuasiOrthogonal)
{
    Rng rng(23);
    Tensor base = unitaryVector(2048, rng);
    Tensor p1 = convPower(base, 1);
    Tensor p2 = convPower(base, 2);
    Tensor p7 = convPower(base, 7);
    EXPECT_LT(std::abs(cosineSimilarity(p1, p2)), 0.1f);
    EXPECT_LT(std::abs(cosineSimilarity(p1, p7)), 0.1f);
    EXPECT_LT(std::abs(cosineSimilarity(p2, p7)), 0.1f);
}

class ConvPowerSweep : public testing::TestWithParam<int>
{
};

TEST_P(ConvPowerSweep, FractionalPowerEncodingRoundTrip)
{
    // Encoding value v as base^(v+1) and shifting by d lands exactly
    // on base^(v+d+1) — the algebra NVSA's progression rules use.
    Rng rng(24);
    Tensor base = unitaryVector(1024, rng);
    int v = GetParam();
    Tensor atom = convPower(base, v + 1);
    for (int d : {-2, -1, 1, 2}) {
        if (v + d < 0)
            continue;
        Tensor shifted =
            circularConvolve(atom, convPower(base, d));
        Tensor expected = convPower(base, v + d + 1);
        EXPECT_GT(cosineSimilarity(shifted, expected), 0.999f)
            << "v=" << v << " d=" << d;
    }
}

INSTANTIATE_TEST_SUITE_P(Values, ConvPowerSweep,
                         testing::Values(0, 2, 5, 8));

TEST(VsaOpsDeath, DimensionChecks)
{
    Rng rng(1);
    Tensor a = randomHypervector(8, rng);
    Tensor b = randomHypervector(16, rng);
    EXPECT_DEATH(bind(a, b), "equal-dimension");
    EXPECT_DEATH(bundle({}), "no vectors");
    Tensor c = randomHypervector(12, rng);
    Tensor d = randomHypervector(12, rng);
    EXPECT_DEATH(fftCircularConvolve(c, d), "power of 2");
}

} // namespace
