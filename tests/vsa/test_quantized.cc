#include <gtest/gtest.h>

#include <cmath>

#include "vsa/ops.hh"
#include "vsa/quantized.hh"

namespace
{

using namespace nsbench::vsa;
using nsbench::tensor::Tensor;
using nsbench::util::Rng;

TEST(QuantizedCodebook, QuarterTheMemory)
{
    Rng rng(1);
    Codebook fp32(128, 1024, rng);
    QuantizedCodebook int8(fp32);
    EXPECT_EQ(int8.entries(), 128);
    EXPECT_EQ(int8.dim(), 1024);
    EXPECT_LT(int8.bytes(), fp32.bytes() / 3);
}

TEST(QuantizedCodebook, BipolarAtomsQuantizeExactly)
{
    // Bipolar atoms have only two magnitudes, so INT8 is lossless.
    Rng rng(2);
    Codebook fp32(16, 256, rng);
    QuantizedCodebook int8(fp32);
    for (int64_t e : {0L, 7L, 15L}) {
        Tensor original = fp32.atom(e);
        Tensor restored = int8.dequantizeAtom(e);
        for (int64_t i = 0; i < 256; i++)
            EXPECT_NEAR(restored(i), original(i), 1e-6);
    }
}

TEST(QuantizedCodebook, CleanupMatchesFp32OnCleanQueries)
{
    Rng rng(3);
    Codebook fp32(64, 1024, rng);
    QuantizedCodebook int8(fp32);
    for (int64_t e = 0; e < 64; e += 7) {
        auto exact = int8.cleanup(fp32.atom(e));
        EXPECT_EQ(exact.index, e);
        EXPECT_NEAR(exact.similarity, 1.0f, 1e-3);
    }
}

class QuantizedNoise : public testing::TestWithParam<double>
{
};

TEST_P(QuantizedNoise, RobustnessTracksFp32)
{
    double flip = GetParam();
    Rng rng(4);
    Codebook fp32(48, 2048, rng);
    QuantizedCodebook int8(fp32);

    int agree = 0, fp32_correct = 0, int8_correct = 0;
    const int trials = 40;
    for (int t = 0; t < trials; t++) {
        auto idx = rng.uniformInt(0, 47);
        Tensor noisy = fp32.atom(idx);
        auto data = noisy.data();
        for (float &v : data) {
            if (rng.bernoulli(flip))
                v = -v;
        }
        auto a = fp32.cleanup(noisy);
        auto b = int8.cleanup(noisy);
        if (a.index == b.index)
            agree++;
        if (a.index == idx)
            fp32_correct++;
        if (b.index == idx)
            int8_correct++;
    }
    // INT8 matches FP32 decisions nearly always and loses almost no
    // accuracy — the Recommendation 3 claim.
    EXPECT_GE(agree, trials * 9 / 10);
    EXPECT_GE(int8_correct, fp32_correct - 2);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, QuantizedNoise,
                         testing::Values(0.1, 0.25, 0.35));

TEST(QuantizedCodebook, WorksOnRealValuedAtoms)
{
    // Fractional-power atoms are real-valued, not bipolar.
    Rng rng(5);
    Tensor base = unitaryVector(512, rng);
    Tensor atoms({8, 512});
    for (int v = 0; v < 8; v++) {
        Tensor atom = convPower(base, v + 1);
        for (int64_t i = 0; i < 512; i++)
            atoms(v, i) = atom(i);
    }
    Codebook fp32(std::move(atoms));
    QuantizedCodebook int8(fp32);
    for (int64_t e = 0; e < 8; e++) {
        auto res = int8.cleanup(fp32.atom(e));
        EXPECT_EQ(res.index, e);
        EXPECT_GT(res.similarity, 0.98f);
    }
}

TEST(QuantizedCodebookDeath, DimensionMismatch)
{
    Rng rng(6);
    Codebook fp32(8, 64, rng);
    QuantizedCodebook int8(fp32);
    Tensor wrong = Tensor::zeros({32});
    EXPECT_DEATH(int8.cleanup(wrong), "dimension mismatch");
    EXPECT_DEATH(int8.dequantizeAtom(9), "out of range");
}

} // namespace
