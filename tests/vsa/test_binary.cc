#include <gtest/gtest.h>

#include "vsa/binary.hh"
#include "vsa/ops.hh"

namespace
{

using namespace nsbench::vsa;
using nsbench::tensor::Tensor;
using nsbench::util::Rng;

TEST(BinaryVector, BitAccessAndPacking)
{
    BinaryVector v(100);
    EXPECT_EQ(v.dim(), 100);
    EXPECT_EQ(v.words().size(), 2u);
    EXPECT_EQ(v.bytes(), 16u);
    v.setBit(0, true);
    v.setBit(63, true);
    v.setBit(64, true);
    v.setBit(99, true);
    EXPECT_TRUE(v.bit(0));
    EXPECT_TRUE(v.bit(63));
    EXPECT_TRUE(v.bit(64));
    EXPECT_TRUE(v.bit(99));
    EXPECT_FALSE(v.bit(1));
    v.setBit(63, false);
    EXPECT_FALSE(v.bit(63));
}

TEST(BinaryVector, PackedIsThirtyTwoTimesSmallerThanFp32)
{
    Rng rng(1);
    BinaryVector v = BinaryVector::random(2048, rng);
    EXPECT_EQ(v.bytes() * 32, 2048u * 4);
}

TEST(BinaryVector, TensorRoundTrip)
{
    Rng rng(2);
    Tensor bipolar = Tensor::bipolar({70}, rng);
    BinaryVector v = BinaryVector::fromTensor(bipolar);
    Tensor back = v.toBipolarTensor();
    for (int64_t i = 0; i < 70; i++)
        EXPECT_EQ(back(i), bipolar(i));
}

TEST(BinaryOps, XorBindSelfInverse)
{
    Rng rng(3);
    BinaryVector a = BinaryVector::random(512, rng);
    BinaryVector b = BinaryVector::random(512, rng);
    BinaryVector bound = xorBind(a, b);
    EXPECT_EQ(xorBind(bound, b), a);
    EXPECT_EQ(xorBind(bound, a), b);
    // Bound vector is quasi-orthogonal to its factors.
    EXPECT_NEAR(binarySimilarity(bound, a), 0.5, 0.08);
}

TEST(BinaryOps, RandomVectorsHalfSimilar)
{
    Rng rng(4);
    BinaryVector a = BinaryVector::random(4096, rng);
    BinaryVector b = BinaryVector::random(4096, rng);
    EXPECT_NEAR(binarySimilarity(a, b), 0.5, 0.05);
    EXPECT_EQ(hammingDistance(a, a), 0);
    EXPECT_NEAR(binarySimilarity(a, a), 1.0, 1e-12);
}

TEST(BinaryOps, MajorityPreservesMembers)
{
    Rng rng(5);
    std::vector<BinaryVector> members;
    for (int i = 0; i < 5; i++)
        members.push_back(BinaryVector::random(2048, rng));
    BinaryVector bundle = majorityBundle(members);
    BinaryVector outsider = BinaryVector::random(2048, rng);
    for (const auto &m : members) {
        EXPECT_GT(binarySimilarity(bundle, m), 0.6);
        EXPECT_GT(binarySimilarity(bundle, m),
                  binarySimilarity(bundle, outsider) + 0.05);
    }
}

TEST(BinaryOps, MajorityExactSmallCase)
{
    BinaryVector a(4), b(4), c(4);
    a.setBit(0, true);
    a.setBit(1, true);
    b.setBit(1, true);
    c.setBit(1, true);
    c.setBit(2, true);
    BinaryVector m = majorityBundle({a, b, c});
    EXPECT_FALSE(m.bit(0)); // 1 of 3
    EXPECT_TRUE(m.bit(1));  // 3 of 3
    EXPECT_FALSE(m.bit(2)); // 1 of 3
    EXPECT_FALSE(m.bit(3)); // 0 of 3

    // Even count with a tie obeys the tie rule.
    BinaryVector d(4);
    d.setBit(0, true);
    BinaryVector tie_hi = majorityBundle({a, d}, true);
    EXPECT_TRUE(tie_hi.bit(1)); // 1 of 2, tie -> 1
    BinaryVector tie_lo = majorityBundle({a, d}, false);
    EXPECT_FALSE(tie_lo.bit(1));
}

TEST(BinaryOps, RotationRoundTripAndDecorrelation)
{
    Rng rng(6);
    BinaryVector a = BinaryVector::random(1000, rng);
    BinaryVector r = rotateBits(a, 137);
    EXPECT_NEAR(binarySimilarity(r, a), 0.5, 0.06);
    EXPECT_EQ(rotateBits(r, -137), a);
    EXPECT_EQ(rotateBits(a, 1000), a); // modular
}

TEST(BinaryCodebook, CleanupRecoversNoisyAtoms)
{
    Rng rng(7);
    BinaryCodebook book(64, 2048, rng);
    EXPECT_EQ(book.bytes(), 64u * 2048 / 8);
    for (int64_t e : {0L, 31L, 63L}) {
        BinaryVector noisy = book.atom(e);
        // Flip 25% of the bits.
        for (int64_t i = 0; i < noisy.dim(); i += 4)
            noisy.setBit(i, !noisy.bit(i));
        auto result = book.cleanup(noisy);
        EXPECT_EQ(result.index, e);
        EXPECT_NEAR(result.similarity, 0.75f, 0.02f);
    }
}

TEST(BinaryCodebook, BindCleanupPipeline)
{
    // The classic VSA key-value demo, fully in packed binary form.
    Rng rng(8);
    BinaryCodebook values(32, 2048, rng);
    BinaryVector key = BinaryVector::random(2048, rng);
    BinaryVector record = xorBind(key, values.atom(17));
    BinaryVector retrieved = xorBind(record, key);
    EXPECT_EQ(values.cleanup(retrieved).index, 17);
}

TEST(BinaryOpsDeath, Validations)
{
    Rng rng(9);
    BinaryVector a = BinaryVector::random(64, rng);
    BinaryVector b = BinaryVector::random(128, rng);
    EXPECT_DEATH(xorBind(a, b), "dimension mismatch");
    EXPECT_DEATH(hammingDistance(a, b), "dimension mismatch");
    EXPECT_DEATH(a.bit(64), "out of range");
    EXPECT_DEATH(majorityBundle({}), "no vectors");
}

} // namespace
