/**
 * @file
 * Scalar-vs-AVX2 equivalence for the VSA hot loops.
 *
 * Property-based over randomized hypervector dimensions (odd sizes,
 * non-multiples of the 8-lane float width and the 64-bit word width,
 * dimension-1 edge cases): bipolar bind/bundle/majority, cosine and
 * Hamming similarity, codebook encode/decode/cleanup, and the packed
 * binary XOR/popcount paths. Bit/integer kernels must match exactly;
 * float reductions within 1e-5 relative tolerance; winner indices from
 * cleanup sweeps exactly. Each comparison also runs the SIMD backend
 * at pool widths 1/4/13 (oversubscribed) to pin thread-count
 * independence.
 */

#include <gtest/gtest.h>

#include <cmath>

#include <functional>
#include <vector>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"
#include "vsa/binary.hh"
#include "vsa/codebook.hh"
#include "vsa/ops.hh"

namespace
{

using namespace nsbench;
using nsbench::tensor::Tensor;
using nsbench::util::Rng;
using nsbench::util::ThreadPool;
namespace simd = nsbench::util::simd;

const std::vector<int> kSimdWidths = {1, 4, 13};

// Dimensions straddling the 8-lane float width and the 64-bit packed
// word width.
const std::vector<int64_t> kEdgeDims = {1,  2,  7,  8,   9,   15,
                                        16, 63, 64, 65,  127, 128,
                                        130, 255, 257, 1000};

double
relDiff(double got, double want)
{
    double denom = std::max(std::abs(want), 1.0);
    return std::abs(got - want) / denom;
}

class VsaSimdEquivalence : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!simd::avx2Supported())
            GTEST_SKIP() << "host lacks AVX2; scalar-only build path "
                            "already covered by the seed suite";
    }

    ~VsaSimdEquivalence() override
    {
        simd::resetBackend();
        ThreadPool::setGlobalThreads(0);
    }

    void
    expectTensorBitEqual(const std::function<Tensor()> &fn)
    {
        simd::setBackend(simd::Backend::Scalar);
        ThreadPool::setGlobalThreads(1);
        Tensor expect = fn();

        simd::setBackend(simd::Backend::Avx2);
        for (int width : kSimdWidths) {
            ThreadPool::setGlobalThreads(width);
            Tensor got = fn();
            ASSERT_EQ(got.shape(), expect.shape());
            for (int64_t i = 0; i < got.numel(); i++)
                ASSERT_EQ(got.flat(i), expect.flat(i))
                    << "width " << width << " elem " << i;
        }
        simd::resetBackend();
        ThreadPool::setGlobalThreads(0);
    }

    void
    expectTensorClose(const std::function<Tensor()> &fn,
                      double rtol = 1e-5)
    {
        simd::setBackend(simd::Backend::Scalar);
        ThreadPool::setGlobalThreads(1);
        Tensor expect = fn();

        simd::setBackend(simd::Backend::Avx2);
        for (int width : kSimdWidths) {
            ThreadPool::setGlobalThreads(width);
            Tensor got = fn();
            ASSERT_EQ(got.shape(), expect.shape());
            for (int64_t i = 0; i < got.numel(); i++)
                ASSERT_LE(relDiff(got.flat(i), expect.flat(i)), rtol)
                    << "width " << width << " elem " << i << ": got "
                    << got.flat(i) << " want " << expect.flat(i);
        }
        simd::resetBackend();
        ThreadPool::setGlobalThreads(0);
    }

    void
    expectValueClose(const std::function<double()> &fn,
                     double rtol = 1e-5)
    {
        simd::setBackend(simd::Backend::Scalar);
        ThreadPool::setGlobalThreads(1);
        double expect = fn();

        simd::setBackend(simd::Backend::Avx2);
        for (int width : kSimdWidths) {
            ThreadPool::setGlobalThreads(width);
            double got = fn();
            ASSERT_LE(relDiff(got, expect), rtol)
                << "width " << width << ": got " << got << " want "
                << expect;
        }
        simd::resetBackend();
        ThreadPool::setGlobalThreads(0);
    }

    void
    expectValueExact(const std::function<double()> &fn)
    {
        expectValueClose(fn, 0.0);
    }

    int64_t
    randomDim()
    {
        if (rng.bernoulli(0.5)) {
            return kEdgeDims[static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(kEdgeDims.size()) - 1))];
        }
        return rng.uniformInt(1, 600);
    }

    Rng rng{424242};
};

TEST_F(VsaSimdEquivalence, BipolarBindBundle)
{
    for (int trial = 0; trial < 20; trial++) {
        int64_t d = randomDim();
        Tensor a = vsa::randomHypervector(d, rng);
        Tensor b = vsa::randomHypervector(d, rng);
        std::vector<Tensor> bundle_set;
        int count = static_cast<int>(rng.uniformInt(1, 7));
        for (int i = 0; i < count; i++)
            bundle_set.push_back(vsa::randomHypervector(d, rng));

        // Products of +-1 and order-preserved sums are exact in both
        // backends, so bind/bundle/majority must match bit-for-bit.
        expectTensorBitEqual([&] { return vsa::bind(a, b); });
        expectTensorBitEqual([&] { return vsa::unbind(a, b); });
        expectTensorBitEqual([&] { return vsa::bundle(bundle_set); });
        expectTensorBitEqual(
            [&] { return vsa::bundleMajority(bundle_set); });
    }
}

TEST_F(VsaSimdEquivalence, Similarities)
{
    for (int trial = 0; trial < 20; trial++) {
        int64_t d = randomDim();
        Tensor a = Tensor::randn({d}, rng);
        Tensor b = Tensor::randn({d}, rng);
        expectValueClose([&] {
            return static_cast<double>(vsa::cosineSimilarity(a, b));
        });
        // Sign agreement is a bit test: exact on both backends.
        expectValueExact([&] {
            return static_cast<double>(vsa::hammingSimilarity(a, b));
        });
    }
}

TEST_F(VsaSimdEquivalence, SimilarityNegativeZero)
{
    // -0.0f must count as "sign >= 0" in both backends, exactly as
    // the historical scalar test `a[i] >= 0.0f`.
    Tensor a({9});
    Tensor b({9});
    for (int64_t i = 0; i < 9; i++) {
        a(i) = (i % 3 == 0) ? -0.0f : ((i % 3 == 1) ? 1.0f : -1.0f);
        b(i) = 0.0f;
    }
    expectValueExact([&] {
        return static_cast<double>(vsa::hammingSimilarity(a, b));
    });
}

TEST_F(VsaSimdEquivalence, CodebookEncodeDecode)
{
    for (int trial = 0; trial < 8; trial++) {
        int64_t d = randomDim();
        int64_t entries = rng.uniformInt(2, 40);
        Rng cb_rng{1000 + static_cast<uint64_t>(trial)};
        vsa::Codebook book(entries, d, cb_rng);

        Tensor pmf = Tensor::rand({entries}, rng, 0.0f, 1.0f);
        // encodePmf is FMA-fused on the SIMD path.
        expectTensorClose([&] { return book.encodePmf(pmf); });

        Tensor hv = Tensor::randn({d}, rng);
        expectTensorClose([&] { return book.decodePmf(hv); });
    }
}

TEST_F(VsaSimdEquivalence, CodebookCleanupWinner)
{
    for (int trial = 0; trial < 8; trial++) {
        int64_t d = randomDim();
        int64_t entries = rng.uniformInt(2, 40);
        Rng cb_rng{2000 + static_cast<uint64_t>(trial)};
        vsa::Codebook book(entries, d, cb_rng);

        // Query near a known atom: the winner is well-separated, so
        // the index must agree even though similarities are compared
        // at slightly different roundings.
        int64_t target = rng.uniformInt(0, entries - 1);
        Tensor noise = Tensor::randn({d}, rng, 0.0f, 0.1f);
        Tensor query = tensor::add(book.atom(target), noise);

        expectValueExact([&] {
            return static_cast<double>(book.cleanup(query).index);
        });
        expectValueClose([&] {
            return static_cast<double>(book.cleanup(query).similarity);
        });
    }
}

TEST_F(VsaSimdEquivalence, BinaryPackedExact)
{
    for (int trial = 0; trial < 20; trial++) {
        int64_t d = randomDim();
        vsa::BinaryVector a = vsa::BinaryVector::random(d, rng);
        vsa::BinaryVector b = vsa::BinaryVector::random(d, rng);

        expectValueExact([&] {
            return static_cast<double>(vsa::hammingDistance(a, b));
        });
        expectValueExact([&] {
            vsa::BinaryVector bound = vsa::xorBind(a, b);
            return static_cast<double>(
                vsa::hammingDistance(bound, a));
        });
    }
}

TEST_F(VsaSimdEquivalence, BinaryCleanupExact)
{
    for (int trial = 0; trial < 6; trial++) {
        int64_t d = randomDim();
        int64_t entries = rng.uniformInt(2, 32);
        Rng cb_rng{3000 + static_cast<uint64_t>(trial)};
        vsa::BinaryCodebook book(entries, d, cb_rng);

        vsa::BinaryVector query = vsa::BinaryVector::random(d, rng);
        // Popcount distances are integers: index AND similarity must
        // both be exactly equal across backends.
        expectValueExact([&] {
            return static_cast<double>(book.cleanup(query).index);
        });
        expectValueExact([&] {
            return static_cast<double>(
                book.cleanup(query).similarity);
        });
    }
}

TEST_F(VsaSimdEquivalence, BinaryEdgeDims)
{
    // Tail words (dim % 64 != 0) carry masked-off high bits; the
    // 256-bit popcount path must agree with the per-word path on the
    // word-granular remainder.
    for (int64_t d : kEdgeDims) {
        vsa::BinaryVector a = vsa::BinaryVector::random(d, rng);
        vsa::BinaryVector b = vsa::BinaryVector::random(d, rng);
        expectValueExact([&] {
            return static_cast<double>(vsa::hammingDistance(a, b));
        });
    }
}

} // namespace
