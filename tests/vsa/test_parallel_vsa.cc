/**
 * @file
 * Parallel-vs-serial equivalence for the VSA hot paths.
 *
 * The codebook sweeps, bundling and resonator iterations are
 * parallelized over dimension or entry slices with a fixed traversal
 * order per output element, so every result must be bit-identical to
 * the width-1 run at any pool width.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "tensor/tensor.hh"
#include "util/rng.hh"
#include "util/threadpool.hh"
#include "vsa/codebook.hh"
#include "vsa/ops.hh"
#include "vsa/resonator.hh"

namespace
{

using namespace nsbench;
using nsbench::tensor::Tensor;
using nsbench::util::Rng;
using nsbench::util::ThreadPool;

const std::vector<int> kWidths = {1, 2, 4, 13};

class VsaParallelEquivalence : public testing::Test
{
  protected:
    ~VsaParallelEquivalence() override
    {
        ThreadPool::setGlobalThreads(0);
    }

    void
    expectTensorStable(const std::function<Tensor()> &fn)
    {
        ThreadPool::setGlobalThreads(1);
        Tensor expect = fn();
        for (int width : kWidths) {
            ThreadPool::setGlobalThreads(width);
            Tensor got = fn();
            ASSERT_EQ(got.shape(), expect.shape());
            for (int64_t i = 0; i < got.numel(); i++)
                EXPECT_EQ(got.flat(i), expect.flat(i))
                    << "width " << width << " elem " << i;
        }
    }

    Rng rng{99};
};

TEST_F(VsaParallelEquivalence, CodebookCleanup)
{
    vsa::Codebook book(257, 4096, rng);
    // A noisy atom: cleanup must find the same winner with the same
    // similarity at every width.
    Tensor query = vsa::bundle(
        {book.atom(123), vsa::randomHypervector(4096, rng)});
    ThreadPool::setGlobalThreads(1);
    auto expect = book.cleanup(query);
    EXPECT_EQ(expect.index, 123);
    for (int width : kWidths) {
        ThreadPool::setGlobalThreads(width);
        auto got = book.cleanup(query);
        EXPECT_EQ(got.index, expect.index) << "width " << width;
        EXPECT_EQ(got.similarity, expect.similarity)
            << "width " << width;
    }
}

TEST_F(VsaParallelEquivalence, CodebookCleanupTiedQuery)
{
    // An all-zeros query makes every similarity zero: the argmax rule
    // (first strict max) must still pick the same atom at every width.
    vsa::Codebook book(64, 512, rng);
    Tensor query(tensor::Shape{512});
    ThreadPool::setGlobalThreads(1);
    auto expect = book.cleanup(query);
    for (int width : kWidths) {
        ThreadPool::setGlobalThreads(width);
        auto got = book.cleanup(query);
        EXPECT_EQ(got.index, expect.index) << "width " << width;
    }
}

TEST_F(VsaParallelEquivalence, CodebookEncodeDecode)
{
    vsa::Codebook book(128, 2048, rng);
    Tensor pmf(tensor::Shape{128});
    for (int64_t i = 0; i < 128; i++)
        pmf.flat(i) = (i % 3 == 0) ? 1.0f / 43.0f : 0.0f;
    Tensor hv = vsa::randomHypervector(2048, rng);
    expectTensorStable([&] { return book.encodePmf(pmf); });
    expectTensorStable([&] { return book.decodePmf(hv); });
}

TEST_F(VsaParallelEquivalence, BundleAndBind)
{
    std::vector<Tensor> vectors;
    for (int i = 0; i < 9; i++)
        vectors.push_back(vsa::randomHypervector(8192, rng));
    expectTensorStable([&] { return vsa::bundle(vectors); });
    expectTensorStable([&] { return vsa::bundleMajority(vectors); });
    expectTensorStable(
        [&] { return vsa::bind(vectors[0], vectors[1]); });
}

TEST_F(VsaParallelEquivalence, CircularConvolution)
{
    Tensor a = vsa::randomHypervector(1024, rng);
    Tensor b = vsa::randomHypervector(1024, rng);
    expectTensorStable([&] { return vsa::circularConvolve(a, b); });
    expectTensorStable([&] { return vsa::circularCorrelate(a, b); });
}

TEST_F(VsaParallelEquivalence, ResonatorFactorization)
{
    // The resonator's sims sweeps and recombine steps are parallel;
    // the factorization must land on the same factors in the same
    // number of iterations at every width.
    vsa::Codebook b0(16, 2048, rng);
    vsa::Codebook b1(16, 2048, rng);
    vsa::Codebook b2(16, 2048, rng);
    std::vector<const vsa::Codebook *> books = {&b0, &b1, &b2};
    Tensor composite = vsa::bind(
        vsa::bind(b0.atom(3), b1.atom(7)), b2.atom(11));

    ThreadPool::setGlobalThreads(1);
    auto expect = vsa::factorize(composite, books);
    ASSERT_TRUE(expect.converged);
    EXPECT_EQ(expect.factors, (std::vector<int64_t>{3, 7, 11}));

    for (int width : kWidths) {
        ThreadPool::setGlobalThreads(width);
        auto got = vsa::factorize(composite, books);
        EXPECT_EQ(got.factors, expect.factors) << "width " << width;
        EXPECT_EQ(got.iterations, expect.iterations)
            << "width " << width;
        EXPECT_EQ(got.converged, expect.converged)
            << "width " << width;
    }
}

} // namespace
