#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/arena.hh"

namespace
{

using nsbench::util::Arena;
using nsbench::util::ArenaStats;

TEST(ArenaClassTest, RoundsUpToPowerOfTwoClasses)
{
    EXPECT_EQ(Arena::classBytesFor(0), Arena::kMinClassBytes);
    EXPECT_EQ(Arena::classBytesFor(1), Arena::kMinClassBytes);
    EXPECT_EQ(Arena::classBytesFor(Arena::kMinClassBytes),
              Arena::kMinClassBytes);
    EXPECT_EQ(Arena::classBytesFor(Arena::kMinClassBytes + 1),
              2 * Arena::kMinClassBytes);
    EXPECT_EQ(Arena::classBytesFor(4096), 4096u);
    EXPECT_EQ(Arena::classBytesFor(5000), 8192u);
    EXPECT_EQ(Arena::classBytesFor(1u << 20), 1u << 20);
}

TEST(ArenaTest, ReleasedBlockIsReused)
{
    Arena arena;
    auto first = arena.acquire(1000);
    ASSERT_NE(first.ptr, nullptr);
    EXPECT_EQ(first.classBytes, 1024u);
    EXPECT_FALSE(first.recycled);

    arena.release(first.ptr, first.classBytes);
    auto second = arena.acquire(900); // same 1024-byte class
    EXPECT_EQ(second.ptr, first.ptr);
    EXPECT_TRUE(second.recycled);

    ArenaStats s = arena.stats();
    EXPECT_EQ(s.freshAllocs, 1u);
    EXPECT_EQ(s.reusedAllocs, 1u);
    EXPECT_EQ(s.releases, 1u);
    EXPECT_EQ(s.recycledBytes, 1024u);
    EXPECT_EQ(s.allocs(), 2u);
    arena.release(second.ptr, second.classBytes);
}

TEST(ArenaTest, ClassesDoNotMix)
{
    Arena arena;
    auto small = arena.acquire(100); // 256-byte class
    arena.release(small.ptr, small.classBytes);

    auto large = arena.acquire(300); // 512-byte class: pool miss
    EXPECT_FALSE(large.recycled);
    EXPECT_EQ(large.classBytes, 512u);
    EXPECT_EQ(arena.stats().freshAllocs, 2u);
    arena.release(large.ptr, large.classBytes);
}

TEST(ArenaTest, BlocksAreCacheLineAligned)
{
    Arena arena;
    auto block = arena.acquire(64);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(block.ptr) % 64, 0u);
    // The full class capacity is writable.
    std::memset(block.ptr, 0xAB, block.classBytes);
    arena.release(block.ptr, block.classBytes);
}

TEST(ArenaTest, TrimDropsPooledBlocks)
{
    Arena arena;
    auto a = arena.acquire(1000);
    auto b = arena.acquire(5000);
    arena.release(a.ptr, a.classBytes);
    arena.release(b.ptr, b.classBytes);

    ArenaStats before = arena.stats();
    EXPECT_EQ(before.pooledBytes, 1024u + 8192u);
    EXPECT_EQ(before.capacityBytes, 1024u + 8192u);

    arena.trim();
    ArenaStats after = arena.stats();
    EXPECT_EQ(after.pooledBytes, 0u);
    EXPECT_EQ(after.capacityBytes, 0u);

    // The pool is empty again: the next acquire must be fresh.
    auto c = arena.acquire(1000);
    EXPECT_FALSE(c.recycled);
    arena.release(c.ptr, c.classBytes);
}

TEST(ArenaTest, ResetStatsKeepsGauges)
{
    Arena arena;
    auto a = arena.acquire(1000);
    arena.release(a.ptr, a.classBytes);

    arena.resetStats();
    ArenaStats s = arena.stats();
    EXPECT_EQ(s.freshAllocs, 0u);
    EXPECT_EQ(s.reusedAllocs, 0u);
    EXPECT_EQ(s.releases, 0u);
    EXPECT_EQ(s.recycledBytes, 0u);
    // Gauges describe memory still owned, which a counter reset
    // must not pretend away.
    EXPECT_EQ(s.capacityBytes, 1024u);
    EXPECT_EQ(s.pooledBytes, 1024u);
    arena.trim();
}

TEST(ArenaTest, ReleaseRejectsNonArenaBlocks)
{
    Arena arena;
    int dummy = 0;
    EXPECT_DEATH(arena.release(&dummy, 100), "not an arena block");
    EXPECT_DEATH(arena.release(nullptr, 256), "not an arena block");
}

} // namespace
