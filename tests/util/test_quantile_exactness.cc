/**
 * @file
 * Exactness bounds for the P² streaming quantile estimators.
 *
 * The serving SLO report quotes p50/p95/p99 from util::P2Quantile /
 * util::TailStats, which hold five markers instead of the sample set.
 * These tests pin the estimator against the sorted-exact quantile on
 * three distribution shapes and document the error bound the report
 * can rely on:
 *
 *  - uniform:        relative error <= 2%  at p50/p95/p99
 *  - Zipf-skewed:    relative error <= 10% (heavy tail, the
 *                    latency-like shape the server actually sees)
 *  - bimodal:        relative error <= 10% (cache-hit/miss mixtures;
 *                    quantiles falling inside a mode stay tight, the
 *                    bound covers quantiles near the mode gap)
 *
 * The bounds are empirical over the fixed seeds below with n = 20000
 * samples per stream — comfortably looser than observed error, tight
 * enough that a marker-update regression trips them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hh"
#include "util/stats.hh"

namespace
{

using namespace nsbench;

constexpr size_t kSamples = 20000;

/** Exact quantile of @p sorted by the nearest-rank method. */
double
exactQuantile(const std::vector<double> &sorted, double q)
{
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    rank = std::min(std::max<size_t>(rank, 1), sorted.size());
    return sorted[rank - 1];
}

/** Relative error of @p estimate against @p exact. */
double
relativeError(double estimate, double exact)
{
    if (exact == 0.0)
        return std::fabs(estimate);
    return std::fabs(estimate - exact) / std::fabs(exact);
}

/**
 * Streams @p samples through TailStats and asserts every tracked
 * quantile lands within @p bound relative error of sorted-exact.
 */
void
expectWithin(std::vector<double> samples, double bound,
             const char *shape)
{
    util::TailStats tails;
    for (double x : samples)
        tails.add(x);
    std::sort(samples.begin(), samples.end());
    struct Point
    {
        double q;
        double estimate;
    };
    const Point points[] = {{0.50, tails.p50()},
                            {0.95, tails.p95()},
                            {0.99, tails.p99()}};
    for (const Point &point : points) {
        double exact = exactQuantile(samples, point.q);
        EXPECT_LE(relativeError(point.estimate, exact), bound)
            << shape << " p" << point.q * 100 << ": estimate "
            << point.estimate << " vs exact " << exact;
    }
}

TEST(QuantileExactness, UniformStreamWithinTwoPercent)
{
    util::Rng rng(2024);
    std::vector<double> samples;
    samples.reserve(kSamples);
    for (size_t i = 0; i < kSamples; i++)
        samples.push_back(rng.uniformDouble() * 100.0);
    expectWithin(std::move(samples), 0.02, "uniform");
}

TEST(QuantileExactness, ZipfSkewedStreamWithinTenPercent)
{
    // Latency-shaped heavy tail: x = u^-alpha spans three decades,
    // most mass near the floor, rare large outliers — the worst
    // realistic case for a five-marker estimator.
    util::Rng rng(77);
    std::vector<double> samples;
    samples.reserve(kSamples);
    for (size_t i = 0; i < kSamples; i++) {
        double u = 1.0 - rng.uniformDouble(); // (0, 1]
        samples.push_back(std::pow(u, -0.8));
    }
    expectWithin(std::move(samples), 0.10, "zipf");
}

TEST(QuantileExactness, BimodalStreamWithinTenPercent)
{
    // Cache-hit/miss mixture: 70% of samples near 1ms, 30% near
    // 20ms. p50 sits inside the fast mode, p95/p99 inside the slow
    // mode; the P² markers must not average across the gap.
    util::Rng rng(13);
    std::vector<double> samples;
    samples.reserve(kSamples);
    for (size_t i = 0; i < kSamples; i++) {
        bool fast = rng.uniformDouble() < 0.7;
        double center = fast ? 1.0 : 20.0;
        samples.push_back(center + rng.uniformDouble());
    }
    expectWithin(std::move(samples), 0.10, "bimodal");
}

TEST(QuantileExactness, SingleQuantileMatchesTailStats)
{
    // P2Quantile standalone agrees with the same quantile inside
    // TailStats — the composite adds no drift.
    util::Rng rng(5);
    util::P2Quantile p99(0.99);
    util::TailStats tails;
    for (size_t i = 0; i < kSamples; i++) {
        double x = rng.uniformDouble() * 10.0;
        p99.add(x);
        tails.add(x);
    }
    EXPECT_DOUBLE_EQ(p99.value(), tails.p99());
}

TEST(QuantileExactness, SmallStreamsFallBackExactly)
{
    // With five or fewer samples P² holds the raw values, so the
    // estimate is exact.
    util::P2Quantile median(0.5);
    for (double x : {5.0, 1.0, 4.0, 2.0, 3.0})
        median.add(x);
    EXPECT_DOUBLE_EQ(median.value(), 3.0);
}

} // namespace
