#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "util/threadpool.hh"

namespace
{

using nsbench::util::grainFor;
using nsbench::util::ThreadPool;

/** Restores the default global pool width when a test exits. */
struct WidthGuard
{
    ~WidthGuard() { ThreadPool::setGlobalThreads(0); }
};

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (int width : {1, 2, 4, 13}) {
        ThreadPool pool(width);
        std::vector<std::atomic<int>> hits(1000);
        pool.parallelFor(0, 1000, 7, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; i++)
                hits[static_cast<size_t>(i)]++;
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "width " << width;
    }
}

TEST(ThreadPool, RespectsGrainChunking)
{
    ThreadPool pool(4);
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> ranges;
    pool.parallelFor(0, 100, 30, [&](int64_t lo, int64_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        ranges.emplace_back(lo, hi);
    });
    // 100 items at grain 30 -> chunks [0,30) [30,60) [60,90) [90,100).
    ASSERT_EQ(ranges.size(), 4u);
    std::sort(ranges.begin(), ranges.end());
    EXPECT_EQ(ranges[0], (std::pair<int64_t, int64_t>{0, 30}));
    EXPECT_EQ(ranges[3], (std::pair<int64_t, int64_t>{90, 100}));
}

TEST(ThreadPool, EmptyRangeRunsNothing)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, 1, [&](int64_t, int64_t) { calls++; });
    pool.parallelFor(7, 3, 1, [&](int64_t, int64_t) { calls++; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, NestedRegionsSerializeInline)
{
    ThreadPool pool(4);
    std::atomic<int64_t> total{0};
    pool.parallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; i++) {
            EXPECT_TRUE(ThreadPool::inParallelRegion());
            // A nested region must not deadlock and must still cover
            // its whole range.
            pool.parallelFor(0, 10, 2,
                             [&](int64_t nlo, int64_t nhi) {
                                 total += nhi - nlo;
                             });
        }
    });
    EXPECT_EQ(total.load(), 80);
    EXPECT_FALSE(ThreadPool::inParallelRegion());
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 100, 1,
                         [&](int64_t lo, int64_t) {
                             if (lo == 57)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must stay usable after a failed region.
    std::atomic<int> ok{0};
    pool.parallelFor(0, 10, 1, [&](int64_t, int64_t) { ok++; });
    EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, ChunkedSumsMatchAcrossWidths)
{
    // The determinism contract: identical chunk grid -> identical
    // partials -> identical combined result at every width.
    std::vector<float> values(100000);
    for (size_t i = 0; i < values.size(); i++)
        values[i] = 0.001f * static_cast<float>(i % 997) - 0.3f;

    auto chunked_sum = [&](ThreadPool &pool) {
        constexpr int64_t grain = 1024;
        auto n = static_cast<int64_t>(values.size());
        int64_t chunks = (n + grain - 1) / grain;
        std::vector<double> partials(static_cast<size_t>(chunks));
        pool.parallelFor(0, chunks, 1, [&](int64_t c0, int64_t c1) {
            for (int64_t c = c0; c < c1; c++) {
                double s = 0.0;
                int64_t hi = std::min(n, (c + 1) * grain);
                for (int64_t i = c * grain; i < hi; i++)
                    s += values[static_cast<size_t>(i)];
                partials[static_cast<size_t>(c)] = s;
            }
        });
        double acc = 0.0;
        for (double p : partials)
            acc += p;
        return acc;
    };

    ThreadPool serial(1);
    double expect = chunked_sum(serial);
    for (int width : {2, 4, 8, 29}) {
        ThreadPool pool(width);
        EXPECT_EQ(chunked_sum(pool), expect) << "width " << width;
    }
}

TEST(ThreadPool, GlobalWidthConfiguration)
{
    WidthGuard guard;
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::globalThreads(), 3);
    EXPECT_EQ(ThreadPool::global().threads(), 3);
    ThreadPool::setGlobalThreads(0);
    EXPECT_EQ(ThreadPool::globalThreads(),
              ThreadPool::defaultThreads());
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

TEST(ThreadPool, GrainForTargetsWork)
{
    EXPECT_EQ(grainFor(1.0, 1000.0), 1000);
    EXPECT_EQ(grainFor(500.0, 1000.0), 2);
    EXPECT_EQ(grainFor(1e9, 1000.0), 1);  // Huge items: chunk of one.
    EXPECT_GE(grainFor(0.0, 1000.0), 1);  // Degenerate weight.
}

TEST(ThreadPool, DestructionOrderingAfterRegions)
{
    // Regression for the shutdown contract the serve drain path
    // relies on: once parallelFor has returned, the pool is
    // quiescent and may be destroyed immediately — no grace period,
    // no lingering worker touching the dead region. Tight
    // create/use/destroy cycles flush out destructor races.
    for (int cycle = 0; cycle < 50; cycle++) {
        ThreadPool pool(4);
        std::atomic<int64_t> sum{0};
        pool.parallelFor(0, 256, 8, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; i++)
                sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 256 * 255 / 2);
        // Destructor runs here, immediately after the region.
    }
}

TEST(ThreadPool, DestructionOfIdlePool)
{
    // Pools that never ran a region must also tear down cleanly.
    for (int cycle = 0; cycle < 50; cycle++)
        ThreadPool pool(8);
}

TEST(ThreadPool, SerialScopeForcesInlineExecution)
{
    ThreadPool pool(4);
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    {
        ThreadPool::SerialScope serial;
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        // Inside the scope every lane must run on the calling
        // thread: record the executing thread of each chunk.
        std::thread::id self = std::this_thread::get_id();
        std::atomic<bool> foreign{false};
        pool.parallelFor(0, 1000, 7, [&](int64_t, int64_t) {
            if (std::this_thread::get_id() != self)
                foreign.store(true);
        });
        EXPECT_FALSE(foreign.load());
    }
    EXPECT_FALSE(ThreadPool::inParallelRegion());
}

TEST(ThreadPool, SerialScopeNests)
{
    ThreadPool::SerialScope outer;
    {
        ThreadPool::SerialScope inner;
        EXPECT_TRUE(ThreadPool::inParallelRegion());
    }
    // The inner scope must restore, not clear, the region flag.
    EXPECT_TRUE(ThreadPool::inParallelRegion());
}

TEST(ThreadPool, ConcurrentSerialScopesStayIsolated)
{
    // Two threads under SerialScope issuing parallelFor at the same
    // time: both must run inline without touching the shared pool
    // (this is exactly the serve worker configuration).
    ThreadPool pool(4);
    auto worker = [&](std::vector<int64_t> *out) {
        ThreadPool::SerialScope serial;
        out->assign(2000, 0);
        pool.parallelFor(0, 2000, 13, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; i++)
                (*out)[static_cast<size_t>(i)] = i * 7;
        });
    };
    std::vector<int64_t> a, b;
    std::thread ta(worker, &a);
    std::thread tb(worker, &b);
    ta.join();
    tb.join();
    for (int64_t i = 0; i < 2000; i++) {
        ASSERT_EQ(a[static_cast<size_t>(i)], i * 7);
        ASSERT_EQ(b[static_cast<size_t>(i)], i * 7);
    }
}

TEST(ThreadPool, OversubscribedPoolStillCorrect)
{
    // Far more lanes than hardware threads: purely a correctness
    // check of the lane hand-off under heavy contention.
    ThreadPool pool(32);
    std::vector<int64_t> out(5000, 0);
    pool.parallelFor(0, 5000, 11, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; i++)
            out[static_cast<size_t>(i)] = i * 3;
    });
    for (int64_t i = 0; i < 5000; i++)
        EXPECT_EQ(out[static_cast<size_t>(i)], i * 3);
}

} // namespace
