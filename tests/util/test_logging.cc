#include <gtest/gtest.h>

#include "util/logging.hh"

namespace
{

using namespace nsbench::util;

TEST(Logging, ThresholdRoundTrip)
{
    LogLevel before = logThreshold();
    setLogThreshold(LogLevel::Debug);
    EXPECT_EQ(logThreshold(), LogLevel::Debug);
    setLogThreshold(before);
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("test warning");
    inform("test info");
    SUCCEED();
}

TEST(Logging, PanicIfFalseIsNoOp)
{
    panicIf(false, "must not fire");
    fatalIf(false, "must not fire");
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("intentional"), "intentional");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), testing::ExitedWithCode(1),
                "bad config");
}

TEST(LoggingDeath, PanicIfTrueFires)
{
    EXPECT_DEATH(panicIf(true, "condition hit"), "condition hit");
}

} // namespace
