#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace
{

using namespace nsbench::util;

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name    value"), std::string::npos);
    EXPECT_NE(out.find("longer  22"), std::string::npos);
    EXPECT_NE(out.find("------"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"k", "v"});
    t.addRow({"plain", "has,comma"});
    t.addRow({"quote\"inside", "x"});
    std::ostringstream os;
    t.printCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("k,v\n"), std::string::npos);
    EXPECT_NE(out.find("plain,\"has,comma\"\n"), std::string::npos);
    EXPECT_NE(out.find("\"quote\"\"inside\",x\n"), std::string::npos);
}

TEST(Table, CsvQuoteRules)
{
    EXPECT_EQ(csvQuote("simple"), "simple");
    EXPECT_EQ(csvQuote("a,b"), "\"a,b\"");
    EXPECT_EQ(csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvQuote("line\nbreak"), "\"line\nbreak\"");
}

TEST(TableDeath, RowSizeMismatch)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cell count");
}

TEST(TableDeath, NoColumns)
{
    EXPECT_DEATH(Table(std::vector<std::string>{}), "at least one");
}

} // namespace
