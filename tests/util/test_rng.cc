#include <gtest/gtest.h>

#include <set>

#include "util/rng.hh"

namespace
{

using namespace nsbench::util;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++) {
        if (a.uniformInt(0, 1 << 30) == b.uniformInt(0, 1 << 30))
            same++;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; i++) {
        float v = rng.uniform(-2.0f, 3.0f);
        EXPECT_GE(v, -2.0f);
        EXPECT_LT(v, 3.0f);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; i++) {
        int64_t v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; i++) {
        double v = rng.normal(1.0f, 2.0f);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, BipolarBalance)
{
    Rng rng(13);
    int plus = 0;
    const int n = 10000;
    for (int i = 0; i < n; i++) {
        float v = rng.bipolar();
        EXPECT_TRUE(v == 1.0f || v == -1.0f);
        if (v > 0)
            plus++;
    }
    EXPECT_NEAR(static_cast<double>(plus) / n, 0.5, 0.05);
}

TEST(Rng, CategoricalRespectsWeights)
{
    Rng rng(17);
    std::vector<double> w{0.0, 1.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 12000;
    for (int i = 0; i < n; i++)
        counts[rng.categorical(w)]++;
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(Rng, ChoiceAndShuffleCoverage)
{
    Rng rng(19);
    std::vector<int> v{1, 2, 3, 4, 5};
    std::set<int> picked;
    for (int i = 0; i < 200; i++)
        picked.insert(rng.choice(v));
    EXPECT_EQ(picked.size(), 5u);

    std::vector<int> shuffled = v;
    rng.shuffle(shuffled);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(shuffled.begin(), shuffled.end());
    EXPECT_EQ(a, b);
}

TEST(RngDeath, EmptyChoicePanics)
{
    Rng rng(1);
    std::vector<int> empty;
    EXPECT_DEATH(rng.choice(empty), "empty");
}

} // namespace
