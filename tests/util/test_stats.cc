#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hh"

namespace
{

using namespace nsbench::util;

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    // Population variance is 4; sample variance 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStat, SingleSampleVarianceIsZero)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 4
    h.add(-3.0);  // clamps to bin 0
    h.add(42.0);  // clamps to bin 4
    h.add(5.0);   // bin 2 (exact edge rounds into upper bin)
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(4), 2u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

TEST(HistogramDeath, RejectsBadRange)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "hi must exceed lo");
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "at least one bin");
}

TEST(Percentile, EmptyReturnsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, MedianAndExtremes)
{
    std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

} // namespace
