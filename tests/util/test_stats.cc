#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "util/stats.hh"

namespace
{

using namespace nsbench::util;

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    // Population variance is 4; sample variance 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStat, SingleSampleVarianceIsZero)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 4
    h.add(-3.0);  // clamps to bin 0
    h.add(42.0);  // clamps to bin 4
    h.add(5.0);   // bin 2 (exact edge rounds into upper bin)
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(4), 2u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

TEST(HistogramDeath, RejectsBadRange)
{
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "hi must exceed lo");
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "at least one bin");
}

TEST(Percentile, EmptyReturnsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, MedianAndExtremes)
{
    std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(P2Quantile, EmptyReturnsZero)
{
    P2Quantile q(0.5);
    EXPECT_EQ(q.count(), 0u);
    EXPECT_DOUBLE_EQ(q.value(), 0.0);
}

TEST(P2Quantile, SmallSamplesAreExact)
{
    // Up to five samples the estimator must agree exactly with the
    // sorted-sample percentile it is standing in for.
    std::vector<double> samples{9.0, 1.0, 7.0, 3.0, 5.0};
    for (double p : {0.25, 0.5, 0.9}) {
        P2Quantile q(p);
        std::vector<double> seen;
        for (double x : samples) {
            q.add(x);
            seen.push_back(x);
            EXPECT_DOUBLE_EQ(q.value(), percentile(seen, p * 100.0))
                << "quantile " << p << " after " << seen.size()
                << " samples";
        }
    }
}

TEST(P2Quantile, TracksUniformRamp)
{
    // 0..9999 shuffled deterministically; the p-quantile of the
    // uniform ramp is ~p * 10000.
    std::vector<double> samples;
    for (int i = 0; i < 10000; i++)
        samples.push_back(static_cast<double>(i));
    std::mt19937_64 engine(123);
    std::shuffle(samples.begin(), samples.end(), engine);

    for (double p : {0.5, 0.95, 0.99}) {
        P2Quantile q(p);
        for (double x : samples)
            q.add(x);
        double exact = percentile(samples, p * 100.0);
        // P^2 is an estimate; 2% of the value range is the accuracy
        // the serve latency tails need.
        EXPECT_NEAR(q.value(), exact, 200.0)
            << "quantile " << p;
    }
}

TEST(P2Quantile, TracksHeavyTail)
{
    // Exponential-ish tail, the shape serve latencies actually have.
    std::mt19937_64 engine(7);
    std::exponential_distribution<double> dist(1.0 / 5.0);
    std::vector<double> samples;
    P2Quantile p99(0.99);
    for (int i = 0; i < 20000; i++) {
        double x = dist(engine);
        samples.push_back(x);
        p99.add(x);
    }
    double exact = percentile(samples, 99.0);
    EXPECT_NEAR(p99.value(), exact, 0.15 * exact);
}

TEST(P2Quantile, Deterministic)
{
    // Same sample sequence, same estimate — bit for bit.
    auto run = [] {
        P2Quantile q(0.95);
        std::mt19937_64 engine(42);
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        for (int i = 0; i < 5000; i++)
            q.add(dist(engine));
        return q.value();
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(P2QuantileDeath, RejectsDegenerateQuantile)
{
    EXPECT_DEATH(P2Quantile(0.0), "strictly in");
    EXPECT_DEATH(P2Quantile(1.0), "strictly in");
}

TEST(TailStats, CombinesMomentsAndTails)
{
    TailStats t;
    for (int i = 1; i <= 1000; i++)
        t.add(static_cast<double>(i));
    EXPECT_EQ(t.count(), 1000u);
    EXPECT_DOUBLE_EQ(t.mean(), 500.5);
    EXPECT_DOUBLE_EQ(t.min(), 1.0);
    EXPECT_DOUBLE_EQ(t.max(), 1000.0);
    EXPECT_NEAR(t.p50(), 500.0, 25.0);
    EXPECT_NEAR(t.p95(), 950.0, 25.0);
    EXPECT_NEAR(t.p99(), 990.0, 25.0);
}

} // namespace
