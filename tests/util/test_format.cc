#include <gtest/gtest.h>

#include "util/format.hh"

namespace
{

using namespace nsbench::util;

TEST(Format, HumanBytes)
{
    EXPECT_EQ(humanBytes(0), "0 B");
    EXPECT_EQ(humanBytes(512), "512 B");
    EXPECT_EQ(humanBytes(1024), "1.00 KiB");
    EXPECT_EQ(humanBytes(1536), "1.50 KiB");
    EXPECT_EQ(humanBytes(3u * 1024 * 1024), "3.00 MiB");
    EXPECT_EQ(humanBytes(5ull * 1024 * 1024 * 1024), "5.00 GiB");
}

TEST(Format, HumanSeconds)
{
    EXPECT_EQ(humanSeconds(3e-9), "3.0 ns");
    EXPECT_EQ(humanSeconds(4.2e-6), "4.2 us");
    EXPECT_EQ(humanSeconds(0.0125), "12.50 ms");
    EXPECT_EQ(humanSeconds(2.5), "2.50 s");
    EXPECT_EQ(humanSeconds(660.0), "11.0 min");
}

TEST(Format, HumanCount)
{
    EXPECT_EQ(humanCount(950.0, "FLOP"), "950.00 FLOP");
    EXPECT_EQ(humanCount(2.5e3, "FLOP"), "2.50 KFLOP");
    EXPECT_EQ(humanCount(3.1e9, "FLOP"), "3.10 GFLOP");
}

TEST(Format, PercentStr)
{
    EXPECT_EQ(percentStr(0.454), "45.4%");
    EXPECT_EQ(percentStr(1.0, 0), "100%");
    EXPECT_EQ(percentStr(0.92115, 2), "92.12%");
}

TEST(Format, FixedStr)
{
    EXPECT_EQ(fixedStr(3.14159, 2), "3.14");
    EXPECT_EQ(fixedStr(2.0, 0), "2");
}

} // namespace
