/**
 * @file
 * Single-flight coalescing tests: leader election, follower parking,
 * fan-out on finish, and flight lifecycle.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/single_flight.hh"

namespace
{

using nsbench::cache::SingleFlight;

using Flight = SingleFlight<int>;

TEST(CacheSingleFlight, FirstJoinLeadsLaterJoinsFollow)
{
    Flight flights;
    EXPECT_EQ(flights.join("k", 1), Flight::Role::Leader);
    EXPECT_EQ(flights.join("k", 2), Flight::Role::Follower);
    EXPECT_EQ(flights.join("k", 3), Flight::Role::Follower);
    EXPECT_EQ(flights.inFlight(), 1u);
}

TEST(CacheSingleFlight, FinishReturnsFollowersInJoinOrder)
{
    Flight flights;
    ASSERT_EQ(flights.join("k", 1), Flight::Role::Leader);
    flights.join("k", 2);
    flights.join("k", 3);

    // The leader's waiter is not parked: only followers fan out.
    std::vector<int> waiters = flights.finish("k");
    ASSERT_EQ(waiters.size(), 2u);
    EXPECT_EQ(waiters[0], 2);
    EXPECT_EQ(waiters[1], 3);
    EXPECT_EQ(flights.inFlight(), 0u);
}

TEST(CacheSingleFlight, FinishOnUnknownKeyIsEmpty)
{
    Flight flights;
    EXPECT_TRUE(flights.finish("nope").empty());
}

TEST(CacheSingleFlight, KeysFlyIndependently)
{
    Flight flights;
    EXPECT_EQ(flights.join("a", 1), Flight::Role::Leader);
    EXPECT_EQ(flights.join("b", 2), Flight::Role::Leader);
    EXPECT_EQ(flights.join("a", 3), Flight::Role::Follower);
    EXPECT_EQ(flights.inFlight(), 2u);
    EXPECT_EQ(flights.finish("a").size(), 1u);
    EXPECT_EQ(flights.inFlight(), 1u);
    EXPECT_TRUE(flights.finish("b").empty());
}

TEST(CacheSingleFlight, NewFlightStartsAfterFinish)
{
    Flight flights;
    ASSERT_EQ(flights.join("k", 1), Flight::Role::Leader);
    flights.finish("k");
    // The key is free again: the next joiner leads a fresh flight.
    EXPECT_EQ(flights.join("k", 2), Flight::Role::Leader);
}

} // namespace
