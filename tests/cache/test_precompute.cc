/**
 * @file
 * Precompute-cache tests: build-once semantics, disabled-mode
 * pass-through, byte-budget eviction, failed-build retry, and
 * concurrent single-flight builds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cache/config.hh"
#include "cache/precompute.hh"

namespace
{

using namespace nsbench;
using cache::CacheHandle;
using cache::PrecomputeCache;
using cache::Sized;

/** Enables memoization for the test body, restoring the default. */
class CachePrecompute : public testing::Test
{
  protected:
    void SetUp() override { cache::setEnabled(true); }
    void TearDown() override { cache::resetEnabled(); }
};

Sized<int>
sizedInt(int value, uint64_t bytes)
{
    Sized<int> out;
    out.value = std::make_shared<int>(value);
    out.bytes = bytes;
    return out;
}

TEST_F(CachePrecompute, BuildsOnceThenServesHits)
{
    PrecomputeCache cache(1 << 20);
    std::atomic<int> builds{0};
    auto builder = [&builds]() {
        builds.fetch_add(1);
        return sizedInt(42, 128);
    };

    CacheHandle<int> first = cache.getOrBuild<int>("k", builder);
    CacheHandle<int> again = cache.getOrBuild<int>("k", builder);

    EXPECT_EQ(builds.load(), 1);
    EXPECT_FALSE(first.hit);
    EXPECT_TRUE(again.hit);
    EXPECT_EQ(first.value.get(), again.value.get());
    EXPECT_EQ(*again, 42);
    EXPECT_EQ(again.bytes, 128u);

    cache::PrecomputeStats stats = cache.stats();
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.residentBytes, 128u);
}

TEST_F(CachePrecompute, DisabledModeBuildsEveryTimeAndStoresNothing)
{
    cache::setEnabled(false);
    PrecomputeCache cache(1 << 20);
    std::atomic<int> builds{0};
    auto builder = [&builds]() {
        builds.fetch_add(1);
        return sizedInt(7, 64);
    };

    CacheHandle<int> a = cache.getOrBuild<int>("k", builder);
    CacheHandle<int> b = cache.getOrBuild<int>("k", builder);
    EXPECT_EQ(builds.load(), 2);
    EXPECT_FALSE(a.hit);
    EXPECT_FALSE(b.hit);
    EXPECT_NE(a.value.get(), b.value.get());
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().residentBytes, 0u);
}

TEST_F(CachePrecompute, ByteBudgetEvictsLruEntries)
{
    PrecomputeCache cache(256);
    auto build_at = [](int value) {
        return [value]() { return sizedInt(value, 100); };
    };

    CacheHandle<int> a = cache.getOrBuild<int>("a", build_at(1));
    cache.getOrBuild<int>("b", build_at(2));
    // Third 100-byte entry overflows the 256-byte budget: "a", the
    // least recently used, is evicted.
    cache.getOrBuild<int>("c", build_at(3));

    cache::PrecomputeStats stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.residentBytes, 256u);
    // The outstanding handle keeps the evicted structure alive.
    EXPECT_EQ(*a, 1);

    // Re-requesting the evicted key rebuilds it.
    std::atomic<int> rebuilds{0};
    cache.getOrBuild<int>("a", [&rebuilds]() {
        rebuilds.fetch_add(1);
        return sizedInt(1, 100);
    });
    EXPECT_EQ(rebuilds.load(), 1);
}

TEST_F(CachePrecompute, FailedBuildsAreRetried)
{
    PrecomputeCache cache(1 << 20);
    std::atomic<int> attempts{0};
    auto flaky = [&attempts]() -> Sized<int> {
        if (attempts.fetch_add(1) == 0)
            throw std::runtime_error("transient");
        return sizedInt(9, 32);
    };

    EXPECT_THROW(cache.getOrBuild<int>("k", flaky),
                 std::runtime_error);
    CacheHandle<int> handle = cache.getOrBuild<int>("k", flaky);
    EXPECT_EQ(*handle, 9);
    EXPECT_EQ(attempts.load(), 2);
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST_F(CachePrecompute, ConcurrentRequestsShareOneBuild)
{
    PrecomputeCache cache(1 << 20);
    std::atomic<int> builds{0};
    auto slow_builder = [&builds]() {
        builds.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return sizedInt(5, 16);
    };

    std::vector<std::thread> threads;
    std::vector<CacheHandle<int>> handles(4);
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([&, t]() {
            handles[static_cast<size_t>(t)] =
                cache.getOrBuild<int>("k", slow_builder);
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(builds.load(), 1);
    for (const auto &handle : handles) {
        ASSERT_TRUE(handle);
        EXPECT_EQ(*handle, 5);
        EXPECT_EQ(handle.value.get(), handles[0].value.get());
    }
}

TEST_F(CachePrecompute, ClearDropsEntriesButNotHandles)
{
    PrecomputeCache cache(1 << 20);
    CacheHandle<int> handle = cache.getOrBuild<int>(
        "k", []() { return sizedInt(3, 8); });
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().residentBytes, 0u);
    EXPECT_EQ(*handle, 3);
}

} // namespace
