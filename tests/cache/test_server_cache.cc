/**
 * @file
 * Server result-cache integration tests: admission-time hits,
 * canonical keys for seed-insensitive workloads, single-flight
 * coalescing of concurrent misses, and score identity with the cache
 * on vs off across replica counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "cache/config.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "workloads/register.hh"

#include "../serve/fake_workload.hh"

namespace
{

using namespace nsbench;
using tests::FakeCounters;
using tests::FakeWorkload;

serve::ServerOptions
cachedFake(FakeCounters &counters, bool seed_sensitive,
           int sleep_ms = 0)
{
    serve::ServerOptions options;
    options.workloads = {"Fake"};
    options.workers = 1;
    options.maxBatch = 4;
    options.maxWaitUs = 2000;
    options.profilePhases = false;
    options.resultCache = true;
    options.factory = [&counters, seed_sensitive,
                       sleep_ms](const std::string &) {
        return std::make_unique<FakeWorkload>(counters,
                                              seed_sensitive,
                                              sleep_ms);
    };
    return options;
}

TEST(CacheServer, RepeatedSeedIsServedFromCacheWithoutARun)
{
    FakeCounters counters;
    serve::Server server(cachedFake(counters, true));

    serve::Response first = server.call("Fake", 7);
    uint64_t runs_after_first = counters.runs.load();
    serve::Response second = server.call("Fake", 7);
    serve::Response third = server.call("Fake", 7);

    EXPECT_EQ(counters.runs.load(), runs_after_first);
    EXPECT_EQ(second.score, first.score);
    EXPECT_EQ(third.score, first.score);
    EXPECT_FALSE(first.cached);
    EXPECT_TRUE(second.cached);
    EXPECT_TRUE(third.cached);

    serve::WorkloadMetrics m = server.metrics().workload("Fake");
    EXPECT_EQ(m.cacheHits, 2u);
    EXPECT_EQ(m.cacheMisses, 1u);
    EXPECT_DOUBLE_EQ(m.cacheHitRate(), 2.0 / 3.0);
    EXPECT_EQ(m.completed, 3u);

    const cache::ResultCache *cache = server.resultCache();
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->stats().entries, 1u);
}

TEST(CacheServer, SeedInsensitiveWorkloadsShareOneCanonicalEntry)
{
    FakeCounters counters;
    serve::Server server(cachedFake(counters, false));

    serve::Response a = server.call("Fake", 1);
    uint64_t runs_after_first = counters.runs.load();
    serve::Response b = server.call("Fake", 2);
    serve::Response c = server.call("Fake", 3);

    // Distinct episode seeds, but the workload ignores them: every
    // later request hits the canonical (episode-seed 0) entry.
    EXPECT_EQ(counters.runs.load(), runs_after_first);
    EXPECT_EQ(b.score, a.score);
    EXPECT_EQ(c.score, a.score);
    EXPECT_EQ(server.metrics().workload("Fake").cacheHits, 2u);
    ASSERT_NE(server.resultCache(), nullptr);
    EXPECT_EQ(server.resultCache()->stats().entries, 1u);
}

TEST(CacheServer, ConcurrentMissesSingleFlightOntoOneExecution)
{
    FakeCounters counters;
    // Slow service, no batcher coalescing, serial batches: any
    // sharing observed comes from single-flight alone.
    auto options = cachedFake(counters, true, /*sleep_ms=*/25);
    options.coalesce = false;
    options.maxBatch = 1;
    serve::Server server(std::move(options));

    constexpr int n = 4;
    std::atomic<int> outstanding{n};
    std::mutex mu;
    std::condition_variable cv;
    std::vector<double> scores;
    std::mutex scores_mu;
    for (int i = 0; i < n; i++) {
        ASSERT_EQ(server.submit(
                      "Fake", 5,
                      [&](const serve::Response &response) {
                          EXPECT_EQ(response.status,
                                    serve::RequestStatus::Ok);
                          {
                              std::lock_guard<std::mutex> lock(
                                  scores_mu);
                              scores.push_back(response.score);
                          }
                          std::lock_guard<std::mutex> lock(mu);
                          if (outstanding.fetch_sub(1) == 1)
                              cv.notify_all();
                      }),
                  serve::RequestStatus::Ok);
    }
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return outstanding.load() == 0; });
    }

    // One leader executed; every follower was fanned its result.
    EXPECT_EQ(counters.runs.load(), 1u);
    ASSERT_EQ(scores.size(), static_cast<size_t>(n));
    for (double score : scores)
        EXPECT_EQ(score, scores.front());

    serve::WorkloadMetrics m = server.metrics().workload("Fake");
    EXPECT_EQ(m.completed, static_cast<uint64_t>(n));
    EXPECT_EQ(m.singleFlightShared, static_cast<uint64_t>(n - 1));
    EXPECT_EQ(m.cacheMisses, static_cast<uint64_t>(n));
    EXPECT_EQ(m.executions, 1u);
}

TEST(CacheServer, ScoresAreIdenticalCacheOnAndOffAcrossReplicas)
{
    // The cache replays scores; it must never change them. Compare a
    // seed sweep between an uncached single-replica server and a
    // cached three-replica server — bit-equal doubles required.
    std::vector<double> uncached;
    {
        FakeCounters counters;
        auto options = cachedFake(counters, true);
        options.resultCache = false;
        options.workers = 1;
        serve::Server server(std::move(options));
        for (uint64_t seed = 0; seed < 10; seed++)
            uncached.push_back(server.call("Fake", seed).score);
    }

    std::vector<double> cached;
    {
        FakeCounters counters;
        auto options = cachedFake(counters, true);
        options.workers = 3;
        serve::Server server(std::move(options));
        // Two passes: the second is served from cache entirely.
        for (uint64_t seed = 0; seed < 10; seed++)
            cached.push_back(server.call("Fake", seed).score);
        for (uint64_t seed = 0; seed < 10; seed++)
            EXPECT_EQ(server.call("Fake", seed).score,
                      cached[static_cast<size_t>(seed)]);
    }

    ASSERT_EQ(uncached.size(), cached.size());
    for (size_t i = 0; i < uncached.size(); i++)
        EXPECT_EQ(uncached[i], cached[i]);
}

TEST(CacheServer, RealWorkloadScoresSurvivePrecomputeCaching)
{
    // LTN's whole model bundle is memoized when caching is on; its
    // serve-preset score must stay bit-identical either way.
    workloads::registerAllWorkloads();
    cache::setEnabled(false);
    double baseline;
    {
        serve::ServerOptions options;
        options.workloads = {"LTN"};
        options.workers = 1;
        options.factory = serve::serveFactory;
        serve::Server server(std::move(options));
        baseline = server.call("LTN", 3).score;
    }

    cache::setEnabled(true);
    {
        serve::ServerOptions options;
        options.workloads = {"LTN"};
        options.workers = 2;
        options.resultCache = true;
        options.factory = serve::serveFactory;
        serve::Server server(std::move(options));
        EXPECT_EQ(server.call("LTN", 3).score, baseline);
        EXPECT_EQ(server.call("LTN", 4).score, baseline);
    }
    cache::resetEnabled();
}

} // namespace
