/**
 * @file
 * Sharded result-cache tests: key canonicalisation, LRU eviction
 * order, byte bounds, refresh semantics and counter aggregation.
 */

#include <gtest/gtest.h>

#include <string>

#include "cache/result_cache.hh"

namespace
{

using namespace nsbench;
using cache::ResultCache;
using cache::ResultCacheOptions;
using cache::ResultCacheStats;

/** Single-shard cache sized for exactly @p entries equal-cost keys. */
ResultCache
singleShardFor(size_t entries, const std::string &sample_key)
{
    ResultCacheOptions options;
    options.shards = 1;
    options.maxBytes = entries * ResultCache::entryCost(sample_key);
    return ResultCache(options);
}

TEST(CacheResult, KeyStringEncodesEveryComponent)
{
    EXPECT_EQ(ResultCache::keyString("NVSA", 42, 7), "NVSA/m42/e7");
    EXPECT_NE(ResultCache::keyString("NVSA", 42, 7),
              ResultCache::keyString("NVSA", 42, 8));
    EXPECT_NE(ResultCache::keyString("NVSA", 42, 7),
              ResultCache::keyString("NVSA", 43, 7));
    EXPECT_NE(ResultCache::keyString("NVSA", 42, 7),
              ResultCache::keyString("PrAE", 42, 7));
}

TEST(CacheResult, MissThenInsertThenHit)
{
    ResultCache cache;
    double score = 0.0;
    EXPECT_FALSE(cache.lookup("k", &score));
    cache.insert("k", 0.75);
    ASSERT_TRUE(cache.lookup("k", &score));
    EXPECT_DOUBLE_EQ(score, 0.75);

    ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(CacheResult, EvictsLeastRecentlyUsedFirst)
{
    // Room for three equal-cost keys; a lookup refreshes recency, so
    // inserting a fourth key evicts the least recently TOUCHED entry,
    // not the oldest insertion.
    ResultCache cache = singleShardFor(3, "k0");
    cache.insert("k0", 0.0);
    cache.insert("k1", 1.0);
    cache.insert("k2", 2.0);

    double score = 0.0;
    ASSERT_TRUE(cache.lookup("k0", &score)); // k1 is now LRU.
    cache.insert("k3", 3.0);

    EXPECT_FALSE(cache.lookup("k1", &score));
    EXPECT_TRUE(cache.lookup("k0", &score));
    EXPECT_TRUE(cache.lookup("k2", &score));
    EXPECT_TRUE(cache.lookup("k3", &score));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(CacheResult, ByteBudgetBoundsResidency)
{
    ResultCacheOptions options;
    options.shards = 4;
    options.maxBytes = 4096;
    ResultCache cache(options);

    for (int i = 0; i < 1000; i++) {
        cache.insert("workload/m42/e" + std::to_string(i),
                     static_cast<double>(i));
    }
    ResultCacheStats stats = cache.stats();
    EXPECT_LE(stats.bytes, options.maxBytes);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.entries, 0u);
}

TEST(CacheResult, ReinsertRefreshesInsteadOfDuplicating)
{
    ResultCache cache;
    cache.insert("k", 0.25);
    cache.insert("k", 0.5);
    EXPECT_EQ(cache.stats().entries, 1u);
    double score = 0.0;
    ASSERT_TRUE(cache.lookup("k", &score));
    EXPECT_DOUBLE_EQ(score, 0.5);
}

TEST(CacheResult, ClearDropsEverything)
{
    ResultCache cache;
    cache.insert("a", 1.0);
    cache.insert("b", 2.0);
    cache.clear();
    ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytes, 0u);
    double score = 0.0;
    EXPECT_FALSE(cache.lookup("a", &score));
}

} // namespace
