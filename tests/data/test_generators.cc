#include <gtest/gtest.h>

#include "data/familytree.hh"
#include "data/images.hh"
#include "data/kbgen.hh"
#include "data/tabular.hh"

namespace
{

using namespace nsbench::data;
using nsbench::util::Rng;

TEST(FamilyTree, StructureAndDerivations)
{
    Rng rng(1);
    FamilyGraph g = makeFamilyGraph(3, 6, rng);
    EXPECT_EQ(g.people, 18);

    // Every non-root person has exactly two parents.
    for (int child = 6; child < 18; child++) {
        int parents = 0;
        for (int p = 0; p < 18; p++) {
            if (g.parent[static_cast<size_t>(p)]
                        [static_cast<size_t>(child)]) {
                parents++;
            }
        }
        EXPECT_EQ(parents, 2) << "child " << child;
    }

    // Derived relations are consistent with their definitions.
    for (size_t a = 0; a < 18; a++) {
        for (size_t c = 0; c < 18; c++) {
            bool expect_gp = false;
            for (size_t b = 0; b < 18; b++) {
                if (g.parent[a][b] && g.parent[b][c])
                    expect_gp = true;
            }
            EXPECT_EQ(g.grandparent[a][c], expect_gp);
        }
    }
    // Sibling is symmetric and irreflexive.
    for (size_t a = 0; a < 18; a++) {
        EXPECT_FALSE(g.sibling[a][a]);
        for (size_t b = 0; b < 18; b++)
            EXPECT_EQ(g.sibling[a][b], g.sibling[b][a]);
    }
}

TEST(FamilyTree, TensorsMatchGraph)
{
    Rng rng(2);
    FamilyGraph g = makeFamilyGraph(2, 4, rng);
    auto parent = g.binaryTensor();
    ASSERT_EQ(parent.shape(), (nsbench::tensor::Shape{8, 8, 1}));
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
            EXPECT_EQ(parent(i, j, 0) > 0.5f,
                      static_cast<bool>(
                          g.parent[static_cast<size_t>(i)]
                                  [static_cast<size_t>(j)]));
        }
    }
    auto targets = g.targetTensor();
    EXPECT_EQ(targets.shape(), (nsbench::tensor::Shape{8, 8, 3}));
}

TEST(DomainImages, TexturesDifferAcrossDomains)
{
    Rng rng(3);
    SemanticImage src = makeDomainImage(ImageDomain::Source, 64, rng);
    SemanticImage dst = makeDomainImage(ImageDomain::Target, 64, rng);
    EXPECT_EQ(src.pixels.numel(), 64 * 64);
    EXPECT_EQ(src.labels.size(), 64u * 64u);

    // All semantic classes appear.
    std::array<int, 3> counts{};
    for (int label : src.labels)
        counts[static_cast<size_t>(label)]++;
    for (int c : counts)
        EXPECT_GT(c, 0);

    // Column-pair variance (stripes) differs from the checker field:
    // compare horizontal vs vertical neighbor correlation.
    auto direction_diff = [](const SemanticImage &img, bool vertical) {
        double acc = 0.0;
        auto px = img.pixels.data();
        for (int64_t r = 0; r + 1 < img.size; r++) {
            for (int64_t c = 0; c + 1 < img.size; c++) {
                auto here = px[static_cast<size_t>(r * img.size + c)];
                auto there =
                    vertical
                        ? px[static_cast<size_t>((r + 1) * img.size +
                                                 c)]
                        : px[static_cast<size_t>(r * img.size + c +
                                                 1)];
                acc += std::abs(here - there);
            }
        }
        return acc;
    };
    // Stripes: smooth vertically, varying horizontally.
    EXPECT_GT(direction_diff(src, false),
              1.5 * direction_diff(src, true));
    // Checker: roughly isotropic.
    double dv = direction_diff(dst, true);
    double dh = direction_diff(dst, false);
    EXPECT_LT(std::abs(dv - dh) / std::max(dv, dh), 0.4);
}

TEST(ConceptScenes, RenderAndCompose)
{
    Rng rng(4);
    ConceptScene scene = makeConceptScene(
        {ConceptShape::VerticalLine, ConceptShape::Rectangle}, 32,
        rng);
    EXPECT_EQ(scene.concepts.size(), 2u);
    float total = 0.0f;
    for (float v : scene.pixels.data())
        total += v;
    EXPECT_GT(total, 4.0f);

    PlacedConcept line{ConceptShape::HorizontalLine, 5, 3, 8};
    auto img = renderConcept(line, 32);
    // Exactly `extent` pixels for a line.
    float count = 0.0f;
    for (float v : img.data())
        count += v;
    EXPECT_EQ(count, 8.0f);
    EXPECT_EQ(img(0, 5, 3), 1.0f);
    EXPECT_EQ(img(0, 5, 10), 1.0f);
}

TEST(ConceptScenes, ShapeNames)
{
    EXPECT_EQ(conceptShapeName(ConceptShape::LShape), "l_shape");
    EXPECT_EQ(conceptShapeName(ConceptShape::Rectangle), "rectangle");
}

TEST(UniversityKb, GeneratesExpectedStructure)
{
    UniversityKb u = makeUniversityKb(2, 3, 10, 2, 7);
    EXPECT_EQ(u.kb.facts(u.department).size(), 2u);
    EXPECT_EQ(u.kb.facts(u.professor).size(), 6u);
    EXPECT_EQ(u.kb.facts(u.student).size(), 20u);
    EXPECT_EQ(u.kb.facts(u.course).size(), 12u);
    EXPECT_EQ(u.kb.facts(u.teaches).size(), 12u);
    EXPECT_EQ(u.kb.facts(u.advisor).size(), 20u);
    EXPECT_EQ(u.kb.numRules(), 3u);
}

TEST(UniversityKb, ForwardChainMatchesGroundTruth)
{
    UniversityKb u = makeUniversityKb(2, 3, 10, 2, 7);
    u.kb.forwardChain();
    EXPECT_EQ(u.kb.facts(u.taughtBy).size(), u.expectedTaughtBy);
    // Colleague is reflexive-inclusive by construction and symmetric;
    // each department contributes profs^2 pairs.
    EXPECT_EQ(u.kb.facts(u.colleague).size(), 2u * 3 * 3);
}

TEST(RelationalDataset, ClustersAndHomophily)
{
    Rng rng(11);
    RelationalDataset d = makeRelationalDataset(120, 4, 6, rng);
    EXPECT_EQ(d.people, 120);
    EXPECT_GT(d.friendships.size(), 100u);

    // Features separate by trait.
    double smoker_mean = 0.0, non_mean = 0.0;
    int smokers = 0;
    for (int i = 0; i < d.people; i++) {
        double m = 0.0;
        for (int f = 0; f < d.featureDim; f++)
            m += d.features(i, f);
        m /= d.featureDim;
        if (d.smokes[static_cast<size_t>(i)]) {
            smoker_mean += m;
            smokers++;
        } else {
            non_mean += m;
        }
    }
    smoker_mean /= std::max(smokers, 1);
    non_mean /= std::max(d.people - smokers, 1);
    EXPECT_GT(smoker_mean, 0.5);
    EXPECT_LT(non_mean, -0.5);

    // Homophily: most friendships are same-trait.
    int same = 0;
    for (const auto &[a, b] : d.friendships) {
        if (d.smokes[static_cast<size_t>(a)] ==
            d.smokes[static_cast<size_t>(b)]) {
            same++;
        }
    }
    EXPECT_GT(static_cast<double>(same) /
                  static_cast<double>(d.friendships.size()),
              0.6);

    // Cancer correlates with smoking.
    int cancer_smokers = 0, cancer_non = 0;
    for (int i = 0; i < d.people; i++) {
        if (d.cancer[static_cast<size_t>(i)]) {
            if (d.smokes[static_cast<size_t>(i)])
                cancer_smokers++;
            else
                cancer_non++;
        }
    }
    EXPECT_GT(cancer_smokers, cancer_non);
}

TEST(RelationalDataset, FriendMatrixSymmetric)
{
    Rng rng(12);
    RelationalDataset d = makeRelationalDataset(30, 2, 4, rng);
    auto m = d.friendMatrix();
    for (int i = 0; i < 30; i++) {
        EXPECT_EQ(m(i, i), 0.0f);
        for (int j = 0; j < 30; j++)
            EXPECT_EQ(m(i, j), m(j, i));
    }
}

} // namespace
