#include <gtest/gtest.h>

#include <set>

#include "data/raven.hh"

namespace
{

using namespace nsbench::data;

TEST(RavenRules, ApplyConstant)
{
    AttributeRule rule{RuleType::Constant, 0, {}};
    EXPECT_EQ(applyRule(rule, 3, 3, 10), 3);
    EXPECT_EQ(applyRule(rule, 3, 4, 10), -1);
}

TEST(RavenRules, ApplyProgression)
{
    AttributeRule rule{RuleType::Progression, 2, {}};
    EXPECT_EQ(applyRule(rule, 1, 3, 10), 5);
    EXPECT_EQ(applyRule(rule, 1, 4, 10), -1); // wrong step
    EXPECT_EQ(applyRule(rule, 6, 8, 10), -1); // out of domain
    AttributeRule neg{RuleType::Progression, -1, {}};
    EXPECT_EQ(applyRule(neg, 5, 4, 10), 3);
}

TEST(RavenRules, ApplyArithmetic)
{
    AttributeRule plus{RuleType::Arithmetic, 1, {}};
    EXPECT_EQ(applyRule(plus, 2, 3, 10), 5);
    EXPECT_EQ(applyRule(plus, 7, 7, 10), -1);
    AttributeRule minus{RuleType::Arithmetic, -1, {}};
    EXPECT_EQ(applyRule(minus, 7, 3, 10), 4);
    EXPECT_EQ(applyRule(minus, 3, 7, 10), -1);
}

TEST(RavenRules, ApplyDistributeThree)
{
    AttributeRule rule{RuleType::DistributeThree, 0, {2, 5, 8}};
    EXPECT_EQ(applyRule(rule, 2, 5, 10), 8);
    EXPECT_EQ(applyRule(rule, 8, 2, 10), 5);
    EXPECT_EQ(applyRule(rule, 2, 2, 10), -1);
    EXPECT_EQ(applyRule(rule, 2, 3, 10), -1);
}

TEST(RavenRules, RuleHoldsMatchesApply)
{
    AttributeRule rule{RuleType::Progression, 1, {}};
    EXPECT_TRUE(ruleHolds(rule, 1, 2, 3, 10));
    EXPECT_FALSE(ruleHolds(rule, 1, 2, 4, 10));
}

TEST(RavenRules, DistributeThreeEqualityUpToRotation)
{
    AttributeRule a{RuleType::DistributeThree, 0, {1, 2, 3}};
    AttributeRule b{RuleType::DistributeThree, 0, {2, 3, 1}};
    AttributeRule c{RuleType::DistributeThree, 0, {2, 1, 3}};
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c); // a reflection, not a rotation
}

TEST(RavenRules, EnumerateCoversAllFamilies)
{
    auto rules = enumerateRules(10);
    std::set<RuleType> types;
    size_t d3 = 0;
    for (const auto &r : rules) {
        types.insert(r.type);
        if (r.type == RuleType::DistributeThree)
            d3++;
    }
    EXPECT_EQ(types.size(), 4u);
    EXPECT_EQ(d3, 120u); // C(10,3)
    // 1 constant + 4 progressions + 2 arithmetic + 120 triples.
    EXPECT_EQ(rules.size(), 127u);
}

TEST(RavenRules, EnumerateRespectsSmallDomains)
{
    auto rules = enumerateRules(1);
    EXPECT_EQ(rules.size(), 1u);
    EXPECT_EQ(rules[0].type, RuleType::Constant);
}

TEST(RavenGenerator, AttributeDomains)
{
    EXPECT_EQ(attributeDomain(AttributeId::Number, 3), 9);
    EXPECT_EQ(attributeDomain(AttributeId::Number, 1), 1);
    EXPECT_EQ(attributeDomain(AttributeId::Type, 2), 5);
    EXPECT_EQ(attributeDomain(AttributeId::Size, 2), 6);
    EXPECT_EQ(attributeDomain(AttributeId::Color, 2), 10);
}

class RavenPuzzle : public testing::TestWithParam<int>
{
};

TEST_P(RavenPuzzle, GeneratedRulesHoldOnAllRows)
{
    RavenGenerator gen(GetParam(), 1234);
    for (int trial = 0; trial < 20; trial++) {
        RpmPuzzle puzzle = gen.generate();
        for (size_t a = 0; a < numAttributes; a++) {
            int domain =
                attributeDomain(allAttributes[a], puzzle.grid);
            // Rows 0 and 1 are fully in context; row 2 ends at the
            // answer.
            const PanelSpec &answer =
                puzzle.candidates[static_cast<size_t>(
                    puzzle.answerIndex)];
            std::array<std::array<int, 3>, 3> rows;
            for (int r = 0; r < 3; r++) {
                for (int c = 0; c < 3; c++) {
                    int cell = r * 3 + c;
                    rows[static_cast<size_t>(r)]
                        [static_cast<size_t>(c)] =
                            cell < 8
                                ? puzzle.context[static_cast<size_t>(
                                                     cell)]
                                      .values[a]
                                : answer.values[a];
                }
            }
            for (int r = 0; r < 3; r++) {
                EXPECT_TRUE(ruleHolds(
                    puzzle.rules[a], rows[static_cast<size_t>(r)][0],
                    rows[static_cast<size_t>(r)][1],
                    rows[static_cast<size_t>(r)][2], domain))
                    << "grid=" << GetParam() << " attr=" << a
                    << " rule=" << puzzle.rules[a].str();
            }
        }
    }
}

TEST_P(RavenPuzzle, CandidatesAreDistinctAndContainAnswer)
{
    RavenGenerator gen(GetParam(), 99);
    RpmPuzzle puzzle = gen.generate();
    EXPECT_EQ(puzzle.candidates.size(), 8u);
    EXPECT_GE(puzzle.answerIndex, 0);
    EXPECT_LT(puzzle.answerIndex, 8);
    std::set<std::array<int, numAttributes>> values;
    for (const auto &cand : puzzle.candidates)
        values.insert(cand.values);
    EXPECT_EQ(values.size(), 8u);
}

TEST_P(RavenPuzzle, PanelsHaveConsistentSlots)
{
    RavenGenerator gen(GetParam(), 7);
    RpmPuzzle puzzle = gen.generate();
    int slots = puzzle.grid * puzzle.grid;
    auto check = [&](const PanelSpec &p) {
        EXPECT_EQ(static_cast<int>(p.slots.size()),
                  p.value(AttributeId::Number) + 1);
        for (int s : p.slots) {
            EXPECT_GE(s, 0);
            EXPECT_LT(s, slots);
        }
    };
    for (const auto &p : puzzle.context)
        check(p);
    for (const auto &p : puzzle.candidates)
        check(p);
}

INSTANTIATE_TEST_SUITE_P(Grids, RavenPuzzle, testing::Values(1, 2, 3));

TEST(RavenRender, ImageReflectsAttributes)
{
    RavenGenerator gen(2, 5);
    PanelSpec panel;
    panel.grid = 2;
    panel.values = {3, 0, 5, 9}; // 4 objects, squares, largest, brightest
    panel.slots = {0, 1, 2, 3};
    auto img = gen.render(panel);
    ASSERT_EQ(img.shape(),
              (nsbench::tensor::Shape{
                  1, RavenGenerator::imageSize,
                  RavenGenerator::imageSize}));

    float total = 0.0f;
    for (float v : img.data())
        total += v;
    EXPECT_GT(total, 0.0f);

    // Fewer, smaller, darker objects -> less total intensity.
    PanelSpec small;
    small.grid = 2;
    small.values = {0, 0, 0, 0};
    small.slots = {0};
    auto img2 = gen.render(small);
    float total2 = 0.0f;
    for (float v : img2.data())
        total2 += v;
    EXPECT_LT(total2, total * 0.3f);
}

TEST(RavenRender, EmptyBackgroundIsZero)
{
    RavenGenerator gen(1, 5);
    PanelSpec panel;
    panel.grid = 1;
    panel.values = {0, 1, 2, 5};
    panel.slots = {0};
    auto img = gen.render(panel);
    // Corners stay background for a centered small disk.
    int64_t last = RavenGenerator::imageSize - 1;
    EXPECT_EQ(img(0, 0, 0), 0.0f);
    EXPECT_EQ(img(0, last, last), 0.0f);
}

TEST(RavenGenerator, DeterministicAcrossSeeds)
{
    RavenGenerator a(2, 42), b(2, 42);
    RpmPuzzle pa = a.generate();
    RpmPuzzle pb = b.generate();
    EXPECT_EQ(pa.answerIndex, pb.answerIndex);
    for (size_t i = 0; i < 8; i++)
        EXPECT_EQ(pa.context[i].values, pb.context[i].values);
}

} // namespace
