#include <gtest/gtest.h>

#include "sim/kernels.hh"

namespace
{

using namespace nsbench::sim;

class KernelTest : public testing::Test
{
  protected:
    MachineModel machine = MachineModel::gpuLike();
};

TEST_F(KernelTest, SgemmIsComputeBound)
{
    auto k = runSgemmKernel(machine, 256, 256, 256, 32);
    EXPECT_DOUBLE_EQ(k.flops, 2.0 * 256 * 256 * 256);
    // The neural kernel keeps ALUs busy and DRAM quiet (Tab. IV).
    EXPECT_GT(k.aluUtilPct, 60.0);
    EXPECT_LT(k.dramBwUtilPct, 30.0);
    EXPECT_GT(k.l2HitRatePct, 50.0);
}

TEST_F(KernelTest, ReluHasLowAluHighHitRates)
{
    auto k = runReluKernel(machine, 512 * 1024);
    EXPECT_LT(k.aluUtilPct, 60.0);
    // L2-warm activations: little DRAM traffic.
    EXPECT_LT(k.dramBwUtilPct, 40.0);
    EXPECT_GT(k.l2HitRatePct, 60.0);
}

TEST_F(KernelTest, VsaBundleIsDramBound)
{
    auto k = runVsaBundleKernel(machine, 16, 1 << 20);
    // The symbolic kernel: single-digit ALU use, saturated DRAM.
    EXPECT_LT(k.aluUtilPct, 12.0);
    EXPECT_GT(k.dramBwUtilPct, 70.0);
}

TEST_F(KernelTest, GatherIsIrregularAndMemoryBound)
{
    auto k = runGatherKernel(machine, 20000, 100000, 32);
    EXPECT_LT(k.aluUtilPct, 12.0);
    EXPECT_GT(k.dramBwUtilPct, 50.0);
    // Random rows mostly miss both levels.
    EXPECT_LT(k.l2HitRatePct, 70.0);
}

TEST_F(KernelTest, NeuralVsSymbolicContrast)
{
    auto sgemm = runSgemmKernel(machine, 128, 128, 128, 32);
    auto vsa = runVsaBundleKernel(machine, 16, 1 << 20);
    // The paper's Tab. IV contrast: order-of-magnitude ALU gap,
    // inverted DRAM pressure.
    EXPECT_GT(sgemm.aluUtilPct, 5.0 * vsa.aluUtilPct);
    EXPECT_GT(vsa.dramBwUtilPct, 2.0 * sgemm.dramBwUtilPct);
}

TEST_F(KernelTest, UtilizationsAreBoundedPercentages)
{
    for (const auto &k :
         {runSgemmKernel(machine, 64, 64, 64, 32),
          runReluKernel(machine, 65536),
          runVsaBundleKernel(machine, 4, 1 << 16),
          runGatherKernel(machine, 2000, 10000, 32)}) {
        for (double pct :
             {k.computeThroughputPct, k.aluUtilPct, k.l1ThroughputPct,
              k.l2ThroughputPct, k.l1HitRatePct, k.l2HitRatePct,
              k.dramBwUtilPct}) {
            EXPECT_GE(pct, 0.0) << k.name;
            EXPECT_LE(pct, 100.0 + 1e-9) << k.name;
        }
        EXPECT_GT(k.cycles, 0.0);
        EXPECT_GT(k.memAccesses, 0u);
    }
}

TEST_F(KernelTest, SgemmDeathOnBadTiling)
{
    EXPECT_DEATH(runSgemmKernel(machine, 100, 128, 128, 32),
                 "tile multiples");
}

} // namespace
