#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace
{

using namespace nsbench::sim;

TEST(Cache, ColdMissThenHit)
{
    Cache c({1024, 64, 2});
    EXPECT_FALSE(c.accessLine(0));
    EXPECT_TRUE(c.accessLine(0));
    EXPECT_TRUE(c.accessLine(32)); // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_NEAR(c.hitRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, LruEvictionOrder)
{
    // 2 sets x 2 ways of 64B lines = 256B cache. Addresses 0, 128,
    // 256 map to set 0.
    Cache c({256, 64, 2});
    EXPECT_FALSE(c.accessLine(0));
    EXPECT_FALSE(c.accessLine(128));
    EXPECT_TRUE(c.accessLine(0));   // 0 now MRU
    EXPECT_FALSE(c.accessLine(256)); // evicts 128
    EXPECT_TRUE(c.accessLine(0));
    EXPECT_FALSE(c.accessLine(128)); // was evicted
}

TEST(Cache, SetIsolation)
{
    // Lines in different sets do not evict each other.
    Cache c({256, 64, 2});
    EXPECT_FALSE(c.accessLine(0));   // set 0
    EXPECT_FALSE(c.accessLine(64));  // set 1
    EXPECT_FALSE(c.accessLine(128)); // set 0
    EXPECT_TRUE(c.accessLine(64));
    EXPECT_TRUE(c.accessLine(0));
}

TEST(Cache, CapacityStreamingMissesEverything)
{
    Cache c({4096, 64, 4});
    // Stream 1 MiB twice: far over capacity, second pass still misses.
    const uint64_t lines = (1 << 20) / 64;
    for (int pass = 0; pass < 2; pass++) {
        for (uint64_t i = 0; i < lines; i++)
            c.accessLine(i * 64);
    }
    EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, ResetAndResetCounters)
{
    Cache c({1024, 64, 2});
    c.accessLine(0);
    c.accessLine(0);
    c.resetCounters();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.accessLine(0)); // contents survived
    c.reset();
    EXPECT_FALSE(c.accessLine(0)); // contents cleared
}

TEST(CacheHierarchy, MissFlowsThroughLevels)
{
    CacheHierarchy h({512, 64, 2}, {4096, 64, 4});
    h.access(0, 4);
    EXPECT_EQ(h.l1().misses(), 1u);
    EXPECT_EQ(h.l2().misses(), 1u);
    EXPECT_EQ(h.dramBytes(), 64u);
    h.access(0, 4); // L1 hit, nothing deeper
    EXPECT_EQ(h.l1().hits(), 1u);
    EXPECT_EQ(h.l2().misses(), 1u);
    EXPECT_EQ(h.dramBytes(), 64u);
}

TEST(CacheHierarchy, L2CatchesL1Evictions)
{
    // L1: 2 sets x 2 ways (256B); L2 large.
    CacheHierarchy h({256, 64, 2}, {64 * 1024, 64, 16});
    // Three lines in L1 set 0 force an eviction of the LRU line 0...
    h.access(0, 4);
    h.access(128, 4);
    h.access(256, 4);
    // ...so line 0 re-misses L1 but hits L2 (no new DRAM traffic).
    uint64_t dram_before = h.dramBytes();
    h.access(0, 4);
    EXPECT_EQ(h.dramBytes(), dram_before);
    EXPECT_GE(h.l2().hits(), 1u);
}

TEST(CacheHierarchy, SpanningAccessTouchesMultipleLines)
{
    CacheHierarchy h({512, 64, 2}, {4096, 64, 4});
    h.access(60, 8); // crosses a 64B boundary
    EXPECT_EQ(h.l1().misses(), 2u);
    EXPECT_EQ(h.requestedBytes(), 8u);
}

TEST(CacheDeath, RejectsBadGeometry)
{
    EXPECT_DEATH(Cache({1000, 60, 2}), "power of two");
    EXPECT_DEATH(Cache({1024, 64, 0}), "positive");
    CacheHierarchy h({512, 64, 2}, {4096, 64, 4});
    EXPECT_DEATH(h.access(0, 0), "zero-byte");
    EXPECT_DEATH(CacheHierarchy({512, 64, 2}, {4096, 128, 4}),
                 "mismatched line");
}

} // namespace
