#include <gtest/gtest.h>

#include "core/opgraph.hh"
#include "sim/schedule.hh"

namespace
{

using namespace nsbench;
using core::OpGraph;
using core::Phase;
using sim::pipelineSchedule;
using sim::ScheduleConfig;

/** The canonical neuro-symbolic pipeline: N(1s) -> S(2s). */
OpGraph
twoStagePipeline()
{
    OpGraph g;
    auto n = g.addNode("perceive", Phase::Neural, 1.0);
    auto s = g.addNode("reason", Phase::Symbolic, 2.0);
    g.addEdge(n, s);
    return g;
}

TEST(Schedule, SingleEpisodeMatchesCriticalPath)
{
    OpGraph g = twoStagePipeline();
    auto result = pipelineSchedule(g, {1, 1}, 1);
    EXPECT_DOUBLE_EQ(result.makespan, 3.0);
    EXPECT_DOUBLE_EQ(result.sequentialSeconds, 3.0);
    EXPECT_DOUBLE_EQ(result.speedup(), 1.0);
    ASSERT_EQ(result.stages.size(), 2u);
}

TEST(Schedule, PipeliningOverlapsEpisodes)
{
    OpGraph g = twoStagePipeline();
    // With many episodes, the symbolic unit is the bottleneck: the
    // steady state finishes one episode every 2 s.
    auto result = pipelineSchedule(g, {1, 1}, 10);
    // First result at t=3, then one every 2 s: makespan = 1 + 10*2.
    EXPECT_DOUBLE_EQ(result.makespan, 21.0);
    EXPECT_DOUBLE_EQ(result.sequentialSeconds, 30.0);
    EXPECT_NEAR(result.speedup(), 30.0 / 21.0, 1e-12);
    // The symbolic unit is nearly saturated.
    EXPECT_NEAR(result.utilization(Phase::Symbolic, 1), 20.0 / 21.0,
                1e-12);
    EXPECT_NEAR(result.utilization(Phase::Neural, 1), 10.0 / 21.0,
                1e-12);
}

TEST(Schedule, ExtraSymbolicUnitsRemoveBottleneck)
{
    OpGraph g = twoStagePipeline();
    auto one = pipelineSchedule(g, {1, 1}, 8);
    auto two = pipelineSchedule(g, {1, 2}, 8);
    EXPECT_LT(two.makespan, one.makespan);
    // With two symbolic units the neural unit (1 s/episode) paces the
    // pipeline: makespan ~= 8*1 + 2.
    EXPECT_NEAR(two.makespan, 10.0, 1e-9);
}

TEST(Schedule, DependenciesAreHonoured)
{
    OpGraph g = twoStagePipeline();
    auto result = pipelineSchedule(g, {2, 2}, 4);
    for (const auto &stage : result.stages) {
        if (g.node(stage.node).name != "reason")
            continue;
        // Find the matching perceive stage of the same episode.
        for (const auto &other : result.stages) {
            if (other.episode == stage.episode &&
                g.node(other.node).name == "perceive") {
                EXPECT_GE(stage.start, other.end - 1e-12);
            }
        }
    }
}

TEST(Schedule, UntaggedStagesUseEitherKind)
{
    OpGraph g;
    auto a = g.addNode("pre", Phase::Untagged, 1.0);
    auto b = g.addNode("post", Phase::Untagged, 1.0);
    g.addEdge(a, b);
    auto result = pipelineSchedule(g, {1, 1}, 4);
    // Untagged work spreads over both kinds, so 4 episodes of 2 s of
    // work finish in well under the 8 s sequential bound.
    EXPECT_LT(result.makespan, 8.0 - 1e-9);
    bool used_neural = false, used_symbolic = false;
    for (const auto &stage : result.stages) {
        if (stage.kind == Phase::Neural)
            used_neural = true;
        if (stage.kind == Phase::Symbolic)
            used_symbolic = true;
    }
    EXPECT_TRUE(used_neural);
    EXPECT_TRUE(used_symbolic);
}

TEST(Schedule, DiamondGraphParallelism)
{
    OpGraph g;
    auto src = g.addNode("in", Phase::Neural, 0.5);
    auto left = g.addNode("left", Phase::Symbolic, 1.0);
    auto right = g.addNode("right", Phase::Symbolic, 1.0);
    auto join = g.addNode("join", Phase::Symbolic, 0.5);
    g.addEdge(src, left);
    g.addEdge(src, right);
    g.addEdge(left, join);
    g.addEdge(right, join);

    auto narrow = pipelineSchedule(g, {1, 1}, 1);
    auto wide = pipelineSchedule(g, {1, 2}, 1);
    EXPECT_DOUBLE_EQ(narrow.makespan, 3.0);  // serialized branches
    EXPECT_DOUBLE_EQ(wide.makespan, 2.0);    // branches in parallel
}

TEST(Schedule, EmptyGraphIsTrivial)
{
    OpGraph g;
    auto result = pipelineSchedule(g, {2, 2}, 5);
    EXPECT_DOUBLE_EQ(result.makespan, 0.0);
    EXPECT_DOUBLE_EQ(result.sequentialSeconds, 0.0);
    EXPECT_TRUE(result.stages.empty());
    // No work means no win: the speedup convention is 1.0, not 0/0.
    EXPECT_DOUBLE_EQ(result.speedup(), 1.0);
}

TEST(Schedule, ZeroDurationStagesCollapse)
{
    OpGraph g;
    auto n = g.addNode("instant", Phase::Neural, 0.0);
    auto s = g.addNode("reason", Phase::Symbolic, 2.0);
    g.addEdge(n, s);
    auto result = pipelineSchedule(g, {1, 1}, 4);
    // The free stage adds no latency anywhere: the symbolic unit
    // back-to-backs all four episodes.
    EXPECT_DOUBLE_EQ(result.makespan, 8.0);
    EXPECT_DOUBLE_EQ(result.sequentialSeconds, 8.0);
    for (const auto &stage : result.stages) {
        if (g.node(stage.node).name == "instant")
            EXPECT_DOUBLE_EQ(stage.start, stage.end);
    }
}

TEST(Schedule, MoreSymbolicUnitsThanEpisodes)
{
    OpGraph g = twoStagePipeline();
    // Units beyond the episode count can never be occupied; the
    // schedule must match the exactly-enough configuration.
    auto enough = pipelineSchedule(g, {1, 2}, 2);
    auto excess = pipelineSchedule(g, {1, 8}, 2);
    EXPECT_DOUBLE_EQ(excess.makespan, enough.makespan);
    EXPECT_DOUBLE_EQ(excess.sequentialSeconds,
                     enough.sequentialSeconds);
}

TEST(Schedule, MakespanMonotoneInUnitCount)
{
    OpGraph g = twoStagePipeline();
    double previous = pipelineSchedule(g, {1, 1}, 6).makespan;
    for (int units = 2; units <= 6; units++) {
        double makespan =
            pipelineSchedule(g, {units, units}, 6).makespan;
        // Adding units never hurts (list scheduling over independent
        // episodes), and eventually stops helping.
        EXPECT_LE(makespan, previous + 1e-12)
            << "units=" << units;
        previous = makespan;
    }
    // Saturation: every episode on its own pair of units leaves only
    // the critical path.
    EXPECT_DOUBLE_EQ(pipelineSchedule(g, {6, 6}, 6).makespan, 3.0);
}

TEST(ScheduleDeath, Validations)
{
    OpGraph g = twoStagePipeline();
    EXPECT_DEATH(pipelineSchedule(g, {0, 1}, 1), "at least one unit");
    EXPECT_DEATH(pipelineSchedule(g, {1, 1}, 0), "at least one episode");
}

} // namespace
