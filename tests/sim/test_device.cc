#include <gtest/gtest.h>

#include "sim/device.hh"
#include "sim/projection.hh"
#include "sim/roofline.hh"

namespace
{

using namespace nsbench::sim;
using nsbench::core::OpCategory;
using nsbench::core::OpStats;
using nsbench::core::Phase;
using nsbench::core::PhaseScope;
using nsbench::core::Profiler;

TEST(Device, CatalogSane)
{
    EXPECT_EQ(allDevices().size(), 4u);
    for (const auto &d : allDevices()) {
        EXPECT_FALSE(d.name.empty());
        EXPECT_GT(d.peakGflops, 0.0);
        EXPECT_GT(d.memBandwidthGBs, 0.0);
        for (double eff : d.categoryEfficiency) {
            EXPECT_GT(eff, 0.0);
            EXPECT_LE(eff, 1.0);
        }
    }
}

TEST(Device, GpuOutclassesEdge)
{
    EXPECT_GT(rtx2080ti().peakGflops, 10 * jetsonTx2().peakGflops);
    EXPECT_GT(rtx2080ti().memBandwidthGBs,
              5 * xavierNx().memBandwidthGBs);
}

TEST(Device, SymbolicCategoriesAreInefficentOnGpu)
{
    const auto &gpu = rtx2080ti();
    EXPECT_GT(gpu.efficiency(OpCategory::MatMul), 0.5);
    EXPECT_LT(gpu.efficiency(OpCategory::VectorElementwise), 0.1);
    EXPECT_LT(gpu.efficiency(OpCategory::Other), 0.1);
}

TEST(Roofline, AttainableClampsAtPeak)
{
    const auto &gpu = rtx2080ti();
    EXPECT_DOUBLE_EQ(attainableGflops(gpu, 1e9), gpu.peakGflops);
    // At intensity 1 the GPU is bandwidth-limited.
    EXPECT_DOUBLE_EQ(attainableGflops(gpu, 1.0),
                     gpu.memBandwidthGBs);
    EXPECT_TRUE(isMemoryBound(gpu, 1.0));
    EXPECT_FALSE(isMemoryBound(gpu, 1000.0));
}

TEST(Roofline, RidgePointConsistency)
{
    for (const auto &d : allDevices()) {
        double ridge = d.ridgeIntensity();
        EXPECT_NEAR(attainableGflops(d, ridge), d.peakGflops,
                    d.peakGflops * 1e-9);
        EXPECT_TRUE(isMemoryBound(d, ridge * 0.5));
        EXPECT_FALSE(isMemoryBound(d, ridge * 2.0));
    }
}

TEST(Roofline, PlacesProfiledPhases)
{
    Profiler prof;
    {
        PhaseScope n(Phase::Neural, "n", prof);
        // High-intensity op: compute bound.
        prof.recordOp("matmul", OpCategory::MatMul, 1.0, 1e9, 1e6,
                      1e6);
    }
    {
        PhaseScope s(Phase::Symbolic, "s", prof);
        // Low-intensity op: memory bound.
        prof.recordOp("bind", OpCategory::VectorElementwise, 1.0, 1e6,
                      4e6, 4e6);
    }
    auto points = rooflineFromProfile(rtx2080ti(), prof, "W");
    ASSERT_GE(points.size(), 2u);
    bool found_neural = false, found_symbolic = false;
    for (const auto &pt : points) {
        if (pt.label == "W/neural") {
            found_neural = true;
            EXPECT_FALSE(pt.memoryBound);
            EXPECT_NEAR(pt.intensity, 500.0, 1.0);
        }
        if (pt.label == "W/symbolic") {
            found_symbolic = true;
            EXPECT_TRUE(pt.memoryBound);
        }
    }
    EXPECT_TRUE(found_neural);
    EXPECT_TRUE(found_symbolic);
}

TEST(Projection, MonotoneInDeviceCapability)
{
    // The same op stream never runs faster on a strictly weaker
    // device.
    Profiler prof;
    {
        PhaseScope n(Phase::Neural, "n", prof);
        prof.recordOp("conv2d", OpCategory::Convolution, 1.0, 1e10,
                      1e8, 1e8);
        prof.recordOp("bind", OpCategory::VectorElementwise, 1.0,
                      1e8, 1e9, 1e8);
    }
    double rtx = projectProfile(rtx2080ti(), prof).totalSeconds;
    double nx = projectProfile(xavierNx(), prof).totalSeconds;
    double tx2 = projectProfile(jetsonTx2(), prof).totalSeconds;
    EXPECT_LT(rtx, nx);
    EXPECT_LT(rtx, tx2);
}

TEST(Projection, AdditiveOverOps)
{
    // Projecting a merged stream equals the sum of projecting the
    // parts (same phase/category, overheads included).
    Profiler one, two;
    {
        PhaseScope s(Phase::Symbolic, "s", one);
        one.recordOp("a", OpCategory::Other, 1.0, 1e7, 1e7, 1e7);
    }
    {
        PhaseScope s(Phase::Symbolic, "s", two);
        two.recordOp("a", OpCategory::Other, 1.0, 1e7, 1e7, 1e7);
        two.recordOp("a", OpCategory::Other, 1.0, 1e7, 1e7, 1e7);
    }
    double t1 = projectProfile(rtx2080ti(), one).totalSeconds;
    double t2 = projectProfile(rtx2080ti(), two).totalSeconds;
    EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
}

TEST(Projection, ComputeVsMemoryBound)
{
    const auto &gpu = rtx2080ti();
    // Pure compute op at MatMul efficiency 0.9.
    OpStats mm;
    mm.invocations = 1;
    mm.flops = gpu.peakGflops * 0.9 * 1e9; // exactly one second
    mm.bytesRead = 1.0;
    double t = projectOp(gpu, OpCategory::MatMul, mm);
    EXPECT_NEAR(t, 1.0 + gpu.launchOverheadUs * 1e-6, 1e-3);

    // Pure streaming op: bandwidth-limited.
    OpStats mv;
    mv.invocations = 1;
    mv.bytesRead = gpu.memBandwidthGBs * 1e9 / 2.0;
    mv.bytesWritten = gpu.memBandwidthGBs * 1e9 / 2.0;
    double t2 = projectOp(gpu, OpCategory::DataMovement, mv);
    EXPECT_NEAR(t2, 1.0 + gpu.launchOverheadUs * 1e-6, 1e-3);
}

TEST(Projection, LaunchOverheadDominatesManySmallOps)
{
    const auto &gpu = rtx2080ti();
    OpStats tiny;
    tiny.invocations = 100000;
    tiny.flops = 1000.0;
    tiny.bytesRead = 1000.0;
    double t = projectOp(gpu, OpCategory::Other, tiny);
    EXPECT_GT(t, 0.4); // 100k x 5us = 0.5 s of pure overhead
}

TEST(Projection, EdgeSlowerThanGpuOnProfile)
{
    Profiler prof;
    {
        PhaseScope n(Phase::Neural, "n", prof);
        prof.recordOp("conv2d", OpCategory::Convolution, 1.0, 5e10,
                      1e8, 1e8);
    }
    {
        PhaseScope s(Phase::Symbolic, "s", prof);
        prof.recordOp("circular_conv", OpCategory::VectorElementwise,
                      5.0, 1e9, 5e9, 1e8);
    }
    auto gpu = projectProfile(rtx2080ti(), prof);
    auto tx2 = projectProfile(jetsonTx2(), prof);
    auto nx = projectProfile(xavierNx(), prof);
    EXPECT_GT(tx2.totalSeconds, gpu.totalSeconds * 3);
    EXPECT_GT(tx2.totalSeconds, nx.totalSeconds);
    // Symbolic share stays substantial across devices (Fig. 2b/c);
    // on the GPU the derated symbolic kernels dominate outright.
    EXPECT_GT(gpu.symbolicFraction(), 0.5);
    EXPECT_GT(tx2.symbolicFraction(), 0.3);
    EXPECT_NEAR(gpu.symbolicFraction() + gpu.neuralFraction(), 1.0,
                1e-9);
}

} // namespace
