#include <gtest/gtest.h>

#include "logic/kb.hh"

namespace
{

using namespace nsbench::logic;

/** The classic carnivore example from the paper's Tab. II. */
class AnimalKb : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        animal = kb.addPredicate("animal", 1);
        mammal = kb.addPredicate("mammal", 1);
        carnivore = kb.addPredicate("carnivore", 1);
        hypos = kb.addPredicate("hypos", 1);
        dog = kb.addConstant("dog");
        rock = kb.addConstant("rock");

        kb.addFact({animal, {dog}});
        kb.addFact({mammal, {dog}});
        kb.addFact({carnivore, {dog}});

        // hypos(x) :- animal(x), mammal(x), carnivore(x).
        Rule rule;
        rule.name = "abl";
        rule.head = {hypos, {Term::var(0)}};
        rule.body = {{animal, {Term::var(0)}},
                     {mammal, {Term::var(0)}},
                     {carnivore, {Term::var(0)}}};
        kb.addRule(std::move(rule));
    }

    KnowledgeBase kb;
    PredId animal{}, mammal{}, carnivore{}, hypos{};
    ConstId dog{}, rock{};
};

TEST_F(AnimalKb, ForwardChainDerivesHead)
{
    EXPECT_FALSE(kb.hasFact({hypos, {dog}}));
    size_t derived = kb.forwardChain();
    EXPECT_EQ(derived, 1u);
    EXPECT_TRUE(kb.hasFact({hypos, {dog}}));
    EXPECT_FALSE(kb.hasFact({hypos, {rock}}));
}

TEST_F(AnimalKb, ChainIsIdempotent)
{
    kb.forwardChain();
    size_t more = kb.forwardChain();
    EXPECT_EQ(more, 0u);
}

TEST_F(AnimalKb, DuplicateFactsIgnored)
{
    EXPECT_FALSE(kb.addFact({animal, {dog}}));
    EXPECT_EQ(kb.facts(animal).size(), 1u);
}

TEST(KnowledgeBase, TransitiveClosure)
{
    KnowledgeBase kb;
    PredId edge = kb.addPredicate("edge", 2);
    PredId path = kb.addPredicate("path", 2);
    std::vector<ConstId> nodes;
    for (int i = 0; i < 6; i++)
        nodes.push_back(kb.addConstant("n" + std::to_string(i)));
    // Chain 0 -> 1 -> ... -> 5.
    for (int i = 0; i + 1 < 6; i++)
        kb.addFact({edge, {nodes[i], nodes[i + 1]}});

    Rule base;
    base.head = {path, {Term::var(0), Term::var(1)}};
    base.body = {{edge, {Term::var(0), Term::var(1)}}};
    kb.addRule(std::move(base));

    Rule trans;
    trans.head = {path, {Term::var(0), Term::var(2)}};
    trans.body = {{edge, {Term::var(0), Term::var(1)}},
                  {path, {Term::var(1), Term::var(2)}}};
    kb.addRule(std::move(trans));

    kb.forwardChain();
    // All 5+4+3+2+1 = 15 paths exist.
    EXPECT_EQ(kb.facts(path).size(), 15u);
    EXPECT_TRUE(kb.hasFact({path, {nodes[0], nodes[5]}}));
    EXPECT_FALSE(kb.hasFact({path, {nodes[5], nodes[0]}}));
}

TEST(KnowledgeBase, ConstantInRuleBodyFilters)
{
    KnowledgeBase kb;
    PredId likes = kb.addPredicate("likes", 2);
    PredId fan = kb.addPredicate("fan_of_bob", 1);
    ConstId alice = kb.addConstant("alice");
    ConstId bob = kb.addConstant("bob");
    ConstId carol = kb.addConstant("carol");
    kb.addFact({likes, {alice, bob}});
    kb.addFact({likes, {carol, alice}});

    Rule r;
    r.head = {fan, {Term::var(0)}};
    r.body = {{likes, {Term::var(0), Term::constant(bob)}}};
    kb.addRule(std::move(r));
    kb.forwardChain();

    EXPECT_TRUE(kb.hasFact({fan, {alice}}));
    EXPECT_FALSE(kb.hasFact({fan, {carol}}));
}

TEST(KnowledgeBase, SharedVariableJoin)
{
    KnowledgeBase kb;
    PredId parent = kb.addPredicate("parent", 2);
    PredId grandparent = kb.addPredicate("grandparent", 2);
    ConstId a = kb.addConstant("a");
    ConstId b = kb.addConstant("b");
    ConstId c = kb.addConstant("c");
    ConstId d = kb.addConstant("d");
    kb.addFact({parent, {a, b}});
    kb.addFact({parent, {b, c}});
    kb.addFact({parent, {c, d}});

    Rule r;
    r.head = {grandparent, {Term::var(0), Term::var(2)}};
    r.body = {{parent, {Term::var(0), Term::var(1)}},
              {parent, {Term::var(1), Term::var(2)}}};
    kb.addRule(std::move(r));
    kb.forwardChain();

    EXPECT_EQ(kb.facts(grandparent).size(), 2u);
    EXPECT_TRUE(kb.hasFact({grandparent, {a, c}}));
    EXPECT_TRUE(kb.hasFact({grandparent, {b, d}}));
}

TEST(KnowledgeBase, SymbolTables)
{
    KnowledgeBase kb;
    PredId p = kb.addPredicate("p", 1);
    ConstId c = kb.addConstant("thing");
    EXPECT_EQ(kb.predicateName(p), "p");
    EXPECT_EQ(kb.constantName(c), "thing");
    EXPECT_EQ(kb.arity(p), 1);
    // Constants are interned.
    EXPECT_EQ(kb.addConstant("thing"), c);
    EXPECT_EQ(kb.numConstants(), 1u);
}

TEST(KnowledgeBase, FactBytesGrow)
{
    KnowledgeBase kb;
    PredId p = kb.addPredicate("p", 2);
    ConstId a = kb.addConstant("a");
    EXPECT_EQ(kb.factBytes(), 0u);
    kb.addFact({p, {a, a}});
    EXPECT_EQ(kb.factBytes(), 12u);
}

TEST(KnowledgeBaseDeath, Validations)
{
    KnowledgeBase kb;
    PredId p = kb.addPredicate("p", 1);
    EXPECT_DEATH(kb.addPredicate("p", 2), "duplicate");
    ConstId a = kb.addConstant("a");
    EXPECT_DEATH(kb.addFact({p, {a, a}}), "arity mismatch");

    Rule unsafe;
    unsafe.name = "unsafe";
    unsafe.head = {p, {Term::var(9)}};
    unsafe.body = {{p, {Term::var(0)}}};
    EXPECT_DEATH(kb.addRule(std::move(unsafe)), "unsafe head");

    Rule empty;
    empty.head = {p, {Term::var(0)}};
    EXPECT_DEATH(kb.addRule(std::move(empty)), "empty body");
}

} // namespace
