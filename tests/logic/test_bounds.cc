#include <gtest/gtest.h>

#include "logic/bounds.hh"

namespace
{

using namespace nsbench::logic;

TEST(TruthBounds, Constructors)
{
    EXPECT_EQ(TruthBounds::unknown().lower, 0.0f);
    EXPECT_EQ(TruthBounds::unknown().upper, 1.0f);
    EXPECT_TRUE(TruthBounds::certainTrue().isTrue());
    EXPECT_TRUE(TruthBounds::certainFalse().isFalse());
    TruthBounds pt = TruthBounds::exactly(0.7f);
    EXPECT_EQ(pt.lower, pt.upper);
    EXPECT_FLOAT_EQ(pt.width(), 0.0f);
}

TEST(TruthBounds, Classification)
{
    TruthBounds mostly_true{0.8f, 1.0f};
    EXPECT_TRUE(mostly_true.isTrue(0.5f));
    EXPECT_FALSE(mostly_true.isFalse(0.5f));
    TruthBounds mostly_false{0.0f, 0.2f};
    EXPECT_TRUE(mostly_false.isFalse(0.5f));
    TruthBounds unknown = TruthBounds::unknown();
    EXPECT_FALSE(unknown.isTrue());
    EXPECT_FALSE(unknown.isFalse());
}

TEST(TruthBounds, TightenIntersects)
{
    TruthBounds a{0.2f, 0.9f};
    TruthBounds b{0.4f, 1.0f};
    TruthBounds t = tighten(a, b);
    EXPECT_FLOAT_EQ(t.lower, 0.4f);
    EXPECT_FLOAT_EQ(t.upper, 0.9f);
    EXPECT_TRUE(t.valid());
}

TEST(TruthBounds, TightenDetectsContradiction)
{
    TruthBounds a{0.8f, 1.0f};
    TruthBounds b{0.0f, 0.3f};
    EXPECT_TRUE(tighten(a, b).contradictory());
}

TEST(TruthBounds, NotSwapsAndComplements)
{
    TruthBounds a{0.2f, 0.7f};
    TruthBounds n = boundsNot(a);
    EXPECT_FLOAT_EQ(n.lower, 0.3f);
    EXPECT_FLOAT_EQ(n.upper, 0.8f);
    // Involution.
    TruthBounds back = boundsNot(n);
    EXPECT_FLOAT_EQ(back.lower, a.lower);
    EXPECT_FLOAT_EQ(back.upper, a.upper);
}

TEST(TruthBounds, AndOrOnCertainValues)
{
    TruthBounds t = TruthBounds::certainTrue();
    TruthBounds f = TruthBounds::certainFalse();
    EXPECT_TRUE(boundsAnd(t, t).isTrue());
    EXPECT_TRUE(boundsAnd(t, f).isFalse());
    EXPECT_TRUE(boundsOr(f, t).isTrue());
    EXPECT_TRUE(boundsOr(f, f).isFalse());
}

TEST(TruthBounds, AndWithUnknownStaysValid)
{
    TruthBounds u = TruthBounds::unknown();
    TruthBounds t = TruthBounds::certainTrue();
    TruthBounds r = boundsAnd(u, t);
    EXPECT_TRUE(r.valid());
    EXPECT_FLOAT_EQ(r.lower, 0.0f);
    EXPECT_FLOAT_EQ(r.upper, 1.0f);
}

TEST(TruthBounds, ImpliesSemantics)
{
    TruthBounds t = TruthBounds::certainTrue();
    TruthBounds f = TruthBounds::certainFalse();
    EXPECT_TRUE(boundsImplies(t, f).isFalse());
    EXPECT_TRUE(boundsImplies(f, f).isTrue()); // vacuous truth
    EXPECT_TRUE(boundsImplies(t, t).isTrue());
    // Point values follow the Lukasiewicz residuum.
    TruthBounds r = boundsImplies(TruthBounds::exactly(0.8f),
                                  TruthBounds::exactly(0.5f));
    EXPECT_NEAR(r.lower, 0.7f, 1e-6);
    EXPECT_NEAR(r.upper, 0.7f, 1e-6);
}

TEST(TruthBounds, DownwardAndModusPonens)
{
    // If (a AND b) is certainly true and b is certainly true, a must
    // be true.
    TruthBounds a = downwardAnd(TruthBounds::certainTrue(),
                                TruthBounds::certainTrue());
    EXPECT_FLOAT_EQ(a.lower, 1.0f);
    EXPECT_FLOAT_EQ(a.upper, 1.0f);
    // If the conjunction is unknown, nothing follows.
    TruthBounds b = downwardAnd(TruthBounds::unknown(),
                                TruthBounds::certainTrue());
    EXPECT_FLOAT_EQ(b.lower, 0.0f);
    EXPECT_FLOAT_EQ(b.upper, 1.0f);
}

TEST(TruthBounds, DownwardOrDisjunctiveSyllogism)
{
    // (a OR b) true, b false => a true.
    TruthBounds a = downwardOr(TruthBounds::certainTrue(),
                               TruthBounds::certainFalse());
    EXPECT_FLOAT_EQ(a.lower, 1.0f);
    // (a OR b) false => a false.
    TruthBounds c = downwardOr(TruthBounds::certainFalse(),
                               TruthBounds::unknown());
    EXPECT_FLOAT_EQ(c.upper, 0.0f);
}

TEST(TruthBounds, DownwardInferencesAreSound)
{
    // Exhaustive grid check: for point values a, b, the forward
    // conjunction and the downward inference on a are consistent.
    for (float av = 0.0f; av <= 1.001f; av += 0.25f) {
        for (float bv = 0.0f; bv <= 1.001f; bv += 0.25f) {
            TruthBounds a = TruthBounds::exactly(av);
            TruthBounds b = TruthBounds::exactly(bv);
            TruthBounds out = boundsAnd(a, b);
            TruthBounds inferred = downwardAnd(out, b);
            EXPECT_LE(inferred.lower, av + 1e-5f);
            EXPECT_GE(inferred.upper, av - 1e-5f);

            TruthBounds out_or = boundsOr(a, b);
            TruthBounds inf_or = downwardOr(out_or, b);
            EXPECT_LE(inf_or.lower, av + 1e-5f);
            EXPECT_GE(inf_or.upper, av - 1e-5f);
        }
    }
}

} // namespace
