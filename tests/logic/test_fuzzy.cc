#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "logic/fuzzy.hh"

namespace
{

using namespace nsbench::logic;

constexpr std::array<TNormKind, 3> allKinds = {
    TNormKind::Lukasiewicz, TNormKind::Goedel, TNormKind::Product};

class TNormProperty : public testing::TestWithParam<TNormKind>
{
};

TEST_P(TNormProperty, IdentityElementIsOne)
{
    TNormKind kind = GetParam();
    for (float a : {0.0f, 0.25f, 0.5f, 0.75f, 1.0f}) {
        EXPECT_FLOAT_EQ(tNorm(kind, a, 1.0f), a);
        EXPECT_FLOAT_EQ(tNorm(kind, 1.0f, a), a);
    }
}

TEST_P(TNormProperty, ZeroAnnihilates)
{
    TNormKind kind = GetParam();
    for (float a : {0.0f, 0.3f, 1.0f})
        EXPECT_FLOAT_EQ(tNorm(kind, a, 0.0f), 0.0f);
}

TEST_P(TNormProperty, Commutative)
{
    TNormKind kind = GetParam();
    for (float a : {0.1f, 0.4f, 0.9f}) {
        for (float b : {0.2f, 0.6f, 1.0f})
            EXPECT_FLOAT_EQ(tNorm(kind, a, b), tNorm(kind, b, a));
    }
}

TEST_P(TNormProperty, Associative)
{
    TNormKind kind = GetParam();
    for (float a : {0.2f, 0.7f}) {
        for (float b : {0.3f, 0.9f}) {
            for (float c : {0.5f, 1.0f}) {
                EXPECT_NEAR(tNorm(kind, tNorm(kind, a, b), c),
                            tNorm(kind, a, tNorm(kind, b, c)), 1e-6);
            }
        }
    }
}

TEST_P(TNormProperty, Monotone)
{
    TNormKind kind = GetParam();
    for (float a : {0.1f, 0.5f, 0.9f}) {
        EXPECT_LE(tNorm(kind, a, 0.3f), tNorm(kind, a, 0.7f));
        EXPECT_LE(tNorm(kind, 0.3f, a), tNorm(kind, 0.7f, a));
    }
}

TEST_P(TNormProperty, BoundedByMin)
{
    TNormKind kind = GetParam();
    for (float a : {0.2f, 0.6f, 1.0f}) {
        for (float b : {0.1f, 0.8f})
            EXPECT_LE(tNorm(kind, a, b), std::min(a, b) + 1e-7f);
    }
}

TEST_P(TNormProperty, DeMorganDuality)
{
    TNormKind kind = GetParam();
    for (float a : {0.15f, 0.5f, 0.85f}) {
        for (float b : {0.25f, 0.75f}) {
            float lhs = tConorm(kind, a, b);
            float rhs =
                fuzzyNot(tNorm(kind, fuzzyNot(a), fuzzyNot(b)));
            EXPECT_NEAR(lhs, rhs, 1e-6);
        }
    }
}

TEST_P(TNormProperty, ResiduationAdjunction)
{
    // tNorm(a, x) <= b iff x <= residuum(a, b); check the forward
    // direction on a grid.
    TNormKind kind = GetParam();
    for (float a : {0.2f, 0.5f, 0.9f}) {
        for (float b : {0.1f, 0.6f, 1.0f}) {
            float r = residuum(kind, a, b);
            EXPECT_LE(tNorm(kind, a, r), b + 1e-6f);
            // And the residuum is the largest such x: slightly larger
            // x violates the bound (when r < 1).
            if (r < 0.999f) {
                EXPECT_GT(tNorm(kind, a, std::min(1.0f, r + 0.01f)),
                          b - 1e-6f);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TNormProperty,
                         testing::ValuesIn(allKinds));

TEST(Fuzzy, LukasiewiczKnownValues)
{
    EXPECT_FLOAT_EQ(tNorm(TNormKind::Lukasiewicz, 0.7f, 0.7f), 0.4f);
    EXPECT_FLOAT_EQ(tConorm(TNormKind::Lukasiewicz, 0.7f, 0.7f), 1.0f);
    EXPECT_FLOAT_EQ(residuum(TNormKind::Lukasiewicz, 0.8f, 0.5f), 0.7f);
    EXPECT_FLOAT_EQ(residuum(TNormKind::Lukasiewicz, 0.3f, 0.5f), 1.0f);
}

TEST(Fuzzy, GoedelAndProductResiduum)
{
    EXPECT_FLOAT_EQ(residuum(TNormKind::Goedel, 0.3f, 0.6f), 1.0f);
    EXPECT_FLOAT_EQ(residuum(TNormKind::Goedel, 0.6f, 0.3f), 0.3f);
    EXPECT_FLOAT_EQ(residuum(TNormKind::Product, 0.8f, 0.4f), 0.5f);
}

TEST(Fuzzy, PMeanErrorApproachesMin)
{
    std::vector<float> truths{0.2f, 0.9f, 1.0f};
    float loose = pMeanError(truths, 1.0f);
    float tight = pMeanError(truths, 20.0f);
    // p=1 reduces to the arithmetic mean.
    EXPECT_NEAR(loose, (0.2f + 0.9f + 1.0f) / 3.0f, 1e-5);
    // Large p approaches the minimum.
    EXPECT_NEAR(tight, 0.2f, 0.15f);
    EXPECT_LT(tight, loose);
}

TEST(Fuzzy, PMeanApproachesMax)
{
    std::vector<float> truths{0.1f, 0.2f, 0.9f};
    float loose = pMean(truths, 1.0f);
    float tight = pMean(truths, 20.0f);
    EXPECT_NEAR(loose, 0.4f, 1e-5);
    EXPECT_NEAR(tight, 0.9f, 0.15f);
    EXPECT_GT(tight, loose);
}

TEST(Fuzzy, QuantifiersOnConstantInput)
{
    std::vector<float> all_true{1.0f, 1.0f, 1.0f};
    EXPECT_FLOAT_EQ(pMeanError(all_true, 2.0f), 1.0f);
    EXPECT_FLOAT_EQ(pMean(all_true, 2.0f), 1.0f);
    std::vector<float> all_false{0.0f, 0.0f};
    EXPECT_FLOAT_EQ(pMeanError(all_false, 2.0f), 0.0f);
    EXPECT_FLOAT_EQ(pMean(all_false, 2.0f), 0.0f);
}

TEST(FuzzyDeath, RejectsOutOfRange)
{
    EXPECT_DEATH(tNorm(TNormKind::Product, 1.5f, 0.5f), "outside");
    EXPECT_DEATH(fuzzyNot(-0.1f), "outside");
    std::vector<float> empty;
    EXPECT_DEATH(pMean(empty, 2.0f), "no operands");
}

} // namespace
