/**
 * @file
 * Thread-safety of the profiler under the parallel runtime.
 *
 * The contract under test: FLOP, byte and invocation attribution is
 * exact — not merely approximate — when ops are recorded from pool
 * worker threads, and a profiled run reports identical work totals at
 * every pool width.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "core/profiler.hh"
#include "core/taxonomy.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"
#include "util/threadpool.hh"

namespace
{

using namespace nsbench;
using core::OpCategory;
using core::OpStats;
using core::Phase;
using core::Profiler;
using nsbench::tensor::Tensor;
using nsbench::util::ThreadPool;

class ProfilerConcurrency : public testing::Test
{
  protected:
    ~ProfilerConcurrency() override
    {
        ThreadPool::setGlobalThreads(0);
    }
};

TEST_F(ProfilerConcurrency, ExactTotalsFromWorkerThreads)
{
    // 10'000 events recorded from inside a parallel region, mixed
    // across owner and worker threads. Every single one must land.
    for (int width : {1, 2, 4, 13}) {
        ThreadPool pool(width);
        Profiler prof;
        constexpr int64_t kEvents = 10000;
        pool.parallelFor(0, kEvents, 16, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; i++)
                prof.recordOp("synthetic", OpCategory::Other, 1e-9,
                              2.0, 8.0, 4.0);
        });
        // The pool sync hook flushed every worker buffer before
        // parallelFor returned; no manual flush needed.
        OpStats t = prof.totals();
        EXPECT_EQ(t.invocations, static_cast<uint64_t>(kEvents))
            << "width " << width;
        EXPECT_DOUBLE_EQ(t.flops, 2.0 * kEvents) << "width " << width;
        EXPECT_DOUBLE_EQ(t.bytesRead, 8.0 * kEvents)
            << "width " << width;
        EXPECT_DOUBLE_EQ(t.bytesWritten, 4.0 * kEvents)
            << "width " << width;

        auto ops = prof.opsByTime();
        ASSERT_EQ(ops.size(), 1u);
        EXPECT_EQ(ops[0].name, "synthetic");
        EXPECT_EQ(ops[0].stats.invocations,
                  static_cast<uint64_t>(kEvents));
    }
}

TEST_F(ProfilerConcurrency, WorkerOpsInheritOwnerPhase)
{
    ThreadPool pool(4);
    Profiler prof;
    prof.pushPhase(Phase::Symbolic, "cleanup");
    pool.parallelFor(0, 100, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; i++)
            prof.recordOp("sweep", OpCategory::MatMul, 1e-9, 10.0,
                          0.0, 0.0);
    });
    prof.popPhase();

    EXPECT_EQ(prof.phaseTotals(Phase::Symbolic).invocations, 100u);
    EXPECT_EQ(prof.phaseTotals(Phase::Neural).invocations, 0u);
    EXPECT_DOUBLE_EQ(prof.regionTotals("cleanup").flops, 1000.0);
    EXPECT_EQ(
        prof.categoryTotals(Phase::Symbolic, OpCategory::MatMul)
            .invocations,
        100u);
}

TEST_F(ProfilerConcurrency, ProfiledRunIdenticalAcrossWidths)
{
    // The acceptance bar from the runtime change: a profiled kernel
    // run reports identical FLOP/byte/invocation totals at width 1
    // and width 4 (seconds differ, of course).
    auto profiledRun = [](int width) {
        ThreadPool::setGlobalThreads(width);
        util::Rng rng(5);
        Tensor a = Tensor::randn({96, 96}, rng);
        Tensor b = Tensor::randn({96, 96}, rng);
        auto &prof = core::globalProfiler();
        prof.reset();
        Tensor c = tensor::matmul(a, b);
        Tensor d = tensor::relu(c);
        (void)tensor::sumAll(d);
        return prof.totals();
    };

    OpStats serial = profiledRun(1);
    OpStats parallel = profiledRun(4);
    core::globalProfiler().reset();

    EXPECT_EQ(parallel.invocations, serial.invocations);
    EXPECT_DOUBLE_EQ(parallel.flops, serial.flops);
    EXPECT_DOUBLE_EQ(parallel.bytesRead, serial.bytesRead);
    EXPECT_DOUBLE_EQ(parallel.bytesWritten, serial.bytesWritten);
    EXPECT_GT(serial.invocations, 0u);
}

TEST_F(ProfilerConcurrency, ManualFlushForUnmanagedThreads)
{
    // A thread outside the pool must flush explicitly; its events are
    // invisible until then and complete afterwards.
    Profiler prof;
    std::thread outsider([&] {
        for (int i = 0; i < 7; i++)
            prof.recordOp("outside", OpCategory::Other, 1e-9, 1.0,
                          0.0, 0.0);
        Profiler::flushThisThread();
    });
    outsider.join();
    EXPECT_EQ(prof.totals().invocations, 7u);
}

TEST_F(ProfilerConcurrency, CopySnapshotsAggregates)
{
    Profiler prof;
    prof.recordOp("op", OpCategory::Other, 1e-9, 5.0, 0.0, 0.0);
    Profiler copy = prof;
    prof.recordOp("op", OpCategory::Other, 1e-9, 5.0, 0.0, 0.0);
    EXPECT_EQ(copy.totals().invocations, 1u);
    EXPECT_EQ(prof.totals().invocations, 2u);
}

} // namespace
