#include <gtest/gtest.h>

#include "core/workload.hh"

namespace
{

using namespace nsbench::core;

/** Minimal workload used to exercise the registry machinery. */
class DummyWorkload : public Workload
{
  public:
    std::string name() const override { return "Dummy"; }
    Paradigm
    paradigm() const override
    {
        return Paradigm::NeuroPipeSymbolic;
    }
    std::string taskDescription() const override { return "noop"; }
    void setUp(uint64_t seed) override { seed_ = seed; }
    double run() override { return 1.0; }
    OpGraph
    opGraph() const override
    {
        OpGraph g;
        g.addNode("only", Phase::Neural);
        return g;
    }
    uint64_t storageBytes() const override { return 0; }

  private:
    uint64_t seed_ = 0;
};

TEST(WorkloadRegistry, AddCreateRoundTrip)
{
    WorkloadRegistry reg;
    reg.add("Dummy", [] { return std::make_unique<DummyWorkload>(); });
    EXPECT_TRUE(reg.contains("Dummy"));
    EXPECT_FALSE(reg.contains("Missing"));

    auto w = reg.create("Dummy");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), "Dummy");
    w->setUp(1);
    EXPECT_DOUBLE_EQ(w->run(), 1.0);
}

TEST(WorkloadRegistry, NamesInRegistrationOrder)
{
    WorkloadRegistry reg;
    reg.add("b", [] { return std::make_unique<DummyWorkload>(); });
    reg.add("a", [] { return std::make_unique<DummyWorkload>(); });
    auto names = reg.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "b");
    EXPECT_EQ(names[1], "a");
}

TEST(WorkloadRegistryDeath, DuplicateNamePanics)
{
    WorkloadRegistry reg;
    reg.add("x", [] { return std::make_unique<DummyWorkload>(); });
    EXPECT_DEATH(
        reg.add("x", [] { return std::make_unique<DummyWorkload>(); }),
        "duplicate");
}

TEST(WorkloadRegistryDeath, UnknownNameIsFatal)
{
    WorkloadRegistry reg;
    EXPECT_EXIT(reg.create("nope"), testing::ExitedWithCode(1),
                "unknown workload");
}

} // namespace
