#include <gtest/gtest.h>

#include <set>

#include "core/paradigms.hh"
#include "core/taxonomy.hh"

namespace
{

using namespace nsbench::core;

TEST(Taxonomy, CategoryNamesDistinct)
{
    std::set<std::string_view> names;
    for (OpCategory c : allOpCategories)
        names.insert(opCategoryName(c));
    EXPECT_EQ(names.size(), numOpCategories);
}

TEST(Taxonomy, PhaseNames)
{
    EXPECT_EQ(phaseName(Phase::Neural), "neural");
    EXPECT_EQ(phaseName(Phase::Symbolic), "symbolic");
    EXPECT_EQ(phaseName(Phase::Untagged), "untagged");
}

TEST(Taxonomy, ParadigmNamesMatchPaperNotation)
{
    EXPECT_EQ(paradigmName(Paradigm::SymbolicNeuro), "Symbolic[Neuro]");
    EXPECT_EQ(paradigmName(Paradigm::NeuroPipeSymbolic),
              "Neuro|Symbolic");
    EXPECT_EQ(paradigmName(Paradigm::NeuroSymbolicToNeuro),
              "Neuro:Symbolic->Neuro");
    EXPECT_EQ(paradigmName(Paradigm::NeuroUnderSymbolic),
              "Neuro_{Symbolic}");
    EXPECT_EQ(paradigmName(Paradigm::NeuroBracketSymbolic),
              "Neuro[Symbolic]");
}

TEST(Paradigms, CensusCoversAllFiveParadigms)
{
    std::set<Paradigm> seen;
    for (const auto &entry : algorithmCensus())
        seen.insert(entry.paradigm);
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Paradigms, SevenWorkloadsImplemented)
{
    size_t implemented = 0;
    std::set<std::string_view> names;
    for (const auto &entry : algorithmCensus()) {
        if (entry.implementedHere) {
            implemented++;
            names.insert(entry.name);
        }
    }
    EXPECT_EQ(implemented, 7u);
    for (std::string_view name :
         {"LNN", "LTN", "NVSA", "NLM", "VSAIT", "ZeroC", "PrAE"}) {
        EXPECT_TRUE(names.count(name)) << name;
    }
}

TEST(Paradigms, OperationExamplesNonEmpty)
{
    EXPECT_GE(operationExamples().size(), 4u);
    for (const auto &ex : operationExamples()) {
        EXPECT_FALSE(ex.operation.empty());
        EXPECT_FALSE(ex.example.empty());
    }
}

} // namespace
