#include <gtest/gtest.h>

#include <sstream>

#include "core/profiler.hh"
#include "core/report.hh"

namespace
{

using namespace nsbench::core;

class ReportTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        {
            PhaseScope neural(Phase::Neural, "frontend", prof);
            prof.recordOp("conv2d", OpCategory::Convolution, 2.0,
                          1e9, 1e6, 1e6);
            prof.recordOp("matmul", OpCategory::MatMul, 1.0, 5e8,
                          1e6, 1e6);
            prof.recordAlloc(4096);
        }
        {
            PhaseScope symbolic(Phase::Symbolic, "backend", prof);
            prof.recordOp("vsa_bind", OpCategory::VectorElementwise,
                          3.0, 1e6, 8e6, 4e6);
            prof.recordOp("rule_query", OpCategory::Other, 1.0, 1e3,
                          1e4, 1e3);
            prof.recordSparsity("stage/x", 90, 100);
            prof.recordAlloc(8192);
        }
    }

    Profiler prof;
};

TEST_F(ReportTest, PhaseBreakdownRowsAndShares)
{
    auto table = phaseBreakdownTable(prof);
    EXPECT_EQ(table.rows(), 2u);
    std::ostringstream os;
    table.print(os);
    std::string out = os.str();
    // Neural 3 s of 7 s = 42.9%, symbolic 4 s = 57.1%.
    EXPECT_NE(out.find("42.9%"), std::string::npos);
    EXPECT_NE(out.find("57.1%"), std::string::npos);
}

TEST_F(ReportTest, CategoryBreakdownIsPhaseLocal)
{
    auto neural = categoryBreakdownTable(prof, Phase::Neural);
    EXPECT_EQ(neural.rows(), 2u); // conv + matmul only
    auto symbolic = categoryBreakdownTable(prof, Phase::Symbolic);
    EXPECT_EQ(symbolic.rows(), 2u); // vec + other
    std::ostringstream os;
    neural.print(os);
    EXPECT_EQ(os.str().find("Vector/Element-wise"),
              std::string::npos);
}

TEST_F(ReportTest, TopOpsRespectsLimitAndOrder)
{
    auto table = topOpsTable(prof, 2);
    EXPECT_EQ(table.rows(), 2u);
    std::ostringstream os;
    table.print(os);
    std::string out = os.str();
    // vsa_bind (3 s) leads conv2d (2 s).
    EXPECT_LT(out.find("vsa_bind"), out.find("conv2d"));
    EXPECT_EQ(out.find("rule_query"), std::string::npos);
}

TEST_F(ReportTest, MemoryTablePerPhase)
{
    auto table = memoryTable(prof);
    EXPECT_EQ(table.rows(), 2u);
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("4.00 KiB"), std::string::npos);
    EXPECT_NE(os.str().find("12.00 KiB"), std::string::npos); // peak
}

TEST_F(ReportTest, SparsityTable)
{
    auto table = sparsityTable(prof);
    EXPECT_EQ(table.rows(), 1u);
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("90.00%"), std::string::npos);
}

TEST_F(ReportTest, RegionTableOrderedByFirstUse)
{
    auto table = regionTable(prof);
    EXPECT_EQ(table.rows(), 2u);
    std::ostringstream os;
    table.print(os);
    std::string out = os.str();
    EXPECT_LT(out.find("frontend"), out.find("backend"));
}

TEST_F(ReportTest, CsvOutputParses)
{
    std::ostringstream os;
    phaseBreakdownTable(prof).printCsv(os);
    std::string out = os.str();
    // Header plus two data rows, comma-separated.
    int newlines = 0;
    for (char c : out) {
        if (c == '\n')
            newlines++;
    }
    EXPECT_EQ(newlines, 3);
    EXPECT_NE(out.find("phase,time,share"), std::string::npos);
}

TEST(ReportEmpty, TablesHaveNoRows)
{
    Profiler empty;
    EXPECT_EQ(phaseBreakdownTable(empty).rows(), 0u);
    EXPECT_EQ(topOpsTable(empty, 5).rows(), 0u);
    EXPECT_EQ(memoryTable(empty).rows(), 0u);
    EXPECT_EQ(sparsityTable(empty).rows(), 0u);
    PhaseSplit split = phaseSplit(empty);
    EXPECT_DOUBLE_EQ(split.total(), 0.0);
    EXPECT_DOUBLE_EQ(split.neuralFraction(), 0.0);
}

} // namespace
