#include <gtest/gtest.h>

#include "core/profiler.hh"
#include "core/report.hh"
#include "core/sparsity.hh"

namespace
{

using namespace nsbench::core;

class ProfilerTest : public testing::Test
{
  protected:
    Profiler prof;
};

TEST_F(ProfilerTest, StartsEmpty)
{
    EXPECT_EQ(prof.totals().invocations, 0u);
    EXPECT_EQ(prof.currentPhase(), Phase::Untagged);
    EXPECT_EQ(prof.currentBytes(), 0u);
    EXPECT_EQ(prof.peakBytes(), 0u);
}

TEST_F(ProfilerTest, RecordsOpInCurrentPhase)
{
    {
        PhaseScope scope(Phase::Neural, "frontend", prof);
        prof.recordOp("matmul", OpCategory::MatMul, 0.5, 100.0, 40.0,
                      20.0);
    }
    OpStats neural = prof.phaseTotals(Phase::Neural);
    EXPECT_EQ(neural.invocations, 1u);
    EXPECT_DOUBLE_EQ(neural.seconds, 0.5);
    EXPECT_DOUBLE_EQ(neural.flops, 100.0);
    EXPECT_DOUBLE_EQ(neural.bytes(), 60.0);
    EXPECT_EQ(prof.phaseTotals(Phase::Symbolic).invocations, 0u);
}

TEST_F(ProfilerTest, PhaseNesting)
{
    PhaseScope outer(Phase::Neural, "outer", prof);
    EXPECT_EQ(prof.currentPhase(), Phase::Neural);
    EXPECT_EQ(prof.currentRegion(), "outer");
    {
        PhaseScope inner(Phase::Symbolic, "inner", prof);
        EXPECT_EQ(prof.currentPhase(), Phase::Symbolic);
        EXPECT_EQ(prof.currentRegion(), "inner");
        prof.recordOp("bind", OpCategory::VectorElementwise, 0.1, 1.0,
                      1.0, 1.0);
    }
    EXPECT_EQ(prof.currentPhase(), Phase::Neural);
    EXPECT_EQ(prof.phaseTotals(Phase::Symbolic).invocations, 1u);
    EXPECT_EQ(prof.regionTotals("inner").invocations, 1u);
    EXPECT_EQ(prof.regionTotals("outer").invocations, 0u);
}

TEST_F(ProfilerTest, CategoryTotalsAreSliced)
{
    PhaseScope scope(Phase::Symbolic, "backend", prof);
    prof.recordOp("bind", OpCategory::VectorElementwise, 0.2, 4.0, 8.0,
                  8.0);
    prof.recordOp("bundle", OpCategory::VectorElementwise, 0.3, 4.0,
                  8.0, 8.0);
    prof.recordOp("rule_query", OpCategory::Other, 0.1, 0.0, 0.0, 0.0);

    OpStats vec =
        prof.categoryTotals(Phase::Symbolic,
                            OpCategory::VectorElementwise);
    EXPECT_EQ(vec.invocations, 2u);
    EXPECT_DOUBLE_EQ(vec.seconds, 0.5);
    OpStats other = prof.categoryTotals(Phase::Symbolic,
                                        OpCategory::Other);
    EXPECT_EQ(other.invocations, 1u);
}

TEST_F(ProfilerTest, OpsByTimeSortedAndMerged)
{
    PhaseScope scope(Phase::Neural, "x", prof);
    prof.recordOp("small", OpCategory::MatMul, 0.1, 1, 1, 1);
    prof.recordOp("big", OpCategory::MatMul, 1.0, 1, 1, 1);
    prof.recordOp("small", OpCategory::MatMul, 0.2, 1, 1, 1);

    auto ops = prof.opsByTime();
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].name, "big");
    EXPECT_EQ(ops[1].name, "small");
    EXPECT_EQ(ops[1].stats.invocations, 2u);
    EXPECT_NEAR(ops[1].stats.seconds, 0.3, 1e-12);
}

TEST_F(ProfilerTest, DisabledRecordsNothing)
{
    prof.setEnabled(false);
    prof.recordOp("x", OpCategory::Other, 1.0, 1, 1, 1);
    prof.recordAlloc(100);
    prof.recordSparsity("s", 5, 10);
    EXPECT_EQ(prof.totals().invocations, 0u);
    EXPECT_EQ(prof.peakBytes(), 0u);
    EXPECT_TRUE(prof.sparsityRecords().empty());
}

TEST_F(ProfilerTest, MemoryPeaksPerPhase)
{
    {
        PhaseScope scope(Phase::Neural, "alloc", prof);
        prof.recordAlloc(1000);
    }
    {
        PhaseScope scope(Phase::Symbolic, "alloc2", prof);
        prof.recordAlloc(500);
        EXPECT_EQ(prof.currentBytes(), 1500u);
        prof.recordFree(1000);
    }
    EXPECT_EQ(prof.peakBytes(), 1500u);
    EXPECT_EQ(prof.peakBytesIn(Phase::Neural), 1000u);
    EXPECT_EQ(prof.peakBytesIn(Phase::Symbolic), 1500u);
    EXPECT_EQ(prof.allocatedBytesIn(Phase::Neural), 1000u);
    EXPECT_EQ(prof.allocatedBytesIn(Phase::Symbolic), 500u);
    EXPECT_EQ(prof.currentBytes(), 500u);
}

TEST_F(ProfilerTest, FreeClampsAtZero)
{
    prof.recordAlloc(10);
    prof.recordFree(100);
    EXPECT_EQ(prof.currentBytes(), 0u);
}

TEST_F(ProfilerTest, SparsityAccumulates)
{
    PhaseScope scope(Phase::Symbolic, "s", prof);
    prof.recordSparsity("pmf_to_vsa", 90, 100);
    prof.recordSparsity("pmf_to_vsa", 95, 100);
    auto recs = prof.sparsityRecords();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].zeros, 185u);
    EXPECT_EQ(recs[0].total, 200u);
    EXPECT_DOUBLE_EQ(recs[0].ratio(), 0.925);
    EXPECT_EQ(recs[0].phase, Phase::Symbolic);
}

TEST_F(ProfilerTest, ResetClearsEverything)
{
    prof.recordOp("x", OpCategory::Other, 1.0, 1, 1, 1);
    prof.recordAlloc(128);
    prof.recordSparsity("s", 1, 2);
    prof.reset();
    EXPECT_EQ(prof.totals().invocations, 0u);
    EXPECT_EQ(prof.peakBytes(), 0u);
    EXPECT_TRUE(prof.sparsityRecords().empty());
    EXPECT_TRUE(prof.regions().empty());
}

TEST_F(ProfilerTest, ScopedOpRecordsOnDestruction)
{
    {
        ScopedOp op("timed", OpCategory::MatMul, prof);
        op.setFlops(42.0);
        op.setBytesRead(8.0);
        op.setBytesWritten(4.0);
    }
    auto ops = prof.opsByTime();
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].name, "timed");
    EXPECT_DOUBLE_EQ(ops[0].stats.flops, 42.0);
    EXPECT_GE(ops[0].stats.seconds, 0.0);
}

TEST_F(ProfilerTest, PhaseSplitHelper)
{
    {
        PhaseScope n(Phase::Neural, "n", prof);
        prof.recordOp("a", OpCategory::MatMul, 3.0, 0, 0, 0);
    }
    {
        PhaseScope s(Phase::Symbolic, "s", prof);
        prof.recordOp("b", OpCategory::Other, 1.0, 0, 0, 0);
    }
    PhaseSplit split = phaseSplit(prof);
    EXPECT_DOUBLE_EQ(split.total(), 4.0);
    EXPECT_DOUBLE_EQ(split.neuralFraction(), 0.75);
    EXPECT_DOUBLE_EQ(split.symbolicFraction(), 0.25);
}

TEST_F(ProfilerTest, OpIntensity)
{
    OpStats s;
    s.flops = 100.0;
    s.bytesRead = 40.0;
    s.bytesWritten = 10.0;
    EXPECT_DOUBLE_EQ(s.opIntensity(), 2.0);
    OpStats zero;
    EXPECT_DOUBLE_EQ(zero.opIntensity(), 0.0);
}

TEST_F(ProfilerTest, SpanSparsityHelper)
{
    std::vector<float> v{0.0f, 1.0f, 0.0f, 0.0f};
    EXPECT_EQ(nsbench::core::countZeros(std::span<const float>(v)), 3u);
    EXPECT_DOUBLE_EQ(
        nsbench::core::sparsityRatio(std::span<const float>(v)), 0.75);
    recordSpanSparsity("probe", std::span<const float>(v), 0.0f, prof);
    auto recs = prof.sparsityRecords();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].zeros, 3u);
}

TEST_F(ProfilerTest, ReportTablesHaveRows)
{
    {
        PhaseScope n(Phase::Neural, "n", prof);
        prof.recordOp("conv2d", OpCategory::Convolution, 1.0, 10, 4,
                      4);
        prof.recordAlloc(64);
    }
    EXPECT_EQ(phaseBreakdownTable(prof).rows(), 1u);
    EXPECT_EQ(categoryBreakdownTable(prof, Phase::Neural).rows(), 1u);
    EXPECT_EQ(topOpsTable(prof, 10).rows(), 1u);
    EXPECT_EQ(memoryTable(prof).rows(), 1u);
    EXPECT_EQ(regionTable(prof).rows(), 1u);
}

TEST(ProfilerDeath, PopWithoutPushPanics)
{
    Profiler p;
    EXPECT_DEATH(p.popPhase(), "underflow");
}

TEST(ProfilerDeath, SparsityZerosExceedTotal)
{
    Profiler p;
    EXPECT_DEATH(p.recordSparsity("s", 5, 2), "exceed");
}

} // namespace
