#include <gtest/gtest.h>

#include "core/opgraph.hh"

namespace
{

using namespace nsbench::core;

/** Builds the canonical Neuro|Symbolic pipeline shape of Fig. 4. */
OpGraph
pipelineGraph()
{
    OpGraph g;
    NodeId input = g.addNode("input", Phase::Untagged, 0.1);
    NodeId percept = g.addNode("perception", Phase::Neural, 2.0);
    NodeId infer = g.addNode("scene_inference", Phase::Symbolic, 1.0);
    NodeId abduce = g.addNode("rule_abduction", Phase::Symbolic, 5.0);
    NodeId exec = g.addNode("rule_execution", Phase::Symbolic, 1.5);
    NodeId answer = g.addNode("answer", Phase::Untagged, 0.1);
    g.addEdge(input, percept);
    g.addEdge(percept, infer);
    g.addEdge(infer, abduce);
    g.addEdge(abduce, exec);
    g.addEdge(exec, answer);
    return g;
}

TEST(OpGraph, CriticalPathOfChainIsWholeChain)
{
    OpGraph g = pipelineGraph();
    EXPECT_TRUE(g.isAcyclic());
    auto path = g.criticalPath();
    EXPECT_EQ(path.size(), 6u);
    EXPECT_NEAR(g.criticalPathSeconds(), 9.7, 1e-9);
    EXPECT_NEAR(g.totalSeconds(), 9.7, 1e-9);
    EXPECT_NEAR(g.parallelSpeedupBound(), 1.0, 1e-9);
}

TEST(OpGraph, SymbolicFractionOnCriticalPath)
{
    OpGraph g = pipelineGraph();
    EXPECT_NEAR(g.symbolicCriticalFraction(), 7.5 / 9.7, 1e-9);
}

TEST(OpGraph, DiamondPicksLongerBranch)
{
    OpGraph g;
    NodeId a = g.addNode("a", Phase::Neural, 1.0);
    NodeId fast = g.addNode("fast", Phase::Neural, 0.5);
    NodeId slow = g.addNode("slow", Phase::Symbolic, 3.0);
    NodeId join = g.addNode("join", Phase::Symbolic, 1.0);
    g.addEdge(a, fast);
    g.addEdge(a, slow);
    g.addEdge(fast, join);
    g.addEdge(slow, join);

    auto path = g.criticalPath();
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(g.node(path[1]).name, "slow");
    EXPECT_NEAR(g.criticalPathSeconds(), 5.0, 1e-9);
    // Total work 5.5, critical path 5.0.
    EXPECT_NEAR(g.parallelSpeedupBound(), 5.5 / 5.0, 1e-9);
}

TEST(OpGraph, ParallelBranchesExposeSpeedup)
{
    OpGraph g;
    NodeId src = g.addNode("src", Phase::Untagged, 0.0);
    for (int i = 0; i < 4; i++) {
        NodeId n = g.addNode("branch" + std::to_string(i),
                             Phase::Symbolic, 1.0);
        g.addEdge(src, n);
    }
    EXPECT_NEAR(g.criticalPathSeconds(), 1.0, 1e-9);
    EXPECT_NEAR(g.parallelSpeedupBound(), 4.0, 1e-9);
}

TEST(OpGraph, FindNode)
{
    OpGraph g = pipelineGraph();
    EXPECT_LT(g.findNode("rule_abduction"), g.size());
    EXPECT_EQ(g.findNode("missing"), g.size());
}

TEST(OpGraph, TopoOrderRespectsEdges)
{
    OpGraph g = pipelineGraph();
    auto order = g.topoOrder();
    ASSERT_EQ(order.size(), g.size());
    std::vector<size_t> pos(g.size());
    for (size_t i = 0; i < order.size(); i++)
        pos[order[i]] = i;
    for (NodeId id = 0; id < g.size(); id++) {
        for (NodeId next : g.successors(id))
            EXPECT_LT(pos[id], pos[next]);
    }
}

TEST(OpGraph, DetectsCycle)
{
    OpGraph g;
    NodeId a = g.addNode("a", Phase::Neural, 1.0);
    NodeId b = g.addNode("b", Phase::Symbolic, 1.0);
    g.addEdge(a, b);
    g.addEdge(b, a);
    EXPECT_FALSE(g.isAcyclic());
    EXPECT_DEATH(g.topoOrder(), "cycle");
}

TEST(OpGraph, EmptyGraph)
{
    OpGraph g;
    EXPECT_TRUE(g.isAcyclic());
    EXPECT_TRUE(g.criticalPath().empty());
    EXPECT_DOUBLE_EQ(g.criticalPathSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(g.symbolicCriticalFraction(), 0.0);
}

TEST(OpGraph, DotOutputContainsNodesAndEdges)
{
    OpGraph g = pipelineGraph();
    std::string dot = g.toDot("nvsa");
    EXPECT_NE(dot.find("digraph \"nvsa\""), std::string::npos);
    EXPECT_NE(dot.find("perception"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_NE(dot.find("shape=box"), std::string::npos);
}

TEST(OpGraphDeath, RejectsSelfLoopAndBadIds)
{
    OpGraph g;
    NodeId a = g.addNode("a", Phase::Neural, 1.0);
    EXPECT_DEATH(g.addEdge(a, a), "self loop");
    EXPECT_DEATH(g.addEdge(a, 99), "out of range");
}

} // namespace
