/**
 * @file
 * reseedEpisodes purity under interleaved, out-of-order reseeds.
 *
 * The serving runtime and the stage-pipeline executor both lean on
 * the same contract: after reseedEpisodes(s), run() is a pure
 * function of (model, s), no matter what the instance executed
 * before. These tests attack the "no matter what" clause for the
 * five precompute-heavy workloads — replaying seeds out of order,
 * re-running earlier seeds after later ones, and superseding a
 * reseed before it is ever run — and require bit-identical scores
 * throughout.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "workloads/lnn.hh"
#include "workloads/ltn.hh"
#include "workloads/nlm.hh"
#include "workloads/nvsa.hh"
#include "workloads/prae.hh"

namespace
{

using namespace nsbench;

void
expectPureUnderInterleaving(core::Workload &workload)
{
    workload.setUp(7);

    std::map<uint64_t, double> expected;
    for (uint64_t seed : {21u, 22u, 23u}) {
        workload.reseedEpisodes(seed);
        expected[seed] = workload.run();
    }

    // Replay in an adversarial order: jump backwards, repeat a seed,
    // revisit. Every score must match its first occurrence exactly.
    for (uint64_t seed : {23u, 21u, 23u, 22u, 21u}) {
        workload.reseedEpisodes(seed);
        double score = workload.run();
        EXPECT_EQ(score, expected[seed]) << "seed " << seed;
    }

    // A reseed that is superseded before running must leave no
    // trace: only the last reseed before run() counts.
    workload.reseedEpisodes(21);
    workload.reseedEpisodes(23);
    EXPECT_EQ(workload.run(), expected[23]);
}

TEST(ReseedPurity, Nvsa)
{
    // Serve-sized model: purity is about state handling, not scale.
    workloads::NvsaConfig config;
    config.hvDim = 256;
    config.episodes = 1;
    workloads::NvsaWorkload workload(config);
    expectPureUnderInterleaving(workload);
}

TEST(ReseedPurity, Prae)
{
    workloads::PraeConfig config;
    config.episodes = 1;
    workloads::PraeWorkload workload(config);
    expectPureUnderInterleaving(workload);
}

TEST(ReseedPurity, Lnn)
{
    workloads::LnnWorkload workload;
    expectPureUnderInterleaving(workload);
}

TEST(ReseedPurity, Ltn)
{
    workloads::LtnWorkload workload;
    expectPureUnderInterleaving(workload);
}

TEST(ReseedPurity, Nlm)
{
    workloads::NlmWorkload workload;
    expectPureUnderInterleaving(workload);
}

} // namespace
