#include <gtest/gtest.h>

#include "data/raven.hh"
#include "workloads/perception.hh"

namespace
{

using namespace nsbench;
using namespace nsbench::workloads;
using data::AttributeId;
using data::RavenGenerator;

class PerceptionTest : public testing::TestWithParam<int>
{
  protected:
    int grid() const { return GetParam(); }
};

TEST_P(PerceptionTest, RecoversPanelAttributes)
{
    RavenGenerator gen(grid(), 77);
    RavenPerception perception(grid(), 77);

    int checked = 0, number_ok = 0, type_ok = 0, size_ok = 0,
        color_ok = 0;
    for (int trial = 0; trial < 5; trial++) {
        data::RpmPuzzle puzzle = gen.generate();
        for (const auto &panel : puzzle.context) {
            auto belief = perception.perceive(gen.render(panel));
            checked++;
            auto mode = [](const tensor::Tensor &pmf) {
                int best = 0;
                for (int64_t v = 1; v < pmf.numel(); v++) {
                    if (pmf(v) > pmf(best))
                        best = static_cast<int>(v);
                }
                return best;
            };
            if (mode(belief.pmfs[0]) ==
                panel.value(AttributeId::Number))
                number_ok++;
            if (mode(belief.pmfs[1]) ==
                panel.value(AttributeId::Type))
                type_ok++;
            if (mode(belief.pmfs[2]) ==
                panel.value(AttributeId::Size))
                size_ok++;
            if (mode(belief.pmfs[3]) ==
                panel.value(AttributeId::Color))
                color_ok++;
        }
    }
    // The template estimator should be essentially exact on the
    // renderer's own output.
    EXPECT_EQ(number_ok, checked);
    EXPECT_GE(type_ok, checked * 9 / 10);
    EXPECT_GE(size_ok, checked * 7 / 10);
    EXPECT_GE(color_ok, checked * 9 / 10);
}

TEST_P(PerceptionTest, PmfsAreNormalized)
{
    RavenGenerator gen(grid(), 5);
    RavenPerception perception(grid(), 5);
    data::RpmPuzzle puzzle = gen.generate();
    auto belief = perception.perceive(gen.render(puzzle.context[0]));
    for (const auto &pmf : belief.pmfs) {
        float sum = 0.0f;
        for (int64_t v = 0; v < pmf.numel(); v++) {
            EXPECT_GE(pmf(v), 0.0f);
            sum += pmf(v);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-4);
    }
    EXPECT_FALSE(belief.cellBeliefs.empty());
}

TEST_P(PerceptionTest, BatchMatchesSingle)
{
    RavenGenerator gen(grid(), 9);
    RavenPerception perception(grid(), 9);
    data::RpmPuzzle puzzle = gen.generate();
    std::vector<tensor::Tensor> images;
    for (int i = 0; i < 4; i++)
        images.push_back(
            gen.render(puzzle.context[static_cast<size_t>(i)]));
    auto batch = perception.perceiveBatch(images);
    ASSERT_EQ(batch.size(), 4u);
    for (int i = 0; i < 4; i++) {
        auto single =
            perception.perceive(images[static_cast<size_t>(i)]);
        for (size_t a = 0; a < data::numAttributes; a++) {
            ASSERT_EQ(batch[static_cast<size_t>(i)].pmfs[a].numel(),
                      single.pmfs[a].numel());
            for (int64_t v = 0; v < single.pmfs[a].numel(); v++) {
                EXPECT_FLOAT_EQ(
                    batch[static_cast<size_t>(i)].pmfs[a](v),
                    single.pmfs[a](v));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Grids, PerceptionTest,
                         testing::Values(1, 2, 3));

} // namespace
