/**
 * @file
 * End-to-end integration tests: every workload must solve its task
 * well above chance AND produce a profiler stream with both neural
 * and symbolic phases populated.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/profiler.hh"
#include "core/report.hh"
#include "core/workload.hh"
#include "workloads/lnn.hh"
#include "workloads/ltn.hh"
#include "workloads/nlm.hh"
#include "workloads/nvsa.hh"
#include "workloads/prae.hh"
#include "workloads/register.hh"
#include "workloads/vsait.hh"
#include "workloads/zeroc.hh"

namespace
{

using namespace nsbench;
using namespace nsbench::workloads;
using core::Phase;

/** Runs a workload and returns (score, split) with a clean profiler. */
std::pair<double, core::PhaseSplit>
runProfiled(core::Workload &workload, uint64_t seed)
{
    workload.setUp(seed);
    auto &prof = core::globalProfiler();
    prof.reset();
    double score = workload.run();
    auto split = core::phaseSplit(prof);
    prof.reset();
    return {score, split};
}

void
expectBothPhases(const core::PhaseSplit &split)
{
    EXPECT_GT(split.neuralSeconds, 0.0);
    EXPECT_GT(split.symbolicSeconds, 0.0);
    // Nothing substantial escapes phase attribution.
    EXPECT_LT(split.untaggedSeconds, 0.05 * split.total());
}

TEST(Registry, AllSevenRegistered)
{
    registerAllWorkloads();
    registerAllWorkloads(); // idempotent
    auto names = core::WorkloadRegistry::global().names();
    EXPECT_EQ(names.size(), 7u);
    for (const char *name :
         {"LNN", "LTN", "NVSA", "NLM", "VSAIT", "ZeroC", "PrAE"}) {
        EXPECT_TRUE(core::WorkloadRegistry::global().contains(name))
            << name;
    }
}

TEST(LnnWorkload, ProvesAllSeniorStudents)
{
    LnnWorkload w(LnnConfig{2, 3, 16, 2, 8});
    auto [score, split] = runProfiled(w, 11);
    EXPECT_DOUBLE_EQ(score, 1.0);
    expectBothPhases(split);
    EXPECT_GT(w.storageBytes(), 0u);
}

TEST(LnnWorkload, RepeatedRunsAreStable)
{
    LnnWorkload w(LnnConfig{2, 3, 16, 2, 8});
    w.setUp(11);
    EXPECT_DOUBLE_EQ(w.run(), 1.0);
    EXPECT_DOUBLE_EQ(w.run(), 1.0);
}

TEST(LtnWorkload, TheoryIsWellSatisfied)
{
    LtnWorkload w(LtnConfig{80, 8, 32, 6, 2});
    auto [score, split] = runProfiled(w, 13);
    // A trained grounding satisfies the theory far above the 0.5 a
    // vacuous/random grounding would give.
    EXPECT_GT(score, 0.7);
    EXPECT_LE(score, 1.0);
    expectBothPhases(split);
}

TEST(NvsaWorkload, SolvesRpmAboveChance)
{
    NvsaWorkload w(NvsaConfig{2, 512, 6});
    auto [score, split] = runProfiled(w, 17);
    // Chance is 1/8 = 0.125.
    EXPECT_GE(score, 0.5);
    expectBothPhases(split);
    // Codebooks dominate model storage (paper Takeaway 4).
    EXPECT_GT(w.storageBytes(), 500u * 1024);
}

TEST(NvsaWorkload, QuantizedComboBookPreservesAccuracy)
{
    NvsaConfig fp32_config{2, 512, 4, false};
    NvsaConfig int8_config{2, 512, 4, true};
    NvsaWorkload fp32(fp32_config);
    NvsaWorkload int8(int8_config);
    fp32.setUp(53);
    int8.setUp(53);
    double fp32_score = fp32.run();
    double int8_score = int8.run();
    // Same puzzles, same answers; only the cleanup store changed.
    EXPECT_DOUBLE_EQ(fp32_score, int8_score);
    EXPECT_LT(int8.storageBytes(), fp32.storageBytes());
}

TEST(NvsaWorkload, SymbolicDominatesRuntime)
{
    NvsaWorkload w(NvsaConfig{2, 1024, 2});
    auto [score, split] = runProfiled(w, 19);
    (void)score;
    // Takeaway 1/Fig. 2a: the VSA backend is the bottleneck.
    EXPECT_GT(split.symbolicFraction(), 0.7);
}

TEST(NlmWorkload, RecoversFamilyRelations)
{
    NlmWorkload w(NlmConfig{3, 6, 2});
    auto [score, split] = runProfiled(w, 23);
    EXPECT_GT(score, 0.95);
    expectBothPhases(split);
}

TEST(NlmWorkload, GeneralizesAcrossScale)
{
    // Trained on nothing — the wired program must work at any size
    // (the NLM paper's lifted-rule generalization claim).
    for (int people : {4, 10}) {
        NlmWorkload w(NlmConfig{3, people, 1});
        w.setUp(29);
        EXPECT_GT(w.run(), 0.95) << people;
    }
}

TEST(VsaitWorkload, PreservesSemantics)
{
    VsaitWorkload w(VsaitConfig{32, 4, 256, 3});
    auto [score, split] = runProfiled(w, 31);
    // Random patch matching would land near the label collision rate
    // (~0.4); the VSA pipeline must beat it.
    EXPECT_GT(score, 0.5);
    expectBothPhases(split);
}

TEST(ZerocWorkload, ClassifiesConceptsZeroShot)
{
    ZerocWorkload w(ZerocConfig{32, 8});
    auto [score, split] = runProfiled(w, 37);
    // Chance is 1/4.
    EXPECT_GE(score, 0.75);
    expectBothPhases(split);
}

TEST(PraeWorkload, SolvesRpmAboveChance)
{
    PraeWorkload w(PraeConfig{2, 6});
    auto [score, split] = runProfiled(w, 41);
    EXPECT_GE(score, 0.5);
    expectBothPhases(split);
}

TEST(PraeWorkload, AbductionSparsityRecorded)
{
    PraeWorkload w(PraeConfig{2, 2});
    w.setUp(43);
    auto &prof = core::globalProfiler();
    prof.reset();
    w.run();
    bool found = false;
    for (const auto &rec : prof.sparsityRecords()) {
        if (rec.stage.find("prae_rule_posterior") == 0) {
            found = true;
            // The rule posterior concentrates on few rules.
            EXPECT_GE(rec.ratio(), 0.4);
        }
    }
    EXPECT_TRUE(found);
    prof.reset();
}

TEST(NvsaWorkload, Fig5SparsityStagesRecorded)
{
    NvsaWorkload w(NvsaConfig{2, 512, 2});
    w.setUp(47);
    auto &prof = core::globalProfiler();
    prof.reset();
    w.run();
    int pmf_stages = 0, vsa_stages = 0, prob_stages = 0;
    double best_ratio = 0.0;
    for (const auto &rec : prof.sparsityRecords()) {
        if (rec.stage.find("pmf_to_vsa/") == 0) {
            pmf_stages++;
            // Every stage shows sparsity; the variation across
            // attributes is itself part of the Fig. 5 observation.
            EXPECT_GT(rec.ratio(), 0.25) << rec.stage;
            best_ratio = std::max(best_ratio, rec.ratio());
        }
        if (rec.stage.find("vsa_to_pmf/") == 0)
            vsa_stages++;
        if (rec.stage.find("prob_compute/") == 0)
            prob_stages++;
    }
    EXPECT_EQ(pmf_stages, 4);
    EXPECT_EQ(vsa_stages, 4);
    EXPECT_EQ(prob_stages, 4);
    // At least one attribute is very sparse.
    EXPECT_GT(best_ratio, 0.7);
    prof.reset();
}

TEST(Workloads, OpGraphsAreAcyclicWithSymbolicOnCriticalPath)
{
    registerAllWorkloads();
    auto &reg = core::WorkloadRegistry::global();
    for (const auto &name : reg.names()) {
        auto w = reg.create(name);
        auto graph = w->opGraph();
        EXPECT_TRUE(graph.isAcyclic()) << name;
        EXPECT_GE(graph.size(), 4u) << name;
        bool has_neural = false, has_symbolic = false;
        for (size_t i = 0; i < graph.size(); i++) {
            if (graph.node(i).phase == Phase::Neural)
                has_neural = true;
            if (graph.node(i).phase == Phase::Symbolic)
                has_symbolic = true;
        }
        EXPECT_TRUE(has_neural) << name;
        EXPECT_TRUE(has_symbolic) << name;
    }
}

TEST(Workloads, DeterministicScoresAcrossInstances)
{
    registerAllWorkloads();
    auto &reg = core::WorkloadRegistry::global();
    for (const auto &name : {"LNN", "LTN", "NLM", "VSAIT", "ZeroC"}) {
        auto a = reg.create(name);
        auto b = reg.create(name);
        a->setUp(99);
        b->setUp(99);
        EXPECT_DOUBLE_EQ(a->run(), b->run()) << name;
    }
}

} // namespace
