#include <gtest/gtest.h>

#include <cmath>

#include "nn/autograd.hh"
#include "tensor/ops.hh"
#include "util/rng.hh"

namespace
{

using namespace nsbench::nn;
using nsbench::tensor::Tensor;
using nsbench::util::Rng;

/**
 * Central-difference gradient check of a scalar-valued function of
 * one leaf.
 */
template <typename Fn>
void
checkGradient(Tensor leaf_value, Fn scalar_fn, float tol = 2e-2f)
{
    Variable leaf(leaf_value.clone(), /*requires_grad=*/true);
    Variable out = scalar_fn(leaf);
    ASSERT_EQ(out.value().numel(), 1);
    out.backward();
    Tensor analytic = leaf.grad().clone();

    const float eps = 1e-3f;
    for (int64_t i = 0; i < leaf_value.numel(); i++) {
        Tensor plus = leaf_value.clone();
        plus.flat(i) += eps;
        Tensor minus = leaf_value.clone();
        minus.flat(i) -= eps;
        float f_plus =
            scalar_fn(Variable(plus, false)).value().flat(0);
        float f_minus =
            scalar_fn(Variable(minus, false)).value().flat(0);
        float numeric = (f_plus - f_minus) / (2.0f * eps);
        EXPECT_NEAR(analytic.flat(i), numeric,
                    tol * std::max(1.0f, std::abs(numeric)))
            << "element " << i;
    }
}

TEST(Autograd, AddSubMulGradients)
{
    Rng rng(1);
    Tensor x = Tensor::randn({6}, rng);
    Tensor c = Tensor::randn({6}, rng);
    checkGradient(x, [&](Variable v) {
        Variable konst(c.clone());
        return meanAllV(mulV(addV(v, konst), subV(v, konst)));
    });
}

TEST(Autograd, SigmoidTanhReluGradients)
{
    Rng rng(2);
    Tensor x = Tensor::randn({8}, rng);
    checkGradient(x, [](Variable v) {
        return meanAllV(sigmoidV(v));
    });
    checkGradient(x, [](Variable v) { return meanAllV(tanhV(v)); });
    // Keep relu inputs away from the kink.
    Tensor far = Tensor({4}, {-2.0f, -0.7f, 0.9f, 1.8f});
    checkGradient(far, [](Variable v) {
        return meanAllV(reluV(v));
    });
}

TEST(Autograd, PowLogScalarGradients)
{
    Tensor x({4}, {0.3f, 0.8f, 1.4f, 2.2f});
    checkGradient(x, [](Variable v) {
        return meanAllV(powV(v, 3.0f));
    });
    checkGradient(x, [](Variable v) { return meanAllV(logV(v)); });
    checkGradient(x, [](Variable v) {
        return sumAllV(mulScalarV(addScalarV(v, 0.5f), 2.0f));
    });
}

TEST(Autograd, MatmulGradient)
{
    Rng rng(3);
    Tensor a = Tensor::randn({3, 4}, rng);
    Tensor b = Tensor::randn({4, 2}, rng);
    checkGradient(a, [&](Variable v) {
        return meanAllV(matmulV(v, Variable(b.clone())));
    });
    checkGradient(b, [&](Variable v) {
        return meanAllV(matmulV(Variable(a.clone()), v));
    });
}

TEST(Autograd, LinearGradientAllThreeInputs)
{
    Rng rng(4);
    Tensor x = Tensor::randn({5, 3}, rng);
    Tensor w = Tensor::randn({2, 3}, rng);
    Tensor bias = Tensor::randn({2}, rng);
    checkGradient(x, [&](Variable v) {
        return meanAllV(
            linearV(v, Variable(w.clone()), Variable(bias.clone())));
    });
    checkGradient(w, [&](Variable v) {
        return meanAllV(
            linearV(Variable(x.clone()), v, Variable(bias.clone())));
    });
    checkGradient(bias, [&](Variable v) {
        return meanAllV(
            linearV(Variable(x.clone()), Variable(w.clone()), v));
    });
}

TEST(Autograd, Conv2dGradientAllInputs)
{
    Rng rng(6);
    Tensor input = Tensor::randn({1, 2, 5, 5}, rng);
    Tensor weight = Tensor::randn({3, 2, 3, 3}, rng, 0.0f, 0.5f);
    Tensor bias = Tensor::randn({3}, rng);

    auto net = [&](Variable in, Variable w, Variable b) {
        return meanAllV(conv2dV(in, w, b, 1, 1));
    };
    checkGradient(input, [&](Variable v) {
        return net(v, Variable(weight.clone()),
                   Variable(bias.clone()));
    });
    checkGradient(weight, [&](Variable v) {
        return net(Variable(input.clone()), v,
                   Variable(bias.clone()));
    });
    checkGradient(bias, [&](Variable v) {
        return net(Variable(input.clone()),
                   Variable(weight.clone()), v);
    });
}

TEST(Autograd, Conv2dGradientStrided)
{
    Rng rng(8);
    Tensor input = Tensor::randn({2, 1, 6, 6}, rng);
    Tensor weight = Tensor::randn({2, 1, 3, 3}, rng, 0.0f, 0.5f);
    checkGradient(weight, [&](Variable v) {
        return meanAllV(
            conv2dV(Variable(input.clone()), v, Variable(), 2, 0));
    });
    checkGradient(input, [&](Variable v) {
        return meanAllV(conv2dV(v, Variable(weight.clone()),
                                Variable(), 2, 0));
    });
}

TEST(Autograd, LearnsAConvolutionFilter)
{
    // Recover a fixed 3x3 target filter by regression.
    Rng rng(9);
    Tensor target_filter = Tensor::randn({1, 1, 3, 3}, rng);
    Tensor x = Tensor::randn({4, 1, 8, 8}, rng);
    Tensor y = nsbench::tensor::conv2d(x, target_filter, Tensor(), 1,
                                       1);

    Variable w(Tensor::randn({1, 1, 3, 3}, rng, 0.0f, 0.1f), true);
    SgdOptimizer opt(0.05f);
    opt.addParameter(w);
    float loss_value = 1.0f;
    for (int epoch = 0; epoch < 150; epoch++) {
        Variable pred =
            conv2dV(Variable(x.clone()), w, Variable(), 1, 1);
        Variable err = subV(pred, Variable(y.clone()));
        Variable loss = meanAllV(mulV(err, err));
        loss.backward();
        opt.step();
        loss_value = loss.value().flat(0);
    }
    EXPECT_LT(loss_value, 1e-3f);
    for (int64_t i = 0; i < 9; i++)
        EXPECT_NEAR(w.value().flat(i), target_filter.flat(i), 0.05f);
}

TEST(Autograd, ReusedNodeAccumulatesBothPaths)
{
    // f(x) = mean(x*x + x): df/dx = 2x + 1.
    Tensor x({3}, {1.0f, -0.5f, 2.0f});
    Variable v(x.clone(), true);
    Variable out = meanAllV(addV(mulV(v, v), v));
    out.backward();
    for (int64_t i = 0; i < 3; i++) {
        EXPECT_NEAR(v.grad().flat(i),
                    (2.0f * x.flat(i) + 1.0f) / 3.0f, 1e-5);
    }
}

TEST(Autograd, NoGradLeavesStayClean)
{
    Variable frozen(Tensor({2}, {1, 2}), false);
    Variable live(Tensor({2}, {3, 4}), true);
    Variable out = sumAllV(mulV(frozen, live));
    out.backward();
    EXPECT_FALSE(frozen.requiresGrad());
    EXPECT_NEAR(live.grad().flat(0), 1.0f, 1e-6);
    EXPECT_NEAR(live.grad().flat(1), 2.0f, 1e-6);
}

TEST(Autograd, ZeroGradResets)
{
    Variable v(Tensor({2}, {1, 1}), true);
    sumAllV(v).backward();
    EXPECT_NEAR(v.grad().flat(0), 1.0f, 1e-6);
    v.zeroGrad();
    EXPECT_NEAR(v.grad().flat(0), 0.0f, 1e-6);
    // Gradients accumulate across backward calls until cleared.
    sumAllV(v).backward();
    sumAllV(v).backward();
    EXPECT_NEAR(v.grad().flat(0), 2.0f, 1e-6);
}

TEST(Autograd, SgdLearnsLinearRegression)
{
    // Fit y = x W*^T with W* = [[2, -1]].
    Rng rng(5);
    Tensor x = Tensor::randn({32, 2}, rng);
    Tensor w_star({1, 2}, {2.0f, -1.0f});
    Tensor y = nsbench::tensor::linear(x, w_star, Tensor());

    Variable w(Tensor::randn({1, 2}, rng, 0.0f, 0.1f), true);
    SgdOptimizer opt(0.1f);
    opt.addParameter(w);

    float final_loss = 1.0f;
    for (int epoch = 0; epoch < 200; epoch++) {
        Variable pred = linearV(Variable(x.clone()), w, Variable());
        Variable err = subV(pred, Variable(y.clone()));
        Variable loss = meanAllV(mulV(err, err));
        loss.backward();
        opt.step();
        final_loss = loss.value().flat(0);
    }
    EXPECT_LT(final_loss, 1e-4f);
    EXPECT_NEAR(w.value()(0, 0), 2.0f, 0.02f);
    EXPECT_NEAR(w.value()(0, 1), -1.0f, 0.02f);
}

TEST(Autograd, MlpLearnsXor)
{
    Tensor x({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
    Tensor y({4, 1}, {0, 1, 1, 0});

    Rng rng(7);
    Variable w1(Tensor::randn({8, 2}, rng, 0.0f, 1.0f), true);
    Variable b1(Tensor::zeros({8}), true);
    Variable w2(Tensor::randn({1, 8}, rng, 0.0f, 1.0f), true);
    Variable b2(Tensor::zeros({1}), true);

    SgdOptimizer opt(0.8f);
    for (Variable *p : {&w1, &b1, &w2, &b2})
        opt.addParameter(*p);

    float loss_value = 1.0f;
    for (int epoch = 0; epoch < 800; epoch++) {
        Variable h = tanhV(linearV(Variable(x.clone()), w1, b1));
        Variable pred = sigmoidV(linearV(h, w2, b2));
        Variable err = subV(pred, Variable(y.clone()));
        Variable loss = meanAllV(mulV(err, err));
        loss.backward();
        opt.step();
        loss_value = loss.value().flat(0);
    }
    EXPECT_LT(loss_value, 0.02f);
}

TEST(AutogradDeath, UndefinedVariable)
{
    Variable v;
    EXPECT_DEATH(v.value(), "undefined");
    EXPECT_DEATH(v.backward(), "undefined");
}

} // namespace
