#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hh"
#include "util/rng.hh"

namespace
{

using namespace nsbench::nn;
using nsbench::tensor::Shape;
using nsbench::tensor::Tensor;
using nsbench::util::Rng;

TEST(LinearLayer, ShapeAndDeterminism)
{
    Rng rng1(42), rng2(42);
    LinearLayer a(8, 4, rng1);
    LinearLayer b(8, 4, rng2);
    Rng data_rng(1);
    Tensor x = Tensor::randn({3, 8}, data_rng);
    Tensor ya = a.forward(x);
    Tensor yb = b.forward(x);
    ASSERT_EQ(ya.shape(), (Shape{3, 4}));
    for (int64_t i = 0; i < ya.numel(); i++)
        EXPECT_EQ(ya.flat(i), yb.flat(i));
}

TEST(LinearLayer, XavierBound)
{
    Rng rng(7);
    LinearLayer layer(100, 50, rng);
    float bound = std::sqrt(6.0f / 150.0f);
    for (float w : layer.weight().data()) {
        EXPECT_GE(w, -bound);
        EXPECT_LE(w, bound);
    }
}

TEST(LinearLayer, ParamBytes)
{
    Rng rng(1);
    LinearLayer with_bias(8, 4, rng, true);
    EXPECT_EQ(with_bias.paramBytes(), (8 * 4 + 4) * 4u);
    LinearLayer no_bias(8, 4, rng, false);
    EXPECT_EQ(no_bias.paramBytes(), 8 * 4 * 4u);
}

TEST(Conv2dLayer, OutputShape)
{
    Rng rng(3);
    Conv2dLayer layer(3, 8, 3, rng, 1, 1);
    Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
    Tensor y = layer.forward(x);
    EXPECT_EQ(y.shape(), (Shape{2, 8, 16, 16}));
    EXPECT_EQ(layer.paramBytes(), (8 * 3 * 3 * 3 + 8) * 4u);
}

TEST(ActivationLayer, AppliesNonlinearity)
{
    Tensor x({3}, {-1.0f, 0.0f, 2.0f});
    EXPECT_EQ(ActivationLayer(Activation::Relu).forward(x).flat(0),
              0.0f);
    EXPECT_NEAR(
        ActivationLayer(Activation::Sigmoid).forward(x).flat(1), 0.5f,
        1e-6);
    EXPECT_NEAR(ActivationLayer(Activation::Tanh).forward(x).flat(2),
                std::tanh(2.0f), 1e-6);
    EXPECT_EQ(
        ActivationLayer(Activation::Identity).forward(x).flat(0),
        -1.0f);
}

TEST(FlattenLayer, CollapsesTrailingDims)
{
    Tensor x = Tensor::ones({2, 3, 4, 5});
    Tensor y = FlattenLayer().forward(x);
    EXPECT_EQ(y.shape(), (Shape{2, 60}));
}

TEST(Sequential, ComposesAndCountsParams)
{
    Rng rng(5);
    Sequential net;
    net.add(std::make_unique<LinearLayer>(4, 8, rng));
    net.add(std::make_unique<ActivationLayer>(Activation::Relu));
    net.add(std::make_unique<LinearLayer>(8, 2, rng));
    Tensor x = Tensor::randn({5, 4}, rng);
    Tensor y = net.forward(x);
    EXPECT_EQ(y.shape(), (Shape{5, 2}));
    EXPECT_EQ(net.paramBytes(), ((4 * 8 + 8) + (8 * 2 + 2)) * 4u);
    EXPECT_EQ(net.size(), 3u);
    EXPECT_NE(net.describe().find("linear(4->8)"), std::string::npos);
}

TEST(MakeMlp, StructureAndOutput)
{
    Rng rng(9);
    auto mlp = makeMlp({10, 16, 16, 3}, Activation::Tanh, rng);
    // 3 linear layers + 2 activations.
    EXPECT_EQ(mlp->size(), 5u);
    Tensor x = Tensor::randn({4, 10}, rng);
    Tensor y = mlp->forward(x);
    EXPECT_EQ(y.shape(), (Shape{4, 3}));
}

TEST(MakeConvNet, EndsInProbabilities)
{
    Rng rng(11);
    auto net = makeConvNet(1, 16,
                           {{4, 3, 1, 1, true}, {8, 3, 1, 1, true}},
                           {32, 5}, rng);
    Tensor x = Tensor::randn({2, 1, 16, 16}, rng);
    Tensor y = net->forward(x);
    ASSERT_EQ(y.shape(), (Shape{2, 5}));
    for (int64_t r = 0; r < 2; r++) {
        float sum = 0.0f;
        for (int64_t c = 0; c < 5; c++) {
            EXPECT_GE(y(r, c), 0.0f);
            sum += y(r, c);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(MakeConvNetDeath, CollapsedSpatialExtent)
{
    Rng rng(1);
    EXPECT_DEATH(makeConvNet(1, 4, {{2, 5}}, {2}, rng), "collapsed");
}

TEST(MakeMlpDeath, TooFewWidths)
{
    Rng rng(1);
    EXPECT_DEATH(makeMlp({4}, Activation::Relu, rng), "at least");
}

} // namespace
