/**
 * @file
 * Circuit-breaker state-machine tests. Time is injected (the breaker
 * takes microsecond timestamps), so the full Closed -> Open ->
 * HalfOpen -> {Closed, Open} cycle is driven synthetically — no
 * sleeps, no clock reads, deterministic under any scheduler.
 */

#include <gtest/gtest.h>

#include "net/breaker.hh"

namespace
{

using namespace nsbench::net;

constexpr int64_t kSecond = 1'000'000;

BreakerOptions
fastOptions()
{
    BreakerOptions options;
    options.errorThreshold = 0.5;
    options.latencyFactor = 3.0;
    options.minSamples = 4;
    options.openSeconds = 1.0;
    options.halfOpenProbes = 1;
    return options;
}

TEST(Breaker, StartsClosedAndAllowsTraffic)
{
    CircuitBreaker breaker(fastOptions());
    EXPECT_EQ(breaker.state(0), BreakerState::Closed);
    EXPECT_TRUE(breaker.allow(0));
    BreakerSnapshot snap = breaker.snapshot(0);
    EXPECT_EQ(snap.opens, 0u);
    EXPECT_EQ(snap.samples, 0u);
}

TEST(Breaker, OpensOnErrorRateAfterMinSamples)
{
    CircuitBreaker breaker(fastOptions());
    // Three failures: under minSamples, must not trip yet.
    for (int i = 0; i < 3; i++)
        breaker.onFailure(0);
    EXPECT_EQ(breaker.state(0), BreakerState::Closed);
    // The fourth failure crosses minSamples with error EWMA 1.0.
    breaker.onFailure(0);
    EXPECT_EQ(breaker.state(0), BreakerState::Open);
    EXPECT_FALSE(breaker.allow(0));
    EXPECT_EQ(breaker.snapshot(0).opens, 1u);
}

TEST(Breaker, SuccessesKeepItClosed)
{
    CircuitBreaker breaker(fastOptions());
    for (int i = 0; i < 100; i++)
        breaker.onSuccess(0.010, 0.010, 0);
    EXPECT_EQ(breaker.state(0), BreakerState::Closed);
    BreakerSnapshot snap = breaker.snapshot(0);
    EXPECT_EQ(snap.opens, 0u);
    EXPECT_DOUBLE_EQ(snap.errorRate, 0.0);
}

TEST(Breaker, UnreachableTripsImmediately)
{
    // One refused dial must trip regardless of minSamples — a dead
    // endpoint is not a statistical signal (the old binary
    // down-marking, preserved).
    CircuitBreaker breaker(fastOptions());
    breaker.onUnreachable(0);
    EXPECT_EQ(breaker.state(0), BreakerState::Open);
    EXPECT_FALSE(breaker.allow(0));
    EXPECT_EQ(breaker.snapshot(0).opens, 1u);
}

TEST(Breaker, SlowNotDeadTripsOnLatencyEwma)
{
    // Every request answers Ok — just 10x over the healthy-peer
    // reference. The latency EWMA must trip it after minSamples.
    CircuitBreaker breaker(fastOptions());
    for (int i = 0; i < 8; i++)
        breaker.onSuccess(0.100, 0.010, 0);
    EXPECT_EQ(breaker.state(0), BreakerState::Open);
    BreakerSnapshot snap = breaker.snapshot(0);
    EXPECT_DOUBLE_EQ(snap.errorRate, 0.0); // No errors involved.
    EXPECT_GT(snap.latencySeconds, 0.030);
}

TEST(Breaker, ZeroReferenceDisablesTheLatencyTrigger)
{
    // A single-backend ring has no peers to compare against; with
    // reference 0 arbitrary slowness must not trip the breaker.
    CircuitBreaker breaker(fastOptions());
    for (int i = 0; i < 50; i++)
        breaker.onSuccess(10.0, 0.0, 0);
    EXPECT_EQ(breaker.state(0), BreakerState::Closed);
}

TEST(Breaker, HalfOpensAfterTheWindowAndCapsProbes)
{
    CircuitBreaker breaker(fastOptions());
    breaker.onUnreachable(0);
    // Still inside the open window: refused.
    EXPECT_FALSE(breaker.allow(kSecond / 2));
    // Window elapsed: exactly one probe (halfOpenProbes) admitted.
    EXPECT_TRUE(breaker.allow(kSecond + 1));
    EXPECT_EQ(breaker.state(kSecond + 1), BreakerState::HalfOpen);
    EXPECT_FALSE(breaker.allow(kSecond + 2));
    EXPECT_EQ(breaker.snapshot(kSecond + 2).probes, 1u);
}

TEST(Breaker, ProbeSuccessClosesAndResetsHistory)
{
    CircuitBreaker breaker(fastOptions());
    for (int i = 0; i < 4; i++)
        breaker.onFailure(0);
    ASSERT_EQ(breaker.state(0), BreakerState::Open);
    ASSERT_TRUE(breaker.allow(kSecond + 1));
    breaker.onSuccess(0.010, 0.010, kSecond + 2);
    EXPECT_EQ(breaker.state(kSecond + 2), BreakerState::Closed);
    // The backend re-earns trust from scratch: stale sick-era EWMAs
    // must not trip it again on the next outcome.
    BreakerSnapshot snap = breaker.snapshot(kSecond + 2);
    EXPECT_EQ(snap.samples, 1u);
    EXPECT_DOUBLE_EQ(snap.errorRate, 0.0);
    EXPECT_TRUE(breaker.allow(kSecond + 3));
}

TEST(Breaker, FailedProbeReopensForAnotherWindow)
{
    CircuitBreaker breaker(fastOptions());
    breaker.onUnreachable(0);
    ASSERT_TRUE(breaker.allow(kSecond + 1));
    breaker.onFailure(kSecond + 2);
    EXPECT_EQ(breaker.state(kSecond + 2), BreakerState::Open);
    EXPECT_EQ(breaker.snapshot(kSecond + 2).opens, 2u);
    // The new window counts from the re-trip, not the first one.
    EXPECT_FALSE(breaker.allow(kSecond + kSecond / 2));
    EXPECT_TRUE(breaker.allow(2 * kSecond + 3));
}

TEST(Breaker, SlowProbeSuccessStillReopens)
{
    // A probe that answers but is still latencyFactor over the
    // reference proves nothing recovered — answering slowly is the
    // condition the breaker exists to keep out of the ring.
    CircuitBreaker breaker(fastOptions());
    breaker.onUnreachable(0);
    ASSERT_TRUE(breaker.allow(kSecond + 1));
    breaker.onSuccess(0.100, 0.010, kSecond + 2);
    EXPECT_EQ(breaker.state(kSecond + 2), BreakerState::Open);
    EXPECT_EQ(breaker.snapshot(kSecond + 2).opens, 2u);
}

TEST(Breaker, MixedOutcomesBelowThresholdStayClosed)
{
    // 1-in-4 failures: error EWMA hovers near 0.25, below the 0.5
    // threshold — occasional failures must not flap the breaker.
    CircuitBreaker breaker(fastOptions());
    for (int round = 0; round < 25; round++) {
        for (int i = 0; i < 3; i++)
            breaker.onSuccess(0.010, 0.010, 0);
        breaker.onFailure(0);
    }
    EXPECT_EQ(breaker.state(0), BreakerState::Closed);
    BreakerSnapshot snap = breaker.snapshot(0);
    EXPECT_GT(snap.errorRate, 0.05);
    EXPECT_LT(snap.errorRate, 0.5);
}

TEST(Breaker, StateNamesAreStable)
{
    // Pinned: these strings appear in `route --json` output.
    EXPECT_STREQ(breakerStateName(BreakerState::Closed), "closed");
    EXPECT_STREQ(breakerStateName(BreakerState::Open), "open");
    EXPECT_STREQ(breakerStateName(BreakerState::HalfOpen),
                 "half_open");
}

} // namespace
