/**
 * @file
 * Tail-tolerance tier: everything the serving runtime does about
 * slow-not-dead peers, end to end.
 *
 *  - Delay failpoints (`~DELAYus`): the action is a sleep plus "no
 *    fault", the schedule stays a pure function of the spec, and
 *    malformed delay suffixes are rejected at parse time.
 *  - Wire boundaries: relative-deadline encoding at its edge cases,
 *    and the v2 Cancel frame round-trip.
 *  - Cancellation semantics: a canceled queued request answers
 *    Canceled without running, in-process and over the wire.
 *  - Version compatibility: a v1 client handshakes against the v2
 *    server and is served normally.
 *  - Bounded client calls: a connected-but-mute server cannot hang
 *    call() — it synthesizes Expired after deadline plus grace.
 *  - CoDel-style sojourn shedding: a queue that drains slowly sheds
 *    at submit even though it never fills.
 *  - Hedged requests: a delayed backend's keys still answer fast
 *    (the hedge to a healthy ring neighbour wins), byte-identically.
 *  - Reporting: `route --json`'s per-backend health fields, pinned.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/workload.hh"
#include "net/client.hh"
#include "net/router.hh"
#include "net/tcp_server.hh"
#include "net/wire.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "util/failpoint.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;
namespace fp = nsbench::util::failpoints;

/** Waits for one callback and hands back its response. */
class Waiter
{
  public:
    serve::Callback
    callback()
    {
        return [this](const serve::Response &response) {
            std::lock_guard<std::mutex> lock(mu_);
            response_ = response;
            done_ = true;
            cv_.notify_all();
        };
    }

    /** Blocks (bounded) until the callback fired. */
    serve::Response
    wait(double seconds = 10.0)
    {
        std::unique_lock<std::mutex> lock(mu_);
        EXPECT_TRUE(cv_.wait_for(
            lock, std::chrono::duration<double>(seconds),
            [this] { return done_; }))
            << "callback never fired";
        return response_;
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    serve::Response response_;
};

/** Forwards to the wrapped workload, stalling before each run().
 *  The failpoint registry is process-global and the server evaluates
 *  `serve.worker.delay` in every worker, so a multi-backend process
 *  scopes slowness to ONE backend by decorating its replicas with an
 *  unconditional sleep instead of arming the site. */
class DelayedWorkload : public core::Workload
{
  public:
    DelayedWorkload(std::unique_ptr<core::Workload> inner,
                    uint64_t delayUs)
        : inner_(std::move(inner)), delayUs_(delayUs)
    {
    }

    std::string name() const override { return inner_->name(); }
    core::Paradigm paradigm() const override
    {
        return inner_->paradigm();
    }
    std::string taskDescription() const override
    {
        return inner_->taskDescription();
    }
    void setUp(uint64_t seed) override { inner_->setUp(seed); }
    double
    run() override
    {
        std::this_thread::sleep_for(
            std::chrono::microseconds(delayUs_));
        return inner_->run();
    }
    void
    reseedEpisodes(uint64_t seed) override
    {
        inner_->reseedEpisodes(seed);
    }
    bool seedSensitive() const override
    {
        return inner_->seedSensitive();
    }
    core::OpGraph opGraph() const override
    {
        return inner_->opGraph();
    }
    uint64_t storageBytes() const override
    {
        return inner_->storageBytes();
    }

  private:
    std::unique_ptr<core::Workload> inner_;
    uint64_t delayUs_;
};

class Tail : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workloads::registerAllWorkloads();
    }

    void
    TearDown() override
    {
        fp::reset();
    }
};

// --- Delay failpoints -------------------------------------------------

TEST_F(Tail, DelaySuffixParsesIntoTheSiteSpec)
{
    std::map<std::string, fp::SiteSpec> sites;
    ASSERT_EQ(fp::parse("serve.worker.delay=0.5@9x20s2~1500", &sites),
              "");
    const fp::SiteSpec &spec = sites.at("serve.worker.delay");
    EXPECT_DOUBLE_EQ(spec.probability, 0.5);
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_EQ(spec.limit, 20u);
    EXPECT_EQ(spec.skip, 2u);
    EXPECT_EQ(spec.delayUs, 1500u);
}

TEST_F(Tail, MalformedDelaySuffixesAreRejected)
{
    std::map<std::string, fp::SiteSpec> sites;
    // Zero delay is meaningless (it would silently disable the
    // fault action); missing or non-numeric delays are malformed.
    EXPECT_NE(fp::parse("serve.worker.delay=0.5~0", &sites), "");
    EXPECT_NE(fp::parse("serve.worker.delay=0.5~", &sites), "");
    EXPECT_NE(fp::parse("serve.worker.delay=0.5~abc", &sites), "");
    EXPECT_NE(fp::parse("serve.worker.delay=0.5~-5", &sites), "");
}

TEST_F(Tail, FiringDelaySiteSleepsAndReportsNoFault)
{
    ASSERT_EQ(fp::configure("serve.worker.delay=1.0@7~30000"), "");
    auto start = std::chrono::steady_clock::now();
    bool fired = NSBENCH_FAILPOINT(fp::sites::kWorkerDelay);
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    // The action is the sleep; the *answer* is "no fault" — the
    // caller proceeds normally, just late.
    EXPECT_FALSE(fired);
    EXPECT_GE(elapsed, 0.025);
    fp::SiteStats stats = fp::stats().at("serve.worker.delay");
    EXPECT_EQ(stats.evaluations, 1u);
    EXPECT_EQ(stats.fires, 1u);
    EXPECT_EQ(stats.delays, 1u);
    EXPECT_EQ(stats.delayedUs, 30000u);
}

TEST_F(Tail, DelayScheduleIsAPureFunctionOfTheSpec)
{
    // Which evaluations sleep is decided by the same seeded stream
    // as fail-action sites: rearming the same spec must reproduce
    // the delay schedule index for index.
    const std::string spec = "serve.worker.delay=0.5@9~200";
    auto schedule = [&] {
        EXPECT_EQ(fp::configure(spec), "");
        std::vector<uint64_t> delays_after;
        for (int i = 0; i < 64; i++) {
            NSBENCH_FAILPOINT(fp::sites::kWorkerDelay);
            delays_after.push_back(
                fp::stats().at("serve.worker.delay").delays);
        }
        return delays_after;
    };
    std::vector<uint64_t> first = schedule();
    std::vector<uint64_t> second = schedule();
    EXPECT_EQ(first, second);
    // And the probability actually bites: some evaluations slept,
    // some did not.
    EXPECT_GT(first.back(), 0u);
    EXPECT_LT(first.back(), 64u);
}

// --- Wire boundaries --------------------------------------------------

TEST_F(Tail, DeadlineEncodingBoundaries)
{
    serve::TimePoint now = serve::ServeClock::now();
    // No deadline -> 0, the wire's "none" sentinel.
    EXPECT_EQ(net::encodeDeadlineUs(serve::noDeadline(), now), 0u);
    // Already expired -> 1, the minimum budget: the request still
    // crosses the wire so the *server* issues the rejection.
    EXPECT_EQ(net::encodeDeadlineUs(
                  now - std::chrono::seconds(5), now),
              1u);
    EXPECT_EQ(net::encodeDeadlineUs(now, now), 1u);
    // In range: microseconds, exactly.
    EXPECT_EQ(net::encodeDeadlineUs(
                  now + std::chrono::milliseconds(250), now),
              250'000u);
    // Beyond the u32 range (~71.6 min) clamps to the maximum budget
    // instead of wrapping into a tiny one.
    EXPECT_EQ(net::encodeDeadlineUs(now + std::chrono::hours(2),
                                    now),
              0xffffffffu);
}

TEST_F(Tail, MaximumDeadlineSurvivesTheWireRoundTrip)
{
    net::wire::RequestFrame request;
    request.id = 7;
    request.workload = "LNN";
    request.deadlineUs = 0xffffffffu;
    std::vector<uint8_t> bytes;
    net::wire::encodeRequest(request, &bytes);
    net::wire::Frame frame;
    auto result =
        net::wire::tryDecode(bytes.data(), bytes.size(), &frame);
    ASSERT_EQ(result.status, net::wire::DecodeStatus::Ok);
    ASSERT_EQ(frame.type, net::wire::FrameType::Request);
    EXPECT_EQ(frame.request.deadlineUs, 0xffffffffu);
}

TEST_F(Tail, CancelFrameRoundTripsOnTheWire)
{
    net::wire::CancelFrame cancel;
    cancel.id = 0x1122334455667788ULL;
    std::vector<uint8_t> bytes;
    net::wire::encodeCancel(cancel, &bytes);

    net::wire::Frame frame;
    auto result =
        net::wire::tryDecode(bytes.data(), bytes.size(), &frame);
    ASSERT_EQ(result.status, net::wire::DecodeStatus::Ok);
    ASSERT_EQ(frame.type, net::wire::FrameType::Cancel);
    EXPECT_EQ(frame.cancel.id, 0x1122334455667788ULL);
    EXPECT_EQ(result.consumed, bytes.size());

    // A truncated Cancel is an incomplete frame, never a crash.
    for (size_t cut = 1; cut < bytes.size(); cut++) {
        net::wire::Frame partial;
        EXPECT_EQ(net::wire::tryDecode(bytes.data(), cut, &partial)
                      .status,
                  net::wire::DecodeStatus::NeedMore)
            << "cut at " << cut;
    }
}

// --- Cancellation semantics -------------------------------------------

serve::ServerOptions
singleWorkerOptions()
{
    serve::ServerOptions options;
    options.workloads = {"LNN"};
    options.workers = 1;
    options.maxBatch = 1;
    options.maxWaitUs = 200;
    options.resultCache = false;
    options.factory = serve::serveFactory;
    return options;
}

TEST_F(Tail, WorkerDelaySiteStallsTheServersDispatch)
{
    // The armed site must bite inside the real worker path — not
    // only through decorated replicas — so `serve --faults
    // 'serve.worker.delay=...'` makes a genuinely slow backend.
    serve::Server server(singleWorkerOptions());
    ASSERT_EQ(fp::configure("serve.worker.delay=1.0@11~50000"), "");
    Waiter waiter;
    auto start = std::chrono::steady_clock::now();
    ASSERT_EQ(server.submit("LNN", 1, waiter.callback()),
              serve::RequestStatus::Ok);
    serve::Response response = waiter.wait();
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    EXPECT_EQ(response.status, serve::RequestStatus::Ok);
    EXPECT_GE(elapsed, 0.045);
    fp::SiteStats stats = fp::stats().at("serve.worker.delay");
    EXPECT_GE(stats.delays, 1u);
}

TEST_F(Tail, CanceledQueuedRequestAnswersCanceledWithoutRunning)
{
    serve::Server server(singleWorkerOptions());
    // Token set before the worker can pick the request up: the
    // worker must answer Canceled instead of executing.
    serve::CancelToken token =
        std::make_shared<std::atomic<bool>>(true);
    Waiter canceled;
    ASSERT_EQ(server.submit("LNN", 1, canceled.callback(),
                            serve::noDeadline(), token),
              serve::RequestStatus::Ok);
    EXPECT_EQ(canceled.wait().status,
              serve::RequestStatus::Canceled);
    EXPECT_GE(server.metrics().total().canceled, 1u);

    // Control: an unset token changes nothing.
    serve::CancelToken idle =
        std::make_shared<std::atomic<bool>>(false);
    Waiter normal;
    ASSERT_EQ(server.submit("LNN", 2, normal.callback(),
                            serve::noDeadline(), idle),
              serve::RequestStatus::Ok);
    EXPECT_EQ(normal.wait().status, serve::RequestStatus::Ok);
    server.shutdown();
}

TEST_F(Tail, WireCancelPrunesAQueuedRequest)
{
    // Hold the single worker busy with an injected 400ms sleep, so
    // the second request is reliably still queued when its Cancel
    // frame arrives.
    ASSERT_EQ(fp::configure("serve.worker.run=1.0@3~400000"), "");
    serve::Server server(singleWorkerOptions());
    net::TcpServer tcp(server);
    net::ClientOptions client_options;
    client_options.port = tcp.port();
    net::Client client(client_options);

    Waiter first;
    ASSERT_EQ(client.submitSeeded("LNN", 1, 0, first.callback()),
              serve::RequestStatus::Ok);
    // Give the worker time to pick request 1 up and start sleeping.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    Waiter second;
    uint64_t wire_id = 0;
    ASSERT_EQ(client.submitSeeded("LNN", 2, 0, second.callback(),
                                  serve::noDeadline(), &wire_id),
              serve::RequestStatus::Ok);
    ASSERT_NE(wire_id, 0u);
    client.cancel(wire_id);

    EXPECT_EQ(second.wait().status, serve::RequestStatus::Canceled);
    EXPECT_EQ(first.wait().status, serve::RequestStatus::Ok);
    EXPECT_EQ(client.stats().cancelsSent, 1u);
    EXPECT_GE(server.metrics().total().canceled, 1u);

    client.close();
    tcp.shutdown();
    server.shutdown();
}

// --- Version compatibility --------------------------------------------

int
rawDial(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

void
rawSend(int fd, const std::vector<uint8_t> &bytes)
{
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
}

/** Reads frames until one of the wanted type arrives (10s bound). */
net::wire::Frame
rawReadFrame(int fd, net::wire::FrameType wanted)
{
    timeval tv{10, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::vector<uint8_t> buf;
    while (true) {
        net::wire::Frame frame;
        auto result =
            net::wire::tryDecode(buf.data(), buf.size(), &frame);
        if (result.status == net::wire::DecodeStatus::Ok) {
            buf.erase(buf.begin(), buf.begin() + result.consumed);
            if (frame.type == wanted)
                return frame;
            continue;
        }
        EXPECT_EQ(result.status, net::wire::DecodeStatus::NeedMore);
        uint8_t chunk[512];
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        EXPECT_GT(n, 0) << "connection closed or timed out";
        if (n <= 0)
            return frame;
        buf.insert(buf.end(), chunk, chunk + n);
    }
}

TEST_F(Tail, V1ClientHandshakesAndIsServedByTheV2Server)
{
    serve::Server server(singleWorkerOptions());
    net::TcpServer tcp(server);

    int fd = rawDial(tcp.port());
    net::wire::HelloFrame hello;
    hello.version = 1; // A pre-Cancel peer.
    std::vector<uint8_t> bytes;
    net::wire::encodeHello(hello, &bytes);
    rawSend(fd, bytes);

    net::wire::Frame ack =
        rawReadFrame(fd, net::wire::FrameType::HelloAck);
    // The server negotiates down: this connection speaks v1 and
    // will never be sent (or accept) v2 frame types.
    EXPECT_EQ(ack.hello.version, 1u);

    net::wire::RequestFrame request;
    request.id = 1;
    request.workload = "LNN";
    request.episodeSeed = 3;
    bytes.clear();
    net::wire::encodeRequest(request, &bytes);
    rawSend(fd, bytes);
    net::wire::Frame response =
        rawReadFrame(fd, net::wire::FrameType::Response);
    EXPECT_EQ(response.response.id, 1u);
    EXPECT_EQ(response.response.status,
              static_cast<uint8_t>(serve::RequestStatus::Ok));

    ::close(fd);
    tcp.shutdown();
    server.shutdown();
}

// --- Bounded client calls ---------------------------------------------

/** A server that handshakes and then never answers anything. */
class MuteServer
{
  public:
    MuteServer()
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(fd_, 4), 0);
        socklen_t len = sizeof(addr);
        ::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len);
        port_ = ntohs(addr.sin_port);
        thread_ = std::thread([this] { serveMutely(); });
    }

    ~MuteServer()
    {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        if (thread_.joinable())
            thread_.join();
        if (client_ >= 0)
            ::close(client_);
    }

    uint16_t port() const { return port_; }

  private:
    void
    serveMutely()
    {
        client_ = ::accept(fd_, nullptr, nullptr);
        if (client_ < 0)
            return;
        // Complete the handshake so the client trusts the
        // connection, then read and discard everything: requests go
        // in, nothing ever comes out.
        std::vector<uint8_t> buf;
        timeval tv{10, 0};
        ::setsockopt(client_, SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof(tv));
        bool acked = false;
        while (true) {
            uint8_t chunk[512];
            ssize_t n = ::recv(client_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return;
            buf.insert(buf.end(), chunk, chunk + n);
            if (!acked) {
                net::wire::Frame frame;
                auto result = net::wire::tryDecode(
                    buf.data(), buf.size(), &frame);
                if (result.status != net::wire::DecodeStatus::Ok)
                    continue;
                buf.erase(buf.begin(),
                          buf.begin() + result.consumed);
                std::vector<uint8_t> ack;
                net::wire::encodeHelloAck(frame.hello, &ack);
                ::send(client_, ack.data(), ack.size(),
                       MSG_NOSIGNAL);
                acked = true;
            }
        }
    }

    int fd_ = -1;
    int client_ = -1;
    uint16_t port_ = 0;
    std::thread thread_;
};

TEST_F(Tail, CallIsBoundedAgainstAMuteServer)
{
    MuteServer mute;
    net::ClientOptions options;
    options.port = mute.port();
    options.callGraceSeconds = 0.2;
    net::Client client(options);

    auto start = std::chrono::steady_clock::now();
    serve::Response response = client.call(
        "LNN", 1,
        serve::ServeClock::now() + std::chrono::milliseconds(100));
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    // Deadline (0.1s) + grace (0.2s): the call must come back with
    // a synthesized Expired instead of hanging on the mute peer.
    EXPECT_EQ(response.status, serve::RequestStatus::Expired);
    EXPECT_LT(elapsed, 5.0);
    EXPECT_EQ(client.stats().callTimeouts, 1u);
    client.close();
}

// --- Sojourn shedding -------------------------------------------------

TEST_F(Tail, SojournGateShedsWhenTheQueueDrainsSlowly)
{
    // Each execution sleeps 60ms; the queue never fills (capacity
    // default) but drains far slower than the 2ms sojourn target —
    // the CoDel-style gate must start shedding at submit.
    ASSERT_EQ(fp::configure("serve.worker.run=1.0@5~60000"), "");
    serve::ServerOptions options = singleWorkerOptions();
    options.targetSojournUs = 2000;
    options.sojournGraceUs = 0;
    serve::Server server(options);

    std::atomic<int> callbacks{0};
    int shed = 0, admitted = 0;
    for (uint64_t seed = 0; seed < 24; seed++) {
        serve::RequestStatus status = server.submit(
            "LNN", seed,
            [&callbacks](const serve::Response &) { callbacks++; });
        if (status == serve::RequestStatus::RejectedOverload)
            shed++;
        else if (status == serve::RequestStatus::Ok)
            admitted++;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(shed, 0);
    EXPECT_GT(admitted, 0);
    server.shutdown();
    EXPECT_EQ(callbacks.load(), admitted);
    EXPECT_GE(server.metrics().total().sojournSheds,
              static_cast<uint64_t>(shed));
}

// --- Hedged requests --------------------------------------------------

TEST_F(Tail, HedgeCoversADelayedBackendByteIdentically)
{
    // Backend 0 sleeps 2s per execution (decorated replicas);
    // backend 1 is healthy. With hedging on and the breaker's
    // statistical triggers disabled, a key placed on the slow shard
    // must still answer fast — the hedge to the healthy neighbour
    // wins — and byte-identically to direct execution. The stall is
    // deliberately huge: the hedge path must beat it even when a
    // parallel ctest job owns the core for hundreds of ms.
    auto make_backend = [](bool slow) {
        serve::ServerOptions options;
        options.workloads = {"LNN"};
        options.workers = 2;
        options.maxBatch = 1;
        options.maxWaitUs = 200;
        options.resultCache = false;
        if (slow)
            options.factory = [](const std::string &name) {
                return std::make_unique<DelayedWorkload>(
                    serve::serveFactory(name), 2'000'000);
            };
        else
            options.factory = serve::serveFactory;
        struct Backend
        {
            std::unique_ptr<serve::Server> server;
            std::unique_ptr<net::TcpServer> tcp;
        };
        auto backend = std::make_unique<serve::Server>(options);
        auto tcp = std::make_unique<net::TcpServer>(*backend);
        return std::make_pair(std::move(backend), std::move(tcp));
    };
    auto [slow_server, slow_tcp] = make_backend(true);
    auto [fast_server, fast_tcp] = make_backend(false);

    net::RouterOptions options;
    options.backends = {
        "127.0.0.1:" + std::to_string(slow_tcp->port()),
        "127.0.0.1:" + std::to_string(fast_tcp->port())};
    options.hedging = true;
    options.hedgeMinSamples = 4;
    options.hedgeMaxDelaySeconds = 0.020;
    // Isolate hedging: the breaker may only trip on hard
    // unreachability, never on the latency EWMA.
    options.breaker.minSamples = ~0ull;
    net::Router router(options);
    net::ClientOptions client_options;
    client_options.port = router.port();
    net::Client client(client_options);

    // Split the key space by placement.
    std::vector<uint64_t> fast_keys, slow_keys;
    for (uint64_t seed = 0; seed < 64; seed++)
        (router.shardOf("LNN", 0, seed) == 0 ? slow_keys
                                             : fast_keys)
            .push_back(seed);
    ASSERT_GE(fast_keys.size(), 6u);
    ASSERT_GE(slow_keys.size(), 1u);

    // Prime the workload's p95 with healthy completions so hedging
    // arms (hedgeMinSamples) with a fast delay.
    for (size_t i = 0; i < 6; i++)
        ASSERT_EQ(client.call("LNN", fast_keys[i]).status,
                  serve::RequestStatus::Ok);

    // A slow-shard key: the primary sits in the 2s sleep; the
    // hedge must answer long before it.
    auto start = std::chrono::steady_clock::now();
    serve::Response response = client.call("LNN", slow_keys[0]);
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    EXPECT_EQ(response.status, serve::RequestStatus::Ok);
    EXPECT_LT(elapsed, 1.0) << "hedge did not cover the slow shard";

    net::HedgeStats hedges = router.hedgeStats();
    EXPECT_GE(hedges.hedgesSent, 1u);
    EXPECT_GE(hedges.hedgesWon, 1u);

    // First-response-wins is safe only because both answers are the
    // same bytes — check against direct execution.
    auto replica = serve::serveFactory("LNN");
    replica->setUp(serve::ServerOptions{}.modelSeed);
    replica->reseedEpisodes(slow_keys[0]);
    double direct = replica->run();
    EXPECT_EQ(std::memcmp(&response.score, &direct, sizeof direct),
              0);

    client.close();
    router.shutdown();
    slow_tcp->shutdown();
    fast_tcp->shutdown();
}

// --- Reporting --------------------------------------------------------

TEST_F(Tail, BackendJsonCarriesBreakerAndHedgeFields)
{
    struct Backend
    {
        std::unique_ptr<serve::Server> server;
        std::unique_ptr<net::TcpServer> tcp;
    };
    std::vector<Backend> backends(2);
    net::RouterOptions options;
    for (auto &backend : backends) {
        backend.server = std::make_unique<serve::Server>(
            singleWorkerOptions());
        backend.tcp =
            std::make_unique<net::TcpServer>(*backend.server);
        options.backends.push_back(
            "127.0.0.1:" + std::to_string(backend.tcp->port()));
    }
    net::Router router(options);
    net::ClientOptions client_options;
    client_options.port = router.port();
    net::Client client(client_options);
    for (uint64_t seed = 0; seed < 8; seed++)
        ASSERT_EQ(client.call("LNN", seed).status,
                  serve::RequestStatus::Ok);

    // The `route --json` contract: one object per backend with the
    // breaker state and the forwarding counters. Field names are
    // pinned here — dashboards parse them.
    std::string json = router.backendJson();
    for (const char *field :
         {"\"endpoint\"", "\"breaker\":\"closed\"", "\"down\"",
          "\"error_rate\"", "\"latency_ewma_seconds\"",
          "\"inflight\"", "\"forwarded\"", "\"hedges\"",
          "\"hedge_wins\"", "\"cancels\"", "\"failovers\"",
          "\"saturated\"", "\"trips\"", "\"probes\""})
        EXPECT_NE(json.find(field), std::string::npos)
            << "missing " << field << " in " << json;
    for (const auto &backend : options.backends)
        EXPECT_NE(json.find(backend), std::string::npos);

    client.close();
    router.shutdown();
    for (auto &backend : backends)
        backend.tcp->shutdown();
}

} // namespace
