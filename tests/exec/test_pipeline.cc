/**
 * @file
 * Stage-pipelined execution: byte-identity, ordering, stage reports,
 * failure propagation, and the server's intra-replica pipeline mode.
 *
 * The load-bearing invariant is byte-identity: for every workload
 * and every queue depth, exec::runPipelined must produce exactly the
 * scores of a serial reseedEpisodes + run() loop over the same
 * seeds. CI also runs this suite under TSan, which turns the
 * executor's cross-thread handoffs into checked synchronization.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "exec/pipeline.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

std::vector<uint64_t>
seedTrain(int episodes, uint64_t base = 42)
{
    std::vector<uint64_t> seeds;
    for (int i = 0; i < episodes; i++)
        seeds.push_back(exec::episodeSeed(base, i));
    return seeds;
}

/** All seven paper workloads at serve-preset sizes. */
std::vector<std::string>
allWorkloads()
{
    workloads::registerAllWorkloads();
    return {"LNN", "LTN", "NVSA", "NLM", "VSAIT", "ZeroC", "PrAE"};
}

/**
 * Deterministic two-stage workload: stage 0 squares the seed into
 * scratch, stage 1 folds it into a score. Cheap enough to drive
 * long episode trains through every queue depth.
 */
class ToyStaged : public core::Workload
{
  public:
    std::string name() const override { return "ToyStaged"; }
    core::Paradigm paradigm() const override
    {
        return core::Paradigm::NeuroPipeSymbolic;
    }
    std::string taskDescription() const override
    {
        return "two-stage arithmetic toy";
    }
    void setUp(uint64_t seed) override { model_ = seed | 1; }
    void reseedEpisodes(uint64_t seed) override { episode_ = seed; }
    double
    run() override
    {
        core::EpisodeState state;
        state.seed = episode_;
        runStage(0, state);
        runStage(1, state);
        return state.score;
    }
    int stageCount() const override { return 2; }
    core::StageSpec
    stageSpec(int stage) const override
    {
        return stage == 0
                   ? core::StageSpec{"square", core::Phase::Neural}
                   : core::StageSpec{"fold", core::Phase::Symbolic};
    }
    void
    runStage(int stage, core::EpisodeState &state) override
    {
        if (stage == 0) {
            state.scratch = std::make_shared<uint64_t>(
                episode_ * episode_ + model_);
        } else {
            auto value =
                std::static_pointer_cast<uint64_t>(state.scratch);
            state.score =
                static_cast<double>(*value % 1000003) / 1000003.0;
            state.scratch.reset();
        }
    }
    core::OpGraph opGraph() const override { return {}; }
    uint64_t storageBytes() const override { return sizeof(model_); }

  private:
    uint64_t model_ = 0;
    uint64_t episode_ = 0;
};

/** Throws from a configurable stage of a configurable episode. */
class FaultyStaged : public ToyStaged
{
  public:
    FaultyStaged(int failStage, int failEpisode)
        : failStage_(failStage), failEpisode_(failEpisode)
    {}
    void
    runStage(int stage, core::EpisodeState &state) override
    {
        if (stage == failStage_ && state.index == failEpisode_)
            throw std::runtime_error("injected stage failure");
        ToyStaged::runStage(stage, state);
    }

  private:
    int failStage_;
    int failEpisode_;
};

TEST(Pipeline, ByteIdenticalToSerialAcrossWorkloadsAndDepths)
{
    for (const std::string &name : allWorkloads()) {
        auto workload = serve::serveFactory(name);
        ASSERT_NE(workload, nullptr) << name;
        workload->setUp(7);
        auto seeds = seedTrain(4);
        std::vector<double> serial =
            exec::runSerialEpisodes(*workload, seeds);
        for (int depth : {1, 2, 4}) {
            exec::PipelineOptions options;
            options.depth = depth;
            options.collectProfiles = false;
            exec::PipelineResult piped =
                exec::runPipelined(*workload, seeds, options);
            ASSERT_EQ(piped.scores.size(), serial.size())
                << name << " depth " << depth;
            for (size_t i = 0; i < serial.size(); i++) {
                EXPECT_EQ(piped.scores[i], serial[i])
                    << name << " depth " << depth << " episode "
                    << i;
            }
        }
    }
}

TEST(Pipeline, SingleStageWorkloadDegeneratesToSerial)
{
    // VSAIT never overrode the staged interface, so it exercises the
    // default fused-stage path: one worker, scores still identical.
    auto workload = serve::serveFactory("VSAIT");
    workload->setUp(7);
    ASSERT_EQ(workload->stageCount(), 1);
    auto seeds = seedTrain(3);
    std::vector<double> serial =
        exec::runSerialEpisodes(*workload, seeds);
    exec::PipelineResult piped =
        exec::runPipelined(*workload, seeds);
    EXPECT_EQ(piped.scores, serial);
    ASSERT_EQ(piped.stages.size(), 1u);
}

TEST(Pipeline, LongTrainThroughToyStages)
{
    ToyStaged workload;
    workload.setUp(3);
    auto seeds = seedTrain(64, 100);
    std::vector<double> serial =
        exec::runSerialEpisodes(workload, seeds);
    for (int depth : {1, 2, 7}) {
        exec::PipelineOptions options;
        options.depth = depth;
        exec::PipelineResult piped =
            exec::runPipelined(workload, seeds, options);
        EXPECT_EQ(piped.scores, serial) << "depth " << depth;
    }
}

TEST(Pipeline, StageReportsMatchSpecs)
{
    ToyStaged workload;
    workload.setUp(3);
    exec::PipelineResult piped =
        exec::runPipelined(workload, 5, 42);
    ASSERT_EQ(piped.stages.size(), 2u);
    EXPECT_EQ(piped.stages[0].name, "square");
    EXPECT_EQ(piped.stages[0].phase, core::Phase::Neural);
    EXPECT_EQ(piped.stages[1].name, "fold");
    EXPECT_EQ(piped.stages[1].phase, core::Phase::Symbolic);
    ASSERT_EQ(piped.episodeStageSeconds.size(), 5u);
    for (const auto &episode : piped.episodeStageSeconds)
        ASSERT_EQ(episode.size(), 2u);
    EXPECT_GT(piped.wallSeconds, 0.0);
    EXPECT_GE(piped.busySeconds(), piped.bottleneckSeconds());
    EXPECT_GT(piped.overlapSpeedup(), 0.0);
}

TEST(Pipeline, EpisodeSeedsAreSequential)
{
    EXPECT_EQ(exec::episodeSeed(42, 0), 42u);
    EXPECT_EQ(exec::episodeSeed(42, 3), 45u);
    ToyStaged workload;
    workload.setUp(3);
    exec::PipelineResult spelled =
        exec::runPipelined(workload, seedTrain(6, 42));
    exec::PipelineResult counted = exec::runPipelined(workload, 6, 42);
    EXPECT_EQ(spelled.scores, counted.scores);
}

TEST(Pipeline, StageExceptionPropagatesFromEveryStage)
{
    for (int stage : {0, 1}) {
        FaultyStaged workload(stage, 2);
        workload.setUp(3);
        EXPECT_THROW(exec::runPipelined(workload, 8, 42,
                                        exec::PipelineOptions{1}),
                     std::runtime_error)
            << "failing stage " << stage;
    }
    // The failure must tear the pipeline down, not wedge it: a
    // full-depth train behind the faulting episode still returns.
    FaultyStaged workload(1, 0);
    workload.setUp(3);
    EXPECT_THROW(exec::runPipelined(workload, 32, 42),
                 std::runtime_error);
}

TEST(Pipeline, PredictedSpeedupModelsDedicatedUnits)
{
    // Perfectly balanced two-stage pipeline -> ~2x for long trains.
    double balanced =
        exec::predictedSpeedup({8.0, 8.0}, /*episodes=*/8);
    EXPECT_GT(balanced, 1.7);
    EXPECT_LE(balanced, 2.0 + 1e-9);
    // A dominant stage caps the win no matter the depth.
    double skewed = exec::predictedSpeedup({1.0, 15.0}, 8);
    EXPECT_LT(skewed, 1.15);
    // One stage cannot overlap with itself.
    EXPECT_DOUBLE_EQ(exec::predictedSpeedup({4.0}, 8), 1.0);
}

TEST(Pipeline, ServerPipelineModeIsByteIdentical)
{
    workloads::registerAllWorkloads();
    // NVSA at the serve preset is seed-sensitive and staged, so a
    // multi-seed batch coalesces into multiple groups the worker can
    // pipeline. Run the same request set through a pipelined and a
    // serial server; scores must agree request-for-request.
    auto runServer = [](int pipelineDepth) {
        serve::ServerOptions options;
        options.workloads = {"NVSA"};
        options.workers = 1;
        options.maxBatch = 8;
        options.maxWaitUs = 20000;
        options.pipelineDepth = pipelineDepth;
        options.factory = serve::serveFactory;
        serve::Server server(std::move(options));
        std::map<uint64_t, double> scores;
        std::map<uint64_t, bool> pipelined;
        std::vector<std::future<serve::Response>> futures;
        std::vector<uint64_t> seeds = {5, 6, 7, 8, 5, 6};
        std::vector<std::promise<serve::Response>> promises(
            seeds.size());
        for (size_t i = 0; i < seeds.size(); i++) {
            auto *promise = &promises[i];
            futures.push_back(promise->get_future());
            EXPECT_EQ(server.submit("NVSA", seeds[i],
                                    [promise](
                                        const serve::Response &r) {
                                        promise->set_value(r);
                                    }),
                      serve::RequestStatus::Ok);
        }
        for (size_t i = 0; i < seeds.size(); i++) {
            serve::Response response = futures[i].get();
            EXPECT_EQ(response.status, serve::RequestStatus::Ok);
            auto found = scores.find(seeds[i]);
            if (found != scores.end()) {
                EXPECT_EQ(found->second, response.score);
            }
            scores[seeds[i]] = response.score;
            pipelined[seeds[i]] = response.pipelined;
        }
        server.shutdown();
        return std::make_pair(scores, pipelined);
    };

    auto [piped, pipedFlags] = runServer(2);
    auto [serial, serialFlags] = runServer(0);
    ASSERT_EQ(piped.size(), serial.size());
    for (const auto &[seed, score] : serial) {
        ASSERT_TRUE(piped.count(seed));
        EXPECT_EQ(piped[seed], score) << "seed " << seed;
    }
    for (const auto &[seed, flag] : serialFlags)
        EXPECT_FALSE(flag) << "seed " << seed;
}

} // namespace
