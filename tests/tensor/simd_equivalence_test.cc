/**
 * @file
 * Scalar-vs-AVX2 equivalence for the tensor kernels.
 *
 * Property-based: shapes are randomized each trial (odd sizes,
 * non-multiples of the 8-lane vector width, size 0/1 edge cases) and
 * every op is evaluated three ways — scalar backend, SIMD backend at
 * width 1, and SIMD backend at widths 4 and 13 (oversubscribed on
 * small hosts). Pure element-wise maps must match bit-for-bit;
 * reductions and FMA-fused kernels must agree within 1e-5 relative
 * tolerance; index results (argmax) must be exactly equal.
 *
 * When the host lacks AVX2 the suite degenerates to scalar-vs-scalar
 * and is skipped.
 */

#include <gtest/gtest.h>

#include <cmath>

#include <functional>
#include <vector>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"

namespace
{

using namespace nsbench;
using nsbench::tensor::Tensor;
using nsbench::util::Rng;
using nsbench::util::ThreadPool;
namespace simd = nsbench::util::simd;

// Widths 4 and 13 oversubscribe small CI hosts on purpose: the chunk
// grid (and therefore the result) must not care.
const std::vector<int> kSimdWidths = {1, 4, 13};

// Sizes straddling the 8-lane float width and the 4x16 matmul tile:
// 0/1 degenerate, odd, one-below/at/one-above multiples.
const std::vector<int64_t> kEdgeSizes = {0,  1,  2,  3,  7,  8,  9,
                                         15, 16, 17, 31, 33, 63, 64,
                                         65, 100, 127};

double
relDiff(double got, double want)
{
    double denom = std::max(std::abs(want), 1.0);
    return std::abs(got - want) / denom;
}

class SimdEquivalence : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!simd::avx2Supported())
            GTEST_SKIP() << "host lacks AVX2; scalar-only build path "
                            "already covered by the seed suite";
    }

    ~SimdEquivalence() override
    {
        simd::resetBackend();
        ThreadPool::setGlobalThreads(0);
    }

    /** Runs fn under every (backend, width) combination and hands the
     * scalar width-1 reference plus each SIMD result to check. */
    void
    compareBackends(const std::function<Tensor()> &fn,
                    const std::function<void(const Tensor &,
                                             const Tensor &,
                                             int)> &check)
    {
        simd::setBackend(simd::Backend::Scalar);
        ThreadPool::setGlobalThreads(1);
        Tensor expect = fn();

        simd::setBackend(simd::Backend::Avx2);
        for (int width : kSimdWidths) {
            ThreadPool::setGlobalThreads(width);
            Tensor got = fn();
            ASSERT_EQ(got.shape(), expect.shape())
                << "width " << width;
            check(got, expect, width);
        }
        simd::resetBackend();
        ThreadPool::setGlobalThreads(0);
    }

    void
    expectBitEqual(const std::function<Tensor()> &fn)
    {
        compareBackends(fn, [](const Tensor &got, const Tensor &expect,
                               int width) {
            for (int64_t i = 0; i < got.numel(); i++)
                ASSERT_EQ(got.flat(i), expect.flat(i))
                    << "width " << width << " elem " << i;
        });
    }

    void
    expectClose(const std::function<Tensor()> &fn, double rtol = 1e-5)
    {
        compareBackends(fn, [rtol](const Tensor &got,
                                   const Tensor &expect, int width) {
            for (int64_t i = 0; i < got.numel(); i++)
                ASSERT_LE(relDiff(got.flat(i), expect.flat(i)), rtol)
                    << "width " << width << " elem " << i << ": got "
                    << got.flat(i) << " want " << expect.flat(i);
        });
    }

    void
    expectScalarClose(const std::function<double()> &fn,
                      double rtol = 1e-5)
    {
        simd::setBackend(simd::Backend::Scalar);
        ThreadPool::setGlobalThreads(1);
        double expect = fn();

        simd::setBackend(simd::Backend::Avx2);
        for (int width : kSimdWidths) {
            ThreadPool::setGlobalThreads(width);
            double got = fn();
            ASSERT_LE(relDiff(got, expect), rtol)
                << "width " << width << ": got " << got << " want "
                << expect;
        }
        simd::resetBackend();
        ThreadPool::setGlobalThreads(0);
    }

    void
    expectIndexEqual(const std::function<int64_t()> &fn)
    {
        simd::setBackend(simd::Backend::Scalar);
        ThreadPool::setGlobalThreads(1);
        int64_t expect = fn();

        simd::setBackend(simd::Backend::Avx2);
        for (int width : kSimdWidths) {
            ThreadPool::setGlobalThreads(width);
            ASSERT_EQ(fn(), expect) << "width " << width;
        }
        simd::resetBackend();
        ThreadPool::setGlobalThreads(0);
    }

    /** A random length mixing edge sizes with arbitrary draws. */
    int64_t
    randomLength()
    {
        if (rng.bernoulli(0.5)) {
            return kEdgeSizes[static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(kEdgeSizes.size()) - 1))];
        }
        return rng.uniformInt(1, 300);
    }

    Rng rng{20240806};
};

TEST_F(SimdEquivalence, ElementwiseBinaryBitExact)
{
    for (int trial = 0; trial < 30; trial++) {
        int64_t n = randomLength();
        Tensor a = Tensor::randn({n}, rng);
        Tensor b = Tensor::randn({n}, rng, 0.5f, 2.0f);
        expectBitEqual([&] { return tensor::add(a, b); });
        expectBitEqual([&] { return tensor::sub(a, b); });
        expectBitEqual([&] { return tensor::mul(a, b); });
        expectBitEqual([&] { return tensor::minimum(a, b); });
        expectBitEqual([&] { return tensor::maximum(a, b); });
    }
}

TEST_F(SimdEquivalence, DivisionBitExact)
{
    for (int trial = 0; trial < 10; trial++) {
        int64_t n = randomLength();
        Tensor a = Tensor::randn({n}, rng);
        // Denominators bounded away from zero.
        Tensor b = Tensor::rand({n}, rng, 0.5f, 3.0f);
        expectBitEqual([&] { return tensor::div(a, b); });
    }
}

TEST_F(SimdEquivalence, ElementwiseUnaryBitExact)
{
    for (int trial = 0; trial < 30; trial++) {
        int64_t n = randomLength();
        Tensor a = Tensor::randn({n}, rng);
        float s = rng.uniform(-2.0f, 2.0f);
        expectBitEqual([&] { return tensor::relu(a); });
        expectBitEqual([&] { return tensor::neg(a); });
        expectBitEqual([&] { return tensor::absOp(a); });
        expectBitEqual([&] { return tensor::addScalar(a, s); });
        expectBitEqual([&] { return tensor::mulScalar(a, s); });
        expectBitEqual([&] { return tensor::clamp(a, -0.5f, 0.5f); });
    }
}

TEST_F(SimdEquivalence, ReluNegativeZero)
{
    // relu(x) is `x > 0 ? x : 0`, which maps -0.0f to +0.0f; the AVX2
    // compare-and-mask path must preserve that, not pass -0.0 through.
    Tensor a({9});
    for (int64_t i = 0; i < 9; i++)
        a(i) = (i % 2 == 0) ? -0.0f : -1.0f;
    expectBitEqual([&] { return tensor::relu(a); });
}

TEST_F(SimdEquivalence, ReductionsClose)
{
    for (int trial = 0; trial < 30; trial++) {
        int64_t n = randomLength();
        Tensor a = Tensor::randn({n}, rng);
        Tensor b = Tensor::randn({n}, rng);
        expectScalarClose([&] {
            return static_cast<double>(tensor::sumAll(a));
        });
        if (n >= 1) {
            expectScalarClose([&] {
                return static_cast<double>(tensor::maxAll(a));
            });
            expectIndexEqual([&] { return tensor::argmaxAll(a); });
        }
        expectScalarClose(
            [&] { return static_cast<double>(tensor::dot(a, b)); });
    }
}

TEST_F(SimdEquivalence, ArgmaxDuplicateMaxima)
{
    // Repeated maxima at lane boundaries: both backends must report
    // the FIRST strict maximum.
    for (int64_t n : {8, 9, 16, 17, 64}) {
        Tensor a = Tensor::zeros({n});
        a(3 % n) = 5.0f;
        a(n - 1) = 5.0f;
        expectIndexEqual([&] { return tensor::argmaxAll(a); });
    }
}

TEST_F(SimdEquivalence, MatmulClose)
{
    for (int trial = 0; trial < 20; trial++) {
        int64_t m = rng.uniformInt(1, 33);
        int64_t k = randomLength();
        int64_t n = rng.uniformInt(1, 40);
        Tensor a = Tensor::randn({m, k}, rng);
        Tensor b = Tensor::randn({k, n}, rng);
        expectClose([&] { return tensor::matmul(a, b); });
    }
}

TEST_F(SimdEquivalence, MatmulDegenerateShapes)
{
    // Zero-extent inner/outer dimensions must produce identical
    // (all-zero or empty) outputs on both backends.
    Tensor a30 = Tensor::zeros({3, 0});
    Tensor b05 = Tensor::zeros({0, 5});
    expectBitEqual([&] { return tensor::matmul(a30, b05); });

    Tensor a04 = Tensor::zeros({0, 4});
    Tensor b42 = Tensor::randn({4, 2}, rng);
    expectBitEqual([&] { return tensor::matmul(a04, b42); });

    Tensor a11 = Tensor::full({1, 1}, 3.0f);
    Tensor b11 = Tensor::full({1, 1}, -2.0f);
    expectBitEqual([&] { return tensor::matmul(a11, b11); });
}

TEST_F(SimdEquivalence, LinearClose)
{
    for (int trial = 0; trial < 20; trial++) {
        int64_t n = rng.uniformInt(1, 17);
        int64_t k = randomLength();
        int64_t o = rng.uniformInt(1, 33);
        Tensor x = Tensor::randn({n, k}, rng);
        Tensor w = Tensor::randn({o, k}, rng);
        Tensor bias = Tensor::randn({o}, rng);
        expectClose([&] { return tensor::linear(x, w, bias); });
        expectClose([&] { return tensor::linear(x, w, Tensor()); });
    }
}

TEST_F(SimdEquivalence, EdgeSizesSweep)
{
    // Every edge size through the full kernel set, deterministically.
    for (int64_t n : kEdgeSizes) {
        Tensor a = Tensor::randn({n}, rng);
        Tensor b = Tensor::rand({n}, rng, 0.5f, 2.0f);
        expectBitEqual([&] { return tensor::add(a, b); });
        expectBitEqual([&] { return tensor::mul(a, b); });
        expectBitEqual([&] { return tensor::relu(a); });
        expectScalarClose([&] {
            return static_cast<double>(tensor::sumAll(a));
        });
        expectScalarClose(
            [&] { return static_cast<double>(tensor::dot(a, b)); });
        if (n >= 1)
            expectIndexEqual([&] { return tensor::argmaxAll(a); });
    }
}

} // namespace
