#include <gtest/gtest.h>

#include "core/profiler.hh"
#include "tensor/ops.hh"
#include "util/rng.hh"

namespace
{

using namespace nsbench::tensor;
using nsbench::util::Rng;

TEST(Transform, Transpose2d)
{
    Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor t = transpose2d(a);
    ASSERT_EQ(t.shape(), (Shape{3, 2}));
    EXPECT_EQ(t(0, 0), 1.0f);
    EXPECT_EQ(t(0, 1), 4.0f);
    EXPECT_EQ(t(2, 1), 6.0f);
}

TEST(Transform, TransposeTwiceIsIdentity)
{
    Rng rng(1);
    Tensor a = Tensor::randn({5, 7}, rng);
    Tensor b = transpose2d(transpose2d(a));
    for (int64_t i = 0; i < a.numel(); i++)
        EXPECT_EQ(a.flat(i), b.flat(i));
}

TEST(Transform, PermuteMatchesTransposeOnRank2)
{
    Rng rng(2);
    Tensor a = Tensor::randn({3, 4}, rng);
    Tensor p = permute(a, {1, 0});
    Tensor t = transpose2d(a);
    ASSERT_EQ(p.shape(), t.shape());
    for (int64_t i = 0; i < p.numel(); i++)
        EXPECT_EQ(p.flat(i), t.flat(i));
}

TEST(Transform, PermuteRank3)
{
    // [2,3,4] -> [4,2,3]
    Rng rng(3);
    Tensor a = Tensor::randn({2, 3, 4}, rng);
    Tensor p = permute(a, {2, 0, 1});
    ASSERT_EQ(p.shape(), (Shape{4, 2, 3}));
    for (int64_t i = 0; i < 2; i++) {
        for (int64_t j = 0; j < 3; j++) {
            for (int64_t k = 0; k < 4; k++)
                EXPECT_EQ(p(k, i, j), a(i, j, k));
        }
    }
}

TEST(Transform, PermuteIdentity)
{
    Rng rng(4);
    Tensor a = Tensor::randn({2, 2, 2}, rng);
    Tensor p = permute(a, {0, 1, 2});
    for (int64_t i = 0; i < a.numel(); i++)
        EXPECT_EQ(p.flat(i), a.flat(i));
}

TEST(Transform, ConcatAxis0)
{
    Tensor a({1, 2}, {1, 2});
    Tensor b({2, 2}, {3, 4, 5, 6});
    Tensor c = concat({a, b}, 0);
    ASSERT_EQ(c.shape(), (Shape{3, 2}));
    EXPECT_EQ(c(0, 1), 2.0f);
    EXPECT_EQ(c(2, 1), 6.0f);
}

TEST(Transform, ConcatAxis1)
{
    Tensor a({2, 1}, {1, 2});
    Tensor b({2, 2}, {3, 4, 5, 6});
    Tensor c = concat({a, b}, 1);
    ASSERT_EQ(c.shape(), (Shape{2, 3}));
    EXPECT_EQ(c(0, 0), 1.0f);
    EXPECT_EQ(c(0, 1), 3.0f);
    EXPECT_EQ(c(0, 2), 4.0f);
    EXPECT_EQ(c(1, 0), 2.0f);
    EXPECT_EQ(c(1, 2), 6.0f);
}

TEST(Transform, SliceMiddle)
{
    Tensor a({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
    Tensor s = slice(a, 0, 1, 2);
    ASSERT_EQ(s.shape(), (Shape{2, 2}));
    EXPECT_EQ(s(0, 0), 3.0f);
    EXPECT_EQ(s(1, 1), 6.0f);
}

TEST(Transform, SliceLastAxis)
{
    Tensor a({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
    Tensor s = slice(a, 1, 2, 2);
    ASSERT_EQ(s.shape(), (Shape{2, 2}));
    EXPECT_EQ(s(0, 0), 3.0f);
    EXPECT_EQ(s(1, 1), 8.0f);
}

TEST(Transform, SliceConcatRoundTrip)
{
    Rng rng(5);
    Tensor a = Tensor::randn({6, 3}, rng);
    Tensor top = slice(a, 0, 0, 2);
    Tensor rest = slice(a, 0, 2, 4);
    Tensor back = concat({top, rest}, 0);
    for (int64_t i = 0; i < a.numel(); i++)
        EXPECT_EQ(back.flat(i), a.flat(i));
}

TEST(Transform, GatherRows)
{
    Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
    Tensor g = gatherRows(a, {2, 0, 2});
    ASSERT_EQ(g.shape(), (Shape{3, 2}));
    EXPECT_EQ(g(0, 0), 5.0f);
    EXPECT_EQ(g(1, 0), 1.0f);
    EXPECT_EQ(g(2, 1), 6.0f);
}

TEST(Transform, MaskedSelect)
{
    Tensor a({4}, {10, 20, 30, 40});
    Tensor mask({4}, {1, 0, 0, 1});
    Tensor sel = maskedSelect(a, mask);
    ASSERT_EQ(sel.shape(), (Shape{2}));
    EXPECT_EQ(sel(0), 10.0f);
    EXPECT_EQ(sel(1), 40.0f);
}

TEST(Transform, MaskedSelectEmptyResult)
{
    Tensor a({2}, {1, 2});
    Tensor mask = Tensor::zeros({2});
    Tensor sel = maskedSelect(a, mask);
    EXPECT_EQ(sel.numel(), 0);
}

TEST(Transform, OneHot)
{
    Tensor oh = oneHot({2, 0}, 3);
    ASSERT_EQ(oh.shape(), (Shape{2, 3}));
    EXPECT_EQ(oh(0, 2), 1.0f);
    EXPECT_EQ(oh(0, 0), 0.0f);
    EXPECT_EQ(oh(1, 0), 1.0f);
}

TEST(Transform, CopyAndTransferAreDataMovement)
{
    auto &prof = nsbench::core::globalProfiler();
    prof.reset();
    Tensor a = Tensor::ones({16});
    Tensor c = copyTensor(a);
    Tensor d = transfer(a, "h2d");
    EXPECT_EQ(c.numel(), 16);
    EXPECT_EQ(d.numel(), 16);
    auto stats = prof.categoryTotals(
        nsbench::core::Phase::Untagged,
        nsbench::core::OpCategory::DataMovement);
    EXPECT_EQ(stats.invocations, 2u);
    EXPECT_DOUBLE_EQ(stats.bytesRead, 2 * 16 * 4.0);
    prof.reset();
}

TEST(TransformDeath, BadPermutation)
{
    Tensor a({2, 3});
    EXPECT_DEATH(permute(a, {0, 0}), "invalid permutation");
    EXPECT_DEATH(permute(a, {0}), "rank mismatch");
}

TEST(TransformDeath, SliceOutOfBounds)
{
    Tensor a({3});
    EXPECT_DEATH(slice(a, 0, 2, 2), "out of bounds");
}

TEST(TransformDeath, GatherBadIndex)
{
    Tensor a({2, 2});
    EXPECT_DEATH(gatherRows(a, {3}), "out of range");
}

} // namespace
