/**
 * @file
 * Parallel-vs-serial equivalence for the tensor kernels.
 *
 * Every kernel must produce the width-1 result at every pool width:
 * bit-identical for maps and one-owner-per-output kernels, <= 1e-5
 * relative for chunked float reductions (which are in fact also
 * bit-identical across widths because the chunk grid is fixed by the
 * grain — the tolerance only covers the serial-vs-chunked split).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "tensor/ops.hh"
#include "util/rng.hh"
#include "util/threadpool.hh"

namespace
{

using namespace nsbench::tensor;
using nsbench::util::Rng;
using nsbench::util::ThreadPool;

/** Widths to sweep: serial, small, typical, oversubscribed. */
const std::vector<int> kWidths = {1, 2, 4, 13};

class ParallelEquivalence : public testing::Test
{
  protected:
    ~ParallelEquivalence() override
    {
        ThreadPool::setGlobalThreads(0);
    }

    /** Runs fn at width 1, then expects fn to match at all widths. */
    void
    expectTensorStable(const std::function<Tensor()> &fn,
                       bool exact = true)
    {
        ThreadPool::setGlobalThreads(1);
        Tensor expect = fn();
        for (int width : kWidths) {
            ThreadPool::setGlobalThreads(width);
            Tensor got = fn();
            ASSERT_EQ(got.shape(), expect.shape());
            for (int64_t i = 0; i < got.numel(); i++) {
                if (exact) {
                    EXPECT_EQ(got.flat(i), expect.flat(i))
                        << "width " << width << " elem " << i;
                } else {
                    EXPECT_NEAR(got.flat(i), expect.flat(i),
                                1e-5 *
                                    (1.0 +
                                     std::abs(expect.flat(i))))
                        << "width " << width << " elem " << i;
                }
            }
        }
    }

    void
    expectScalarStable(const std::function<double()> &fn,
                       double rel_tol)
    {
        ThreadPool::setGlobalThreads(1);
        double expect = fn();
        for (int width : kWidths) {
            ThreadPool::setGlobalThreads(width);
            double got = fn();
            EXPECT_NEAR(got, expect,
                        rel_tol * (1.0 + std::abs(expect)))
                << "width " << width;
        }
    }

    Rng rng{1234};
};

TEST_F(ParallelEquivalence, Matmul)
{
    Tensor a = Tensor::randn({67, 129}, rng);
    Tensor b = Tensor::randn({129, 43}, rng);
    expectTensorStable([&] { return matmul(a, b); });
}

TEST_F(ParallelEquivalence, MatmulLargeEnoughToSplit)
{
    // Big enough that the row grain actually produces many chunks.
    Tensor a = Tensor::randn({128, 256}, rng);
    Tensor b = Tensor::randn({256, 128}, rng);
    expectTensorStable([&] { return matmul(a, b); });
}

TEST_F(ParallelEquivalence, Linear)
{
    Tensor x = Tensor::randn({33, 64}, rng);
    Tensor w = Tensor::randn({17, 64}, rng);
    Tensor bias = Tensor::randn({17}, rng);
    expectTensorStable([&] { return linear(x, w, bias); });
}

TEST_F(ParallelEquivalence, Conv2d)
{
    Tensor in = Tensor::randn({2, 3, 19, 23}, rng);
    Tensor w = Tensor::randn({8, 3, 3, 3}, rng);
    Tensor bias = Tensor::randn({8}, rng);
    expectTensorStable(
        [&] { return conv2d(in, w, bias, 1, 1); });
}

TEST_F(ParallelEquivalence, Pooling)
{
    Tensor in = Tensor::randn({2, 4, 20, 20}, rng);
    expectTensorStable([&] { return maxPool2d(in, 2, 2); });
    expectTensorStable([&] { return avgPool2d(in, 3, 2); });
}

TEST_F(ParallelEquivalence, ElementwiseMaps)
{
    Tensor a = Tensor::randn({100000}, rng);
    Tensor b = Tensor::randn({100000}, rng);
    expectTensorStable([&] { return add(a, b); });
    expectTensorStable([&] { return mul(a, b); });
    expectTensorStable([&] { return relu(a); });
    expectTensorStable([&] { return sigmoid(a); });
}

TEST_F(ParallelEquivalence, SumReduction)
{
    Tensor a = Tensor::randn({200003}, rng);
    expectScalarStable([&] { return sumAll(a); }, 1e-5);
}

TEST_F(ParallelEquivalence, MaxAndArgmax)
{
    Tensor a = Tensor::randn({150001}, rng);
    // Max/argmax are exact at any split.
    expectScalarStable([&] { return maxAll(a); }, 0.0);
    expectScalarStable(
        [&] { return static_cast<double>(argmaxAll(a)); }, 0.0);
}

TEST_F(ParallelEquivalence, Dot)
{
    Tensor a = Tensor::randn({120000}, rng);
    Tensor b = Tensor::randn({120000}, rng);
    expectScalarStable([&] { return dot(a, b); }, 1e-5);
}

TEST_F(ParallelEquivalence, AxisReductions)
{
    Tensor a = Tensor::randn({37, 41, 11}, rng);
    expectTensorStable([&] { return sumAxis(a, 1); });
    expectTensorStable([&] { return maxAxis(a, 0); });
    expectTensorStable([&] { return meanAxis(a, 2); });
}

TEST_F(ParallelEquivalence, RowTransforms)
{
    Tensor a = Tensor::randn({513, 97}, rng);
    expectTensorStable([&] { return softmax(a); });
    expectTensorStable([&] { return logSoftmax(a); });
    expectTensorStable([&] { return normalizeL2(a, 1e-8f); });
}

} // namespace
