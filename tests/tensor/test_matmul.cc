#include <gtest/gtest.h>

#include "core/profiler.hh"
#include "tensor/ops.hh"
#include "util/rng.hh"

namespace
{

using namespace nsbench::tensor;
using nsbench::core::globalProfiler;
using nsbench::core::OpCategory;
using nsbench::core::Phase;
using nsbench::util::Rng;

TEST(MatMul, Known2x2)
{
    Tensor a({2, 2}, {1, 2, 3, 4});
    Tensor b({2, 2}, {5, 6, 7, 8});
    Tensor c = matmul(a, b);
    EXPECT_EQ(c(0, 0), 19.0f);
    EXPECT_EQ(c(0, 1), 22.0f);
    EXPECT_EQ(c(1, 0), 43.0f);
    EXPECT_EQ(c(1, 1), 50.0f);
}

TEST(MatMul, RectangularShapes)
{
    Tensor a({1, 3}, {1, 2, 3});
    Tensor b({3, 2}, {1, 0, 0, 1, 1, 1});
    Tensor c = matmul(a, b);
    ASSERT_EQ(c.shape(), (Shape{1, 2}));
    EXPECT_EQ(c(0, 0), 4.0f);
    EXPECT_EQ(c(0, 1), 5.0f);
}

TEST(MatMul, IdentityIsNoOp)
{
    Rng rng(3);
    Tensor a = Tensor::randn({4, 4}, rng);
    Tensor eye = Tensor::zeros({4, 4});
    for (int64_t i = 0; i < 4; i++)
        eye(i, i) = 1.0f;
    Tensor c = matmul(a, eye);
    for (int64_t i = 0; i < 16; i++)
        EXPECT_NEAR(c.flat(i), a.flat(i), 1e-6);
}

TEST(MatMul, MatchesNaiveReference)
{
    Rng rng(5);
    Tensor a = Tensor::randn({7, 5}, rng);
    Tensor b = Tensor::randn({5, 9}, rng);
    Tensor c = matmul(a, b);
    for (int64_t i = 0; i < 7; i++) {
        for (int64_t j = 0; j < 9; j++) {
            float ref = 0.0f;
            for (int64_t k = 0; k < 5; k++)
                ref += a(i, k) * b(k, j);
            EXPECT_NEAR(c(i, j), ref, 1e-4);
        }
    }
}

TEST(MatMul, FlopAccounting)
{
    auto &prof = globalProfiler();
    prof.reset();
    {
        nsbench::core::PhaseScope scope(Phase::Neural, "t");
        Rng rng(1);
        Tensor a = Tensor::randn({3, 4}, rng);
        Tensor b = Tensor::randn({4, 5}, rng);
        matmul(a, b);
    }
    auto stats = prof.categoryTotals(Phase::Neural, OpCategory::MatMul);
    EXPECT_EQ(stats.invocations, 1u);
    EXPECT_DOUBLE_EQ(stats.flops, 2.0 * 3 * 4 * 5);
    EXPECT_DOUBLE_EQ(stats.bytesRead, (3 * 4 + 4 * 5) * 4.0);
    EXPECT_DOUBLE_EQ(stats.bytesWritten, 3 * 5 * 4.0);
    prof.reset();
}

TEST(Linear, MatchesMatmulTransposePlusBias)
{
    Rng rng(11);
    Tensor x = Tensor::randn({4, 6}, rng);
    Tensor w = Tensor::randn({3, 6}, rng);
    Tensor bias({3}, {0.5f, -0.5f, 1.0f});
    Tensor y = linear(x, w, bias);
    ASSERT_EQ(y.shape(), (Shape{4, 3}));
    Tensor ref = matmul(x, transpose2d(w));
    for (int64_t i = 0; i < 4; i++) {
        for (int64_t j = 0; j < 3; j++)
            EXPECT_NEAR(y(i, j), ref(i, j) + bias(j), 1e-4);
    }
}

TEST(Linear, EmptyBiasSkipsBias)
{
    Rng rng(12);
    Tensor x = Tensor::randn({2, 3}, rng);
    Tensor w = Tensor::randn({4, 3}, rng);
    Tensor y = linear(x, w, Tensor());
    Tensor ref = matmul(x, transpose2d(w));
    for (int64_t i = 0; i < y.numel(); i++)
        EXPECT_NEAR(y.flat(i), ref.flat(i), 1e-4);
}

TEST(Dot, KnownValue)
{
    Tensor a({3}, {1, 2, 3});
    Tensor b({3}, {4, -5, 6});
    EXPECT_EQ(dot(a, b), 12.0f);
}

TEST(MatMulDeath, InnerDimensionMismatch)
{
    Tensor a({2, 3});
    Tensor b({4, 2});
    EXPECT_DEATH(matmul(a, b), "inner dimension");
}

TEST(MatMulDeath, RankCheck)
{
    Tensor a({2, 3, 4});
    Tensor b({4, 2});
    EXPECT_DEATH(matmul(a, b), "rank-2");
    EXPECT_DEATH(dot(a, b), "rank-1");
}

} // namespace
