/**
 * @file
 * Allocator-policy tests: the arena must change where bytes live and
 * nothing else. Live-byte accounting, peaks, and workload results are
 * required to be identical in heap and arena mode; only the churn
 * counters may differ.
 */

#include <gtest/gtest.h>

#include "core/profiler.hh"
#include "tensor/alloc.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"
#include "util/arena.hh"
#include "util/rng.hh"
#include "workloads/lnn.hh"

namespace
{

using namespace nsbench;
using tensor::AllocatorKind;
using tensor::Tensor;

/** Pins one allocator for a test and restores the default after. */
class AllocTest : public testing::TestWithParam<AllocatorKind>
{
  protected:
    void
    SetUp() override
    {
        util::Arena::global().trim();
        util::Arena::global().resetStats();
        tensor::setAllocator(GetParam());
        core::globalProfiler().reset();
    }

    void
    TearDown() override
    {
        tensor::resetAllocator();
        util::Arena::global().trim();
        core::globalProfiler().reset();
    }
};

TEST(AllocPolicyTest, SetAllocatorOverridesAndNames)
{
    tensor::setAllocator(AllocatorKind::Arena);
    EXPECT_EQ(tensor::activeAllocator(), AllocatorKind::Arena);
    EXPECT_STREQ(tensor::activeAllocatorName(), "arena");
    tensor::setAllocator(AllocatorKind::Heap);
    EXPECT_EQ(tensor::activeAllocator(), AllocatorKind::Heap);
    EXPECT_STREQ(tensor::activeAllocatorName(), "heap");
    tensor::resetAllocator();
}

TEST(AllocPolicyTest, ArenaReusesStorageAcrossTensorLifetimes)
{
    tensor::setAllocator(AllocatorKind::Arena);
    util::Arena::global().trim();
    util::Arena::global().resetStats();

    { Tensor warm({1024}); } // dies: its block parks on a free list
    { Tensor reuse({1024}); }
    { Tensor again({1000}); } // same 4 KiB class despite smaller shape

    auto stats = util::Arena::global().stats();
    EXPECT_EQ(stats.freshAllocs, 1u);
    EXPECT_EQ(stats.reusedAllocs, 2u);

    tensor::resetAllocator();
    util::Arena::global().trim();
}

TEST(AllocPolicyTest, MixedModeReleaseHonorsProvenance)
{
    // A tensor created in arena mode must return to the arena even if
    // the mode flipped to heap while it was alive (and vice versa).
    tensor::setAllocator(AllocatorKind::Arena);
    util::Arena::global().trim();
    util::Arena::global().resetStats();
    {
        Tensor arena_born({512});
        tensor::setAllocator(AllocatorKind::Heap);
        Tensor heap_born({512});
        tensor::setAllocator(AllocatorKind::Arena);
    }
    auto stats = util::Arena::global().stats();
    EXPECT_EQ(stats.freshAllocs, 1u);
    EXPECT_EQ(stats.releases, 1u);

    tensor::resetAllocator();
    util::Arena::global().trim();
}

TEST_P(AllocTest, PeakTracksLiveLogicalBytesNotArenaCapacity)
{
    auto &prof = core::globalProfiler();

    // Two sequential short-lived tensors: the live high-water mark is
    // ONE tensor's logical size, even though the arena's capacity
    // could legally be anything.
    { Tensor a({1024}); }
    { Tensor b({1024}); }
    EXPECT_EQ(prof.peakBytes(), 1024u * sizeof(float));
    EXPECT_EQ(prof.currentBytes(), 0u);

    // Logical bytes, not the rounded size class: 100 floats = 400
    // bytes even though the arena block is 512.
    prof.reset();
    { Tensor c({100}); }
    EXPECT_EQ(prof.peakBytes(), 400u);
}

TEST_P(AllocTest, ChurnCountsAllocatorBehaviour)
{
    auto &prof = core::globalProfiler();
    { Tensor warm({100}); }
    prof.reset();
    { Tensor t({100}); }

    core::MemChurn churn = prof.memChurn();
    EXPECT_EQ(churn.allocs, 1u);
    EXPECT_EQ(churn.frees, 1u);
    if (GetParam() == AllocatorKind::Arena) {
        // Warmed pool: the alloc is recycled, counted in LOGICAL bytes.
        EXPECT_EQ(churn.recycledAllocs, 1u);
        EXPECT_EQ(churn.recycledBytes, 400u);
        EXPECT_EQ(churn.freshAllocs(), 0u);
    } else {
        EXPECT_EQ(churn.recycledAllocs, 0u);
        EXPECT_EQ(churn.freshAllocs(), 1u);
    }
}

TEST_P(AllocTest, OpResultsDoNotDependOnAllocator)
{
    util::Rng rng(123);
    Tensor a = Tensor::randn({64, 64}, rng);
    Tensor b = Tensor::randn({64, 64}, rng);
    Tensor sum = tensor::add(a, b);
    Tensor prod = tensor::matmul(a, b);

    // Recompute with the OTHER allocator: bit-identical results.
    tensor::setAllocator(GetParam() == AllocatorKind::Arena
                             ? AllocatorKind::Heap
                             : AllocatorKind::Arena);
    Tensor sum2 = tensor::add(a, b);
    Tensor prod2 = tensor::matmul(a, b);
    for (int64_t i = 0; i < sum.numel(); i++)
        ASSERT_EQ(sum.data()[static_cast<size_t>(i)],
                  sum2.data()[static_cast<size_t>(i)]);
    for (int64_t i = 0; i < prod.numel(); i++)
        ASSERT_EQ(prod.data()[static_cast<size_t>(i)],
                  prod2.data()[static_cast<size_t>(i)]);
}

INSTANTIATE_TEST_SUITE_P(
    BothAllocators, AllocTest,
    testing::Values(AllocatorKind::Heap, AllocatorKind::Arena),
    [](const testing::TestParamInfo<AllocatorKind> &info) {
        return std::string(tensor::allocatorName(info.param));
    });

TEST(AllocWorkloadTest, WorkloadScoreIdenticalAcrossAllocators)
{
    auto run_with = [](AllocatorKind kind) {
        tensor::setAllocator(kind);
        util::Arena::global().trim();
        workloads::LnnWorkload w(
            workloads::LnnConfig{2, 3, 16, 2, 8});
        w.setUp(11);
        core::globalProfiler().reset();
        double score = w.run();
        uint64_t peak = core::globalProfiler().peakBytes();
        core::globalProfiler().reset();
        return std::pair<double, uint64_t>(score, peak);
    };
    auto heap = run_with(AllocatorKind::Heap);
    auto arena = run_with(AllocatorKind::Arena);
    tensor::resetAllocator();
    util::Arena::global().trim();

    EXPECT_EQ(heap.first, arena.first);   // bit-identical score
    EXPECT_EQ(heap.second, arena.second); // identical Fig. 3b peak
}

} // namespace
