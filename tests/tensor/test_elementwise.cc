#include <gtest/gtest.h>

#include <cmath>

#include "core/profiler.hh"
#include "tensor/ops.hh"

namespace
{

using namespace nsbench::tensor;
using nsbench::core::globalProfiler;
using nsbench::core::OpCategory;
using nsbench::core::Phase;

TEST(Elementwise, BinaryOps)
{
    Tensor a({4}, {1, 2, 3, 4});
    Tensor b({4}, {4, 3, 2, 1});
    EXPECT_EQ(add(a, b).flat(0), 5.0f);
    EXPECT_EQ(sub(a, b).flat(0), -3.0f);
    EXPECT_EQ(mul(a, b).flat(1), 6.0f);
    EXPECT_EQ(div(a, b).flat(3), 4.0f);
    EXPECT_EQ(minimum(a, b).flat(0), 1.0f);
    EXPECT_EQ(maximum(a, b).flat(0), 4.0f);
}

TEST(Elementwise, ScalarOps)
{
    Tensor a({3}, {1, 2, 3});
    EXPECT_EQ(addScalar(a, 1.0f).flat(2), 4.0f);
    EXPECT_EQ(mulScalar(a, 2.0f).flat(2), 6.0f);
}

TEST(Elementwise, UnaryOps)
{
    Tensor a({4}, {-2, -0.5, 0.5, 2});
    Tensor r = relu(a);
    EXPECT_EQ(r.flat(0), 0.0f);
    EXPECT_EQ(r.flat(3), 2.0f);

    Tensor s = sigmoid(Tensor({1}, {0.0f}));
    EXPECT_NEAR(s.flat(0), 0.5f, 1e-6);

    EXPECT_NEAR(tanhOp(Tensor({1}, {1.0f})).flat(0), std::tanh(1.0f),
                1e-6);
    EXPECT_NEAR(expOp(Tensor({1}, {1.0f})).flat(0), std::exp(1.0f),
                1e-5);
    EXPECT_NEAR(logOp(Tensor({1}, {std::exp(2.0f)})).flat(0), 2.0f,
                1e-5);
    EXPECT_EQ(sqrtOp(Tensor({1}, {9.0f})).flat(0), 3.0f);
    EXPECT_EQ(neg(a).flat(0), 2.0f);
    EXPECT_EQ(absOp(a).flat(0), 2.0f);
    EXPECT_EQ(sign(a).flat(0), -1.0f);
    EXPECT_EQ(sign(Tensor({1}, {0.0f})).flat(0), 0.0f);
    Tensor c = clamp(a, -1.0f, 1.0f);
    EXPECT_EQ(c.flat(0), -1.0f);
    EXPECT_EQ(c.flat(3), 1.0f);
}

TEST(Elementwise, FullReductions)
{
    Tensor a({2, 2}, {1, 2, 3, 4});
    EXPECT_EQ(sumAll(a), 10.0f);
    EXPECT_EQ(maxAll(a), 4.0f);
    EXPECT_EQ(meanAll(a), 2.5f);
    EXPECT_EQ(argmaxAll(a), 3);
}

TEST(Elementwise, AxisReductions)
{
    Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor s0 = sumAxis(a, 0);
    ASSERT_EQ(s0.shape(), (Shape{3}));
    EXPECT_EQ(s0(0), 5.0f);
    EXPECT_EQ(s0(2), 9.0f);

    Tensor s1 = sumAxis(a, 1);
    ASSERT_EQ(s1.shape(), (Shape{2}));
    EXPECT_EQ(s1(0), 6.0f);
    EXPECT_EQ(s1(1), 15.0f);

    Tensor m1 = maxAxis(a, 1);
    EXPECT_EQ(m1(0), 3.0f);
    EXPECT_EQ(m1(1), 6.0f);

    Tensor mean0 = meanAxis(a, 0);
    EXPECT_EQ(mean0(1), 3.5f);
}

TEST(Elementwise, AxisReductionRank3)
{
    // shape [2,2,2]: values 1..8
    Tensor a({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
    Tensor s1 = sumAxis(a, 1);
    ASSERT_EQ(s1.shape(), (Shape{2, 2}));
    EXPECT_EQ(s1(0, 0), 4.0f);  // 1+3
    EXPECT_EQ(s1(0, 1), 6.0f);  // 2+4
    EXPECT_EQ(s1(1, 0), 12.0f); // 5+7
    EXPECT_EQ(s1(1, 1), 14.0f); // 6+8
}

TEST(Elementwise, SoftmaxRowsSumToOne)
{
    Tensor a({2, 3}, {1, 2, 3, -1, 0, 1});
    Tensor s = softmax(a);
    for (int64_t r = 0; r < 2; r++) {
        float sum = 0.0f;
        for (int64_t c = 0; c < 3; c++) {
            sum += s(r, c);
            EXPECT_GT(s(r, c), 0.0f);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-6);
    }
    // Monotone in the logits.
    EXPECT_LT(s(0, 0), s(0, 2));
}

TEST(Elementwise, SoftmaxNumericallyStable)
{
    Tensor a({1, 2}, {1000.0f, 1001.0f});
    Tensor s = softmax(a);
    EXPECT_FALSE(std::isnan(s(0, 0)));
    EXPECT_NEAR(s(0, 0) + s(0, 1), 1.0f, 1e-6);
}

TEST(Elementwise, LogSoftmaxMatchesLogOfSoftmax)
{
    Tensor a({1, 4}, {0.3f, -1.2f, 2.0f, 0.0f});
    Tensor ls = logSoftmax(a);
    Tensor s = softmax(a);
    for (int64_t c = 0; c < 4; c++)
        EXPECT_NEAR(ls(0, c), std::log(s(0, c)), 1e-5);
}

TEST(Elementwise, NormalizeSum)
{
    Tensor a({2, 2}, {1, 3, 2, 2});
    Tensor n = normalizeSum(a);
    EXPECT_NEAR(n(0, 0), 0.25f, 1e-6);
    EXPECT_NEAR(n(0, 1), 0.75f, 1e-6);
    EXPECT_NEAR(n(1, 0), 0.5f, 1e-6);
}

TEST(Elementwise, NormalizeL2)
{
    Tensor a({1, 2}, {3, 4});
    Tensor n = normalizeL2(a);
    EXPECT_NEAR(n(0, 0), 0.6f, 1e-5);
    EXPECT_NEAR(n(0, 1), 0.8f, 1e-5);
}

TEST(Elementwise, ProfilerAccounting)
{
    auto &prof = globalProfiler();
    prof.reset();
    {
        nsbench::core::PhaseScope scope(Phase::Symbolic, "test");
        Tensor a = Tensor::ones({100});
        Tensor b = Tensor::ones({100});
        Tensor c = add(a, b);
        (void)c;
    }
    auto stats = prof.categoryTotals(Phase::Symbolic,
                                     OpCategory::VectorElementwise);
    EXPECT_EQ(stats.invocations, 1u);
    EXPECT_DOUBLE_EQ(stats.flops, 100.0);
    EXPECT_DOUBLE_EQ(stats.bytesRead, 800.0);
    EXPECT_DOUBLE_EQ(stats.bytesWritten, 400.0);
    prof.reset();
}

TEST(ElementwiseDeath, ShapeMismatch)
{
    Tensor a({2});
    Tensor b({3});
    EXPECT_DEATH(add(a, b), "shape mismatch");
}

} // namespace
