#include <gtest/gtest.h>

#include "core/profiler.hh"
#include "tensor/ops.hh"
#include "util/rng.hh"

namespace
{

using namespace nsbench::tensor;
using nsbench::util::Rng;

TEST(Conv2d, IdentityKernel)
{
    // 1x1 kernel with weight 1 reproduces the input.
    Tensor input({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    Tensor weight = Tensor::ones({1, 1, 1, 1});
    Tensor out = conv2d(input, weight, Tensor());
    ASSERT_EQ(out.shape(), (Shape{1, 1, 3, 3}));
    for (int64_t i = 0; i < 9; i++)
        EXPECT_EQ(out.flat(i), input.flat(i));
}

TEST(Conv2d, BoxFilterKnownValues)
{
    Tensor input({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
    Tensor weight = Tensor::ones({1, 1, 2, 2});
    Tensor out = conv2d(input, weight, Tensor());
    ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
    EXPECT_EQ(out(0, 0, 0, 0), 12.0f); // 1+2+4+5
    EXPECT_EQ(out(0, 0, 0, 1), 16.0f);
    EXPECT_EQ(out(0, 0, 1, 0), 24.0f);
    EXPECT_EQ(out(0, 0, 1, 1), 28.0f);
}

TEST(Conv2d, PaddingGrowsOutput)
{
    Tensor input = Tensor::ones({1, 1, 3, 3});
    Tensor weight = Tensor::ones({1, 1, 3, 3});
    Tensor out = conv2d(input, weight, Tensor(), 1, 1);
    ASSERT_EQ(out.shape(), (Shape{1, 1, 3, 3}));
    EXPECT_EQ(out(0, 0, 1, 1), 9.0f); // full overlap at center
    EXPECT_EQ(out(0, 0, 0, 0), 4.0f); // corner sees 2x2
}

TEST(Conv2d, StrideShrinksOutput)
{
    Tensor input = Tensor::ones({1, 1, 4, 4});
    Tensor weight = Tensor::ones({1, 1, 2, 2});
    Tensor out = conv2d(input, weight, Tensor(), 2, 0);
    ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
    EXPECT_EQ(out(0, 0, 0, 0), 4.0f);
}

TEST(Conv2d, MultiChannelAccumulatesAndBias)
{
    Tensor input({1, 2, 2, 2}, {1, 1, 1, 1, 2, 2, 2, 2});
    Tensor weight = Tensor::ones({3, 2, 2, 2});
    Tensor bias({3}, {0.0f, 10.0f, 100.0f});
    Tensor out = conv2d(input, weight, bias);
    ASSERT_EQ(out.shape(), (Shape{1, 3, 1, 1}));
    EXPECT_EQ(out(0, 0, 0, 0), 12.0f); // 4*1 + 4*2
    EXPECT_EQ(out(0, 1, 0, 0), 22.0f);
    EXPECT_EQ(out(0, 2, 0, 0), 112.0f);
}

TEST(Conv2d, BatchIndependence)
{
    Rng rng(2);
    Tensor a = Tensor::randn({1, 1, 4, 4}, rng);
    Tensor b = Tensor::randn({1, 1, 4, 4}, rng);
    Tensor both({2, 1, 4, 4});
    for (int64_t i = 0; i < 16; i++) {
        both.flat(i) = a.flat(i);
        both.flat(16 + i) = b.flat(i);
    }
    Tensor weight = Tensor::randn({2, 1, 3, 3}, rng);
    Tensor out_both = conv2d(both, weight, Tensor());
    Tensor out_a = conv2d(a, weight, Tensor());
    for (int64_t i = 0; i < out_a.numel(); i++)
        EXPECT_NEAR(out_both.flat(i), out_a.flat(i), 1e-5);
}

TEST(Conv2d, FlopAccounting)
{
    auto &prof = nsbench::core::globalProfiler();
    prof.reset();
    Tensor input = Tensor::ones({1, 2, 5, 5});
    Tensor weight = Tensor::ones({3, 2, 3, 3});
    conv2d(input, weight, Tensor());
    auto stats = prof.categoryTotals(
        nsbench::core::Phase::Untagged,
        nsbench::core::OpCategory::Convolution);
    EXPECT_EQ(stats.invocations, 1u);
    // out 3x3x3, each output element does 2*3*3 MACs = 18 flops*... :
    // flops = 2 * N*O*OH*OW * C*KH*KW = 2 * (1*3*3*3) * (2*3*3)
    EXPECT_DOUBLE_EQ(stats.flops, 2.0 * 27 * 18);
    prof.reset();
}

TEST(MaxPool2d, PicksWindowMax)
{
    Tensor input({1, 1, 4, 4},
                 {1, 2, 3, 4,
                  5, 6, 7, 8,
                  9, 10, 11, 12,
                  13, 14, 15, 16});
    Tensor out = maxPool2d(input, 2, 2);
    ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
    EXPECT_EQ(out(0, 0, 0, 0), 6.0f);
    EXPECT_EQ(out(0, 0, 0, 1), 8.0f);
    EXPECT_EQ(out(0, 0, 1, 0), 14.0f);
    EXPECT_EQ(out(0, 0, 1, 1), 16.0f);
}

TEST(AvgPool2d, AveragesWindow)
{
    Tensor input({1, 1, 2, 2}, {1, 3, 5, 7});
    Tensor out = avgPool2d(input, 2, 2);
    ASSERT_EQ(out.shape(), (Shape{1, 1, 1, 1}));
    EXPECT_EQ(out(0, 0, 0, 0), 4.0f);
}

TEST(Conv2dDeath, ChannelMismatch)
{
    Tensor input({1, 2, 4, 4});
    Tensor weight({1, 3, 3, 3});
    EXPECT_DEATH(conv2d(input, weight, Tensor()), "channel mismatch");
}

TEST(Conv2dDeath, KernelTooLarge)
{
    Tensor input({1, 1, 2, 2});
    Tensor weight({1, 1, 3, 3});
    EXPECT_DEATH(conv2d(input, weight, Tensor()), "kernel exceeds");
}

} // namespace
