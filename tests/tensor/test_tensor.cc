#include <gtest/gtest.h>

#include "core/profiler.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace
{

using namespace nsbench::tensor;
using nsbench::core::globalProfiler;
using nsbench::util::Rng;

TEST(Shape, NumelAndStr)
{
    EXPECT_EQ(shapeNumel({}), 1);
    EXPECT_EQ(shapeNumel({3}), 3);
    EXPECT_EQ(shapeNumel({2, 3, 4}), 24);
    EXPECT_EQ(shapeNumel({5, 0}), 0);
    EXPECT_EQ(shapeStr({2, 3}), "[2, 3]");
    EXPECT_EQ(shapeStr({}), "[]");
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6);
    EXPECT_EQ(t.dim(), 2u);
    for (float v : t.data())
        EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, ValueConstructorAndIndexing)
{
    Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
    EXPECT_EQ(t(0, 0), 1.0f);
    EXPECT_EQ(t(0, 2), 3.0f);
    EXPECT_EQ(t(1, 0), 4.0f);
    EXPECT_EQ(t(1, 2), 6.0f);
    t(1, 1) = 42.0f;
    EXPECT_EQ(t.flat(4), 42.0f);
}

TEST(Tensor, NegativeSizeIndexing)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.size(-1), 4);
    EXPECT_EQ(t.size(-3), 2);
    EXPECT_EQ(t.size(1), 3);
}

TEST(Tensor, FactoryFills)
{
    EXPECT_EQ(Tensor::ones({3}).flat(1), 1.0f);
    EXPECT_EQ(Tensor::full({2}, 2.5f).flat(0), 2.5f);
    Rng rng(1);
    Tensor r = Tensor::rand({100}, rng, 2.0f, 3.0f);
    for (float v : r.data()) {
        EXPECT_GE(v, 2.0f);
        EXPECT_LT(v, 3.0f);
    }
    Tensor b = Tensor::bipolar({100}, rng);
    for (float v : b.data())
        EXPECT_TRUE(v == 1.0f || v == -1.0f);
    Tensor bern = Tensor::bernoulli({100}, rng, 1.0);
    for (float v : bern.data())
        EXPECT_EQ(v, 1.0f);
}

TEST(Tensor, ReshapeSharesStorage)
{
    Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = t.reshaped({3, 2});
    EXPECT_EQ(r(2, 1), 6.0f);
    r(0, 0) = 99.0f;
    EXPECT_EQ(t(0, 0), 99.0f); // aliasing is intended
}

TEST(Tensor, CloneIsDeep)
{
    Tensor t({2}, {1, 2});
    Tensor c = t.clone();
    c(0) = 7.0f;
    EXPECT_EQ(t(0), 1.0f);
    EXPECT_EQ(c(0), 7.0f);
}

TEST(Tensor, CopyHandleAliases)
{
    Tensor t({2}, {1, 2});
    Tensor alias = t;
    alias(1) = 5.0f;
    EXPECT_EQ(t(1), 5.0f);
}

TEST(Tensor, AllocationTracked)
{
    auto &prof = globalProfiler();
    prof.reset();
    {
        Tensor t({256}); // 1 KiB
        EXPECT_EQ(prof.currentBytes(), 1024u);
        Tensor view = t.reshaped({16, 16});
        EXPECT_EQ(prof.currentBytes(), 1024u); // no new storage
        Tensor deep = t.clone();
        EXPECT_EQ(prof.currentBytes(), 2048u);
    }
    EXPECT_EQ(prof.currentBytes(), 0u);
    EXPECT_EQ(prof.peakBytes(), 2048u);
    prof.reset();
}

TEST(TensorDeath, ShapeMismatchOnValues)
{
    EXPECT_DEATH(Tensor({2, 2}, {1.0f, 2.0f}), "value count");
}

TEST(TensorDeath, BadReshape)
{
    Tensor t({4});
    EXPECT_DEATH(t.reshaped({3}), "element count mismatch");
}

TEST(TensorDeath, IndexOutOfRange)
{
    Tensor t({2, 2});
    EXPECT_DEATH(t.at({2, 0}), "out of range");
    EXPECT_DEATH(t.at({0}), "rank mismatch");
}

} // namespace
