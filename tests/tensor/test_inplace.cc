/**
 * @file
 * In-place and fused elementwise ops: each must be bit-identical to
 * its allocating counterpart, safe under exact self-aliasing
 * (dst == src), and visible through every handle sharing the storage.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "tensor/fused.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace
{

using namespace nsbench;
using tensor::Tensor;

// Larger than one fused tile so the tiling path is exercised.
constexpr int64_t kN = tensor::kFuseTile * 2 + 513;

Tensor
randomTensor(uint64_t seed, float lo = -2.0f, float hi = 2.0f)
{
    util::Rng rng(seed);
    return Tensor::rand({kN}, rng, lo, hi);
}

void
expectBitIdentical(const Tensor &a, const Tensor &b)
{
    ASSERT_EQ(a.numel(), b.numel());
    auto pa = a.data();
    auto pb = b.data();
    for (size_t i = 0; i < pa.size(); i++)
        ASSERT_EQ(pa[i], pb[i]) << "element " << i;
}

TEST(InPlaceOpsTest, BinaryOpsMatchAllocatingForms)
{
    Tensor a = randomTensor(1);
    Tensor b = randomTensor(2);

    struct Case
    {
        const char *name;
        void (*inplace)(Tensor &, const Tensor &);
        Tensor (*alloc)(const Tensor &, const Tensor &);
    };
    const Case cases[] = {
        {"add", tensor::addInPlace, tensor::add},
        {"sub", tensor::subInPlace, tensor::sub},
        {"mul", tensor::mulInPlace, tensor::mul},
        {"minimum", tensor::minimumInPlace, tensor::minimum},
        {"maximum", tensor::maximumInPlace, tensor::maximum},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        Tensor expected = c.alloc(a, b);
        Tensor dst = a.clone();
        c.inplace(dst, b);
        expectBitIdentical(dst, expected);
    }
}

TEST(InPlaceOpsTest, ScalarAndUnaryOpsMatchAllocatingForms)
{
    Tensor a = randomTensor(3);

    Tensor dst = a.clone();
    tensor::addScalarInPlace(dst, 0.75f);
    expectBitIdentical(dst, tensor::addScalar(a, 0.75f));

    dst = a.clone();
    tensor::mulScalarInPlace(dst, -1.5f);
    expectBitIdentical(dst, tensor::mulScalar(a, -1.5f));

    dst = a.clone();
    tensor::reluInPlace(dst);
    expectBitIdentical(dst, tensor::relu(a));

    dst = a.clone();
    tensor::clampInPlace(dst, -0.5f, 0.5f);
    expectBitIdentical(dst, tensor::clamp(a, -0.5f, 0.5f));
}

TEST(InPlaceOpsTest, ExactSelfAliasingIsSafe)
{
    Tensor a = randomTensor(4);

    Tensor dst = a.clone();
    tensor::addInPlace(dst, dst); // dst == src exactly
    expectBitIdentical(dst, tensor::add(a, a));

    dst = a.clone();
    tensor::mulInPlace(dst, dst);
    expectBitIdentical(dst, tensor::mul(a, a));

    dst = a.clone();
    tensor::subInPlace(dst, dst);
    expectBitIdentical(dst, tensor::sub(a, a));
}

TEST(InPlaceOpsTest, SubScaledMatchesMulThenSub)
{
    // The SGD step: dst -= s * src, deliberately mul-then-sub (two
    // roundings) so it stays bit-identical to the composed ops — an
    // FMA would round once and drift.
    Tensor w = randomTensor(5);
    Tensor g = randomTensor(6);
    constexpr float lr = 0.037f;

    Tensor expected = tensor::sub(w, tensor::mulScalar(g, lr));
    Tensor dst = w.clone();
    tensor::subScaledInPlace(dst, g, lr);
    expectBitIdentical(dst, expected);
}

TEST(InPlaceOpsTest, WritesVisibleThroughSharingHandles)
{
    Tensor a = Tensor::ones({kN});
    Tensor view = a.reshaped({kN, 1}).reshaped({kN});
    tensor::addScalarInPlace(a, 1.0f);
    // reshaped() shares storage; the in-place write is visible.
    EXPECT_EQ(view.data()[0], 2.0f);
    EXPECT_EQ(view.data()[static_cast<size_t>(kN - 1)], 2.0f);
}

TEST(InPlaceOpsTest, ShapeMismatchPanics)
{
    Tensor a = Tensor::ones({8});
    Tensor b = Tensor::ones({9});
    EXPECT_DEATH(tensor::addInPlace(a, b), "shape");
}

TEST(FusedMapTest, MatchesComposedKernelChain)
{
    // out = (1 - a) + a * b, fused, versus the composed allocating
    // ops. 1 - a == 1 + (-a) exactly in IEEE, so the fused kernel
    // sequence must be bit-identical.
    Tensor a = randomTensor(7, 0.0f, 1.0f);
    Tensor b = randomTensor(8, 0.0f, 1.0f);

    Tensor expected = tensor::add(
        tensor::addScalar(tensor::mulScalar(a, -1.0f), 1.0f),
        tensor::mul(a, b));

    Tensor fused = Tensor::uninitialized({kN});
    tensor::fusedMap(
        "test_fused_implies", fused, a, b, 3.0,
        [](const float *pa, const float *pb, float *po,
           float *scratch, int64_t n) {
            util::simd::mul(pa, pb, scratch, n);
            util::simd::negate(pa, po, n);
            util::simd::addScalar(po, 1.0f, po, n);
            util::simd::add(po, scratch, po, n);
        });
    expectBitIdentical(fused, expected);
}

TEST(FusedMapTest, OutputMayAliasInput)
{
    Tensor a = randomTensor(9);
    Tensor b = randomTensor(10);
    Tensor expected = tensor::add(a, b);

    Tensor dst = a.clone();
    tensor::fusedMap(
        "test_fused_alias", dst, dst, b, 1.0,
        [](const float *pa, const float *pb, float *po,
           float * /*scratch*/, int64_t n) {
            util::simd::add(pa, pb, po, n);
        });
    expectBitIdentical(dst, expected);
}

TEST(FusedMapTest, UnaryVariantMatchesComposedOps)
{
    // 1 - s * (1 - s): the LTN consistency axiom shape.
    Tensor s = randomTensor(11, 0.0f, 1.0f);
    Tensor one_minus =
        tensor::addScalar(tensor::mulScalar(s, -1.0f), 1.0f);
    Tensor expected = tensor::addScalar(
        tensor::mulScalar(tensor::mul(s, one_minus), -1.0f), 1.0f);

    Tensor fused = Tensor::uninitialized({kN});
    tensor::fusedMapUnary(
        "test_fused_consistency", fused, s, 3.0,
        [](const float *pa, float *po, float *scratch, int64_t n) {
            util::simd::negate(pa, scratch, n);
            util::simd::addScalar(scratch, 1.0f, scratch, n);
            util::simd::mul(pa, scratch, scratch, n);
            util::simd::negate(scratch, po, n);
            util::simd::addScalar(po, 1.0f, po, n);
        });
    expectBitIdentical(fused, expected);
}

} // namespace
