/**
 * @file
 * Remainder-handling regressions for the chunked reductions.
 *
 * The deterministic reductions (sum/max/argmax/dot) cut their input
 * into grain-sized chunks — 32768 elements for the cheap ops — and
 * combine per-chunk partials in chunk order. Every pre-existing test
 * used inputs far below one grain, so the multi-chunk combine and the
 * partial final chunk (length % grain != 0) never executed. These
 * tests pin that tail behavior against naive serial references, with
 * the extremum deliberately placed inside the partial tail chunk and
 * duplicated across chunk boundaries.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"
#include "util/threadpool.hh"

namespace
{

using namespace nsbench;
using nsbench::tensor::Tensor;
using nsbench::util::Rng;

// The grain the cheap reductions resolve to (targetWork 32768 at one
// unit of work per element). Sizes straddle one and two grains.
constexpr int64_t kGrain = 32768;
const std::vector<int64_t> kTailSizes = {
    kGrain - 1, kGrain, kGrain + 1, 2 * kGrain - 1, 2 * kGrain + 17};

double
naiveSum(const Tensor &t)
{
    double acc = 0.0;
    for (int64_t i = 0; i < t.numel(); i++)
        acc += static_cast<double>(t.flat(i));
    return acc;
}

TEST(ReductionTails, SumAcrossChunkBoundary)
{
    Rng rng{301};
    for (int64_t n : kTailSizes) {
        Tensor a = Tensor::rand({n}, rng, -1.0f, 1.0f);
        double want = naiveSum(a);
        double got = static_cast<double>(tensor::sumAll(a));
        double denom = std::max(std::abs(want), 1.0);
        EXPECT_LE(std::abs(got - want) / denom, 1e-5) << "n=" << n;
    }
}

TEST(ReductionTails, MaxInPartialTailChunk)
{
    Rng rng{302};
    for (int64_t n : kTailSizes) {
        Tensor a = Tensor::rand({n}, rng, -2.0f, -1.0f);
        // The unique maximum lives in the final (partial) chunk.
        a(n - 1) = 3.5f;
        EXPECT_FLOAT_EQ(tensor::maxAll(a), 3.5f) << "n=" << n;
        EXPECT_EQ(tensor::argmaxAll(a), n - 1) << "n=" << n;
    }
}

TEST(ReductionTails, ArgmaxFirstWinsAcrossChunks)
{
    Rng rng{303};
    // Duplicated maxima in different chunks: the chunk-ordered
    // combine must keep the serial earliest-index rule.
    int64_t n = 2 * kGrain + 5;
    Tensor a = Tensor::rand({n}, rng, -1.0f, 1.0f);
    a(7) = 9.0f;
    a(kGrain + 3) = 9.0f;
    a(n - 1) = 9.0f;
    EXPECT_EQ(tensor::argmaxAll(a), 7);

    // And a strictly larger value later must still beat an earlier
    // chunk's best.
    a(2 * kGrain + 2) = 10.0f;
    EXPECT_EQ(tensor::argmaxAll(a), 2 * kGrain + 2);
}

TEST(ReductionTails, DotAcrossChunkBoundary)
{
    Rng rng{304};
    for (int64_t n : kTailSizes) {
        Tensor a = Tensor::rand({n}, rng, -1.0f, 1.0f);
        Tensor b = Tensor::rand({n}, rng, -1.0f, 1.0f);
        double want = 0.0;
        for (int64_t i = 0; i < n; i++)
            want += static_cast<double>(a.flat(i)) *
                    static_cast<double>(b.flat(i));
        double got = static_cast<double>(tensor::dot(a, b));
        double denom = std::max(std::abs(want), 1.0);
        EXPECT_LE(std::abs(got - want) / denom, 1e-5) << "n=" << n;
    }
}

TEST(ReductionTails, StableAcrossWidthsAtTailSizes)
{
    // Chunk-grid determinism at exactly the tail-sensitive sizes.
    Rng rng{305};
    Tensor a = Tensor::rand({kGrain + 1}, rng, -1.0f, 1.0f);
    util::ThreadPool::setGlobalThreads(1);
    float want_sum = tensor::sumAll(a);
    int64_t want_arg = tensor::argmaxAll(a);
    for (int width : {2, 4, 13}) {
        util::ThreadPool::setGlobalThreads(width);
        EXPECT_EQ(tensor::sumAll(a), want_sum) << "width " << width;
        EXPECT_EQ(tensor::argmaxAll(a), want_arg)
            << "width " << width;
    }
    util::ThreadPool::setGlobalThreads(0);
}

} // namespace
