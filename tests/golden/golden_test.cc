/**
 * @file
 * Golden-file regression tests for the seven workloads.
 *
 * Each workload runs one profiled episode at a fixed seed; its score
 * and the full per-operator profile (invocations, FLOPs, bytes — the
 * raw material of the paper's Fig. 2/3) are compared against a
 * checked-in golden file. Because profiler attribution is computed
 * from operand shapes, the counts must be EXACT regardless of kernel
 * backend or thread count; scores are float-valued and may drift in
 * the last bits between the scalar and AVX2 backends, so they get a
 * small relative tolerance.
 *
 * Regenerate after an intentional model or attribution change with:
 *
 *     ./tests/test_golden --update-golden
 *
 * and commit the rewritten files under tests/golden/data/. Regenerate
 * with NSBENCH_SIMD=off so the goldens are anchored to the scalar
 * backend; the suite must then pass under both backends.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "core/profiler.hh"
#include "core/taxonomy.hh"
#include "core/workload.hh"
#include "util/simd.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

bool gUpdateGolden = false;

constexpr uint64_t kGoldenSeed = 7;

/** One operator line in a golden file. */
struct GoldenOp
{
    std::string name;
    std::string phase;
    uint64_t invocations = 0;
    double flops = 0.0;
    double bytesRead = 0.0;
    double bytesWritten = 0.0;
};

struct GoldenRecord
{
    double score = 0.0;
    std::vector<GoldenOp> ops;
};

std::string
goldenPath(const std::string &workload)
{
    return std::string(NSBENCH_GOLDEN_DIR) + "/" + workload +
           ".golden";
}

/** Full-precision double formatting, stable across runs. */
std::string
fmt(double v)
{
    std::ostringstream out;
    out.precision(17);
    out << v;
    return out.str();
}

GoldenRecord
capture(const std::string &name)
{
    auto workload = core::WorkloadRegistry::global().create(name);
    workload->setUp(kGoldenSeed);
    auto &prof = core::globalProfiler();
    prof.reset();
    GoldenRecord record;
    record.score = workload->run();
    for (const auto &op : prof.opsByTime()) {
        GoldenOp g;
        g.name = op.name;
        g.phase = std::string(core::phaseName(op.phase));
        g.invocations = op.stats.invocations;
        g.flops = op.stats.flops;
        g.bytesRead = op.stats.bytesRead;
        g.bytesWritten = op.stats.bytesWritten;
        record.ops.push_back(std::move(g));
    }
    prof.reset();
    // opsByTime orders by wall time, which is not deterministic;
    // golden files are keyed by (name, phase) instead.
    std::sort(record.ops.begin(), record.ops.end(),
              [](const GoldenOp &a, const GoldenOp &b) {
                  return std::tie(a.name, a.phase) <
                         std::tie(b.name, b.phase);
              });
    return record;
}

void
writeGolden(const std::string &workload, const GoldenRecord &record)
{
    std::ofstream out(goldenPath(workload));
    ASSERT_TRUE(out.good())
        << "cannot write " << goldenPath(workload);
    out << "# Golden profile for " << workload << " (seed "
        << kGoldenSeed << ").\n";
    out << "# Regenerate: NSBENCH_SIMD=off ./tests/test_golden "
           "--update-golden\n";
    out << "score " << fmt(record.score) << "\n";
    for (const auto &op : record.ops) {
        out << "op " << op.name << " " << op.phase << " "
            << op.invocations << " " << fmt(op.flops) << " "
            << fmt(op.bytesRead) << " " << fmt(op.bytesWritten)
            << "\n";
    }
}

bool
readGolden(const std::string &workload, GoldenRecord &record)
{
    std::ifstream in(goldenPath(workload));
    if (!in.good())
        return false;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string tag;
        fields >> tag;
        if (tag == "score") {
            fields >> record.score;
        } else if (tag == "op") {
            GoldenOp op;
            fields >> op.name >> op.phase >> op.invocations >>
                op.flops >> op.bytesRead >> op.bytesWritten;
            record.ops.push_back(std::move(op));
        }
    }
    return true;
}

double
relDiff(double got, double want)
{
    double denom = std::max(std::abs(want), 1.0);
    return std::abs(got - want) / denom;
}

void
checkAgainstGolden(const std::string &workload)
{
    GoldenRecord got = capture(workload);
    if (gUpdateGolden) {
        writeGolden(workload, got);
        GTEST_SKIP() << "golden updated: " << goldenPath(workload);
    }

    GoldenRecord want;
    ASSERT_TRUE(readGolden(workload, want))
        << "missing golden file " << goldenPath(workload)
        << "; run ./tests/test_golden --update-golden";

    // Scores are float-valued model outputs: identical for a fixed
    // backend, but the scalar and AVX2 paths round reductions
    // differently, so allow a small relative drift.
    EXPECT_LE(relDiff(got.score, want.score), 1e-4)
        << "score: got " << fmt(got.score) << " want "
        << fmt(want.score);

    ASSERT_EQ(got.ops.size(), want.ops.size())
        << "operator set changed";
    for (size_t i = 0; i < got.ops.size(); i++) {
        const GoldenOp &g = got.ops[i];
        const GoldenOp &w = want.ops[i];
        ASSERT_EQ(g.name, w.name) << "op list diverged at " << i;
        ASSERT_EQ(g.phase, w.phase) << g.name;
        // Invocation and FLOP/byte attribution is shape-derived and
        // must be bit-stable across backends and thread counts.
        EXPECT_EQ(g.invocations, w.invocations) << g.name;
        EXPECT_LE(relDiff(g.flops, w.flops), 1e-9) << g.name;
        EXPECT_LE(relDiff(g.bytesRead, w.bytesRead), 1e-9) << g.name;
        EXPECT_LE(relDiff(g.bytesWritten, w.bytesWritten), 1e-9)
            << g.name;
    }
}

class GoldenWorkload : public testing::TestWithParam<const char *>
{
};

TEST_P(GoldenWorkload, MatchesGolden)
{
    checkAgainstGolden(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSeven, GoldenWorkload,
                         testing::Values("LNN", "LTN", "NVSA", "NLM",
                                         "VSAIT", "ZeroC", "PrAE"));

} // namespace

int
main(int argc, char **argv)
{
    testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--update-golden") == 0)
            gUpdateGolden = true;
    }
    // Goldens lock the exact operator stream of an uncached run;
    // keep them anchored regardless of the NSBENCH_CACHE setting.
    nsbench::cache::setEnabled(false);
    nsbench::workloads::registerAllWorkloads();
    return RUN_ALL_TESTS();
}
