/**
 * @file
 * Remote client behaviour tests: reconnect-with-backoff against a
 * server that appears late or restarts, unreachable-endpoint
 * rejection, and the fail-everything-pending contract when the
 * connection drops with requests in flight.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "net/tcp_server.hh"
#include "net/wire.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

/**
 * Binds an ephemeral listener just long enough to learn a port the
 * kernel considers free, then releases it. Mildly racy by nature,
 * which is fine for loopback tests in a private namespace.
 */
uint16_t
reservePort()
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    ::close(fd);
    return ntohs(addr.sin_port);
}

serve::ServerOptions
lnnOptions()
{
    serve::ServerOptions options;
    options.workloads = {"LNN"};
    options.workers = 2;
    options.maxBatch = 4;
    options.maxWaitUs = 1000;
    options.factory = serve::serveFactory;
    return options;
}

class NetClient : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workloads::registerAllWorkloads();
    }
};

TEST_F(NetClient, UnreachableEndpointRejectsAfterBackoff)
{
    net::ClientOptions options;
    options.port = reservePort(); // Nothing is listening there.
    options.connectAttempts = 3;
    options.backoffInitialSeconds = 0.005;
    options.backoffMaxSeconds = 0.02;
    net::Client client(options);
    serve::Response response = client.call("LNN", 1);
    EXPECT_EQ(response.status,
              serve::RequestStatus::RejectedUnreachable);
    net::ClientStats stats = client.stats();
    EXPECT_GE(stats.connectFailures, 3u);
    EXPECT_EQ(stats.connects, 0u);
    EXPECT_FALSE(client.connected());
}

TEST_F(NetClient, ConnectsOnceTheServerAppears)
{
    uint16_t port = reservePort();
    net::ClientOptions options;
    options.port = port;
    options.connectAttempts = 50;
    options.backoffInitialSeconds = 0.02;
    options.backoffMaxSeconds = 0.05;
    net::Client client(options);

    // The server shows up while the client is already backing off.
    serve::Server server(lnnOptions());
    std::unique_ptr<net::TcpServer> tcp;
    std::thread late([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        net::FrameServerOptions listen;
        listen.port = port;
        tcp = std::make_unique<net::TcpServer>(server, listen);
    });
    serve::Response response = client.call("LNN", 1);
    late.join();
    EXPECT_EQ(response.status, serve::RequestStatus::Ok);
    EXPECT_GE(client.stats().connectFailures, 1u);
    EXPECT_EQ(client.stats().connects, 1u);
}

TEST_F(NetClient, ReconnectsAfterServerRestart)
{
    serve::Server server(lnnOptions());
    auto tcp = std::make_unique<net::TcpServer>(server);
    uint16_t port = tcp->port();

    net::ClientOptions options;
    options.port = port;
    options.connectAttempts = 50;
    options.backoffInitialSeconds = 0.02;
    options.backoffMaxSeconds = 0.05;
    net::Client client(options);
    EXPECT_EQ(client.call("LNN", 1).status,
              serve::RequestStatus::Ok);

    // Take the front end down and bring a new one up on the same
    // port; the same client object must ride through.
    tcp->shutdown();
    tcp.reset();
    net::FrameServerOptions listen;
    listen.port = port;
    tcp = std::make_unique<net::TcpServer>(server, listen);

    // The first call after the restart may race the reader noticing
    // the old connection died (the submit can land on the stale fd
    // and fail); the contract is eventual recovery, so retry.
    serve::Response response;
    for (int attempt = 0; attempt < 10; attempt++) {
        response = client.call("LNN", 2);
        if (response.status == serve::RequestStatus::Ok)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(response.status, serve::RequestStatus::Ok);
    EXPECT_GE(client.stats().connects, 2u);
    EXPECT_GE(client.stats().disconnects, 1u);
}

TEST_F(NetClient, DroppedConnectionFailsEveryPendingRequest)
{
    // A miniature villain of a server: handshakes politely, swallows
    // requests, then hangs up with everything still in flight.
    int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(listener, 0);
    int one = 1;
    ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(listener,
                            reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    ASSERT_EQ(::listen(listener, 1), 0);

    std::mutex mu;
    std::condition_variable cv;
    size_t swallowed = 0;
    const size_t kPending = 4;
    std::thread villain([&] {
        int fd = ::accept(listener, nullptr, nullptr);
        ASSERT_GE(fd, 0);
        std::vector<uint8_t> buf;
        size_t requests_seen = 0;
        bool acked = false;
        while (requests_seen < kPending) {
            uint8_t chunk[4096];
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                break;
            buf.insert(buf.end(), chunk, chunk + n);
            size_t offset = 0;
            while (true) {
                net::wire::Frame frame;
                auto result = net::wire::tryDecode(
                    buf.data() + offset, buf.size() - offset,
                    &frame);
                if (result.status != net::wire::DecodeStatus::Ok)
                    break;
                offset += result.consumed;
                if (frame.type == net::wire::FrameType::Hello &&
                    !acked) {
                    std::vector<uint8_t> ack;
                    net::wire::encodeHelloAck(
                        net::wire::HelloFrame{}, &ack);
                    ::send(fd, ack.data(), ack.size(), MSG_NOSIGNAL);
                    acked = true;
                } else if (frame.type ==
                           net::wire::FrameType::Request) {
                    requests_seen++;
                }
            }
            buf.erase(buf.begin(),
                      buf.begin() + static_cast<long>(offset));
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            swallowed = requests_seen;
        }
        // Every request was sent (and therefore registered as
        // pending client-side) before it reached us; slam the door.
        ::close(fd);
    });

    net::ClientOptions options;
    options.port = ntohs(addr.sin_port);
    options.connectAttempts = 3;
    net::Client client(options);

    size_t failed = 0, outstanding = kPending;
    for (size_t i = 0; i < kPending; i++) {
        serve::RequestStatus status = client.submit(
            "LNN", i, [&](const serve::Response &response) {
                std::lock_guard<std::mutex> lock(mu);
                if (response.status == serve::RequestStatus::Failed)
                    failed++;
                if (--outstanding == 0)
                    cv.notify_all();
            });
        ASSERT_EQ(status, serve::RequestStatus::Ok);
    }

    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return outstanding == 0; }));
    EXPECT_EQ(failed, kPending);
    lock.unlock();
    villain.join();
    ::close(listener);
    EXPECT_EQ(swallowed, kPending);
    net::ClientStats stats = client.stats();
    EXPECT_EQ(stats.orphaned, kPending);
    EXPECT_GE(stats.disconnects, 1u);
}

TEST_F(NetClient, CloseIsIdempotentAndReusable)
{
    serve::Server server(lnnOptions());
    net::TcpServer tcp(server);
    net::ClientOptions options;
    options.port = tcp.port();
    net::Client client(options);
    EXPECT_EQ(client.call("LNN", 1).status,
              serve::RequestStatus::Ok);
    client.close();
    client.close(); // Second close must be a no-op.
    // And the client can dial right back in.
    EXPECT_EQ(client.call("LNN", 2).status,
              serve::RequestStatus::Ok);
}

} // namespace
