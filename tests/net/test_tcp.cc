/**
 * @file
 * TCP front end integration tests over real loopback sockets.
 *
 * The headline contract: a score served over the network is
 * byte-identical to the same request run in-process — for all seven
 * paper workloads, with the result cache on and off. Around that,
 * the robustness contract from the wire layer is enforced end to
 * end: a connection that speaks garbage (bad hello, unknown frame,
 * length bombs) is closed cleanly, counted, and never disturbs the
 * sessions next to it.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "net/tcp_server.hh"
#include "net/wire.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

/** The seven paper workloads (ISPASS'24 table 1 order). */
const std::vector<std::string> kPaperWorkloads = {
    "LNN", "LTN", "NVSA", "NLM", "VSAIT", "ZeroC", "PrAE"};

serve::ServerOptions
serverOptions(const std::vector<std::string> &workloads,
              bool result_cache = false)
{
    serve::ServerOptions options;
    options.workloads = workloads;
    options.workers = 2;
    options.maxBatch = 4;
    options.coalesce = true;
    options.maxWaitUs = 1000;
    options.resultCache = result_cache;
    options.factory = serve::serveFactory;
    return options;
}

net::ClientOptions
clientOptions(uint16_t port)
{
    net::ClientOptions options;
    options.port = port;
    options.connectAttempts = 3;
    options.backoffInitialSeconds = 0.01;
    return options;
}

/** Blocking loopback connect for raw (mis)behaving clients. */
int
rawDial(uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

void
rawSend(int fd, const std::vector<uint8_t> &bytes)
{
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
}

/** Reads until EOF (clean close) or a 5 s safety timeout. */
bool
rawDrainUntilClose(int fd)
{
    timeval tv{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    while (true) {
        uint8_t chunk[512];
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            return true; // Clean FIN.
        if (n < 0)
            return errno == EINTR ? true : false;
    }
}

/** Performs the Hello/HelloAck handshake on a raw socket. */
void
rawHandshake(int fd)
{
    std::vector<uint8_t> hello;
    net::wire::encodeHello(net::wire::HelloFrame{}, &hello);
    rawSend(fd, hello);
    std::vector<uint8_t> buf;
    while (true) {
        uint8_t chunk[64];
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        ASSERT_GT(n, 0) << "no HelloAck";
        buf.insert(buf.end(), chunk, chunk + n);
        net::wire::Frame frame;
        auto result =
            net::wire::tryDecode(buf.data(), buf.size(), &frame);
        if (result.status == net::wire::DecodeStatus::NeedMore)
            continue;
        ASSERT_EQ(result.status, net::wire::DecodeStatus::Ok);
        ASSERT_EQ(frame.type, net::wire::FrameType::HelloAck);
        return;
    }
}

class NetTcp : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workloads::registerAllWorkloads();
    }
};

TEST_F(NetTcp, RemoteScoresAreByteIdenticalToDirectExecution)
{
    const std::vector<uint64_t> seeds = {1, 2, 3};

    // Direct reference: one replica per workload, built at the
    // default model seed, reseeded and run per episode seed.
    serve::ServerOptions reference;
    std::map<std::string, std::map<uint64_t, double>> direct;
    for (const std::string &name : kPaperWorkloads) {
        auto replica = serve::serveFactory(name);
        replica->setUp(reference.modelSeed);
        for (uint64_t seed : seeds) {
            replica->reseedEpisodes(seed);
            direct[name][seed] = replica->run();
        }
    }

    for (bool cached : {false, true}) {
        serve::Server server(
            serverOptions(kPaperWorkloads, cached));
        net::TcpServer tcp(server);
        net::Client client(clientOptions(tcp.port()));
        for (const std::string &name : kPaperWorkloads) {
            for (uint64_t seed : seeds) {
                // With the cache on, the second lap must return the
                // identical bits from the hit path too.
                int laps = cached ? 2 : 1;
                for (int lap = 0; lap < laps; lap++) {
                    serve::Response response =
                        client.call(name, seed);
                    ASSERT_EQ(response.status,
                              serve::RequestStatus::Ok)
                        << name << " seed " << seed;
                    double expected = direct[name][seed];
                    EXPECT_EQ(
                        std::memcmp(&response.score, &expected,
                                    sizeof expected),
                        0)
                        << name << " seed " << seed
                        << (cached ? " (cache on)" : " (cache off)")
                        << ": remote " << response.score
                        << " != direct " << expected;
                }
            }
        }
        client.close();
        tcp.shutdown();
    }
}

TEST_F(NetTcp, PipelinedSubmitsAllCompleteAndAgree)
{
    serve::Server server(serverOptions({"ZeroC"}));
    net::TcpServer tcp(server);
    net::Client client(clientOptions(tcp.port()));

    std::mutex mu;
    std::condition_variable cv;
    std::map<uint64_t, std::vector<double>> scores;
    size_t outstanding = 0;
    const std::vector<uint64_t> seeds = {1, 2, 3, 4};
    for (int lap = 0; lap < 8; lap++) {
        for (uint64_t seed : seeds) {
            {
                std::lock_guard<std::mutex> lock(mu);
                outstanding++;
            }
            serve::RequestStatus status = client.submit(
                "ZeroC", seed,
                [&, seed](const serve::Response &response) {
                    std::lock_guard<std::mutex> lock(mu);
                    EXPECT_EQ(response.status,
                              serve::RequestStatus::Ok);
                    scores[seed].push_back(response.score);
                    if (--outstanding == 0)
                        cv.notify_all();
                });
            ASSERT_EQ(status, serve::RequestStatus::Ok);
        }
    }
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                            [&] { return outstanding == 0; }));
    for (uint64_t seed : seeds) {
        ASSERT_EQ(scores[seed].size(), 8u);
        for (double score : scores[seed])
            EXPECT_EQ(score, scores[seed].front());
    }
}

TEST_F(NetTcp, ExpiredDeadlineIsRejectedByTheServer)
{
    serve::Server server(serverOptions({"LNN"}));
    net::TcpServer tcp(server);
    net::Client client(clientOptions(tcp.port()));
    serve::Response response = client.call(
        "LNN", 1, serve::ServeClock::now() - std::chrono::seconds(1));
    // An expired deadline crosses the wire as the minimum budget
    // (1 us): the server rejects it at admission or, if admission
    // wins the microsecond, expires it in queue. Never Ok.
    EXPECT_TRUE(response.status ==
                    serve::RequestStatus::RejectedDeadline ||
                response.status == serve::RequestStatus::Expired)
        << "status " << static_cast<int>(response.status);
}

TEST_F(NetTcp, UnknownWorkloadIsRejectedOverTheWire)
{
    serve::Server server(serverOptions({"LNN"}));
    net::TcpServer tcp(server);
    net::Client client(clientOptions(tcp.port()));
    serve::Response response = client.call("NoSuchWorkload", 1);
    EXPECT_EQ(response.status,
              serve::RequestStatus::RejectedUnknownWorkload);
}

TEST_F(NetTcp, BadHelloMagicClosesTheConnection)
{
    serve::Server server(serverOptions({"LNN"}));
    net::TcpServer tcp(server);
    int fd = rawDial(tcp.port());
    net::wire::HelloFrame hello;
    hello.magic = 0xdeadbeef;
    std::vector<uint8_t> bytes;
    net::wire::encodeHello(hello, &bytes);
    rawSend(fd, bytes);
    EXPECT_TRUE(rawDrainUntilClose(fd));
    ::close(fd);

    // The rejection was counted, and honest clients still get in.
    for (int i = 0; i < 50; i++) {
        if (server.metrics().netStats().handshakeFailures > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(server.metrics().netStats().handshakeFailures, 1u);
    net::Client client(clientOptions(tcp.port()));
    EXPECT_EQ(client.call("LNN", 1).status,
              serve::RequestStatus::Ok);
}

TEST_F(NetTcp, MalformedFramesCloseCleanlyWithoutKillingTheServer)
{
    serve::Server server(serverOptions({"LNN"}));
    net::TcpServer tcp(server);

    // Each corpus entry opens a fresh connection, handshakes, then
    // speaks a distinct protocol violation. The server must close
    // that connection — and only that connection — every time.
    std::vector<std::vector<uint8_t>> corpus;
    corpus.push_back({0, 0, 0, 0});          // Zero-length frame.
    corpus.push_back({0xff, 0xff, 0xff, 0xff}); // Length bomb.
    corpus.push_back({1, 0, 0, 0, 0x7f});    // Unknown frame type.
    {
        // A second Hello after the handshake is a state violation.
        std::vector<uint8_t> bytes;
        net::wire::encodeHello(net::wire::HelloFrame{}, &bytes);
        corpus.push_back(bytes);
    }
    {
        // A Response frame sent client->server.
        std::vector<uint8_t> bytes;
        net::wire::encodeResponse(net::wire::ResponseFrame{}, &bytes);
        corpus.push_back(bytes);
    }
    {
        // A Request whose name length lies about the body: 32 bytes
        // of fixed fields, then a length field claiming 1023 name
        // bytes where only 6 follow.
        std::vector<uint8_t> bytes = {41, 0, 0, 0, 3};
        for (int i = 0; i < 32; i++)
            bytes.push_back(0);
        bytes.push_back(0xff); // nameLength = 0x3ff...
        bytes.push_back(0x03);
        for (int i = 0; i < 6; i++)
            bytes.push_back('x');
        corpus.push_back(bytes);
    }

    uint64_t violations = 0;
    for (const auto &attack : corpus) {
        int fd = rawDial(tcp.port());
        rawHandshake(fd);
        rawSend(fd, attack);
        EXPECT_TRUE(rawDrainUntilClose(fd))
            << "no clean close for corpus entry " << violations;
        ::close(fd);
        violations++;
    }

    for (int i = 0; i < 100; i++) {
        if (server.metrics().netStats().malformedFrames >=
            violations)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(server.metrics().netStats().malformedFrames,
              violations);

    // The server shrugged it all off.
    net::Client client(clientOptions(tcp.port()));
    EXPECT_EQ(client.call("LNN", 1).status,
              serve::RequestStatus::Ok);
}

TEST_F(NetTcp, HalfFrameThenDisconnectLeaksNothing)
{
    serve::Server server(serverOptions({"LNN"}));
    net::TcpServer tcp(server);
    int fd = rawDial(tcp.port());
    rawHandshake(fd);
    net::wire::RequestFrame request;
    request.workload = "LNN";
    std::vector<uint8_t> bytes;
    net::wire::encodeRequest(request, &bytes);
    bytes.resize(bytes.size() / 2); // Stop mid-frame.
    rawSend(fd, bytes);
    ::close(fd);

    for (int i = 0; i < 100; i++) {
        if (server.metrics().netStats().connectionsClosed >= 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(server.metrics().netStats().connectionsClosed, 1u);
    net::Client client(clientOptions(tcp.port()));
    EXPECT_EQ(client.call("LNN", 1).status,
              serve::RequestStatus::Ok);
}

TEST_F(NetTcp, NetCountersAccountForTraffic)
{
    serve::Server server(serverOptions({"LNN"}));
    net::TcpServer tcp(server);
    {
        net::Client client(clientOptions(tcp.port()));
        for (uint64_t seed = 1; seed <= 4; seed++)
            EXPECT_EQ(client.call("LNN", seed).status,
                      serve::RequestStatus::Ok);
        client.close();
    }
    tcp.shutdown();
    serve::NetStats stats = server.metrics().netStats();
    EXPECT_GE(stats.connectionsAccepted, 1u);
    EXPECT_EQ(stats.connectionsClosed, stats.connectionsAccepted);
    EXPECT_EQ(stats.framesIn, 4u);     // Requests (hello is not
                                       // counted as a work frame).
    EXPECT_GE(stats.framesOut, 5u);    // HelloAck + 4 responses.
    EXPECT_GT(stats.bytesRead, 0u);
    EXPECT_GT(stats.bytesWritten, 0u);
    EXPECT_EQ(stats.malformedFrames, 0u);
}

TEST_F(NetTcp, ShutdownDrainsThenRefusesNewWork)
{
    serve::Server server(serverOptions({"ZeroC"}));
    auto tcp = std::make_unique<net::TcpServer>(server);
    uint16_t port = tcp->port();
    net::Client client(clientOptions(port));
    EXPECT_EQ(client.call("ZeroC", 1).status,
              serve::RequestStatus::Ok);

    tcp->shutdown();
    // The listener is gone and the drained connection was closed:
    // a fresh call must fail as unreachable, not hang.
    net::ClientOptions after = clientOptions(port);
    after.connectAttempts = 2;
    net::Client late(after);
    EXPECT_EQ(late.call("ZeroC", 2).status,
              serve::RequestStatus::RejectedUnreachable);
    tcp.reset();
}

} // namespace
