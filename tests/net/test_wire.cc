/**
 * @file
 * Wire-protocol unit tests: encode/decode round-trip properties over
 * randomized frames, incremental (streamed) delivery, and a
 * malformed-input corpus — truncations, oversized and zero lengths,
 * unknown types, bad name lengths, trailing junk, and raw garbage —
 * that must always produce a clean NeedMore/Malformed verdict, never
 * a crash or an over-read (ASan/TSan in CI back that claim).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "net/wire.hh"

namespace
{

using namespace nsbench;
using namespace nsbench::net;

/** Little-endian emit helpers for hand-building malformed frames. */
void
putU8(std::vector<uint8_t> *out, uint8_t v)
{
    out->push_back(v);
}

void
putU16(std::vector<uint8_t> *out, uint16_t v)
{
    out->push_back(static_cast<uint8_t>(v));
    out->push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> *out, uint32_t v)
{
    for (int i = 0; i < 4; i++)
        out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> *out, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

wire::DecodeResult
decode(const std::vector<uint8_t> &bytes, wire::Frame *frame)
{
    return wire::tryDecode(bytes.data(), bytes.size(), frame);
}

TEST(Wire, HelloRoundTrip)
{
    std::vector<uint8_t> bytes;
    wire::encodeHello(wire::HelloFrame{}, &bytes);
    wire::Frame frame;
    wire::DecodeResult result = decode(bytes, &frame);
    ASSERT_EQ(result.status, wire::DecodeStatus::Ok);
    EXPECT_EQ(result.consumed, bytes.size());
    EXPECT_EQ(frame.type, wire::FrameType::Hello);
    EXPECT_EQ(frame.hello.magic, wire::kMagic);
    EXPECT_EQ(frame.hello.version, wire::kVersion);

    bytes.clear();
    wire::encodeHelloAck(wire::HelloFrame{}, &bytes);
    result = decode(bytes, &frame);
    ASSERT_EQ(result.status, wire::DecodeStatus::Ok);
    EXPECT_EQ(frame.type, wire::FrameType::HelloAck);
}

TEST(Wire, RequestRoundTripProperty)
{
    std::mt19937_64 rng(20260808);
    for (int trial = 0; trial < 500; trial++) {
        wire::RequestFrame request;
        request.id = rng();
        request.episodeSeed = rng();
        request.modelSeed = rng();
        request.deadlineUs = static_cast<uint32_t>(rng());
        request.flags = static_cast<uint32_t>(rng());
        size_t name_len = 1 + rng() % wire::kMaxWorkloadName;
        request.workload.resize(name_len);
        for (char &c : request.workload)
            c = static_cast<char>(rng());

        std::vector<uint8_t> bytes;
        wire::encodeRequest(request, &bytes);
        wire::Frame frame;
        wire::DecodeResult result = decode(bytes, &frame);
        ASSERT_EQ(result.status, wire::DecodeStatus::Ok)
            << "trial " << trial;
        ASSERT_EQ(result.consumed, bytes.size());
        ASSERT_EQ(frame.type, wire::FrameType::Request);
        EXPECT_EQ(frame.request.id, request.id);
        EXPECT_EQ(frame.request.episodeSeed, request.episodeSeed);
        EXPECT_EQ(frame.request.modelSeed, request.modelSeed);
        EXPECT_EQ(frame.request.deadlineUs, request.deadlineUs);
        EXPECT_EQ(frame.request.flags, request.flags);
        EXPECT_EQ(frame.request.workload, request.workload);
    }
}

TEST(Wire, ResponseRoundTripProperty)
{
    std::mt19937_64 rng(777);
    std::uniform_real_distribution<double> uniform(-1e6, 1e6);
    for (int trial = 0; trial < 500; trial++) {
        wire::ResponseFrame response;
        response.id = rng();
        response.status = static_cast<uint8_t>(rng());
        response.scoreBits = rng(); // Arbitrary bits, incl. NaNs.
        response.latencySeconds = uniform(rng);
        response.queueSeconds = uniform(rng);
        response.serviceSeconds = uniform(rng);
        response.neuralSeconds = uniform(rng);
        response.symbolicSeconds = uniform(rng);
        response.batchSize = static_cast<uint32_t>(rng());
        response.shared = static_cast<uint32_t>(rng());
        response.retries = static_cast<uint32_t>(rng());
        response.flags = static_cast<uint32_t>(rng());

        std::vector<uint8_t> bytes;
        wire::encodeResponse(response, &bytes);
        wire::Frame frame;
        wire::DecodeResult result = decode(bytes, &frame);
        ASSERT_EQ(result.status, wire::DecodeStatus::Ok);
        ASSERT_EQ(frame.type, wire::FrameType::Response);
        const wire::ResponseFrame &got = frame.response;
        EXPECT_EQ(got.id, response.id);
        EXPECT_EQ(got.status, response.status);
        // Bit-exact: the determinism contract travels as raw IEEE
        // bits, so even NaN payloads must survive.
        EXPECT_EQ(got.scoreBits, response.scoreBits);
        EXPECT_EQ(got.latencySeconds, response.latencySeconds);
        EXPECT_EQ(got.queueSeconds, response.queueSeconds);
        EXPECT_EQ(got.serviceSeconds, response.serviceSeconds);
        EXPECT_EQ(got.neuralSeconds, response.neuralSeconds);
        EXPECT_EQ(got.symbolicSeconds, response.symbolicSeconds);
        EXPECT_EQ(got.batchSize, response.batchSize);
        EXPECT_EQ(got.shared, response.shared);
        EXPECT_EQ(got.retries, response.retries);
        EXPECT_EQ(got.flags, response.flags);
    }
}

TEST(Wire, ScoreBitsPreserveNonFiniteDoubles)
{
    for (double value :
         {0.0, -0.0, 1.0 / 3.0, std::nan("0x42"),
          std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::denorm_min()}) {
        wire::ResponseFrame response;
        response.setScore(value);
        std::vector<uint8_t> bytes;
        wire::encodeResponse(response, &bytes);
        wire::Frame frame;
        ASSERT_EQ(decode(bytes, &frame).status,
                  wire::DecodeStatus::Ok);
        double got = frame.response.score();
        EXPECT_EQ(std::memcmp(&got, &value, sizeof value), 0);
    }
}

TEST(Wire, EveryTruncationNeedsMore)
{
    wire::RequestFrame request;
    request.id = 7;
    request.workload = "ZeroC";
    std::vector<uint8_t> bytes;
    wire::encodeRequest(request, &bytes);
    for (size_t len = 0; len < bytes.size(); len++) {
        wire::Frame frame;
        wire::DecodeResult result =
            wire::tryDecode(bytes.data(), len, &frame);
        EXPECT_EQ(result.status, wire::DecodeStatus::NeedMore)
            << "prefix length " << len;
        EXPECT_EQ(result.consumed, 0u);
    }
}

TEST(Wire, StreamedDeliveryDecodesAtExactCompletion)
{
    wire::ResponseFrame response;
    response.id = 9;
    response.setScore(0.25);
    std::vector<uint8_t> bytes;
    wire::encodeResponse(response, &bytes);

    std::vector<uint8_t> buffer;
    for (size_t i = 0; i < bytes.size(); i++) {
        buffer.push_back(bytes[i]);
        wire::Frame frame;
        wire::DecodeResult result =
            wire::tryDecode(buffer.data(), buffer.size(), &frame);
        if (i + 1 < bytes.size()) {
            EXPECT_EQ(result.status, wire::DecodeStatus::NeedMore);
        } else {
            ASSERT_EQ(result.status, wire::DecodeStatus::Ok);
            EXPECT_EQ(frame.response.id, 9u);
        }
    }
}

TEST(Wire, BackToBackFramesConsumeExactly)
{
    std::vector<uint8_t> bytes;
    wire::encodeHello(wire::HelloFrame{}, &bytes);
    wire::RequestFrame request;
    request.id = 1;
    request.workload = "LNN";
    wire::encodeRequest(request, &bytes);

    wire::Frame frame;
    wire::DecodeResult first = decode(bytes, &frame);
    ASSERT_EQ(first.status, wire::DecodeStatus::Ok);
    EXPECT_EQ(frame.type, wire::FrameType::Hello);
    wire::DecodeResult second =
        wire::tryDecode(bytes.data() + first.consumed,
                        bytes.size() - first.consumed, &frame);
    ASSERT_EQ(second.status, wire::DecodeStatus::Ok);
    EXPECT_EQ(frame.type, wire::FrameType::Request);
    EXPECT_EQ(first.consumed + second.consumed, bytes.size());
}

TEST(Wire, ZeroLengthFrameIsMalformed)
{
    std::vector<uint8_t> bytes;
    putU32(&bytes, 0);
    wire::Frame frame;
    EXPECT_EQ(decode(bytes, &frame).status,
              wire::DecodeStatus::Malformed);
}

TEST(Wire, OversizedLengthIsMalformed)
{
    for (uint32_t length :
         {wire::kMaxBody + 1, 0x7fffffffu, 0xffffffffu}) {
        std::vector<uint8_t> bytes;
        putU32(&bytes, length);
        putU8(&bytes, static_cast<uint8_t>(wire::FrameType::Request));
        wire::Frame frame;
        EXPECT_EQ(decode(bytes, &frame).status,
                  wire::DecodeStatus::Malformed)
            << "length " << length;
    }
}

TEST(Wire, UnknownFrameTypeIsMalformed)
{
    for (uint8_t type : {uint8_t(0), uint8_t(5), uint8_t(0xff)}) {
        std::vector<uint8_t> bytes;
        putU32(&bytes, 1);
        putU8(&bytes, type);
        wire::Frame frame;
        EXPECT_EQ(decode(bytes, &frame).status,
                  wire::DecodeStatus::Malformed);
    }
}

/** Builds a request body by hand with a chosen workload length
 *  field, so length-field lies are testable. */
std::vector<uint8_t>
handRequest(uint16_t claimed_name_len, const std::string &name,
            size_t extra_trailing = 0)
{
    std::vector<uint8_t> body;
    putU8(&body, static_cast<uint8_t>(wire::FrameType::Request));
    putU64(&body, 1); // id
    putU64(&body, 2); // episodeSeed
    putU64(&body, 3); // modelSeed
    putU32(&body, 0); // deadlineUs
    putU32(&body, 0); // flags
    putU16(&body, claimed_name_len);
    body.insert(body.end(), name.begin(), name.end());
    for (size_t i = 0; i < extra_trailing; i++)
        putU8(&body, 0xee);

    std::vector<uint8_t> bytes;
    putU32(&bytes, static_cast<uint32_t>(body.size()));
    bytes.insert(bytes.end(), body.begin(), body.end());
    return bytes;
}

TEST(Wire, EmptyWorkloadNameIsMalformed)
{
    wire::Frame frame;
    EXPECT_EQ(decode(handRequest(0, ""), &frame).status,
              wire::DecodeStatus::Malformed);
}

TEST(Wire, NameLengthBeyondBodyIsMalformed)
{
    // Claims 32 name bytes but carries only 3.
    wire::Frame frame;
    EXPECT_EQ(decode(handRequest(32, "LNN"), &frame).status,
              wire::DecodeStatus::Malformed);
}

TEST(Wire, NameLengthOverCapIsMalformed)
{
    std::string name(wire::kMaxWorkloadName + 1, 'x');
    wire::Frame frame;
    EXPECT_EQ(decode(handRequest(static_cast<uint16_t>(name.size()),
                                 name),
                     &frame)
                  .status,
              wire::DecodeStatus::Malformed);
}

TEST(Wire, TrailingJunkInBodyIsMalformed)
{
    wire::Frame frame;
    EXPECT_EQ(decode(handRequest(3, "LNN", 5), &frame).status,
              wire::DecodeStatus::Malformed);
}

TEST(Wire, TruncatedFixedFieldsAreMalformed)
{
    // A request body shorter than its fixed fields: the length
    // prefix is honest (body complete), but the cursor runs dry.
    std::vector<uint8_t> body;
    putU8(&body, static_cast<uint8_t>(wire::FrameType::Request));
    putU64(&body, 1); // id only; everything else missing
    std::vector<uint8_t> bytes;
    putU32(&bytes, static_cast<uint32_t>(body.size()));
    bytes.insert(bytes.end(), body.begin(), body.end());
    wire::Frame frame;
    EXPECT_EQ(decode(bytes, &frame).status,
              wire::DecodeStatus::Malformed);
}

TEST(Wire, GarbageFuzzNeverCrashesOrOverreads)
{
    std::mt19937_64 rng(424242);
    for (int trial = 0; trial < 20000; trial++) {
        size_t size = rng() % 96;
        std::vector<uint8_t> bytes(size);
        for (uint8_t &b : bytes)
            b = static_cast<uint8_t>(rng());
        wire::Frame frame;
        wire::DecodeResult result =
            wire::tryDecode(bytes.data(), bytes.size(), &frame);
        if (result.status == wire::DecodeStatus::Ok) {
            EXPECT_LE(result.consumed, bytes.size());
            EXPECT_GE(result.consumed, 5u);
        } else {
            EXPECT_EQ(result.consumed, 0u);
        }
    }
}

} // namespace
