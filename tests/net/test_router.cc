/**
 * @file
 * Sharded router tests over real loopback backends: consistent-hash
 * placement is deterministic and cache-affine (the same key always
 * lands on the same backend), scores relay byte-identically, a dead
 * backend fails over to the survivors, and an all-down fleet sheds
 * with RejectedUnreachable instead of queueing.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "net/router.hh"
#include "net/tcp_server.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

/** One loopback backend: a serve::Server plus its TCP front end. */
struct Backend
{
    std::unique_ptr<serve::Server> server;
    std::unique_ptr<net::TcpServer> tcp;

    std::string
    endpoint() const
    {
        return "127.0.0.1:" + std::to_string(tcp->port());
    }
};

std::unique_ptr<Backend>
makeBackend(const std::vector<std::string> &workloads,
            bool result_cache = true)
{
    serve::ServerOptions options;
    options.workloads = workloads;
    options.workers = 2;
    options.maxBatch = 4;
    options.maxWaitUs = 1000;
    options.resultCache = result_cache;
    options.factory = serve::serveFactory;
    auto backend = std::make_unique<Backend>();
    backend->server =
        std::make_unique<serve::Server>(std::move(options));
    backend->tcp = std::make_unique<net::TcpServer>(*backend->server);
    return backend;
}

net::RouterOptions
routerOptions(const std::vector<std::unique_ptr<Backend>> &backends)
{
    net::RouterOptions options;
    for (const auto &backend : backends)
        options.backends.push_back(backend->endpoint());
    options.retryDownSeconds = 0.2;
    return options;
}

net::ClientOptions
clientFor(uint16_t port)
{
    net::ClientOptions options;
    options.port = port;
    options.connectAttempts = 3;
    options.backoffInitialSeconds = 0.01;
    return options;
}

class NetRouter : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workloads::registerAllWorkloads();
    }
};

TEST_F(NetRouter, PlacementIsDeterministicAndSpreadsKeys)
{
    std::vector<std::unique_ptr<Backend>> backends;
    backends.push_back(makeBackend({"LNN"}));
    backends.push_back(makeBackend({"LNN"}));
    backends.push_back(makeBackend({"LNN"}));
    net::Router router(routerOptions(backends));

    std::map<size_t, int> population;
    for (uint64_t seed = 0; seed < 64; seed++) {
        size_t shard = router.shardOf("LNN", 0, seed);
        ASSERT_LT(shard, backends.size());
        // Same key, same shard — every time.
        EXPECT_EQ(router.shardOf("LNN", 0, seed), shard);
        population[shard]++;
    }
    // 64 keys over 3 backends with 64 virtual nodes each: every
    // backend must own a nonempty share.
    EXPECT_EQ(population.size(), backends.size());
}

TEST_F(NetRouter, ForwardsWithCacheAffinity)
{
    std::vector<std::unique_ptr<Backend>> backends;
    backends.push_back(makeBackend({"ZeroC"}));
    backends.push_back(makeBackend({"ZeroC"}));
    net::Router router(routerOptions(backends));
    net::Client client(clientFor(router.port()));

    const std::vector<uint64_t> seeds = {1, 2, 3, 4, 5, 6, 7, 8};
    auto lap = [&] {
        std::map<uint64_t, double> scores;
        for (uint64_t seed : seeds) {
            serve::Response response = client.call("ZeroC", seed);
            EXPECT_EQ(response.status, serve::RequestStatus::Ok);
            scores[seed] = response.score;
        }
        return scores;
    };

    auto first = lap();
    std::vector<net::BackendStats> after_first =
        router.backendStats();
    auto second = lap();
    std::vector<net::BackendStats> after_second =
        router.backendStats();

    EXPECT_EQ(first, second); // Scores are stable across laps.

    uint64_t total = 0;
    for (size_t i = 0; i < after_second.size(); i++) {
        // Affinity: lap two sent each backend exactly the keys it
        // got in lap one.
        EXPECT_EQ(after_second[i].forwarded - after_first[i].forwarded,
                  after_first[i].forwarded);
        total += after_second[i].forwarded;
        EXPECT_FALSE(after_second[i].down);
    }
    EXPECT_EQ(total, seeds.size() * 2);

    // Affinity pays off as backend-local cache hits on lap two.
    uint64_t hits = 0;
    for (const auto &backend : backends)
        hits += backend->server->resultCache()->stats().hits;
    EXPECT_GE(hits, seeds.size());
}

TEST_F(NetRouter, RelayedScoresAreByteIdenticalToDirectExecution)
{
    std::vector<std::unique_ptr<Backend>> backends;
    backends.push_back(makeBackend({"ZeroC"}));
    backends.push_back(makeBackend({"ZeroC"}));
    net::Router router(routerOptions(backends));
    net::Client client(clientFor(router.port()));

    serve::ServerOptions reference;
    auto replica = serve::serveFactory("ZeroC");
    replica->setUp(reference.modelSeed);
    for (uint64_t seed : {11, 12, 13}) {
        replica->reseedEpisodes(seed);
        double direct = replica->run();
        serve::Response response = client.call("ZeroC", seed);
        ASSERT_EQ(response.status, serve::RequestStatus::Ok);
        EXPECT_EQ(std::memcmp(&response.score, &direct,
                              sizeof direct),
                  0)
            << "seed " << seed << " diverged through the router";
    }
}

TEST_F(NetRouter, FailsOverToSurvivingBackend)
{
    std::vector<std::unique_ptr<Backend>> backends;
    backends.push_back(makeBackend({"LNN"}));
    backends.push_back(makeBackend({"LNN"}));
    net::Router router(routerOptions(backends));
    net::Client client(clientFor(router.port()));

    // Warm both shards up, then kill backend 0 outright.
    for (uint64_t seed = 0; seed < 8; seed++)
        EXPECT_EQ(client.call("LNN", seed).status,
                  serve::RequestStatus::Ok);
    backends[0]->tcp->shutdown();
    backends[0]->tcp.reset();
    backends[0]->server.reset();

    // Every key — including those placed on the dead backend — must
    // still complete via failover to the survivor.
    for (uint64_t seed = 0; seed < 8; seed++)
        EXPECT_EQ(client.call("LNN", seed).status,
                  serve::RequestStatus::Ok)
            << "seed " << seed << " lost to the dead backend";

    std::vector<net::BackendStats> stats = router.backendStats();
    EXPECT_TRUE(stats[0].down);
    EXPECT_GE(stats[0].downMarks, 1u);
    EXPECT_GE(stats[0].failovers, 1u);
    EXPECT_FALSE(stats[1].down);
}

TEST_F(NetRouter, RecoversAfterBackendComesBack)
{
    std::vector<std::unique_ptr<Backend>> backends;
    backends.push_back(makeBackend({"LNN"}));
    net::RouterOptions options = routerOptions(backends);
    options.retryDownSeconds = 0.05;
    net::Router router(options);
    net::Client client(clientFor(router.port()));

    EXPECT_EQ(client.call("LNN", 1).status,
              serve::RequestStatus::Ok);

    uint16_t port = backends[0]->tcp->port();
    backends[0]->tcp->shutdown();
    backends[0]->tcp.reset();
    // Depending on who notices first this surfaces as a shed
    // (RejectedUnreachable) or a dropped in-flight request (Failed);
    // either way it must not be Ok.
    EXPECT_NE(client.call("LNN", 2).status,
              serve::RequestStatus::Ok);

    // Resurrect the backend on the same port; after the down-window
    // lapses the router's probe must find it again.
    net::FrameServerOptions listen;
    listen.port = port;
    backends[0]->tcp = std::make_unique<net::TcpServer>(
        *backends[0]->server, listen);
    serve::RequestStatus status =
        serve::RequestStatus::RejectedUnreachable;
    for (int attempt = 0; attempt < 50; attempt++) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        status = client.call("LNN", 3).status;
        if (status == serve::RequestStatus::Ok)
            break;
    }
    EXPECT_EQ(status, serve::RequestStatus::Ok);
}

TEST_F(NetRouter, ShedsWhenEveryBackendIsDown)
{
    std::vector<std::unique_ptr<Backend>> backends;
    backends.push_back(makeBackend({"LNN"}));
    backends.push_back(makeBackend({"LNN"}));
    net::RouterOptions options = routerOptions(backends);
    // Tear the fleet down before the router ever reaches it.
    for (auto &backend : backends) {
        backend->tcp->shutdown();
        backend->tcp.reset();
        backend->server.reset();
    }
    net::Router router(options);
    net::Client client(clientFor(router.port()));

    serve::Response response = client.call("LNN", 1);
    EXPECT_EQ(response.status,
              serve::RequestStatus::RejectedUnreachable);
    EXPECT_GE(router.metrics().total().rejectedUnreachable, 1u);
}

TEST_F(NetRouter, RelaysBackendRejectionsVerbatim)
{
    std::vector<std::unique_ptr<Backend>> backends;
    backends.push_back(makeBackend({"LNN"}));
    net::Router router(routerOptions(backends));
    net::Client client(clientFor(router.port()));
    // The backend serves LNN only; the router forwards on hash, the
    // backend rejects, and the client sees the backend's verdict.
    serve::Response response = client.call("NoSuchWorkload", 1);
    EXPECT_EQ(response.status,
              serve::RequestStatus::RejectedUnknownWorkload);
}

} // namespace
