/**
 * @file
 * BoundedQueue unit tests: FIFO order, capacity rejection, blocking
 * behaviour, and the close/drain protocol graceful shutdown rests on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/queue.hh"

namespace
{

using namespace nsbench;
using serve::BoundedQueue;

TEST(ServeQueue, FifoOrder)
{
    BoundedQueue<int> queue(8);
    for (int i = 0; i < 5; i++)
        EXPECT_TRUE(queue.tryPush(i));
    for (int i = 0; i < 5; i++) {
        auto item = queue.pop();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(*item, i);
    }
    EXPECT_EQ(queue.size(), 0u);
}

TEST(ServeQueue, TryPushRejectsWhenFull)
{
    BoundedQueue<int> queue(2);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    EXPECT_FALSE(queue.tryPush(3));
    EXPECT_EQ(queue.size(), 2u);
    queue.pop();
    EXPECT_TRUE(queue.tryPush(3));
}

TEST(ServeQueue, CloseFailsPushesButDrainsPops)
{
    BoundedQueue<int> queue(8);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    queue.close();
    EXPECT_TRUE(queue.closed());
    EXPECT_FALSE(queue.drained());
    EXPECT_FALSE(queue.tryPush(3));
    EXPECT_FALSE(queue.push(3));

    auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, 1);
    auto second = queue.pop();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*second, 2);
    EXPECT_TRUE(queue.drained());
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(ServeQueue, CloseWakesBlockedPop)
{
    BoundedQueue<int> queue(4);
    std::atomic<bool> returned{false};
    std::thread consumer([&] {
        auto item = queue.pop();
        EXPECT_FALSE(item.has_value());
        returned.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(returned.load());
    queue.close();
    consumer.join();
    EXPECT_TRUE(returned.load());
}

TEST(ServeQueue, CloseWakesBlockedPush)
{
    BoundedQueue<int> queue(1);
    EXPECT_TRUE(queue.tryPush(1));
    std::atomic<bool> pushed{true};
    std::thread producer([&] { pushed.store(queue.push(2)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    producer.join();
    EXPECT_FALSE(pushed.load());
}

TEST(ServeQueue, PushUnblocksWhenSpaceFrees)
{
    BoundedQueue<int> queue(1);
    EXPECT_TRUE(queue.tryPush(1));
    std::atomic<bool> pushed{false};
    std::thread producer([&] { pushed.store(queue.push(2)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(*queue.pop(), 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(*queue.pop(), 2);
}

TEST(ServeQueue, PopUntilTimesOutOnEmptyQueue)
{
    BoundedQueue<int> queue(4);
    auto deadline = serve::ServeClock::now() +
                    std::chrono::milliseconds(10);
    auto item = queue.popUntil(deadline);
    EXPECT_FALSE(item.has_value());
    EXPECT_FALSE(queue.drained());
    EXPECT_GE(serve::ServeClock::now(), deadline);
}

TEST(ServeQueue, ConcurrentProducersConsumersDeliverEverything)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    constexpr int kPerProducer = 500;

    BoundedQueue<int> queue(16);
    std::atomic<long long> sum{0};
    std::atomic<int> received{0};

    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; c++)
        consumers.emplace_back([&] {
            while (auto item = queue.pop()) {
                sum.fetch_add(*item);
                received.fetch_add(1);
            }
        });

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; p++)
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; i++)
                EXPECT_TRUE(queue.push(p * kPerProducer + i));
        });
    for (auto &producer : producers)
        producer.join();
    queue.close();
    for (auto &consumer : consumers)
        consumer.join();

    const long long n = kProducers * kPerProducer;
    EXPECT_EQ(received.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
    EXPECT_TRUE(queue.drained());
}

TEST(ServeQueueDeath, RejectsZeroCapacity)
{
    EXPECT_DEATH(BoundedQueue<int> queue(0), "capacity");
}

} // namespace
