/**
 * @file
 * Determinism-under-concurrency integration tests on real workloads.
 *
 * The serving determinism contract: a request with a fixed seed
 * returns the same score no matter how it was served — one replica
 * or many, batch size 1 or 8, coalescing on or off, whatever the
 * arrival order. These tests drive real (serve-preset) workloads
 * through servers at those extremes and require byte-identical
 * scores, including against a direct un-served execution.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>
#include <vector>

#include "serve/presets.hh"
#include "serve/server.hh"
#include "util/threadpool.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

class ServeDeterminism : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workloads::registerAllWorkloads();
    }

    static serve::ServerOptions
    serverOptions(const std::string &workload, int workers,
                  int max_batch, bool coalesce)
    {
        serve::ServerOptions options;
        options.workloads = {workload};
        options.workers = workers;
        options.maxBatch = max_batch;
        options.coalesce = coalesce;
        options.maxWaitUs = 1000;
        options.factory = serve::serveFactory;
        return options;
    }

    /** Serves every seed once and returns seed -> score. */
    static std::map<uint64_t, double>
    scoresVia(serve::ServerOptions options,
              const std::vector<uint64_t> &seeds)
    {
        serve::Server server(std::move(options));
        const std::string workload = server.workloads().front();
        std::map<uint64_t, double> scores;
        std::mutex mu;
        std::condition_variable cv;
        size_t outstanding = seeds.size();
        for (uint64_t seed : seeds) {
            serve::RequestStatus status = server.submit(
                workload, seed,
                [&, seed](const serve::Response &response) {
                    std::lock_guard<std::mutex> lock(mu);
                    EXPECT_EQ(response.status,
                              serve::RequestStatus::Ok);
                    auto [it, inserted] =
                        scores.emplace(seed, response.score);
                    if (!inserted) {
                        EXPECT_EQ(it->second, response.score);
                    }
                    if (--outstanding == 0)
                        cv.notify_all();
                });
            EXPECT_EQ(status, serve::RequestStatus::Ok);
        }
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return outstanding == 0; });
        return scores;
    }
};

TEST_F(ServeDeterminism, ReplicaCountDoesNotChangeScores)
{
    const std::vector<uint64_t> seeds = {1, 2, 3, 4, 1, 2, 3, 4};
    auto one = scoresVia(serverOptions("ZeroC", 1, 1, true), seeds);
    auto many = scoresVia(serverOptions("ZeroC", 3, 1, true), seeds);
    EXPECT_EQ(one, many);
}

TEST_F(ServeDeterminism, BatchSizeAndCoalescingDoNotChangeScores)
{
    const std::vector<uint64_t> seeds = {5, 6, 5, 6, 5, 6, 5, 6};
    auto unbatched =
        scoresVia(serverOptions("ZeroC", 1, 1, false), seeds);
    auto batched =
        scoresVia(serverOptions("ZeroC", 2, 8, true), seeds);
    EXPECT_EQ(unbatched, batched);
}

TEST_F(ServeDeterminism, ArrivalOrderDoesNotChangeScores)
{
    std::vector<uint64_t> forward = {1, 2, 3, 4, 5, 6};
    std::vector<uint64_t> reverse(forward.rbegin(), forward.rend());
    auto options = serverOptions("ZeroC", 2, 4, true);
    auto a = scoresVia(options, forward);
    auto b = scoresVia(options, reverse);
    EXPECT_EQ(a, b);
}

TEST_F(ServeDeterminism, ServedScoresMatchDirectExecution)
{
    auto served =
        scoresVia(serverOptions("ZeroC", 2, 4, true), {7, 8, 9});

    // The same replica build, run without the server: one setUp at
    // the server's model seed, then reseed-and-run per request seed.
    serve::ServerOptions reference;
    auto replica = serve::serveFactory("ZeroC");
    replica->setUp(reference.modelSeed);
    for (uint64_t seed : {7, 8, 9}) {
        replica->reseedEpisodes(seed);
        double direct = replica->run();
        EXPECT_EQ(served.at(seed), direct)
            << "seed " << seed << " diverged from direct execution";
    }
}

TEST_F(ServeDeterminism, SeedInsensitiveWorkloadScoresAreSeedFree)
{
    auto scores =
        scoresVia(serverOptions("LNN", 2, 8, true), {1, 2, 3, 4});
    for (const auto &[seed, score] : scores)
        EXPECT_EQ(score, scores.begin()->second);

    // And identical to an un-served run at the same model seed.
    serve::ServerOptions reference;
    auto replica = serve::serveFactory("LNN");
    replica->setUp(reference.modelSeed);
    EXPECT_EQ(scores.begin()->second, replica->run());
}

TEST_F(ServeDeterminism, PhaseSplitIsReportedPerRequest)
{
    serve::Server server(serverOptions("LNN", 1, 1, true));
    serve::Response response = server.call("LNN", 1);
    ASSERT_EQ(response.status, serve::RequestStatus::Ok);
    EXPECT_GT(response.neuralSeconds + response.symbolicSeconds, 0.0);
    EXPECT_GT(response.serviceSeconds, 0.0);
    EXPECT_LE(response.neuralSeconds + response.symbolicSeconds,
              response.serviceSeconds * 1.5);
}

} // namespace
