/**
 * @file
 * Server behaviour tests over the fake workload: admission control,
 * deadlines, coalescing, graceful drain, and callback delivery.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "fake_workload.hh"
#include "serve/server.hh"

namespace
{

using namespace nsbench;
using namespace std::chrono_literals;
using tests::FakeCounters;
using tests::FakeWorkload;

serve::ServerOptions
fakeOptions(FakeCounters &counters, bool seed_sensitive,
            int sleep_ms = 0)
{
    serve::ServerOptions options;
    options.workloads = {"Fake"};
    options.workers = 1;
    options.maxBatch = 4;
    options.maxWaitUs = 2000;
    options.profilePhases = false;
    options.factory = [&counters, seed_sensitive,
                       sleep_ms](const std::string &) {
        return std::make_unique<FakeWorkload>(counters,
                                              seed_sensitive,
                                              sleep_ms);
    };
    return options;
}

TEST(ServeServer, PrewarmsOneReplicaPerWorkerBeforeServing)
{
    FakeCounters counters;
    auto options = fakeOptions(counters, true);
    options.workers = 3;
    serve::Server server(std::move(options));
    // The constructor blocks until pre-warm completes: one setUp per
    // (worker, workload) and no runs yet.
    EXPECT_EQ(counters.setUps.load(), 3u);
    EXPECT_EQ(counters.runs.load(), 0u);
}

TEST(ServeServer, CallReturnsTheDeterministicScore)
{
    FakeCounters counters;
    serve::Server server(fakeOptions(counters, true));

    serve::Response first = server.call("Fake", 7);
    serve::Response again = server.call("Fake", 7);
    serve::Response other = server.call("Fake", 8);

    EXPECT_EQ(first.status, serve::RequestStatus::Ok);
    EXPECT_EQ(first.score, again.score);
    EXPECT_NE(first.score, other.score);
    EXPECT_GT(first.latencySeconds, 0.0);
    EXPECT_GE(first.latencySeconds, first.queueSeconds);
}

TEST(ServeServer, RejectsUnknownWorkload)
{
    FakeCounters counters;
    serve::Server server(fakeOptions(counters, true));
    serve::Response response = server.call("NoSuch", 1);
    EXPECT_EQ(response.status,
              serve::RequestStatus::RejectedUnknownWorkload);
    EXPECT_EQ(
        server.metrics().workload("NoSuch").rejectedUnknown, 1u);
}

TEST(ServeServer, RejectsDeadOnArrivalDeadline)
{
    FakeCounters counters;
    serve::Server server(fakeOptions(counters, true));
    serve::Response response = server.call(
        "Fake", 1, serve::ServeClock::now() - 1ms);
    EXPECT_EQ(response.status,
              serve::RequestStatus::RejectedDeadline);
    EXPECT_EQ(counters.runs.load(), 0u);
}

TEST(ServeServer, ExpiresRequestsThatOutwaitTheirDeadline)
{
    FakeCounters counters;
    // 30 ms of service per run on a single worker: the second
    // request's 5 ms deadline expires while it queues.
    serve::Server server(fakeOptions(counters, true, 30));

    std::atomic<int> expired{0};
    std::atomic<int> done{0};
    std::mutex mu;
    std::condition_variable cv;
    int outstanding = 2;
    auto callback = [&](const serve::Response &response) {
        if (response.status == serve::RequestStatus::Expired)
            expired.fetch_add(1);
        else
            done.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        if (--outstanding == 0)
            cv.notify_all();
    };

    ASSERT_EQ(server.submit("Fake", 1, callback),
              serve::RequestStatus::Ok);
    ASSERT_EQ(server.submit("Fake", 2, callback,
                            serve::ServeClock::now() + 5ms),
              serve::RequestStatus::Ok);
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return outstanding == 0; });
    }
    EXPECT_EQ(done.load(), 1);
    EXPECT_EQ(expired.load(), 1);
    EXPECT_EQ(server.metrics().workload("Fake").expired, 1u);
}

TEST(ServeServer, BackpressureRejectsWhenQueueFills)
{
    FakeCounters counters;
    auto options = fakeOptions(counters, true, 50);
    options.queueCapacity = 2;
    options.maxBatch = 1;
    serve::Server server(std::move(options));

    // Saturate the single slow worker, then overfill the queue.
    std::atomic<int> completions{0};
    auto callback = [&](const serve::Response &) {
        completions.fetch_add(1);
    };
    int admitted = 0;
    int rejected = 0;
    for (uint64_t i = 0; i < 12; i++) {
        serve::RequestStatus status =
            server.submit("Fake", i, callback);
        if (status == serve::RequestStatus::Ok)
            admitted++;
        else if (status == serve::RequestStatus::RejectedQueueFull)
            rejected++;
    }
    EXPECT_GT(rejected, 0);
    server.shutdown();
    // Graceful drain: every admitted request completed, rejected
    // requests never saw a callback.
    EXPECT_EQ(completions.load(), admitted);
    EXPECT_EQ(server.metrics().workload("Fake").rejectedQueueFull,
              static_cast<uint64_t>(rejected));
}

TEST(ServeServer, CoalescesSameSeedRequests)
{
    FakeCounters counters;
    auto options = fakeOptions(counters, true, 5);
    options.maxBatch = 8;
    options.maxWaitUs = 50000;
    serve::Server server(std::move(options));

    // Warm-up request so the batcher timer dynamics are the only
    // variable, then 8 requests for two distinct seeds.
    server.call("Fake", 99);
    uint64_t runsBefore = counters.runs.load();

    std::atomic<int> outstanding{8};
    std::mutex mu;
    std::condition_variable cv;
    std::vector<double> scoresBySeed[2];
    std::mutex scoresMu;
    for (int i = 0; i < 8; i++) {
        uint64_t seed = static_cast<uint64_t>(i % 2);
        ASSERT_EQ(server.submit(
                      "Fake", seed,
                      [&, seed](const serve::Response &response) {
                          {
                              std::lock_guard<std::mutex> lock(
                                  scoresMu);
                              scoresBySeed[seed].push_back(
                                  response.score);
                          }
                          std::lock_guard<std::mutex> lock(mu);
                          if (outstanding.fetch_sub(1) == 1)
                              cv.notify_all();
                      }),
                  serve::RequestStatus::Ok);
    }
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return outstanding.load() == 0; });
    }

    // Two distinct seeds -> at most a handful of runs, far fewer
    // than 8; every member of a seed group got the same score.
    uint64_t runs = counters.runs.load() - runsBefore;
    EXPECT_LT(runs, 8u);
    for (const auto &scores : scoresBySeed) {
        ASSERT_FALSE(scores.empty());
        for (double score : scores)
            EXPECT_EQ(score, scores.front());
    }
}

TEST(ServeServer, SeedInsensitiveWorkloadsCoalesceWholeBatches)
{
    FakeCounters counters;
    auto options = fakeOptions(counters, /*seed_sensitive=*/false, 5);
    options.maxBatch = 8;
    options.maxWaitUs = 50000;
    serve::Server server(std::move(options));

    server.call("Fake", 0);
    uint64_t runsBefore = counters.runs.load();
    uint64_t reseedsBefore = counters.reseeds.load();

    std::atomic<int> outstanding{8};
    std::mutex mu;
    std::condition_variable cv;
    for (uint64_t i = 0; i < 8; i++)
        ASSERT_EQ(server.submit("Fake", i,
                                [&](const serve::Response &) {
                                    std::lock_guard<std::mutex> lock(
                                        mu);
                                    if (outstanding.fetch_sub(1) == 1)
                                        cv.notify_all();
                                }),
                  serve::RequestStatus::Ok);
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return outstanding.load() == 0; });
    }

    // Eight distinct seeds, but the workload ignores them: they
    // coalesce onto far fewer runs and never trigger a reseed.
    EXPECT_LT(counters.runs.load() - runsBefore, 8u);
    EXPECT_EQ(counters.reseeds.load(), reseedsBefore);
}

TEST(ServeServer, CoalesceOffRunsEveryRequest)
{
    FakeCounters counters;
    auto options = fakeOptions(counters, true);
    options.coalesce = false;
    options.maxBatch = 8;
    serve::Server server(std::move(options));

    for (int i = 0; i < 6; i++)
        server.call("Fake", 3);
    EXPECT_EQ(counters.runs.load(), 6u);
    EXPECT_DOUBLE_EQ(
        server.metrics().workload("Fake").shareFactor(), 1.0);
}

TEST(ServeServer, ShutdownDrainsAndThenRejects)
{
    FakeCounters counters;
    serve::Server server(fakeOptions(counters, true, 2));

    std::atomic<int> completions{0};
    for (uint64_t i = 0; i < 10; i++)
        ASSERT_EQ(server.submit("Fake", i,
                                [&](const serve::Response &response) {
                                    EXPECT_EQ(
                                        response.status,
                                        serve::RequestStatus::Ok);
                                    completions.fetch_add(1);
                                }),
                  serve::RequestStatus::Ok);
    server.shutdown();
    EXPECT_EQ(completions.load(), 10);

    serve::Response late = server.call("Fake", 1);
    EXPECT_EQ(late.status, serve::RequestStatus::RejectedShutdown);
    // shutdown() is idempotent (the destructor calls it again).
    server.shutdown();
}

TEST(ServeServer, OfferedLoadCountsRejectionsSeparately)
{
    // Regression: rejected requests must not dilute throughput math.
    // `offered` counts every submit() (admitted + rejected) while
    // `completed` only counts Ok finishes, so acceptance and goodput
    // denominators stay honest under backpressure.
    FakeCounters counters;
    auto options = fakeOptions(counters, true, 50);
    options.queueCapacity = 2;
    options.maxBatch = 1;
    serve::Server server(std::move(options));

    std::atomic<int> completions{0};
    auto callback = [&](const serve::Response &) {
        completions.fetch_add(1);
    };
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    for (uint64_t i = 0; i < 10; i++) {
        if (server.submit("Fake", i, callback) ==
            serve::RequestStatus::Ok)
            admitted++;
        else
            rejected++;
    }
    ASSERT_GT(rejected, 0u);
    server.shutdown();

    serve::WorkloadMetrics m = server.metrics().workload("Fake");
    EXPECT_EQ(m.offered, 10u);
    EXPECT_EQ(m.offered, m.submitted + m.rejected());
    EXPECT_EQ(m.submitted, admitted);
    EXPECT_EQ(m.rejected(), rejected);
    EXPECT_EQ(m.completed, admitted);
    serve::WorkloadMetrics t = server.metrics().total();
    EXPECT_EQ(t.offered, 10u);
}

TEST(ServeServer, MetricsAccountEveryOutcome)
{
    FakeCounters counters;
    serve::Server server(fakeOptions(counters, true));
    for (uint64_t i = 0; i < 5; i++)
        server.call("Fake", i);
    serve::WorkloadMetrics m = server.metrics().workload("Fake");
    EXPECT_EQ(m.submitted, 5u);
    EXPECT_EQ(m.completed, 5u);
    EXPECT_EQ(m.rejected(), 0u);
    EXPECT_EQ(m.latency.count(), 5u);
    EXPECT_GT(m.latency.p99(), 0.0);
    EXPECT_GE(m.executions, 1u);

    server.resetMetrics();
    EXPECT_EQ(server.metrics().workload("Fake").submitted, 0u);
}

} // namespace
