/**
 * @file
 * Batcher unit tests: size-triggered dispatch, timer-triggered
 * dispatch, per-workload separation, and the drain-then-close
 * handoff to the worker side.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "serve/batcher.hh"
#include "serve/metrics.hh"
#include "serve/queue.hh"

namespace
{

using namespace nsbench;
using namespace std::chrono_literals;

serve::Request
makeRequest(const std::string &workload, uint64_t seed)
{
    serve::Request request;
    request.workload = workload;
    request.seed = seed;
    request.enqueue = serve::ServeClock::now();
    return request;
}

/** Runs a batcher over its own thread for the test's lifetime. */
struct BatcherHarness
{
    explicit BatcherHarness(int max_batch,
                            std::chrono::microseconds max_wait)
        : in(64), out(64),
          batcher(in, out, max_batch, max_wait, metrics),
          thread([this] { batcher.run(); })
    {}

    ~BatcherHarness()
    {
        in.close();
        thread.join();
    }

    serve::BoundedQueue<serve::Request> in;
    serve::BoundedQueue<serve::Batch> out;
    serve::ServerMetrics metrics;
    serve::Batcher batcher;
    std::thread thread;
};

TEST(ServeBatcher, DispatchesWhenBatchFills)
{
    BatcherHarness harness(4, 10s);
    for (uint64_t i = 0; i < 4; i++)
        ASSERT_TRUE(harness.in.push(makeRequest("A", i)));

    // The wait timer is effectively infinite, so only the size
    // trigger can have dispatched this batch.
    auto batch = harness.out.pop();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->workload, "A");
    ASSERT_EQ(batch->requests.size(), 4u);
    for (uint64_t i = 0; i < 4; i++)
        EXPECT_EQ(batch->requests[i].seed, i);
}

TEST(ServeBatcher, DispatchesPartialBatchAfterMaxWait)
{
    BatcherHarness harness(8, 5ms);
    ASSERT_TRUE(harness.in.push(makeRequest("A", 1)));
    ASSERT_TRUE(harness.in.push(makeRequest("A", 2)));

    auto start = serve::ServeClock::now();
    auto batch = harness.out.pop();
    double waited = serve::secondsBetween(start,
                                          serve::ServeClock::now());
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->requests.size(), 2u);
    EXPECT_LT(waited, 1.0);
}

TEST(ServeBatcher, KeepsWorkloadsInSeparateBatches)
{
    BatcherHarness harness(2, 10s);
    ASSERT_TRUE(harness.in.push(makeRequest("A", 1)));
    ASSERT_TRUE(harness.in.push(makeRequest("B", 1)));
    ASSERT_TRUE(harness.in.push(makeRequest("A", 2)));
    ASSERT_TRUE(harness.in.push(makeRequest("B", 2)));

    std::vector<serve::Batch> batches;
    batches.push_back(*harness.out.pop());
    batches.push_back(*harness.out.pop());
    for (const auto &batch : batches) {
        EXPECT_EQ(batch.requests.size(), 2u);
        for (const auto &request : batch.requests)
            EXPECT_EQ(request.workload, batch.workload);
    }
    EXPECT_NE(batches[0].workload, batches[1].workload);
}

TEST(ServeBatcher, DrainFlushesPendingAndClosesOutput)
{
    serve::BoundedQueue<serve::Request> in(64);
    serve::BoundedQueue<serve::Batch> out(64);
    serve::ServerMetrics metrics;
    serve::Batcher batcher(in, out, 8, std::chrono::seconds(10),
                           metrics);
    std::thread thread([&] { batcher.run(); });

    ASSERT_TRUE(in.push(makeRequest("A", 1)));
    ASSERT_TRUE(in.push(makeRequest("B", 2)));
    in.close();
    thread.join();

    // Both pending singletons flushed despite their infinite timers,
    // then the batch queue closed: drain strands nothing.
    int batches = 0;
    while (auto batch = out.pop()) {
        EXPECT_EQ(batch->requests.size(), 1u);
        batches++;
    }
    EXPECT_EQ(batches, 2);
    EXPECT_TRUE(out.drained());
}

TEST(ServeBatcher, RecordsBatchOccupancy)
{
    {
        BatcherHarness harness(2, 10s);
        for (uint64_t i = 0; i < 6; i++)
            ASSERT_TRUE(harness.in.push(makeRequest("A", i)));
        for (int b = 0; b < 3; b++)
            ASSERT_TRUE(harness.out.pop().has_value());
        serve::WorkloadMetrics m = harness.metrics.workload("A");
        EXPECT_EQ(m.batches, 3u);
        EXPECT_DOUBLE_EQ(m.batchOccupancy.mean(), 2.0);
    }
}

} // namespace
