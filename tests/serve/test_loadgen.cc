/**
 * @file
 * Load-generator tests: request accounting closes, both disciplines
 * drain fully, and the workload mix is honoured.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "fake_workload.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "util/rng.hh"

namespace
{

using namespace nsbench;
using tests::FakeCounters;
using tests::FakeWorkload;

serve::ServerOptions
fakeServer(FakeCounters &counters)
{
    serve::ServerOptions options;
    options.workloads = {"Fake"};
    options.workers = 2;
    options.profilePhases = false;
    options.factory = [&counters](const std::string &) {
        return std::make_unique<FakeWorkload>(counters,
                                              /*seed_sensitive=*/true,
                                              /*sleep_ms=*/1);
    };
    return options;
}

void
expectClosedAccounting(const serve::LoadgenReport &report)
{
    EXPECT_EQ(report.submitted, report.admitted + report.rejected);
    EXPECT_EQ(report.admitted, report.completed + report.expired);
}

TEST(ServeLoadgen, OpenLoopDrainsEveryAdmittedRequest)
{
    FakeCounters counters;
    serve::Server server(fakeServer(counters));
    serve::LoadgenOptions options;
    options.openLoop = true;
    options.rateHz = 500.0;
    options.durationSeconds = 0.3;
    serve::LoadgenReport report =
        serve::runLoadgen(server, options);

    EXPECT_GT(report.submitted, 0u);
    expectClosedAccounting(report);
    EXPECT_GT(report.throughput(), 0.0);
    EXPECT_EQ(server.metrics().workload("Fake").completed,
              report.completed);
}

TEST(ServeLoadgen, ClosedLoopDrainsEveryAdmittedRequest)
{
    FakeCounters counters;
    serve::Server server(fakeServer(counters));
    serve::LoadgenOptions options;
    options.openLoop = false;
    options.clients = 4;
    options.durationSeconds = 0.3;
    serve::LoadgenReport report =
        serve::runLoadgen(server, options);

    EXPECT_GT(report.submitted, 0u);
    expectClosedAccounting(report);
    EXPECT_EQ(report.rejected, 0u);
}

TEST(ServeLoadgen, SeedUniverseBoundsTheSeedsRequested)
{
    FakeCounters counters;
    auto server_options = fakeServer(counters);
    server_options.coalesce = false;
    serve::Server server(std::move(server_options));

    serve::LoadgenOptions options;
    options.openLoop = true;
    options.rateHz = 400.0;
    options.durationSeconds = 0.25;
    options.seedUniverse = 4;
    options.zipfExponent = 1.2;
    serve::LoadgenReport report =
        serve::runLoadgen(server, options);
    EXPECT_GT(report.completed, 0u);
    // Four distinct seeds at most -> at most four distinct scores
    // (the fake's score is injective in the seed modulo 100000).
    // Verified through the share factor instead would need
    // coalescing; here we just require the run to complete cleanly.
    expectClosedAccounting(report);
}

TEST(ServeLoadgen, ZipfRankFrequenciesMatchTheExponent)
{
    // With exponent s, P(rank r) ~ r^-s, so the rank-1 : rank-k
    // frequency ratio must approach k^s. 200k draws keep the
    // sampling error well under the 25% tolerance.
    constexpr uint64_t universe = 32;
    constexpr double exponent = 1.1;
    constexpr int draws = 200000;
    serve::ZipfSeedSampler sampler(universe, exponent);
    util::Rng rng(1234);

    std::vector<uint64_t> counts(universe, 0);
    for (int i = 0; i < draws; i++) {
        uint64_t seed = sampler.sample(rng, 0);
        ASSERT_LT(seed, universe);
        counts[seed]++;
    }

    ASSERT_GT(counts[7], 0u);
    double ratio = static_cast<double>(counts[0]) /
                   static_cast<double>(counts[7]);
    double expected = std::pow(8.0, exponent);
    EXPECT_NEAR(ratio, expected, 0.25 * expected);
    // The head of the distribution is strictly rank-ordered.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[3]);
    EXPECT_GT(counts[3], counts[7]);
}

TEST(ServeLoadgen, ZipfZeroExponentSamplesUniformly)
{
    constexpr uint64_t universe = 16;
    constexpr int draws = 160000;
    serve::ZipfSeedSampler sampler(universe, 0.0);
    util::Rng rng(99);

    std::vector<uint64_t> counts(universe, 0);
    for (int i = 0; i < draws; i++)
        counts[sampler.sample(rng, 0)]++;

    uint64_t lo = counts[0], hi = counts[0];
    for (uint64_t c : counts) {
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    EXPECT_GT(lo, 0u);
    EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo),
              1.25);
}

TEST(ServeLoadgen, ZipfEmptyUniverseReturnsTheFallbackSeed)
{
    serve::ZipfSeedSampler sampler(0, 1.1);
    util::Rng rng(7);
    EXPECT_EQ(sampler.sample(rng, 42u), 42u);
}

TEST(ServeLoadgen, HonoursExplicitWorkloadMix)
{
    FakeCounters counters_a;
    FakeCounters counters_b;
    serve::ServerOptions server_options;
    server_options.workloads = {"A", "B"};
    server_options.workers = 2;
    server_options.profilePhases = false;
    server_options.factory = [&](const std::string &name) {
        FakeCounters &counters =
            name == "A" ? counters_a : counters_b;
        return std::make_unique<FakeWorkload>(counters, true, 0);
    };
    serve::Server server(std::move(server_options));

    serve::LoadgenOptions options;
    options.openLoop = false;
    options.clients = 2;
    options.durationSeconds = 0.2;
    options.mix = {{"A", 1.0}};
    serve::LoadgenReport report =
        serve::runLoadgen(server, options);

    EXPECT_GT(report.completed, 0u);
    EXPECT_GT(server.metrics().workload("A").completed, 0u);
    EXPECT_EQ(server.metrics().workload("B").completed, 0u);
}

} // namespace
