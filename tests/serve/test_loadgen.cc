/**
 * @file
 * Load-generator tests: request accounting closes, both disciplines
 * drain fully, and the workload mix is honoured.
 */

#include <gtest/gtest.h>

#include <memory>

#include "fake_workload.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"

namespace
{

using namespace nsbench;
using tests::FakeCounters;
using tests::FakeWorkload;

serve::ServerOptions
fakeServer(FakeCounters &counters)
{
    serve::ServerOptions options;
    options.workloads = {"Fake"};
    options.workers = 2;
    options.profilePhases = false;
    options.factory = [&counters](const std::string &) {
        return std::make_unique<FakeWorkload>(counters,
                                              /*seed_sensitive=*/true,
                                              /*sleep_ms=*/1);
    };
    return options;
}

void
expectClosedAccounting(const serve::LoadgenReport &report)
{
    EXPECT_EQ(report.submitted, report.admitted + report.rejected);
    EXPECT_EQ(report.admitted, report.completed + report.expired);
}

TEST(ServeLoadgen, OpenLoopDrainsEveryAdmittedRequest)
{
    FakeCounters counters;
    serve::Server server(fakeServer(counters));
    serve::LoadgenOptions options;
    options.openLoop = true;
    options.rateHz = 500.0;
    options.durationSeconds = 0.3;
    serve::LoadgenReport report =
        serve::runLoadgen(server, options);

    EXPECT_GT(report.submitted, 0u);
    expectClosedAccounting(report);
    EXPECT_GT(report.throughput(), 0.0);
    EXPECT_EQ(server.metrics().workload("Fake").completed,
              report.completed);
}

TEST(ServeLoadgen, ClosedLoopDrainsEveryAdmittedRequest)
{
    FakeCounters counters;
    serve::Server server(fakeServer(counters));
    serve::LoadgenOptions options;
    options.openLoop = false;
    options.clients = 4;
    options.durationSeconds = 0.3;
    serve::LoadgenReport report =
        serve::runLoadgen(server, options);

    EXPECT_GT(report.submitted, 0u);
    expectClosedAccounting(report);
    EXPECT_EQ(report.rejected, 0u);
}

TEST(ServeLoadgen, SeedUniverseBoundsTheSeedsRequested)
{
    FakeCounters counters;
    auto server_options = fakeServer(counters);
    server_options.coalesce = false;
    serve::Server server(std::move(server_options));

    serve::LoadgenOptions options;
    options.openLoop = true;
    options.rateHz = 400.0;
    options.durationSeconds = 0.25;
    options.seedUniverse = 4;
    options.zipfExponent = 1.2;
    serve::LoadgenReport report =
        serve::runLoadgen(server, options);
    EXPECT_GT(report.completed, 0u);
    // Four distinct seeds at most -> at most four distinct scores
    // (the fake's score is injective in the seed modulo 100000).
    // Verified through the share factor instead would need
    // coalescing; here we just require the run to complete cleanly.
    expectClosedAccounting(report);
}

TEST(ServeLoadgen, HonoursExplicitWorkloadMix)
{
    FakeCounters counters_a;
    FakeCounters counters_b;
    serve::ServerOptions server_options;
    server_options.workloads = {"A", "B"};
    server_options.workers = 2;
    server_options.profilePhases = false;
    server_options.factory = [&](const std::string &name) {
        FakeCounters &counters =
            name == "A" ? counters_a : counters_b;
        return std::make_unique<FakeWorkload>(counters, true, 0);
    };
    serve::Server server(std::move(server_options));

    serve::LoadgenOptions options;
    options.openLoop = false;
    options.clients = 2;
    options.durationSeconds = 0.2;
    options.mix = {{"A", 1.0}};
    serve::LoadgenReport report =
        serve::runLoadgen(server, options);

    EXPECT_GT(report.completed, 0u);
    EXPECT_GT(server.metrics().workload("A").completed, 0u);
    EXPECT_EQ(server.metrics().workload("B").completed, 0u);
}

} // namespace
