/**
 * @file
 * Deterministic fake workload for serve unit tests.
 *
 * Scores are a pure arithmetic function of (model seed, episode
 * seed), run() invocations are counted through a shared atomic, and
 * an optional per-run sleep simulates service time, so tests can
 * assert on coalescing (how many run() calls served N requests),
 * backpressure and drain behaviour without paying for real models.
 */

#ifndef NSBENCH_TESTS_SERVE_FAKE_WORKLOAD_HH
#define NSBENCH_TESTS_SERVE_FAKE_WORKLOAD_HH

#include <atomic>
#include <chrono>
#include <thread>

#include "core/workload.hh"

namespace nsbench::tests
{

/** Shared counters every replica of a fake fleet reports into. */
struct FakeCounters
{
    std::atomic<uint64_t> setUps{0};
    std::atomic<uint64_t> runs{0};
    std::atomic<uint64_t> reseeds{0};
};

class FakeWorkload : public core::Workload
{
  public:
    FakeWorkload(FakeCounters &counters, bool seed_sensitive,
                 int sleep_ms = 0)
        : counters_(counters), seedSensitive_(seed_sensitive),
          sleepMs_(sleep_ms)
    {}

    std::string name() const override { return "Fake"; }
    core::Paradigm
    paradigm() const override
    {
        return core::Paradigm::NeuroPipeSymbolic;
    }
    std::string taskDescription() const override { return "fake"; }

    void
    setUp(uint64_t seed) override
    {
        modelSeed_ = seed;
        episodeSeed_ = seed;
        counters_.setUps.fetch_add(1);
    }

    void
    reseedEpisodes(uint64_t seed) override
    {
        episodeSeed_ = seed;
        counters_.reseeds.fetch_add(1);
    }

    bool seedSensitive() const override { return seedSensitive_; }

    double
    run() override
    {
        counters_.runs.fetch_add(1);
        if (sleepMs_ > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sleepMs_));
        // Pure in (model seed, episode seed); seed-insensitive fakes
        // ignore the episode seed like their real counterparts.
        uint64_t mix = modelSeed_ * 1000003ULL +
                       (seedSensitive_ ? episodeSeed_ * 97ULL : 0);
        return static_cast<double>(mix % 100000) / 100000.0;
    }

    core::OpGraph opGraph() const override { return {}; }
    uint64_t storageBytes() const override { return 0; }

  private:
    FakeCounters &counters_;
    bool seedSensitive_;
    int sleepMs_;
    uint64_t modelSeed_ = 0;
    uint64_t episodeSeed_ = 0;
};

} // namespace nsbench::tests

#endif // NSBENCH_TESTS_SERVE_FAKE_WORKLOAD_HH
