/**
 * @file
 * Property-based fuzz of the BoundedQueue close/drain protocol.
 *
 * The property under test is the queue's one hard promise: an item
 * whose push was *accepted* is delivered to exactly one consumer —
 * never dropped, never duplicated — no matter how producers,
 * consumers and a mid-stream close() interleave. Each iteration runs
 * a seeded scenario (thread counts, producer discipline, close
 * timing all drawn from a util::Rng), so failures reproduce from the
 * iteration's seed alone.
 *
 * Part of the chaos tier; runs under TSan in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "serve/queue.hh"
#include "util/failpoint.hh"
#include "util/rng.hh"

namespace
{

using namespace nsbench;

/** One seeded producer/consumer/close scenario. */
void
fuzzOnce(uint64_t seed)
{
    util::Rng rng(seed);
    const size_t capacity =
        static_cast<size_t>(rng.uniformInt(1, 16));
    const int producers = static_cast<int>(rng.uniformInt(1, 4));
    const int consumers = static_cast<int>(rng.uniformInt(1, 4));
    const int perProducer = static_cast<int>(rng.uniformInt(8, 64));
    // Close after ~half the expected items have been produced; 0
    // closes immediately, exercising the reject-everything edge.
    const int closeAfter = static_cast<int>(rng.uniformInt(
        0, static_cast<int64_t>(producers) * perProducer));

    serve::BoundedQueue<uint64_t> queue(capacity);
    std::mutex mu;
    std::set<uint64_t> accepted;
    std::vector<uint64_t> delivered;
    std::atomic<int> produced{0};
    std::atomic<bool> closeFired{false};

    auto maybeClose = [&] {
        if (produced.fetch_add(1) + 1 >= closeAfter &&
            !closeFired.exchange(true))
            queue.close();
    };

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            util::Rng localRng(seed ^
                               (0x9E3779B97F4A7C15ULL *
                                static_cast<uint64_t>(p + 1)));
            for (int i = 0; i < perProducer; ++i) {
                uint64_t item =
                    (static_cast<uint64_t>(p) << 32) |
                    static_cast<uint64_t>(i);
                // Mix the blocking and non-blocking producer paths;
                // both must report acceptance truthfully.
                bool ok = localRng.uniformDouble() < 0.5
                              ? queue.push(item)
                              : queue.tryPush(item);
                if (ok) {
                    std::lock_guard<std::mutex> lock(mu);
                    accepted.insert(item);
                }
                maybeClose();
            }
        });
    }
    for (int c = 0; c < consumers; ++c) {
        threads.emplace_back([&] {
            while (auto item = queue.pop()) {
                std::lock_guard<std::mutex> lock(mu);
                delivered.push_back(*item);
            }
        });
    }
    for (int p = 0; p < producers; ++p)
        threads[static_cast<size_t>(p)].join();
    // closeAfter can exceed the total production count; close
    // unconditionally (idempotent) so the consumers always drain out.
    queue.close();
    for (size_t t = static_cast<size_t>(producers);
         t < threads.size(); ++t)
        threads[t].join();

    // Exactly once: the delivered multiset equals the accepted set.
    std::set<uint64_t> deliveredSet(delivered.begin(),
                                    delivered.end());
    EXPECT_EQ(delivered.size(), deliveredSet.size())
        << "duplicate delivery, seed " << seed;
    EXPECT_EQ(deliveredSet, accepted) << "seed " << seed;
    // Closed and drained: nothing remains, and late consumers see
    // exhaustion immediately.
    EXPECT_TRUE(queue.drained()) << "seed " << seed;
    EXPECT_EQ(queue.pop(), std::nullopt);
    EXPECT_EQ(queue.tryPop(), std::nullopt);
    // Post-close pushes must be refused.
    EXPECT_FALSE(queue.tryPush(~0ull));
    EXPECT_FALSE(queue.push(~0ull));
}

TEST(QueueFuzz, CloseDrainExactlyOnceAcrossSeededScenarios)
{
    for (uint64_t seed = 1; seed <= 24; ++seed)
        fuzzOnce(seed);
}

TEST(QueueFuzz, CloseDrainHoldsUnderInjectedQueueFaults)
{
    // The queue's own failpoints — spurious tryPush rejections and
    // consumer stalls — must not weaken the protocol: acceptance is
    // still truthful and accepted items still arrive exactly once.
    ASSERT_EQ(nsbench::util::failpoints::configure(
                  "serve.queue.trypush=0.2@5,serve.queue.pop=0.2@6"),
              "");
    for (uint64_t seed = 100; seed <= 112; ++seed)
        fuzzOnce(seed);
    nsbench::util::failpoints::reset();
}

} // namespace
