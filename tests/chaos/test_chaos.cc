/**
 * @file
 * Chaos tier: deterministic fault injection against the serving
 * runtime.
 *
 * Every test arms a seeded failpoint schedule (an exact function of
 * the spec string — see util/failpoint.hh) and asserts the resilience
 * invariants the server promises under faults:
 *
 *  - exactly-once callbacks: every admitted request is answered once,
 *    no request is answered twice, nothing is lost on drain;
 *  - byte-identical scores: any Ok response carries the same score a
 *    fault-free server returns for that seed (retried and stale
 *    responses included — the determinism contract makes the stale
 *    fallback byte-exact);
 *  - the supervisor replaces poisoned replicas without dropping work;
 *  - a clean drain: shutdown() completes with faults still armed.
 *
 * Runs under TSan in CI; the tests use no sleeps for correctness,
 * only condition-variable waits on completion counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/presets.hh"
#include "serve/server.hh"
#include "util/failpoint.hh"
#include "workloads/register.hh"

#include "../serve/fake_workload.hh"

namespace
{

using namespace nsbench;
namespace fp = util::failpoints;

/** The FakeWorkload's pure score for (modelSeed, episodeSeed). */
double
fakeScore(uint64_t model_seed, uint64_t episode_seed,
          bool seed_sensitive)
{
    uint64_t mix = model_seed * 1000003ULL +
                   (seed_sensitive ? episode_seed * 97ULL : 0);
    return static_cast<double>(mix % 100000) / 100000.0;
}

/** Every chaos test starts and ends disarmed. */
class Chaos : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workloads::registerAllWorkloads();
    }

    void SetUp() override { fp::reset(); }
    void TearDown() override { fp::reset(); }

    /** configure() that fails the test on a parse error. */
    static void
    arm(const std::string &spec)
    {
        std::string error = fp::configure(spec);
        ASSERT_EQ(error, "") << "spec: " << spec;
    }

    static serve::ServerOptions
    fakeOptions(tests::FakeCounters &counters, bool seed_sensitive)
    {
        serve::ServerOptions options;
        options.workloads = {"Fake"};
        options.workers = 2;
        options.maxBatch = 4;
        options.maxWaitUs = 500;
        options.factory = [&counters, seed_sensitive](
                              const std::string &) {
            return std::make_unique<tests::FakeWorkload>(
                counters, seed_sensitive);
        };
        return options;
    }
};

// --- Spec parsing & schedule determinism --------------------------

TEST_F(Chaos, ParseAcceptsFullSpec)
{
    std::map<std::string, fp::SiteSpec> sites;
    std::string error = fp::parse(
        "serve.worker.run=0.25@7x20s2,cache.result.insert=1", &sites);
    EXPECT_EQ(error, "");
    ASSERT_EQ(sites.size(), 2u);
    const fp::SiteSpec &run = sites.at("serve.worker.run");
    EXPECT_DOUBLE_EQ(run.probability, 0.25);
    EXPECT_EQ(run.seed, 7u);
    EXPECT_EQ(run.limit, 20u);
    EXPECT_EQ(run.skip, 2u);
    const fp::SiteSpec &insert = sites.at("cache.result.insert");
    EXPECT_DOUBLE_EQ(insert.probability, 1.0);
    EXPECT_EQ(insert.limit, 0u);
}

TEST_F(Chaos, ParseRejectsMalformedSpecs)
{
    EXPECT_NE(fp::parse("not-a-site=0.5", nullptr), "");
    EXPECT_NE(fp::parse("serve.worker.run", nullptr), "");
    EXPECT_NE(fp::parse("serve.worker.run=1.5", nullptr), "");
    EXPECT_NE(fp::parse("serve.worker.run=-0.1", nullptr), "");
    EXPECT_NE(fp::parse("serve.worker.run=abc", nullptr), "");
    EXPECT_NE(
        fp::parse("serve.worker.run=0.5,serve.worker.run=0.5",
                  nullptr),
        "");
    // configure() must leave the registry disarmed on error.
    EXPECT_NE(fp::configure("bogus=1"), "");
    EXPECT_FALSE(fp::armed());
}

TEST_F(Chaos, ScheduleIsAPureFunctionOfTheSpec)
{
    const std::string spec = "serve.worker.run=0.3@11";
    auto schedule = [&] {
        arm(spec);
        std::vector<bool> fires;
        for (int i = 0; i < 200; i++)
            fires.push_back(fp::evaluate(fp::sites::kWorkerRun));
        return fires;
    };
    std::vector<bool> first = schedule();
    std::vector<bool> second = schedule();
    EXPECT_EQ(first, second);
    // The schedule is non-trivial: some evaluations fire, some don't.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), true), 200);

    // A different seed yields a different schedule (overwhelmingly).
    arm("serve.worker.run=0.3@12");
    std::vector<bool> other;
    for (int i = 0; i < 200; i++)
        other.push_back(fp::evaluate(fp::sites::kWorkerRun));
    EXPECT_NE(first, other);
}

TEST_F(Chaos, SkipAndLimitBoundTheSchedule)
{
    arm("serve.worker.run=1@3x2s3");
    std::vector<bool> fires;
    for (int i = 0; i < 10; i++)
        fires.push_back(fp::evaluate(fp::sites::kWorkerRun));
    // p=1: fires exactly on evaluations 4 and 5 (after a skip of 3,
    // capped at 2 fires).
    std::vector<bool> expected{false, false, false, true, true,
                               false, false, false, false, false};
    EXPECT_EQ(fires, expected);
    auto stats = fp::stats();
    EXPECT_EQ(stats.at("serve.worker.run").evaluations, 10u);
    EXPECT_EQ(stats.at("serve.worker.run").fires, 2u);
}

TEST_F(Chaos, DisarmedSitesNeverFireAndCostNothing)
{
    EXPECT_FALSE(fp::armed());
    for (int i = 0; i < 100; i++)
        EXPECT_FALSE(NSBENCH_FAILPOINT(fp::sites::kWorkerRun));
    // Sites not named in the spec stay silent even when armed.
    arm("cache.result.insert=1");
    EXPECT_FALSE(fp::evaluate(fp::sites::kWorkerRun));
}

// --- Exactly-once delivery under seeded schedules -----------------

/**
 * Submits @p total requests against a fake fleet under the given
 * fault spec and asserts the exactly-once and byte-identity
 * invariants. Returns the server's total metrics snapshot.
 */
serve::WorkloadMetrics
runExactlyOnce(const std::string &spec, bool seed_sensitive,
               int total, serve::ServerOptions options)
{
    std::string error = fp::configure(spec);
    EXPECT_EQ(error, "") << "spec: " << spec;

    std::vector<std::atomic<int>> delivered(
        static_cast<size_t>(total));
    std::mutex mu;
    std::condition_variable cv;
    int outstanding = 0;
    uint64_t admitted = 0;

    serve::WorkloadMetrics metrics;
    {
        serve::Server server(std::move(options));
        for (int i = 0; i < total; i++) {
            uint64_t seed = static_cast<uint64_t>(i % 8);
            {
                std::lock_guard<std::mutex> lock(mu);
                outstanding++;
            }
            serve::RequestStatus status = server.submit(
                "Fake", seed,
                [&, i, seed](const serve::Response &response) {
                    delivered[static_cast<size_t>(i)].fetch_add(1);
                    if (response.status == serve::RequestStatus::Ok) {
                        EXPECT_EQ(response.score,
                                  fakeScore(42, seed,
                                            seed_sensitive))
                            << "request " << i;
                    }
                    std::lock_guard<std::mutex> lock(mu);
                    if (--outstanding == 0)
                        cv.notify_all();
                });
            if (status == serve::RequestStatus::Ok) {
                admitted++;
            } else {
                std::lock_guard<std::mutex> lock(mu);
                outstanding--;
            }
        }
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return outstanding == 0; });
        }
        server.shutdown();
        metrics = server.metrics().total();
    }

    // Exactly once: every admitted request was answered one time;
    // every rejected request was answered zero times.
    uint64_t answered = 0;
    for (int i = 0; i < total; i++) {
        int count = delivered[static_cast<size_t>(i)].load();
        EXPECT_LE(count, 1) << "request " << i << " answered twice";
        answered += static_cast<uint64_t>(count);
    }
    EXPECT_EQ(answered, admitted);
    return metrics;
}

TEST_F(Chaos, ExactlyOnceUnderTransientRunFaults)
{
    tests::FakeCounters counters;
    auto metrics = runExactlyOnce(
        "serve.worker.run=0.3@101", /*seed_sensitive=*/true,
        /*total=*/160, fakeOptions(counters, true));
    EXPECT_GT(metrics.workerFaults, 0u);
    EXPECT_GT(metrics.retries, 0u);
    EXPECT_EQ(metrics.completed + metrics.failed +
                  metrics.expired + metrics.rejected(),
              metrics.offered);
}

TEST_F(Chaos, ExactlyOnceUnderMixedFaultSchedule)
{
    tests::FakeCounters counters;
    serve::ServerOptions options = fakeOptions(counters, true);
    options.maxRetries = 4;
    auto metrics = runExactlyOnce(
        "serve.queue.trypush=0.05@7,serve.queue.pop=0.1@8,"
        "serve.batcher.coalesce=0.2@9,serve.worker.run=0.2@10,"
        "serve.callback=0.1@11",
        /*seed_sensitive=*/true, /*total=*/160, std::move(options));
    EXPECT_GT(metrics.workerFaults, 0u);
    EXPECT_GT(metrics.callbackFailures, 0u);
    // The callback failpoint throws *after* delivery, so contained
    // callback faults never subtract from completions.
    EXPECT_EQ(metrics.failed, 0u);
}

TEST_F(Chaos, ExactlyOnceUnderASecondSeededSchedule)
{
    tests::FakeCounters counters;
    serve::ServerOptions options = fakeOptions(counters, false);
    options.maxRetries = 6;
    auto metrics = runExactlyOnce(
        "serve.worker.run=0.4@2024,serve.admission.shed=0.05@5",
        /*seed_sensitive=*/false, /*total=*/160, std::move(options));
    EXPECT_GT(metrics.workerFaults, 0u);
    EXPECT_GT(metrics.rejectedOverload, 0u);
}

// --- Supervisor, stale fallback, terminal failure -----------------

TEST_F(Chaos, SupervisorReplacesPoisonedReplicas)
{
    tests::FakeCounters counters;
    serve::ServerOptions options = fakeOptions(counters, true);
    options.maxRetries = 4;
    uint64_t setUpsBefore = 0;
    arm("serve.worker.crash=1@13x3");

    serve::WorkloadMetrics metrics;
    {
        serve::Server server(std::move(options));
        setUpsBefore = counters.setUps.load();
        for (int i = 0; i < 20; i++) {
            serve::Response response = server.call("Fake", 1);
            EXPECT_EQ(response.status, serve::RequestStatus::Ok);
            EXPECT_EQ(response.score, fakeScore(42, 1, true));
        }
        metrics = server.metrics().total();
    }
    EXPECT_EQ(metrics.completed, 20u);
    EXPECT_EQ(metrics.failed, 0u);
    EXPECT_EQ(metrics.replicasReplaced, 3u);
    // Each replacement re-ran setUp on a fresh replica.
    EXPECT_EQ(counters.setUps.load(), setUpsBefore + 3);
}

TEST_F(Chaos, StaleFallbackServesCachedScoreAfterRetriesExhaust)
{
    tests::FakeCounters counters;
    serve::ServerOptions options = fakeOptions(counters, true);
    options.resultCache = true;
    // Fallback-only cache mode: admission never answers from the
    // cache, so the faulted request must reach a worker and take the
    // serve-stale path deterministically.
    options.cacheAdmissionLookup = false;
    options.maxRetries = 1;

    serve::Server server(std::move(options));
    // Prime the cache for seed 5 fault-free.
    serve::Response warm = server.call("Fake", 5);
    ASSERT_EQ(warm.status, serve::RequestStatus::Ok);

    // Every subsequent run() attempt fails.
    arm("serve.worker.run=1@17");
    serve::Response stale = server.call("Fake", 5);
    EXPECT_EQ(stale.status, serve::RequestStatus::Ok);
    EXPECT_TRUE(stale.stale);
    EXPECT_TRUE(stale.cached);
    EXPECT_EQ(stale.retries, 1);
    // Byte-exact by the determinism contract.
    EXPECT_EQ(stale.score, warm.score);

    // A key never completed has no stale copy: terminal failure.
    serve::Response failed = server.call("Fake", 6);
    EXPECT_EQ(failed.status, serve::RequestStatus::Failed);
    EXPECT_EQ(failed.retries, 1);

    serve::WorkloadMetrics metrics = server.metrics().total();
    EXPECT_EQ(metrics.staleServed, 1u);
    EXPECT_EQ(metrics.failed, 1u);
}

TEST_F(Chaos, FailedRequestsWithoutCacheAreTerminal)
{
    tests::FakeCounters counters;
    serve::ServerOptions options = fakeOptions(counters, true);
    options.maxRetries = 2;
    arm("serve.worker.run=1@19");

    serve::Server server(std::move(options));
    serve::Response response = server.call("Fake", 1);
    EXPECT_EQ(response.status, serve::RequestStatus::Failed);
    EXPECT_EQ(response.retries, 2);
    serve::WorkloadMetrics metrics = server.metrics().total();
    EXPECT_EQ(metrics.failed, 1u);
    EXPECT_EQ(metrics.retries, 2u);
    EXPECT_EQ(metrics.workerFaults, 3u); // initial try + 2 retries
    EXPECT_LT(metrics.successRate(), 1.0);
}

// --- Real workloads: byte identity through the fault layer --------

TEST_F(Chaos, FaultedServerScoresMatchFaultFreeScores)
{
    auto scoresUnder = [&](const std::string &spec) {
        fp::reset();
        if (!spec.empty()) {
            std::string error = fp::configure(spec);
            EXPECT_EQ(error, "");
        }
        serve::ServerOptions options;
        options.workloads = {"LNN"};
        options.workers = 2;
        options.maxBatch = 4;
        options.maxWaitUs = 500;
        options.maxRetries = 8;
        options.factory = serve::serveFactory;
        serve::Server server(std::move(options));
        std::map<uint64_t, double> scores;
        for (uint64_t seed = 0; seed < 12; seed++) {
            serve::Response response = server.call("LNN", seed);
            EXPECT_EQ(response.status, serve::RequestStatus::Ok);
            scores[seed] = response.score;
        }
        return scores;
    };

    std::map<uint64_t, double> clean = scoresUnder("");
    std::map<uint64_t, double> faulted = scoresUnder(
        "serve.worker.run=0.3@23,serve.worker.crash=0.05@29,"
        "serve.batcher.coalesce=0.3@31");
    // Byte-identical: retried and replica-rebuilt executions return
    // exactly the score a fault-free server returns.
    EXPECT_EQ(clean, faulted);
}

TEST_F(Chaos, PipelinedServerKeepsInvariantsUnderFaults)
{
    // Intra-replica pipelining must not weaken any chaos invariant:
    // with faults armed the worker falls back to the serial retry
    // path, and either way every request is answered exactly once
    // with the fault-free score. NVSA is staged and seed-sensitive,
    // so a coalesced batch forms the multi-group executions the
    // pipeline path takes when it engages.
    auto scoresUnder = [&](const std::string &spec, int depth) {
        fp::reset();
        if (!spec.empty()) {
            std::string error = fp::configure(spec);
            EXPECT_EQ(error, "");
        }
        serve::ServerOptions options;
        options.workloads = {"NVSA"};
        options.workers = 1;
        options.maxBatch = 8;
        options.maxWaitUs = 20000;
        options.maxRetries = 8;
        options.pipelineDepth = depth;
        options.factory = serve::serveFactory;
        serve::Server server(std::move(options));
        const int total = 12;
        std::vector<std::promise<serve::Response>> promises(total);
        std::vector<std::future<serve::Response>> futures;
        for (int i = 0; i < total; i++) {
            auto *promise = &promises[static_cast<size_t>(i)];
            futures.push_back(promise->get_future());
            EXPECT_EQ(
                server.submit("NVSA", static_cast<uint64_t>(i % 6),
                              [promise](const serve::Response &r) {
                                  // A second delivery would throw
                                  // promise_already_satisfied here.
                                  promise->set_value(r);
                              }),
                serve::RequestStatus::Ok);
        }
        std::map<uint64_t, double> scores;
        for (int i = 0; i < total; i++) {
            serve::Response response =
                futures[static_cast<size_t>(i)].get();
            EXPECT_EQ(response.status, serve::RequestStatus::Ok);
            if (!spec.empty()) {
                // Armed faults disable the pipeline pre-pass.
                EXPECT_FALSE(response.pipelined) << "request " << i;
            }
            uint64_t seed = static_cast<uint64_t>(i % 6);
            auto [found, inserted] =
                scores.emplace(seed, response.score);
            if (!inserted)
                EXPECT_EQ(found->second, response.score)
                    << "seed " << seed;
        }
        server.shutdown();
        return scores;
    };

    auto clean_serial = scoresUnder("", 0);
    auto clean_piped = scoresUnder("", 2);
    auto faulted_piped = scoresUnder(
        "serve.worker.run=0.3@23,serve.worker.crash=0.1@29", 2);
    EXPECT_EQ(clean_serial, clean_piped);
    EXPECT_EQ(clean_serial, faulted_piped);
}

// --- Clean drain with faults still armed --------------------------

TEST_F(Chaos, ShutdownDrainsCleanlyUnderFaults)
{
    tests::FakeCounters counters;
    serve::ServerOptions options = fakeOptions(counters, true);
    arm("serve.queue.pop=0.2@37,serve.worker.run=0.2@41,"
        "serve.callback=0.2@43");

    std::atomic<int> answered{0};
    uint64_t admitted = 0;
    {
        serve::Server server(std::move(options));
        for (int i = 0; i < 64; i++) {
            serve::RequestStatus status = server.submit(
                "Fake", static_cast<uint64_t>(i % 4),
                [&](const serve::Response &) {
                    answered.fetch_add(1);
                });
            if (status == serve::RequestStatus::Ok)
                admitted++;
        }
        // Shut down immediately: the drain must still answer every
        // admitted request exactly once, faults and all.
        server.shutdown();
    }
    EXPECT_EQ(static_cast<uint64_t>(answered.load()), admitted);
}

} // namespace
