/**
 * @file
 * LNN truth bounds.
 *
 * Logical Neural Networks carry a [lower, upper] truth interval per
 * neuron rather than a point value; incomplete knowledge is the full
 * [0,1] interval, and inference monotonically tightens bounds. These
 * are the interval connectives (Lukasiewicz semantics) LNN's upward
 * and downward passes use.
 */

#ifndef NSBENCH_LOGIC_BOUNDS_HH
#define NSBENCH_LOGIC_BOUNDS_HH

#include <algorithm>

namespace nsbench::logic
{

/** A truth interval [lower, upper] within [0,1]. */
struct TruthBounds
{
    float lower = 0.0f;
    float upper = 1.0f;

    /** Fully unknown truth. */
    static TruthBounds unknown() { return {0.0f, 1.0f}; }

    /** Exactly true. */
    static TruthBounds certainTrue() { return {1.0f, 1.0f}; }

    /** Exactly false. */
    static TruthBounds certainFalse() { return {0.0f, 0.0f}; }

    /** Point truth value. */
    static TruthBounds exactly(float v) { return {v, v}; }

    /** Whether the interval is non-empty and inside [0,1]. */
    bool
    valid() const
    {
        return lower >= 0.0f && upper <= 1.0f && lower <= upper;
    }

    /** Lower bound has crossed above the upper bound. */
    bool contradictory() const { return lower > upper; }

    /** Classified true once the lower bound clears the threshold. */
    bool isTrue(float alpha = 0.5f) const { return lower > alpha; }

    /** Classified false once the upper bound drops below 1-alpha. */
    bool
    isFalse(float alpha = 0.5f) const
    {
        return upper < 1.0f - alpha;
    }

    /** Interval width; 0 means fully determined. */
    float width() const { return upper - lower; }
};

/** Interval intersection: keeps the tighter of each bound. */
TruthBounds tighten(const TruthBounds &a, const TruthBounds &b);

/** Interval negation: [1-U, 1-L]. */
TruthBounds boundsNot(const TruthBounds &a);

/** Lukasiewicz interval conjunction. */
TruthBounds boundsAnd(const TruthBounds &a, const TruthBounds &b);

/** Lukasiewicz interval disjunction. */
TruthBounds boundsOr(const TruthBounds &a, const TruthBounds &b);

/** Lukasiewicz interval implication a -> b. */
TruthBounds boundsImplies(const TruthBounds &a, const TruthBounds &b);

/**
 * Downward (modus-ponens style) propagation for conjunction: given
 * bounds on (a AND b) and on b, the implied bounds on a.
 */
TruthBounds downwardAnd(const TruthBounds &out, const TruthBounds &other);

/**
 * Downward propagation for disjunction: given bounds on (a OR b) and
 * on b, the implied bounds on a.
 */
TruthBounds downwardOr(const TruthBounds &out, const TruthBounds &other);

} // namespace nsbench::logic

#endif // NSBENCH_LOGIC_BOUNDS_HH
