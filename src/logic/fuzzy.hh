/**
 * @file
 * Real-valued (fuzzy) logic semantics.
 *
 * Provides the t-norm families (Lukasiewicz, Goedel, product) that
 * ground logical connectives onto [0,1] truth values in LNN and LTN,
 * plus the smooth quantifier aggregators LTN uses (p-mean and
 * p-mean-error generalizations of exists/forall).
 */

#ifndef NSBENCH_LOGIC_FUZZY_HH
#define NSBENCH_LOGIC_FUZZY_HH

#include <span>

namespace nsbench::logic
{

/** Supported t-norm families. */
enum class TNormKind
{
    Lukasiewicz,
    Goedel,
    Product,
};

/** Fuzzy conjunction under the given family. Inputs must be in [0,1]. */
float tNorm(TNormKind kind, float a, float b);

/** Fuzzy disjunction (the dual t-conorm). */
float tConorm(TNormKind kind, float a, float b);

/** Standard fuzzy negation 1 - a. */
float fuzzyNot(float a);

/**
 * The residuum (fuzzy implication) of the family:
 * Lukasiewicz min(1, 1-a+b); Goedel (a<=b ? 1 : b);
 * product (a<=b ? 1 : b/a).
 */
float residuum(TNormKind kind, float a, float b);

/**
 * Smooth universal quantifier: the p-mean-error aggregator
 * 1 - (mean((1-x_i)^p))^(1/p). Approaches min as p grows.
 */
float pMeanError(std::span<const float> truths, float p = 2.0f);

/**
 * Smooth existential quantifier: the p-mean aggregator
 * (mean(x_i^p))^(1/p). Approaches max as p grows.
 */
float pMean(std::span<const float> truths, float p = 2.0f);

} // namespace nsbench::logic

#endif // NSBENCH_LOGIC_FUZZY_HH
