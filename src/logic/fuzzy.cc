#include "logic/fuzzy.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace nsbench::logic
{

namespace
{

void
checkUnit(float v, const char *what)
{
    util::panicIf(v < 0.0f || v > 1.0f,
                  std::string(what) + ": truth value outside [0,1]");
}

} // namespace

float
tNorm(TNormKind kind, float a, float b)
{
    checkUnit(a, "tNorm");
    checkUnit(b, "tNorm");
    switch (kind) {
      case TNormKind::Lukasiewicz:
        return std::max(0.0f, a + b - 1.0f);
      case TNormKind::Goedel:
        return std::min(a, b);
      case TNormKind::Product:
        return a * b;
    }
    util::panic("tNorm: unknown kind");
}

float
tConorm(TNormKind kind, float a, float b)
{
    checkUnit(a, "tConorm");
    checkUnit(b, "tConorm");
    switch (kind) {
      case TNormKind::Lukasiewicz:
        return std::min(1.0f, a + b);
      case TNormKind::Goedel:
        return std::max(a, b);
      case TNormKind::Product:
        return a + b - a * b;
    }
    util::panic("tConorm: unknown kind");
}

float
fuzzyNot(float a)
{
    checkUnit(a, "fuzzyNot");
    return 1.0f - a;
}

float
residuum(TNormKind kind, float a, float b)
{
    checkUnit(a, "residuum");
    checkUnit(b, "residuum");
    switch (kind) {
      case TNormKind::Lukasiewicz:
        return std::min(1.0f, 1.0f - a + b);
      case TNormKind::Goedel:
        return a <= b ? 1.0f : b;
      case TNormKind::Product:
        return a <= b ? 1.0f : b / a;
    }
    util::panic("residuum: unknown kind");
}

float
pMeanError(std::span<const float> truths, float p)
{
    util::panicIf(truths.empty(), "pMeanError: no operands");
    util::panicIf(p < 1.0f, "pMeanError: p must be >= 1");
    double acc = 0.0;
    for (float v : truths) {
        checkUnit(v, "pMeanError");
        acc += std::pow(1.0 - static_cast<double>(v),
                        static_cast<double>(p));
    }
    acc /= static_cast<double>(truths.size());
    double agg = 1.0 - std::pow(acc, 1.0 / static_cast<double>(p));
    return static_cast<float>(std::clamp(agg, 0.0, 1.0));
}

float
pMean(std::span<const float> truths, float p)
{
    util::panicIf(truths.empty(), "pMean: no operands");
    util::panicIf(p < 1.0f, "pMean: p must be >= 1");
    double acc = 0.0;
    for (float v : truths) {
        checkUnit(v, "pMean");
        acc += std::pow(static_cast<double>(v),
                        static_cast<double>(p));
    }
    acc /= static_cast<double>(truths.size());
    double agg = std::pow(acc, 1.0 / static_cast<double>(p));
    return static_cast<float>(std::clamp(agg, 0.0, 1.0));
}

} // namespace nsbench::logic
