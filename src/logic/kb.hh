/**
 * @file
 * First-order knowledge base with Horn rules and forward chaining.
 *
 * Plays the role of the LUBM/TPTP-style benchmark substrate behind the
 * LNN workload: facts are ground atoms over named predicates and
 * constants, rules are Horn clauses with variables, and saturation is
 * bottom-up forward chaining. Rule grounding is instrumented as an
 * "Others"-category symbolic operator, which is exactly where the
 * paper's logic workloads spend their symbolic time.
 */

#ifndef NSBENCH_LOGIC_KB_HH
#define NSBENCH_LOGIC_KB_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nsbench::logic
{

/** Predicate handle. */
using PredId = int32_t;
/** Constant handle. */
using ConstId = int32_t;
/** Rule-local variable handle. */
using VarId = int32_t;

/** A term in a rule atom: either a variable or a constant. */
struct Term
{
    bool isVariable = false;
    int32_t id = 0;

    /** Makes a variable term. */
    static Term var(VarId v) { return {true, v}; }

    /** Makes a constant term. */
    static Term constant(ConstId c) { return {false, c}; }
};

/** An atom that may contain variables (rule component). */
struct Atom
{
    PredId predicate = 0;
    std::vector<Term> args;
};

/** A fully ground atom (fact). */
struct GroundAtom
{
    PredId predicate = 0;
    std::vector<ConstId> args;

    bool
    operator<(const GroundAtom &other) const
    {
        if (predicate != other.predicate)
            return predicate < other.predicate;
        return args < other.args;
    }

    bool
    operator==(const GroundAtom &other) const
    {
        return predicate == other.predicate && args == other.args;
    }
};

/** A Horn rule: head :- body_1, ..., body_n. */
struct Rule
{
    Atom head;
    std::vector<Atom> body;
    std::string name; ///< Optional label for reports.
};

/** One fully ground instantiation of a rule. */
struct RuleInstance
{
    std::vector<GroundAtom> body;
    GroundAtom head;
};

/**
 * The knowledge base: symbol tables, fact store, rules, and the
 * forward-chaining engine.
 */
class KnowledgeBase
{
  public:
    /** Interns a predicate; re-registering the same name is an error. */
    PredId addPredicate(const std::string &name, int arity);

    /** Interns a constant. */
    ConstId addConstant(const std::string &name);

    /** Number of registered predicates. */
    size_t numPredicates() const { return predicates_.size(); }

    /** Number of registered constants. */
    size_t numConstants() const { return constants_.size(); }

    /** Declared arity of a predicate. */
    int arity(PredId pred) const;

    /** Predicate name lookup. */
    const std::string &predicateName(PredId pred) const;

    /** Constant name lookup. */
    const std::string &constantName(ConstId c) const;

    /**
     * Asserts a fact. Returns true when the fact is new. The arity
     * must match the predicate declaration.
     */
    bool addFact(GroundAtom fact);

    /** True when the fact is currently known. */
    bool hasFact(const GroundAtom &fact) const;

    /** All known facts of one predicate. */
    const std::vector<GroundAtom> &facts(PredId pred) const;

    /** Total known facts. */
    size_t numFacts() const { return factCount_; }

    /** Adds a Horn rule. Head variables must appear in the body. */
    void addRule(Rule rule);

    /** Number of rules. */
    size_t numRules() const { return rules_.size(); }

    /**
     * Saturates the fact store under the rules (bottom-up, semi-naive
     * is not required at our scales). Instrumented per rule per round.
     *
     * @param max_rounds Safety cap on fixpoint iterations.
     * @return Number of newly derived facts.
     */
    size_t forwardChain(size_t max_rounds = 64);

    /**
     * Enumerates every ground instantiation of one rule whose body
     * atoms are all currently known facts. Used by LNN to build its
     * grounded formula graph after saturation.
     */
    std::vector<RuleInstance> enumerateGroundings(const Rule &rule)
        const;

    /** The rule set, in addition order. */
    const std::vector<Rule> &rules() const { return rules_; }

    /** Approximate memory footprint of the fact store, in bytes. */
    uint64_t factBytes() const;

  private:
    struct PredicateInfo
    {
        std::string name;
        int arity;
    };

    std::vector<PredicateInfo> predicates_;
    std::map<std::string, PredId> predicateIds_;
    std::vector<std::string> constants_;
    std::map<std::string, ConstId> constantIds_;

    /** Facts bucketed by predicate, plus a membership index. */
    std::vector<std::vector<GroundAtom>> factsByPred_;
    std::map<GroundAtom, bool> factIndex_;
    size_t factCount_ = 0;

    std::vector<Rule> rules_;

    /**
     * Matches rule body atoms from @p next on, extending the variable
     * binding; emits every ground head into @p derived. Returns the
     * number of unification attempts made (for instrumentation).
     */
    size_t matchBody(const Rule &rule, size_t next,
                     std::map<VarId, ConstId> &binding,
                     std::vector<GroundAtom> &derived) const;

    /** Grounds an atom under a complete binding. */
    std::optional<GroundAtom>
    groundAtom(const Atom &atom,
               const std::map<VarId, ConstId> &binding) const;
};

} // namespace nsbench::logic

#endif // NSBENCH_LOGIC_KB_HH
