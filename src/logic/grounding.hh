/**
 * @file
 * Grounded formula-graph index over a saturated knowledge base.
 *
 * This is the LNN workload's symbolic front half, factored out of the
 * workload so it can be memoized: for a fixed KB (i.e. a fixed model
 * seed) the saturation, the atom-id assignment and the per-rule
 * instance lists are identical on every run. The index is immutable
 * once built — per-run inference copies initialBounds into private
 * mutable state and reads everything else in place — which is what
 * makes sharing one instance across replicas and runs sound.
 */

#ifndef NSBENCH_LOGIC_GROUNDING_HH
#define NSBENCH_LOGIC_GROUNDING_HH

#include <cstdint>
#include <map>
#include <vector>

#include "logic/bounds.hh"
#include "logic/kb.hh"

namespace nsbench::logic
{

/** The grounded formula graph: atoms, initial bounds, rule instances. */
struct GroundedIndex
{
    /** Atom id per distinct ground atom. */
    std::map<GroundAtom, size_t> atomIds;
    /** Truth bounds at atom creation: certainTrue for base facts. */
    std::vector<TruthBounds> initialBounds;
    /** Body atom ids + head atom id per rule instance. */
    struct Instance
    {
        std::vector<int64_t> body;
        int64_t head = 0;
    };
    /** Instances grouped by rule, in rule order. */
    std::vector<std::vector<Instance>> byRule;

    /** Logical bytes of the graph (bounds + instance id lists). */
    uint64_t graphBytes() const;
};

/**
 * Builds the grounded index: saturates a scratch copy of @p kb, then
 * grounds every rule into formula-graph instances. Instrumented
 * exactly like the historical in-workload path — forward chaining's
 * per-rule ops plus one "formula_grounding" op per rule — so op
 * streams are unchanged whether the caller builds or replays. Run it
 * inside the caller's symbolic phase scope.
 */
GroundedIndex buildGroundedIndex(const KnowledgeBase &kb);

} // namespace nsbench::logic

#endif // NSBENCH_LOGIC_GROUNDING_HH
