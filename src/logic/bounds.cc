#include "logic/bounds.hh"

#include "logic/fuzzy.hh"

namespace nsbench::logic
{

namespace
{

float
clampUnit(float v)
{
    return std::clamp(v, 0.0f, 1.0f);
}

} // namespace

TruthBounds
tighten(const TruthBounds &a, const TruthBounds &b)
{
    return {std::max(a.lower, b.lower), std::min(a.upper, b.upper)};
}

TruthBounds
boundsNot(const TruthBounds &a)
{
    return {1.0f - a.upper, 1.0f - a.lower};
}

TruthBounds
boundsAnd(const TruthBounds &a, const TruthBounds &b)
{
    // The Lukasiewicz t-norm is monotone in both operands, so the
    // interval image is the image of the endpoints.
    return {tNorm(TNormKind::Lukasiewicz, a.lower, b.lower),
            tNorm(TNormKind::Lukasiewicz, a.upper, b.upper)};
}

TruthBounds
boundsOr(const TruthBounds &a, const TruthBounds &b)
{
    return {tConorm(TNormKind::Lukasiewicz, a.lower, b.lower),
            tConorm(TNormKind::Lukasiewicz, a.upper, b.upper)};
}

TruthBounds
boundsImplies(const TruthBounds &a, const TruthBounds &b)
{
    // a -> b is decreasing in a and increasing in b.
    return {residuum(TNormKind::Lukasiewicz, a.upper, b.lower),
            residuum(TNormKind::Lukasiewicz, a.lower, b.upper)};
}

TruthBounds
downwardAnd(const TruthBounds &out, const TruthBounds &other)
{
    TruthBounds a = TruthBounds::unknown();
    // max(0, a+b-1) <= out.upper always implies a+b-1 <= out.upper.
    a.upper = clampUnit(out.upper + 1.0f - other.lower);
    // A strictly positive lower output bound forces a+b-1 >= out.lower.
    if (out.lower > 0.0f)
        a.lower = clampUnit(out.lower + 1.0f - other.upper);
    return a;
}

TruthBounds
downwardOr(const TruthBounds &out, const TruthBounds &other)
{
    TruthBounds a = TruthBounds::unknown();
    // out.lower <= min(1, a+b) <= a+b.
    a.lower = clampUnit(out.lower - other.upper);
    // An upper output bound below one forces a+b <= out.upper.
    if (out.upper < 1.0f)
        a.upper = clampUnit(out.upper - other.lower);
    return a;
}

} // namespace nsbench::logic
