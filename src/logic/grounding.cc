#include "logic/grounding.hh"

#include <set>
#include <utility>

#include "core/profiler.hh"

namespace nsbench::logic
{

using core::OpCategory;
using core::ScopedOp;

uint64_t
GroundedIndex::graphBytes() const
{
    uint64_t bytes = initialBounds.size() * sizeof(TruthBounds);
    for (const auto &group : byRule) {
        for (const auto &inst : group)
            bytes += (inst.body.size() + 1) * sizeof(int64_t);
    }
    return bytes;
}

GroundedIndex
buildGroundedIndex(const KnowledgeBase &kb)
{
    // Saturate a scratch copy so the caller's KB stays at its base
    // facts; remember those base facts to seed the truth bounds.
    KnowledgeBase scratch = kb;
    std::set<GroundAtom> base_facts;
    for (size_t p = 0; p < scratch.numPredicates(); p++) {
        for (const auto &fact :
             scratch.facts(static_cast<PredId>(p))) {
            base_facts.insert(fact);
        }
    }

    GroundedIndex g;
    scratch.forwardChain();

    auto atom_id = [&](const GroundAtom &atom) -> int64_t {
        auto it = g.atomIds.find(atom);
        if (it != g.atomIds.end())
            return static_cast<int64_t>(it->second);
        size_t id = g.initialBounds.size();
        g.atomIds.emplace(atom, id);
        g.initialBounds.push_back(base_facts.count(atom)
                                      ? TruthBounds::certainTrue()
                                      : TruthBounds::unknown());
        return static_cast<int64_t>(id);
    };

    for (const auto &rule : scratch.rules()) {
        ScopedOp op("formula_grounding", OpCategory::Other);
        auto instances = scratch.enumerateGroundings(rule);
        std::vector<GroundedIndex::Instance> group;
        group.reserve(instances.size());
        for (const auto &inst : instances) {
            GroundedIndex::Instance gi;
            for (const auto &atom : inst.body)
                gi.body.push_back(atom_id(atom));
            gi.head = atom_id(inst.head);
            group.push_back(std::move(gi));
        }
        op.setFlops(static_cast<double>(group.size()) *
                    static_cast<double>(rule.body.size() + 1));
        op.setBytesRead(static_cast<double>(group.size()) * 32.0);
        op.setBytesWritten(static_cast<double>(group.size()) * 16.0);
        g.byRule.push_back(std::move(group));
    }
    return g;
}

} // namespace nsbench::logic
