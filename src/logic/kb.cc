#include "logic/kb.hh"

#include <functional>
#include <set>

#include "core/profiler.hh"
#include "util/logging.hh"

namespace nsbench::logic
{

PredId
KnowledgeBase::addPredicate(const std::string &name, int arity)
{
    util::panicIf(arity < 0, "addPredicate: negative arity");
    util::panicIf(predicateIds_.count(name),
                  "addPredicate: duplicate predicate " + name);
    auto id = static_cast<PredId>(predicates_.size());
    predicates_.push_back({name, arity});
    predicateIds_[name] = id;
    factsByPred_.emplace_back();
    return id;
}

ConstId
KnowledgeBase::addConstant(const std::string &name)
{
    auto it = constantIds_.find(name);
    if (it != constantIds_.end())
        return it->second;
    auto id = static_cast<ConstId>(constants_.size());
    constants_.push_back(name);
    constantIds_[name] = id;
    return id;
}

int
KnowledgeBase::arity(PredId pred) const
{
    return predicates_.at(static_cast<size_t>(pred)).arity;
}

const std::string &
KnowledgeBase::predicateName(PredId pred) const
{
    return predicates_.at(static_cast<size_t>(pred)).name;
}

const std::string &
KnowledgeBase::constantName(ConstId c) const
{
    return constants_.at(static_cast<size_t>(c));
}

bool
KnowledgeBase::addFact(GroundAtom fact)
{
    util::panicIf(
        static_cast<size_t>(fact.predicate) >= predicates_.size(),
        "addFact: unknown predicate");
    util::panicIf(static_cast<int>(fact.args.size()) !=
                      arity(fact.predicate),
                  "addFact: arity mismatch for " +
                      predicateName(fact.predicate));
    if (factIndex_.count(fact))
        return false;
    factIndex_[fact] = true;
    factsByPred_[static_cast<size_t>(fact.predicate)].push_back(fact);
    factCount_++;
    return true;
}

bool
KnowledgeBase::hasFact(const GroundAtom &fact) const
{
    return factIndex_.count(fact) > 0;
}

const std::vector<GroundAtom> &
KnowledgeBase::facts(PredId pred) const
{
    return factsByPred_.at(static_cast<size_t>(pred));
}

void
KnowledgeBase::addRule(Rule rule)
{
    util::panicIf(rule.body.empty(), "addRule: empty body");
    std::set<VarId> body_vars;
    for (const auto &atom : rule.body) {
        util::panicIf(static_cast<int>(atom.args.size()) !=
                          arity(atom.predicate),
                      "addRule: body arity mismatch");
        for (const auto &t : atom.args) {
            if (t.isVariable)
                body_vars.insert(t.id);
        }
    }
    util::panicIf(static_cast<int>(rule.head.args.size()) !=
                      arity(rule.head.predicate),
                  "addRule: head arity mismatch");
    for (const auto &t : rule.head.args) {
        util::panicIf(t.isVariable && !body_vars.count(t.id),
                      "addRule: unsafe head variable in rule " +
                          rule.name);
    }
    rules_.push_back(std::move(rule));
}

size_t
KnowledgeBase::forwardChain(size_t max_rounds)
{
    size_t total_derived = 0;
    for (size_t round = 0; round < max_rounds; round++) {
        size_t round_derived = 0;
        for (const auto &rule : rules_) {
            core::ScopedOp op("rule_ground",
                              core::OpCategory::Other);
            std::vector<GroundAtom> derived;
            std::map<VarId, ConstId> binding;
            size_t attempts = matchBody(rule, 0, binding, derived);

            double scanned = 0.0;
            for (const auto &atom : rule.body) {
                scanned += static_cast<double>(
                    facts(atom.predicate).size() *
                    (atom.args.size() + 1) * 4);
            }
            op.setFlops(static_cast<double>(attempts));
            op.setBytesRead(scanned);
            op.setBytesWritten(static_cast<double>(
                derived.size() * (rule.head.args.size() + 1) * 4));

            for (auto &fact : derived) {
                if (addFact(std::move(fact)))
                    round_derived++;
            }
        }
        total_derived += round_derived;
        if (round_derived == 0)
            return total_derived;
    }
    util::warn("forwardChain: round cap reached before fixpoint");
    return total_derived;
}

std::vector<RuleInstance>
KnowledgeBase::enumerateGroundings(const Rule &rule) const
{
    std::vector<RuleInstance> out;
    // Depth-first match over body atoms, capturing full instances.
    std::vector<GroundAtom> body_sofar;
    std::map<VarId, ConstId> binding;

    std::function<void(size_t)> descend = [&](size_t next) {
        if (next == rule.body.size()) {
            auto head = groundAtom(rule.head, binding);
            util::panicIf(!head,
                          "enumerateGroundings: unbound head var");
            out.push_back({body_sofar, std::move(*head)});
            return;
        }
        const Atom &atom = rule.body[next];
        for (const auto &fact : facts(atom.predicate)) {
            std::vector<std::pair<VarId, ConstId>> added;
            bool ok = true;
            for (size_t i = 0; i < atom.args.size(); i++) {
                const Term &t = atom.args[i];
                ConstId c = fact.args[i];
                if (!t.isVariable) {
                    if (t.id != c) {
                        ok = false;
                        break;
                    }
                } else {
                    auto it = binding.find(t.id);
                    if (it == binding.end()) {
                        binding[t.id] = c;
                        added.emplace_back(t.id, c);
                    } else if (it->second != c) {
                        ok = false;
                        break;
                    }
                }
            }
            if (ok) {
                body_sofar.push_back(fact);
                descend(next + 1);
                body_sofar.pop_back();
            }
            for (const auto &[v, c] : added)
                binding.erase(v);
        }
    };
    descend(0);
    return out;
}

uint64_t
KnowledgeBase::factBytes() const
{
    uint64_t bytes = 0;
    for (const auto &bucket : factsByPred_) {
        for (const auto &fact : bucket)
            bytes += (fact.args.size() + 1) * sizeof(int32_t);
    }
    return bytes;
}

size_t
KnowledgeBase::matchBody(const Rule &rule, size_t next,
                         std::map<VarId, ConstId> &binding,
                         std::vector<GroundAtom> &derived) const
{
    if (next == rule.body.size()) {
        auto fact = groundAtom(rule.head, binding);
        util::panicIf(!fact, "matchBody: unbound head variable");
        if (!hasFact(*fact))
            derived.push_back(std::move(*fact));
        return 0;
    }

    const Atom &atom = rule.body[next];
    size_t attempts = 0;
    for (const auto &fact : facts(atom.predicate)) {
        attempts++;
        // Try to unify atom against fact under the current binding.
        std::vector<std::pair<VarId, ConstId>> added;
        bool ok = true;
        for (size_t i = 0; i < atom.args.size(); i++) {
            const Term &t = atom.args[i];
            ConstId c = fact.args[i];
            if (!t.isVariable) {
                if (t.id != c) {
                    ok = false;
                    break;
                }
            } else {
                auto it = binding.find(t.id);
                if (it == binding.end()) {
                    binding[t.id] = c;
                    added.emplace_back(t.id, c);
                } else if (it->second != c) {
                    ok = false;
                    break;
                }
            }
        }
        if (ok)
            attempts += matchBody(rule, next + 1, binding, derived);
        for (const auto &[v, c] : added)
            binding.erase(v);
    }
    return attempts;
}

std::optional<GroundAtom>
KnowledgeBase::groundAtom(const Atom &atom,
                          const std::map<VarId, ConstId> &binding) const
{
    GroundAtom out;
    out.predicate = atom.predicate;
    out.args.reserve(atom.args.size());
    for (const auto &t : atom.args) {
        if (!t.isVariable) {
            out.args.push_back(t.id);
        } else {
            auto it = binding.find(t.id);
            if (it == binding.end())
                return std::nullopt;
            out.args.push_back(it->second);
        }
    }
    return out;
}

} // namespace nsbench::logic
