#include "core/profiler.hh"

#include <algorithm>
#include <tuple>

#include "util/logging.hh"
#include "util/threadpool.hh"

namespace nsbench::core
{

namespace
{

size_t
phaseIndex(Phase phase)
{
    return static_cast<size_t>(phase);
}

size_t
categoryIndex(OpCategory category)
{
    return static_cast<size_t>(category);
}

/**
 * One op event recorded off the owner thread, parked in a thread-local
 * buffer until the next sync point. Phase and region are captured at
 * record time so attribution is independent of when the merge runs.
 */
struct PendingOp
{
    Profiler *profiler;
    Phase phase;
    OpCategory category;
    std::string region;
    std::string name;
    double seconds;
    double flops;
    double bytesRead;
    double bytesWritten;
};

/** Per-thread event buffer; append is lock-free by construction. */
thread_local std::vector<PendingOp> tlPendingOps;

/** Buffer cap: merge early rather than grow without bound. */
constexpr size_t kPendingFlushThreshold = 4096;

/**
 * Registers the profiler flush as the pool's sync hook during static
 * initialization, before any parallel region can run.
 */
[[maybe_unused]] const bool gSyncHookInstalled = [] {
    util::ThreadPool::setSyncHook(&Profiler::flushThisThread);
    return true;
}();

} // namespace

Profiler::Profiler(const Profiler &other)
{
    *this = other;
}

Profiler &
Profiler::operator=(const Profiler &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(mu_, other.mu_);
    enabled_.store(other.enabled_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    owner_ = std::this_thread::get_id();
    phaseStack_ = other.phaseStack_;
    ops_ = other.ops_;
    for (size_t p = 0; p < numPhases; p++) {
        phaseTotals_[p] = other.phaseTotals_[p];
        for (size_t c = 0; c < numOpCategories; c++)
            categoryTotals_[p][c] = other.categoryTotals_[p][c];
        phasePeakBytes_[p] = other.phasePeakBytes_[p];
        phaseAllocBytes_[p] = other.phaseAllocBytes_[p];
        phaseChurn_[p] = other.phaseChurn_[p];
    }
    currentBytes_ = other.currentBytes_;
    peakBytes_ = other.peakBytes_;
    churn_ = other.churn_;
    sparsity_ = other.sparsity_;
    sparsityOrder_ = other.sparsityOrder_;
    regionOrder_ = other.regionOrder_;
    return *this;
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    owner_ = std::this_thread::get_id();
    phaseStack_.clear();
    ops_.clear();
    for (auto &t : phaseTotals_)
        t = OpStats{};
    for (auto &row : categoryTotals_)
        for (auto &t : row)
            t = OpStats{};
    currentBytes_ = 0;
    peakBytes_ = 0;
    for (auto &b : phasePeakBytes_)
        b = 0;
    for (auto &b : phaseAllocBytes_)
        b = 0;
    churn_ = MemChurn{};
    for (auto &c : phaseChurn_)
        c = MemChurn{};
    sparsity_.clear();
    sparsityOrder_.clear();
    regionOrder_.clear();
}

void
Profiler::pushPhase(Phase phase, std::string region)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (std::find(regionOrder_.begin(), regionOrder_.end(), region) ==
        regionOrder_.end()) {
        regionOrder_.push_back(region);
    }
    phaseStack_.push_back({phase, std::move(region)});
}

void
Profiler::popPhase()
{
    std::lock_guard<std::mutex> lock(mu_);
    util::panicIf(phaseStack_.empty(),
                  "Profiler::popPhase: phase stack underflow");
    phaseStack_.pop_back();
}

Phase
Profiler::currentPhase() const
{
    return phaseStack_.empty() ? Phase::Untagged
                               : phaseStack_.back().phase;
}

const std::string &
Profiler::currentRegion() const
{
    static const std::string empty;
    return phaseStack_.empty() ? empty : phaseStack_.back().region;
}

void
Profiler::applyOpLocked(Phase phase, OpCategory category,
                        const std::string &region,
                        const std::string &name, double seconds,
                        double flops, double bytes_read,
                        double bytes_written)
{
    OpStats delta;
    delta.seconds = seconds;
    delta.invocations = 1;
    delta.flops = flops;
    delta.bytesRead = bytes_read;
    delta.bytesWritten = bytes_written;

    Key key{phase, category, region, name};
    ops_[key].merge(delta);
    phaseTotals_[phaseIndex(phase)].merge(delta);
    categoryTotals_[phaseIndex(phase)][categoryIndex(category)]
        .merge(delta);
}

void
Profiler::recordOp(std::string_view name, OpCategory category,
                   double seconds, double flops, double bytes_read,
                   double bytes_written)
{
    if (!enabled())
        return;

    // The phase stack is stable here: either we are the owner, or the
    // owner is blocked inside the parallel region we run in.
    Phase phase = currentPhase();
    const std::string &region = currentRegion();

    if (std::this_thread::get_id() == owner_) {
        std::lock_guard<std::mutex> lock(mu_);
        applyOpLocked(phase, category, region, std::string(name),
                      seconds, flops, bytes_read, bytes_written);
        return;
    }

    tlPendingOps.push_back({this, phase, category, region,
                            std::string(name), seconds, flops,
                            bytes_read, bytes_written});
    if (tlPendingOps.size() >= kPendingFlushThreshold)
        flushThisThread();
}

void
Profiler::flushThisThread()
{
    if (tlPendingOps.empty())
        return;
    // Take the buffer first so merges that record ops (they do not,
    // but stay re-entrant-safe) cannot loop.
    std::vector<PendingOp> pending;
    pending.swap(tlPendingOps);

    // Usually every event targets one profiler; group by target and
    // take each target's mutex once.
    std::vector<bool> applied(pending.size(), false);
    for (size_t i = 0; i < pending.size(); i++) {
        if (applied[i])
            continue;
        Profiler *prof = pending[i].profiler;
        std::lock_guard<std::mutex> lock(prof->mu_);
        for (size_t j = i; j < pending.size(); j++) {
            const PendingOp &ev = pending[j];
            if (applied[j] || ev.profiler != prof)
                continue;
            prof->applyOpLocked(ev.phase, ev.category, ev.region,
                                ev.name, ev.seconds, ev.flops,
                                ev.bytesRead, ev.bytesWritten);
            applied[j] = true;
        }
    }
}

void
Profiler::recordAlloc(uint64_t bytes, bool recycled)
{
    if (!enabled())
        return;
    Phase phase = currentPhase();
    std::lock_guard<std::mutex> lock(mu_);
    currentBytes_ += bytes;
    peakBytes_ = std::max(peakBytes_, currentBytes_);
    size_t p = phaseIndex(phase);
    phasePeakBytes_[p] = std::max(phasePeakBytes_[p], currentBytes_);
    phaseAllocBytes_[p] += bytes;
    churn_.allocs++;
    phaseChurn_[p].allocs++;
    if (recycled) {
        churn_.recycledAllocs++;
        churn_.recycledBytes += bytes;
        phaseChurn_[p].recycledAllocs++;
        phaseChurn_[p].recycledBytes += bytes;
    }
}

void
Profiler::recordFree(uint64_t bytes)
{
    if (!enabled())
        return;
    Phase phase = currentPhase();
    std::lock_guard<std::mutex> lock(mu_);
    // Frees of tensors allocated while the profiler was disabled (or
    // before a reset) can exceed the tracked balance; clamp rather than
    // wrap.
    currentBytes_ = bytes > currentBytes_ ? 0 : currentBytes_ - bytes;
    churn_.frees++;
    phaseChurn_[phaseIndex(phase)].frees++;
}

void
Profiler::recordCachedAlloc(uint64_t bytes)
{
    if (!enabled())
        return;
    Phase phase = currentPhase();
    std::lock_guard<std::mutex> lock(mu_);
    churn_.cachedAllocs++;
    churn_.cachedBytes += bytes;
    size_t p = phaseIndex(phase);
    phaseChurn_[p].cachedAllocs++;
    phaseChurn_[p].cachedBytes += bytes;
}

uint64_t
Profiler::peakBytesIn(Phase phase) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return phasePeakBytes_[phaseIndex(phase)];
}

uint64_t
Profiler::allocatedBytesIn(Phase phase) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return phaseAllocBytes_[phaseIndex(phase)];
}

MemChurn
Profiler::memChurn() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return churn_;
}

MemChurn
Profiler::memChurnIn(Phase phase) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return phaseChurn_[phaseIndex(phase)];
}

void
Profiler::recordSparsity(std::string_view stage, uint64_t zeros,
                         uint64_t total)
{
    if (!enabled())
        return;
    util::panicIf(zeros > total,
                  "Profiler::recordSparsity: zeros exceed total");
    Phase phase = currentPhase();
    std::lock_guard<std::mutex> lock(mu_);
    std::string key(stage);
    auto it = sparsity_.find(key);
    if (it == sparsity_.end()) {
        SparsityRecord rec;
        rec.stage = key;
        rec.phase = phase;
        rec.zeros = zeros;
        rec.total = total;
        sparsity_.emplace(key, rec);
        sparsityOrder_.push_back(key);
    } else {
        it->second.zeros += zeros;
        it->second.total += total;
    }
}

OpStats
Profiler::totals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    OpStats out;
    for (const auto &t : phaseTotals_)
        out.merge(t);
    return out;
}

OpStats
Profiler::phaseTotals(Phase phase) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return phaseTotals_[phaseIndex(phase)];
}

OpStats
Profiler::categoryTotals(Phase phase, OpCategory category) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return categoryTotals_[phaseIndex(phase)][categoryIndex(category)];
}

std::vector<NamedOpStats>
Profiler::opsByTime() const
{
    // Merge region-distinct entries that share (phase, category, name).
    std::map<std::tuple<Phase, OpCategory, std::string>, OpStats> merged;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[key, stats] : ops_)
            merged[{key.phase, key.category, key.name}].merge(stats);
    }

    std::vector<NamedOpStats> out;
    out.reserve(merged.size());
    for (const auto &[key, stats] : merged) {
        out.push_back({std::get<2>(key), std::get<0>(key),
                       std::get<1>(key), stats});
    }
    std::sort(out.begin(), out.end(),
              [](const NamedOpStats &a, const NamedOpStats &b) {
                  return a.stats.seconds > b.stats.seconds;
              });
    return out;
}

std::vector<NamedOpStats>
Profiler::opsByTime(Phase phase) const
{
    auto all = opsByTime();
    std::erase_if(all, [phase](const NamedOpStats &s) {
        return s.phase != phase;
    });
    return all;
}

std::vector<NamedOpStats>
Profiler::opsInRegion(const std::string &region) const
{
    std::vector<NamedOpStats> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[key, stats] : ops_) {
            if (key.region == region)
                out.push_back(
                    {key.name, key.phase, key.category, stats});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const NamedOpStats &a, const NamedOpStats &b) {
                  return a.stats.seconds > b.stats.seconds;
              });
    return out;
}

OpStats
Profiler::regionTotals(const std::string &region) const
{
    std::lock_guard<std::mutex> lock(mu_);
    OpStats out;
    for (const auto &[key, stats] : ops_) {
        if (key.region == region)
            out.merge(stats);
    }
    return out;
}

std::vector<SparsityRecord>
Profiler::sparsityRecords() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SparsityRecord> out;
    out.reserve(sparsityOrder_.size());
    for (const auto &stage : sparsityOrder_)
        out.push_back(sparsity_.at(stage));
    return out;
}

namespace
{

/** Per-thread redirection target; null = process-global profiler. */
thread_local Profiler *tlTarget = nullptr;

} // namespace

Profiler &
Profiler::global()
{
    return tlTarget ? *tlTarget : processGlobal();
}

Profiler &
Profiler::processGlobal()
{
    static Profiler instance;
    return instance;
}

Profiler::ThreadTargetScope::ThreadTargetScope(Profiler &target)
    : prev_(tlTarget)
{
    tlTarget = &target;
}

Profiler::ThreadTargetScope::~ThreadTargetScope()
{
    tlTarget = prev_;
}

} // namespace nsbench::core
