#include "core/profiler.hh"

#include <algorithm>
#include <tuple>

#include "util/logging.hh"

namespace nsbench::core
{

namespace
{

size_t
phaseIndex(Phase phase)
{
    return static_cast<size_t>(phase);
}

size_t
categoryIndex(OpCategory category)
{
    return static_cast<size_t>(category);
}

} // namespace

void
Profiler::reset()
{
    phaseStack_.clear();
    ops_.clear();
    for (auto &t : phaseTotals_)
        t = OpStats{};
    for (auto &row : categoryTotals_)
        for (auto &t : row)
            t = OpStats{};
    currentBytes_ = 0;
    peakBytes_ = 0;
    for (auto &b : phasePeakBytes_)
        b = 0;
    for (auto &b : phaseAllocBytes_)
        b = 0;
    sparsity_.clear();
    sparsityOrder_.clear();
    regionOrder_.clear();
}

void
Profiler::pushPhase(Phase phase, std::string region)
{
    if (std::find(regionOrder_.begin(), regionOrder_.end(), region) ==
        regionOrder_.end()) {
        regionOrder_.push_back(region);
    }
    phaseStack_.push_back({phase, std::move(region)});
}

void
Profiler::popPhase()
{
    util::panicIf(phaseStack_.empty(),
                  "Profiler::popPhase: phase stack underflow");
    phaseStack_.pop_back();
}

Phase
Profiler::currentPhase() const
{
    return phaseStack_.empty() ? Phase::Untagged
                               : phaseStack_.back().phase;
}

const std::string &
Profiler::currentRegion() const
{
    static const std::string empty;
    return phaseStack_.empty() ? empty : phaseStack_.back().region;
}

void
Profiler::recordOp(std::string_view name, OpCategory category,
                   double seconds, double flops, double bytes_read,
                   double bytes_written)
{
    if (!enabled_)
        return;

    Phase phase = currentPhase();
    OpStats delta;
    delta.seconds = seconds;
    delta.invocations = 1;
    delta.flops = flops;
    delta.bytesRead = bytes_read;
    delta.bytesWritten = bytes_written;

    Key key{phase, category, currentRegion(), std::string(name)};
    ops_[key].merge(delta);
    phaseTotals_[phaseIndex(phase)].merge(delta);
    categoryTotals_[phaseIndex(phase)][categoryIndex(category)]
        .merge(delta);
}

void
Profiler::recordAlloc(uint64_t bytes)
{
    if (!enabled_)
        return;
    currentBytes_ += bytes;
    peakBytes_ = std::max(peakBytes_, currentBytes_);
    size_t p = phaseIndex(currentPhase());
    phasePeakBytes_[p] = std::max(phasePeakBytes_[p], currentBytes_);
    phaseAllocBytes_[p] += bytes;
}

void
Profiler::recordFree(uint64_t bytes)
{
    if (!enabled_)
        return;
    // Frees of tensors allocated while the profiler was disabled (or
    // before a reset) can exceed the tracked balance; clamp rather than
    // wrap.
    currentBytes_ = bytes > currentBytes_ ? 0 : currentBytes_ - bytes;
}

uint64_t
Profiler::peakBytesIn(Phase phase) const
{
    return phasePeakBytes_[phaseIndex(phase)];
}

uint64_t
Profiler::allocatedBytesIn(Phase phase) const
{
    return phaseAllocBytes_[phaseIndex(phase)];
}

void
Profiler::recordSparsity(std::string_view stage, uint64_t zeros,
                         uint64_t total)
{
    if (!enabled_)
        return;
    util::panicIf(zeros > total,
                  "Profiler::recordSparsity: zeros exceed total");
    std::string key(stage);
    auto it = sparsity_.find(key);
    if (it == sparsity_.end()) {
        SparsityRecord rec;
        rec.stage = key;
        rec.phase = currentPhase();
        rec.zeros = zeros;
        rec.total = total;
        sparsity_.emplace(key, rec);
        sparsityOrder_.push_back(key);
    } else {
        it->second.zeros += zeros;
        it->second.total += total;
    }
}

OpStats
Profiler::totals() const
{
    OpStats out;
    for (const auto &t : phaseTotals_)
        out.merge(t);
    return out;
}

OpStats
Profiler::phaseTotals(Phase phase) const
{
    return phaseTotals_[phaseIndex(phase)];
}

OpStats
Profiler::categoryTotals(Phase phase, OpCategory category) const
{
    return categoryTotals_[phaseIndex(phase)][categoryIndex(category)];
}

std::vector<NamedOpStats>
Profiler::opsByTime() const
{
    // Merge region-distinct entries that share (phase, category, name).
    std::map<std::tuple<Phase, OpCategory, std::string>, OpStats> merged;
    for (const auto &[key, stats] : ops_)
        merged[{key.phase, key.category, key.name}].merge(stats);

    std::vector<NamedOpStats> out;
    out.reserve(merged.size());
    for (const auto &[key, stats] : merged) {
        out.push_back({std::get<2>(key), std::get<0>(key),
                       std::get<1>(key), stats});
    }
    std::sort(out.begin(), out.end(),
              [](const NamedOpStats &a, const NamedOpStats &b) {
                  return a.stats.seconds > b.stats.seconds;
              });
    return out;
}

std::vector<NamedOpStats>
Profiler::opsByTime(Phase phase) const
{
    auto all = opsByTime();
    std::erase_if(all, [phase](const NamedOpStats &s) {
        return s.phase != phase;
    });
    return all;
}

std::vector<NamedOpStats>
Profiler::opsInRegion(const std::string &region) const
{
    std::vector<NamedOpStats> out;
    for (const auto &[key, stats] : ops_) {
        if (key.region == region)
            out.push_back({key.name, key.phase, key.category, stats});
    }
    std::sort(out.begin(), out.end(),
              [](const NamedOpStats &a, const NamedOpStats &b) {
                  return a.stats.seconds > b.stats.seconds;
              });
    return out;
}

OpStats
Profiler::regionTotals(const std::string &region) const
{
    OpStats out;
    for (const auto &[key, stats] : ops_) {
        if (key.region == region)
            out.merge(stats);
    }
    return out;
}

std::vector<SparsityRecord>
Profiler::sparsityRecords() const
{
    std::vector<SparsityRecord> out;
    out.reserve(sparsityOrder_.size());
    for (const auto &stage : sparsityOrder_)
        out.push_back(sparsity_.at(stage));
    return out;
}

Profiler &
Profiler::global()
{
    static Profiler instance;
    return instance;
}

} // namespace nsbench::core
