/**
 * @file
 * Sparsity measurement helpers (Fig. 5 of the paper).
 */

#ifndef NSBENCH_CORE_SPARSITY_HH
#define NSBENCH_CORE_SPARSITY_HH

#include <cmath>
#include <cstdint>
#include <span>
#include <string_view>

#include "core/profiler.hh"

namespace nsbench::core
{

/** Counts elements whose magnitude is at most @p eps. */
template <typename T>
uint64_t
countZeros(std::span<const T> values, T eps = T(0))
{
    uint64_t zeros = 0;
    for (const T &v : values) {
        if (std::abs(v) <= eps)
            zeros++;
    }
    return zeros;
}

/** Zero fraction of a span in [0, 1]; 0 for an empty span. */
template <typename T>
double
sparsityRatio(std::span<const T> values, T eps = T(0))
{
    if (values.empty())
        return 0.0;
    return static_cast<double>(countZeros(values, eps)) /
           static_cast<double>(values.size());
}

/**
 * Measures a span's sparsity and records it on the profiler under the
 * given stage label.
 */
template <typename T>
void
recordSpanSparsity(std::string_view stage, std::span<const T> values,
                   T eps = T(0), Profiler &profiler = globalProfiler())
{
    profiler.recordSparsity(stage, countZeros(values, eps),
                            values.size());
}

} // namespace nsbench::core

#endif // NSBENCH_CORE_SPARSITY_HH
