#include "core/opgraph.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace nsbench::core
{

NodeId
OpGraph::addNode(std::string name, Phase phase, double seconds)
{
    nodes_.push_back({std::move(name), phase, seconds});
    succ_.emplace_back();
    pred_.emplace_back();
    return nodes_.size() - 1;
}

void
OpGraph::addEdge(NodeId from, NodeId to)
{
    util::panicIf(from >= size() || to >= size(),
                  "OpGraph::addEdge: node id out of range");
    util::panicIf(from == to, "OpGraph::addEdge: self loop");
    succ_[from].push_back(to);
    pred_[to].push_back(from);
}

NodeId
OpGraph::findNode(const std::string &name) const
{
    for (NodeId id = 0; id < nodes_.size(); id++) {
        if (nodes_[id].name == name)
            return id;
    }
    return nodes_.size();
}

const std::vector<NodeId> &
OpGraph::successors(NodeId id) const
{
    return succ_.at(id);
}

const std::vector<NodeId> &
OpGraph::predecessors(NodeId id) const
{
    return pred_.at(id);
}

std::vector<NodeId>
OpGraph::topoOrder() const
{
    std::vector<size_t> indegree(size());
    for (NodeId id = 0; id < size(); id++)
        indegree[id] = pred_[id].size();

    std::vector<NodeId> ready;
    for (NodeId id = 0; id < size(); id++) {
        if (indegree[id] == 0)
            ready.push_back(id);
    }

    std::vector<NodeId> order;
    order.reserve(size());
    while (!ready.empty()) {
        NodeId id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (NodeId next : succ_[id]) {
            if (--indegree[next] == 0)
                ready.push_back(next);
        }
    }
    util::panicIf(order.size() != size(),
                  "OpGraph::topoOrder: graph contains a cycle");
    return order;
}

bool
OpGraph::isAcyclic() const
{
    std::vector<size_t> indegree(size());
    for (NodeId id = 0; id < size(); id++)
        indegree[id] = pred_[id].size();

    std::vector<NodeId> ready;
    for (NodeId id = 0; id < size(); id++) {
        if (indegree[id] == 0)
            ready.push_back(id);
    }

    size_t visited = 0;
    while (!ready.empty()) {
        NodeId id = ready.back();
        ready.pop_back();
        visited++;
        for (NodeId next : succ_[id]) {
            if (--indegree[next] == 0)
                ready.push_back(next);
        }
    }
    return visited == size();
}

std::vector<NodeId>
OpGraph::criticalPath() const
{
    if (size() == 0)
        return {};

    auto order = topoOrder();
    // dist[v]: longest path duration ending at (and including) v.
    std::vector<double> dist(size());
    std::vector<NodeId> best_pred(size(), size());

    for (NodeId id : order) {
        dist[id] = nodes_[id].seconds;
        for (NodeId p : pred_[id]) {
            double through = dist[p] + nodes_[id].seconds;
            if (through > dist[id]) {
                dist[id] = through;
                best_pred[id] = p;
            }
        }
    }

    NodeId end = 0;
    for (NodeId id = 1; id < size(); id++) {
        if (dist[id] > dist[end])
            end = id;
    }

    std::vector<NodeId> path;
    for (NodeId id = end; id != size(); id = best_pred[id])
        path.push_back(id);
    std::reverse(path.begin(), path.end());
    return path;
}

double
OpGraph::criticalPathSeconds() const
{
    double total = 0.0;
    for (NodeId id : criticalPath())
        total += nodes_[id].seconds;
    return total;
}

double
OpGraph::symbolicCriticalFraction() const
{
    double total = 0.0;
    double symbolic = 0.0;
    for (NodeId id : criticalPath()) {
        total += nodes_[id].seconds;
        if (nodes_[id].phase == Phase::Symbolic)
            symbolic += nodes_[id].seconds;
    }
    return total > 0.0 ? symbolic / total : 0.0;
}

double
OpGraph::totalSeconds() const
{
    double total = 0.0;
    for (const auto &node : nodes_)
        total += node.seconds;
    return total;
}

double
OpGraph::parallelSpeedupBound() const
{
    double cp = criticalPathSeconds();
    return cp > 0.0 ? totalSeconds() / cp : 1.0;
}

std::string
OpGraph::toDot(const std::string &graph_name) const
{
    std::ostringstream os;
    os << "digraph \"" << graph_name << "\" {\n";
    os << "  rankdir=LR;\n";
    for (NodeId id = 0; id < size(); id++) {
        const auto &n = nodes_[id];
        os << "  n" << id << " [label=\"" << n.name << "\\n"
           << phaseName(n.phase) << "\" shape="
           << (n.phase == Phase::Symbolic ? "box" : "ellipse") << "];\n";
    }
    for (NodeId id = 0; id < size(); id++) {
        for (NodeId next : succ_[id])
            os << "  n" << id << " -> n" << next << ";\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace nsbench::core
