/**
 * @file
 * The operator characterization taxonomy of Sec. IV-B of the paper.
 *
 * Every instrumented operation in the suite is classified into one of
 * six categories (convolution, MatMul, vector/element-wise tensor op,
 * data transformation, data movement, other) and attributed to either
 * the neural or the symbolic phase of its workload.
 */

#ifndef NSBENCH_CORE_TAXONOMY_HH
#define NSBENCH_CORE_TAXONOMY_HH

#include <array>
#include <string_view>

namespace nsbench::core
{

/** The six operator categories of the paper's Sec. IV-B. */
enum class OpCategory
{
    Convolution,
    MatMul,
    VectorElementwise,
    DataTransform,
    DataMovement,
    Other,
};

/** Number of OpCategory values, for fixed-size per-category arrays. */
inline constexpr size_t numOpCategories = 6;

/** All categories in declaration order, for iteration. */
inline constexpr std::array<OpCategory, numOpCategories> allOpCategories = {
    OpCategory::Convolution,  OpCategory::MatMul,
    OpCategory::VectorElementwise, OpCategory::DataTransform,
    OpCategory::DataMovement, OpCategory::Other,
};

/** Human-readable category name as used in the paper's Fig. 3a legend. */
std::string_view opCategoryName(OpCategory category);

/** Which half of a neuro-symbolic workload an operation belongs to. */
enum class Phase
{
    Neural,
    Symbolic,
    Untagged,
};

/** Number of Phase values. */
inline constexpr size_t numPhases = 3;

/** Human-readable phase name. */
std::string_view phaseName(Phase phase);

/**
 * The five neuro-symbolic integration paradigms of Kautz's taxonomy as
 * used in the paper's Tab. I.
 */
enum class Paradigm
{
    SymbolicNeuro,         ///< Symbolic[Neuro]
    NeuroPipeSymbolic,     ///< Neuro|Symbolic
    NeuroSymbolicToNeuro,  ///< Neuro:Symbolic->Neuro
    NeuroUnderSymbolic,    ///< Neuro_{Symbolic}
    NeuroBracketSymbolic,  ///< Neuro[Symbolic]
};

/** Paradigm name in the paper's notation. */
std::string_view paradigmName(Paradigm paradigm);

} // namespace nsbench::core

#endif // NSBENCH_CORE_TAXONOMY_HH
