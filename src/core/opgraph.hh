/**
 * @file
 * Operation-dependency graphs (Fig. 4 of the paper).
 *
 * Each workload declares the coarse dataflow between its neural and
 * symbolic stages as a DAG. Combined with measured per-stage runtimes,
 * the suite computes the critical path and the fraction of it spent in
 * symbolic stages — the paper's observation that symbolic work either
 * depends on neural results or compiles into the neural structure, and
 * therefore sits on the end-to-end critical path.
 */

#ifndef NSBENCH_CORE_OPGRAPH_HH
#define NSBENCH_CORE_OPGRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/taxonomy.hh"

namespace nsbench::core
{

/** Integer handle of a graph node. */
using NodeId = size_t;

/** One coarse dataflow stage of a workload. */
struct OpNode
{
    std::string name;       ///< Stage label, e.g. "rule_detection".
    Phase phase;            ///< Neural or symbolic.
    double seconds = 0.0;   ///< Measured or assigned stage runtime.
};

/**
 * A DAG of workload stages with edge-based dependencies.
 */
class OpGraph
{
  public:
    /** Adds a stage node; returns its handle. */
    NodeId addNode(std::string name, Phase phase, double seconds = 0.0);

    /** Adds a dependency: @p to consumes the output of @p from. */
    void addEdge(NodeId from, NodeId to);

    /** Number of nodes. */
    size_t size() const { return nodes_.size(); }

    /** Node accessor. */
    const OpNode &node(NodeId id) const { return nodes_.at(id); }

    /** Mutable node accessor, for filling in measured runtimes. */
    OpNode &node(NodeId id) { return nodes_.at(id); }

    /** Looks up a node by name; returns size() when absent. */
    NodeId findNode(const std::string &name) const;

    /** Direct successors of a node. */
    const std::vector<NodeId> &successors(NodeId id) const;

    /** Direct predecessors of a node. */
    const std::vector<NodeId> &predecessors(NodeId id) const;

    /** True when the graph has no cycle (always expected). */
    bool isAcyclic() const;

    /**
     * The longest-duration root-to-sink path. Panics on a cyclic graph.
     */
    std::vector<NodeId> criticalPath() const;

    /** Sum of node durations along the critical path. */
    double criticalPathSeconds() const;

    /**
     * Fraction of critical-path time spent in symbolic nodes; the
     * quantity behind the paper's Takeaway 5.
     */
    double symbolicCriticalFraction() const;

    /** Sum of all node durations (sequential-execution lower bound). */
    double totalSeconds() const;

    /**
     * Ideal parallel speedup: total work divided by critical-path
     * length, the upper bound any scheduling (Recommendation 5) can
     * reach.
     */
    double parallelSpeedupBound() const;

    /** Topological order of all nodes. Panics on a cyclic graph. */
    std::vector<NodeId> topoOrder() const;

    /** Graphviz DOT rendering, symbolic nodes drawn as boxes. */
    std::string toDot(const std::string &graph_name) const;

  private:
    std::vector<OpNode> nodes_;
    std::vector<std::vector<NodeId>> succ_;
    std::vector<std::vector<NodeId>> pred_;
};

} // namespace nsbench::core

#endif // NSBENCH_CORE_OPGRAPH_HH
