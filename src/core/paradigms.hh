/**
 * @file
 * Static census of neuro-symbolic algorithms (the paper's Tab. I/II).
 */

#ifndef NSBENCH_CORE_PARADIGMS_HH
#define NSBENCH_CORE_PARADIGMS_HH

#include <span>
#include <string_view>

#include "core/taxonomy.hh"

namespace nsbench::core
{

/** One row of the paper's Tab. I. */
struct AlgorithmEntry
{
    std::string_view name;          ///< Algorithm, e.g. "NVSA".
    Paradigm paradigm;              ///< Integration paradigm.
    std::string_view operations;    ///< Underlying operations.
    bool vectorFormat;              ///< "If Vector" column.
    bool implementedHere;           ///< Part of our seven workloads.
};

/** All Tab. I rows. */
std::span<const AlgorithmEntry> algorithmCensus();

/** One row of the paper's Tab. II (operation exemplars). */
struct OperationExample
{
    std::string_view operation;     ///< e.g. "Fuzzy logic (LTN)".
    std::string_view example;       ///< Concrete usage sketch.
};

/** All Tab. II rows. */
std::span<const OperationExample> operationExamples();

} // namespace nsbench::core

#endif // NSBENCH_CORE_PARADIGMS_HH
