/**
 * @file
 * Report builders that turn profiler aggregates into the tables the
 * paper's figures plot.
 */

#ifndef NSBENCH_CORE_REPORT_HH
#define NSBENCH_CORE_REPORT_HH

#include <string>

#include "core/profiler.hh"
#include "util/table.hh"

namespace nsbench::core
{

/** Neural/symbolic runtime split of one profiled run (Fig. 2a). */
struct PhaseSplit
{
    double neuralSeconds = 0.0;
    double symbolicSeconds = 0.0;
    double untaggedSeconds = 0.0;

    /** Total attributed runtime. */
    double
    total() const
    {
        return neuralSeconds + symbolicSeconds + untaggedSeconds;
    }

    /** Neural fraction of attributed runtime. */
    double
    neuralFraction() const
    {
        double t = total();
        return t > 0.0 ? neuralSeconds / t : 0.0;
    }

    /** Symbolic fraction of attributed runtime. */
    double
    symbolicFraction() const
    {
        double t = total();
        return t > 0.0 ? symbolicSeconds / t : 0.0;
    }
};

/** Extracts the neural/symbolic split from a profiler. */
PhaseSplit phaseSplit(const Profiler &profiler);

/** Phase-level table: seconds, share, FLOPs, bytes per phase. */
util::Table phaseBreakdownTable(const Profiler &profiler);

/**
 * Operator-category runtime shares within one phase (one bar of
 * Fig. 3a).
 */
util::Table categoryBreakdownTable(const Profiler &profiler, Phase phase);

/** The n most expensive named operators. */
util::Table topOpsTable(const Profiler &profiler, size_t n);

/**
 * Memory peaks, allocation volume, and allocation churn per phase
 * (Fig. 3b). Peak/allocated are logical tensor bytes — identical for
 * every allocator backend; the churn columns (alloc counts and bytes
 * recycled) are where the arena shows up.
 */
util::Table memoryTable(const Profiler &profiler);

/** Sparsity records table (Fig. 5). */
util::Table sparsityTable(const Profiler &profiler);

/** Per-region runtime table (stage-level breakdown). */
util::Table regionTable(const Profiler &profiler);

} // namespace nsbench::core

#endif // NSBENCH_CORE_REPORT_HH
