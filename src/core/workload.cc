#include "core/workload.hh"

#include <algorithm>

#include "util/logging.hh"

namespace nsbench::core
{

void
WorkloadRegistry::add(const std::string &name, WorkloadFactory factory)
{
    util::panicIf(contains(name),
                  "WorkloadRegistry: duplicate workload " + name);
    entries_.emplace_back(name, std::move(factory));
}

std::unique_ptr<Workload>
WorkloadRegistry::create(const std::string &name) const
{
    for (const auto &[n, factory] : entries_) {
        if (n == name)
            return factory();
    }
    util::fatal("WorkloadRegistry: unknown workload " + name);
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[n, factory] : entries_)
        out.push_back(n);
    return out;
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const auto &e) { return e.first == name; });
}

WorkloadRegistry &
WorkloadRegistry::global()
{
    static WorkloadRegistry instance;
    return instance;
}

} // namespace nsbench::core
