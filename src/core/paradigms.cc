#include "core/paradigms.hh"

#include <array>

namespace nsbench::core
{

namespace
{

constexpr std::array<AlgorithmEntry, 16> census = {{
    {"AlphaGo", Paradigm::SymbolicNeuro, "NN, MCTS", true, false},
    {"NVSA", Paradigm::NeuroPipeSymbolic,
     "NN, mul, add, circular conv.", true, true},
    {"NeuPSL", Paradigm::NeuroPipeSymbolic, "NN, fuzzy logic", true,
     false},
    {"NSCL", Paradigm::NeuroPipeSymbolic, "NN, add, mul, div, log",
     true, false},
    {"NeurASP", Paradigm::NeuroPipeSymbolic, "NN, logic rules", false,
     false},
    {"ABL", Paradigm::NeuroPipeSymbolic, "NN, logic rules", false,
     false},
    {"NSVQA", Paradigm::NeuroPipeSymbolic, "NN, pre-defined objects",
     false, false},
    {"VSAIT", Paradigm::NeuroPipeSymbolic, "NN, binding/unbinding",
     true, true},
    {"PrAE", Paradigm::NeuroPipeSymbolic,
     "NN, logic rules, prob. abduction", true, true},
    {"LNN", Paradigm::NeuroSymbolicToNeuro, "NN, fuzzy logic", true,
     true},
    {"Symbolic Math", Paradigm::NeuroSymbolicToNeuro, "NN", true,
     false},
    {"Differentiable ILP", Paradigm::NeuroSymbolicToNeuro,
     "NN, fuzzy logic", true, false},
    {"LTN", Paradigm::NeuroUnderSymbolic, "NN, fuzzy logic", true,
     true},
    {"DON", Paradigm::NeuroUnderSymbolic, "NN", true, false},
    {"ZeroC", Paradigm::NeuroBracketSymbolic,
     "NN (energy-based model, graph)", true, true},
    {"NLM", Paradigm::NeuroBracketSymbolic, "NN, permutation", true,
     true},
}};

constexpr std::array<OperationExample, 5> examples = {{
    {"Fuzzy logic (LTN)",
     "F = forall x: isCarnivore(x) -> isMammal(x); truth in [0,1]"},
    {"Mul, add, circular conv. (NVSA)",
     "X_i in {+1,-1}^d; bind = X_i * X_j; bundle = X_i + X_j"},
    {"Logic rules (ABL)",
     "hypos(x) :- animal(x), mammal(x), carnivore(x)"},
    {"Pre-defined objects (NSVQA)",
     "equal_color: (entry, entry) -> Boolean"},
    {"Permutation + reduction (NLM)",
     "expand/reduce predicates across arity groups"},
}};

} // namespace

std::span<const AlgorithmEntry>
algorithmCensus()
{
    return census;
}

std::span<const OperationExample>
operationExamples()
{
    return examples;
}

} // namespace nsbench::core
