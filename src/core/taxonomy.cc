#include "core/taxonomy.hh"

namespace nsbench::core
{

std::string_view
opCategoryName(OpCategory category)
{
    switch (category) {
      case OpCategory::Convolution:
        return "Convolution";
      case OpCategory::MatMul:
        return "MatMul";
      case OpCategory::VectorElementwise:
        return "Vector/Element-wise";
      case OpCategory::DataTransform:
        return "Data Transformation";
      case OpCategory::DataMovement:
        return "Data Movement";
      case OpCategory::Other:
        return "Others";
    }
    return "?";
}

std::string_view
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Neural:
        return "neural";
      case Phase::Symbolic:
        return "symbolic";
      case Phase::Untagged:
        return "untagged";
    }
    return "?";
}

std::string_view
paradigmName(Paradigm paradigm)
{
    switch (paradigm) {
      case Paradigm::SymbolicNeuro:
        return "Symbolic[Neuro]";
      case Paradigm::NeuroPipeSymbolic:
        return "Neuro|Symbolic";
      case Paradigm::NeuroSymbolicToNeuro:
        return "Neuro:Symbolic->Neuro";
      case Paradigm::NeuroUnderSymbolic:
        return "Neuro_{Symbolic}";
      case Paradigm::NeuroBracketSymbolic:
        return "Neuro[Symbolic]";
    }
    return "?";
}

} // namespace nsbench::core
