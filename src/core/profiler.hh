/**
 * @file
 * The op-level instrumenting profiler (Sec. IV-A of the paper).
 *
 * Plays the role the PyTorch Profiler plays in the paper: every tensor,
 * VSA and logic operation in the suite reports its runtime, FLOP count,
 * bytes moved and invocation count here, tagged with the operator
 * category of Sec. IV-B and the neural/symbolic phase it ran in. The
 * benches then post-process these aggregates into the paper's figures.
 */

#ifndef NSBENCH_CORE_PROFILER_HH
#define NSBENCH_CORE_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/taxonomy.hh"
#include "util/timer.hh"

namespace nsbench::core
{

/**
 * Aggregated statistics for one operator (or one phase/category slice).
 */
struct OpStats
{
    double seconds = 0.0;       ///< Accumulated wall time.
    uint64_t invocations = 0;   ///< Number of recorded calls.
    double flops = 0.0;         ///< Floating/arith operations performed.
    double bytesRead = 0.0;     ///< Bytes read from operand tensors.
    double bytesWritten = 0.0;  ///< Bytes written to result tensors.

    /** Total bytes touched. */
    double bytes() const { return bytesRead + bytesWritten; }

    /**
     * Operational intensity in FLOP/byte; the x-axis of the roofline
     * plot (Fig. 3c). Returns 0 for pure-movement ops.
     */
    double
    opIntensity() const
    {
        double b = bytes();
        return b > 0.0 ? flops / b : 0.0;
    }

    /** Folds another aggregate into this one. */
    void
    merge(const OpStats &other)
    {
        seconds += other.seconds;
        invocations += other.invocations;
        flops += other.flops;
        bytesRead += other.bytesRead;
        bytesWritten += other.bytesWritten;
    }
};

/** One named operator aggregate, as returned by query helpers. */
struct NamedOpStats
{
    std::string name;       ///< Operator name, e.g. "matmul".
    Phase phase;            ///< Phase the calls ran in.
    OpCategory category;    ///< Taxonomy category.
    OpStats stats;          ///< The aggregate itself.
};

/**
 * Tensor-storage allocation churn. Alloc/free counts are physical
 * buffer events; recycled* splits out the allocations the arena served
 * from a free list instead of the heap (always zero in heap mode).
 * Byte figures elsewhere in the profiler stay logical — peak/live
 * accounting is identical whichever allocator is active — so churn is
 * the one place allocator behaviour is visible.
 */
struct MemChurn
{
    uint64_t allocs = 0;         ///< Storage buffers acquired.
    uint64_t frees = 0;          ///< Storage buffers released.
    uint64_t recycledAllocs = 0; ///< Allocs served by arena reuse.
    uint64_t recycledBytes = 0;  ///< Logical bytes of those allocs.
    uint64_t cachedAllocs = 0;   ///< Structures reused from a cache.
    uint64_t cachedBytes = 0;    ///< Logical bytes of those reuses.

    /** Allocations that had to hit the heap. */
    uint64_t freshAllocs() const { return allocs - recycledAllocs; }

    /** Folds another aggregate into this one. */
    void
    merge(const MemChurn &other)
    {
        allocs += other.allocs;
        frees += other.frees;
        recycledAllocs += other.recycledAllocs;
        recycledBytes += other.recycledBytes;
        cachedAllocs += other.cachedAllocs;
        cachedBytes += other.cachedBytes;
    }
};

/** Zero-fraction measurement of one symbolic/neural stage (Fig. 5). */
struct SparsityRecord
{
    std::string stage;      ///< Stage label, e.g. "pmf_to_vsa/color".
    Phase phase;            ///< Phase the stage belongs to.
    uint64_t zeros = 0;     ///< Zero elements observed.
    uint64_t total = 0;     ///< Total elements observed.

    /** Fraction of zero elements in [0, 1]. */
    double
    ratio() const
    {
        return total ? static_cast<double>(zeros) /
                       static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * The profiler. One instance per characterization run; a process-global
 * instance is available through globalProfiler() and is the default
 * sink for all instrumented operations.
 *
 * Thread-safety model (designed for the util::ThreadPool runtime):
 *
 *  - The thread that constructed (or last reset()) the profiler is its
 *    *owner*. Owner-thread recordOp calls apply directly to the
 *    aggregates under a mutex that is uncontended in single-threaded
 *    runs, so the serial hot path is unchanged in cost and ordering.
 *  - recordOp from any other thread appends to a lock-free
 *    thread-local event buffer instead. Buffers merge into the global
 *    aggregates at sync points — the end of every ThreadPool parallel
 *    region (via the pool's sync hook) and whenever a buffer fills —
 *    taking the mutex only for the merge. FLOP/byte/invocation
 *    attribution is therefore exact and scheduling-independent.
 *  - Phase regions (pushPhase/popPhase) are owner-only: workers read
 *    the owner's current phase/region, which is stable while the
 *    owner is blocked inside a parallel region.
 *  - Query methods take the mutex; call them outside parallel
 *    regions. Threads not managed by the pool must call
 *    flushThisThread() before their recorded ops become visible.
 */
class Profiler
{
  public:
    Profiler() { reset(); }

    /** Deep copy of the aggregates; the copy is owned by the caller. */
    Profiler(const Profiler &other);

    /** @copydoc Profiler(const Profiler &) */
    Profiler &operator=(const Profiler &other);

    /** Clears all recorded state, including memory peaks. */
    void reset();

    /**
     * Enables or disables recording. While disabled, recordOp and the
     * memory hooks become no-ops (phase scopes still track).
     */
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /** Whether recording is active. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Enters a phase region. Ops recorded until the matching popPhase
     * are attributed to @p phase and to the region label @p region.
     * Regions nest; the innermost label wins.
     */
    void pushPhase(Phase phase, std::string region);

    /** Leaves the innermost phase region. */
    void popPhase();

    /** Phase ops are currently attributed to. */
    Phase currentPhase() const;

    /** Innermost region label, empty at top level. */
    const std::string &currentRegion() const;

    /**
     * Records one completed operation.
     *
     * @param name Operator name (stable across invocations).
     * @param category Taxonomy category.
     * @param seconds Measured wall time of this invocation.
     * @param flops Arithmetic operations performed.
     * @param bytes_read Bytes read from inputs.
     * @param bytes_written Bytes written to outputs.
     */
    void recordOp(std::string_view name, OpCategory category,
                  double seconds, double flops, double bytes_read,
                  double bytes_written);

    /**
     * Notes a tensor allocation of @p bytes (logical tensor size, not
     * allocator capacity). @p recycled marks buffers the arena served
     * from a free list rather than the heap; it affects only the churn
     * counters, never the live/peak byte accounting.
     */
    void recordAlloc(uint64_t bytes, bool recycled = false);

    /** Notes a tensor deallocation of @p bytes. */
    void recordFree(uint64_t bytes);

    /**
     * Notes the reuse of @p bytes of precomputed structure served
     * from a cache instead of being rebuilt. Touches only the churn
     * counters (cachedAllocs/cachedBytes) — never live or peak bytes,
     * which describe what THIS run allocated (Fig. 3b stays honest).
     */
    void recordCachedAlloc(uint64_t bytes);

    /** Live tensor bytes right now. */
    uint64_t
    currentBytes() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return currentBytes_;
    }

    /** High-water mark of live tensor bytes. */
    uint64_t
    peakBytes() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return peakBytes_;
    }

    /** High-water mark reached while the given phase was active. */
    uint64_t peakBytesIn(Phase phase) const;

    /** Bytes allocated while the given phase was active. */
    uint64_t allocatedBytesIn(Phase phase) const;

    /** Allocation churn over the whole run. */
    MemChurn memChurn() const;

    /** Allocation churn while the given phase was active. */
    MemChurn memChurnIn(Phase phase) const;

    /**
     * Records a sparsity observation for a named stage. Repeated calls
     * with the same stage accumulate.
     */
    void recordSparsity(std::string_view stage, uint64_t zeros,
                        uint64_t total);

    /** Aggregate over everything recorded. */
    OpStats totals() const;

    /** Aggregate over one phase. */
    OpStats phaseTotals(Phase phase) const;

    /** Aggregate over one category within one phase. */
    OpStats categoryTotals(Phase phase, OpCategory category) const;

    /** All named-op aggregates, sorted by descending runtime. */
    std::vector<NamedOpStats> opsByTime() const;

    /** Named-op aggregates for one phase, sorted by descending time. */
    std::vector<NamedOpStats> opsByTime(Phase phase) const;

    /** All named-op aggregates for one region label. */
    std::vector<NamedOpStats> opsInRegion(const std::string &region) const;

    /** Aggregate over one region label. */
    OpStats regionTotals(const std::string &region) const;

    /** All region labels seen, in first-use order. */
    const std::vector<std::string> &regions() const { return regionOrder_; }

    /** All sparsity records, in first-use order of their stage labels. */
    std::vector<SparsityRecord> sparsityRecords() const;

    /**
     * Returns the profiler default-constructed ops report to: the
     * calling thread's target when one is installed (see
     * ThreadTargetScope), else the process-global instance. The
     * serving runtime gives each request-execution thread its own
     * target so concurrent requests record disjoint op streams; all
     * pre-existing single-profiler code paths see the process-global
     * instance unchanged.
     */
    static Profiler &global();

    /** The process-global instance, ignoring any thread target. */
    static Profiler &processGlobal();

    /**
     * RAII thread-local profiler redirection. While alive, every
     * globalProfiler() lookup *on the calling thread* resolves to
     * the given profiler, so all default-instrumented ops (tensor
     * kernels, phase scopes, allocation hooks) issued by this thread
     * land there. Scopes nest; each restores the previous target.
     *
     * The redirected thread should execute its kernels inline
     * (ThreadPool::SerialScope): pool worker threads resolve their
     * own targets, so ops dispatched to the pool would bypass the
     * caller's redirection.
     */
    class ThreadTargetScope
    {
      public:
        explicit ThreadTargetScope(Profiler &target);
        ~ThreadTargetScope();

        ThreadTargetScope(const ThreadTargetScope &) = delete;
        ThreadTargetScope &operator=(const ThreadTargetScope &) =
            delete;

      private:
        Profiler *prev_;
    };

    /**
     * Merges every op event buffered by the calling thread into its
     * target profiler(s). The ThreadPool sync hook calls this at the
     * end of each parallel region; threads outside the pool that
     * record ops must call it themselves before exiting.
     */
    static void flushThisThread();

  private:
    struct Key
    {
        Phase phase;
        OpCategory category;
        std::string region;
        std::string name;

        bool
        operator<(const Key &other) const
        {
            if (phase != other.phase)
                return phase < other.phase;
            if (category != other.category)
                return category < other.category;
            if (region != other.region)
                return region < other.region;
            return name < other.name;
        }
    };

    struct PhaseFrame
    {
        Phase phase;
        std::string region;
    };

    /** Applies one op event to the aggregates; mu_ must be held. */
    void applyOpLocked(Phase phase, OpCategory category,
                       const std::string &region,
                       const std::string &name, double seconds,
                       double flops, double bytes_read,
                       double bytes_written);

    std::atomic<bool> enabled_{true};
    /** Thread whose recordOp calls bypass the event buffer. */
    std::thread::id owner_;
    /** Guards every aggregate below; uncontended in serial runs. */
    mutable std::mutex mu_;
    std::vector<PhaseFrame> phaseStack_;
    std::map<Key, OpStats> ops_;
    OpStats phaseTotals_[numPhases];
    OpStats categoryTotals_[numPhases][numOpCategories];

    uint64_t currentBytes_ = 0;
    uint64_t peakBytes_ = 0;
    uint64_t phasePeakBytes_[numPhases] = {};
    uint64_t phaseAllocBytes_[numPhases] = {};
    MemChurn churn_;
    MemChurn phaseChurn_[numPhases];

    std::map<std::string, SparsityRecord> sparsity_;
    std::vector<std::string> sparsityOrder_;
    std::vector<std::string> regionOrder_;
};

/** Shorthand for Profiler::global(). */
inline Profiler &
globalProfiler()
{
    return Profiler::global();
}

/**
 * RAII phase region. Construct to enter a neural/symbolic region of a
 * workload; destruction leaves it.
 */
class PhaseScope
{
  public:
    PhaseScope(Phase phase, std::string region,
               Profiler &profiler = globalProfiler())
        : profiler_(profiler)
    {
        profiler_.pushPhase(phase, std::move(region));
    }

    ~PhaseScope() { profiler_.popPhase(); }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    Profiler &profiler_;
};

/**
 * RAII op timer. Times the enclosed scope and records it on destruction.
 * FLOP/byte counters may be set after construction, once the op knows
 * its sizes.
 */
class ScopedOp
{
  public:
    ScopedOp(std::string_view name, OpCategory category,
             Profiler &profiler = globalProfiler())
        : profiler_(profiler), name_(name), category_(category)
    {}

    ~ScopedOp()
    {
        profiler_.recordOp(name_, category_, timer_.elapsed(), flops_,
                           bytesRead_, bytesWritten_);
    }

    ScopedOp(const ScopedOp &) = delete;
    ScopedOp &operator=(const ScopedOp &) = delete;

    /** Sets the arithmetic-op count of this invocation. */
    void setFlops(double flops) { flops_ = flops; }

    /** Sets bytes read from inputs. */
    void setBytesRead(double bytes) { bytesRead_ = bytes; }

    /** Sets bytes written to outputs. */
    void setBytesWritten(double bytes) { bytesWritten_ = bytes; }

  private:
    Profiler &profiler_;
    std::string name_;
    OpCategory category_;
    util::WallTimer timer_;
    double flops_ = 0.0;
    double bytesRead_ = 0.0;
    double bytesWritten_ = 0.0;
};

} // namespace nsbench::core

#endif // NSBENCH_CORE_PROFILER_HH
