#include "core/report.hh"

#include "util/format.hh"

namespace nsbench::core
{

using util::fixedStr;
using util::humanBytes;
using util::humanCount;
using util::humanSeconds;
using util::percentStr;
using util::Table;

PhaseSplit
phaseSplit(const Profiler &profiler)
{
    PhaseSplit split;
    split.neuralSeconds = profiler.phaseTotals(Phase::Neural).seconds;
    split.symbolicSeconds =
        profiler.phaseTotals(Phase::Symbolic).seconds;
    split.untaggedSeconds =
        profiler.phaseTotals(Phase::Untagged).seconds;
    return split;
}

Table
phaseBreakdownTable(const Profiler &profiler)
{
    Table table({"phase", "time", "share", "invocations", "flops",
                 "bytes"});
    double total = profiler.totals().seconds;
    for (Phase phase :
         {Phase::Neural, Phase::Symbolic, Phase::Untagged}) {
        OpStats s = profiler.phaseTotals(phase);
        if (s.invocations == 0)
            continue;
        table.addRow({std::string(phaseName(phase)),
                      humanSeconds(s.seconds),
                      percentStr(total > 0 ? s.seconds / total : 0),
                      std::to_string(s.invocations),
                      humanCount(s.flops, "FLOP"),
                      humanBytes(static_cast<uint64_t>(s.bytes()))});
    }
    return table;
}

Table
categoryBreakdownTable(const Profiler &profiler, Phase phase)
{
    Table table({"category", "time", "share", "invocations",
                 "op-intensity"});
    double phase_total = profiler.phaseTotals(phase).seconds;
    for (OpCategory category : allOpCategories) {
        OpStats s = profiler.categoryTotals(phase, category);
        if (s.invocations == 0)
            continue;
        table.addRow(
            {std::string(opCategoryName(category)),
             humanSeconds(s.seconds),
             percentStr(phase_total > 0 ? s.seconds / phase_total : 0),
             std::to_string(s.invocations),
             fixedStr(s.opIntensity(), 3)});
    }
    return table;
}

Table
topOpsTable(const Profiler &profiler, size_t n)
{
    Table table({"op", "phase", "category", "time", "invocations",
                 "flops", "bytes"});
    auto ops = profiler.opsByTime();
    for (size_t i = 0; i < ops.size() && i < n; i++) {
        const auto &op = ops[i];
        table.addRow(
            {op.name, std::string(phaseName(op.phase)),
             std::string(opCategoryName(op.category)),
             humanSeconds(op.stats.seconds),
             std::to_string(op.stats.invocations),
             humanCount(op.stats.flops, "FLOP"),
             humanBytes(static_cast<uint64_t>(op.stats.bytes()))});
    }
    return table;
}

Table
memoryTable(const Profiler &profiler)
{
    Table table({"phase", "peak-live", "allocated", "allocs",
                 "fresh", "recycled", "recycled-bytes", "cached",
                 "cached-bytes"});
    for (Phase phase :
         {Phase::Neural, Phase::Symbolic, Phase::Untagged}) {
        uint64_t peak = profiler.peakBytesIn(phase);
        uint64_t alloc = profiler.allocatedBytesIn(phase);
        MemChurn churn = profiler.memChurnIn(phase);
        if (peak == 0 && alloc == 0 && churn.allocs == 0 &&
            churn.cachedAllocs == 0)
            continue;
        table.addRow({std::string(phaseName(phase)), humanBytes(peak),
                      humanBytes(alloc),
                      std::to_string(churn.allocs),
                      std::to_string(churn.freshAllocs()),
                      std::to_string(churn.recycledAllocs),
                      humanBytes(churn.recycledBytes),
                      std::to_string(churn.cachedAllocs),
                      humanBytes(churn.cachedBytes)});
    }
    return table;
}

Table
sparsityTable(const Profiler &profiler)
{
    Table table({"stage", "phase", "elements", "zeros", "sparsity"});
    for (const auto &rec : profiler.sparsityRecords()) {
        table.addRow({rec.stage, std::string(phaseName(rec.phase)),
                      std::to_string(rec.total),
                      std::to_string(rec.zeros),
                      percentStr(rec.ratio(), 2)});
    }
    return table;
}

Table
regionTable(const Profiler &profiler)
{
    Table table({"region", "time", "share", "invocations"});
    double total = profiler.totals().seconds;
    for (const auto &region : profiler.regions()) {
        OpStats s = profiler.regionTotals(region);
        if (s.invocations == 0)
            continue;
        table.addRow({region, humanSeconds(s.seconds),
                      percentStr(total > 0 ? s.seconds / total : 0),
                      std::to_string(s.invocations)});
    }
    return table;
}

} // namespace nsbench::core
