/**
 * @file
 * The workload interface and registry.
 *
 * Each of the paper's seven representative models implements Workload;
 * the benches iterate the registry so every figure covers all of them
 * uniformly.
 */

#ifndef NSBENCH_CORE_WORKLOAD_HH
#define NSBENCH_CORE_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/opgraph.hh"
#include "core/profiler.hh"
#include "core/taxonomy.hh"

namespace nsbench::core
{

/**
 * Mutable per-episode state handed between pipeline stages.
 *
 * One EpisodeState corresponds to one full inference episode (one
 * run() invocation worth of work). The pipeline executor fills in
 * seed/index, calls runStage(0..stageCount()-1, state) in order, and
 * reads the score after the final stage. Staged workloads thread
 * intermediate results (e.g. perception beliefs) through @c scratch;
 * the type behind the shared_ptr is private to the workload.
 */
struct EpisodeState
{
    uint64_t seed = 0;             ///< Episode seed (reseedEpisodes arg).
    int index = 0;                 ///< Episode position, submission order.
    double score = 0.0;            ///< Filled by the final stage.
    std::shared_ptr<void> scratch; ///< Inter-stage handoff payload.
};

/** Static description of one pipeline stage. */
struct StageSpec
{
    std::string name;                   ///< Stage label, e.g. "perceive".
    Phase phase = Phase::Untagged;      ///< Dominant phase of the stage.
};

/**
 * A runnable, profiled neuro-symbolic workload.
 *
 * Implementations must tag their neural and symbolic sections with
 * PhaseScope so the profiler can attribute every operation, and must
 * report a deterministic result given the same seed.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name, e.g. "NVSA". */
    virtual std::string name() const = 0;

    /** Paradigm per the paper's Tab. III. */
    virtual Paradigm paradigm() const = 0;

    /** One-line task description for reports. */
    virtual std::string taskDescription() const = 0;

    /**
     * Builds the model and its synthetic dataset. Allocation done here
     * counts toward the storage footprint, not the runtime working set.
     */
    virtual void setUp(uint64_t seed) = 0;

    /**
     * Runs one profiled end-to-end inference episode. All tensor and
     * symbolic ops report to the global profiler.
     *
     * @return A task-quality score in [0, 1] (e.g. accuracy over the
     *         episode) so integration tests can check the model works,
     *         not just that it spends time.
     */
    virtual double run() = 0;

    /**
     * Re-seeds the per-run episode stream (data generators, episode
     * RNGs) without rebuilding the model. After reseedEpisodes(s),
     * run() must return a score that is a pure function of
     * (model, s) — independent of how many runs the instance served
     * before. The serving runtime calls this once per request so
     * long-lived replicas amortize setUp() across requests while
     * keeping the determinism contract: a request with a fixed seed
     * scores identically on every replica, at every batch size, in
     * every arrival order.
     *
     * The default rebuilds everything via setUp(seed) — always
     * correct, never cheap; workloads override it to reset only
     * their episode state.
     */
    virtual void reseedEpisodes(uint64_t seed) { setUp(seed); }

    /**
     * True when run()'s score depends on the episode seed. Workloads
     * that evaluate a fixed benchmark built at setUp() time (so
     * every run is the identical computation) return false, which
     * lets the serving batcher coalesce *all* their concurrent
     * requests into shared executions rather than only same-seed
     * ones.
     */
    virtual bool seedSensitive() const { return true; }

    /**
     * Number of pipeline stages this workload can be split into.
     *
     * The default is one fused stage, which keeps every workload
     * correct unchanged: runStage(0) simply calls run(). Staged
     * workloads override this together with stageSpec()/runStage()
     * to expose their neural/symbolic phases as separate stages the
     * exec::PipelineExecutor can overlap across episodes.
     */
    virtual int stageCount() const { return 1; }

    /** Static description of stage @p stage in [0, stageCount()). */
    virtual StageSpec
    stageSpec(int stage) const
    {
        (void)stage;
        return StageSpec{name(), Phase::Untagged};
    }

    /**
     * Runs one pipeline stage of one episode.
     *
     * Contract (what makes pipelined scores byte-identical to serial
     * run() loops):
     *  - the caller invokes reseedEpisodes(state.seed) immediately
     *    before runStage(0, state) for each episode, and calls the
     *    stages of one episode strictly in order;
     *  - stage 0 must consume *all* per-episode RNG (data generators,
     *    episode streams) so that later stages are pure functions of
     *    @p state plus immutable model structures — the executor runs
     *    stage s of episode i concurrently with stage 0 of episode
     *    i+1, so any mutable member may only be touched by a single
     *    stage index;
     *  - the final stage writes state.score.
     *
     * The default delegates to run(), so unstaged workloads behave
     * exactly as before.
     */
    virtual void
    runStage(int stage, EpisodeState &state)
    {
        (void)stage;
        state.score = run();
    }

    /**
     * Coarse stage dataflow for Fig. 4. Stage durations are zero;
     * benches fill them from region measurements.
     */
    virtual OpGraph opGraph() const = 0;

    /** Bytes of persistent model state (weights, codebooks). */
    virtual uint64_t storageBytes() const = 0;
};

/** Factory signature for registry entries. */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/**
 * Global name -> factory table for the seven workloads. The workloads
 * library registers its models at static-init time through the
 * RegisterWorkload helper.
 */
class WorkloadRegistry
{
  public:
    /** Registers a factory under a unique name. */
    void add(const std::string &name, WorkloadFactory factory);

    /** Instantiates a workload by name; fatal() on unknown names. */
    std::unique_ptr<Workload> create(const std::string &name) const;

    /** Names of all registered workloads, in registration order. */
    std::vector<std::string> names() const;

    /** True when a factory exists under the given name. */
    bool contains(const std::string &name) const;

    /** The process-global registry. */
    static WorkloadRegistry &global();

  private:
    std::vector<std::pair<std::string, WorkloadFactory>> entries_;
};

/**
 * Static-init registration helper:
 * @code
 * static RegisterWorkload reg("NVSA", [] { return
 *     std::make_unique<NvsaWorkload>(); });
 * @endcode
 */
struct RegisterWorkload
{
    RegisterWorkload(const std::string &name, WorkloadFactory factory)
    {
        WorkloadRegistry::global().add(name, std::move(factory));
    }
};

} // namespace nsbench::core

#endif // NSBENCH_CORE_WORKLOAD_HH
