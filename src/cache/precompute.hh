/**
 * @file
 * Seed-invariant symbolic precompute cache.
 *
 * Workloads rebuild expensive derived structures on every setUp()
 * that are pure functions of (config, model seed) — or of the config
 * alone: NVSA/PrAE codebook layouts, the LNN grounded KB index, LTN
 * model bundles, NLM predicate tensors. When the serving runtime
 * pre-warms one replica per worker, or a sweep re-instantiates a
 * workload per point, each replica re-derives the identical bytes.
 * This cache builds such a structure once per key and hands out
 * shared read-only references.
 *
 * Cached structures live OUTSIDE the per-run logical-liveness
 * accounting (Fig. 3b peaks are unchanged); hits are instead charged
 * to the profiler's MemChurn as "cached" traffic so reuse stays
 * visible in the memory report, and the cache's resident bytes are
 * reported separately.
 */

#ifndef NSBENCH_CACHE_PRECOMPUTE_HH
#define NSBENCH_CACHE_PRECOMPUTE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

namespace nsbench::cache
{

/** A builder's product: the structure plus its resident footprint. */
template <typename T> struct Sized {
    std::shared_ptr<const T> value;
    uint64_t bytes = 0;
};

/**
 * A lease on a cached (or freshly built) structure. Holding the
 * handle keeps the structure alive even if the cache evicts it.
 */
template <typename T> struct CacheHandle {
    std::shared_ptr<const T> value;
    uint64_t bytes = 0;
    /** True when served from cache rather than built by this call. */
    bool hit = false;

    const T &operator*() const { return *value; }
    const T *operator->() const { return value.get(); }
    explicit operator bool() const { return value != nullptr; }
};

/** Point-in-time counters for the precompute cache. */
struct PrecomputeStats {
    uint64_t hits = 0;
    uint64_t builds = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t residentBytes = 0;
    uint64_t entries = 0;
};

/**
 * Byte-bounded, build-once key/value cache. Concurrent requests for
 * the same missing key block behind a single builder invocation
 * (single-flight at the structure level); builds run outside the
 * cache lock so unrelated keys never serialise.
 */
class PrecomputeCache
{
  public:
    explicit PrecomputeCache(uint64_t max_bytes = 256ull << 20);
    ~PrecomputeCache();

    /**
     * Returns the cached structure for @p key, building it with
     * @p builder on a miss. When the cache is disabled the builder
     * runs unconditionally and nothing is stored.
     *
     * Hits charge the structure's bytes to the current profiler
     * target's MemChurn (recordCachedAlloc).
     */
    template <typename T>
    CacheHandle<T>
    getOrBuild(const std::string &key,
               const std::function<Sized<T>()> &builder)
    {
        uint64_t bytes = 0;
        bool hit = false;
        std::shared_ptr<const void> value = getOrBuildErased(
            key,
            [&builder]() {
                Sized<T> built = builder();
                return std::pair<std::shared_ptr<const void>,
                                 uint64_t>(
                    std::static_pointer_cast<const void>(built.value),
                    built.bytes);
            },
            &bytes, &hit);
        CacheHandle<T> handle;
        handle.value = std::static_pointer_cast<const T>(value);
        handle.bytes = bytes;
        handle.hit = hit;
        return handle;
    }

    /** Shrinks (or grows) the byte budget, evicting LRU as needed. */
    void setMaxBytes(uint64_t max_bytes);

    PrecomputeStats stats() const;

    /** Drops every entry (outstanding handles stay valid). */
    void clear();

    /** The process-wide instance used by the workloads. */
    static PrecomputeCache &global();

  private:
    using ErasedBuild = std::function<
        std::pair<std::shared_ptr<const void>, uint64_t>()>;

    std::shared_ptr<const void>
    getOrBuildErased(const std::string &key,
                     const ErasedBuild &build, uint64_t *bytes,
                     bool *hit);

    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace nsbench::cache

#endif // NSBENCH_CACHE_PRECOMPUTE_HH
