#include "cache/precompute.hh"

#include <condition_variable>
#include <list>
#include <map>
#include <mutex>

#include <stdexcept>

#include "cache/config.hh"
#include "core/profiler.hh"
#include "util/failpoint.hh"

namespace nsbench::cache
{

namespace
{

/** One keyed structure; waiters hold the shared_ptr so eviction or
 *  clear() can never strand a thread blocked on an in-flight build. */
struct Slot {
    std::shared_ptr<const void> value;
    uint64_t bytes = 0;
    bool ready = false;
    bool failed = false;
};

} // namespace

struct PrecomputeCache::Impl {
    mutable std::mutex mu;
    std::condition_variable cv;
    uint64_t maxBytes = 0;
    uint64_t residentBytes = 0;
    std::map<std::string, std::shared_ptr<Slot>> slots;
    /** Ready keys only; front = most recently used. */
    std::list<std::string> lru;
    std::map<std::string, std::list<std::string>::iterator> lruIndex;
    uint64_t hits = 0;
    uint64_t builds = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;

    /** Evicts ready LRU entries until the budget holds (mu held). */
    void
    enforceBudget()
    {
        while (residentBytes > maxBytes && !lru.empty()) {
            const std::string victim = lru.back();
            auto it = slots.find(victim);
            if (it != slots.end()) {
                residentBytes -= it->second->bytes;
                slots.erase(it);
            }
            lruIndex.erase(victim);
            lru.pop_back();
            evictions++;
        }
    }
};

PrecomputeCache::PrecomputeCache(uint64_t max_bytes)
    : impl_(new Impl)
{
    impl_->maxBytes = max_bytes == 0 ? 1 : max_bytes;
}

PrecomputeCache::~PrecomputeCache() = default;

std::shared_ptr<const void>
PrecomputeCache::getOrBuildErased(const std::string &key,
                                  const ErasedBuild &build,
                                  uint64_t *bytes, bool *hit)
{
    if (!enabled()) {
        auto built = build();
        *bytes = built.second;
        *hit = false;
        return built.first;
    }

    Impl &impl = *impl_;
    std::unique_lock<std::mutex> lock(impl.mu);
    for (;;) {
        auto it = impl.slots.find(key);
        if (it != impl.slots.end()) {
            std::shared_ptr<Slot> slot = it->second;
            impl.cv.wait(lock, [&slot] {
                return slot->ready || slot->failed;
            });
            if (slot->failed) {
                // The builder threw; if the dead slot is still
                // mapped, unmap it and retry as the new builder.
                auto again = impl.slots.find(key);
                if (again != impl.slots.end() &&
                    again->second == slot)
                    impl.slots.erase(again);
                continue;
            }
            auto lru_it = impl.lruIndex.find(key);
            if (lru_it != impl.lruIndex.end())
                impl.lru.splice(impl.lru.begin(), impl.lru,
                                lru_it->second);
            impl.hits++;
            *bytes = slot->bytes;
            *hit = true;
            lock.unlock();
            // Reuse shows up as "cached" churn, never as live bytes:
            // the structure was not allocated by this run.
            core::globalProfiler().recordCachedAlloc(slot->bytes);
            return slot->value;
        }

        auto slot = std::make_shared<Slot>();
        impl.slots[key] = slot;
        impl.builds++;
        lock.unlock();

        std::pair<std::shared_ptr<const void>, uint64_t> built;
        try {
            // Chaos site: the builder dies mid-build. The failed-slot
            // protocol below must wake the waiters and let the next
            // caller retry as the new builder.
            if (NSBENCH_FAILPOINT(
                    util::failpoints::sites::kPrecomputeBuild))
                throw std::runtime_error(
                    "injected precompute build fault");
            built = build();
        } catch (...) {
            lock.lock();
            slot->failed = true;
            auto again = impl.slots.find(key);
            if (again != impl.slots.end() && again->second == slot)
                impl.slots.erase(again);
            impl.cv.notify_all();
            throw;
        }

        lock.lock();
        slot->value = built.first;
        slot->bytes = built.second;
        slot->ready = true;
        impl.residentBytes += slot->bytes;
        impl.lru.push_front(key);
        impl.lruIndex[key] = impl.lru.begin();
        impl.insertions++;
        impl.enforceBudget();
        impl.cv.notify_all();
        *bytes = slot->bytes;
        *hit = false;
        return slot->value;
    }
}

void
PrecomputeCache::setMaxBytes(uint64_t max_bytes)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->maxBytes = max_bytes == 0 ? 1 : max_bytes;
    impl_->enforceBudget();
}

PrecomputeStats
PrecomputeCache::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    PrecomputeStats out;
    out.hits = impl_->hits;
    out.builds = impl_->builds;
    out.insertions = impl_->insertions;
    out.evictions = impl_->evictions;
    out.residentBytes = impl_->residentBytes;
    out.entries = impl_->lru.size();
    return out;
}

void
PrecomputeCache::clear()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    // Only drop settled entries; in-flight builds finish normally.
    for (auto it = impl_->slots.begin(); it != impl_->slots.end();) {
        if (it->second->ready)
            it = impl_->slots.erase(it);
        else
            ++it;
    }
    impl_->lru.clear();
    impl_->lruIndex.clear();
    impl_->residentBytes = 0;
}

PrecomputeCache &
PrecomputeCache::global()
{
    static PrecomputeCache instance;
    return instance;
}

} // namespace nsbench::cache
