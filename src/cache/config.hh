/**
 * @file
 * Process-wide memoization switch.
 *
 * Both cache levels — the serve-side result cache and the symbolic
 * precompute cache — default to the NSBENCH_CACHE environment
 * variable and can be overridden programmatically (the CLI's --cache
 * flag). Caching is opt-in: unset means off, so every pre-existing
 * run, golden and figure is produced by the exact historical code
 * path.
 */

#ifndef NSBENCH_CACHE_CONFIG_HH
#define NSBENCH_CACHE_CONFIG_HH

namespace nsbench::cache
{

/**
 * Whether memoization is enabled: the programmatic override when one
 * was set, else NSBENCH_CACHE (on/1/true enables, off/0/false or
 * unset disables, anything else is fatal).
 */
bool enabled();

/** Forces caching on or off for this process (--cache). */
void setEnabled(bool enabled);

/** Drops the override; enabled() falls back to the environment. */
void resetEnabled();

} // namespace nsbench::cache

#endif // NSBENCH_CACHE_CONFIG_HH
