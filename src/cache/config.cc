#include "cache/config.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/logging.hh"

namespace nsbench::cache
{

namespace
{

constexpr int kUnset = -1;

std::atomic<int> gOverride{kUnset};

bool
resolveDefault()
{
    // Mirrors tensor::alloc's NSBENCH_ARENA handling: unset or
    // off-ish values mean the historical uncached behaviour.
    const char *env = std::getenv("NSBENCH_CACHE");
    if (env == nullptr || env[0] == '\0')
        return false;
    if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0 ||
        std::strcmp(env, "true") == 0)
        return true;
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "false") == 0)
        return false;
    util::fatal(std::string("NSBENCH_CACHE must be one of "
                            "on/1/true/off/0/false, got '") +
                env + "'");
}

} // namespace

bool
enabled()
{
    int forced = gOverride.load(std::memory_order_relaxed);
    if (forced != kUnset)
        return forced != 0;
    static const bool resolved = resolveDefault();
    return resolved;
}

void
setEnabled(bool enabled)
{
    gOverride.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void
resetEnabled()
{
    gOverride.store(kUnset, std::memory_order_relaxed);
}

} // namespace nsbench::cache
