/**
 * @file
 * Single-flight request coalescing.
 *
 * When several requests miss the result cache on the same key at the
 * same time, only the first (the leader) should execute; the rest
 * (followers) park their completion callbacks here and are fanned the
 * leader's result when it lands. This is the cross-request analogue of
 * the batcher's same-seed coalescing: the batcher dedupes within one
 * batch window, single-flight dedupes across the whole in-flight
 * lifetime of a key.
 */

#ifndef NSBENCH_CACHE_SINGLE_FLIGHT_HH
#define NSBENCH_CACHE_SINGLE_FLIGHT_HH

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace nsbench::cache
{

/**
 * Tracks in-flight cache keys and parks waiters behind the leader.
 *
 * @tparam Waiter per-request state fanned back on completion (the
 *         serve layer stores the request's callback plus timestamps).
 */
template <typename Waiter> class SingleFlight
{
  public:
    enum class Role { Leader, Follower };

    /**
     * Joins the flight for @p key. The first caller becomes the
     * leader and must eventually call finish(); its @p waiter is NOT
     * stored (the leader delivers its own result). Later callers are
     * followers: their waiters are parked until finish().
     */
    Role
    join(const std::string &key, Waiter waiter)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto [it, inserted] = flights_.try_emplace(key);
        if (inserted)
            return Role::Leader;
        it->second.push_back(std::move(waiter));
        return Role::Follower;
    }

    /**
     * Ends the flight for @p key, returning every parked follower.
     * The leader calls this exactly once, whether it completed or
     * failed; the caller decides what to deliver to the waiters.
     */
    std::vector<Waiter>
    finish(const std::string &key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = flights_.find(key);
        if (it == flights_.end())
            return {};
        std::vector<Waiter> waiters = std::move(it->second);
        flights_.erase(it);
        return waiters;
    }

    /** Number of keys currently in flight (for tests). */
    size_t
    inFlight() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return flights_.size();
    }

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::vector<Waiter>> flights_;
};

} // namespace nsbench::cache

#endif // NSBENCH_CACHE_SINGLE_FLIGHT_HH
