/**
 * @file
 * Sharded request-result cache for the serving runtime.
 *
 * A workload score is a pure function of (workload name, model seed,
 * episode seed) — the determinism contract behind
 * Workload::reseedEpisodes — so a completed request's score can be
 * replayed for any later request with the same key without touching a
 * replica. Seed-insensitive workloads (seedSensitive() == false) map
 * every episode seed onto one canonical entry.
 *
 * The cache is byte-bounded, not entry-bounded: each entry is charged
 * an approximate footprint (key bytes + bookkeeping) and shards evict
 * LRU-first when their slice of the budget overflows. Sharding keeps
 * the hot submit() path from serialising on one mutex.
 */

#ifndef NSBENCH_CACHE_RESULT_CACHE_HH
#define NSBENCH_CACHE_RESULT_CACHE_HH

#include <cstdint>
#include <deque>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace nsbench::cache
{

struct ResultCacheOptions {
    /** Total byte budget across all shards. */
    uint64_t maxBytes = 64ull << 20;
    /** Independent LRU shards (keys hash onto one shard). */
    size_t shards = 8;
};

/** Point-in-time counters aggregated over all shards. */
struct ResultCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t bytes = 0;
    uint64_t entries = 0;
};

class ResultCache
{
  public:
    explicit ResultCache(ResultCacheOptions options = {});

    /** Canonical cache key for a request. */
    static std::string keyString(const std::string &workload,
                                 uint64_t model_seed,
                                 uint64_t episode_seed);

    /** Approximate resident footprint charged for one entry. */
    static uint64_t entryCost(const std::string &key);

    /**
     * Looks @p key up, refreshing its recency on a hit.
     * @return true and fills @p score on a hit; false on a miss.
     */
    bool lookup(const std::string &key, double *score);

    /**
     * Inserts (or refreshes) @p key -> @p score, evicting LRU entries
     * from the shard until it fits its byte budget.
     * @return number of entries evicted to make room.
     */
    uint64_t insert(const std::string &key, double score);

    ResultCacheStats stats() const;

    void clear();

  private:
    struct Shard {
        mutable std::mutex mu;
        /** Front = most recently used. */
        std::list<std::pair<std::string, double>> lru;
        std::unordered_map<
            std::string,
            std::list<std::pair<std::string, double>>::iterator>
            index;
        uint64_t bytes = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
    };

    Shard &shardFor(const std::string &key);

    ResultCacheOptions options_;
    uint64_t bytesPerShard_;
    /** deque: Shard holds a mutex and must never move. */
    std::deque<Shard> shards_;
};

} // namespace nsbench::cache

#endif // NSBENCH_CACHE_RESULT_CACHE_HH
