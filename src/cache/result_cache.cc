#include "cache/result_cache.hh"

#include <algorithm>
#include <functional>

#include "util/failpoint.hh"

namespace nsbench::cache
{

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(options)
{
    if (options_.shards == 0)
        options_.shards = 1;
    if (options_.maxBytes == 0)
        options_.maxBytes = 1;
    bytesPerShard_ =
        std::max<uint64_t>(1, options_.maxBytes / options_.shards);
    shards_.resize(options_.shards);
}

std::string
ResultCache::keyString(const std::string &workload,
                       uint64_t model_seed, uint64_t episode_seed)
{
    return workload + "/m" + std::to_string(model_seed) + "/e" +
           std::to_string(episode_seed);
}

uint64_t
ResultCache::entryCost(const std::string &key)
{
    // Two copies of the key (LRU node + index), the score, list and
    // hash node overhead. Approximate but consistent, which is all a
    // byte budget needs.
    return 2 * key.size() + 64;
}

ResultCache::Shard &
ResultCache::shardFor(const std::string &key)
{
    size_t h = std::hash<std::string>{}(key);
    return shards_[h % shards_.size()];
}

bool
ResultCache::lookup(const std::string &key, double *score)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        shard.misses++;
        return false;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    shard.hits++;
    if (score != nullptr)
        *score = it->second->second;
    return true;
}

uint64_t
ResultCache::insert(const std::string &key, double score)
{
    // Chaos site: the insert is dropped on the floor, as if the shard
    // lost the write. Later lookups miss and recompute — correctness
    // never depends on an insert landing.
    if (NSBENCH_FAILPOINT(util::failpoints::sites::kResultInsert))
        return 0;
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        it->second->second = score;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return 0;
    }
    shard.lru.emplace_front(key, score);
    shard.index[key] = shard.lru.begin();
    shard.bytes += entryCost(key);
    shard.insertions++;

    uint64_t evicted = 0;
    while (shard.bytes > bytesPerShard_ && shard.lru.size() > 1) {
        const std::string &victim = shard.lru.back().first;
        shard.bytes -= entryCost(victim);
        shard.index.erase(victim);
        shard.lru.pop_back();
        shard.evictions++;
        evicted++;
    }
    return evicted;
}

ResultCacheStats
ResultCache::stats() const
{
    ResultCacheStats out;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        out.hits += shard.hits;
        out.misses += shard.misses;
        out.insertions += shard.insertions;
        out.evictions += shard.evictions;
        out.bytes += shard.bytes;
        out.entries += shard.lru.size();
    }
    return out;
}

void
ResultCache::clear()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.lru.clear();
        shard.index.clear();
        shard.bytes = 0;
    }
}

} // namespace nsbench::cache
