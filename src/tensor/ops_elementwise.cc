#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/ops.hh"
#include "tensor/ops_common.hh"

namespace nsbench::tensor
{

using detail::elemBytes;
using detail::ewBinary;
using detail::ewBinaryKernel;
using detail::ewUnary;
using detail::ewUnaryKernel;

namespace simd = nsbench::util::simd;

Tensor
add(const Tensor &a, const Tensor &b)
{
    return ewBinaryKernel("add", a, b, simd::add);
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    return ewBinaryKernel("sub", a, b, simd::sub);
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    return ewBinaryKernel("mul", a, b, simd::mul);
}

Tensor
div(const Tensor &a, const Tensor &b)
{
    return ewBinaryKernel("div", a, b, simd::div);
}

Tensor
minimum(const Tensor &a, const Tensor &b)
{
    return ewBinaryKernel("minimum", a, b, simd::minimum);
}

Tensor
maximum(const Tensor &a, const Tensor &b)
{
    return ewBinaryKernel("maximum", a, b, simd::maximum);
}

Tensor
addScalar(const Tensor &a, float s)
{
    return detail::ewScalarKernel("add_scalar", a, s,
                                  simd::addScalar);
}

Tensor
mulScalar(const Tensor &a, float s)
{
    return detail::ewScalarKernel("mul_scalar", a, s,
                                  simd::mulScalar);
}

Tensor
relu(const Tensor &a)
{
    return ewUnaryKernel("relu", a, simd::relu);
}

Tensor
sigmoid(const Tensor &a)
{
    return ewUnary(
        "sigmoid", a,
        [](float x) { return 1.0f / (1.0f + std::exp(-x)); }, 4.0);
}

Tensor
tanhOp(const Tensor &a)
{
    return ewUnary("tanh", a, [](float x) { return std::tanh(x); },
                   4.0);
}

Tensor
expOp(const Tensor &a)
{
    return ewUnary("exp", a, [](float x) { return std::exp(x); }, 2.0);
}

Tensor
logOp(const Tensor &a)
{
    return ewUnary("log", a, [](float x) { return std::log(x); }, 2.0);
}

Tensor
sqrtOp(const Tensor &a)
{
    return ewUnary("sqrt", a, [](float x) { return std::sqrt(x); },
                   2.0);
}

Tensor
neg(const Tensor &a)
{
    return ewUnaryKernel("neg", a, simd::negate);
}

Tensor
absOp(const Tensor &a)
{
    return ewUnaryKernel("abs", a, simd::absolute);
}

Tensor
sign(const Tensor &a)
{
    return ewUnary("sign", a, [](float x) {
        return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f);
    });
}

Tensor
clamp(const Tensor &a, float lo, float hi)
{
    core::ScopedOp op("clamp", core::OpCategory::VectorElementwise);
    Tensor out = Tensor::uninitialized(a.shape());
    auto pa = a.data();
    auto po = out.data();
    auto n = static_cast<int64_t>(pa.size());
    util::parallelFor(0, n, util::grainFor(1.0),
                      [&](int64_t l, int64_t h) {
                          simd::clampRange(pa.data() + l, lo, hi,
                                           po.data() + l, h - l);
                      });
    op.setFlops(static_cast<double>(n));
    op.setBytesRead(static_cast<double>(n) * elemBytes);
    op.setBytesWritten(static_cast<double>(n) * elemBytes);
    return out;
}

Tensor
powOp(const Tensor &a, float exponent)
{
    return ewUnary("pow", a, [exponent](float x) {
        return std::pow(x, exponent);
    }, 4.0);
}

float
sumAll(const Tensor &a)
{
    core::ScopedOp op("sum", core::OpCategory::VectorElementwise);
    auto data = a.data();
    auto count = static_cast<int64_t>(data.size());
    int64_t grain = nsbench::util::grainFor(1.0);
    std::vector<double> partials(
        static_cast<size_t>((count + grain - 1) / grain), 0.0);
    double acc = 0.0;
    // Chunked double-precision partial sums combined in chunk order:
    // the value depends only on the grain, not the thread count.
    detail::chunkedReduce(
        count, grain,
        [&](int64_t c, int64_t lo, int64_t hi) {
            partials[static_cast<size_t>(c)] =
                nsbench::util::simd::sumChunk(data.data() + lo,
                                              hi - lo);
        },
        [&](int64_t c) { acc += partials[static_cast<size_t>(c)]; });
    auto n = static_cast<double>(a.numel());
    op.setFlops(n);
    op.setBytesRead(n * elemBytes);
    op.setBytesWritten(elemBytes);
    return static_cast<float>(acc);
}

float
maxAll(const Tensor &a)
{
    util::panicIf(a.numel() == 0, "maxAll: empty tensor");
    core::ScopedOp op("max", core::OpCategory::VectorElementwise);
    auto data = a.data();
    auto count = static_cast<int64_t>(data.size());
    int64_t grain = nsbench::util::grainFor(1.0);
    std::vector<float> partials(
        static_cast<size_t>((count + grain - 1) / grain),
        -std::numeric_limits<float>::infinity());
    float best = data[0];
    detail::chunkedReduce(
        count, grain,
        [&](int64_t c, int64_t lo, int64_t hi) {
            partials[static_cast<size_t>(c)] =
                nsbench::util::simd::maxChunk(data.data() + lo,
                                              hi - lo);
        },
        [&](int64_t c) {
            best = std::max(best, partials[static_cast<size_t>(c)]);
        });
    auto n = static_cast<double>(a.numel());
    op.setFlops(n);
    op.setBytesRead(n * elemBytes);
    op.setBytesWritten(elemBytes);
    return best;
}

float
meanAll(const Tensor &a)
{
    util::panicIf(a.numel() == 0, "meanAll: empty tensor");
    return sumAll(a) / static_cast<float>(a.numel());
}

int64_t
argmaxAll(const Tensor &a)
{
    util::panicIf(a.numel() == 0, "argmaxAll: empty tensor");
    core::ScopedOp op("argmax", core::OpCategory::VectorElementwise);
    auto data = a.data();
    auto count = static_cast<int64_t>(data.size());
    int64_t grain = nsbench::util::grainFor(1.0);
    std::vector<int64_t> partials(
        static_cast<size_t>((count + grain - 1) / grain), 0);
    int64_t best = 0;
    // Per-chunk first-strict-maximum, combined in chunk order with a
    // strict comparison: exactly the serial earliest-argmax rule.
    detail::chunkedReduce(
        count, grain,
        [&](int64_t c, int64_t lo, int64_t hi) {
            partials[static_cast<size_t>(c)] =
                lo + nsbench::util::simd::argmaxChunk(
                         data.data() + lo, hi - lo);
        },
        [&](int64_t c) {
            int64_t b = partials[static_cast<size_t>(c)];
            if (data[static_cast<size_t>(b)] >
                data[static_cast<size_t>(best)]) {
                best = b;
            }
        });
    auto n = static_cast<double>(a.numel());
    op.setFlops(n);
    op.setBytesRead(n * elemBytes);
    op.setBytesWritten(elemBytes);
    return best;
}

namespace
{

/**
 * Shared frame for axis reductions: iterates outer x inner blocks
 * where the reduced axis has extent `axis_n` and stride `inner`.
 */
template <typename Fold>
Tensor
reduceAxis(const char *name, const Tensor &a, int64_t axis, float init,
           Fold fold, bool mean)
{
    auto rank = static_cast<int64_t>(a.dim());
    util::panicIf(axis < 0 || axis >= rank,
                  std::string(name) + ": axis out of range");

    core::ScopedOp op(name, core::OpCategory::VectorElementwise);

    Shape out_shape;
    for (int64_t d = 0; d < rank; d++) {
        if (d != axis)
            out_shape.push_back(a.shape()[static_cast<size_t>(d)]);
    }
    int64_t axis_n = a.shape()[static_cast<size_t>(axis)];
    int64_t inner = 1;
    for (int64_t d = axis + 1; d < rank; d++)
        inner *= a.shape()[static_cast<size_t>(d)];
    int64_t outer = a.numel() / std::max<int64_t>(axis_n * inner, 1);

    // Every output element is stored exactly once below.
    Tensor out = Tensor::uninitialized(out_shape);
    auto src = a.data();
    auto dst = out.data();
    // Each output element folds its own slice in serial order, so
    // splitting over output elements is bit-identical.
    util::parallelFor(
        0, outer * inner,
        util::grainFor(static_cast<double>(axis_n)),
        [&](int64_t lo, int64_t hi) {
            for (int64_t e = lo; e < hi; e++) {
                int64_t o = e / inner;
                int64_t i = e % inner;
                float acc = init;
                for (int64_t k = 0; k < axis_n; k++) {
                    acc = fold(acc,
                               src[static_cast<size_t>(
                                   (o * axis_n + k) * inner + i)]);
                }
                if (mean && axis_n > 0)
                    acc /= static_cast<float>(axis_n);
                dst[static_cast<size_t>(e)] = acc;
            }
        });

    auto n = static_cast<double>(a.numel());
    op.setFlops(n);
    op.setBytesRead(n * elemBytes);
    op.setBytesWritten(static_cast<double>(out.numel()) * elemBytes);
    return out;
}

} // namespace

Tensor
sumAxis(const Tensor &a, int64_t axis)
{
    return reduceAxis("sum_axis", a, axis, 0.0f,
                      [](float acc, float v) { return acc + v; },
                      false);
}

Tensor
maxAxis(const Tensor &a, int64_t axis)
{
    return reduceAxis(
        "max_axis", a, axis, -std::numeric_limits<float>::infinity(),
        [](float acc, float v) { return std::max(acc, v); }, false);
}

Tensor
meanAxis(const Tensor &a, int64_t axis)
{
    return reduceAxis("mean_axis", a, axis, 0.0f,
                      [](float acc, float v) { return acc + v; },
                      true);
}

namespace
{

/** Applies a row-wise transform over the last dimension. */
template <typename RowFn>
Tensor
lastDimTransform(const char *name, const Tensor &a, RowFn row_fn,
                 double flops_per_elem)
{
    util::panicIf(a.dim() == 0, std::string(name) + ": rank-0 tensor");
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    // Row transforms write every output element of every row.
    Tensor out = Tensor::uninitialized(a.shape());
    int64_t row = a.shape().back();
    int64_t rows = a.numel() / std::max<int64_t>(row, 1);
    auto src = a.data();
    auto dst = out.data();
    // Rows are independent; row-parallel execution is bit-identical.
    util::parallelFor(
        0, rows,
        util::grainFor(static_cast<double>(row) * flops_per_elem),
        [&](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; r++) {
                row_fn(src.subspan(static_cast<size_t>(r * row),
                                   static_cast<size_t>(row)),
                       dst.subspan(static_cast<size_t>(r * row),
                                   static_cast<size_t>(row)));
            }
        });
    auto n = static_cast<double>(a.numel());
    op.setFlops(n * flops_per_elem);
    op.setBytesRead(n * elemBytes);
    op.setBytesWritten(n * elemBytes);
    return out;
}

} // namespace

Tensor
softmax(const Tensor &a)
{
    return lastDimTransform(
        "softmax", a,
        [](std::span<const float> src, std::span<float> dst) {
            float mx = *std::max_element(src.begin(), src.end());
            float sum = 0.0f;
            for (size_t i = 0; i < src.size(); i++) {
                dst[i] = std::exp(src[i] - mx);
                sum += dst[i];
            }
            for (float &v : dst)
                v /= sum;
        },
        5.0);
}

Tensor
logSoftmax(const Tensor &a)
{
    return lastDimTransform(
        "log_softmax", a,
        [](std::span<const float> src, std::span<float> dst) {
            float mx = *std::max_element(src.begin(), src.end());
            float sum = 0.0f;
            for (float v : src)
                sum += std::exp(v - mx);
            float log_sum = std::log(sum) + mx;
            for (size_t i = 0; i < src.size(); i++)
                dst[i] = src[i] - log_sum;
        },
        5.0);
}

Tensor
normalizeSum(const Tensor &a, float eps)
{
    return lastDimTransform(
        "normalize_sum", a,
        [eps](std::span<const float> src, std::span<float> dst) {
            float sum = 0.0f;
            for (float v : src)
                sum += v;
            float scale = 1.0f / (sum + eps);
            for (size_t i = 0; i < src.size(); i++)
                dst[i] = src[i] * scale;
        },
        2.0);
}

Tensor
normalizeL2(const Tensor &a, float eps)
{
    return lastDimTransform(
        "normalize_l2", a,
        [eps](std::span<const float> src, std::span<float> dst) {
            float sum = 0.0f;
            for (float v : src)
                sum += v * v;
            float scale = 1.0f / (std::sqrt(sum) + eps);
            for (size_t i = 0; i < src.size(); i++)
                dst[i] = src[i] * scale;
        },
        3.0);
}

} // namespace nsbench::tensor
