#include "tensor/tensor.hh"

#include <numeric>
#include <sstream>

#include "core/profiler.hh"

namespace nsbench::tensor
{

int64_t
shapeNumel(const Shape &shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        util::panicIf(d < 0, "shapeNumel: negative dimension");
        n *= d;
    }
    return n;
}

std::string
shapeStr(const Shape &shape)
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < shape.size(); i++) {
        if (i)
            os << ", ";
        os << shape[i];
    }
    os << "]";
    return os.str();
}

/**
 * Reference-counted flat buffer; reports its lifetime to the profiler
 * so live-byte accounting happens exactly once per physical buffer,
 * however many tensor handles alias it.
 */
struct Tensor::Storage
{
    std::vector<float> values;

    explicit Storage(size_t n) : values(n, 0.0f)
    {
        core::globalProfiler().recordAlloc(n * sizeof(float));
    }

    Storage(const Storage &other) : values(other.values)
    {
        core::globalProfiler().recordAlloc(values.size() *
                                           sizeof(float));
    }

    Storage &operator=(const Storage &) = delete;

    ~Storage()
    {
        core::globalProfiler().recordFree(values.size() *
                                          sizeof(float));
    }
};

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      storage_(std::make_shared<Storage>(
          static_cast<size_t>(shapeNumel(shape_))))
{
    computeStrides();
}

Tensor::Tensor(Shape shape, std::vector<float> values) : Tensor(shape)
{
    util::panicIf(values.size() !=
                      static_cast<size_t>(shapeNumel(shape_)),
                  "Tensor: value count does not match shape " +
                      shapeStr(shape_));
    std::copy(values.begin(), values.end(),
              storage_->values.begin());
}

Tensor
Tensor::zeros(Shape shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::ones(Shape shape)
{
    return full(std::move(shape), 1.0f);
}

Tensor
Tensor::full(Shape shape, float value)
{
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::randn(Shape shape, util::Rng &rng, float mean, float stddev)
{
    Tensor t(std::move(shape));
    for (float &v : t.data())
        v = rng.normal(mean, stddev);
    return t;
}

Tensor
Tensor::rand(Shape shape, util::Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (float &v : t.data())
        v = rng.uniform(lo, hi);
    return t;
}

Tensor
Tensor::bipolar(Shape shape, util::Rng &rng)
{
    Tensor t(std::move(shape));
    for (float &v : t.data())
        v = rng.bipolar();
    return t;
}

Tensor
Tensor::bernoulli(Shape shape, util::Rng &rng, double p)
{
    Tensor t(std::move(shape));
    for (float &v : t.data())
        v = rng.bernoulli(p) ? 1.0f : 0.0f;
    return t;
}

int64_t
Tensor::size(int64_t d) const
{
    auto rank = static_cast<int64_t>(shape_.size());
    if (d < 0)
        d += rank;
    util::panicIf(d < 0 || d >= rank,
                  "Tensor::size: dimension out of range");
    return shape_[static_cast<size_t>(d)];
}

std::span<float>
Tensor::data()
{
    util::panicIf(!storage_, "Tensor::data: empty tensor");
    return storage_->values;
}

std::span<const float>
Tensor::data() const
{
    util::panicIf(!storage_, "Tensor::data: empty tensor");
    return storage_->values;
}

float &
Tensor::flat(int64_t i)
{
    return data()[static_cast<size_t>(i)];
}

float
Tensor::flat(int64_t i) const
{
    return data()[static_cast<size_t>(i)];
}

float &
Tensor::at(std::initializer_list<int64_t> idx)
{
    return data()[static_cast<size_t>(flatIndex(idx))];
}

float
Tensor::at(std::initializer_list<int64_t> idx) const
{
    return data()[static_cast<size_t>(flatIndex(idx))];
}

Tensor
Tensor::reshaped(Shape shape) const
{
    util::panicIf(shapeNumel(shape) != numel(),
                  "Tensor::reshaped: element count mismatch (" +
                      shapeStr(shape_) + " -> " + shapeStr(shape) +
                      ")");
    Tensor out;
    out.shape_ = std::move(shape);
    out.storage_ = storage_;
    out.computeStrides();
    return out;
}

Tensor
Tensor::clone() const
{
    Tensor out;
    out.shape_ = shape_;
    out.strides_ = strides_;
    if (storage_)
        out.storage_ = std::make_shared<Storage>(*storage_);
    return out;
}

void
Tensor::fill(float value)
{
    for (float &v : data())
        v = value;
}

void
Tensor::computeStrides()
{
    strides_.assign(shape_.size(), 1);
    for (size_t d = shape_.size(); d-- > 1;)
        strides_[d - 1] = strides_[d] * shape_[d];
}

int64_t
Tensor::flatIndex(std::initializer_list<int64_t> idx) const
{
    // Hot path: build diagnostic strings only on failure.
    if (idx.size() != shape_.size()) {
        util::panic("Tensor: index rank mismatch on " +
                    shapeStr(shape_));
    }
    int64_t flat = 0;
    size_t d = 0;
    for (int64_t i : idx) {
        if (i < 0 || i >= shape_[d]) {
            util::panic("Tensor: index out of range on " +
                        shapeStr(shape_));
        }
        flat += i * strides_[d];
        d++;
    }
    return flat;
}

} // namespace nsbench::tensor
