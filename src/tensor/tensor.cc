#include "tensor/tensor.hh"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <sstream>

#include "core/profiler.hh"
#include "tensor/alloc.hh"

namespace nsbench::tensor
{

int64_t
shapeNumel(const Shape &shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        util::panicIf(d < 0, "shapeNumel: negative dimension");
        n *= d;
    }
    return n;
}

std::string
shapeStr(const Shape &shape)
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < shape.size(); i++) {
        if (i)
            os << ", ";
        os << shape[i];
    }
    os << "]";
    return os.str();
}

/**
 * Reference-counted flat buffer; reports its lifetime to the profiler
 * so live-byte accounting happens exactly once per physical buffer,
 * however many tensor handles alias it.
 */
struct Tensor::Storage
{
    detail::RawStorage raw;
    size_t n = 0;

    /**
     * Profiler accounting is in LOGICAL tensor bytes (n * 4), never
     * the arena's rounded class capacity, so the Fig. 3b live/peak
     * figures are identical whichever allocator is active.
     */
    Storage(size_t n_, bool zero_fill)
        : raw(detail::acquireStorage(n_)), n(n_)
    {
        core::globalProfiler().recordAlloc(n * sizeof(float),
                                           raw.recycled);
        if (zero_fill)
            std::memset(raw.data, 0, n * sizeof(float));
    }

    Storage(const Storage &other) : Storage(other.n, false)
    {
        std::memcpy(raw.data, other.raw.data, n * sizeof(float));
    }

    Storage &operator=(const Storage &) = delete;

    ~Storage()
    {
        core::globalProfiler().recordFree(n * sizeof(float));
        detail::releaseStorage(raw);
    }
};

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      storage_(std::make_shared<Storage>(
          static_cast<size_t>(shapeNumel(shape_)),
          /*zero_fill=*/true))
{
    computeStrides();
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : Tensor(uninitialized(std::move(shape)))
{
    util::panicIf(values.size() !=
                      static_cast<size_t>(shapeNumel(shape_)),
                  "Tensor: value count does not match shape " +
                      shapeStr(shape_));
    std::copy(values.begin(), values.end(), data().begin());
}

Tensor
Tensor::uninitialized(Shape shape)
{
    Tensor t;
    t.shape_ = std::move(shape);
    t.storage_ = std::make_shared<Storage>(
        static_cast<size_t>(shapeNumel(t.shape_)),
        /*zero_fill=*/false);
    t.computeStrides();
    return t;
}

Tensor
Tensor::zeros(Shape shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::ones(Shape shape)
{
    return full(std::move(shape), 1.0f);
}

Tensor
Tensor::full(Shape shape, float value)
{
    Tensor t = uninitialized(std::move(shape));
    t.fill(value);
    return t;
}

Tensor
Tensor::randn(Shape shape, util::Rng &rng, float mean, float stddev)
{
    Tensor t = uninitialized(std::move(shape));
    for (float &v : t.data())
        v = rng.normal(mean, stddev);
    return t;
}

Tensor
Tensor::rand(Shape shape, util::Rng &rng, float lo, float hi)
{
    Tensor t = uninitialized(std::move(shape));
    for (float &v : t.data())
        v = rng.uniform(lo, hi);
    return t;
}

Tensor
Tensor::bipolar(Shape shape, util::Rng &rng)
{
    Tensor t = uninitialized(std::move(shape));
    for (float &v : t.data())
        v = rng.bipolar();
    return t;
}

Tensor
Tensor::bernoulli(Shape shape, util::Rng &rng, double p)
{
    Tensor t = uninitialized(std::move(shape));
    for (float &v : t.data())
        v = rng.bernoulli(p) ? 1.0f : 0.0f;
    return t;
}

int64_t
Tensor::size(int64_t d) const
{
    auto rank = static_cast<int64_t>(shape_.size());
    if (d < 0)
        d += rank;
    util::panicIf(d < 0 || d >= rank,
                  "Tensor::size: dimension out of range");
    return shape_[static_cast<size_t>(d)];
}

std::span<float>
Tensor::data()
{
    util::panicIf(!storage_, "Tensor::data: empty tensor");
    return {storage_->raw.data, storage_->n};
}

std::span<const float>
Tensor::data() const
{
    util::panicIf(!storage_, "Tensor::data: empty tensor");
    return {storage_->raw.data, storage_->n};
}

float &
Tensor::flat(int64_t i)
{
    return data()[static_cast<size_t>(i)];
}

float
Tensor::flat(int64_t i) const
{
    return data()[static_cast<size_t>(i)];
}

float &
Tensor::at(std::initializer_list<int64_t> idx)
{
    return data()[static_cast<size_t>(flatIndex(idx))];
}

float
Tensor::at(std::initializer_list<int64_t> idx) const
{
    return data()[static_cast<size_t>(flatIndex(idx))];
}

Tensor
Tensor::reshaped(Shape shape) const
{
    util::panicIf(shapeNumel(shape) != numel(),
                  "Tensor::reshaped: element count mismatch (" +
                      shapeStr(shape_) + " -> " + shapeStr(shape) +
                      ")");
    Tensor out;
    out.shape_ = std::move(shape);
    out.storage_ = storage_;
    out.computeStrides();
    return out;
}

Tensor
Tensor::clone() const
{
    Tensor out;
    out.shape_ = shape_;
    out.strides_ = strides_;
    if (storage_)
        out.storage_ = std::make_shared<Storage>(*storage_);
    return out;
}

void
Tensor::fill(float value)
{
    for (float &v : data())
        v = value;
}

void
Tensor::computeStrides()
{
    strides_.assign(shape_.size(), 1);
    for (size_t d = shape_.size(); d-- > 1;)
        strides_[d - 1] = strides_[d] * shape_[d];
}

int64_t
Tensor::flatIndex(std::initializer_list<int64_t> idx) const
{
    // Hot path: build diagnostic strings only on failure.
    if (idx.size() != shape_.size()) {
        util::panic("Tensor: index rank mismatch on " +
                    shapeStr(shape_));
    }
    int64_t flat = 0;
    size_t d = 0;
    for (int64_t i : idx) {
        if (i < 0 || i >= shape_[d]) {
            util::panic("Tensor: index out of range on " +
                        shapeStr(shape_));
        }
        flat += i * strides_[d];
        d++;
    }
    return flat;
}

} // namespace nsbench::tensor
