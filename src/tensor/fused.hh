/**
 * @file
 * Fused elementwise execution.
 *
 * The paper's operator breakdown (Fig. 3a) shows elementwise chains —
 * the t-norm algebra in LTN/LNN, VSA thresholding, PMF renormalization
 * — spending most of their time materializing intermediates: a chain
 * like clamp(sub(addScalar(a, k), b), 0, 1) writes and re-reads one
 * full tensor per step. fusedMap() runs the whole chain tile-by-tile
 * through the util::simd span kernels, with one cache-resident stack
 * scratch tile instead of whole-tensor intermediates, so the chain
 * reads each input once and writes the output once.
 *
 * Determinism contract: elementwise kernels are position-independent
 * (element i depends only on the operands' element i), so tiling does
 * not change results — a fused chain composed of the same simd kernel
 * calls in the same order is bit-identical to the unfused chain on
 * both backends. Do NOT fuse with different arithmetic (e.g. an FMA
 * where the unfused chain did mul-then-add): that changes rounding.
 *
 * Aliasing: `out` may be one of the inputs (exact overlap only),
 * which is how the *InPlace ops in tensor/ops.hh are built.
 */

#ifndef NSBENCH_TENSOR_FUSED_HH
#define NSBENCH_TENSOR_FUSED_HH

#include <algorithm>

#include "core/profiler.hh"
#include "tensor/tensor.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

namespace nsbench::tensor
{

/**
 * Tile size (elements) for fused chains: 16 KiB of scratch, small
 * enough to live in L1 next to the operand tiles.
 */
inline constexpr int64_t kFuseTile = 4096;

/**
 * Applies a fused binary chain tile-by-tile: for each tile,
 * `chunk_fn(a_tile, b_tile, out_tile, scratch, len)` with
 * `len <= kFuseTile` and `scratch` a kFuseTile-float workspace for
 * intermediates. Recorded as one profiler op whose stream model is
 * "read both inputs once, write the output once" — the fusion's
 * traffic saving is visible as fewer ops, not fudged byte counts.
 *
 * `out` must have the operands' shape and may share storage with
 * either operand (exact overlap only).
 */
template <typename ChunkFn>
void
fusedMap(const char *name, Tensor &out, const Tensor &a,
         const Tensor &b, double flops_per_elem, ChunkFn chunk_fn)
{
    util::panicIf(a.shape() != b.shape() || out.shape() != a.shape(),
                  std::string(name) + ": shape mismatch");
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    auto pa = a.data();
    auto pb = b.data();
    auto po = out.data();
    auto n = static_cast<int64_t>(pa.size());
    util::parallelFor(
        0, n, util::grainFor(flops_per_elem),
        [&](int64_t lo, int64_t hi) {
            alignas(64) float scratch[kFuseTile];
            for (int64_t t = lo; t < hi; t += kFuseTile) {
                int64_t len = std::min<int64_t>(kFuseTile, hi - t);
                chunk_fn(pa.data() + t, pb.data() + t, po.data() + t,
                         scratch, len);
            }
        });
    op.setFlops(static_cast<double>(n) * flops_per_elem);
    op.setBytesRead(2.0 * static_cast<double>(n) * sizeof(float));
    op.setBytesWritten(static_cast<double>(n) * sizeof(float));
}

/** Unary variant: `chunk_fn(a_tile, out_tile, scratch, len)`. */
template <typename ChunkFn>
void
fusedMapUnary(const char *name, Tensor &out, const Tensor &a,
              double flops_per_elem, ChunkFn chunk_fn)
{
    util::panicIf(out.shape() != a.shape(),
                  std::string(name) + ": shape mismatch");
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    auto pa = a.data();
    auto po = out.data();
    auto n = static_cast<int64_t>(pa.size());
    util::parallelFor(
        0, n, util::grainFor(flops_per_elem),
        [&](int64_t lo, int64_t hi) {
            alignas(64) float scratch[kFuseTile];
            for (int64_t t = lo; t < hi; t += kFuseTile) {
                int64_t len = std::min<int64_t>(kFuseTile, hi - t);
                chunk_fn(pa.data() + t, po.data() + t, scratch, len);
            }
        });
    op.setFlops(static_cast<double>(n) * flops_per_elem);
    op.setBytesRead(static_cast<double>(n) * sizeof(float));
    op.setBytesWritten(static_cast<double>(n) * sizeof(float));
}

} // namespace nsbench::tensor

#endif // NSBENCH_TENSOR_FUSED_HH
