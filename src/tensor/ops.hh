/**
 * @file
 * Instrumented tensor operations.
 *
 * Every function here times itself and reports (name, taxonomy
 * category, FLOPs, bytes) to the global profiler, mirroring the
 * function-level statistics the paper gathers with the PyTorch
 * Profiler. Byte counts use an idealized stream model: each input
 * element is read once and each output element written once.
 */

#ifndef NSBENCH_TENSOR_OPS_HH
#define NSBENCH_TENSOR_OPS_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace nsbench::tensor
{

/// @name Element-wise binary ops (shapes must match exactly).
/// @{
Tensor add(const Tensor &a, const Tensor &b);
Tensor sub(const Tensor &a, const Tensor &b);
Tensor mul(const Tensor &a, const Tensor &b);
Tensor div(const Tensor &a, const Tensor &b);
Tensor minimum(const Tensor &a, const Tensor &b);
Tensor maximum(const Tensor &a, const Tensor &b);
/// @}

/// @name Scalar ops.
/// @{
Tensor addScalar(const Tensor &a, float s);
Tensor mulScalar(const Tensor &a, float s);
/// @}

/// @name In-place elementwise ops.
///
/// Each mutates @p dst's storage instead of allocating a result, but
/// is otherwise bit-identical to its allocating counterpart (same
/// simd kernels, same order). @p src may be @p dst itself (exact
/// overlap only — the handles must share the whole buffer, never a
/// partial range). NB: the write is visible through every tensor
/// handle sharing @p dst's storage; callers own that aliasing.
/// @{
/** dst += src. */
void addInPlace(Tensor &dst, const Tensor &src);
/** dst -= src. */
void subInPlace(Tensor &dst, const Tensor &src);
/** dst *= src. */
void mulInPlace(Tensor &dst, const Tensor &src);
/** dst = min(dst, src). */
void minimumInPlace(Tensor &dst, const Tensor &src);
/** dst = max(dst, src). */
void maximumInPlace(Tensor &dst, const Tensor &src);
/** dst += s. */
void addScalarInPlace(Tensor &dst, float s);
/** dst *= s. */
void mulScalarInPlace(Tensor &dst, float s);
/** dst = max(dst, 0). */
void reluInPlace(Tensor &dst);
/** dst = clamp(dst, lo, hi). */
void clampInPlace(Tensor &dst, float lo, float hi);
/**
 * dst -= s * src, computed as mul-then-sub (never FMA) so it is
 * bit-identical to sub(dst, mulScalar(src, s)) — the SGD update step.
 */
void subScaledInPlace(Tensor &dst, const Tensor &src, float s);
/// @}

/// @name Element-wise unary ops.
/// @{
Tensor relu(const Tensor &a);
Tensor sigmoid(const Tensor &a);
Tensor tanhOp(const Tensor &a);
Tensor expOp(const Tensor &a);
Tensor logOp(const Tensor &a);
Tensor sqrtOp(const Tensor &a);
Tensor neg(const Tensor &a);
Tensor absOp(const Tensor &a);
Tensor sign(const Tensor &a);
Tensor clamp(const Tensor &a, float lo, float hi);
/** Element-wise power with a constant exponent (base must be
 *  non-negative for fractional exponents). */
Tensor powOp(const Tensor &a, float exponent);
/// @}

/// @name Full reductions.
/// @{
float sumAll(const Tensor &a);
float maxAll(const Tensor &a);
float meanAll(const Tensor &a);
/** Index of the largest element. */
int64_t argmaxAll(const Tensor &a);
/// @}

/// @name Axis reductions (axis counts from the front, no negatives).
/// @{
Tensor sumAxis(const Tensor &a, int64_t axis);
Tensor maxAxis(const Tensor &a, int64_t axis);
Tensor meanAxis(const Tensor &a, int64_t axis);
/// @}

/// @name Normalizations over the last dimension.
/// @{
/** Softmax over the last dimension. */
Tensor softmax(const Tensor &a);
/** Log-softmax over the last dimension. */
Tensor logSoftmax(const Tensor &a);
/** Scales each last-dim slice to sum to one (PMF normalization). */
Tensor normalizeSum(const Tensor &a, float eps = 1e-12f);
/** Scales each last-dim slice to unit L2 norm. */
Tensor normalizeL2(const Tensor &a, float eps = 1e-12f);
/// @}

/// @name Matrix multiplication.
/// @{
/** C[M,N] = A[M,K] * B[K,N]. */
Tensor matmul(const Tensor &a, const Tensor &b);
/**
 * Fully-connected layer: Y[N,O] = X[N,K] * W[O,K]^T + bias[O]. Pass an
 * empty bias tensor to skip the bias.
 */
Tensor linear(const Tensor &x, const Tensor &w, const Tensor &bias);
/** Dot product of two rank-1 tensors of equal length. */
float dot(const Tensor &a, const Tensor &b);
/// @}

/// @name Convolution and pooling (NCHW).
/// @{
/**
 * 2-D convolution of input[N,C,H,W] with weight[O,C,kh,kw] and
 * optional bias[O] (pass empty to skip), zero padding, square stride.
 */
Tensor conv2d(const Tensor &input, const Tensor &weight,
              const Tensor &bias, int64_t stride = 1,
              int64_t padding = 0);
/** Max pooling with square kernel/stride. */
Tensor maxPool2d(const Tensor &input, int64_t kernel, int64_t stride);
/** Average pooling with square kernel/stride. */
Tensor avgPool2d(const Tensor &input, int64_t kernel, int64_t stride);
/// @}

/// @name Data transformations.
/// @{
/** Transpose of a rank-2 tensor. */
Tensor transpose2d(const Tensor &a);
/** Generalized axis permutation. @p perm must be a permutation. */
Tensor permute(const Tensor &a, const std::vector<int64_t> &perm);
/** Concatenation along an axis; shapes must agree elsewhere. */
Tensor concat(const std::vector<Tensor> &parts, int64_t axis);
/** Contiguous sub-range along one axis. */
Tensor slice(const Tensor &a, int64_t axis, int64_t start,
             int64_t length);
/** Gathers rows of a rank-2 tensor by index. */
Tensor gatherRows(const Tensor &a, const std::vector<int64_t> &rows);
/** Elements of @p a where @p mask is non-zero, flattened to rank-1. */
Tensor maskedSelect(const Tensor &a, const Tensor &mask);
/** One-hot encodes indices into a [n, classes] tensor. */
Tensor oneHot(const std::vector<int64_t> &indices, int64_t classes);
/// @}

/// @name Data movement.
/// @{
/** Explicit copy, recorded as data movement. */
Tensor copyTensor(const Tensor &a);
/**
 * Simulated host/device transfer: a copy recorded as data movement
 * under the given label ("h2d"/"d2h"), so the transfer overhead the
 * paper measures between CPU-side symbolic and GPU-side neural stages
 * is visible in the op stream.
 */
Tensor transfer(const Tensor &a, const char *label);
/// @}

} // namespace nsbench::tensor

#endif // NSBENCH_TENSOR_OPS_HH
