#include <algorithm>

#include "tensor/ops.hh"
#include "tensor/ops_common.hh"

namespace nsbench::tensor
{

using detail::elemBytes;

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    util::panicIf(a.dim() != 2 || b.dim() != 2,
                  "matmul: rank-2 tensors required");
    int64_t m = a.size(0);
    int64_t k = a.size(1);
    int64_t n = b.size(1);
    util::panicIf(b.size(0) != k,
                  "matmul: inner dimension mismatch " +
                      shapeStr(a.shape()) + " x " +
                      shapeStr(b.shape()));

    core::ScopedOp op("matmul", core::OpCategory::MatMul);
    Tensor out({m, n});
    auto pa = a.data();
    auto pb = b.data();
    auto po = out.data();

    // Row-blocked over the output: each lane owns whole rows of C, so
    // writes never overlap and the per-row arithmetic order matches
    // the serial kernel exactly (bit-identical at any thread count).
    util::parallelFor(
        0, m, util::grainFor(2.0 * static_cast<double>(k * n)),
        [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; i++) {
                float *crow = &po[static_cast<size_t>(i * n)];
                // Accumulate into an explicitly zeroed row rather than
                // relying on the allocator's zero fill, so the kernel
                // stays correct if uninitialized allocation is ever
                // introduced.
                std::fill(crow, crow + n, 0.0f);
                // i-k-j loop order keeps the inner loop streaming over
                // B and C.
                for (int64_t kk = 0; kk < k; kk++) {
                    float aik = pa[static_cast<size_t>(i * k + kk)];
                    const float *brow =
                        &pb[static_cast<size_t>(kk * n)];
                    for (int64_t j = 0; j < n; j++)
                        crow[j] += aik * brow[j];
                }
            }
        });

    op.setFlops(2.0 * static_cast<double>(m) *
                static_cast<double>(n) * static_cast<double>(k));
    op.setBytesRead(static_cast<double>(m * k + k * n) * elemBytes);
    op.setBytesWritten(static_cast<double>(m * n) * elemBytes);
    return out;
}

Tensor
linear(const Tensor &x, const Tensor &w, const Tensor &bias)
{
    util::panicIf(x.dim() != 2 || w.dim() != 2,
                  "linear: rank-2 tensors required");
    int64_t n = x.size(0);
    int64_t k = x.size(1);
    int64_t o = w.size(0);
    util::panicIf(w.size(1) != k,
                  "linear: weight inner dimension mismatch");
    bool has_bias = !bias.empty();
    util::panicIf(has_bias && (bias.dim() != 1 || bias.size(0) != o),
                  "linear: bias shape mismatch");

    core::ScopedOp op("linear", core::OpCategory::MatMul);
    Tensor out({n, o});
    auto px = x.data();
    auto pw = w.data();
    auto po = out.data();
    std::span<const float> pbias;
    if (has_bias)
        pbias = bias.data();

    // Row-blocked over the batch dimension; every output element is
    // produced by exactly one lane with serial-identical arithmetic.
    util::parallelFor(
        0, n, util::grainFor(2.0 * static_cast<double>(o * k)),
        [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; i++) {
                const float *xrow = &px[static_cast<size_t>(i * k)];
                float *yrow = &po[static_cast<size_t>(i * o)];
                for (int64_t j = 0; j < o; j++) {
                    const float *wrow =
                        &pw[static_cast<size_t>(j * k)];
                    float acc = has_bias
                                    ? pbias[static_cast<size_t>(j)]
                                    : 0.0f;
                    for (int64_t kk = 0; kk < k; kk++)
                        acc += xrow[kk] * wrow[kk];
                    yrow[j] = acc;
                }
            }
        });

    op.setFlops(2.0 * static_cast<double>(n) *
                    static_cast<double>(o) * static_cast<double>(k) +
                (has_bias ? static_cast<double>(n * o) : 0.0));
    op.setBytesRead(static_cast<double>(n * k + o * k +
                                        (has_bias ? o : 0)) *
                    elemBytes);
    op.setBytesWritten(static_cast<double>(n * o) * elemBytes);
    return out;
}

float
dot(const Tensor &a, const Tensor &b)
{
    util::panicIf(a.dim() != 1 || b.dim() != 1 ||
                      a.size(0) != b.size(0),
                  "dot: rank-1 equal-length tensors required");
    core::ScopedOp op("dot", core::OpCategory::MatMul);
    auto pa = a.data();
    auto pb = b.data();
    auto n = static_cast<int64_t>(pa.size());
    int64_t grain = util::grainFor(2.0);
    std::vector<double> partials(
        static_cast<size_t>((n + grain - 1) / std::max<int64_t>(
                                                  grain, 1)),
        0.0);
    double acc = 0.0;
    detail::chunkedReduce(
        n, grain,
        [&](int64_t c, int64_t lo, int64_t hi) {
            double s = 0.0;
            for (int64_t i = lo; i < hi; i++)
                s += static_cast<double>(pa[static_cast<size_t>(i)]) *
                     pb[static_cast<size_t>(i)];
            partials[static_cast<size_t>(c)] = s;
        },
        [&](int64_t c) { acc += partials[static_cast<size_t>(c)]; });
    auto dn = static_cast<double>(a.numel());
    op.setFlops(2.0 * dn);
    op.setBytesRead(2.0 * dn * elemBytes);
    op.setBytesWritten(elemBytes);
    return static_cast<float>(acc);
}

} // namespace nsbench::tensor
