#include <algorithm>

#include "tensor/ops.hh"
#include "tensor/ops_common.hh"

namespace nsbench::tensor
{

using detail::elemBytes;

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    util::panicIf(a.dim() != 2 || b.dim() != 2,
                  "matmul: rank-2 tensors required");
    int64_t m = a.size(0);
    int64_t k = a.size(1);
    int64_t n = b.size(1);
    util::panicIf(b.size(0) != k,
                  "matmul: inner dimension mismatch " +
                      shapeStr(a.shape()) + " x " +
                      shapeStr(b.shape()));

    core::ScopedOp op("matmul", core::OpCategory::MatMul);
    // matmulRows zeroes each output row itself before accumulating,
    // so the uninitialized path is legal here.
    Tensor out = Tensor::uninitialized({m, n});
    auto pa = a.data();
    auto pb = b.data();
    auto po = out.data();

    // Row-blocked over the output: each lane owns whole rows of C, so
    // writes never overlap, and each row's value is a pure function of
    // its operands (identical at any thread count for a fixed
    // backend). The grain is held at >= 4 rows so the AVX2 kernel's
    // 4-row register tile engages; the chunk grid never affects
    // per-row results, only speed.
    util::parallelFor(
        0, m,
        std::max<int64_t>(
            4, util::grainFor(2.0 * static_cast<double>(k * n))),
        [&](int64_t i0, int64_t i1) {
            util::simd::matmulRows(pa.data(), pb.data(), po.data(),
                                   i0, i1, k, n);
        });

    op.setFlops(2.0 * static_cast<double>(m) *
                static_cast<double>(n) * static_cast<double>(k));
    op.setBytesRead(static_cast<double>(m * k + k * n) * elemBytes);
    op.setBytesWritten(static_cast<double>(m * n) * elemBytes);
    return out;
}

Tensor
linear(const Tensor &x, const Tensor &w, const Tensor &bias)
{
    util::panicIf(x.dim() != 2 || w.dim() != 2,
                  "linear: rank-2 tensors required");
    int64_t n = x.size(0);
    int64_t k = x.size(1);
    int64_t o = w.size(0);
    util::panicIf(w.size(1) != k,
                  "linear: weight inner dimension mismatch");
    bool has_bias = !bias.empty();
    util::panicIf(has_bias && (bias.dim() != 1 || bias.size(0) != o),
                  "linear: bias shape mismatch");

    core::ScopedOp op("linear", core::OpCategory::MatMul);
    // linearRows stores every Y[i, j] exactly once.
    Tensor out = Tensor::uninitialized({n, o});
    auto px = x.data();
    auto pw = w.data();
    auto po = out.data();
    std::span<const float> pbias;
    if (has_bias)
        pbias = bias.data();

    // Row-blocked over the batch dimension; every output element is
    // produced by exactly one lane as a pure function of its operands.
    util::parallelFor(
        0, n, util::grainFor(2.0 * static_cast<double>(o * k)),
        [&](int64_t i0, int64_t i1) {
            util::simd::linearRows(px.data(), pw.data(),
                                   has_bias ? pbias.data() : nullptr,
                                   po.data(), i0, i1, k, o);
        });

    op.setFlops(2.0 * static_cast<double>(n) *
                    static_cast<double>(o) * static_cast<double>(k) +
                (has_bias ? static_cast<double>(n * o) : 0.0));
    op.setBytesRead(static_cast<double>(n * k + o * k +
                                        (has_bias ? o : 0)) *
                    elemBytes);
    op.setBytesWritten(static_cast<double>(n * o) * elemBytes);
    return out;
}

float
dot(const Tensor &a, const Tensor &b)
{
    util::panicIf(a.dim() != 1 || b.dim() != 1 ||
                      a.size(0) != b.size(0),
                  "dot: rank-1 equal-length tensors required");
    core::ScopedOp op("dot", core::OpCategory::MatMul);
    auto pa = a.data();
    auto pb = b.data();
    auto n = static_cast<int64_t>(pa.size());
    int64_t grain = util::grainFor(2.0);
    std::vector<double> partials(
        static_cast<size_t>((n + grain - 1) / std::max<int64_t>(
                                                  grain, 1)),
        0.0);
    double acc = 0.0;
    detail::chunkedReduce(
        n, grain,
        [&](int64_t c, int64_t lo, int64_t hi) {
            partials[static_cast<size_t>(c)] =
                util::simd::dotChunk(pa.data() + lo, pb.data() + lo,
                                     hi - lo);
        },
        [&](int64_t c) { acc += partials[static_cast<size_t>(c)]; });
    auto dn = static_cast<double>(a.numel());
    op.setFlops(2.0 * dn);
    op.setBytesRead(2.0 * dn * elemBytes);
    op.setBytesWritten(elemBytes);
    return static_cast<float>(acc);
}

} // namespace nsbench::tensor
