#include "tensor/ops.hh"
#include "tensor/ops_common.hh"

namespace nsbench::tensor
{

using detail::elemBytes;

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    util::panicIf(a.dim() != 2 || b.dim() != 2,
                  "matmul: rank-2 tensors required");
    int64_t m = a.size(0);
    int64_t k = a.size(1);
    int64_t n = b.size(1);
    util::panicIf(b.size(0) != k,
                  "matmul: inner dimension mismatch " +
                      shapeStr(a.shape()) + " x " +
                      shapeStr(b.shape()));

    core::ScopedOp op("matmul", core::OpCategory::MatMul);
    Tensor out({m, n});
    auto pa = a.data();
    auto pb = b.data();
    auto po = out.data();

    // i-k-j loop order keeps the inner loop streaming over B and C.
    for (int64_t i = 0; i < m; i++) {
        float *crow = &po[static_cast<size_t>(i * n)];
        for (int64_t kk = 0; kk < k; kk++) {
            float aik = pa[static_cast<size_t>(i * k + kk)];
            const float *brow = &pb[static_cast<size_t>(kk * n)];
            for (int64_t j = 0; j < n; j++)
                crow[j] += aik * brow[j];
        }
    }

    op.setFlops(2.0 * static_cast<double>(m) *
                static_cast<double>(n) * static_cast<double>(k));
    op.setBytesRead(static_cast<double>(m * k + k * n) * elemBytes);
    op.setBytesWritten(static_cast<double>(m * n) * elemBytes);
    return out;
}

Tensor
linear(const Tensor &x, const Tensor &w, const Tensor &bias)
{
    util::panicIf(x.dim() != 2 || w.dim() != 2,
                  "linear: rank-2 tensors required");
    int64_t n = x.size(0);
    int64_t k = x.size(1);
    int64_t o = w.size(0);
    util::panicIf(w.size(1) != k,
                  "linear: weight inner dimension mismatch");
    bool has_bias = !bias.empty();
    util::panicIf(has_bias && (bias.dim() != 1 || bias.size(0) != o),
                  "linear: bias shape mismatch");

    core::ScopedOp op("linear", core::OpCategory::MatMul);
    Tensor out({n, o});
    auto px = x.data();
    auto pw = w.data();
    auto po = out.data();

    for (int64_t i = 0; i < n; i++) {
        const float *xrow = &px[static_cast<size_t>(i * k)];
        float *yrow = &po[static_cast<size_t>(i * o)];
        for (int64_t j = 0; j < o; j++) {
            const float *wrow = &pw[static_cast<size_t>(j * k)];
            float acc = has_bias ? bias.flat(j) : 0.0f;
            for (int64_t kk = 0; kk < k; kk++)
                acc += xrow[kk] * wrow[kk];
            yrow[j] = acc;
        }
    }

    op.setFlops(2.0 * static_cast<double>(n) *
                    static_cast<double>(o) * static_cast<double>(k) +
                (has_bias ? static_cast<double>(n * o) : 0.0));
    op.setBytesRead(static_cast<double>(n * k + o * k +
                                        (has_bias ? o : 0)) *
                    elemBytes);
    op.setBytesWritten(static_cast<double>(n * o) * elemBytes);
    return out;
}

float
dot(const Tensor &a, const Tensor &b)
{
    util::panicIf(a.dim() != 1 || b.dim() != 1 ||
                      a.size(0) != b.size(0),
                  "dot: rank-1 equal-length tensors required");
    core::ScopedOp op("dot", core::OpCategory::MatMul);
    auto pa = a.data();
    auto pb = b.data();
    double acc = 0.0;
    for (size_t i = 0; i < pa.size(); i++)
        acc += static_cast<double>(pa[i]) * pb[i];
    auto n = static_cast<double>(a.numel());
    op.setFlops(2.0 * n);
    op.setBytesRead(2.0 * n * elemBytes);
    op.setBytesWritten(elemBytes);
    return static_cast<float>(acc);
}

} // namespace nsbench::tensor
