#include "tensor/alloc.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "util/arena.hh"
#include "util/logging.hh"

namespace nsbench::tensor
{

namespace
{

constexpr std::align_val_t kAlign{64};

/** Sentinel for "no override installed". */
constexpr int kUnset = -1;

std::atomic<int> gOverride{kUnset};

AllocatorKind
resolveDefault()
{
    // Mirrors util::simd's NSBENCH_SIMD handling: unset or off-ish
    // values mean the historical heap behaviour; the arena is opt-in.
    const char *env = std::getenv("NSBENCH_ARENA");
    if (env == nullptr || env[0] == '\0')
        return AllocatorKind::Heap;
    if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0 ||
        std::strcmp(env, "true") == 0)
        return AllocatorKind::Arena;
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "false") == 0)
        return AllocatorKind::Heap;
    util::fatal(std::string("NSBENCH_ARENA must be one of "
                            "on/1/true/off/0/false, got '") +
                env + "'");
}

} // namespace

AllocatorKind
activeAllocator()
{
    int forced = gOverride.load(std::memory_order_relaxed);
    if (forced != kUnset)
        return static_cast<AllocatorKind>(forced);
    static const AllocatorKind resolved = resolveDefault();
    return resolved;
}

void
setAllocator(AllocatorKind kind)
{
    gOverride.store(static_cast<int>(kind), std::memory_order_relaxed);
}

void
resetAllocator()
{
    gOverride.store(kUnset, std::memory_order_relaxed);
}

const char *
allocatorName(AllocatorKind kind)
{
    return kind == AllocatorKind::Arena ? "arena" : "heap";
}

const char *
activeAllocatorName()
{
    return allocatorName(activeAllocator());
}

namespace detail
{

RawStorage
acquireStorage(size_t n)
{
    RawStorage raw;
    size_t bytes = n * sizeof(float);
    if (activeAllocator() == AllocatorKind::Arena) {
        util::Arena::Block block = util::Arena::global().acquire(bytes);
        raw.data = static_cast<float *>(block.ptr);
        raw.classBytes = block.classBytes;
        raw.fromArena = true;
        raw.recycled = block.recycled;
        return raw;
    }
    raw.data = static_cast<float *>(::operator new(bytes, kAlign));
    return raw;
}

void
releaseStorage(const RawStorage &raw)
{
    if (raw.data == nullptr)
        return;
    // Honour the buffer's own provenance, not the current mode: a
    // tensor allocated before setAllocator() flipped the mode must
    // still go back where it came from.
    if (raw.fromArena) {
        util::Arena::global().release(raw.data, raw.classBytes);
        return;
    }
    ::operator delete(raw.data, kAlign);
}

} // namespace detail

} // namespace nsbench::tensor
