/**
 * @file
 * A dense FP32 n-dimensional tensor with profiler-tracked storage.
 *
 * Tensors are shallow-copy handles onto shared row-major storage, like
 * the frameworks the paper profiles. Operations live in tensor/ops.hh
 * and produce new tensors; in-place mutation is limited to explicit
 * fill-style methods. Storage allocation and release report to the
 * global profiler so the memory figures (Fig. 3b) fall out of normal
 * execution.
 */

#ifndef NSBENCH_TENSOR_TENSOR_HH
#define NSBENCH_TENSOR_TENSOR_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"

namespace nsbench::tensor
{

/** Tensor shape: extent per dimension. */
using Shape = std::vector<int64_t>;

/** Number of elements implied by a shape (1 for rank-0). */
int64_t shapeNumel(const Shape &shape);

/** Renders a shape as e.g. "[2, 3, 4]". */
std::string shapeStr(const Shape &shape);

/**
 * Dense FP32 tensor.
 */
class Tensor
{
  public:
    /** An empty (rank-0, zero-storage) tensor. */
    Tensor() = default;

    /**
     * Allocates a zero-initialized tensor of the given shape.
     *
     * Zero fill is part of the constructor contract, and kernels that
     * accumulate into freshly allocated outputs must still zero them
     * explicitly (matmul does): the uninitialized() fast path below
     * skips the fill, so accumulating kernels that zero for themselves
     * stay correct instead of silently reading garbage.
     */
    explicit Tensor(Shape shape);

    /** Allocates and fills from the given values (size must match). */
    Tensor(Shape shape, std::vector<float> values);

    /**
     * Allocates WITHOUT zero-filling. Legal only when every element is
     * written before it is read — i.e. for outputs of kernels that
     * fully overwrite their result. Kernels that accumulate (+=) into
     * the output, or that write a sparse subset of it (oneHot, scatter
     * patterns), must use the zero-filling constructor or zero the
     * buffer themselves.
     */
    static Tensor uninitialized(Shape shape);

    /** Zero-filled tensor. */
    static Tensor zeros(Shape shape);

    /** One-filled tensor. */
    static Tensor ones(Shape shape);

    /** Constant-filled tensor. */
    static Tensor full(Shape shape, float value);

    /** I.i.d. normal entries. */
    static Tensor randn(Shape shape, util::Rng &rng, float mean = 0.0f,
                        float stddev = 1.0f);

    /** I.i.d. uniform entries in [lo, hi). */
    static Tensor rand(Shape shape, util::Rng &rng, float lo = 0.0f,
                       float hi = 1.0f);

    /** I.i.d. random +1/-1 entries (bipolar hypervector material). */
    static Tensor bipolar(Shape shape, util::Rng &rng);

    /** Entries are 1 with probability p, else 0. */
    static Tensor bernoulli(Shape shape, util::Rng &rng, double p);

    /** Tensor rank. */
    size_t dim() const { return shape_.size(); }

    /** Shape accessor. */
    const Shape &shape() const { return shape_; }

    /** Extent of one dimension (negative indices count from the end). */
    int64_t size(int64_t d) const;

    /** Total element count. */
    int64_t numel() const { return shapeNumel(shape_); }

    /** True when no storage is attached. */
    bool empty() const { return !storage_; }

    /** Mutable flat element view. */
    std::span<float> data();

    /** Const flat element view. */
    std::span<const float> data() const;

    /** Flat element access. */
    float &flat(int64_t i);

    /** Flat element access (const). */
    float flat(int64_t i) const;

    /** Multi-index element access; index count must equal rank. */
    float &at(std::initializer_list<int64_t> idx);

    /** Multi-index element access (const). */
    float at(std::initializer_list<int64_t> idx) const;

    /** Rank-1/2/3/4 conveniences. */
    float &operator()(int64_t i) { return at({i}); }
    float operator()(int64_t i) const { return at({i}); }
    float &operator()(int64_t i, int64_t j) { return at({i, j}); }
    float operator()(int64_t i, int64_t j) const { return at({i, j}); }
    float &
    operator()(int64_t i, int64_t j, int64_t k)
    {
        return at({i, j, k});
    }
    float
    operator()(int64_t i, int64_t j, int64_t k) const
    {
        return at({i, j, k});
    }
    float &
    operator()(int64_t i, int64_t j, int64_t k, int64_t l)
    {
        return at({i, j, k, l});
    }
    float
    operator()(int64_t i, int64_t j, int64_t k, int64_t l) const
    {
        return at({i, j, k, l});
    }

    /**
     * Returns a handle with a new shape sharing this storage. The
     * element count must be unchanged.
     */
    Tensor reshaped(Shape shape) const;

    /** Deep copy with fresh storage. */
    Tensor clone() const;

    /** Fills every element with the given value. */
    void fill(float value);

    /** Storage footprint in bytes. */
    uint64_t bytes() const { return static_cast<uint64_t>(numel()) * 4; }

  private:
    struct Storage;

    Shape shape_;
    std::shared_ptr<Storage> storage_;
    /** Strides in elements, row-major. */
    std::vector<int64_t> strides_;

    void computeStrides();
    int64_t flatIndex(std::initializer_list<int64_t> idx) const;
};

} // namespace nsbench::tensor

#endif // NSBENCH_TENSOR_TENSOR_HH
