/**
 * @file
 * Internal helpers shared by the op implementation files. Not part of
 * the public API.
 */

#ifndef NSBENCH_TENSOR_OPS_COMMON_HH
#define NSBENCH_TENSOR_OPS_COMMON_HH

#include <algorithm>

#include "core/profiler.hh"
#include "tensor/tensor.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"

namespace nsbench::tensor::detail
{

inline constexpr double elemBytes = sizeof(float);

/** Span kernel signatures from the SIMD backend (util/simd.hh). */
using BinaryKernel = void (*)(const float *, const float *, float *,
                              int64_t);
using UnaryKernel = void (*)(const float *, float *, int64_t);

/**
 * Runs a deterministic chunked reduction: [0, items) is cut into
 * fixed chunks of `grain` iterations, `partial` fills slot c from its
 * chunk (in parallel), and `combine` folds the slots in chunk order on
 * the calling thread. Because the chunk grid depends only on the
 * grain, the result is identical at every thread count.
 */
template <typename Partial, typename Combine>
void
chunkedReduce(int64_t items, int64_t grain, Partial partial,
              Combine combine)
{
    grain = std::max<int64_t>(1, grain);
    int64_t chunks = (items + grain - 1) / grain;
    util::parallelFor(0, chunks, 1, [&](int64_t c0, int64_t c1) {
        for (int64_t c = c0; c < c1; c++) {
            int64_t lo = c * grain;
            int64_t hi = std::min(items, lo + grain);
            partial(c, lo, hi);
        }
    });
    for (int64_t c = 0; c < chunks; c++)
        combine(c);
}

/** Applies f element-wise over two same-shape tensors. */
template <typename F>
Tensor
ewBinary(const char *name, const Tensor &a, const Tensor &b, F f,
         double flops_per_elem = 1.0)
{
    util::panicIf(a.shape() != b.shape(),
                  std::string(name) + ": shape mismatch " +
                      shapeStr(a.shape()) + " vs " +
                      shapeStr(b.shape()));
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    // Every element is written below: uninitialized is legal.
    Tensor out = Tensor::uninitialized(a.shape());
    auto pa = a.data();
    auto pb = b.data();
    auto po = out.data();
    auto n = static_cast<int64_t>(pa.size());
    util::parallelFor(0, n, util::grainFor(flops_per_elem),
                      [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; i++)
                              po[static_cast<size_t>(i)] =
                                  f(pa[static_cast<size_t>(i)],
                                    pb[static_cast<size_t>(i)]);
                      });
    op.setFlops(static_cast<double>(n) * flops_per_elem);
    op.setBytesRead(2.0 * static_cast<double>(n) * elemBytes);
    op.setBytesWritten(static_cast<double>(n) * elemBytes);
    return out;
}

/** Applies f element-wise over one tensor. */
template <typename F>
Tensor
ewUnary(const char *name, const Tensor &a, F f,
        double flops_per_elem = 1.0)
{
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    // Every element is written below: uninitialized is legal.
    Tensor out = Tensor::uninitialized(a.shape());
    auto pa = a.data();
    auto po = out.data();
    auto n = static_cast<int64_t>(pa.size());
    util::parallelFor(0, n, util::grainFor(flops_per_elem),
                      [&](int64_t lo, int64_t hi) {
                          for (int64_t i = lo; i < hi; i++)
                              po[static_cast<size_t>(i)] =
                                  f(pa[static_cast<size_t>(i)]);
                      });
    op.setFlops(static_cast<double>(n) * flops_per_elem);
    op.setBytesRead(static_cast<double>(n) * elemBytes);
    op.setBytesWritten(static_cast<double>(n) * elemBytes);
    return out;
}

/**
 * Applies a SIMD span kernel element-wise over two same-shape tensors.
 * The kernel runs once per ThreadPool chunk, so the result is the
 * same at every thread count for a fixed backend.
 */
inline Tensor
ewBinaryKernel(const char *name, const Tensor &a, const Tensor &b,
               BinaryKernel kernel, double flops_per_elem = 1.0)
{
    util::panicIf(a.shape() != b.shape(),
                  std::string(name) + ": shape mismatch " +
                      shapeStr(a.shape()) + " vs " +
                      shapeStr(b.shape()));
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    // Every element is written below: uninitialized is legal.
    Tensor out = Tensor::uninitialized(a.shape());
    auto pa = a.data();
    auto pb = b.data();
    auto po = out.data();
    auto n = static_cast<int64_t>(pa.size());
    util::parallelFor(0, n, util::grainFor(flops_per_elem),
                      [&](int64_t lo, int64_t hi) {
                          kernel(pa.data() + lo, pb.data() + lo,
                                 po.data() + lo, hi - lo);
                      });
    op.setFlops(static_cast<double>(n) * flops_per_elem);
    op.setBytesRead(2.0 * static_cast<double>(n) * elemBytes);
    op.setBytesWritten(static_cast<double>(n) * elemBytes);
    return out;
}

/** Applies a SIMD (tensor, scalar) span kernel element-wise. */
inline Tensor
ewScalarKernel(const char *name, const Tensor &a, float s,
               void (*kernel)(const float *, float, float *, int64_t),
               double flops_per_elem = 1.0)
{
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    // Every element is written below: uninitialized is legal.
    Tensor out = Tensor::uninitialized(a.shape());
    auto pa = a.data();
    auto po = out.data();
    auto n = static_cast<int64_t>(pa.size());
    util::parallelFor(0, n, util::grainFor(flops_per_elem),
                      [&](int64_t lo, int64_t hi) {
                          kernel(pa.data() + lo, s, po.data() + lo,
                                 hi - lo);
                      });
    op.setFlops(static_cast<double>(n) * flops_per_elem);
    op.setBytesRead(static_cast<double>(n) * elemBytes);
    op.setBytesWritten(static_cast<double>(n) * elemBytes);
    return out;
}

/** Applies a SIMD span kernel element-wise over one tensor. */
inline Tensor
ewUnaryKernel(const char *name, const Tensor &a, UnaryKernel kernel,
              double flops_per_elem = 1.0)
{
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    // Every element is written below: uninitialized is legal.
    Tensor out = Tensor::uninitialized(a.shape());
    auto pa = a.data();
    auto po = out.data();
    auto n = static_cast<int64_t>(pa.size());
    util::parallelFor(0, n, util::grainFor(flops_per_elem),
                      [&](int64_t lo, int64_t hi) {
                          kernel(pa.data() + lo, po.data() + lo,
                                 hi - lo);
                      });
    op.setFlops(static_cast<double>(n) * flops_per_elem);
    op.setBytesRead(static_cast<double>(n) * elemBytes);
    op.setBytesWritten(static_cast<double>(n) * elemBytes);
    return out;
}

} // namespace nsbench::tensor::detail

#endif // NSBENCH_TENSOR_OPS_COMMON_HH
