/**
 * @file
 * Internal helpers shared by the op implementation files. Not part of
 * the public API.
 */

#ifndef NSBENCH_TENSOR_OPS_COMMON_HH
#define NSBENCH_TENSOR_OPS_COMMON_HH

#include "core/profiler.hh"
#include "tensor/tensor.hh"
#include "util/logging.hh"

namespace nsbench::tensor::detail
{

inline constexpr double elemBytes = sizeof(float);

/** Applies f element-wise over two same-shape tensors. */
template <typename F>
Tensor
ewBinary(const char *name, const Tensor &a, const Tensor &b, F f,
         double flops_per_elem = 1.0)
{
    util::panicIf(a.shape() != b.shape(),
                  std::string(name) + ": shape mismatch " +
                      shapeStr(a.shape()) + " vs " +
                      shapeStr(b.shape()));
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    Tensor out(a.shape());
    auto pa = a.data();
    auto pb = b.data();
    auto po = out.data();
    size_t n = pa.size();
    for (size_t i = 0; i < n; i++)
        po[i] = f(pa[i], pb[i]);
    op.setFlops(static_cast<double>(n) * flops_per_elem);
    op.setBytesRead(2.0 * static_cast<double>(n) * elemBytes);
    op.setBytesWritten(static_cast<double>(n) * elemBytes);
    return out;
}

/** Applies f element-wise over one tensor. */
template <typename F>
Tensor
ewUnary(const char *name, const Tensor &a, F f,
        double flops_per_elem = 1.0)
{
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    Tensor out(a.shape());
    auto pa = a.data();
    auto po = out.data();
    size_t n = pa.size();
    for (size_t i = 0; i < n; i++)
        po[i] = f(pa[i]);
    op.setFlops(static_cast<double>(n) * flops_per_elem);
    op.setBytesRead(static_cast<double>(n) * elemBytes);
    op.setBytesWritten(static_cast<double>(n) * elemBytes);
    return out;
}

} // namespace nsbench::tensor::detail

#endif // NSBENCH_TENSOR_OPS_COMMON_HH
