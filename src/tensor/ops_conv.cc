#include <algorithm>
#include <limits>

#include "tensor/ops.hh"
#include "tensor/ops_common.hh"

namespace nsbench::tensor
{

using detail::elemBytes;

Tensor
conv2d(const Tensor &input, const Tensor &weight, const Tensor &bias,
       int64_t stride, int64_t padding)
{
    util::panicIf(input.dim() != 4 || weight.dim() != 4,
                  "conv2d: NCHW input and OCKK weight required");
    util::panicIf(stride < 1, "conv2d: stride must be positive");
    util::panicIf(padding < 0, "conv2d: negative padding");

    int64_t n = input.size(0), c = input.size(1);
    int64_t h = input.size(2), w = input.size(3);
    int64_t o = weight.size(0), kc = weight.size(1);
    int64_t kh = weight.size(2), kw = weight.size(3);
    util::panicIf(kc != c, "conv2d: channel mismatch");
    bool has_bias = !bias.empty();
    util::panicIf(has_bias && (bias.dim() != 1 || bias.size(0) != o),
                  "conv2d: bias shape mismatch");

    int64_t oh = (h + 2 * padding - kh) / stride + 1;
    int64_t ow = (w + 2 * padding - kw) / stride + 1;
    util::panicIf(oh < 1 || ow < 1, "conv2d: kernel exceeds input");

    core::ScopedOp op("conv2d", core::OpCategory::Convolution);
    // Every output element gets its locally accumulated value stored
    // exactly once (bias/zero is folded into the accumulator).
    Tensor out = Tensor::uninitialized({n, o, oh, ow});
    auto src = input.data();
    auto wt = weight.data();
    auto dst = out.data();

    auto in_at = [&](int64_t b, int64_t ch, int64_t y,
                     int64_t x) -> float {
        return src[static_cast<size_t>(((b * c + ch) * h + y) * w +
                                       x)];
    };

    // Parallel over (batch, output-channel) planes: each lane writes
    // disjoint output planes with serial-identical arithmetic, so the
    // result is bit-identical at any thread count.
    double plane_macs = static_cast<double>(oh * ow) *
                        static_cast<double>(c * kh * kw);
    util::parallelFor(
        0, n * o, util::grainFor(2.0 * plane_macs),
        [&](int64_t p0, int64_t p1) {
            for (int64_t p = p0; p < p1; p++) {
                int64_t b = p / o;
                int64_t oc = p % o;
                float bias_v = has_bias ? bias.flat(oc) : 0.0f;
                for (int64_t oy = 0; oy < oh; oy++) {
                    for (int64_t ox = 0; ox < ow; ox++) {
                        float acc = bias_v;
                        int64_t iy0 = oy * stride - padding;
                        int64_t ix0 = ox * stride - padding;
                        for (int64_t ic = 0; ic < c; ic++) {
                            for (int64_t ky = 0; ky < kh; ky++) {
                                int64_t iy = iy0 + ky;
                                if (iy < 0 || iy >= h)
                                    continue;
                                for (int64_t kx = 0; kx < kw; kx++) {
                                    int64_t ix = ix0 + kx;
                                    if (ix < 0 || ix >= w)
                                        continue;
                                    acc +=
                                        in_at(b, ic, iy, ix) *
                                        wt[static_cast<size_t>(
                                            ((oc * c + ic) * kh +
                                             ky) * kw +
                                            kx)];
                                }
                            }
                        }
                        dst[static_cast<size_t>(
                            ((b * o + oc) * oh + oy) * ow + ox)] =
                            acc;
                    }
                }
            }
        });

    double macs = static_cast<double>(n * o * oh * ow) *
                  static_cast<double>(c * kh * kw);
    op.setFlops(2.0 * macs);
    op.setBytesRead(
        static_cast<double>(input.numel() + weight.numel() +
                            (has_bias ? o : 0)) *
        elemBytes);
    op.setBytesWritten(static_cast<double>(out.numel()) * elemBytes);
    return out;
}

namespace
{

template <typename Fold>
Tensor
pool2d(const char *name, const Tensor &input, int64_t kernel,
       int64_t stride, float init, Fold fold, bool mean)
{
    util::panicIf(input.dim() != 4, "pool2d: NCHW input required");
    util::panicIf(kernel < 1 || stride < 1,
                  "pool2d: kernel/stride must be positive");

    int64_t n = input.size(0), c = input.size(1);
    int64_t h = input.size(2), w = input.size(3);
    int64_t oh = (h - kernel) / stride + 1;
    int64_t ow = (w - kernel) / stride + 1;
    util::panicIf(oh < 1 || ow < 1, "pool2d: kernel exceeds input");

    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    Tensor out = Tensor::uninitialized({n, c, oh, ow});
    auto src = input.data();
    auto dst = out.data();

    // Parallel over (batch, channel) planes, mirroring conv2d.
    util::parallelFor(
        0, n * c,
        util::grainFor(static_cast<double>(oh * ow) *
                       static_cast<double>(kernel * kernel)),
        [&](int64_t p0, int64_t p1) {
            for (int64_t p = p0; p < p1; p++) {
                int64_t b = p / c;
                int64_t ch = p % c;
                for (int64_t oy = 0; oy < oh; oy++) {
                    for (int64_t ox = 0; ox < ow; ox++) {
                        float acc = init;
                        for (int64_t ky = 0; ky < kernel; ky++) {
                            for (int64_t kx = 0; kx < kernel; kx++) {
                                int64_t iy = oy * stride + ky;
                                int64_t ix = ox * stride + kx;
                                acc = fold(
                                    acc,
                                    src[static_cast<size_t>(
                                        ((b * c + ch) * h + iy) * w +
                                        ix)]);
                            }
                        }
                        if (mean)
                            acc /= static_cast<float>(kernel *
                                                      kernel);
                        dst[static_cast<size_t>(
                            ((b * c + ch) * oh + oy) * ow + ox)] =
                            acc;
                    }
                }
            }
        });

    auto in_n = static_cast<double>(input.numel());
    op.setFlops(static_cast<double>(out.numel()) *
                static_cast<double>(kernel * kernel));
    op.setBytesRead(in_n * elemBytes);
    op.setBytesWritten(static_cast<double>(out.numel()) * elemBytes);
    return out;
}

} // namespace

Tensor
maxPool2d(const Tensor &input, int64_t kernel, int64_t stride)
{
    return pool2d("max_pool2d", input, kernel, stride,
                  -std::numeric_limits<float>::infinity(),
                  [](float acc, float v) { return std::max(acc, v); },
                  false);
}

Tensor
avgPool2d(const Tensor &input, int64_t kernel, int64_t stride)
{
    return pool2d("avg_pool2d", input, kernel, stride, 0.0f,
                  [](float acc, float v) { return acc + v; }, true);
}

} // namespace nsbench::tensor
