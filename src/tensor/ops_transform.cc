#include <algorithm>
#include <numeric>

#include "tensor/ops.hh"
#include "tensor/ops_common.hh"

namespace nsbench::tensor
{

using detail::elemBytes;

Tensor
transpose2d(const Tensor &a)
{
    util::panicIf(a.dim() != 2, "transpose2d: rank-2 tensor required");
    core::ScopedOp op("transpose", core::OpCategory::DataTransform);
    int64_t m = a.size(0), n = a.size(1);
    Tensor out = Tensor::uninitialized({n, m});
    auto src = a.data();
    auto dst = out.data();
    for (int64_t i = 0; i < m; i++) {
        for (int64_t j = 0; j < n; j++) {
            dst[static_cast<size_t>(j * m + i)] =
                src[static_cast<size_t>(i * n + j)];
        }
    }
    auto numel = static_cast<double>(a.numel());
    op.setBytesRead(numel * elemBytes);
    op.setBytesWritten(numel * elemBytes);
    return out;
}

Tensor
permute(const Tensor &a, const std::vector<int64_t> &perm)
{
    auto rank = static_cast<int64_t>(a.dim());
    util::panicIf(static_cast<int64_t>(perm.size()) != rank,
                  "permute: permutation rank mismatch");
    std::vector<bool> seen(static_cast<size_t>(rank), false);
    for (int64_t p : perm) {
        util::panicIf(p < 0 || p >= rank || seen[static_cast<size_t>(p)],
                      "permute: invalid permutation");
        seen[static_cast<size_t>(p)] = true;
    }

    core::ScopedOp op("permute", core::OpCategory::DataTransform);

    Shape out_shape(static_cast<size_t>(rank));
    for (int64_t d = 0; d < rank; d++) {
        out_shape[static_cast<size_t>(d)] =
            a.shape()[static_cast<size_t>(perm[static_cast<size_t>(d)])];
    }
    Tensor out = Tensor::uninitialized(out_shape);

    // Row-major strides of the input.
    std::vector<int64_t> in_strides(static_cast<size_t>(rank), 1);
    for (int64_t d = rank - 1; d-- > 0;) {
        in_strides[static_cast<size_t>(d)] =
            in_strides[static_cast<size_t>(d + 1)] *
            a.shape()[static_cast<size_t>(d + 1)];
    }

    auto src = a.data();
    auto dst = out.data();
    std::vector<int64_t> idx(static_cast<size_t>(rank), 0);
    for (int64_t flat = 0; flat < out.numel(); flat++) {
        int64_t src_flat = 0;
        for (int64_t d = 0; d < rank; d++) {
            src_flat += idx[static_cast<size_t>(d)] *
                        in_strides[static_cast<size_t>(
                            perm[static_cast<size_t>(d)])];
        }
        dst[static_cast<size_t>(flat)] =
            src[static_cast<size_t>(src_flat)];
        // Odometer increment over the output index.
        for (int64_t d = rank - 1; d >= 0; d--) {
            if (++idx[static_cast<size_t>(d)] <
                out_shape[static_cast<size_t>(d)]) {
                break;
            }
            idx[static_cast<size_t>(d)] = 0;
        }
    }

    auto numel = static_cast<double>(a.numel());
    op.setBytesRead(numel * elemBytes);
    op.setBytesWritten(numel * elemBytes);
    return out;
}

Tensor
concat(const std::vector<Tensor> &parts, int64_t axis)
{
    util::panicIf(parts.empty(), "concat: no tensors");
    auto rank = static_cast<int64_t>(parts[0].dim());
    util::panicIf(axis < 0 || axis >= rank,
                  "concat: axis out of range");
    for (const auto &p : parts) {
        util::panicIf(static_cast<int64_t>(p.dim()) != rank,
                      "concat: rank mismatch");
        for (int64_t d = 0; d < rank; d++) {
            util::panicIf(d != axis &&
                              p.shape()[static_cast<size_t>(d)] !=
                                  parts[0].shape()[
                                      static_cast<size_t>(d)],
                          "concat: non-axis extent mismatch");
        }
    }

    core::ScopedOp op("concat", core::OpCategory::DataTransform);

    Shape out_shape = parts[0].shape();
    int64_t total_axis = 0;
    for (const auto &p : parts)
        total_axis += p.shape()[static_cast<size_t>(axis)];
    out_shape[static_cast<size_t>(axis)] = total_axis;

    int64_t inner = 1;
    for (int64_t d = axis + 1; d < rank; d++)
        inner *= out_shape[static_cast<size_t>(d)];
    int64_t outer = 1;
    for (int64_t d = 0; d < axis; d++)
        outer *= out_shape[static_cast<size_t>(d)];

    Tensor out = Tensor::uninitialized(out_shape);
    auto dst = out.data();
    int64_t axis_off = 0;
    for (const auto &p : parts) {
        int64_t p_axis = p.shape()[static_cast<size_t>(axis)];
        auto src = p.data();
        for (int64_t o = 0; o < outer; o++) {
            const float *s =
                &src[static_cast<size_t>(o * p_axis * inner)];
            float *d = &dst[static_cast<size_t>(
                (o * total_axis + axis_off) * inner)];
            std::copy(s, s + p_axis * inner, d);
        }
        axis_off += p_axis;
    }

    auto numel = static_cast<double>(out.numel());
    op.setBytesRead(numel * elemBytes);
    op.setBytesWritten(numel * elemBytes);
    return out;
}

Tensor
slice(const Tensor &a, int64_t axis, int64_t start, int64_t length)
{
    auto rank = static_cast<int64_t>(a.dim());
    util::panicIf(axis < 0 || axis >= rank, "slice: axis out of range");
    int64_t extent = a.shape()[static_cast<size_t>(axis)];
    util::panicIf(start < 0 || length < 0 || start + length > extent,
                  "slice: range out of bounds");

    core::ScopedOp op("slice", core::OpCategory::DataTransform);

    Shape out_shape = a.shape();
    out_shape[static_cast<size_t>(axis)] = length;

    int64_t inner = 1;
    for (int64_t d = axis + 1; d < rank; d++)
        inner *= a.shape()[static_cast<size_t>(d)];
    int64_t outer = 1;
    for (int64_t d = 0; d < axis; d++)
        outer *= a.shape()[static_cast<size_t>(d)];

    Tensor out = Tensor::uninitialized(out_shape);
    auto src = a.data();
    auto dst = out.data();
    for (int64_t o = 0; o < outer; o++) {
        const float *s = &src[static_cast<size_t>(
            (o * extent + start) * inner)];
        float *d = &dst[static_cast<size_t>(o * length * inner)];
        std::copy(s, s + length * inner, d);
    }

    auto numel = static_cast<double>(out.numel());
    op.setBytesRead(numel * elemBytes);
    op.setBytesWritten(numel * elemBytes);
    return out;
}

Tensor
gatherRows(const Tensor &a, const std::vector<int64_t> &rows)
{
    util::panicIf(a.dim() != 2, "gatherRows: rank-2 tensor required");
    core::ScopedOp op("gather", core::OpCategory::DataTransform);
    int64_t cols = a.size(1);
    Tensor out =
        Tensor::uninitialized({static_cast<int64_t>(rows.size()), cols});
    auto src = a.data();
    auto dst = out.data();
    for (size_t r = 0; r < rows.size(); r++) {
        int64_t row = rows[r];
        util::panicIf(row < 0 || row >= a.size(0),
                      "gatherRows: row index out of range");
        std::copy(&src[static_cast<size_t>(row * cols)],
                  &src[static_cast<size_t>((row + 1) * cols)],
                  &dst[r * static_cast<size_t>(cols)]);
    }
    auto numel = static_cast<double>(out.numel());
    op.setBytesRead(numel * elemBytes +
                    static_cast<double>(rows.size()) * 8.0);
    op.setBytesWritten(numel * elemBytes);
    return out;
}

Tensor
maskedSelect(const Tensor &a, const Tensor &mask)
{
    util::panicIf(a.shape() != mask.shape(),
                  "maskedSelect: shape mismatch");
    core::ScopedOp op("masked_select", core::OpCategory::DataTransform);
    auto src = a.data();
    auto msk = mask.data();
    std::vector<float> kept;
    for (size_t i = 0; i < src.size(); i++) {
        if (msk[i] != 0.0f)
            kept.push_back(src[i]);
    }
    auto numel = static_cast<double>(a.numel());
    op.setBytesRead(2.0 * numel * elemBytes);
    op.setBytesWritten(static_cast<double>(kept.size()) * elemBytes);
    auto n = static_cast<int64_t>(kept.size());
    return Tensor({n}, std::move(kept));
}

Tensor
oneHot(const std::vector<int64_t> &indices, int64_t classes)
{
    util::panicIf(classes < 1, "oneHot: need at least one class");
    core::ScopedOp op("one_hot", core::OpCategory::DataTransform);
    Tensor out({static_cast<int64_t>(indices.size()), classes});
    for (size_t i = 0; i < indices.size(); i++) {
        util::panicIf(indices[i] < 0 || indices[i] >= classes,
                      "oneHot: index out of range");
        out.at({static_cast<int64_t>(i), indices[i]}) = 1.0f;
    }
    op.setBytesRead(static_cast<double>(indices.size()) * 8.0);
    op.setBytesWritten(static_cast<double>(out.numel()) * elemBytes);
    return out;
}

Tensor
copyTensor(const Tensor &a)
{
    core::ScopedOp op("copy", core::OpCategory::DataMovement);
    Tensor out = a.clone();
    auto numel = static_cast<double>(a.numel());
    op.setBytesRead(numel * elemBytes);
    op.setBytesWritten(numel * elemBytes);
    return out;
}

Tensor
transfer(const Tensor &a, const char *label)
{
    core::ScopedOp op(label, core::OpCategory::DataMovement);
    Tensor out = a.clone();
    auto numel = static_cast<double>(a.numel());
    op.setBytesRead(numel * elemBytes);
    op.setBytesWritten(numel * elemBytes);
    return out;
}

} // namespace nsbench::tensor
