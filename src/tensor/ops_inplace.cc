/**
 * @file
 * In-place elementwise ops.
 *
 * These reuse the destination's storage instead of allocating a fresh
 * result, cutting the allocation churn and write-allocate traffic the
 * paper's Fig. 3 attributes to the symbolic stages. Arithmetic is the
 * same simd span kernels as the allocating ops, applied with
 * out == dst (exact aliasing, which the kernel contract permits), so
 * results are bit-identical to the allocating counterparts.
 *
 * Profiler attribution matches the allocating ops' stream model
 * (inputs read once, output written once); only the op names differ
 * ("add_inplace", ...) so characterization can tell the paths apart.
 */

#include "tensor/ops.hh"

#include "tensor/fused.hh"
#include "tensor/ops_common.hh"

namespace nsbench::tensor
{

namespace simd = nsbench::util::simd;

namespace
{

/** Shared frame for dst = kernel(dst, src). */
void
ewBinaryInPlace(const char *name, Tensor &dst, const Tensor &src,
                detail::BinaryKernel kernel,
                double flops_per_elem = 1.0)
{
    util::panicIf(dst.shape() != src.shape(),
                  std::string(name) + ": shape mismatch " +
                      shapeStr(dst.shape()) + " vs " +
                      shapeStr(src.shape()));
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    auto pd = dst.data();
    auto ps = src.data();
    auto n = static_cast<int64_t>(pd.size());
    util::parallelFor(0, n, util::grainFor(flops_per_elem),
                      [&](int64_t lo, int64_t hi) {
                          kernel(pd.data() + lo, ps.data() + lo,
                                 pd.data() + lo, hi - lo);
                      });
    op.setFlops(static_cast<double>(n) * flops_per_elem);
    op.setBytesRead(2.0 * static_cast<double>(n) *
                    detail::elemBytes);
    op.setBytesWritten(static_cast<double>(n) * detail::elemBytes);
}

/** Shared frame for dst = kernel(dst, s). */
void
ewScalarInPlace(const char *name, Tensor &dst, float s,
                void (*kernel)(const float *, float, float *, int64_t),
                double flops_per_elem = 1.0)
{
    core::ScopedOp op(name, core::OpCategory::VectorElementwise);
    auto pd = dst.data();
    auto n = static_cast<int64_t>(pd.size());
    util::parallelFor(0, n, util::grainFor(flops_per_elem),
                      [&](int64_t lo, int64_t hi) {
                          kernel(pd.data() + lo, s, pd.data() + lo,
                                 hi - lo);
                      });
    op.setFlops(static_cast<double>(n) * flops_per_elem);
    op.setBytesRead(static_cast<double>(n) * detail::elemBytes);
    op.setBytesWritten(static_cast<double>(n) * detail::elemBytes);
}

} // namespace

void
addInPlace(Tensor &dst, const Tensor &src)
{
    ewBinaryInPlace("add_inplace", dst, src, simd::add);
}

void
subInPlace(Tensor &dst, const Tensor &src)
{
    ewBinaryInPlace("sub_inplace", dst, src, simd::sub);
}

void
mulInPlace(Tensor &dst, const Tensor &src)
{
    ewBinaryInPlace("mul_inplace", dst, src, simd::mul);
}

void
minimumInPlace(Tensor &dst, const Tensor &src)
{
    ewBinaryInPlace("minimum_inplace", dst, src, simd::minimum);
}

void
maximumInPlace(Tensor &dst, const Tensor &src)
{
    ewBinaryInPlace("maximum_inplace", dst, src, simd::maximum);
}

void
addScalarInPlace(Tensor &dst, float s)
{
    ewScalarInPlace("add_scalar_inplace", dst, s, simd::addScalar);
}

void
mulScalarInPlace(Tensor &dst, float s)
{
    ewScalarInPlace("mul_scalar_inplace", dst, s, simd::mulScalar);
}

void
reluInPlace(Tensor &dst)
{
    core::ScopedOp op("relu_inplace",
                      core::OpCategory::VectorElementwise);
    auto pd = dst.data();
    auto n = static_cast<int64_t>(pd.size());
    util::parallelFor(0, n, util::grainFor(1.0),
                      [&](int64_t lo, int64_t hi) {
                          simd::relu(pd.data() + lo, pd.data() + lo,
                                     hi - lo);
                      });
    op.setFlops(static_cast<double>(n));
    op.setBytesRead(static_cast<double>(n) * detail::elemBytes);
    op.setBytesWritten(static_cast<double>(n) * detail::elemBytes);
}

void
clampInPlace(Tensor &dst, float lo, float hi)
{
    core::ScopedOp op("clamp_inplace",
                      core::OpCategory::VectorElementwise);
    auto pd = dst.data();
    auto n = static_cast<int64_t>(pd.size());
    util::parallelFor(0, n, util::grainFor(1.0),
                      [&](int64_t l, int64_t h) {
                          simd::clampRange(pd.data() + l, lo, hi,
                                           pd.data() + l, h - l);
                      });
    op.setFlops(static_cast<double>(n));
    op.setBytesRead(static_cast<double>(n) * detail::elemBytes);
    op.setBytesWritten(static_cast<double>(n) * detail::elemBytes);
}

void
subScaledInPlace(Tensor &dst, const Tensor &src, float s)
{
    // Deliberately mulScalar-into-scratch then sub — NOT axpy, whose
    // AVX2 FMA rounds once where mul-then-sub rounds twice; this must
    // stay bit-identical to sub(dst, mulScalar(src, s)).
    fusedMap("sub_scaled_inplace", dst, dst, src, 2.0,
             [s](const float *a, const float *b, float *out,
                 float *scratch, int64_t n) {
                 simd::mulScalar(b, s, scratch, n);
                 simd::sub(a, scratch, out, n);
             });
}

} // namespace nsbench::tensor
