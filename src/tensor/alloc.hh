/**
 * @file
 * Tensor storage allocation policy.
 *
 * Chooses where tensor storage buffers come from:
 *
 *  - Heap (the default): every buffer is a fresh 64-byte-aligned heap
 *    allocation, matching the historical std::vector-backed storage.
 *  - Arena: buffers come from util::Arena's size-classed free lists,
 *    so steady-state execution recycles instead of allocating.
 *
 * Selection mirrors the SIMD/threads override pattern:
 *
 *  - NSBENCH_ARENA=on|1|true   opt into the arena,
 *  - NSBENCH_ARENA=off|0|false force the heap (also the default),
 *  - setAllocator() overrides programmatically (used by --arena and
 *    the allocator tests to compare both modes in one process).
 *
 * Correctness contract: the allocator changes only where bytes live,
 * never what the kernels compute — results, profiler FLOP/byte
 * attribution and the Fig. 3b live-byte accounting are identical in
 * both modes (live bytes track the logical tensor size, not the
 * rounded arena class). Buffers remember which allocator produced
 * them, so toggling the mode while tensors are alive is safe.
 */

#ifndef NSBENCH_TENSOR_ALLOC_HH
#define NSBENCH_TENSOR_ALLOC_HH

#include <cstddef>

namespace nsbench::tensor
{

/** Where tensor storage buffers come from. */
enum class AllocatorKind
{
    Heap,  ///< Fresh heap allocation per buffer (default).
    Arena, ///< Size-classed recycling via util::Arena.
};

/**
 * The allocator new tensor storage uses, resolved once from the
 * NSBENCH_ARENA override (default Heap). Thread-safe.
 */
AllocatorKind activeAllocator();

/**
 * Overrides the active allocator (test hook; also used by --arena).
 * Live tensors keep the allocator they were created with. Call
 * outside parallel regions.
 */
void setAllocator(AllocatorKind kind);

/** Drops any override; the next activeAllocator() re-resolves. */
void resetAllocator();

/** Human-readable name: "heap" or "arena". */
const char *allocatorName(AllocatorKind kind);

/** Shorthand for allocatorName(activeAllocator()). */
const char *activeAllocatorName();

namespace detail
{

/**
 * One raw storage buffer for `n` floats, plus the bookkeeping needed
 * to return it to whichever allocator produced it. The contents are
 * UNINITIALIZED; Tensor's constructors decide whether to zero-fill.
 */
struct RawStorage
{
    float *data = nullptr;
    size_t classBytes = 0; ///< Rounded capacity (arena blocks only).
    bool fromArena = false;
    bool recycled = false; ///< Served from an arena free list.
};

/** Acquires an uninitialized buffer for @p n floats. */
RawStorage acquireStorage(size_t n);

/** Returns a buffer to the allocator that produced it. */
void releaseStorage(const RawStorage &raw);

} // namespace detail

} // namespace nsbench::tensor

#endif // NSBENCH_TENSOR_ALLOC_HH
