#include "data/tabular.hh"

#include <set>

#include "util/logging.hh"

namespace nsbench::data
{

using tensor::Tensor;

Tensor
RelationalDataset::friendMatrix() const
{
    Tensor m({people, people});
    for (const auto &[a, b] : friendships) {
        m(a, b) = 1.0f;
        m(b, a) = 1.0f;
    }
    return m;
}

RelationalDataset
makeRelationalDataset(int people, int feature_dim,
                      int friends_per_person, util::Rng &rng)
{
    util::panicIf(people < 4 || feature_dim < 1,
                  "makeRelationalDataset: population too small");

    RelationalDataset d;
    d.people = people;
    d.featureDim = feature_dim;
    d.features = Tensor({people, feature_dim});
    d.smokes.resize(static_cast<size_t>(people));
    d.cancer.resize(static_cast<size_t>(people));

    for (int i = 0; i < people; i++) {
        bool smoker = rng.bernoulli(0.5);
        d.smokes[static_cast<size_t>(i)] = smoker;
        // Two well-separated Gaussian clusters in feature space.
        float mean = smoker ? 1.0f : -1.0f;
        for (int f = 0; f < feature_dim; f++)
            d.features(i, f) = rng.normal(mean, 0.5f);
        // Cancer is strongly trait-correlated but noisy.
        d.cancer[static_cast<size_t>(i)] =
            rng.bernoulli(smoker ? 0.8 : 0.1);
    }

    // Friendship graph with homophily: same-trait pairs are more
    // likely, which makes the LTN axiom "friends of smokers smoke"
    // approximately satisfiable.
    std::set<std::pair<int, int>> edges;
    int target_edges = people * friends_per_person / 2;
    int attempts = 0;
    while (static_cast<int>(edges.size()) < target_edges &&
           attempts < target_edges * 50) {
        attempts++;
        int a = static_cast<int>(rng.uniformInt(0, people - 1));
        int b = static_cast<int>(rng.uniformInt(0, people - 1));
        if (a == b)
            continue;
        if (a > b)
            std::swap(a, b);
        bool same = d.smokes[static_cast<size_t>(a)] ==
                    d.smokes[static_cast<size_t>(b)];
        if (!rng.bernoulli(same ? 0.9 : 0.15))
            continue;
        edges.insert({a, b});
    }
    d.friendships.assign(edges.begin(), edges.end());
    return d;
}

} // namespace nsbench::data
