#include "data/familytree.hh"

#include "util/logging.hh"

namespace nsbench::data
{

using tensor::Tensor;

Tensor
FamilyGraph::unaryTensor() const
{
    return Tensor::ones({people, 1});
}

Tensor
FamilyGraph::binaryTensor() const
{
    Tensor t({people, people, 1});
    for (int i = 0; i < people; i++) {
        for (int j = 0; j < people; j++) {
            if (parent[static_cast<size_t>(i)][static_cast<size_t>(j)])
                t(i, j, 0) = 1.0f;
        }
    }
    return t;
}

Tensor
FamilyGraph::targetTensor() const
{
    Tensor t({people, people, 3});
    for (int i = 0; i < people; i++) {
        for (int j = 0; j < people; j++) {
            auto si = static_cast<size_t>(i);
            auto sj = static_cast<size_t>(j);
            if (grandparent[si][sj])
                t(i, j, 0) = 1.0f;
            if (sibling[si][sj])
                t(i, j, 1) = 1.0f;
            if (uncleAunt[si][sj])
                t(i, j, 2) = 1.0f;
        }
    }
    return t;
}

FamilyGraph
makeFamilyGraph(int generations, int people_per_generation,
                util::Rng &rng)
{
    util::panicIf(generations < 2 || people_per_generation < 2,
                  "makeFamilyGraph: need >=2 generations of >=2");

    FamilyGraph g;
    g.people = generations * people_per_generation;
    auto n = static_cast<size_t>(g.people);
    g.parent.assign(n, std::vector<bool>(n, false));

    auto person = [&](int gen, int idx) {
        return gen * people_per_generation + idx;
    };

    // Everyone below generation 0 gets two distinct parents from the
    // generation above.
    for (int gen = 1; gen < generations; gen++) {
        for (int idx = 0; idx < people_per_generation; idx++) {
            int child = person(gen, idx);
            int p1 = static_cast<int>(
                rng.uniformInt(0, people_per_generation - 1));
            int p2 = p1;
            while (p2 == p1) {
                p2 = static_cast<int>(
                    rng.uniformInt(0, people_per_generation - 1));
            }
            g.parent[static_cast<size_t>(person(gen - 1, p1))]
                    [static_cast<size_t>(child)] = true;
            g.parent[static_cast<size_t>(person(gen - 1, p2))]
                    [static_cast<size_t>(child)] = true;
        }
    }

    // Derive ground-truth relations by composition.
    g.grandparent.assign(n, std::vector<bool>(n, false));
    g.sibling.assign(n, std::vector<bool>(n, false));
    g.uncleAunt.assign(n, std::vector<bool>(n, false));

    for (size_t a = 0; a < n; a++) {
        for (size_t b = 0; b < n; b++) {
            if (!g.parent[a][b])
                continue;
            for (size_t c = 0; c < n; c++) {
                if (g.parent[b][c])
                    g.grandparent[a][c] = true;
            }
        }
    }
    for (size_t a = 0; a < n; a++) {
        for (size_t b = 0; b < n; b++) {
            if (a == b)
                continue;
            // Siblings share at least one parent.
            for (size_t p = 0; p < n; p++) {
                if (g.parent[p][a] && g.parent[p][b]) {
                    g.sibling[a][b] = true;
                    break;
                }
            }
        }
    }
    for (size_t u = 0; u < n; u++) {
        for (size_t c = 0; c < n; c++) {
            // u is uncle/aunt of c when u is a sibling of a parent
            // of c.
            for (size_t p = 0; p < n; p++) {
                if (g.parent[p][c] && g.sibling[u][p]) {
                    g.uncleAunt[u][c] = true;
                    break;
                }
            }
        }
    }
    return g;
}

} // namespace nsbench::data
