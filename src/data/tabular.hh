/**
 * @file
 * Relational tabular data for the LTN workload.
 *
 * Substitutes for the UCI-style datasets: a population of individuals
 * with feature vectors drawn from two Gaussian clusters (the latent
 * "smoker" trait), a random friendship graph biased toward same-trait
 * pairs, and trait-correlated "cancer" labels — the classic
 * smokers-friends-cancer LTN benchmark structure.
 */

#ifndef NSBENCH_DATA_TABULAR_HH
#define NSBENCH_DATA_TABULAR_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace nsbench::data
{

/** The generated relational population. */
struct RelationalDataset
{
    int people = 0;
    int featureDim = 0;

    tensor::Tensor features;        ///< [people, featureDim].
    std::vector<bool> smokes;       ///< Latent trait per person.
    std::vector<bool> cancer;       ///< Correlated label per person.
    std::vector<std::pair<int, int>> friendships; ///< Undirected pairs.

    /** Friendship indicator matrix [people, people]. */
    tensor::Tensor friendMatrix() const;
};

/**
 * Samples the dataset.
 *
 * @param people Population size.
 * @param feature_dim Feature dimensionality.
 * @param friends_per_person Average friendship degree.
 */
RelationalDataset makeRelationalDataset(int people, int feature_dim,
                                        int friends_per_person,
                                        util::Rng &rng);

} // namespace nsbench::data

#endif // NSBENCH_DATA_TABULAR_HH
