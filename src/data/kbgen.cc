#include "data/kbgen.hh"

#include <set>
#include <string>

#include "util/logging.hh"

namespace nsbench::data
{

using logic::Rule;
using logic::Term;

UniversityKb
makeUniversityKb(int departments, int professors_per_dept,
                 int students_per_dept, int courses_per_prof,
                 uint64_t seed)
{
    util::panicIf(departments < 1 || professors_per_dept < 1 ||
                      students_per_dept < 1 || courses_per_prof < 1,
                  "makeUniversityKb: non-positive sizes");

    UniversityKb u;
    util::Rng rng(seed);
    auto &kb = u.kb;

    u.professor = kb.addPredicate("professor", 1);
    u.student = kb.addPredicate("student", 1);
    u.course = kb.addPredicate("course", 1);
    u.teaches = kb.addPredicate("teaches", 2);
    u.takes = kb.addPredicate("takes", 2);
    u.advisor = kb.addPredicate("advisor", 2);
    u.memberOf = kb.addPredicate("memberOf", 2);
    u.department = kb.addPredicate("department", 1);
    u.taughtBy = kb.addPredicate("taughtBy", 2);
    u.colleague = kb.addPredicate("colleague", 2);
    u.seniorStudent = kb.addPredicate("seniorStudent", 1);

    std::set<std::pair<int32_t, int32_t>> taught_by_truth;

    for (int d = 0; d < departments; d++) {
        std::string dept_name = "dept" + std::to_string(d);
        logic::ConstId dept = kb.addConstant(dept_name);
        kb.addFact({u.department, {dept}});

        std::vector<logic::ConstId> profs;
        std::vector<std::vector<logic::ConstId>> prof_courses;
        for (int p = 0; p < professors_per_dept; p++) {
            logic::ConstId prof = kb.addConstant(
                dept_name + "_prof" + std::to_string(p));
            profs.push_back(prof);
            kb.addFact({u.professor, {prof}});
            kb.addFact({u.memberOf, {prof, dept}});

            std::vector<logic::ConstId> courses;
            for (int c = 0; c < courses_per_prof; c++) {
                logic::ConstId crs = kb.addConstant(
                    dept_name + "_p" + std::to_string(p) + "_course" +
                    std::to_string(c));
                courses.push_back(crs);
                kb.addFact({u.course, {crs}});
                kb.addFact({u.teaches, {prof, crs}});
            }
            prof_courses.push_back(std::move(courses));
        }

        for (int s = 0; s < students_per_dept; s++) {
            logic::ConstId stu = kb.addConstant(
                dept_name + "_student" + std::to_string(s));
            kb.addFact({u.student, {stu}});
            kb.addFact({u.memberOf, {stu, dept}});

            // Each student has an advisor and takes 2 courses.
            auto adv_idx = static_cast<size_t>(rng.uniformInt(
                0, static_cast<int64_t>(profs.size()) - 1));
            kb.addFact({u.advisor, {profs[adv_idx], stu}});

            for (int t = 0; t < 2; t++) {
                auto p_idx = static_cast<size_t>(rng.uniformInt(
                    0, static_cast<int64_t>(profs.size()) - 1));
                const auto &courses = prof_courses[p_idx];
                auto c_idx = static_cast<size_t>(rng.uniformInt(
                    0, static_cast<int64_t>(courses.size()) - 1));
                kb.addFact({u.takes, {stu, courses[c_idx]}});
                taught_by_truth.insert({stu, profs[p_idx]});
            }
        }
    }
    u.expectedTaughtBy = taught_by_truth.size();

    // taughtBy(S, P) :- takes(S, C), teaches(P, C).
    {
        Rule r;
        r.name = "taughtBy";
        r.head = {u.taughtBy, {Term::var(0), Term::var(1)}};
        r.body = {{u.takes, {Term::var(0), Term::var(2)}},
                  {u.teaches, {Term::var(1), Term::var(2)}}};
        kb.addRule(std::move(r));
    }
    // colleague(P1, P2) :- professor(P1), professor(P2),
    //                      memberOf(P1, D), memberOf(P2, D).
    {
        Rule r;
        r.name = "colleague";
        r.head = {u.colleague, {Term::var(0), Term::var(1)}};
        r.body = {{u.professor, {Term::var(0)}},
                  {u.professor, {Term::var(1)}},
                  {u.memberOf, {Term::var(0), Term::var(2)}},
                  {u.memberOf, {Term::var(1), Term::var(2)}}};
        kb.addRule(std::move(r));
    }
    // seniorStudent(S) :- advisor(P, S), taughtBy(S, P).
    {
        Rule r;
        r.name = "seniorStudent";
        r.head = {u.seniorStudent, {Term::var(0)}};
        r.body = {{u.advisor, {Term::var(1), Term::var(0)}},
                  {u.taughtBy, {Term::var(0), Term::var(1)}}};
        kb.addRule(std::move(r));
    }

    return u;
}

} // namespace nsbench::data
