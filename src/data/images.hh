/**
 * @file
 * Procedural image domains.
 *
 * Substitutes for the GTA / Cityscapes pairs (VSAIT) and the
 * hierarchical-concept corpus (ZeroC): two texture domains with a
 * known semantic layout, and concept scenes composed of primitive
 * shapes with spatial relations.
 */

#ifndef NSBENCH_DATA_IMAGES_HH
#define NSBENCH_DATA_IMAGES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace nsbench::data
{

/** The two unpaired translation domains. */
enum class ImageDomain
{
    Source, ///< "GTA": stripe-textured regions.
    Target, ///< "Cityscapes": checker-textured regions.
};

/**
 * A semantic-region image: the pixel tensor plus its per-pixel
 * semantic labels (0 = background, 1 = road, 2 = object), so semantic
 * flipping is checkable after translation.
 */
struct SemanticImage
{
    tensor::Tensor pixels; ///< [1, size, size] grayscale.
    std::vector<int> labels; ///< size*size semantic ids.
    int64_t size = 0;
};

/**
 * Samples a two-region scene in the given domain's texture style.
 *
 * @param domain Which texture style to render.
 * @param size Edge length in pixels.
 */
SemanticImage makeDomainImage(ImageDomain domain, int64_t size,
                              util::Rng &rng);

/** Primitive concepts for the ZeroC scenes. */
enum class ConceptShape
{
    VerticalLine,
    HorizontalLine,
    Rectangle,
    LShape,
};

/** Number of primitive concept shapes. */
inline constexpr int numConceptShapes = 4;

/** Concept-shape name. */
std::string_view conceptShapeName(ConceptShape shape);

/** Spatial relations between concept instances. */
enum class ConceptRelation
{
    Parallel,
    Perpendicular,
    Attached,
};

/** One placed concept instance. */
struct PlacedConcept
{
    ConceptShape shape{};
    int64_t row = 0;    ///< Top-left row.
    int64_t col = 0;    ///< Top-left column.
    int64_t extent = 0; ///< Characteristic length.
};

/** A rendered concept scene with ground truth. */
struct ConceptScene
{
    tensor::Tensor pixels; ///< [1, size, size].
    std::vector<PlacedConcept> concepts;
    int64_t size = 0;
};

/**
 * Renders a scene containing the given shapes at random
 * non-overlapping positions.
 */
ConceptScene makeConceptScene(const std::vector<ConceptShape> &shapes,
                              int64_t size, util::Rng &rng);

/**
 * Rasterizes one concept instance into a fresh [1, size, size] canvas
 * (template images for the energy models).
 */
tensor::Tensor renderConcept(const PlacedConcept &placed,
                             int64_t size);

} // namespace nsbench::data

#endif // NSBENCH_DATA_IMAGES_HH
