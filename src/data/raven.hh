/**
 * @file
 * Procedural Raven's-Progressive-Matrices generator.
 *
 * Substitutes for the RAVEN / I-RAVEN datasets: 3x3 matrices of panels
 * whose objects live on a g x g grid, with row-wise rules (constant,
 * progression, arithmetic, distribute-three) governing the number,
 * type, size and color attributes — the same rule/attribute space the
 * paper's NVSA and PrAE workloads reason over. Panels render to
 * grayscale images for the neural frontends, and the ground-truth
 * rules are recoverable, so the abduction engines can be validated
 * end-to-end.
 */

#ifndef NSBENCH_DATA_RAVEN_HH
#define NSBENCH_DATA_RAVEN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace nsbench::data
{

/** The ruled panel attributes. */
enum class AttributeId
{
    Number, ///< Object count, domain [1, g*g] stored as 0-based count-1.
    Type,   ///< Shape class, 5 values.
    Size,   ///< Object scale, 6 values.
    Color,  ///< Fill intensity, 10 values.
};

/** Number of ruled attributes. */
inline constexpr size_t numAttributes = 4;

/** All attributes in order. */
inline constexpr std::array<AttributeId, numAttributes> allAttributes =
    {AttributeId::Number, AttributeId::Type, AttributeId::Size,
     AttributeId::Color};

/** Attribute name for reports. */
std::string_view attributeName(AttributeId attr);

/** Domain size of an attribute for a given panel grid size. */
int attributeDomain(AttributeId attr, int grid);

/** Row-wise rule families (the RAVEN rule set). */
enum class RuleType
{
    Constant,        ///< a1 = a2 = a3.
    Progression,     ///< a_{i+1} = a_i + delta.
    Arithmetic,      ///< a3 = a1 + a2 (+1 correction for Number) or
                     ///< a3 = a1 - a2, by sign of delta.
    DistributeThree, ///< {a1,a2,a3} is a fixed 3-set, rotated per row.
};

/** Rule-type name for reports. */
std::string_view ruleTypeName(RuleType type);

/** One attribute's governing rule. */
struct AttributeRule
{
    RuleType type = RuleType::Constant;
    /** Progression step, or +1/-1 selecting arithmetic plus/minus. */
    int delta = 0;
    /** The value triple for DistributeThree (row-rotated). */
    std::array<int, 3> triple{};

    bool
    operator==(const AttributeRule &other) const
    {
        if (type != other.type)
            return false;
        switch (type) {
          case RuleType::Constant:
            return true;
          case RuleType::Progression:
          case RuleType::Arithmetic:
            return delta == other.delta;
          case RuleType::DistributeThree:
            // Rotations of the same triple are the same rule.
            for (int r = 0; r < 3; r++) {
                if (triple[0] == other.triple[static_cast<size_t>(r)] &&
                    triple[1] ==
                        other.triple[static_cast<size_t>((r + 1) % 3)] &&
                    triple[2] ==
                        other.triple[static_cast<size_t>((r + 2) % 3)]) {
                    return true;
                }
            }
            return false;
        }
        return false;
    }

    /** Short rendering like "progression(+1)". */
    std::string str() const;
};

/**
 * Predicted third value of a row under a rule, or -1 when the rule
 * cannot produce an in-domain value.
 *
 * @param domain Attribute domain size (values are 0..domain-1).
 */
int applyRule(const AttributeRule &rule, int a1, int a2, int domain);

/** Whether a complete row is consistent with a rule. */
bool ruleHolds(const AttributeRule &rule, int a1, int a2, int a3,
               int domain);

/**
 * Every candidate rule for a domain: constant, progressions with
 * |delta| in {1, 2}, arithmetic plus/minus, and all unordered value
 * triples for distribute-three. This is the search space the PrAE
 * backend enumerates exhaustively.
 */
std::vector<AttributeRule> enumerateRules(int domain);

/** One panel's symbolic description. */
struct PanelSpec
{
    int grid = 1;                ///< Objects live on a grid x grid.
    std::array<int, numAttributes> values{}; ///< 0-based values.
    std::vector<int> slots;      ///< Occupied cell indices.

    /** Value accessor by attribute. */
    int
    value(AttributeId attr) const
    {
        return values[static_cast<size_t>(attr)];
    }
};

/** A complete RPM puzzle instance. */
struct RpmPuzzle
{
    int grid = 1;
    std::array<AttributeRule, numAttributes> rules;
    /** Context panels in row-major order (positions 0..7 of the 3x3). */
    std::array<PanelSpec, 8> context;
    /** Candidate answers (8 panels). */
    std::vector<PanelSpec> candidates;
    /** Index of the correct candidate. */
    int answerIndex = 0;
};

/**
 * Puzzle generator and panel rasterizer.
 */
class RavenGenerator
{
  public:
    /** Rendered panel edge length in pixels. */
    static constexpr int64_t imageSize = 48;

    /**
     * @param grid Panel grid size g (1, 2 or 3): the paper's Fig. 2c
     *        task-size axis.
     * @param seed Generator seed.
     */
    RavenGenerator(int grid, uint64_t seed);

    /** Generates the next puzzle. */
    RpmPuzzle generate();

    /** Rasterizes a panel to a [1, imageSize, imageSize] tensor. */
    tensor::Tensor render(const PanelSpec &panel) const;

    /** The panel grid size. */
    int grid() const { return grid_; }

  private:
    int grid_;
    util::Rng rng_;

    /** Samples a rule valid for the attribute's domain. */
    AttributeRule sampleRule(int domain);

    /** Samples row-start values so the whole row stays in domain. */
    std::array<int, 3> sampleRow(const AttributeRule &rule, int domain);

    /** Fills slots for a panel given its Number value. */
    void assignSlots(PanelSpec &panel);
};

} // namespace nsbench::data

#endif // NSBENCH_DATA_RAVEN_HH
