/**
 * @file
 * Random family-graph generator for the NLM relational-reasoning task.
 *
 * Substitutes for the family-tree benchmark of the NLM paper:
 * generations of individuals with parent links, from which the target
 * relations (grandparent, sibling, uncle/aunt) follow by composition.
 * NLM consumes the base relations as predicate tensors and is scored
 * on recovering the derived ones.
 */

#ifndef NSBENCH_DATA_FAMILYTREE_HH
#define NSBENCH_DATA_FAMILYTREE_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace nsbench::data
{

/** A sampled family graph with base and derived relations. */
struct FamilyGraph
{
    int people = 0;

    /** parent[i][j]: person i is a parent of person j. */
    std::vector<std::vector<bool>> parent;

    /** Derived ground truth, filled by deriveRelations(). */
    std::vector<std::vector<bool>> grandparent;
    std::vector<std::vector<bool>> sibling;
    std::vector<std::vector<bool>> uncleAunt;

    /**
     * Base unary predicate tensor [people, 1] (a constant "person"
     * property, giving NLM a nullary-free arity-1 input group).
     */
    tensor::Tensor unaryTensor() const;

    /** Base binary predicate tensor [people, people, 1] (parent). */
    tensor::Tensor binaryTensor() const;

    /** Target relation tensor [people, people, 3]. */
    tensor::Tensor targetTensor() const;
};

/**
 * Samples a family graph.
 *
 * @param generations Number of generations.
 * @param people_per_generation Individuals per generation.
 * @param rng Sampling source.
 */
FamilyGraph makeFamilyGraph(int generations, int people_per_generation,
                            util::Rng &rng);

} // namespace nsbench::data

#endif // NSBENCH_DATA_FAMILYTREE_HH
