#include "data/images.hh"

#include <algorithm>

#include "util/logging.hh"

namespace nsbench::data
{

using tensor::Tensor;

SemanticImage
makeDomainImage(ImageDomain domain, int64_t size, util::Rng &rng)
{
    util::panicIf(size < 8, "makeDomainImage: size too small");
    SemanticImage img;
    img.size = size;
    img.pixels = Tensor({1, size, size});
    img.labels.assign(static_cast<size_t>(size * size), 0);

    auto px = img.pixels.data();

    // A horizontal "road" band plus one rectangular "object".
    int64_t road_top = size / 2 + rng.uniformInt(-size / 8, size / 8);
    int64_t road_height = size / 4;
    int64_t obj_size = size / 4;
    int64_t obj_r = rng.uniformInt(0, road_top - obj_size);
    int64_t obj_c = rng.uniformInt(0, size - obj_size);

    for (int64_t r = 0; r < size; r++) {
        for (int64_t c = 0; c < size; c++) {
            auto idx = static_cast<size_t>(r * size + c);
            int label = 0;
            if (r >= road_top && r < road_top + road_height)
                label = 1;
            if (r >= obj_r && r < obj_r + obj_size && c >= obj_c &&
                c < obj_c + obj_size) {
                label = 2;
            }
            img.labels[idx] = label;

            // Domain texture: stripes for source, checker for target,
            // modulated by semantic class so regions are separable.
            float base = 0.15f + 0.3f * static_cast<float>(label);
            float texture;
            if (domain == ImageDomain::Source) {
                texture = (c / 2) % 2 == 0 ? 0.15f : -0.05f;
            } else {
                texture =
                    ((r / 2) + (c / 2)) % 2 == 0 ? 0.12f : -0.08f;
            }
            float noise = rng.uniform(-0.03f, 0.03f);
            px[idx] = std::clamp(base + texture + noise, 0.0f, 1.0f);
        }
    }
    return img;
}

std::string_view
conceptShapeName(ConceptShape shape)
{
    switch (shape) {
      case ConceptShape::VerticalLine:
        return "vertical_line";
      case ConceptShape::HorizontalLine:
        return "horizontal_line";
      case ConceptShape::Rectangle:
        return "rectangle";
      case ConceptShape::LShape:
        return "l_shape";
    }
    return "?";
}

Tensor
renderConcept(const PlacedConcept &placed, int64_t size)
{
    Tensor canvas({1, size, size});
    auto px = canvas.data();
    auto put = [&](int64_t r, int64_t c) {
        if (r >= 0 && r < size && c >= 0 && c < size)
            px[static_cast<size_t>(r * size + c)] = 1.0f;
    };

    int64_t e = placed.extent;
    switch (placed.shape) {
      case ConceptShape::VerticalLine:
        for (int64_t r = 0; r < e; r++)
            put(placed.row + r, placed.col);
        break;
      case ConceptShape::HorizontalLine:
        for (int64_t c = 0; c < e; c++)
            put(placed.row, placed.col + c);
        break;
      case ConceptShape::Rectangle:
        for (int64_t r = 0; r < e; r++) {
            for (int64_t c = 0; c < e; c++) {
                bool border = r == 0 || c == 0 || r == e - 1 ||
                              c == e - 1;
                if (border)
                    put(placed.row + r, placed.col + c);
            }
        }
        break;
      case ConceptShape::LShape:
        for (int64_t r = 0; r < e; r++)
            put(placed.row + r, placed.col);
        for (int64_t c = 0; c < e; c++)
            put(placed.row + e - 1, placed.col + c);
        break;
    }
    return canvas;
}

ConceptScene
makeConceptScene(const std::vector<ConceptShape> &shapes, int64_t size,
                 util::Rng &rng)
{
    util::panicIf(size < 16, "makeConceptScene: size too small");
    ConceptScene scene;
    scene.size = size;
    scene.pixels = Tensor({1, size, size});

    auto overlaps = [&](const PlacedConcept &a,
                        const PlacedConcept &b) {
        int64_t pad = 1;
        return !(a.row + a.extent + pad <= b.row ||
                 b.row + b.extent + pad <= a.row ||
                 a.col + a.extent + pad <= b.col ||
                 b.col + b.extent + pad <= a.col);
    };

    for (ConceptShape shape : shapes) {
        PlacedConcept placed;
        placed.shape = shape;
        placed.extent = rng.uniformInt(size / 6, size / 3);
        for (int attempt = 0; attempt < 100; attempt++) {
            placed.row =
                rng.uniformInt(0, size - placed.extent - 1);
            placed.col =
                rng.uniformInt(0, size - placed.extent - 1);
            bool clash = false;
            for (const auto &other : scene.concepts) {
                if (overlaps(placed, other)) {
                    clash = true;
                    break;
                }
            }
            if (!clash)
                break;
        }
        scene.concepts.push_back(placed);

        Tensor stamp = renderConcept(placed, size);
        auto src = stamp.data();
        auto dst = scene.pixels.data();
        for (size_t i = 0; i < src.size(); i++)
            dst[i] = std::max(dst[i], src[i]);
    }
    return scene;
}

} // namespace nsbench::data
