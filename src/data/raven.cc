#include "data/raven.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/logging.hh"

namespace nsbench::data
{

using tensor::Tensor;

std::string_view
attributeName(AttributeId attr)
{
    switch (attr) {
      case AttributeId::Number:
        return "number";
      case AttributeId::Type:
        return "type";
      case AttributeId::Size:
        return "size";
      case AttributeId::Color:
        return "color";
    }
    return "?";
}

int
attributeDomain(AttributeId attr, int grid)
{
    switch (attr) {
      case AttributeId::Number:
        return grid * grid;
      case AttributeId::Type:
        return 5;
      case AttributeId::Size:
        return 6;
      case AttributeId::Color:
        return 10;
    }
    return 0;
}

std::string_view
ruleTypeName(RuleType type)
{
    switch (type) {
      case RuleType::Constant:
        return "constant";
      case RuleType::Progression:
        return "progression";
      case RuleType::Arithmetic:
        return "arithmetic";
      case RuleType::DistributeThree:
        return "distribute_three";
    }
    return "?";
}

std::string
AttributeRule::str() const
{
    std::ostringstream os;
    os << ruleTypeName(type);
    switch (type) {
      case RuleType::Progression:
        os << "(" << (delta > 0 ? "+" : "") << delta << ")";
        break;
      case RuleType::Arithmetic:
        os << (delta > 0 ? "(plus)" : "(minus)");
        break;
      case RuleType::DistributeThree:
        os << "{" << triple[0] << "," << triple[1] << ","
           << triple[2] << "}";
        break;
      case RuleType::Constant:
        break;
    }
    return os.str();
}

int
applyRule(const AttributeRule &rule, int a1, int a2, int domain)
{
    auto in_domain = [domain](int v) { return v >= 0 && v < domain; };
    if (!in_domain(a1) || !in_domain(a2))
        return -1;

    switch (rule.type) {
      case RuleType::Constant:
        return a1 == a2 ? a2 : -1;
      case RuleType::Progression: {
        if (a2 != a1 + rule.delta)
            return -1;
        int a3 = a2 + rule.delta;
        return in_domain(a3) ? a3 : -1;
      }
      case RuleType::Arithmetic: {
        int a3 = rule.delta > 0 ? a1 + a2 : a1 - a2;
        return in_domain(a3) ? a3 : -1;
      }
      case RuleType::DistributeThree: {
        if (a1 == a2)
            return -1;
        bool has1 = false, has2 = false;
        int remaining = -1;
        for (int v : rule.triple) {
            if (v == a1 && !has1)
                has1 = true;
            else if (v == a2 && !has2)
                has2 = true;
            else
                remaining = v;
        }
        return (has1 && has2) ? remaining : -1;
      }
    }
    return -1;
}

bool
ruleHolds(const AttributeRule &rule, int a1, int a2, int a3, int domain)
{
    int predicted = applyRule(rule, a1, a2, domain);
    return predicted >= 0 && predicted == a3;
}

std::vector<AttributeRule>
enumerateRules(int domain)
{
    std::vector<AttributeRule> rules;
    rules.push_back({RuleType::Constant, 0, {}});
    for (int d : {-2, -1, 1, 2}) {
        if (domain > 2 * std::abs(d))
            rules.push_back({RuleType::Progression, d, {}});
    }
    if (domain >= 2) {
        rules.push_back({RuleType::Arithmetic, 1, {}});
        rules.push_back({RuleType::Arithmetic, -1, {}});
    }
    for (int a = 0; a < domain; a++) {
        for (int b = a + 1; b < domain; b++) {
            for (int c = b + 1; c < domain; c++)
                rules.push_back(
                    {RuleType::DistributeThree, 0, {a, b, c}});
        }
    }
    return rules;
}

RavenGenerator::RavenGenerator(int grid, uint64_t seed)
    : grid_(grid), rng_(seed)
{
    util::panicIf(grid < 1 || grid > 4,
                  "RavenGenerator: grid must be in [1, 4]");
}

AttributeRule
RavenGenerator::sampleRule(int domain)
{
    std::vector<RuleType> viable{RuleType::Constant};
    if (domain > 2)
        viable.push_back(RuleType::Progression);
    if (domain >= 3) {
        viable.push_back(RuleType::Arithmetic);
        viable.push_back(RuleType::DistributeThree);
    }
    RuleType type = rng_.choice(viable);

    AttributeRule rule;
    rule.type = type;
    switch (type) {
      case RuleType::Constant:
        break;
      case RuleType::Progression: {
        std::vector<int> deltas;
        for (int d : {-2, -1, 1, 2}) {
            if (domain > 2 * std::abs(d))
                deltas.push_back(d);
        }
        rule.delta = rng_.choice(deltas);
        break;
      }
      case RuleType::Arithmetic:
        rule.delta = rng_.bernoulli(0.5) ? 1 : -1;
        break;
      case RuleType::DistributeThree: {
        std::set<int> values;
        while (values.size() < 3)
            values.insert(static_cast<int>(
                rng_.uniformInt(0, domain - 1)));
        int i = 0;
        for (int v : values)
            rule.triple[static_cast<size_t>(i++)] = v;
        // Random rotation ordering of the base triple.
        std::vector<int> order{rule.triple[0], rule.triple[1],
                               rule.triple[2]};
        rng_.shuffle(order);
        rule.triple = {order[0], order[1], order[2]};
        break;
      }
    }
    return rule;
}

std::array<int, 3>
RavenGenerator::sampleRow(const AttributeRule &rule, int domain)
{
    switch (rule.type) {
      case RuleType::Constant: {
        int v = static_cast<int>(rng_.uniformInt(0, domain - 1));
        return {v, v, v};
      }
      case RuleType::Progression: {
        int d = rule.delta;
        int lo = std::max(0, -2 * d);
        int hi = domain - 1 - std::max(0, 2 * d);
        util::panicIf(lo > hi, "sampleRow: progression out of room");
        int a1 = static_cast<int>(rng_.uniformInt(lo, hi));
        return {a1, a1 + d, a1 + 2 * d};
      }
      case RuleType::Arithmetic: {
        if (rule.delta > 0) {
            int a1 = static_cast<int>(rng_.uniformInt(0, domain - 1));
            int a2 =
                static_cast<int>(rng_.uniformInt(0, domain - 1 - a1));
            return {a1, a2, a1 + a2};
        }
        int a1 = static_cast<int>(rng_.uniformInt(0, domain - 1));
        int a2 = static_cast<int>(rng_.uniformInt(0, a1));
        return {a1, a2, a1 - a2};
      }
      case RuleType::DistributeThree:
        // Rotation applied by the caller per row.
        return {rule.triple[0], rule.triple[1], rule.triple[2]};
    }
    util::panic("sampleRow: unknown rule type");
}

void
RavenGenerator::assignSlots(PanelSpec &panel)
{
    int slots = grid_ * grid_;
    int count = panel.value(AttributeId::Number) + 1;
    util::panicIf(count < 1 || count > slots,
                  "assignSlots: object count out of range");
    std::vector<int> all(static_cast<size_t>(slots));
    for (int i = 0; i < slots; i++)
        all[static_cast<size_t>(i)] = i;
    rng_.shuffle(all);
    panel.slots.assign(all.begin(), all.begin() + count);
    std::sort(panel.slots.begin(), panel.slots.end());
}

RpmPuzzle
RavenGenerator::generate()
{
    RpmPuzzle puzzle;
    puzzle.grid = grid_;

    // Values per attribute per cell of the 3x3 matrix.
    std::array<std::array<int, 9>, numAttributes> values{};
    for (size_t a = 0; a < numAttributes; a++) {
        int domain = attributeDomain(allAttributes[a], grid_);
        AttributeRule rule = sampleRule(domain);
        puzzle.rules[a] = rule;
        for (int row = 0; row < 3; row++) {
            std::array<int, 3> row_vals = sampleRow(rule, domain);
            if (rule.type == RuleType::DistributeThree) {
                // Rotate the triple by the row index.
                std::array<int, 3> rotated;
                for (int c = 0; c < 3; c++) {
                    rotated[static_cast<size_t>(c)] =
                        row_vals[static_cast<size_t>((c + row) % 3)];
                }
                row_vals = rotated;
            }
            for (int col = 0; col < 3; col++) {
                values[a][static_cast<size_t>(row * 3 + col)] =
                    row_vals[static_cast<size_t>(col)];
            }
        }
    }

    auto make_panel = [&](int cell) {
        PanelSpec panel;
        panel.grid = grid_;
        for (size_t a = 0; a < numAttributes; a++) {
            panel.values[a] =
                values[a][static_cast<size_t>(cell)];
        }
        assignSlots(panel);
        return panel;
    };

    for (int cell = 0; cell < 8; cell++)
        puzzle.context[static_cast<size_t>(cell)] = make_panel(cell);
    PanelSpec answer = make_panel(8);

    // Build 7 distractors by perturbing one or two attributes.
    puzzle.candidates.push_back(answer);
    std::set<std::array<int, numAttributes>> seen;
    seen.insert(answer.values);
    while (puzzle.candidates.size() < 8) {
        PanelSpec distractor = answer;
        int flips = rng_.bernoulli(0.5) ? 1 : 2;
        for (int f = 0; f < flips; f++) {
            auto a = static_cast<size_t>(rng_.uniformInt(
                0, static_cast<int64_t>(numAttributes) - 1));
            int domain = attributeDomain(allAttributes[a], grid_);
            if (domain < 2)
                continue;
            int old = distractor.values[a];
            int now = old;
            while (now == old)
                now = static_cast<int>(rng_.uniformInt(0, domain - 1));
            distractor.values[a] = now;
        }
        if (seen.count(distractor.values))
            continue;
        seen.insert(distractor.values);
        assignSlots(distractor);
        puzzle.candidates.push_back(std::move(distractor));
    }

    // Shuffle candidates, tracking the answer.
    std::vector<int> order{0, 1, 2, 3, 4, 5, 6, 7};
    rng_.shuffle(order);
    std::vector<PanelSpec> shuffled(8);
    for (int i = 0; i < 8; i++) {
        shuffled[static_cast<size_t>(i)] =
            puzzle.candidates[static_cast<size_t>(
                order[static_cast<size_t>(i)])];
        if (order[static_cast<size_t>(i)] == 0)
            puzzle.answerIndex = i;
    }
    puzzle.candidates = std::move(shuffled);
    return puzzle;
}

Tensor
RavenGenerator::render(const PanelSpec &panel) const
{
    Tensor image({1, imageSize, imageSize});
    auto px = image.data();
    int64_t cell = imageSize / panel.grid;

    float intensity =
        0.3f + 0.07f * static_cast<float>(panel.value(
                           AttributeId::Color));
    int type = panel.value(AttributeId::Type);
    // Radius fraction of a half-cell, by size level 0..5.
    float radius_frac =
        0.35f + 0.1f * static_cast<float>(panel.value(
                           AttributeId::Size));

    for (int slot : panel.slots) {
        int64_t cy0 = (slot / panel.grid) * cell;
        int64_t cx0 = (slot % panel.grid) * cell;
        auto half = static_cast<float>(cell) / 2.0f;
        float cy = static_cast<float>(cy0) + half;
        float cx = static_cast<float>(cx0) + half;
        float r = radius_frac * half;

        for (int64_t y = cy0; y < cy0 + cell && y < imageSize; y++) {
            for (int64_t x = cx0; x < cx0 + cell && x < imageSize;
                 x++) {
                float dy = static_cast<float>(y) + 0.5f - cy;
                float dx = static_cast<float>(x) + 0.5f - cx;
                bool inside = false;
                switch (type) {
                  case 0: // square
                    inside = std::abs(dx) <= r && std::abs(dy) <= r;
                    break;
                  case 1: // disk
                    inside = dx * dx + dy * dy <= r * r;
                    break;
                  case 2: // triangle (upward)
                    inside = dy <= r && dy >= -r &&
                             std::abs(dx) <= (r - dy) * 0.5f;
                    break;
                  case 3: // diamond
                    inside = std::abs(dx) + std::abs(dy) <= r;
                    break;
                  case 4: // cross
                    inside = (std::abs(dx) <= r * 0.33f &&
                              std::abs(dy) <= r) ||
                             (std::abs(dy) <= r * 0.33f &&
                              std::abs(dx) <= r);
                    break;
                  default:
                    break;
                }
                if (inside) {
                    px[static_cast<size_t>(y * imageSize + x)] =
                        intensity;
                }
            }
        }
    }
    return image;
}

} // namespace nsbench::data
