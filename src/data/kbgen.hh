/**
 * @file
 * LUBM-style university knowledge-base generator for the LNN workload.
 */

#ifndef NSBENCH_DATA_KBGEN_HH
#define NSBENCH_DATA_KBGEN_HH

#include <cstdint>

#include "logic/kb.hh"
#include "util/rng.hh"

namespace nsbench::data
{

/** Handles into the generated university ontology. */
struct UniversityKb
{
    logic::KnowledgeBase kb;

    logic::PredId professor{};      ///< professor(x)
    logic::PredId student{};        ///< student(x)
    logic::PredId course{};         ///< course(x)
    logic::PredId teaches{};        ///< teaches(prof, course)
    logic::PredId takes{};          ///< takes(student, course)
    logic::PredId advisor{};        ///< advisor(prof, student)
    logic::PredId memberOf{};       ///< memberOf(person, dept)
    logic::PredId department{};     ///< department(d)
    logic::PredId taughtBy{};       ///< derived: taughtBy(student, prof)
    logic::PredId colleague{};      ///< derived: colleague(p1, p2)
    logic::PredId seniorStudent{};  ///< derived: advised + takes course

    size_t expectedTaughtBy = 0; ///< Ground-truth derived-fact count.
};

/**
 * Generates the ontology, its individuals and its rules.
 *
 * @param departments Department count.
 * @param professors_per_dept Professors per department.
 * @param students_per_dept Students per department.
 * @param courses_per_prof Courses each professor teaches.
 * @param seed Deterministic seed.
 */
UniversityKb makeUniversityKb(int departments, int professors_per_dept,
                              int students_per_dept,
                              int courses_per_prof, uint64_t seed);

} // namespace nsbench::data

#endif // NSBENCH_DATA_KBGEN_HH
