/**
 * @file
 * Wall-clock timing.
 */

#ifndef NSBENCH_UTIL_TIMER_HH
#define NSBENCH_UTIL_TIMER_HH

#include <chrono>

namespace nsbench::util
{

/**
 * A steady-clock stopwatch. Starts on construction; elapsed() may be
 * sampled repeatedly without stopping it.
 */
class WallTimer
{
  public:
    WallTimer() : start_(Clock::now()) {}

    /** Restarts the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds since construction or the last reset(). */
    double
    elapsed() const
    {
        auto dt = Clock::now() - start_;
        return std::chrono::duration<double>(dt).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace nsbench::util

#endif // NSBENCH_UTIL_TIMER_HH
