#include "util/failpoint.hh"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <random>
#include <thread>

#include "util/logging.hh"

namespace nsbench::util::failpoints
{

namespace detail
{
std::atomic<bool> gArmed{false};
} // namespace detail

namespace
{

/** One armed site: its schedule, RNG stream and counters. */
struct Site
{
    SiteSpec spec;
    std::mt19937_64 rng;
    uint64_t evaluations = 0;
    uint64_t fires = 0;
    uint64_t delays = 0;
    uint64_t delayedUs = 0;
};

/** The live registry; every access is under gMu. evaluate() holds the
 *  lock for one RNG draw — failpoints are a chaos-testing tool, not a
 *  production hot path, and a single mutex keeps the per-site draw
 *  sequence exact. */
std::mutex gMu;
std::map<std::string, Site> gSites;

/** Splits "a,b,c" into non-empty parts. */
std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    size_t start = 0;
    while (start <= text.size()) {
        size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        if (comma > start)
            parts.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return parts;
}

/** FNV-1a over the site name: the default per-site seed, so two
 *  sites armed without explicit seeds still draw distinct streams. */
uint64_t
nameSeed(const std::string &site)
{
    uint64_t hash = 1469598103934665603ULL;
    for (char c : site) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ULL;
    }
    return hash ? hash : 1;
}

/** Parses the value part `prob[@seed][xLIMIT][sSKIP][~DELAYus]`. */
std::string
parseValue(const std::string &site, const std::string &value,
           SiteSpec *out)
{
    size_t pos = 0;
    try {
        out->probability = std::stod(value, &pos);
    } catch (...) {
        return "failpoint '" + site + "': probability is not a number";
    }
    if (out->probability < 0.0 || out->probability > 1.0)
        return "failpoint '" + site +
               "': probability must be in [0, 1]";
    while (pos < value.size()) {
        char tag = value[pos++];
        size_t used = 0;
        uint64_t number = 0;
        try {
            // stoull accepts a leading '-' and wraps it into a huge
            // unsigned value; every field here is a count, so a sign
            // is malformed, not modular arithmetic.
            if (pos < value.size() && value[pos] != '-')
                number = std::stoull(value.substr(pos), &used);
        } catch (...) {
            used = 0;
        }
        if (used == 0)
            return "failpoint '" + site + "': '" + tag +
                   "' needs a number";
        pos += used;
        switch (tag) {
        case '@':
            out->seed = number;
            break;
        case 'x':
            out->limit = number;
            break;
        case 's':
            out->skip = number;
            break;
        case '~':
            if (number == 0)
                return "failpoint '" + site +
                       "': '~' delay must be positive";
            out->delayUs = number;
            break;
        default:
            return std::string("failpoint '") + site +
                   "': unknown field '" + tag + "'";
        }
    }
    if (out->seed == 0)
        out->seed = nameSeed(site);
    return "";
}

} // namespace

const std::vector<std::string> &
knownSites()
{
    static const std::vector<std::string> names = {
        sites::kQueueTryPush,    sites::kQueuePop,
        sites::kAdmissionShed,   sites::kBatcherCoalesce,
        sites::kWorkerRun,       sites::kWorkerCrash,
        sites::kCallback,        sites::kResultInsert,
        sites::kPrecomputeBuild, sites::kNetAccept,
        sites::kNetRead,         sites::kNetWrite,
        sites::kNetBackendConnect, sites::kWorkerDelay,
    };
    return names;
}

std::string
parse(const std::string &spec, std::map<std::string, SiteSpec> *out)
{
    std::map<std::string, SiteSpec> parsed;
    for (const std::string &entry : splitCommas(spec)) {
        size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0)
            return "failpoint entry '" + entry +
                   "' is not site=prob[@seed][xLIMIT][sSKIP]";
        std::string site = entry.substr(0, eq);
        bool known = false;
        for (const std::string &name : knownSites())
            if (name == site) {
                known = true;
                break;
            }
        if (!known)
            return "unknown failpoint site '" + site + "'";
        if (parsed.count(site))
            return "failpoint site '" + site + "' given twice";
        SiteSpec value;
        std::string error =
            parseValue(site, entry.substr(eq + 1), &value);
        if (!error.empty())
            return error;
        parsed.emplace(std::move(site), value);
    }
    if (out)
        *out = std::move(parsed);
    return "";
}

std::string
configure(const std::string &spec)
{
    std::map<std::string, SiteSpec> parsed;
    std::string error = parse(spec, &parsed);
    if (!error.empty())
        return error;
    std::lock_guard<std::mutex> lock(gMu);
    gSites.clear();
    for (const auto &[name, site_spec] : parsed) {
        Site site;
        site.spec = site_spec;
        site.rng.seed(site_spec.seed);
        gSites.emplace(name, std::move(site));
    }
    detail::gArmed.store(!gSites.empty(), std::memory_order_relaxed);
    return "";
}

void
configureFromEnv()
{
    const char *spec = std::getenv("NSBENCH_FAILPOINTS");
    if (!spec || !*spec)
        return;
    std::string error = configure(spec);
    if (!error.empty())
        warn("NSBENCH_FAILPOINTS ignored: " + error);
}

void
reset()
{
    std::lock_guard<std::mutex> lock(gMu);
    gSites.clear();
    detail::gArmed.store(false, std::memory_order_relaxed);
}

std::map<std::string, SiteStats>
stats()
{
    std::lock_guard<std::mutex> lock(gMu);
    std::map<std::string, SiteStats> out;
    for (const auto &[name, site] : gSites)
        out[name] = SiteStats{site.evaluations, site.fires,
                              site.delays, site.delayedUs};
    return out;
}

bool
evaluate(const char *site)
{
    uint64_t delay_us = 0;
    {
        std::lock_guard<std::mutex> lock(gMu);
        auto it = gSites.find(site);
        if (it == gSites.end())
            return false;
        Site &state = it->second;
        uint64_t index = state.evaluations++;
        // Consume the draw even when skip/limit mute the site, so the
        // k-th evaluation always sees the k-th draw of the stream and
        // the schedule is a pure function of the spec.
        double draw = std::uniform_real_distribution<double>(
            0.0, 1.0)(state.rng);
        if (index < state.spec.skip)
            return false;
        if (state.spec.limit && state.fires >= state.spec.limit)
            return false;
        if (draw >= state.spec.probability)
            return false;
        state.fires++;
        if (state.spec.delayUs == 0)
            return true;
        // Delay action: account under the lock, sleep outside it so
        // a slow site stalls only its own caller, not the registry.
        state.delays++;
        state.delayedUs += state.spec.delayUs;
        delay_us = state.spec.delayUs;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    return false;
}

} // namespace nsbench::util::failpoints
