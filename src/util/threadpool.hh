/**
 * @file
 * The shared parallel execution runtime.
 *
 * A persistent fork-join worker pool with a static-chunking
 * parallelFor. Every hot kernel in the suite (tensor ops, VSA sweeps,
 * resonator iterations) funnels its loops through here, so one knob —
 * the pool width — controls the parallelism of the whole suite.
 *
 * Determinism contract: parallelFor decomposes [begin, end) into
 * fixed-size chunks of `grain` iterations. The chunk boundaries depend
 * only on the grain, never on the pool width or on scheduling, so a
 * kernel that computes per-chunk partials and combines them in chunk
 * order produces the same floating-point result at every thread count.
 * Pure element-wise maps are bit-identical to the serial loop by
 * construction.
 *
 * Configuration: the global pool width defaults to the NSBENCH_THREADS
 * environment variable when set, else the hardware concurrency. The
 * `nsbench` CLI exposes it as --threads N.
 */

#ifndef NSBENCH_UTIL_THREADPOOL_HH
#define NSBENCH_UTIL_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nsbench::util
{

/**
 * Persistent fork-join thread pool.
 *
 * The pool owns `threads() - 1` worker threads; the thread that calls
 * parallelFor always participates as the first lane, so a width-1 pool
 * spawns no threads and runs everything inline. Workers sleep on a
 * condition variable between regions, so an idle pool costs nothing on
 * the hot path.
 */
class ThreadPool
{
  public:
    /** Loop body: processes the half-open iteration range [lo, hi). */
    using RangeFn = std::function<void(int64_t, int64_t)>;

    /**
     * Hook every participating thread runs after finishing its share
     * of a parallel region, before the region is considered complete.
     * The profiler installs its thread-buffer flush here so op events
     * are globally visible by the time parallelFor returns.
     */
    using SyncHook = void (*)();

    /** Creates a pool of the given total width (minimum 1). */
    explicit ThreadPool(int threads);

    /**
     * Joins all workers.
     *
     * Shutdown contract: the destructor must not race an active
     * parallelFor on this pool. parallelFor blocks its caller until
     * the region completes, so the contract is only at risk when
     * *another* thread is inside parallelFor while this one
     * destroys the pool — external serialization (e.g. the serve
     * runtime's drain: stop producers, drain queues, join consumers,
     * then destroy) must make that impossible. The destructor
     * asserts the quiescence it relies on: a region still in flight
     * is a fatal error, not undefined behaviour.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism: worker threads plus the calling thread. */
    int threads() const { return lanes_; }

    /**
     * Runs fn over [begin, end) split into chunks of at most `grain`
     * iterations, distributed round-robin over up to threads() lanes.
     * Blocks until every chunk has run. Nested calls from inside a
     * parallel region degrade to a serial inline loop, so kernels may
     * compose freely. Exceptions thrown by fn are rethrown (first one
     * wins) after the region completes.
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const RangeFn &fn);

    /** True while the calling thread is executing inside a region. */
    static bool inParallelRegion();

    /**
     * RAII scope that pins the calling thread to serial kernel
     * execution: while alive, every parallelFor issued from this
     * thread runs inline (the nested-region fast path) instead of
     * dispatching to the pool. The serving runtime wraps each
     * request-execution thread in one of these, so concurrent
     * replicas never contend for the global pool and a request's
     * entire op stream stays on its worker thread — which is what
     * makes per-request profiler attribution exact. Scopes nest.
     */
    class SerialScope
    {
      public:
        SerialScope();
        ~SerialScope();

        SerialScope(const SerialScope &) = delete;
        SerialScope &operator=(const SerialScope &) = delete;

      private:
        bool prev_;
    };

    /** Installs the post-region sync hook (see SyncHook). */
    static void setSyncHook(SyncHook hook);

    /**
     * The process-global pool all kernels use. Created on first use
     * with defaultThreads() width.
     */
    static ThreadPool &global();

    /**
     * Replaces the global pool with one of the given width. Must not
     * be called while a parallel region is active. Width < 1 resets to
     * defaultThreads().
     */
    static void setGlobalThreads(int threads);

    /** Width the global pool has (or would be created with). */
    static int globalThreads();

    /**
     * Pool width implied by the environment: NSBENCH_THREADS when set
     * to a positive integer, else std::thread::hardware_concurrency().
     */
    static int defaultThreads();

  private:
    struct Job
    {
        int64_t begin = 0;
        int64_t end = 0;
        int64_t grain = 1;
        int lanes = 0;
        const RangeFn *fn = nullptr;
        std::atomic<int> nextLane{0};
        std::atomic<int> doneLanes{0};
        int refs = 0; ///< Workers currently inside the job (guarded by mu_).
        std::exception_ptr error; ///< First failure (guarded by errMu).
        std::mutex errMu;
    };

    void workerMain();
    void runLanes(Job &job);
    void runLane(Job &job, int lane);

    int lanes_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable wakeCv_; ///< Workers wait here for a job.
    std::condition_variable doneCv_; ///< The caller waits here for quiescence.
    uint64_t jobGen_ = 0;
    Job *job_ = nullptr;
    bool stop_ = false;
};

/**
 * Chunk size that amortizes dispatch overhead: enough iterations that
 * one chunk performs roughly `targetWork` scalar operations, given
 * `workPerItem` operations per iteration. Depends only on the loop
 * shape, never on the pool width, preserving the determinism contract.
 */
int64_t grainFor(double workPerItem, double targetWork = 32768.0);

/** Shorthand: parallelFor on the global pool. */
inline void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const ThreadPool::RangeFn &fn)
{
    ThreadPool::global().parallelFor(begin, end, grain, fn);
}

} // namespace nsbench::util

#endif // NSBENCH_UTIL_THREADPOOL_HH
