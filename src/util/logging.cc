#include "util/logging.hh"

#include <cstdlib>
#include <iostream>

namespace nsbench::util
{

namespace
{

LogLevel g_threshold = LogLevel::Inform;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic:
        return "panic";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Inform:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return g_threshold;
}

void
setLogThreshold(LogLevel level)
{
    g_threshold = level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (level > g_threshold &&
        level != LogLevel::Panic && level != LogLevel::Fatal) {
        return;
    }
    std::cerr << "[" << levelTag(level) << "] " << msg << "\n";
}

void
panic(const std::string &msg)
{
    logMessage(LogLevel::Panic, msg);
    std::abort();
}

void
fatal(const std::string &msg)
{
    logMessage(LogLevel::Fatal, msg);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    logMessage(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    logMessage(LogLevel::Inform, msg);
}

void
debug(const std::string &msg)
{
    logMessage(LogLevel::Debug, msg);
}

} // namespace nsbench::util
