/**
 * @file
 * Human-readable formatting helpers for report output.
 */

#ifndef NSBENCH_UTIL_FORMAT_HH
#define NSBENCH_UTIL_FORMAT_HH

#include <cstdint>
#include <string>

namespace nsbench::util
{

/** Formats a byte count as e.g. "1.50 MiB". */
std::string humanBytes(uint64_t bytes);

/** Formats a duration in seconds as e.g. "12.3 ms" or "2.1 s". */
std::string humanSeconds(double seconds);

/** Formats an op/FLOP count as e.g. "3.2 GFLOP". */
std::string humanCount(double count, const std::string &unit = "");

/** Formats a fraction in [0,1] as a fixed-width percentage, e.g. "45.4%". */
std::string percentStr(double fraction, int decimals = 1);

/** Formats a double with the given number of decimals. */
std::string fixedStr(double value, int decimals = 2);

} // namespace nsbench::util

#endif // NSBENCH_UTIL_FORMAT_HH
