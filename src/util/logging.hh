/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() flags an internal library bug and
 * aborts; fatal() flags an unrecoverable user/configuration error and
 * exits cleanly; warn()/inform() report conditions without stopping.
 */

#ifndef NSBENCH_UTIL_LOGGING_HH
#define NSBENCH_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace nsbench::util
{

/** Verbosity levels, ordered from most to least severe. */
enum class LogLevel
{
    Panic,
    Fatal,
    Warn,
    Inform,
    Debug,
};

/**
 * Returns the current global verbosity threshold. Messages whose level is
 * numerically greater than the threshold are suppressed (panic/fatal are
 * never suppressed).
 */
LogLevel logThreshold();

/** Sets the global verbosity threshold. */
void setLogThreshold(LogLevel level);

/** Emits a message at the given level to stderr. */
void logMessage(LogLevel level, const std::string &msg);

/**
 * Reports an internal invariant violation and aborts.
 *
 * Use for conditions that indicate a bug in this library itself, never
 * for bad user input.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Reports an unrecoverable user-facing error (bad configuration, invalid
 * arguments) and exits with status 1.
 */
[[noreturn]] void fatal(const std::string &msg);

/** Reports a suspicious-but-survivable condition. */
void warn(const std::string &msg);

/** Reports normal operating status. */
void inform(const std::string &msg);

/** Reports developer-level detail, hidden unless Debug verbosity is on. */
void debug(const std::string &msg);

/**
 * Aborts via panic() when the given condition holds.
 *
 * This is the library's internal assert; it is always active, regardless
 * of NDEBUG, because profiling results silently built on corrupt state
 * are worse than a crash. The const char* overload exists so hot paths
 * pay no std::string construction when the condition is false; avoid
 * eagerly concatenated messages on hot paths.
 */
inline void
panicIf(bool condition, const char *msg)
{
    if (condition)
        panic(msg);
}

/** @copydoc panicIf(bool, const char *) */
inline void
panicIf(bool condition, const std::string &msg)
{
    if (condition)
        panic(msg);
}

/** Calls fatal() when the given condition holds. */
inline void
fatalIf(bool condition, const char *msg)
{
    if (condition)
        fatal(msg);
}

/** @copydoc fatalIf(bool, const char *) */
inline void
fatalIf(bool condition, const std::string &msg)
{
    if (condition)
        fatal(msg);
}

} // namespace nsbench::util

#endif // NSBENCH_UTIL_LOGGING_HH
