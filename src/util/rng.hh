/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic components of the suite draw from an explicitly seeded
 * Rng so every experiment is reproducible run-to-run. Never use
 * std::rand or an unseeded engine anywhere in the library.
 */

#ifndef NSBENCH_UTIL_RNG_HH
#define NSBENCH_UTIL_RNG_HH

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.hh"

namespace nsbench::util
{

/**
 * A seeded pseudo-random source with the sampling helpers the suite
 * needs. Thin wrapper around std::mt19937_64.
 */
class Rng
{
  public:
    /** Constructs a generator from an explicit seed. */
    explicit Rng(uint64_t seed) : engine_(seed) {}

    /** Returns a float uniform in [lo, hi). */
    float
    uniform(float lo = 0.0f, float hi = 1.0f)
    {
        std::uniform_real_distribution<float> dist(lo, hi);
        return dist(engine_);
    }

    /** Returns a double uniform in [lo, hi). */
    double
    uniformDouble(double lo = 0.0, double hi = 1.0)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Returns an integer uniform in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        panicIf(lo > hi, "Rng::uniformInt: empty range");
        std::uniform_int_distribution<int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Returns a normally distributed float. */
    float
    normal(float mean = 0.0f, float stddev = 1.0f)
    {
        std::normal_distribution<float> dist(mean, stddev);
        return dist(engine_);
    }

    /** Returns true with probability p. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    /** Returns +1 or -1 with equal probability. */
    float
    bipolar()
    {
        return bernoulli(0.5) ? 1.0f : -1.0f;
    }

    /** Samples an index from an unnormalized non-negative weight vector. */
    size_t
    categorical(const std::vector<double> &weights)
    {
        panicIf(weights.empty(), "Rng::categorical: no weights");
        std::discrete_distribution<size_t> dist(weights.begin(),
                                                weights.end());
        return dist(engine_);
    }

    /** Fisher-Yates shuffles a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        std::shuffle(items.begin(), items.end(), engine_);
    }

    /** Picks a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    choice(const std::vector<T> &items)
    {
        panicIf(items.empty(), "Rng::choice: empty vector");
        return items[static_cast<size_t>(
            uniformInt(0, static_cast<int64_t>(items.size()) - 1))];
    }

    /** Exposes the raw engine for std distributions not wrapped here. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace nsbench::util

#endif // NSBENCH_UTIL_RNG_HH
