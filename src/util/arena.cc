#include "util/arena.hh"

#include <bit>
#include <new>

#include "util/logging.hh"

namespace nsbench::util
{

namespace
{

constexpr std::align_val_t kAlign{64};

void *
heapAcquire(size_t bytes)
{
    return ::operator new(bytes, kAlign);
}

void
heapRelease(void *ptr)
{
    ::operator delete(ptr, kAlign);
}

} // namespace

Arena::~Arena()
{
    trim();
}

size_t
Arena::classBytesFor(size_t bytes)
{
    if (bytes <= kMinClassBytes)
        return kMinClassBytes;
    return std::bit_ceil(bytes);
}

size_t
Arena::classIndexLocked(size_t class_bytes) const
{
    // class_bytes = kMinClassBytes << i.
    return static_cast<size_t>(std::countr_zero(class_bytes) -
                               std::countr_zero(kMinClassBytes));
}

Arena::Block
Arena::acquire(size_t bytes)
{
    Block block;
    block.classBytes = classBytesFor(bytes);

    {
        std::lock_guard<std::mutex> lock(mu_);
        size_t idx = classIndexLocked(block.classBytes);
        if (idx < freeLists_.size() && !freeLists_[idx].empty()) {
            block.ptr = freeLists_[idx].back();
            freeLists_[idx].pop_back();
            block.recycled = true;
            stats_.reusedAllocs++;
            stats_.recycledBytes += block.classBytes;
            stats_.pooledBytes -= block.classBytes;
            return block;
        }
        stats_.freshAllocs++;
        stats_.capacityBytes += block.classBytes;
    }

    // Heap allocation outside the lock; counters already claimed it.
    block.ptr = heapAcquire(block.classBytes);
    return block;
}

void
Arena::release(void *ptr, size_t classBytes)
{
    panicIf(ptr == nullptr || classBytes < kMinClassBytes ||
                !std::has_single_bit(classBytes),
            "Arena::release: not an arena block");
    std::lock_guard<std::mutex> lock(mu_);
    size_t idx = classIndexLocked(classBytes);
    if (idx >= freeLists_.size())
        freeLists_.resize(idx + 1);
    freeLists_[idx].push_back(ptr);
    stats_.releases++;
    stats_.pooledBytes += classBytes;
}

void
Arena::trim()
{
    std::vector<std::vector<void *>> pooled;
    {
        std::lock_guard<std::mutex> lock(mu_);
        pooled.swap(freeLists_);
        stats_.capacityBytes -= stats_.pooledBytes;
        stats_.pooledBytes = 0;
    }
    for (auto &list : pooled)
        for (void *ptr : list)
            heapRelease(ptr);
}

ArenaStats
Arena::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
Arena::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t capacity = stats_.capacityBytes;
    uint64_t pooled = stats_.pooledBytes;
    stats_ = ArenaStats{};
    stats_.capacityBytes = capacity;
    stats_.pooledBytes = pooled;
}

Arena &
Arena::global()
{
    // Deliberately leaked: tensors with static storage duration may
    // release blocks after any function-local static arena would have
    // been destroyed. The pointer lives in static storage, so leak
    // checkers see the pooled blocks as reachable.
    static Arena *instance = new Arena();
    return *instance;
}

} // namespace nsbench::util
