/**
 * @file
 * Streaming statistics accumulators used by the profiler and benches.
 */

#ifndef NSBENCH_UTIL_STATS_HH
#define NSBENCH_UTIL_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace nsbench::util
{

/**
 * Welford-style running mean/variance with min/max tracking.
 */
class RunningStat
{
  public:
    /** Folds one sample into the accumulator. */
    void
    add(double x)
    {
        count_++;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    /** Number of samples folded in so far. */
    uint64_t count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
    }

    /** Sample standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Smallest sample seen; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample seen; -inf when empty. */
    double max() const { return max_; }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram over a closed value range.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin; must exceed lo.
     * @param bins Number of equal-width bins; must be positive.
     */
    Histogram(double lo, double hi, size_t bins);

    /** Adds a sample; values outside [lo, hi] clamp to the edge bins. */
    void add(double x);

    /** Count in the given bin. */
    uint64_t binCount(size_t bin) const { return counts_.at(bin); }

    /** Total samples added. */
    uint64_t total() const { return total_; }

    /** Number of bins. */
    size_t bins() const { return counts_.size(); }

    /** Center value of the given bin. */
    double binCenter(size_t bin) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Computes the p-th percentile (0..100) of a sample vector by linear
 * interpolation. The input is copied and sorted. Returns 0 when empty.
 */
double percentile(std::vector<double> samples, double p);

/**
 * Streaming quantile estimator (Jain & Chlamtac's P² algorithm).
 *
 * Tracks one quantile of an unbounded stream in O(1) memory and O(1)
 * per sample: five markers straddle the target quantile and drift
 * toward their ideal positions by parabolic interpolation. With five
 * or fewer samples the estimate is exact (sorted-sample
 * interpolation, matching util::percentile). The estimator is fully
 * deterministic — the same sample sequence always yields the same
 * estimate — which the serving runtime relies on for reproducible
 * latency reports.
 */
class P2Quantile
{
  public:
    /** @param q Target quantile in (0, 1), e.g. 0.99 for p99. */
    explicit P2Quantile(double q);

    /** Folds one sample into the estimate. */
    void add(double x);

    /** Current quantile estimate; 0 when no samples were added. */
    double value() const;

    /** Number of samples folded in so far. */
    uint64_t count() const { return count_; }

    /** The quantile this estimator tracks, in (0, 1). */
    double quantile() const { return q_; }

  private:
    double q_;
    uint64_t count_ = 0;
    double heights_[5] = {};   ///< Marker heights q[i].
    double positions_[5] = {}; ///< Actual marker positions n[i].
    double desired_[5] = {};   ///< Desired marker positions n'[i].
    double increment_[5] = {}; ///< Desired-position increments dn'[i].
};

/**
 * The latency tail summary the serving metrics report: running
 * mean/min/max plus streaming p50/p95/p99.
 */
class TailStats
{
  public:
    /** Folds one sample into every accumulator. */
    void
    add(double x)
    {
        stat_.add(x);
        p50_.add(x);
        p95_.add(x);
        p99_.add(x);
    }

    /** Number of samples folded in so far. */
    uint64_t count() const { return stat_.count(); }

    /** Sample mean; 0 when empty. */
    double mean() const { return stat_.mean(); }

    /** Smallest sample seen; +inf when empty. */
    double min() const { return stat_.min(); }

    /** Largest sample seen; -inf when empty. */
    double max() const { return stat_.max(); }

    /** Streaming median estimate. */
    double p50() const { return p50_.value(); }

    /** Streaming 95th-percentile estimate. */
    double p95() const { return p95_.value(); }

    /** Streaming 99th-percentile estimate. */
    double p99() const { return p99_.value(); }

  private:
    RunningStat stat_;
    P2Quantile p50_{0.50};
    P2Quantile p95_{0.95};
    P2Quantile p99_{0.99};
};

} // namespace nsbench::util

#endif // NSBENCH_UTIL_STATS_HH
