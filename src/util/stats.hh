/**
 * @file
 * Streaming statistics accumulators used by the profiler and benches.
 */

#ifndef NSBENCH_UTIL_STATS_HH
#define NSBENCH_UTIL_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace nsbench::util
{

/**
 * Welford-style running mean/variance with min/max tracking.
 */
class RunningStat
{
  public:
    /** Folds one sample into the accumulator. */
    void
    add(double x)
    {
        count_++;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    /** Number of samples folded in so far. */
    uint64_t count() const { return count_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
    }

    /** Sample standard deviation. */
    double stddev() const { return std::sqrt(variance()); }

    /** Smallest sample seen; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample seen; -inf when empty. */
    double max() const { return max_; }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram over a closed value range.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin; must exceed lo.
     * @param bins Number of equal-width bins; must be positive.
     */
    Histogram(double lo, double hi, size_t bins);

    /** Adds a sample; values outside [lo, hi] clamp to the edge bins. */
    void add(double x);

    /** Count in the given bin. */
    uint64_t binCount(size_t bin) const { return counts_.at(bin); }

    /** Total samples added. */
    uint64_t total() const { return total_; }

    /** Number of bins. */
    size_t bins() const { return counts_.size(); }

    /** Center value of the given bin. */
    double binCenter(size_t bin) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Computes the p-th percentile (0..100) of a sample vector by linear
 * interpolation. The input is copied and sorted. Returns 0 when empty.
 */
double percentile(std::vector<double> samples, double p);

} // namespace nsbench::util

#endif // NSBENCH_UTIL_STATS_HH
