/**
 * @file
 * The vectorized kernel backend.
 *
 * Every hot inner loop in the suite (element-wise maps, chunked
 * reductions, MatMul/Linear row blocks, VSA similarity sweeps and the
 * packed-binary popcount paths) funnels through the span-level kernels
 * declared here. Each kernel has two implementations:
 *
 *  - a portable scalar loop, compiled for the baseline ISA, that is
 *    bit-identical to the historical hand-written loops, and
 *  - an AVX2+FMA+POPCNT version compiled via per-function target
 *    attributes, so the rest of the tree keeps the baseline ISA and
 *    the binary still runs on machines without AVX2.
 *
 * Backend selection is runtime CPUID dispatch, overridable:
 *
 *  - NSBENCH_SIMD=off|0|scalar  forces the scalar path,
 *  - NSBENCH_SIMD=on|1|avx2     asks for AVX2 (falls back to scalar
 *    with a warning when the CPU lacks it),
 *  - setBackend() overrides programmatically (used by the equivalence
 *    tests to compare both paths in one process).
 *
 * Determinism contract: for a fixed backend every kernel is a pure
 * function of its operands — results never depend on thread count,
 * because the ThreadPool's chunk grid is width-independent and these
 * kernels are applied per chunk. Across backends, integer/bit kernels
 * (popcount, XOR, sign tests) are exactly equal; float kernels that
 * reassociate or fuse (reductions, FMA accumulation) agree within
 * 1e-5 relative tolerance, which the equivalence suite enforces.
 *
 * Profiler attribution (FLOPs, bytes, invocations) is computed from
 * operand shapes by the calling ops, so it is exact and identical for
 * both backends.
 */

#ifndef NSBENCH_UTIL_SIMD_HH
#define NSBENCH_UTIL_SIMD_HH

#include <cstdint>

namespace nsbench::util::simd
{

/** Kernel implementation selected at runtime. */
enum class Backend
{
    Scalar, ///< Portable baseline-ISA loops.
    Avx2,   ///< AVX2 + FMA + POPCNT target-attribute kernels.
};

/** True when this build carries AVX2 kernels and the CPU has them. */
bool avx2Supported();

/**
 * The backend all kernels dispatch on, resolved once from the
 * NSBENCH_SIMD override else CPUID. Thread-safe.
 */
Backend activeBackend();

/**
 * Overrides the active backend (test hook; also used by --simd).
 * Requesting Avx2 on a machine without it is fatal. Thread-unsafe
 * against concurrent kernels: call outside parallel regions.
 */
void setBackend(Backend backend);

/** Drops any override; the next activeBackend() re-resolves. */
void resetBackend();

/** Human-readable name: "scalar" or "avx2". */
const char *backendName(Backend backend);

/** Shorthand for backendName(activeBackend()). */
const char *activeBackendName();

/// @name Element-wise float maps over [0, n). Out must not partially
/// alias the inputs (out == a or out == b exactly is allowed).
/// @{
void add(const float *a, const float *b, float *out, int64_t n);
void sub(const float *a, const float *b, float *out, int64_t n);
void mul(const float *a, const float *b, float *out, int64_t n);
void div(const float *a, const float *b, float *out, int64_t n);
void minimum(const float *a, const float *b, float *out, int64_t n);
void maximum(const float *a, const float *b, float *out, int64_t n);
void addScalar(const float *a, float s, float *out, int64_t n);
void mulScalar(const float *a, float s, float *out, int64_t n);
void relu(const float *a, float *out, int64_t n);
void negate(const float *a, float *out, int64_t n);
void absolute(const float *a, float *out, int64_t n);
void clampRange(const float *a, float lo, float hi, float *out,
                int64_t n);
/** out[i] = a[i] >= 0 ? +1 : -1 (majority-bundle thresholding). */
void signBipolar(const float *a, float *out, int64_t n);
/** acc[i] += v[i]. */
void accumulate(float *acc, const float *v, int64_t n);
/** acc[i] += s * v[i] (codebook superposition). */
void axpy(float *acc, const float *v, float s, int64_t n);
/// @}

/// @name Chunked reductions. Called once per ThreadPool chunk, so the
/// result for a fixed backend is independent of thread count.
/// @{
/** Double-precision sum of a[0..n). */
double sumChunk(const float *a, int64_t n);
/** Maximum of a[0..n); n must be >= 1. */
float maxChunk(const float *a, int64_t n);
/** Index of the first strict maximum of a[0..n); n must be >= 1. */
int64_t argmaxChunk(const float *a, int64_t n);
/** Double-precision dot product of a[0..n) and b[0..n). */
double dotChunk(const float *a, const float *b, int64_t n);
/** Accumulates dot(a,b), |a|^2 and |b|^2 in one pass. */
void cosineChunk(const float *a, const float *b, int64_t n,
                 double *dot_out, double *norm_a_out,
                 double *norm_b_out);
/** Number of positions where a and b have the same sign (>= 0). */
int64_t signMatchChunk(const float *a, const float *b, int64_t n);
/// @}

/// @name MatMul / Linear row blocks (row-major operands).
/// @{
/**
 * C[i, :] = sum_k A[i, k] * B[k, :] for rows i in [i0, i1), with
 * A of shape [*, k] and B of shape [k, n]. Rows are zeroed first;
 * each output row's value is independent of the block split.
 */
void matmulRows(const float *a, const float *b, float *c, int64_t i0,
                int64_t i1, int64_t k, int64_t n);
/**
 * Y[i, j] = dot(X[i, :], W[j, :]) + bias[j] for rows i in [i0, i1),
 * with X of shape [*, k] and W of shape [o, k]. Pass bias == nullptr
 * to skip the bias term.
 */
void linearRows(const float *x, const float *w, const float *bias,
                float *y, int64_t i0, int64_t i1, int64_t k,
                int64_t o);
/// @}

/// @name Packed binary hypervector kernels (64 bits per word).
/// @{
/** out[i] = a[i] ^ b[i]. */
void xorWords(const uint64_t *a, const uint64_t *b, uint64_t *out,
              int64_t n);
/** popcount(a ^ b) over n words (Hamming distance of packed HVs). */
int64_t popcountXorWords(const uint64_t *a, const uint64_t *b,
                         int64_t n);
/// @}

} // namespace nsbench::util::simd

#endif // NSBENCH_UTIL_SIMD_HH
