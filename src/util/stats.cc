#include "util/stats.hh"

#include "util/logging.hh"

namespace nsbench::util
{

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    panicIf(bins == 0, "Histogram: need at least one bin");
    panicIf(hi <= lo, "Histogram: hi must exceed lo");
}

void
Histogram::add(double x)
{
    double frac = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<int64_t>(frac * static_cast<double>(bins()));
    bin = std::clamp<int64_t>(bin, 0, static_cast<int64_t>(bins()) - 1);
    counts_[static_cast<size_t>(bin)]++;
    total_++;
}

double
Histogram::binCenter(size_t bin) const
{
    double width = (hi_ - lo_) / static_cast<double>(bins());
    return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                  static_cast<double>(samples.size() - 1);
    auto lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace nsbench::util
