#include "util/stats.hh"

#include "util/logging.hh"

namespace nsbench::util
{

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    panicIf(bins == 0, "Histogram: need at least one bin");
    panicIf(hi <= lo, "Histogram: hi must exceed lo");
}

void
Histogram::add(double x)
{
    double frac = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<int64_t>(frac * static_cast<double>(bins()));
    bin = std::clamp<int64_t>(bin, 0, static_cast<int64_t>(bins()) - 1);
    counts_[static_cast<size_t>(bin)]++;
    total_++;
}

double
Histogram::binCenter(size_t bin) const
{
    double width = (hi_ - lo_) / static_cast<double>(bins());
    return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

P2Quantile::P2Quantile(double q) : q_(q)
{
    panicIf(q <= 0.0 || q >= 1.0,
            "P2Quantile: quantile must lie strictly in (0, 1)");
    // Desired positions (1-based in the paper): 1, 1+2q, 1+4q,
    // 3+2q, 5; increments 0, q/2, q, (1+q)/2, 1.
    desired_[0] = 1.0;
    desired_[1] = 1.0 + 2.0 * q;
    desired_[2] = 1.0 + 4.0 * q;
    desired_[3] = 3.0 + 2.0 * q;
    desired_[4] = 5.0;
    increment_[0] = 0.0;
    increment_[1] = q / 2.0;
    increment_[2] = q;
    increment_[3] = (1.0 + q) / 2.0;
    increment_[4] = 1.0;
}

void
P2Quantile::add(double x)
{
    count_++;
    if (count_ <= 5) {
        // Bootstrap: collect the first five samples sorted.
        size_t n = static_cast<size_t>(count_);
        heights_[n - 1] = x;
        std::sort(heights_, heights_ + n);
        for (size_t i = 0; i < 5; i++)
            positions_[i] = static_cast<double>(i + 1);
        return;
    }

    // Locate the cell k with q[k] <= x < q[k+1], clamping the
    // extreme markers to the observed range.
    size_t k;
    if (x < heights_[0]) {
        heights_[0] = x;
        k = 0;
    } else if (x >= heights_[4]) {
        heights_[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= heights_[k + 1])
            k++;
    }

    for (size_t i = k + 1; i < 5; i++)
        positions_[i] += 1.0;
    for (size_t i = 0; i < 5; i++)
        desired_[i] += increment_[i];

    // Nudge the three interior markers toward their desired
    // positions, adjusting heights by the P² parabolic formula (or
    // linearly when the parabola would cross a neighbour).
    for (size_t i = 1; i <= 3; i++) {
        double d = desired_[i] - positions_[i];
        double below = positions_[i] - positions_[i - 1];
        double above = positions_[i + 1] - positions_[i];
        if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
            double sign = d >= 0.0 ? 1.0 : -1.0;
            double span = positions_[i + 1] - positions_[i - 1];
            double parabolic =
                heights_[i] +
                sign / span *
                    ((below + sign) *
                         (heights_[i + 1] - heights_[i]) / above +
                     (above - sign) *
                         (heights_[i] - heights_[i - 1]) / below);
            if (heights_[i - 1] < parabolic &&
                parabolic < heights_[i + 1]) {
                heights_[i] = parabolic;
            } else {
                size_t j = d >= 0.0 ? i + 1 : i - 1;
                heights_[i] += sign *
                               (heights_[j] - heights_[i]) /
                               (positions_[j] - positions_[i]);
            }
            positions_[i] += sign;
        }
    }
}

double
P2Quantile::value() const
{
    if (count_ == 0)
        return 0.0;
    if (count_ <= 5) {
        // Exact small-sample quantile, consistent with percentile().
        std::vector<double> sorted(heights_,
                                   heights_ + static_cast<size_t>(
                                                  count_));
        return percentile(std::move(sorted), q_ * 100.0);
    }
    return heights_[2];
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                  static_cast<double>(samples.size() - 1);
    auto lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace nsbench::util
