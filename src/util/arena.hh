/**
 * @file
 * Size-classed arena allocator for tensor storage.
 *
 * The paper's memory characterization (Fig. 3b) shows neuro-symbolic
 * workloads dominated by data movement and allocation churn rather
 * than compute: every tensor op allocates a fresh buffer and most die
 * within one phase. The arena recycles those buffers instead of
 * returning them to the heap: released blocks park on a per-size-class
 * free list and the next acquisition of the same class pops one off,
 * so steady-state execution performs (almost) no heap allocations.
 *
 * Design:
 *
 *  - Blocks are rounded up to power-of-two size classes (minimum
 *    kMinClassBytes), so a tensor whose shape wobbles slightly between
 *    episodes still hits the same class.
 *  - Blocks are 64-byte aligned (cache line / AVX-512 friendly).
 *  - acquire() returns uninitialized memory; zero-fill is the
 *    caller's contract (tensor::Tensor zero-fills unless the caller
 *    went through the documented uninitialized fast path).
 *  - Thread-safe behind one mutex. Tensor allocation happens on the
 *    owner thread between parallel regions, so the lock is
 *    uncontended on the hot path.
 *  - Statistics distinguish fresh heap allocations from free-list
 *    reuse; bench/scaling_memory and the profiler's churn accounting
 *    are built on them.
 *
 * The arena never gives memory back to the OS on its own; call trim()
 * to drop the pooled blocks (tests and benches do between
 * configurations). Whether tensors use the arena at all is decided in
 * tensor/alloc.hh (NSBENCH_ARENA / --arena / setAllocator()).
 */

#ifndef NSBENCH_UTIL_ARENA_HH
#define NSBENCH_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace nsbench::util
{

/** Allocation counters kept by the arena (monotonic until reset). */
struct ArenaStats
{
    uint64_t freshAllocs = 0;   ///< Blocks served by the heap.
    uint64_t reusedAllocs = 0;  ///< Blocks served from a free list.
    uint64_t releases = 0;      ///< Blocks returned to the free lists.
    uint64_t recycledBytes = 0; ///< Class bytes of the reused blocks.
    uint64_t capacityBytes = 0; ///< Class bytes currently owned.
    uint64_t pooledBytes = 0;   ///< Class bytes parked in free lists.

    /** Total acquisitions. */
    uint64_t allocs() const { return freshAllocs + reusedAllocs; }
};

/**
 * Size-classed free-list arena. One process-global instance backs all
 * tensor storage when the arena allocator is active.
 */
class Arena
{
  public:
    /** Smallest size class; smaller requests round up to it. */
    static constexpr size_t kMinClassBytes = 256;

    /** One block handed out by acquire(). */
    struct Block
    {
        void *ptr = nullptr;    ///< 64-byte-aligned, uninitialized.
        size_t classBytes = 0;  ///< Rounded-up capacity of the block.
        bool recycled = false;  ///< Came from a free list, not the heap.
    };

    Arena() = default;
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Returns an uninitialized block of at least @p bytes (a zero-byte
     * request still yields a kMinClassBytes block). Reuses a pooled
     * block of the same class when one exists.
     */
    Block acquire(size_t bytes);

    /**
     * Returns a block to its size-class free list. @p classBytes must
     * be the classBytes the block was acquired with.
     */
    void release(void *ptr, size_t classBytes);

    /** Frees every pooled block back to the heap. */
    void trim();

    /** Snapshot of the counters. */
    ArenaStats stats() const;

    /** Zeroes the counters (capacity/pooled gauges are recomputed). */
    void resetStats();

    /** Size class (in bytes) a request of @p bytes lands in. */
    static size_t classBytesFor(size_t bytes);

    /** The process-global arena tensor storage draws from. */
    static Arena &global();

  private:
    size_t classIndexLocked(size_t class_bytes) const;

    mutable std::mutex mu_;
    /** freeLists_[i] holds blocks of kMinClassBytes << i bytes. */
    std::vector<std::vector<void *>> freeLists_;
    ArenaStats stats_;
};

} // namespace nsbench::util

#endif // NSBENCH_UTIL_ARENA_HH
