#include "util/threadpool.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>

#include "util/logging.hh"

namespace nsbench::util
{

namespace
{

/** Set while the current thread executes a parallelFor lane. */
thread_local bool tlInRegion = false;

std::atomic<ThreadPool::SyncHook> gSyncHook{nullptr};

void
runSyncHook()
{
    if (ThreadPool::SyncHook hook =
            gSyncHook.load(std::memory_order_acquire)) {
        hook();
    }
}

/** Global-pool storage; guarded by gGlobalMu. */
std::mutex gGlobalMu;
std::unique_ptr<ThreadPool> gGlobalPool;
int gRequestedThreads = 0; ///< 0 = use defaultThreads().

} // namespace

ThreadPool::ThreadPool(int threads)
{
    lanes_ = std::max(1, threads);
    workers_.reserve(static_cast<size_t>(lanes_ - 1));
    for (int i = 0; i < lanes_ - 1; i++)
        workers_.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Destruction while a region is in flight would leave workers
        // touching a Job on a dead caller's stack; fail loudly instead
        // (see the shutdown contract in the header).
        panicIf(job_ != nullptr,
                "ThreadPool destroyed while a parallelFor is active");
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::inParallelRegion()
{
    return tlInRegion;
}

ThreadPool::SerialScope::SerialScope() : prev_(tlInRegion)
{
    tlInRegion = true;
}

ThreadPool::SerialScope::~SerialScope()
{
    tlInRegion = prev_;
}

void
ThreadPool::setSyncHook(SyncHook hook)
{
    gSyncHook.store(hook, std::memory_order_release);
}

void
ThreadPool::workerMain()
{
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        wakeCv_.wait(lock,
                     [&] { return stop_ || jobGen_ != seen; });
        if (stop_)
            return;
        seen = jobGen_;
        Job *job = job_;
        if (!job)
            continue;
        job->refs++;
        lock.unlock();
        runLanes(*job);
        lock.lock();
        job->refs--;
        if (job->refs == 0)
            doneCv_.notify_all();
    }
}

void
ThreadPool::runLane(Job &job, int lane)
{
    // Lane `lane` owns chunks lane, lane + lanes, lane + 2*lanes, ...
    // The chunk grid depends only on (begin, end, grain), so results
    // of chunk-structured kernels are stable across pool widths.
    for (int64_t chunk = lane;; chunk += job.lanes) {
        int64_t lo = job.begin + chunk * job.grain;
        if (lo >= job.end)
            break;
        int64_t hi = std::min(job.end, lo + job.grain);
        (*job.fn)(lo, hi);
    }
}

void
ThreadPool::runLanes(Job &job)
{
    bool was_in_region = tlInRegion;
    tlInRegion = true;
    for (;;) {
        int lane = job.nextLane.fetch_add(1, std::memory_order_relaxed);
        if (lane >= job.lanes)
            break;
        try {
            runLane(job, lane);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.errMu);
            if (!job.error)
                job.error = std::current_exception();
        }
        // Flush before the lane is counted done, so the caller sees
        // every side effect (profiler events) once the region ends.
        runSyncHook();
        job.doneLanes.fetch_add(1, std::memory_order_release);
    }
    tlInRegion = was_in_region;
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const RangeFn &fn)
{
    if (end <= begin)
        return;
    grain = std::max<int64_t>(1, grain);
    int64_t items = end - begin;
    int64_t chunks = (items + grain - 1) / grain;
    int lanes = static_cast<int>(
        std::min<int64_t>(lanes_, chunks));

    // Serial fast path: width-1 pools, single-chunk loops, and nested
    // regions (workers must never block on a sub-region of their own
    // pool) all run inline on the calling thread.
    if (lanes <= 1 || tlInRegion) {
        bool was_in_region = tlInRegion;
        tlInRegion = true;
        try {
            fn(begin, end);
        } catch (...) {
            tlInRegion = was_in_region;
            runSyncHook();
            throw;
        }
        tlInRegion = was_in_region;
        runSyncHook();
        return;
    }

    Job job;
    job.begin = begin;
    job.end = end;
    job.grain = grain;
    job.lanes = lanes;
    job.fn = &fn;

    {
        std::lock_guard<std::mutex> lock(mu_);
        job_ = &job;
        jobGen_++;
    }
    wakeCv_.notify_all();

    // The caller is a full participant; with more lanes than awake
    // workers it simply claims the leftover lanes itself.
    runLanes(job);

    {
        std::unique_lock<std::mutex> lock(mu_);
        doneCv_.wait(lock, [&] {
            return job.doneLanes.load(std::memory_order_acquire) >=
                       job.lanes &&
                   job.refs == 0;
        });
        job_ = nullptr;
    }

    if (job.error)
        std::rethrow_exception(job.error);
}

int
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("NSBENCH_THREADS")) {
        char *tail = nullptr;
        long parsed = std::strtol(env, &tail, 10);
        if (tail != env && parsed > 0)
            return static_cast<int>(std::min<long>(parsed, 1024));
        warn("NSBENCH_THREADS=\"" + std::string(env) +
             "\" is not a positive integer; ignoring");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(gGlobalMu);
    if (!gGlobalPool) {
        int width = gRequestedThreads > 0 ? gRequestedThreads
                                          : defaultThreads();
        gGlobalPool = std::make_unique<ThreadPool>(width);
    }
    return *gGlobalPool;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    panicIf(tlInRegion,
            "ThreadPool::setGlobalThreads inside a parallel region");
    std::lock_guard<std::mutex> lock(gGlobalMu);
    gRequestedThreads = threads > 0 ? threads : 0;
    gGlobalPool.reset(); // Re-created lazily at the new width.
}

int
ThreadPool::globalThreads()
{
    std::lock_guard<std::mutex> lock(gGlobalMu);
    if (gGlobalPool)
        return gGlobalPool->threads();
    return gRequestedThreads > 0 ? gRequestedThreads
                                 : defaultThreads();
}

int64_t
grainFor(double workPerItem, double targetWork)
{
    if (workPerItem <= 0.0)
        workPerItem = 1.0;
    double grain = std::ceil(targetWork / workPerItem);
    return std::max<int64_t>(1, static_cast<int64_t>(grain));
}

} // namespace nsbench::util
