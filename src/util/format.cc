#include "util/format.hh"

#include <array>
#include <cmath>
#include <cstdio>

namespace nsbench::util
{

namespace
{

std::string
formatWith(const char *fmt, double v, const char *suffix)
{
    std::array<char, 64> buf{};
    std::snprintf(buf.data(), buf.size(), fmt, v, suffix);
    return buf.data();
}

} // namespace

std::string
humanBytes(uint64_t bytes)
{
    static const std::array<const char *, 5> units =
        {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    size_t u = 0;
    while (v >= 1024.0 && u + 1 < units.size()) {
        v /= 1024.0;
        u++;
    }
    return u == 0 ? formatWith("%.0f %s", v, units[u])
                  : formatWith("%.2f %s", v, units[u]);
}

std::string
humanSeconds(double seconds)
{
    double v = seconds;
    if (v < 1e-6)
        return formatWith("%.1f %s", v * 1e9, "ns");
    if (v < 1e-3)
        return formatWith("%.1f %s", v * 1e6, "us");
    if (v < 1.0)
        return formatWith("%.2f %s", v * 1e3, "ms");
    if (v < 600.0)
        return formatWith("%.2f %s", v, "s");
    return formatWith("%.1f %s", v / 60.0, "min");
}

std::string
humanCount(double count, const std::string &unit)
{
    static const std::array<const char *, 5> prefixes =
        {"", "K", "M", "G", "T"};
    double v = count;
    size_t u = 0;
    while (std::abs(v) >= 1000.0 && u + 1 < prefixes.size()) {
        v /= 1000.0;
        u++;
    }
    std::string suffix = std::string(prefixes[u]) + unit;
    return formatWith("%.2f %s", v, suffix.c_str());
}

std::string
percentStr(double fraction, int decimals)
{
    std::array<char, 32> buf{};
    std::snprintf(buf.data(), buf.size(), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf.data();
}

std::string
fixedStr(double value, int decimals)
{
    std::array<char, 48> buf{};
    std::snprintf(buf.data(), buf.size(), "%.*f", decimals, value);
    return buf.data();
}

} // namespace nsbench::util
