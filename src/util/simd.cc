#include "util/simd.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <string>

#include "util/logging.hh"

// The AVX2 kernels are compiled with per-function target attributes so
// the rest of the library keeps the baseline ISA and the binary still
// starts on machines without AVX2. NSBENCH_SIMD_DISABLE_AVX2 (set by
// the -DNSBENCH_SIMD_AVX2=OFF CMake option) removes them entirely.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(NSBENCH_SIMD_DISABLE_AVX2)
#define NSBENCH_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#define NSBENCH_TGT __attribute__((target("avx2,fma,popcnt")))
#else
#define NSBENCH_HAVE_AVX2_KERNELS 0
#endif

namespace nsbench::util::simd
{

// ---------------------------------------------------------------------
// Backend resolution and dispatch.
// ---------------------------------------------------------------------

namespace
{

/** -1 = unresolved; else a Backend value. Resolution is idempotent. */
std::atomic<int> gBackend{-1};

bool
cpuHasAvx2()
{
#if NSBENCH_HAVE_AVX2_KERNELS
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma") &&
           __builtin_cpu_supports("popcnt");
#else
    return false;
#endif
}

Backend
resolveDefault()
{
    const char *env = std::getenv("NSBENCH_SIMD");
    if (env != nullptr && *env != '\0') {
        std::string v(env);
        for (char &c : v)
            c = static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
        if (v == "off" || v == "0" || v == "scalar" || v == "false")
            return Backend::Scalar;
        if (v == "on" || v == "1" || v == "avx2" || v == "true") {
            if (cpuHasAvx2())
                return Backend::Avx2;
            warn("NSBENCH_SIMD=" + v +
                 " requested but this build/CPU has no AVX2 "
                 "kernels; using the scalar backend");
            return Backend::Scalar;
        }
        warn("unrecognized NSBENCH_SIMD value '" + v +
             "' (want on/off); auto-detecting");
    }
    return cpuHasAvx2() ? Backend::Avx2 : Backend::Scalar;
}

inline bool
useAvx2()
{
    int b = gBackend.load(std::memory_order_relaxed);
    if (b < 0) {
        // Benign race: resolveDefault() is deterministic, so
        // concurrent first calls store the same value.
        b = static_cast<int>(resolveDefault());
        gBackend.store(b, std::memory_order_relaxed);
    }
    return b == static_cast<int>(Backend::Avx2);
}

} // namespace

bool
avx2Supported()
{
    return cpuHasAvx2();
}

Backend
activeBackend()
{
    return useAvx2() ? Backend::Avx2 : Backend::Scalar;
}

void
setBackend(Backend backend)
{
    panicIf(backend == Backend::Avx2 && !cpuHasAvx2(),
            "simd::setBackend: AVX2 backend unavailable on this "
            "build/CPU");
    gBackend.store(static_cast<int>(backend),
                   std::memory_order_relaxed);
}

void
resetBackend()
{
    gBackend.store(-1, std::memory_order_relaxed);
}

const char *
backendName(Backend backend)
{
    return backend == Backend::Avx2 ? "avx2" : "scalar";
}

const char *
activeBackendName()
{
    return backendName(activeBackend());
}

// ---------------------------------------------------------------------
// Scalar reference kernels. These replicate the historical hand-written
// loops exactly (same operation order, same accumulator widths), so a
// scalar-backend build is bit-identical to the pre-SIMD tree.
// ---------------------------------------------------------------------

namespace scalar
{

void
add(const float *a, const float *b, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = a[i] + b[i];
}

void
sub(const float *a, const float *b, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = a[i] - b[i];
}

void
mul(const float *a, const float *b, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = a[i] * b[i];
}

void
div(const float *a, const float *b, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = a[i] / b[i];
}

void
minimum(const float *a, const float *b, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = std::min(a[i], b[i]);
}

void
maximum(const float *a, const float *b, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = std::max(a[i], b[i]);
}

void
addScalar(const float *a, float s, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = a[i] + s;
}

void
mulScalar(const float *a, float s, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = a[i] * s;
}

void
relu(const float *a, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

void
negate(const float *a, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = -a[i];
}

void
absolute(const float *a, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = std::abs(a[i]);
}

void
clampRange(const float *a, float lo, float hi, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = std::clamp(a[i], lo, hi);
}

void
signBipolar(const float *a, float *out, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = a[i] >= 0.0f ? 1.0f : -1.0f;
}

void
accumulate(float *acc, const float *v, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        acc[i] += v[i];
}

void
axpy(float *acc, const float *v, float s, int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        acc[i] += s * v[i];
}

double
sumChunk(const float *a, int64_t n)
{
    double s = 0.0;
    for (int64_t i = 0; i < n; i++)
        s += a[i];
    return s;
}

float
maxChunk(const float *a, int64_t n)
{
    float m = a[0];
    for (int64_t i = 1; i < n; i++)
        m = std::max(m, a[i]);
    return m;
}

int64_t
argmaxChunk(const float *a, int64_t n)
{
    int64_t best = 0;
    for (int64_t i = 1; i < n; i++) {
        if (a[i] > a[best])
            best = i;
    }
    return best;
}

double
dotChunk(const float *a, const float *b, int64_t n)
{
    double s = 0.0;
    for (int64_t i = 0; i < n; i++)
        s += static_cast<double>(a[i]) * b[i];
    return s;
}

void
cosineChunk(const float *a, const float *b, int64_t n,
            double *dot_out, double *norm_a_out, double *norm_b_out)
{
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (int64_t i = 0; i < n; i++) {
        dot += static_cast<double>(a[i]) * b[i];
        na += static_cast<double>(a[i]) * a[i];
        nb += static_cast<double>(b[i]) * b[i];
    }
    *dot_out += dot;
    *norm_a_out += na;
    *norm_b_out += nb;
}

int64_t
signMatchChunk(const float *a, const float *b, int64_t n)
{
    int64_t match = 0;
    for (int64_t i = 0; i < n; i++) {
        if ((a[i] >= 0.0f) == (b[i] >= 0.0f))
            match++;
    }
    return match;
}

void
matmulRows(const float *a, const float *b, float *c, int64_t i0,
           int64_t i1, int64_t k, int64_t n)
{
    for (int64_t i = i0; i < i1; i++) {
        float *crow = c + i * n;
        std::fill(crow, crow + n, 0.0f);
        // i-k-j order keeps the inner loop streaming over B and C.
        for (int64_t kk = 0; kk < k; kk++) {
            float aik = a[i * k + kk];
            const float *brow = b + kk * n;
            for (int64_t j = 0; j < n; j++)
                crow[j] += aik * brow[j];
        }
    }
}

void
linearRows(const float *x, const float *w, const float *bias, float *y,
           int64_t i0, int64_t i1, int64_t k, int64_t o)
{
    for (int64_t i = i0; i < i1; i++) {
        const float *xrow = x + i * k;
        float *yrow = y + i * o;
        for (int64_t j = 0; j < o; j++) {
            const float *wrow = w + j * k;
            float acc = bias != nullptr ? bias[j] : 0.0f;
            for (int64_t kk = 0; kk < k; kk++)
                acc += xrow[kk] * wrow[kk];
            yrow[j] = acc;
        }
    }
}

void
xorWords(const uint64_t *a, const uint64_t *b, uint64_t *out,
         int64_t n)
{
    for (int64_t i = 0; i < n; i++)
        out[i] = a[i] ^ b[i];
}

int64_t
popcountXorWords(const uint64_t *a, const uint64_t *b, int64_t n)
{
    int64_t count = 0;
    for (int64_t i = 0; i < n; i++)
        count += std::popcount(a[i] ^ b[i]);
    return count;
}

} // namespace scalar

// ---------------------------------------------------------------------
// AVX2 + FMA + POPCNT kernels.
// ---------------------------------------------------------------------

#if NSBENCH_HAVE_AVX2_KERNELS

namespace avx2
{

/** Horizontal sum of 8 float lanes. */
NSBENCH_TGT inline float
hsum256(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
    return _mm_cvtss_f32(s);
}

/** Horizontal sum of 4 double lanes. */
NSBENCH_TGT inline double
hsum256d(__m256d v)
{
    __m128d lo = _mm256_castpd256_pd128(v);
    __m128d hi = _mm256_extractf128_pd(v, 1);
    __m128d s = _mm_add_pd(lo, hi);
    s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
    return _mm_cvtsd_f64(s);
}

NSBENCH_TGT void
add(const float *a, const float *b, float *out, int64_t n)
{
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(out + i,
                         _mm256_add_ps(_mm256_loadu_ps(a + i),
                                       _mm256_loadu_ps(b + i)));
    for (; i < n; i++)
        out[i] = a[i] + b[i];
}

NSBENCH_TGT void
sub(const float *a, const float *b, float *out, int64_t n)
{
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(out + i,
                         _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                       _mm256_loadu_ps(b + i)));
    for (; i < n; i++)
        out[i] = a[i] - b[i];
}

NSBENCH_TGT void
mul(const float *a, const float *b, float *out, int64_t n)
{
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(out + i,
                         _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                       _mm256_loadu_ps(b + i)));
    for (; i < n; i++)
        out[i] = a[i] * b[i];
}

NSBENCH_TGT void
div(const float *a, const float *b, float *out, int64_t n)
{
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(out + i,
                         _mm256_div_ps(_mm256_loadu_ps(a + i),
                                       _mm256_loadu_ps(b + i)));
    for (; i < n; i++)
        out[i] = a[i] / b[i];
}

NSBENCH_TGT void
minimum(const float *a, const float *b, float *out, int64_t n)
{
    int64_t i = 0;
    // minps(a, b) returns b on ties, matching std::min(a, b) for every
    // non-NaN input except the sign of a +/-0 tie.
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(out + i,
                         _mm256_min_ps(_mm256_loadu_ps(b + i),
                                       _mm256_loadu_ps(a + i)));
    for (; i < n; i++)
        out[i] = std::min(a[i], b[i]);
}

NSBENCH_TGT void
maximum(const float *a, const float *b, float *out, int64_t n)
{
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(out + i,
                         _mm256_max_ps(_mm256_loadu_ps(b + i),
                                       _mm256_loadu_ps(a + i)));
    for (; i < n; i++)
        out[i] = std::max(a[i], b[i]);
}

NSBENCH_TGT void
addScalar(const float *a, float s, float *out, int64_t n)
{
    __m256 vs = _mm256_set1_ps(s);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), vs));
    for (; i < n; i++)
        out[i] = a[i] + s;
}

NSBENCH_TGT void
mulScalar(const float *a, float s, float *out, int64_t n)
{
    __m256 vs = _mm256_set1_ps(s);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
    for (; i < n; i++)
        out[i] = a[i] * s;
}

NSBENCH_TGT void
relu(const float *a, float *out, int64_t n)
{
    __m256 zero = _mm256_setzero_ps();
    int64_t i = 0;
    // cmp+and instead of maxps so relu(-0.0f) == +0.0f exactly as the
    // scalar `x > 0 ? x : 0` writes it.
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(a + i);
        __m256 mask = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
        _mm256_storeu_ps(out + i, _mm256_and_ps(v, mask));
    }
    for (; i < n; i++)
        out[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

NSBENCH_TGT void
negate(const float *a, float *out, int64_t n)
{
    __m256 sign = _mm256_set1_ps(-0.0f);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            out + i, _mm256_xor_ps(_mm256_loadu_ps(a + i), sign));
    for (; i < n; i++)
        out[i] = -a[i];
}

NSBENCH_TGT void
absolute(const float *a, float *out, int64_t n)
{
    __m256 sign = _mm256_set1_ps(-0.0f);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            out + i, _mm256_andnot_ps(sign, _mm256_loadu_ps(a + i)));
    for (; i < n; i++)
        out[i] = std::abs(a[i]);
}

NSBENCH_TGT void
clampRange(const float *a, float lo, float hi, float *out, int64_t n)
{
    __m256 vlo = _mm256_set1_ps(lo);
    __m256 vhi = _mm256_set1_ps(hi);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(a + i);
        _mm256_storeu_ps(
            out + i,
            _mm256_min_ps(_mm256_max_ps(v, vlo), vhi));
    }
    for (; i < n; i++)
        out[i] = std::clamp(a[i], lo, hi);
}

NSBENCH_TGT void
signBipolar(const float *a, float *out, int64_t n)
{
    __m256 zero = _mm256_setzero_ps();
    __m256 pos = _mm256_set1_ps(1.0f);
    __m256 neg = _mm256_set1_ps(-1.0f);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 mask =
            _mm256_cmp_ps(_mm256_loadu_ps(a + i), zero, _CMP_GE_OQ);
        _mm256_storeu_ps(out + i, _mm256_blendv_ps(neg, pos, mask));
    }
    for (; i < n; i++)
        out[i] = a[i] >= 0.0f ? 1.0f : -1.0f;
}

NSBENCH_TGT void
accumulate(float *acc, const float *v, int64_t n)
{
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(acc + i,
                         _mm256_add_ps(_mm256_loadu_ps(acc + i),
                                       _mm256_loadu_ps(v + i)));
    for (; i < n; i++)
        acc[i] += v[i];
}

NSBENCH_TGT void
axpy(float *acc, const float *v, float s, int64_t n)
{
    __m256 vs = _mm256_set1_ps(s);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(acc + i,
                         _mm256_fmadd_ps(vs, _mm256_loadu_ps(v + i),
                                         _mm256_loadu_ps(acc + i)));
    for (; i < n; i++)
        acc[i] += s * v[i];
}

NSBENCH_TGT double
sumChunk(const float *a, int64_t n)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 v = _mm256_loadu_ps(a + i);
        acc0 = _mm256_add_pd(
            acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
        acc1 = _mm256_add_pd(
            acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
    }
    double s = hsum256d(_mm256_add_pd(acc0, acc1));
    for (; i < n; i++)
        s += a[i];
    return s;
}

NSBENCH_TGT float
maxChunk(const float *a, int64_t n)
{
    float m = a[0];
    int64_t i = 0;
    if (n >= 8) {
        __m256 vm = _mm256_loadu_ps(a);
        for (i = 8; i + 8 <= n; i += 8)
            vm = _mm256_max_ps(vm, _mm256_loadu_ps(a + i));
        __m128 lo = _mm256_castps256_ps128(vm);
        __m128 hi = _mm256_extractf128_ps(vm, 1);
        __m128 s = _mm_max_ps(lo, hi);
        s = _mm_max_ps(s, _mm_movehl_ps(s, s));
        s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0x1));
        m = _mm_cvtss_f32(s);
    }
    for (; i < n; i++)
        m = std::max(m, a[i]);
    return m;
}

NSBENCH_TGT int64_t
argmaxChunk(const float *a, int64_t n)
{
    // Two passes: find the maximum value, then the first index holding
    // it — the same index the serial first-strict-max scan returns.
    float m = maxChunk(a, n);
    __m256 vm = _mm256_set1_ps(m);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 eq =
            _mm256_cmp_ps(_mm256_loadu_ps(a + i), vm, _CMP_EQ_OQ);
        int mask = _mm256_movemask_ps(eq);
        if (mask != 0)
            return i + std::countr_zero(
                           static_cast<unsigned>(mask));
    }
    for (; i < n; i++) {
        if (a[i] == m)
            return i;
    }
    return 0;
}

NSBENCH_TGT double
dotChunk(const float *a, const float *b, int64_t n)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256 va = _mm256_loadu_ps(a + i);
        __m256 vb = _mm256_loadu_ps(b + i);
        acc0 = _mm256_fmadd_pd(
            _mm256_cvtps_pd(_mm256_castps256_ps128(va)),
            _mm256_cvtps_pd(_mm256_castps256_ps128(vb)), acc0);
        acc1 = _mm256_fmadd_pd(
            _mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
            _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)), acc1);
    }
    double s = hsum256d(_mm256_add_pd(acc0, acc1));
    for (; i < n; i++)
        s += static_cast<double>(a[i]) * b[i];
    return s;
}

NSBENCH_TGT void
cosineChunk(const float *a, const float *b, int64_t n,
            double *dot_out, double *norm_a_out, double *norm_b_out)
{
    __m256d dacc = _mm256_setzero_pd();
    __m256d aacc = _mm256_setzero_pd();
    __m256d bacc = _mm256_setzero_pd();
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256d va = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
        __m256d vb = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
        dacc = _mm256_fmadd_pd(va, vb, dacc);
        aacc = _mm256_fmadd_pd(va, va, aacc);
        bacc = _mm256_fmadd_pd(vb, vb, bacc);
    }
    double dot = hsum256d(dacc);
    double na = hsum256d(aacc);
    double nb = hsum256d(bacc);
    for (; i < n; i++) {
        dot += static_cast<double>(a[i]) * b[i];
        na += static_cast<double>(a[i]) * a[i];
        nb += static_cast<double>(b[i]) * b[i];
    }
    *dot_out += dot;
    *norm_a_out += na;
    *norm_b_out += nb;
}

NSBENCH_TGT int64_t
signMatchChunk(const float *a, const float *b, int64_t n)
{
    __m256 zero = _mm256_setzero_ps();
    int64_t match = 0;
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // Compare-based sign test so -0.0f counts as non-negative,
        // exactly like the scalar (x >= 0.0f) predicate.
        int ma = _mm256_movemask_ps(_mm256_cmp_ps(
            _mm256_loadu_ps(a + i), zero, _CMP_GE_OQ));
        int mb = _mm256_movemask_ps(_mm256_cmp_ps(
            _mm256_loadu_ps(b + i), zero, _CMP_GE_OQ));
        match += 8 - __builtin_popcount(
                         static_cast<unsigned>(ma ^ mb));
    }
    for (; i < n; i++) {
        if ((a[i] >= 0.0f) == (b[i] >= 0.0f))
            match++;
    }
    return match;
}

/**
 * One output row of C = A * B, register-tiled 16 columns wide: the
 * 2x8-lane accumulators live in registers across the whole k loop, so
 * B streams once per column block and C is written exactly once.
 */
NSBENCH_TGT void
matmulRow1(const float *arow, const float *b, float *crow, int64_t k,
           int64_t n)
{
    int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        for (int64_t kk = 0; kk < k; kk++) {
            __m256 av = _mm256_set1_ps(arow[kk]);
            const float *brow = b + kk * n + j;
            acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
            acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8),
                                   acc1);
        }
        _mm256_storeu_ps(crow + j, acc0);
        _mm256_storeu_ps(crow + j + 8, acc1);
    }
    for (; j + 8 <= n; j += 8) {
        __m256 acc = _mm256_setzero_ps();
        for (int64_t kk = 0; kk < k; kk++)
            acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]),
                                  _mm256_loadu_ps(b + kk * n + j),
                                  acc);
        _mm256_storeu_ps(crow + j, acc);
    }
    for (; j < n; j++) {
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; kk++)
            acc += arow[kk] * b[kk * n + j];
        crow[j] = acc;
    }
}

/**
 * Four output rows at once: 4x16 register tile (8 accumulators), so
 * every B load feeds four FMA pairs. Each row's value is identical to
 * the one matmulRow1 computes, so the 4-row grouping never changes
 * results — only speed.
 */
NSBENCH_TGT void
matmulRow4(const float *a, const float *b, float *c, int64_t i,
           int64_t k, int64_t n)
{
    const float *a0 = a + (i + 0) * k;
    const float *a1 = a + (i + 1) * k;
    const float *a2 = a + (i + 2) * k;
    const float *a3 = a + (i + 3) * k;
    float *c0 = c + (i + 0) * n;
    float *c1 = c + (i + 1) * n;
    float *c2 = c + (i + 2) * n;
    float *c3 = c + (i + 3) * n;

    int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
        __m256 r00 = _mm256_setzero_ps(), r01 = _mm256_setzero_ps();
        __m256 r10 = _mm256_setzero_ps(), r11 = _mm256_setzero_ps();
        __m256 r20 = _mm256_setzero_ps(), r21 = _mm256_setzero_ps();
        __m256 r30 = _mm256_setzero_ps(), r31 = _mm256_setzero_ps();
        for (int64_t kk = 0; kk < k; kk++) {
            const float *brow = b + kk * n + j;
            __m256 b0 = _mm256_loadu_ps(brow);
            __m256 b1 = _mm256_loadu_ps(brow + 8);
            __m256 av;
            av = _mm256_set1_ps(a0[kk]);
            r00 = _mm256_fmadd_ps(av, b0, r00);
            r01 = _mm256_fmadd_ps(av, b1, r01);
            av = _mm256_set1_ps(a1[kk]);
            r10 = _mm256_fmadd_ps(av, b0, r10);
            r11 = _mm256_fmadd_ps(av, b1, r11);
            av = _mm256_set1_ps(a2[kk]);
            r20 = _mm256_fmadd_ps(av, b0, r20);
            r21 = _mm256_fmadd_ps(av, b1, r21);
            av = _mm256_set1_ps(a3[kk]);
            r30 = _mm256_fmadd_ps(av, b0, r30);
            r31 = _mm256_fmadd_ps(av, b1, r31);
        }
        _mm256_storeu_ps(c0 + j, r00);
        _mm256_storeu_ps(c0 + j + 8, r01);
        _mm256_storeu_ps(c1 + j, r10);
        _mm256_storeu_ps(c1 + j + 8, r11);
        _mm256_storeu_ps(c2 + j, r20);
        _mm256_storeu_ps(c2 + j + 8, r21);
        _mm256_storeu_ps(c3 + j, r30);
        _mm256_storeu_ps(c3 + j + 8, r31);
    }
    if (j < n) {
        // Column tail: fall back to the single-row kernel's tail by
        // running it per row on the remaining columns.
        for (int r = 0; r < 4; r++) {
            const float *arow = a + (i + r) * k;
            float *crow = c + (i + r) * n;
            for (int64_t jj = j; jj + 8 <= n; jj += 8) {
                __m256 acc = _mm256_setzero_ps();
                for (int64_t kk = 0; kk < k; kk++)
                    acc = _mm256_fmadd_ps(
                        _mm256_set1_ps(arow[kk]),
                        _mm256_loadu_ps(b + kk * n + jj), acc);
                _mm256_storeu_ps(crow + jj, acc);
            }
            int64_t jt = j + ((n - j) / 8) * 8;
            for (; jt < n; jt++) {
                float acc = 0.0f;
                for (int64_t kk = 0; kk < k; kk++)
                    acc += arow[kk] * b[kk * n + jt];
                crow[jt] = acc;
            }
        }
    }
}

NSBENCH_TGT void
matmulRows(const float *a, const float *b, float *c, int64_t i0,
           int64_t i1, int64_t k, int64_t n)
{
    int64_t i = i0;
    for (; i + 4 <= i1; i += 4)
        matmulRow4(a, b, c, i, k, n);
    for (; i < i1; i++)
        matmulRow1(a + i * k, b, c + i * n, k, n);
}

NSBENCH_TGT void
linearRows(const float *x, const float *w, const float *bias, float *y,
           int64_t i0, int64_t i1, int64_t k, int64_t o)
{
    for (int64_t i = i0; i < i1; i++) {
        const float *xrow = x + i * k;
        float *yrow = y + i * o;
        int64_t j = 0;
        // Four output features share each xrow load.
        for (; j + 4 <= o; j += 4) {
            const float *w0 = w + (j + 0) * k;
            const float *w1 = w + (j + 1) * k;
            const float *w2 = w + (j + 2) * k;
            const float *w3 = w + (j + 3) * k;
            __m256 acc0 = _mm256_setzero_ps();
            __m256 acc1 = _mm256_setzero_ps();
            __m256 acc2 = _mm256_setzero_ps();
            __m256 acc3 = _mm256_setzero_ps();
            int64_t kk = 0;
            for (; kk + 8 <= k; kk += 8) {
                __m256 xv = _mm256_loadu_ps(xrow + kk);
                acc0 = _mm256_fmadd_ps(
                    xv, _mm256_loadu_ps(w0 + kk), acc0);
                acc1 = _mm256_fmadd_ps(
                    xv, _mm256_loadu_ps(w1 + kk), acc1);
                acc2 = _mm256_fmadd_ps(
                    xv, _mm256_loadu_ps(w2 + kk), acc2);
                acc3 = _mm256_fmadd_ps(
                    xv, _mm256_loadu_ps(w3 + kk), acc3);
            }
            float s0 = hsum256(acc0);
            float s1 = hsum256(acc1);
            float s2 = hsum256(acc2);
            float s3 = hsum256(acc3);
            for (; kk < k; kk++) {
                float xv = xrow[kk];
                s0 += xv * w0[kk];
                s1 += xv * w1[kk];
                s2 += xv * w2[kk];
                s3 += xv * w3[kk];
            }
            if (bias != nullptr) {
                s0 += bias[j + 0];
                s1 += bias[j + 1];
                s2 += bias[j + 2];
                s3 += bias[j + 3];
            }
            yrow[j + 0] = s0;
            yrow[j + 1] = s1;
            yrow[j + 2] = s2;
            yrow[j + 3] = s3;
        }
        for (; j < o; j++) {
            const float *wrow = w + j * k;
            __m256 acc = _mm256_setzero_ps();
            int64_t kk = 0;
            for (; kk + 8 <= k; kk += 8)
                acc = _mm256_fmadd_ps(_mm256_loadu_ps(xrow + kk),
                                      _mm256_loadu_ps(wrow + kk),
                                      acc);
            float s = hsum256(acc);
            for (; kk < k; kk++)
                s += xrow[kk] * wrow[kk];
            if (bias != nullptr)
                s += bias[j];
            yrow[j] = s;
        }
    }
}

NSBENCH_TGT void
xorWords(const uint64_t *a, const uint64_t *b, uint64_t *out,
         int64_t n)
{
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            _mm256_xor_si256(va, vb));
    }
    for (; i < n; i++)
        out[i] = a[i] ^ b[i];
}

/** Per-byte popcount via the pshufb nibble table (Mula). */
NSBENCH_TGT inline __m256i
popcount256(__m256i v)
{
    const __m256i lookup = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2,
        1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    __m256i lo = _mm256_and_si256(v, low_mask);
    __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    __m256i counts =
        _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                        _mm256_shuffle_epi8(lookup, hi));
    // Horizontal per-64-bit-lane byte sums.
    return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

NSBENCH_TGT int64_t
popcountXorWords(const uint64_t *a, const uint64_t *b, int64_t n)
{
    __m256i acc = _mm256_setzero_si256();
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        acc = _mm256_add_epi64(acc,
                               popcount256(_mm256_xor_si256(va, vb)));
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    int64_t count = static_cast<int64_t>(lanes[0] + lanes[1] +
                                         lanes[2] + lanes[3]);
    for (; i < n; i++)
        count += __builtin_popcountll(a[i] ^ b[i]);
    return count;
}

} // namespace avx2

#endif // NSBENCH_HAVE_AVX2_KERNELS

// ---------------------------------------------------------------------
// Dispatch shims.
// ---------------------------------------------------------------------

#if NSBENCH_HAVE_AVX2_KERNELS
#define NSBENCH_SIMD_DISPATCH(fn, ...)            \
    do {                                          \
        if (useAvx2())                            \
            return avx2::fn(__VA_ARGS__);         \
        return scalar::fn(__VA_ARGS__);           \
    } while (0)
#else
#define NSBENCH_SIMD_DISPATCH(fn, ...) return scalar::fn(__VA_ARGS__)
#endif

void
add(const float *a, const float *b, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(add, a, b, out, n);
}

void
sub(const float *a, const float *b, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(sub, a, b, out, n);
}

void
mul(const float *a, const float *b, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(mul, a, b, out, n);
}

void
div(const float *a, const float *b, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(div, a, b, out, n);
}

void
minimum(const float *a, const float *b, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(minimum, a, b, out, n);
}

void
maximum(const float *a, const float *b, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(maximum, a, b, out, n);
}

void
addScalar(const float *a, float s, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(addScalar, a, s, out, n);
}

void
mulScalar(const float *a, float s, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(mulScalar, a, s, out, n);
}

void
relu(const float *a, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(relu, a, out, n);
}

void
negate(const float *a, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(negate, a, out, n);
}

void
absolute(const float *a, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(absolute, a, out, n);
}

void
clampRange(const float *a, float lo, float hi, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(clampRange, a, lo, hi, out, n);
}

void
signBipolar(const float *a, float *out, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(signBipolar, a, out, n);
}

void
accumulate(float *acc, const float *v, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(accumulate, acc, v, n);
}

void
axpy(float *acc, const float *v, float s, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(axpy, acc, v, s, n);
}

double
sumChunk(const float *a, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(sumChunk, a, n);
}

float
maxChunk(const float *a, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(maxChunk, a, n);
}

int64_t
argmaxChunk(const float *a, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(argmaxChunk, a, n);
}

double
dotChunk(const float *a, const float *b, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(dotChunk, a, b, n);
}

void
cosineChunk(const float *a, const float *b, int64_t n,
            double *dot_out, double *norm_a_out, double *norm_b_out)
{
    NSBENCH_SIMD_DISPATCH(cosineChunk, a, b, n, dot_out, norm_a_out,
                          norm_b_out);
}

int64_t
signMatchChunk(const float *a, const float *b, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(signMatchChunk, a, b, n);
}

void
matmulRows(const float *a, const float *b, float *c, int64_t i0,
           int64_t i1, int64_t k, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(matmulRows, a, b, c, i0, i1, k, n);
}

void
linearRows(const float *x, const float *w, const float *bias, float *y,
           int64_t i0, int64_t i1, int64_t k, int64_t o)
{
    NSBENCH_SIMD_DISPATCH(linearRows, x, w, bias, y, i0, i1, k, o);
}

void
xorWords(const uint64_t *a, const uint64_t *b, uint64_t *out,
         int64_t n)
{
    NSBENCH_SIMD_DISPATCH(xorWords, a, b, out, n);
}

int64_t
popcountXorWords(const uint64_t *a, const uint64_t *b, int64_t n)
{
    NSBENCH_SIMD_DISPATCH(popcountXorWords, a, b, n);
}

} // namespace nsbench::util::simd
