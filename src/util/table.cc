#include "util/table.hh"

#include <algorithm>

#include "util/logging.hh"

namespace nsbench::util
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panicIf(headers_.empty(), "Table: need at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    panicIf(cells.size() != headers_.size(),
            "Table::addRow: cell count does not match header count");
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); c++) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };

    print_row(headers_);
    size_t rule = 0;
    for (size_t c = 0; c < widths.size(); c++)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); c++) {
            os << csvQuote(row[c]);
            if (c + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

std::string
csvQuote(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace nsbench::util
