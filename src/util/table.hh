/**
 * @file
 * Console table and CSV emitters used by every bench to print the
 * rows/series the paper reports.
 */

#ifndef NSBENCH_UTIL_TABLE_HH
#define NSBENCH_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace nsbench::util
{

/**
 * A column-aligned text table. Cells are strings; the writer pads each
 * column to its widest cell and draws a header rule.
 */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends a row; the cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Renders the table to the given stream. */
    void print(std::ostream &os) const;

    /** Renders as CSV (comma-separated, quoted where needed). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Quotes a CSV cell when it contains separators or quotes. */
std::string csvQuote(const std::string &cell);

} // namespace nsbench::util

#endif // NSBENCH_UTIL_TABLE_HH
