/**
 * @file
 * Deterministic fault-injection registry.
 *
 * A failpoint is a named site in the code that asks "should I fail
 * right now?". Sites are armed by a spec — the NSBENCH_FAILPOINTS
 * environment variable or `nsbench ... --faults SPEC` — of the form
 *
 *     site=prob[@seed][xLIMIT][sSKIP][~DELAYus][,site=...]
 *
 * e.g. `serve.worker.run=0.1@7x20s2`: the site fires on 10% of its
 * evaluations, drawn from an RNG seeded with 7, at most 20 times,
 * never on its first 2 evaluations. Omitted fields default to a
 * seed derived from the site name, no fire limit, and no skip.
 *
 * A `~DELAY` suffix turns the site's action from *fail* into *delay*:
 * a firing evaluation sleeps for DELAY microseconds and then reports
 * "no fault" to the caller (e.g. `net.read=0.05@11~20000` makes 5% of
 * reads 20ms slow instead of failing them). This models the harder
 * failure mode — the peer that is slow, not dead — with the same
 * deterministic schedule: whether the k-th evaluation fires is still
 * a pure function of the spec; only the action changes.
 *
 * Determinism: each site owns a private RNG seeded only by its spec,
 * and the k-th *evaluation* of a site consumes the k-th draw of that
 * stream. The fault schedule — the set of evaluation indices that
 * fire — is therefore an exact function of the spec, independent of
 * thread interleavings, wall time, or what other sites do. (Under
 * concurrency, *which request* lands on a firing evaluation can vary
 * between runs; which evaluations fire cannot.)
 *
 * When no spec is configured the registry is disarmed and the
 * NSBENCH_FAILPOINT macro is a single relaxed atomic load — the
 * serving hot paths pay no RNG, no lock, and change no behaviour.
 *
 * Site names live in failpoints::sites so the CLI can validate specs
 * and the docs can enumerate them; configure() rejects unknown names.
 */

#ifndef NSBENCH_UTIL_FAILPOINT_HH
#define NSBENCH_UTIL_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nsbench::util::failpoints
{

/** The catalog of failpoint sites threaded through the library. */
namespace sites
{
/** BoundedQueue::tryPush reports a transient full queue. */
inline constexpr const char *kQueueTryPush = "serve.queue.trypush";
/** BoundedQueue::pop/popUntil stalls briefly before dequeuing. */
inline constexpr const char *kQueuePop = "serve.queue.pop";
/** Server::submit sheds the request as overload (RejectedOverload). */
inline constexpr const char *kAdmissionShed = "serve.admission.shed";
/** Batcher dispatches the pending batch early (degraded coalescing). */
inline constexpr const char *kBatcherCoalesce = "serve.batcher.coalesce";
/** Worker run() attempt fails transiently (retry path). */
inline constexpr const char *kWorkerRun = "serve.worker.run";
/** Worker replica is poisoned (supervisor replacement path). */
inline constexpr const char *kWorkerCrash = "serve.worker.crash";
/** Completion callback throws after delivering (containment path). */
inline constexpr const char *kCallback = "serve.callback";
/** ResultCache::insert drops the entry (next lookup misses). */
inline constexpr const char *kResultInsert = "cache.result.insert";
/** PrecomputeCache builder throws (build-retry path). */
inline constexpr const char *kPrecomputeBuild = "cache.precompute.build";
/** TCP front end drops a freshly accepted connection. */
inline constexpr const char *kNetAccept = "net.accept";
/** TCP front end treats a socket read as failed (connection closes). */
inline constexpr const char *kNetRead = "net.read";
/** TCP front end treats a socket write as failed (connection closes). */
inline constexpr const char *kNetWrite = "net.write";
/** Client connect() attempt to a backend fails (reconnect/backoff
 *  path in the client; health/failover path in the router). */
inline constexpr const char *kNetBackendConnect = "net.backend.connect";
/** Dedicated slow-worker site: evaluated by delay-decorated workload
 *  replicas (bench/scaling_tail), never by the stock server, so one
 *  backend in a multi-backend process can be made slow. Only
 *  meaningful with a `~DELAY` action. */
inline constexpr const char *kWorkerDelay = "serve.worker.delay";
} // namespace sites

/** Every site name configure() accepts, in catalog order. */
const std::vector<std::string> &knownSites();

/** Parsed per-site schedule parameters. */
struct SiteSpec
{
    double probability = 0.0; ///< Fire chance per evaluation, [0, 1].
    uint64_t seed = 0;        ///< Site RNG seed (0 -> name-derived).
    uint64_t limit = 0;       ///< Max fires; 0 -> unbounded.
    uint64_t skip = 0;        ///< Evaluations that can never fire.
    /** When nonzero the site's action is a sleep of this many
     *  microseconds instead of a reported failure. */
    uint64_t delayUs = 0;
};

/** Point-in-time counters for one configured site. */
struct SiteStats
{
    uint64_t evaluations = 0; ///< Times the site was asked.
    uint64_t fires = 0;       ///< Times it answered "fail".
    uint64_t delays = 0;      ///< Fires that slept instead.
    uint64_t delayedUs = 0;   ///< Total injected sleep, microseconds.
};

/**
 * Parses @p spec without touching the live registry.
 * @return empty string on success, else a human-readable error. On
 *         success @p out (when non-null) receives the parsed sites.
 */
std::string parse(const std::string &spec,
                  std::map<std::string, SiteSpec> *out);

/**
 * Arms the registry from @p spec, replacing any previous
 * configuration (all site RNGs and counters restart from scratch —
 * reconfiguring with the same spec reproduces the same schedule).
 * An empty spec disarms. Thread-safe.
 * @return empty string on success, else the parse error (the
 *         registry is left unchanged on error).
 */
std::string configure(const std::string &spec);

/**
 * Arms from NSBENCH_FAILPOINTS if set; a malformed value warns and
 * leaves the registry disarmed (library init must not die on env).
 */
void configureFromEnv();

/** Disarms and clears every site. */
void reset();

/** Per-site evaluation/fire counters for the current configuration. */
std::map<std::string, SiteStats> stats();

namespace detail
{
/** Set iff at least one site is configured. Written under the
 *  registry mutex; read lock-free on every evaluation. */
extern std::atomic<bool> gArmed;
} // namespace detail

/** True when any site is configured (the macro's fast gate). */
inline bool
armed()
{
    return detail::gArmed.load(std::memory_order_relaxed);
}

/**
 * Slow path behind NSBENCH_FAILPOINT: consumes one draw of the
 * site's RNG stream and reports whether this evaluation fires.
 * Unconfigured sites never fire (and are not counted). A firing
 * evaluation of a `~DELAY` site sleeps (outside the registry lock)
 * and returns false — the caller proceeds normally, just late.
 */
bool evaluate(const char *site);

} // namespace nsbench::util::failpoints

/**
 * `if (NSBENCH_FAILPOINT(sites::kWorkerRun)) { ...inject... }`
 * Disarmed cost: one relaxed atomic load, no call.
 */
#define NSBENCH_FAILPOINT(site)                                        \
    (nsbench::util::failpoints::armed() &&                             \
     nsbench::util::failpoints::evaluate(site))

#endif // NSBENCH_UTIL_FAILPOINT_HH
