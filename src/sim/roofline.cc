#include "sim/roofline.hh"

#include <algorithm>

namespace nsbench::sim
{

double
attainableGflops(const DeviceSpec &device, double intensity)
{
    return std::min(device.peakGflops,
                    device.memBandwidthGBs * intensity);
}

bool
isMemoryBound(const DeviceSpec &device, double intensity)
{
    return intensity < device.ridgeIntensity();
}

RooflinePoint
placeOnRoofline(const DeviceSpec &device, const std::string &label,
                const core::OpStats &stats)
{
    RooflinePoint pt;
    pt.label = label;
    pt.intensity = stats.opIntensity();
    pt.attainableGflops = attainableGflops(device, pt.intensity);
    pt.memoryBound = isMemoryBound(device, pt.intensity);
    return pt;
}

std::vector<RooflinePoint>
rooflineFromProfile(const DeviceSpec &device,
                    const core::Profiler &profiler,
                    const std::string &workload_name)
{
    std::vector<RooflinePoint> points;
    for (core::Phase phase :
         {core::Phase::Neural, core::Phase::Symbolic}) {
        core::OpStats phase_stats = profiler.phaseTotals(phase);
        if (phase_stats.invocations == 0)
            continue;
        std::string base = workload_name + "/" +
                           std::string(core::phaseName(phase));
        points.push_back(placeOnRoofline(device, base, phase_stats));
        for (core::OpCategory category : core::allOpCategories) {
            core::OpStats s = profiler.categoryTotals(phase, category);
            if (s.invocations == 0 || s.bytes() == 0.0)
                continue;
            points.push_back(placeOnRoofline(
                device,
                base + "/" + std::string(core::opCategoryName(category)),
                s));
        }
    }
    return points;
}

} // namespace nsbench::sim
