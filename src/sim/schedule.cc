#include "sim/schedule.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace nsbench::sim
{

using core::NodeId;
using core::OpGraph;
using core::Phase;

double
ScheduleResult::utilization(Phase kind, int units) const
{
    if (makespan <= 0.0 || units <= 0)
        return 0.0;
    double busy = 0.0;
    for (const auto &stage : stages) {
        if (stage.kind == kind)
            busy += stage.end - stage.start;
    }
    return busy / (makespan * units);
}

ScheduleResult
pipelineSchedule(const OpGraph &graph, const ScheduleConfig &config,
                 int episodes)
{
    util::panicIf(config.neuralUnits < 1 || config.symbolicUnits < 1,
                  "pipelineSchedule: need at least one unit per kind");
    util::panicIf(episodes < 1,
                  "pipelineSchedule: need at least one episode");

    ScheduleResult result;
    for (NodeId id = 0; id < graph.size(); id++)
        result.sequentialSeconds += graph.node(id).seconds;
    result.sequentialSeconds *= episodes;

    // Event-driven global list scheduling: keep the ready set across
    // all episodes and always dispatch the (stage, unit) pair that
    // can start earliest. Episode-major greedy would reserve units
    // ahead of time and starve later episodes of earlier idle slots.
    std::vector<double> neural_free(
        static_cast<size_t>(config.neuralUnits), 0.0);
    std::vector<double> symbolic_free(
        static_cast<size_t>(config.symbolicUnits), 0.0);

    size_t n = graph.size();
    std::vector<size_t> pending(static_cast<size_t>(episodes) * n);
    std::vector<double> ready_time(
        static_cast<size_t>(episodes) * n, 0.0);
    std::vector<bool> is_ready(static_cast<size_t>(episodes) * n,
                               false);
    std::vector<bool> done(static_cast<size_t>(episodes) * n, false);

    auto slot = [n](int e, NodeId id) {
        return static_cast<size_t>(e) * n + id;
    };
    for (int e = 0; e < episodes; e++) {
        for (NodeId id = 0; id < n; id++) {
            pending[slot(e, id)] = graph.predecessors(id).size();
            if (pending[slot(e, id)] == 0)
                is_ready[slot(e, id)] = true;
        }
    }

    auto earliest_unit = [](const std::vector<double> &frees) {
        size_t best = 0;
        for (size_t u = 1; u < frees.size(); u++) {
            if (frees[u] < frees[best])
                best = u;
        }
        return best;
    };

    size_t remaining = static_cast<size_t>(episodes) * n;
    while (remaining > 0) {
        // Pick the dispatchable stage with the earliest start time.
        double best_start = std::numeric_limits<double>::infinity();
        int best_e = -1;
        NodeId best_id = 0;
        Phase best_kind = Phase::Untagged;
        size_t best_unit = 0;

        for (int e = 0; e < episodes; e++) {
            for (NodeId id = 0; id < n; id++) {
                size_t sl = slot(e, id);
                if (!is_ready[sl] || done[sl])
                    continue;

                Phase phase = graph.node(id).phase;
                auto consider = [&](Phase kind,
                                    const std::vector<double>
                                        &frees) {
                    size_t unit = earliest_unit(frees);
                    double start =
                        std::max(ready_time[sl], frees[unit]);
                    if (start < best_start) {
                        best_start = start;
                        best_e = e;
                        best_id = id;
                        best_kind = kind;
                        best_unit = unit;
                    }
                };
                if (phase == Phase::Neural) {
                    consider(Phase::Neural, neural_free);
                } else if (phase == Phase::Symbolic) {
                    consider(Phase::Symbolic, symbolic_free);
                } else {
                    consider(Phase::Neural, neural_free);
                    consider(Phase::Symbolic, symbolic_free);
                }
            }
        }
        util::panicIf(best_e < 0,
                      "pipelineSchedule: no dispatchable stage");

        double end = best_start + graph.node(best_id).seconds;
        auto &pool = best_kind == Phase::Neural ? neural_free
                                                : symbolic_free;
        pool[best_unit] = end;

        size_t sl = slot(best_e, best_id);
        done[sl] = true;
        remaining--;
        for (NodeId next : graph.successors(best_id)) {
            size_t nsl = slot(best_e, next);
            ready_time[nsl] = std::max(ready_time[nsl], end);
            if (--pending[nsl] == 0)
                is_ready[nsl] = true;
        }

        result.stages.push_back({best_id, best_e,
                                 static_cast<int>(best_unit),
                                 best_kind, best_start, end});
        result.makespan = std::max(result.makespan, end);
    }
    return result;
}

} // namespace nsbench::sim
