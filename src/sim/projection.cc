#include "sim/projection.hh"

#include <algorithm>

namespace nsbench::sim
{

double
DeviceProjection::symbolicFraction() const
{
    if (totalSeconds <= 0.0)
        return 0.0;
    for (const auto &p : phases) {
        if (p.phase == core::Phase::Symbolic)
            return p.seconds / totalSeconds;
    }
    return 0.0;
}

double
DeviceProjection::neuralFraction() const
{
    if (totalSeconds <= 0.0)
        return 0.0;
    for (const auto &p : phases) {
        if (p.phase == core::Phase::Neural)
            return p.seconds / totalSeconds;
    }
    return 0.0;
}

double
projectOp(const DeviceSpec &device, core::OpCategory category,
          const core::OpStats &stats)
{
    double eff = std::max(device.efficiency(category), 1e-4);
    double compute_s =
        stats.flops / (device.peakGflops * 1e9 * eff);
    double memory_s = stats.bytes() / (device.memBandwidthGBs * 1e9);
    double overhead_s = static_cast<double>(stats.invocations) *
                        device.launchOverheadUs * 1e-6;
    return std::max(compute_s, memory_s) + overhead_s;
}

DeviceProjection
projectProfile(const DeviceSpec &device, const core::Profiler &profiler)
{
    DeviceProjection out;
    out.device = device.name;

    for (core::Phase phase :
         {core::Phase::Neural, core::Phase::Symbolic,
          core::Phase::Untagged}) {
        PhaseProjection proj;
        proj.phase = phase;
        for (core::OpCategory category : core::allOpCategories) {
            core::OpStats s = profiler.categoryTotals(phase, category);
            if (s.invocations == 0)
                continue;
            double eff = std::max(device.efficiency(category), 1e-4);
            double compute_s =
                s.flops / (device.peakGflops * 1e9 * eff);
            double memory_s =
                s.bytes() / (device.memBandwidthGBs * 1e9);
            double overhead_s = static_cast<double>(s.invocations) *
                                device.launchOverheadUs * 1e-6;
            proj.computeSeconds += compute_s;
            proj.memorySeconds += memory_s;
            proj.overheadSeconds += overhead_s;
            proj.seconds += std::max(compute_s, memory_s) + overhead_s;
        }
        if (proj.seconds > 0.0) {
            out.phases.push_back(proj);
            out.totalSeconds += proj.seconds;
        }
    }
    return out;
}

} // namespace nsbench::sim
