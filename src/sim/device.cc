#include "sim/device.hh"

#include <array>

namespace nsbench::sim
{

namespace
{

// Category order: Convolution, MatMul, VectorElementwise,
// DataTransform, DataMovement, Other.

DeviceSpec
makeXeon()
{
    DeviceSpec d;
    d.name = "Xeon 4114";
    d.peakGflops = 700.0;       // 10 cores, AVX-512 FMA @ ~2.2 GHz
    d.memBandwidthGBs = 115.0;  // 6-channel DDR4-2400
    d.launchOverheadUs = 0.05;  // function-call scale dispatch
    d.tdpWatts = 85.0;
    d.categoryEfficiency = {0.55, 0.70, 0.35, 0.30, 1.0, 0.10};
    return d;
}

DeviceSpec
makeRtx()
{
    DeviceSpec d;
    d.name = "RTX 2080 Ti";
    d.peakGflops = 13450.0;
    d.memBandwidthGBs = 616.0;
    d.launchOverheadUs = 5.0;   // CUDA kernel launch latency
    d.tdpWatts = 250.0;
    // Dense neural kernels approach peak; symbolic vector/logic
    // kernels see the <10% ALU utilization of Tab. IV.
    d.categoryEfficiency = {0.80, 0.90, 0.06, 0.05, 1.0, 0.02};
    return d;
}

DeviceSpec
makeXavierNx()
{
    DeviceSpec d;
    d.name = "Xavier NX";
    d.peakGflops = 844.0;       // 384 Volta cores @ ~1.1 GHz
    d.memBandwidthGBs = 51.2;
    d.launchOverheadUs = 10.0;
    d.tdpWatts = 20.0;
    d.categoryEfficiency = {0.70, 0.80, 0.06, 0.05, 1.0, 0.02};
    return d;
}

DeviceSpec
makeTx2()
{
    DeviceSpec d;
    d.name = "Jetson TX2";
    d.peakGflops = 665.0;       // 256 Pascal cores @ ~1.3 GHz
    d.memBandwidthGBs = 58.3;
    d.launchOverheadUs = 12.0;
    d.tdpWatts = 15.0;
    d.categoryEfficiency = {0.65, 0.75, 0.06, 0.05, 1.0, 0.02};
    return d;
}

const std::array<DeviceSpec, 4> devices = {makeXeon(), makeRtx(),
                                           makeXavierNx(), makeTx2()};

} // namespace

const DeviceSpec &
xeon4114()
{
    return devices[0];
}

const DeviceSpec &
rtx2080ti()
{
    return devices[1];
}

const DeviceSpec &
xavierNx()
{
    return devices[2];
}

const DeviceSpec &
jetsonTx2()
{
    return devices[3];
}

std::span<const DeviceSpec>
allDevices()
{
    return devices;
}

} // namespace nsbench::sim
