#include "sim/kernels.hh"

#include <algorithm>

#include "util/logging.hh"

namespace nsbench::sim
{

namespace
{

/** Coalesced access granularity: one 64-byte sector per instruction. */
constexpr uint64_t sectorBytes = 64;

/** Trace driver: counts coalesced accesses alongside the hierarchy. */
class TraceRunner
{
  public:
    explicit TraceRunner(const MachineModel &machine)
        : hier_(machine.l1, machine.l2)
    {}

    /** Streams a contiguous byte range as 64B sector accesses. */
    void
    stream(uint64_t base, uint64_t bytes)
    {
        for (uint64_t off = 0; off < bytes; off += sectorBytes) {
            hier_.access(base + off,
                         std::min<uint64_t>(sectorBytes, bytes - off));
            accesses_++;
        }
    }

    /** Forgets counters but keeps cache contents (warm start). */
    void
    warmReset()
    {
        hier_.resetCounters();
        accesses_ = 0;
    }

    uint64_t accesses() const { return accesses_; }
    const CacheHierarchy &hierarchy() const { return hier_; }

  private:
    CacheHierarchy hier_;
    uint64_t accesses_ = 0;
};

/** Folds a finished trace plus FLOP count into the Tab. IV row. */
KernelCounters
deriveCounters(const MachineModel &machine, const std::string &name,
               const TraceRunner &trace, double flops)
{
    KernelCounters out;
    out.name = name;
    out.flops = flops;
    out.memAccesses = trace.accesses();

    const auto &hier = trace.hierarchy();
    double l1_bytes =
        static_cast<double>(trace.accesses()) * sectorBytes;
    double l2_bytes = static_cast<double>(hier.l1().misses()) *
                      static_cast<double>(hier.l1().lineBytes());
    double dram_bytes = static_cast<double>(hier.dramBytes());
    double issue_ops = flops + machine.issueOpsPerAccess *
                                   static_cast<double>(trace.accesses());

    double compute_cycles = flops / machine.flopsPerCycle;
    double issue_cycles = issue_ops / machine.issueSlotsPerCycle;
    double l1_cycles = l1_bytes / machine.l1BytesPerCycle;
    double l2_cycles = l2_bytes / machine.l2BytesPerCycle;
    double dram_cycles = dram_bytes / machine.dramBytesPerCycle;

    out.cycles = std::max({compute_cycles, issue_cycles, l1_cycles,
                           l2_cycles, dram_cycles, 1.0});

    out.aluUtilPct = 100.0 * compute_cycles / out.cycles;
    // "Compute throughput" mirrors Nsight's SM throughput: the
    // busiest SM-side pipe, whether FP, issue or the L1/LSU path.
    out.computeThroughputPct =
        100.0 *
        std::max({compute_cycles, issue_cycles, l1_cycles}) /
        out.cycles;
    out.l1ThroughputPct = 100.0 * l1_cycles / out.cycles;
    out.l2ThroughputPct = 100.0 * l2_cycles / out.cycles;
    out.dramBwUtilPct = 100.0 * dram_cycles / out.cycles;
    out.l1HitRatePct = 100.0 * hier.l1().hitRate();
    out.l2HitRatePct = 100.0 * hier.l2().hitRate();
    return out;
}

} // namespace

KernelCounters
runSgemmKernel(const MachineModel &machine, int64_t m, int64_t n,
               int64_t k, int64_t tile)
{
    util::panicIf(m % tile || n % tile || k % tile,
                  "runSgemmKernel: dimensions must be tile multiples");
    TraceRunner trace(machine);

    auto fbytes = [](int64_t elems) {
        return static_cast<uint64_t>(elems) * 4;
    };
    uint64_t base_a = 0;
    uint64_t base_b = base_a + fbytes(m * k);
    uint64_t base_c = base_b + fbytes(k * n);

    double flops = 0.0;
    for (int64_t it = 0; it < m; it += tile) {
        for (int64_t jt = 0; jt < n; jt += tile) {
            for (int64_t kt = 0; kt < k; kt += tile) {
                // Stage the A and B tiles (each element once).
                for (int64_t i = 0; i < tile; i++) {
                    trace.stream(base_a +
                                     fbytes((it + i) * k + kt),
                                 fbytes(tile));
                }
                for (int64_t r = 0; r < tile; r++) {
                    trace.stream(base_b +
                                     fbytes((kt + r) * n + jt),
                                 fbytes(tile));
                }
                flops += 2.0 * static_cast<double>(tile) *
                         static_cast<double>(tile) *
                         static_cast<double>(tile);
            }
            // Write the C tile once per (it, jt).
            for (int64_t i = 0; i < tile; i++) {
                trace.stream(base_c + fbytes((it + i) * n + jt),
                             fbytes(tile));
            }
        }
    }
    return deriveCounters(machine, "sgemm_nn", trace, flops);
}

KernelCounters
runReluKernel(const MachineModel &machine, int64_t elems)
{
    TraceRunner trace(machine);
    uint64_t bytes = static_cast<uint64_t>(elems) * 4;
    uint64_t base_in = 0;
    uint64_t base_out = bytes;

    // The producing kernel leaves the activation tensor cache-warm:
    // pre-touch both arrays, then measure the second pass.
    trace.stream(base_in, bytes);
    trace.stream(base_out, bytes);
    trace.warmReset();

    double flops = 0.0;
    for (uint64_t off = 0; off < bytes; off += sectorBytes) {
        uint64_t chunk = std::min<uint64_t>(sectorBytes, bytes - off);
        trace.stream(base_in + off, chunk);
        trace.stream(base_out + off, chunk);
        flops += static_cast<double>(chunk) / 4.0;
    }
    return deriveCounters(machine, "relu_nn", trace, flops);
}

KernelCounters
runVsaBundleKernel(const MachineModel &machine, int64_t vectors,
                   int64_t dim)
{
    TraceRunner trace(machine);
    uint64_t vec_bytes = static_cast<uint64_t>(dim) * 4;
    uint64_t base_acc = 0;

    double flops = 0.0;
    for (int64_t v = 0; v < vectors; v++) {
        uint64_t base_v = vec_bytes * static_cast<uint64_t>(v + 1);
        for (uint64_t off = 0; off < vec_bytes; off += sectorBytes) {
            uint64_t chunk =
                std::min<uint64_t>(sectorBytes, vec_bytes - off);
            trace.stream(base_v + off, chunk);   // operand
            trace.stream(base_acc + off, chunk); // accumulator r+w
            trace.stream(base_acc + off, chunk);
            flops += static_cast<double>(chunk) / 4.0;
        }
    }
    return deriveCounters(machine, "vectorized_elem", trace, flops);
}

KernelCounters
runGatherKernel(const MachineModel &machine, int64_t lookups,
                int64_t table_rows, int64_t row_floats)
{
    TraceRunner trace(machine);
    uint64_t row_bytes = static_cast<uint64_t>(row_floats) * 4;
    uint64_t table_bytes =
        static_cast<uint64_t>(table_rows) * row_bytes;
    uint64_t base_acc = table_bytes;

    double flops = 0.0;
    uint64_t state = 0x9e3779b97f4a7c15ull; // deterministic LCG walk
    for (int64_t l = 0; l < lookups; l++) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t row = (state >> 17) %
                       static_cast<uint64_t>(table_rows);
        trace.stream(row * row_bytes, row_bytes);
        trace.stream(base_acc, row_bytes); // small resident accumulator
        flops += static_cast<double>(row_floats);
    }
    return deriveCounters(machine, "elementwise", trace, flops);
}

} // namespace nsbench::sim
