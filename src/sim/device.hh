/**
 * @file
 * Analytical device models for the platforms the paper profiles on.
 *
 * We do not have the paper's silicon; instead each device is a
 * roofline-style analytical model (peak FP32 throughput, memory
 * bandwidth, per-op launch overhead, and a per-operator-category
 * efficiency factor reflecting how well that category maps onto the
 * device). Projecting a measured op stream through these models
 * reproduces the *shape* of the paper's cross-device results
 * (Fig. 2b): edge SoCs are ~20x slower, and symbolic phases stay
 * dominant everywhere.
 */

#ifndef NSBENCH_SIM_DEVICE_HH
#define NSBENCH_SIM_DEVICE_HH

#include <array>
#include <span>
#include <string>

#include "core/taxonomy.hh"

namespace nsbench::sim
{

/** Analytical model of one execution platform. */
struct DeviceSpec
{
    std::string name;          ///< e.g. "RTX 2080 Ti".
    double peakGflops = 0.0;   ///< Peak FP32 throughput, GFLOP/s.
    double memBandwidthGBs = 0.0; ///< DRAM bandwidth, GB/s.
    double launchOverheadUs = 0.0; ///< Fixed per-op dispatch cost.
    double tdpWatts = 0.0;     ///< Board/module power budget.

    /**
     * Fraction of peak compute each operator category achieves. Dense
     * MatMul/Conv approach peak on GPUs; vector/element-wise and
     * "other" symbolic operators achieve a small fraction (the <10%
     * ALU utilization of the paper's Tab. IV).
     */
    std::array<double, core::numOpCategories> categoryEfficiency{};

    /** Efficiency lookup for one category. */
    double
    efficiency(core::OpCategory category) const
    {
        return categoryEfficiency[static_cast<size_t>(category)];
    }

    /** Ridge point of the roofline, FLOP/byte. */
    double
    ridgeIntensity() const
    {
        return peakGflops / memBandwidthGBs;
    }
};

/** Intel Xeon Silver 4114 host CPU model. */
const DeviceSpec &xeon4114();

/** Nvidia RTX 2080 Ti discrete GPU model (250 W). */
const DeviceSpec &rtx2080ti();

/** Nvidia Jetson Xavier NX edge SoC model (20 W). */
const DeviceSpec &xavierNx();

/** Nvidia Jetson TX2 edge SoC model (15 W). */
const DeviceSpec &jetsonTx2();

/** All modeled devices, host first. */
std::span<const DeviceSpec> allDevices();

} // namespace nsbench::sim

#endif // NSBENCH_SIM_DEVICE_HH
