/**
 * @file
 * Representative-kernel traces and the machine utilization model
 * behind the paper's Tab. IV.
 *
 * Four kernels bracket the NVSA workload the paper instruments with
 * Nsight Compute: a tiled SGEMM and a streaming ReLU (the neural
 * kernels), and a multi-operand vectorized element-wise kernel plus a
 * gather-style element-wise kernel (the symbolic kernels). Each kernel
 * replays its coalesced access trace through the cache hierarchy; a
 * simple issue/bandwidth cycle model then derives the utilization
 * percentages the paper reports.
 */

#ifndef NSBENCH_SIM_KERNELS_HH
#define NSBENCH_SIM_KERNELS_HH

#include <string>

#include "sim/cache.hh"

namespace nsbench::sim
{

/**
 * GPU-like cycle model. Cycles are the max over the compute, issue,
 * L1, L2 and DRAM demands; utilizations are each demand relative to
 * that bound.
 */
struct MachineModel
{
    double flopsPerCycle = 4096;     ///< FP ALU peak per cycle.
    double issueSlotsPerCycle = 6144; ///< Total instruction issue.
    double l1BytesPerCycle = 8192;   ///< Aggregate L1 bandwidth.
    double l2BytesPerCycle = 2048;   ///< Aggregate L2 bandwidth.
    double dramBytesPerCycle = 400;  ///< DRAM bandwidth.
    /** Integer/address instructions issued per memory access. */
    double issueOpsPerAccess = 4.0;
    CacheConfig l1{64 * 1024, 128, 4};
    CacheConfig l2{4 * 1024 * 1024, 128, 16};

    /** A Turing-class discrete GPU instance. */
    static MachineModel gpuLike() { return MachineModel{}; }
};

/** Derived Tab. IV row for one kernel. */
struct KernelCounters
{
    std::string name;
    double flops = 0.0;          ///< FP operations executed.
    uint64_t memAccesses = 0;    ///< Coalesced memory instructions.
    double cycles = 0.0;         ///< Modeled execution cycles.

    double computeThroughputPct = 0.0; ///< Issue-slot occupancy.
    double aluUtilPct = 0.0;           ///< FP ALU occupancy.
    double l1ThroughputPct = 0.0;      ///< L1 bandwidth occupancy.
    double l2ThroughputPct = 0.0;      ///< L2 bandwidth occupancy.
    double l1HitRatePct = 0.0;
    double l2HitRatePct = 0.0;
    double dramBwUtilPct = 0.0;        ///< DRAM bandwidth occupancy.
};

/**
 * Tiled dense SGEMM (the "sgemm_nn" neural kernel): C[M,N] += A[M,K]
 * B[K,N] with square tiles of @p tile elements.
 */
KernelCounters runSgemmKernel(const MachineModel &machine, int64_t m,
                              int64_t n, int64_t k, int64_t tile = 32);

/**
 * Streaming ReLU over @p elems floats ("relu_nn"), reading an
 * activation tensor the producing kernel left L2-warm and writing the
 * result back.
 */
KernelCounters runReluKernel(const MachineModel &machine,
                             int64_t elems);

/**
 * Multi-operand vectorized element-wise kernel ("vectorized_elem"):
 * bundling @p vectors hypervectors of @p dim floats into an
 * accumulator, streaming far more data than fits in L2.
 */
KernelCounters runVsaBundleKernel(const MachineModel &machine,
                                  int64_t vectors, int64_t dim);

/**
 * Gather-style element-wise kernel ("elementwise"): @p lookups
 * pseudo-random row reads from a @p table_rows x @p row_floats
 * codebook combined element-wise into an accumulator.
 */
KernelCounters runGatherKernel(const MachineModel &machine,
                               int64_t lookups, int64_t table_rows,
                               int64_t row_floats);

} // namespace nsbench::sim

#endif // NSBENCH_SIM_KERNELS_HH
