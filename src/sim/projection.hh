/**
 * @file
 * Cross-device runtime projection (Fig. 2b of the paper).
 *
 * Takes the op stream measured on the host and estimates its runtime
 * on each modeled device: every aggregated operator pays the larger of
 * its compute time (FLOPs over category-derated peak) and its memory
 * time (bytes over bandwidth), plus a per-invocation dispatch
 * overhead. The same stream projected onto TX2 / Xavier NX / RTX
 * reproduces the paper's ordering and the stability of the symbolic
 * share across devices.
 */

#ifndef NSBENCH_SIM_PROJECTION_HH
#define NSBENCH_SIM_PROJECTION_HH

#include <string>
#include <vector>

#include "core/profiler.hh"
#include "sim/device.hh"

namespace nsbench::sim
{

/** Projected runtime of one phase on one device. */
struct PhaseProjection
{
    core::Phase phase = core::Phase::Untagged;
    double seconds = 0.0;       ///< Projected phase runtime.
    double computeSeconds = 0.0; ///< Compute-limited portion.
    double memorySeconds = 0.0;  ///< Bandwidth-limited portion.
    double overheadSeconds = 0.0; ///< Dispatch-overhead portion.
};

/** Projected end-to-end runtime of a workload on one device. */
struct DeviceProjection
{
    std::string device;         ///< Device name.
    double totalSeconds = 0.0;  ///< Sum over phases.
    std::vector<PhaseProjection> phases;

    /** Symbolic share of the projected runtime. */
    double symbolicFraction() const;

    /** Neural share of the projected runtime. */
    double neuralFraction() const;
};

/**
 * Projects one aggregated operator onto a device.
 *
 * @return Estimated seconds for all invocations of the operator.
 */
double projectOp(const DeviceSpec &device, core::OpCategory category,
                 const core::OpStats &stats);

/** Projects a full profiled run onto a device. */
DeviceProjection projectProfile(const DeviceSpec &device,
                                const core::Profiler &profiler);

} // namespace nsbench::sim

#endif // NSBENCH_SIM_PROJECTION_HH
