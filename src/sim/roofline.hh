/**
 * @file
 * Roofline analysis (Fig. 3c of the paper).
 */

#ifndef NSBENCH_SIM_ROOFLINE_HH
#define NSBENCH_SIM_ROOFLINE_HH

#include <string>
#include <vector>

#include "core/profiler.hh"
#include "sim/device.hh"

namespace nsbench::sim
{

/** One point on the roofline plot. */
struct RooflinePoint
{
    std::string label;          ///< e.g. "NVSA/symbolic".
    double intensity = 0.0;     ///< FLOP/byte.
    double attainableGflops = 0.0; ///< min(peak, bw * intensity).
    bool memoryBound = false;   ///< Left of the ridge point.
};

/**
 * Attainable FP32 throughput at a given operational intensity under
 * the naive (efficiency-free) roofline.
 */
double attainableGflops(const DeviceSpec &device, double intensity);

/** True when the intensity sits left of the device's ridge point. */
bool isMemoryBound(const DeviceSpec &device, double intensity);

/**
 * Places an aggregated op-stats slice on the device roofline.
 */
RooflinePoint placeOnRoofline(const DeviceSpec &device,
                              const std::string &label,
                              const core::OpStats &stats);

/**
 * Builds the Fig. 3c point set from a profiled run: one point per
 * (phase x category) slice with nonzero traffic, plus one per phase
 * aggregate.
 */
std::vector<RooflinePoint> rooflineFromProfile(
    const DeviceSpec &device, const core::Profiler &profiler,
    const std::string &workload_name);

} // namespace nsbench::sim

#endif // NSBENCH_SIM_ROOFLINE_HH
