/**
 * @file
 * Set-associative cache simulator.
 *
 * Stands in for the Nsight Compute counters behind the paper's
 * Tab. IV: representative kernels emit address traces into a two-level
 * hierarchy and the resulting hit rates / DRAM traffic feed the
 * hardware-inefficiency analysis.
 */

#ifndef NSBENCH_SIM_CACHE_HH
#define NSBENCH_SIM_CACHE_HH

#include <cstdint>
#include <vector>

namespace nsbench::sim
{

/** Geometry of one cache level. */
struct CacheConfig
{
    uint64_t sizeBytes = 0;   ///< Total capacity.
    uint64_t lineBytes = 64;  ///< Line size (power of two).
    uint64_t associativity = 4; ///< Ways per set.
};

/**
 * One LRU set-associative cache level.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Looks up one cache line by address; allocates on miss.
     * @return True on hit.
     */
    bool accessLine(uint64_t addr);

    /** Line size in bytes. */
    uint64_t lineBytes() const { return config_.lineBytes; }

    /** Number of sets. */
    uint64_t sets() const { return sets_; }

    /** Hits so far. */
    uint64_t hits() const { return hits_; }

    /** Misses so far. */
    uint64_t misses() const { return misses_; }

    /** Hit fraction in [0,1]; 0 when no accesses. */
    double hitRate() const;

    /** Clears contents and counters. */
    void reset();

    /** Clears counters only, keeping cache contents warm. */
    void resetCounters();

  private:
    struct Way
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    CacheConfig config_;
    uint64_t sets_;
    std::vector<Way> ways_; ///< sets_ x associativity, row-major.
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/**
 * An L1 -> L2 -> DRAM hierarchy. Accesses are split into lines; a
 * line missing in L1 probes L2; a line missing in L2 counts as DRAM
 * traffic.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheConfig &l1, const CacheConfig &l2);

    /** Performs a read/write of @p bytes at @p addr. */
    void access(uint64_t addr, uint64_t bytes);

    /** The L1 level. */
    const Cache &l1() const { return l1_; }

    /** The L2 level. */
    const Cache &l2() const { return l2_; }

    /** Bytes that had to come from DRAM. */
    uint64_t dramBytes() const { return dramBytes_; }

    /** Total bytes requested by the program. */
    uint64_t requestedBytes() const { return requestedBytes_; }

    /** Total L1 line accesses. */
    uint64_t l1Accesses() const { return l1_.hits() + l1_.misses(); }

    /** Clears both levels and the traffic counters. */
    void reset();

    /** Clears counters only, keeping both levels warm. */
    void resetCounters();

  private:
    Cache l1_;
    Cache l2_;
    uint64_t dramBytes_ = 0;
    uint64_t requestedBytes_ = 0;
};

} // namespace nsbench::sim

#endif // NSBENCH_SIM_CACHE_HH
