#include "sim/cache.hh"

#include "util/logging.hh"

namespace nsbench::sim
{

namespace
{

bool
isPow2(uint64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &config) : config_(config)
{
    util::panicIf(!isPow2(config_.lineBytes),
                  "Cache: line size must be a power of two");
    util::panicIf(config_.associativity == 0,
                  "Cache: associativity must be positive");
    uint64_t lines = config_.sizeBytes / config_.lineBytes;
    util::panicIf(lines == 0 || lines % config_.associativity != 0,
                  "Cache: size must be a multiple of line*assoc");
    sets_ = lines / config_.associativity;
    util::panicIf(!isPow2(sets_),
                  "Cache: set count must be a power of two");
    ways_.resize(sets_ * config_.associativity);
}

bool
Cache::accessLine(uint64_t addr)
{
    clock_++;
    uint64_t line = addr / config_.lineBytes;
    uint64_t set = line & (sets_ - 1);
    uint64_t tag = line / sets_;
    Way *base = &ways_[set * config_.associativity];

    Way *victim = base;
    for (uint64_t w = 0; w < config_.associativity; w++) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = clock_;
            hits_++;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }

    misses_++;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
    return false;
}

double
Cache::hitRate() const
{
    uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) /
                       static_cast<double>(total)
                 : 0.0;
}

void
Cache::resetCounters()
{
    hits_ = 0;
    misses_ = 0;
}

void
Cache::reset()
{
    for (auto &way : ways_)
        way = Way{};
    clock_ = 0;
    hits_ = 0;
    misses_ = 0;
}

CacheHierarchy::CacheHierarchy(const CacheConfig &l1,
                               const CacheConfig &l2)
    : l1_(l1), l2_(l2)
{
    util::panicIf(l1.lineBytes != l2.lineBytes,
                  "CacheHierarchy: mismatched line sizes");
}

void
CacheHierarchy::access(uint64_t addr, uint64_t bytes)
{
    util::panicIf(bytes == 0, "CacheHierarchy: zero-byte access");
    requestedBytes_ += bytes;
    uint64_t line_bytes = l1_.lineBytes();
    uint64_t first = addr / line_bytes;
    uint64_t last = (addr + bytes - 1) / line_bytes;
    for (uint64_t line = first; line <= last; line++) {
        uint64_t line_addr = line * line_bytes;
        if (!l1_.accessLine(line_addr)) {
            if (!l2_.accessLine(line_addr))
                dramBytes_ += line_bytes;
        }
    }
}

void
CacheHierarchy::resetCounters()
{
    l1_.resetCounters();
    l2_.resetCounters();
    dramBytes_ = 0;
    requestedBytes_ = 0;
}

void
CacheHierarchy::reset()
{
    l1_.reset();
    l2_.reset();
    dramBytes_ = 0;
    requestedBytes_ = 0;
}

} // namespace nsbench::sim
