/**
 * @file
 * Heterogeneous scheduling simulation (the paper's Recommendation 5).
 *
 * The paper recommends "adaptive workload scheduling with parallelism
 * processing of neural and symbolic components" to fight the
 * underutilization caused by the strictly sequential pipelines of
 * Fig. 4. This module simulates exactly that: stage DAGs scheduled
 * onto a machine with separate neural and symbolic execution units,
 * and — the realistic win — pipelining across consecutive inference
 * episodes, so the neural unit perceives episode i+1 while the
 * symbolic unit reasons about episode i.
 */

#ifndef NSBENCH_SIM_SCHEDULE_HH
#define NSBENCH_SIM_SCHEDULE_HH

#include <vector>

#include "core/opgraph.hh"

namespace nsbench::sim
{

/** The heterogeneous machine. */
struct ScheduleConfig
{
    int neuralUnits = 1;   ///< Units that run neural stages.
    int symbolicUnits = 1; ///< Units that run symbolic stages.
};

/** One scheduled stage instance. */
struct ScheduledStage
{
    core::NodeId node = 0; ///< Node in the (replicated) graph.
    int episode = 0;       ///< Which pipelined episode it belongs to.
    int unit = 0;          ///< Unit index within its kind.
    core::Phase kind = core::Phase::Untagged; ///< Unit kind used.
    double start = 0.0;
    double end = 0.0;
};

/** Outcome of a scheduling run. */
struct ScheduleResult
{
    std::vector<ScheduledStage> stages;
    double makespan = 0.0;          ///< End of the last stage.
    double sequentialSeconds = 0.0; ///< One-unit-at-a-time baseline.

    /** Throughput speedup over fully sequential execution. */
    double
    speedup() const
    {
        return makespan > 0.0 ? sequentialSeconds / makespan : 1.0;
    }

    /** Busy fraction of the named unit kind across the makespan. */
    double utilization(core::Phase kind, int units) const;
};

/**
 * List-schedules @p episodes independent repetitions of the stage DAG
 * onto the machine. Neural stages run on neural units, symbolic
 * stages on symbolic units, untagged stages on whichever unit kind
 * frees up first. Dependencies within an episode are honoured; the
 * episodes themselves are independent, which is where pipelining
 * overlap comes from.
 */
ScheduleResult pipelineSchedule(const core::OpGraph &graph,
                                const ScheduleConfig &config,
                                int episodes);

} // namespace nsbench::sim

#endif // NSBENCH_SIM_SCHEDULE_HH
