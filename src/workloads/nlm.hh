/**
 * @file
 * The Neural Logic Machine (NLM) workload.
 *
 * NLM holds one predicate-tensor group per arity (unary [N,C], binary
 * [N,N,C], ternary [N,N,N,C]) and alternates two kinds of work: the
 * symbolic wiring — expand/permute/reduce operations that realize
 * quantifiers and argument reordering (the "permutation" operators the
 * paper attributes to NLM) — and the neural work, a per-position
 * linear+sigmoid "MLP" over the wired channels. The family-tree
 * program is expressed by constructed MLP weights that implement the
 * boolean gates NLM learns in training (trained stand-in; see
 * DESIGN.md): layer 1 derives grandparent and sibling, layer 2 derives
 * uncle/aunt.
 */

#ifndef NSBENCH_WORKLOADS_NLM_HH
#define NSBENCH_WORKLOADS_NLM_HH

#include <memory>
#include <vector>

#include "core/workload.hh"
#include "data/familytree.hh"
#include "tensor/tensor.hh"

namespace nsbench::workloads
{

/** NLM configuration knobs. */
struct NlmConfig
{
    int generations = 3;        ///< Family-graph depth.
    int peoplePerGeneration = 8;
    int episodes = 3;           ///< Graphs evaluated per run.
};

/**
 * One family graph's base predicate tensors — the unary [N,1] and
 * parent-relation binary [N,N,1] groups the NLM program starts
 * from. Pure in (config, model seed, episode index): the graph
 * sampler consumes a deterministic RNG stream, so graph i's tensors
 * are reproducible bit-for-bit. The conversion is uninstrumented, so
 * memoizing it leaves the profiled operator stream untouched; the
 * target tensor stays per-run (it is consumed once, in scoring).
 */
struct NlmBasePredicates
{
    tensor::Tensor unary;
    tensor::Tensor binary;

    /** Resident bytes of both tensors. */
    uint64_t bytes() const;
};

/**
 * End-to-end NLM relational reasoning on family graphs.
 */
class NlmWorkload : public core::Workload
{
  public:
    NlmWorkload() = default;
    explicit NlmWorkload(const NlmConfig &config) : config_(config) {}

    std::string name() const override { return "NLM"; }
    core::Paradigm
    paradigm() const override
    {
        return core::Paradigm::NeuroBracketSymbolic;
    }
    std::string
    taskDescription() const override
    {
        return "family-graph relational reasoning "
               "(grandparent/sibling/uncle)";
    }

    void setUp(uint64_t seed) override;
    double run() override;
    /** run() re-evaluates the graphs built at setUp(); nothing to reseed. */
    void reseedEpisodes(uint64_t) override {}
    bool seedSensitive() const override { return false; }
    /**
     * Two stages, one per NLM layer. Each layer mixes symbolic
     * wiring with neural MLPs, so the stage cut is by layer rather
     * than by phase; layer 2's ternary group carries twice layer 1's
     * channels, which is what the pipeline overlaps.
     */
    int stageCount() const override { return 2; }
    core::StageSpec stageSpec(int stage) const override;
    void runStage(int stage, core::EpisodeState &state) override;
    core::OpGraph opGraph() const override;
    uint64_t storageBytes() const override;

    const NlmConfig &config() const { return config_; }

  private:
    NlmConfig config_;
    uint64_t seed_ = 0;
    std::vector<data::FamilyGraph> graphs_;
    /** Shared immutable base predicates per graph (cache-served). */
    std::vector<std::shared_ptr<const NlmBasePredicates>> bases_;

    /** One NLM layer's constructed MLP parameters. */
    struct LayerWeights
    {
        tensor::Tensor ternaryW, ternaryB; ///< Ternary-group MLP.
        tensor::Tensor binaryW, binaryB;   ///< Binary-group MLP.
    };
    std::vector<LayerWeights> layers_;

    /** Pipeline handoff: each graph's binary group after layer 1. */
    struct EpisodeScratch
    {
        std::vector<tensor::Tensor> binaries;
    };

    /** Base binary channels: parent plus the equality predicate. */
    tensor::Tensor baseBinary(const NlmBasePredicates &base);

    /** One wiring+MLP layer over the current binary group. */
    tensor::Tensor evaluateLayer(const tensor::Tensor &unary,
                                 const tensor::Tensor &binary,
                                 const LayerWeights &layer);

    /** Mean IoU of the derived relations against the target. */
    double scoreGraph(const data::FamilyGraph &graph,
                      const tensor::Tensor &binary);

    /** Evaluates the two-layer program on one graph; returns IoU. */
    double evaluateGraph(const data::FamilyGraph &graph,
                         const NlmBasePredicates &base);
};

} // namespace nsbench::workloads

#endif // NSBENCH_WORKLOADS_NLM_HH
