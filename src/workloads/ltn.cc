#include "workloads/ltn.hh"

#include <cmath>

#include "cache/precompute.hh"
#include "core/profiler.hh"
#include "logic/fuzzy.hh"
#include "tensor/fused.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace nsbench::workloads
{

using core::OpCategory;
using core::OpGraph;
using core::Phase;
using core::PhaseScope;
using core::ScopedOp;
using tensor::Tensor;

namespace
{

/** Quantifier aggregation wrapped as an instrumented symbolic op. */
float
aggregateForAll(std::span<const float> truths)
{
    ScopedOp op("quantifier_aggregate", OpCategory::Other);
    op.setFlops(static_cast<double>(truths.size()) * 4.0);
    op.setBytesRead(static_cast<double>(truths.size()) * 4.0);
    op.setBytesWritten(4.0);
    return logic::pMeanError(truths, 4.0f);
}

float
aggregateExists(std::span<const float> truths)
{
    ScopedOp op("quantifier_aggregate", OpCategory::Other);
    op.setFlops(static_cast<double>(truths.size()) * 4.0);
    op.setBytesRead(static_cast<double>(truths.size()) * 4.0);
    op.setBytesWritten(4.0);
    return logic::pMean(truths, 4.0f);
}

/**
 * Fused Reichenbach implication out = (1 - a) + a * b. One pass over
 * the operands; the kernel sequence (mul, negate, addScalar, add)
 * is bit-identical to the former add(sub(ones, a), mul(a, b)) chain
 * because IEEE guarantees 1 - a == 1 + (-a) exactly. `out` may be
 * `a` (the product is taken into scratch before `a` is overwritten).
 */
void
reichenbachImplies(Tensor &out, const Tensor &a, const Tensor &b)
{
    tensor::fusedMap(
        "reichenbach_implies", out, a, b, 3.0,
        [](const float *pa, const float *pb, float *po,
           float *scratch, int64_t n) {
            util::simd::mul(pa, pb, scratch, n);  // a * b
            util::simd::negate(pa, po, n);
            util::simd::addScalar(po, 1.0f, po, n); // 1 - a
            util::simd::add(po, scratch, po, n);
        });
}

/**
 * Samples the dataset and constructs the predicate-MLP weights from
 * its class statistics, all off one RNG stream seeded with the model
 * seed. Pure in (config, seed).
 */
std::shared_ptr<const LtnModel>
buildLtnModel(const LtnConfig &config, uint64_t seed)
{
    auto model = std::make_shared<LtnModel>();
    util::Rng rng(seed);
    model->dataset = data::makeRelationalDataset(
        config.people, config.featureDim, config.friendsPerPerson,
        rng);
    model->friends = model->dataset.friendMatrix();

    // Construct predicate-MLP weights from the class statistics: the
    // first hidden unit carries the discriminant direction, the rest
    // are low-amplitude random features (trained stand-in).
    Tensor direction({config.featureDim});
    int smokers = 0;
    for (int i = 0; i < config.people; i++) {
        float sign = model->dataset.smokes[static_cast<size_t>(i)]
                         ? 1.0f
                         : -1.0f;
        if (sign > 0)
            smokers++;
        for (int f = 0; f < config.featureDim; f++)
            direction(f) += sign * model->dataset.features(i, f);
    }
    float norm = 0.0f;
    for (int f = 0; f < config.featureDim; f++)
        norm += direction(f) * direction(f);
    norm = std::sqrt(norm) + 1e-9f;

    auto make_predicate = [&](float hidden_gain, float out_gain,
                              Tensor &w1, Tensor &w2, Tensor &w3) {
        w1 = Tensor::randn({config.hidden, config.featureDim}, rng,
                           0.0f, 0.05f);
        for (int f = 0; f < config.featureDim; f++)
            w1(0, f) = hidden_gain * direction(f) / norm;
        // The second hidden layer forwards the discriminant unit.
        w2 = Tensor::randn({config.hidden, config.hidden}, rng, 0.0f,
                           0.02f);
        w2(0, 0) = 1.5f;
        w3 = Tensor::randn({1, config.hidden}, rng, 0.0f, 0.02f);
        w3(0, 0) = out_gain;
    };
    make_predicate(2.0f, 3.0f, model->smokesW1, model->smokesW2,
                   model->smokesW3);
    make_predicate(2.0f, 2.0f, model->cancerW1, model->cancerW2,
                   model->cancerW3);
    return model;
}

} // namespace

uint64_t
LtnModel::bytes() const
{
    uint64_t total = 0;
    for (const Tensor *t :
         {&dataset.features, &friends, &smokesW1, &smokesW2,
          &smokesW3, &cancerW1, &cancerW2, &cancerW3}) {
        if (!t->empty())
            total += t->bytes();
    }
    return total;
}

void
LtnWorkload::setUp(uint64_t seed)
{
    // The dataset and weights share one RNG stream, so the bundle is
    // memoized whole, keyed on every knob the stream touches.
    LtnConfig config = config_;
    model_ =
        cache::PrecomputeCache::global()
            .getOrBuild<LtnModel>(
                "ltn/model/p" + std::to_string(config.people) +
                    "/f" + std::to_string(config.featureDim) + "/h" +
                    std::to_string(config.hidden) + "/k" +
                    std::to_string(config.friendsPerPerson) + "/s" +
                    std::to_string(seed),
                [&config, seed]() {
                    cache::Sized<LtnModel> out;
                    out.value = buildLtnModel(config, seed);
                    out.bytes = out.value->bytes();
                    return out;
                })
            .value;
}

uint64_t
LtnWorkload::storageBytes() const
{
    if (!model_)
        return 0;
    uint64_t bytes = 0;
    for (const Tensor *t :
         {&model_->smokesW1, &model_->smokesW2, &model_->smokesW3,
          &model_->cancerW1, &model_->cancerW2, &model_->cancerW3,
          &model_->friends}) {
        if (!t->empty())
            bytes += t->bytes();
    }
    return bytes;
}

LtnWorkload::QueryGrounding
LtnWorkload::groundQuery()
{
    // ---- Neural: ground the predicates over the population.
    QueryGrounding grounding;
    {
        PhaseScope neural(Phase::Neural, "ltn/grounding_eval");
        Tensor x =
            tensor::transfer(model_->dataset.features, "h2d");
        Tensor hs = tensor::tanhOp(
            tensor::linear(x, model_->smokesW1, Tensor()));
        Tensor hs2 = tensor::tanhOp(
            tensor::linear(hs, model_->smokesW2, Tensor()));
        grounding.smokes = tensor::sigmoid(
            tensor::linear(hs2, model_->smokesW3, Tensor()));
        Tensor hc = tensor::tanhOp(
            tensor::linear(x, model_->cancerW1, Tensor()));
        Tensor hc2 = tensor::tanhOp(
            tensor::linear(hc, model_->cancerW2, Tensor()));
        grounding.cancer = tensor::sigmoid(
            tensor::linear(hc2, model_->cancerW3, Tensor()));
    }
    return grounding;
}

double
LtnWorkload::evalAxioms(const QueryGrounding &grounding)
{
    int64_t n = config_.people;
    const Tensor &smokes = grounding.smokes;
    const Tensor &cancer = grounding.cancer;

    // ---- Symbolic: evaluate the fuzzy theory.
    std::vector<float> axiom_truths;
    {
        PhaseScope symbolic(Phase::Symbolic, "ltn/axiom_eval");
        Tensor s = smokes.reshaped({n});
        Tensor c = cancer.reshaped({n});

        // Axiom 1: forall x, Smokes(x) -> Cancer(x) under the
        // Reichenbach implication 1 - s + s*c. `s` is read again
        // by axioms 3 and 5, so the result needs its own buffer.
        Tensor impl1 = Tensor::uninitialized({n});
        reichenbachImplies(impl1, s, c);
        axiom_truths.push_back(
            aggregateForAll(impl1.data()));

        // Axiom 2: forall x,y, Friends(x,y) ^ Smokes(x) ->
        // Smokes(y), evaluated over all pairs. The [n, n]
        // antecedent is dead after the implication, so the fused
        // implication overwrites it in place.
        Tensor ones_row = Tensor::ones({1, n});
        Tensor sx = tensor::matmul(smokes, ones_row); // [n, n]
        Tensor sy = tensor::transpose2d(sx);
        tensor::mulInPlace(sx, model_->friends);
        Tensor &antecedent = sx;
        reichenbachImplies(antecedent, antecedent, sy);
        Tensor &impl2 = antecedent;
        Tensor relevant =
            tensor::maskedSelect(impl2, model_->friends);
        if (relevant.numel() > 0) {
            axiom_truths.push_back(
                aggregateForAll(relevant.data()));
        }

        // Axiom 3: exists x, Smokes(x); Axiom 4: exists x,
        // Cancer(x).
        axiom_truths.push_back(aggregateExists(s.data()));
        axiom_truths.push_back(aggregateExists(c.data()));

        // Axiom 5: forall x, not (Smokes(x) ^ not Smokes(x)) —
        // a consistency check, true by fuzzy product semantics
        // only to degree 1 - s(1-s). Fused one-pass evaluation;
        // 1 - x == 1 + (-x) keeps it bit-identical to the former
        // sub(ones, mul(s, sub(ones, s))) chain.
        Tensor consistent = Tensor::uninitialized({n});
        tensor::fusedMapUnary(
            "fuzzy_consistency", consistent, s, 3.0,
            [](const float *pa, float *po, float *scratch,
               int64_t count) {
                util::simd::negate(pa, scratch, count);
                util::simd::addScalar(scratch, 1.0f, scratch,
                                      count);          // 1 - s
                util::simd::mul(pa, scratch, scratch,
                                count);                // s(1-s)
                util::simd::negate(scratch, po, count);
                util::simd::addScalar(po, 1.0f, po, count);
            });
        axiom_truths.push_back(
            aggregateForAll(consistent.data()));
    }

    double sat = 0.0;
    for (float t : axiom_truths)
        sat += t;
    return sat / static_cast<double>(axiom_truths.size());
}

double
LtnWorkload::run()
{
    util::panicIf(!model_, "LTN: setUp() not called");
    double satisfaction_sum = 0.0;
    for (int q = 0; q < config_.queries; q++) {
        QueryGrounding grounding = groundQuery();
        satisfaction_sum += evalAxioms(grounding);
    }
    return satisfaction_sum / static_cast<double>(config_.queries);
}

core::StageSpec
LtnWorkload::stageSpec(int stage) const
{
    return stage == 0
               ? core::StageSpec{"ground", Phase::Neural}
               : core::StageSpec{"axioms", Phase::Symbolic};
}

void
LtnWorkload::runStage(int stage, core::EpisodeState &state)
{
    // LTN is seed-insensitive and run() consumes no RNG: both stages
    // are pure in the immutable model bundle, so any cross-episode
    // interleaving yields the serial scores.
    if (stage == 0) {
        util::panicIf(!model_, "LTN: setUp() not called");
        auto scratch = std::make_shared<EpisodeScratch>();
        scratch->queries.reserve(
            static_cast<size_t>(config_.queries));
        for (int q = 0; q < config_.queries; q++)
            scratch->queries.push_back(groundQuery());
        state.scratch = std::move(scratch);
        return;
    }
    auto scratch =
        std::static_pointer_cast<EpisodeScratch>(state.scratch);
    double satisfaction_sum = 0.0;
    for (const QueryGrounding &grounding : scratch->queries)
        satisfaction_sum += evalAxioms(grounding);
    state.scratch.reset();
    state.score =
        satisfaction_sum / static_cast<double>(config_.queries);
}

OpGraph
LtnWorkload::opGraph() const
{
    OpGraph g;
    auto data_in = g.addNode("features+relations", Phase::Untagged);
    auto ground = g.addNode("ltn/grounding_eval", Phase::Neural);
    auto axioms = g.addNode("ltn/axiom_eval", Phase::Symbolic);
    auto sat = g.addNode("theory_satisfaction", Phase::Untagged);
    g.addEdge(data_in, ground);
    g.addEdge(ground, axioms);
    g.addEdge(axioms, sat);
    return g;
}


} // namespace nsbench::workloads
