/**
 * @file
 * The Neuro-Vector-Symbolic Architecture (NVSA) workload.
 *
 * Neural frontend: the shared RAVEN perception ConvNet producing
 * per-attribute PMFs. Symbolic backend: PMFs map into a holographic
 * vector space built from fractional-power (circular-convolution
 * power) atoms, rule detection and execution become algebraic
 * operations on those hypervectors — binding via circular
 * convolution, bundling, permutation, cleanup — replacing PrAE's
 * exhaustive probability sums. This is the workload whose symbolic
 * share dominates end-to-end runtime in the paper (92.1% on the RTX
 * 2080 Ti) and whose PMF<->VSA transforms exhibit the Fig. 5
 * sparsity.
 */

#ifndef NSBENCH_WORKLOADS_NVSA_HH
#define NSBENCH_WORKLOADS_NVSA_HH

#include <array>
#include <memory>
#include <vector>

#include "core/workload.hh"
#include "data/raven.hh"
#include "vsa/codebook.hh"
#include "vsa/quantized.hh"
#include "workloads/perception.hh"

namespace nsbench::workloads
{

/** NVSA configuration knobs. */
struct NvsaConfig
{
    int grid = 2;           ///< RPM panel grid size (Fig. 2c axis).
    int64_t hvDim = 2048;   ///< Hypervector dimension (power of two).
    int episodes = 3;       ///< Puzzles solved per profiled run.
    /** Store the combination codebook at INT8 (Recommendation 3). */
    bool quantizedComboBook = false;
};

/**
 * The seed-invariant symbolic model state of one NVSA instance: the
 * per-attribute fractional-power codebooks, their convolution bases,
 * and the (type x size x color) combination codebook. Pure in
 * (config, model seed) — the codebook RNG stream is independent of
 * the puzzle and perception streams — so one bundle is shareable
 * read-only across replicas and runs via the precompute cache.
 */
struct NvsaCodebooks
{
    /** One fractional-power codebook per attribute. */
    std::vector<std::unique_ptr<vsa::Codebook>> attributeBooks;
    /** Convolution base per attribute. */
    std::vector<tensor::Tensor> bases;
    /** Bound-product codebook over (type,size,color) combinations. */
    std::unique_ptr<vsa::Codebook> comboBook;
    /** Optional INT8 mirror of the combination codebook. */
    std::unique_ptr<vsa::QuantizedCodebook> quantizedCombo;

    /** Resident bytes of every codebook and base. */
    uint64_t bytes() const;
};

/**
 * End-to-end NVSA: perception -> PMF-to-VSA -> algebraic rule
 * detection -> rule execution -> VSA-to-PMF -> answer selection.
 */
class NvsaWorkload : public core::Workload
{
  public:
    NvsaWorkload() = default;
    explicit NvsaWorkload(const NvsaConfig &config) : config_(config) {}

    std::string name() const override { return "NVSA"; }
    core::Paradigm
    paradigm() const override
    {
        return core::Paradigm::NeuroPipeSymbolic;
    }
    std::string
    taskDescription() const override
    {
        return "Raven's Progressive Matrices abstract reasoning";
    }

    void setUp(uint64_t seed) override;
    double run() override;
    /** Resets the puzzle generator only; codebooks and weights stay. */
    void reseedEpisodes(uint64_t seed) override;
    /** Two stages: neural perception, then symbolic reasoning. */
    int stageCount() const override { return 2; }
    core::StageSpec stageSpec(int stage) const override;
    void runStage(int stage, core::EpisodeState &state) override;
    core::OpGraph opGraph() const override;
    uint64_t storageBytes() const override;

    /** Config access for benches. */
    const NvsaConfig &config() const { return config_; }

  private:
    NvsaConfig config_;
    std::unique_ptr<data::RavenGenerator> generator_;
    std::unique_ptr<RavenPerception> perception_;
    /** Shared immutable codebook bundle (possibly cache-served). */
    std::shared_ptr<const NvsaCodebooks> books_;

    /**
     * Perception output for one puzzle: the neural stage's product,
     * carried to the symbolic stage together with the answer key.
     */
    struct PerceivedPuzzle
    {
        std::array<PanelBelief, 8> context;
        std::vector<PanelBelief> candidates;
        int answerIndex = 0;
    };

    /** Pipeline handoff: all of one episode's perceived puzzles. */
    struct EpisodeScratch
    {
        std::vector<PerceivedPuzzle> puzzles;
    };

    /** Encodes one panel's PMFs into attribute hypervectors. */
    std::array<tensor::Tensor, data::numAttributes>
    encodePanel(const PanelBelief &belief, bool record_sparsity);

    /** Neural frontend: renders and perceives one puzzle's panels. */
    PerceivedPuzzle perceivePuzzle(const data::RpmPuzzle &puzzle);

    /** Symbolic backend over perceived beliefs; true when correct. */
    bool reasonPuzzle(const PerceivedPuzzle &perceived);

    /** Solves one puzzle; returns true when the answer is correct. */
    bool solvePuzzle(const data::RpmPuzzle &puzzle);
};

} // namespace nsbench::workloads

#endif // NSBENCH_WORKLOADS_NVSA_HH
