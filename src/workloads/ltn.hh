/**
 * @file
 * The Logic Tensor Network (LTN) workload.
 *
 * Predicates (Smokes, Cancer) are grounded as MLPs over individual
 * feature vectors — the neural half, dominated by MatMul per the
 * paper's Fig. 3a. The symbolic half grounds a fuzzy first-order
 * theory (product real logic with p-mean quantifiers) over the full
 * population and its friendship relation, evaluating the satisfaction
 * of each axiom with element-wise tensor operations. The run score is
 * the aggregated satisfaction of the theory, which is high because
 * the MLP weights are constructed from the class statistics (a
 * trained-network stand-in; see DESIGN.md).
 */

#ifndef NSBENCH_WORKLOADS_LTN_HH
#define NSBENCH_WORKLOADS_LTN_HH

#include <memory>
#include <vector>

#include "core/workload.hh"
#include "data/tabular.hh"
#include "tensor/tensor.hh"

namespace nsbench::workloads
{

/** LTN configuration knobs. */
struct LtnConfig
{
    int people = 160;       ///< Population size.
    int featureDim = 16;    ///< Feature dimensionality.
    int hidden = 64;        ///< Predicate-MLP hidden width.
    int friendsPerPerson = 8;
    int queries = 4;        ///< Theory evaluations per run.
};

/**
 * One LTN instance's full model state: the sampled relational
 * dataset, the friendship indicator matrix, and the constructed
 * predicate-MLP weights. The dataset sampler and the weight
 * initializer consume a single RNG stream, so the pieces are only
 * reproducible together — the bundle is cached whole, pure in
 * (config, model seed), and shared read-only across replicas via the
 * precompute cache.
 */
struct LtnModel
{
    data::RelationalDataset dataset;
    tensor::Tensor friends;
    tensor::Tensor smokesW1, smokesW2, smokesW3;
    tensor::Tensor cancerW1, cancerW2, cancerW3;

    /** Resident bytes of the tensors in the bundle. */
    uint64_t bytes() const;
};

/**
 * End-to-end LTN querying/reasoning on the smokers-friends-cancer
 * theory.
 */
class LtnWorkload : public core::Workload
{
  public:
    LtnWorkload() = default;
    explicit LtnWorkload(const LtnConfig &config) : config_(config) {}

    std::string name() const override { return "LTN"; }
    core::Paradigm
    paradigm() const override
    {
        return core::Paradigm::NeuroUnderSymbolic;
    }
    std::string
    taskDescription() const override
    {
        return "fuzzy-FOL querying on smokers-friends-cancer";
    }

    void setUp(uint64_t seed) override;
    double run() override;
    /** run() re-evaluates the fixed theory; nothing to reseed. */
    void reseedEpisodes(uint64_t) override {}
    bool seedSensitive() const override { return false; }
    /** Two stages: neural grounding, then symbolic axiom eval. */
    int stageCount() const override { return 2; }
    core::StageSpec stageSpec(int stage) const override;
    void runStage(int stage, core::EpisodeState &state) override;
    core::OpGraph opGraph() const override;
    uint64_t storageBytes() const override;

    const LtnConfig &config() const { return config_; }

  private:
    LtnConfig config_;
    /** Shared immutable model bundle (possibly cache-served). */
    std::shared_ptr<const LtnModel> model_;

    /** One query's predicate groundings, carried between stages. */
    struct QueryGrounding
    {
        tensor::Tensor smokes;
        tensor::Tensor cancer;
    };

    /** Pipeline handoff: groundings for all of a run's queries. */
    struct EpisodeScratch
    {
        std::vector<QueryGrounding> queries;
    };

    /** Neural: grounds both predicate MLPs over the population. */
    QueryGrounding groundQuery();

    /** Symbolic: evaluates the theory; returns mean satisfaction. */
    double evalAxioms(const QueryGrounding &grounding);
};

} // namespace nsbench::workloads

#endif // NSBENCH_WORKLOADS_LTN_HH
