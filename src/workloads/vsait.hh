/**
 * @file
 * The VSA-based image-to-image translation (VSAIT) workload.
 *
 * Neural half: conv feature extraction and a conv generator over the
 * source image. Symbolic half: locality-sensitive hashing of image
 * patches into a random bipolar hyperspace, unbinding the source
 * style and binding the target style, then cleanup against a codebook
 * of target-domain patches to synthesize the translation. The run
 * score is semantic consistency — the fraction of patches whose
 * semantic label survives translation, i.e. the absence of the
 * "semantic flipping" VSAIT exists to prevent.
 */

#ifndef NSBENCH_WORKLOADS_VSAIT_HH
#define NSBENCH_WORKLOADS_VSAIT_HH

#include <memory>
#include <vector>

#include "core/workload.hh"
#include "data/images.hh"
#include "nn/layers.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"
#include "vsa/codebook.hh"

namespace nsbench::workloads
{

/** VSAIT configuration knobs. */
struct VsaitConfig
{
    int64_t imageSize = 32; ///< Edge length in pixels.
    int64_t patch = 4;      ///< Square patch size for hashing.
    int64_t hvDim = 512;    ///< Hyperspace dimension.
    int episodes = 4;       ///< Image pairs translated per run.
};

/**
 * End-to-end VSAIT unpaired translation between the two synthetic
 * texture domains.
 */
class VsaitWorkload : public core::Workload
{
  public:
    VsaitWorkload() = default;
    explicit VsaitWorkload(const VsaitConfig &config)
        : config_(config)
    {}

    std::string name() const override { return "VSAIT"; }
    core::Paradigm
    paradigm() const override
    {
        return core::Paradigm::NeuroPipeSymbolic;
    }
    std::string
    taskDescription() const override
    {
        return "unpaired image translation without semantic flipping";
    }

    void setUp(uint64_t seed) override;
    double run() override;
    /** Resets the episode RNG only; convs and projection stay. */
    void reseedEpisodes(uint64_t seed) override;
    core::OpGraph opGraph() const override;
    uint64_t storageBytes() const override;

    const VsaitConfig &config() const { return config_; }

  private:
    VsaitConfig config_;
    std::unique_ptr<util::Rng> rng_;
    std::unique_ptr<nn::Sequential> extractor_;
    std::unique_ptr<nn::Sequential> generator_;
    tensor::Tensor lshProjection_; ///< [hvDim, patch*patch].

    /** Extracts flattened patches [numPatches, patch*patch]. */
    tensor::Tensor extractPatches(const tensor::Tensor &image) const;

    /** Majority semantic label per patch. */
    std::vector<int> patchLabels(const data::SemanticImage &img) const;

    /** Hashes patch rows into bipolar hypervectors. */
    tensor::Tensor hashPatches(const tensor::Tensor &patches) const;

    double translateOnce();
};

} // namespace nsbench::workloads

#endif // NSBENCH_WORKLOADS_VSAIT_HH
