#include "workloads/perception.hh"

#include <algorithm>
#include <cmath>

#include "core/profiler.hh"
#include "util/logging.hh"

namespace nsbench::workloads
{

using core::OpCategory;
using core::ScopedOp;
using data::AttributeId;
using tensor::Tensor;

namespace
{

/** Threshold separating lit pixels from background. */
constexpr float litThreshold = 0.02f;

/** Sharpness of the template-score softmax. */
constexpr float matchTemperature = 20.0f;

/** Mass kept on the point estimate of peaked PMFs. A trained,
 * confident frontend concentrates nearly all mass on one value; the
 * tiny remainder keeps downstream probabilistic code robust while
 * falling below the symbolic backends' sparsification thresholds. */
constexpr float peakMass = 0.99f;

Tensor
peakedPmf(int domain, int estimate)
{
    Tensor pmf({domain});
    if (domain == 1) {
        pmf(0) = 1.0f;
        return pmf;
    }
    float rest = (1.0f - peakMass) / static_cast<float>(domain - 1);
    for (int v = 0; v < domain; v++)
        pmf(v) = v == estimate ? peakMass : rest;
    return pmf;
}

} // namespace

RavenPerception::RavenPerception(int grid, uint64_t seed)
    : grid_(grid), templateRenderer_(grid, seed ^ 0xbeefcafeull)
{
    util::Rng rng(seed);
    // Small perception trunk; its classification head is vestigial —
    // the compute profile is what matters (see file comment).
    trunk_ = nn::makeConvNet(
        1, data::RavenGenerator::imageSize,
        {{8, 3, 1, 1, true}, {16, 3, 1, 1, true}}, {64, 16}, rng);

    // One rendered single-object template per (type, size).
    int type_domain = data::attributeDomain(AttributeId::Type, grid);
    int size_domain = data::attributeDomain(AttributeId::Size, grid);
    int64_t cell = data::RavenGenerator::imageSize / grid;
    for (int t = 0; t < type_domain; t++) {
        for (int s = 0; s < size_domain; s++) {
            data::PanelSpec spec;
            spec.grid = grid;
            spec.values = {0, t, s, 9}; // one bright object at slot 0
            spec.slots = {0};
            Tensor panel = templateRenderer_.render(spec);
            Tensor cell_img({cell, cell});
            for (int64_t y = 0; y < cell; y++) {
                for (int64_t x = 0; x < cell; x++)
                    cell_img(y, x) = panel(0, y, x);
            }
            templates_.push_back(std::move(cell_img));
        }
    }
}

uint64_t
RavenPerception::storageBytes() const
{
    uint64_t bytes = trunk_->paramBytes();
    for (const auto &t : templates_)
        bytes += t.bytes();
    return bytes;
}

void
RavenPerception::matchCell(const Tensor &image, int64_t cell_row,
                           int64_t cell_col, int64_t cell_size,
                           Tensor &type_scores,
                           Tensor &size_scores) const
{
    int size_domain =
        data::attributeDomain(AttributeId::Size, grid_);

    for (size_t idx = 0; idx < templates_.size(); idx++) {
        const Tensor &tpl = templates_[idx];
        int64_t inter = 0, uni = 0;
        for (int64_t y = 0; y < cell_size; y++) {
            for (int64_t x = 0; x < cell_size; x++) {
                bool a = image(0, cell_row + y, cell_col + x) >
                         litThreshold;
                bool b = tpl(y, x) > litThreshold;
                inter += (a && b) ? 1 : 0;
                uni += (a || b) ? 1 : 0;
            }
        }
        float iou = uni > 0 ? static_cast<float>(inter) /
                                  static_cast<float>(uni)
                            : 0.0f;
        auto t = static_cast<int64_t>(idx) / size_domain;
        auto s = static_cast<int64_t>(idx) % size_domain;
        type_scores(t) = std::max(type_scores(t), iou);
        size_scores(s) = std::max(size_scores(s), iou);
    }
}

PanelBelief
RavenPerception::perceive(const Tensor &image)
{
    // Neural trunk forward: batch of one.
    int64_t hw = data::RavenGenerator::imageSize;
    Tensor batch = image.reshaped({1, 1, hw, hw});
    Tensor trunk_out = trunk_->forward(batch);
    (void)trunk_out;
    return estimate(image);
}

std::vector<PanelBelief>
RavenPerception::perceiveBatch(const std::vector<Tensor> &images)
{
    util::panicIf(images.empty(), "perceiveBatch: no images");
    int64_t hw = data::RavenGenerator::imageSize;

    // One stack + one host-to-device transfer + one trunk forward
    // over the whole batch.
    std::vector<Tensor> stacked;
    stacked.reserve(images.size());
    for (const auto &img : images)
        stacked.push_back(img.reshaped({1, 1, hw, hw}));
    Tensor batch =
        tensor::transfer(tensor::concat(stacked, 0), "h2d");
    Tensor trunk_out = trunk_->forward(batch);
    (void)trunk_out;

    std::vector<PanelBelief> beliefs;
    beliefs.reserve(images.size());
    for (const auto &img : images)
        beliefs.push_back(estimate(img));
    return beliefs;
}

PanelBelief
RavenPerception::estimate(const Tensor &image)
{
    int64_t hw = data::RavenGenerator::imageSize;
    int64_t cell = hw / grid_;
    int number_domain =
        data::attributeDomain(AttributeId::Number, grid_);
    int type_domain = data::attributeDomain(AttributeId::Type, grid_);
    int size_domain = data::attributeDomain(AttributeId::Size, grid_);
    int color_domain =
        data::attributeDomain(AttributeId::Color, grid_);

    // Occupancy scan + color statistics.
    int occupied = 0;
    double lit_sum = 0.0;
    int64_t lit_count = 0;
    std::vector<std::pair<int64_t, int64_t>> occupied_cells;
    {
        ScopedOp op("occupancy_scan", OpCategory::VectorElementwise);
        for (int64_t cr = 0; cr < grid_; cr++) {
            for (int64_t cc = 0; cc < grid_; cc++) {
                bool any = false;
                for (int64_t y = 0; y < cell; y++) {
                    for (int64_t x = 0; x < cell; x++) {
                        float v =
                            image(0, cr * cell + y, cc * cell + x);
                        if (v > litThreshold) {
                            any = true;
                            lit_sum += v;
                            lit_count++;
                        }
                    }
                }
                if (any) {
                    occupied++;
                    occupied_cells.emplace_back(cr * cell,
                                                cc * cell);
                }
            }
        }
        auto n = static_cast<double>(hw * hw);
        op.setFlops(n);
        op.setBytesRead(n * 4.0);
        op.setBytesWritten(16.0);
    }

    PanelBelief belief;
    int number_est = std::clamp(occupied - 1, 0, number_domain - 1);
    belief.pmfs[0] = peakedPmf(number_domain, number_est);

    // Type/size via template IoU over all occupied cells, batched:
    // one matching op per panel, one calibration softmax per
    // attribute (the kernel granularity a fused perception head
    // would emit). Per-cell PMFs are kept for object-level consumers
    // (PrAE).
    auto n_cells = static_cast<int64_t>(occupied_cells.size());
    Tensor type_mat({std::max<int64_t>(n_cells, 1), type_domain});
    Tensor size_mat({std::max<int64_t>(n_cells, 1), size_domain});
    {
        ScopedOp op("template_match", OpCategory::VectorElementwise);
        for (int64_t c = 0; c < n_cells; c++) {
            Tensor cell_type({type_domain});
            Tensor cell_size({size_domain});
            const auto &[row, col] =
                occupied_cells[static_cast<size_t>(c)];
            matchCell(image, row, col, cell, cell_type, cell_size);
            for (int64_t t = 0; t < type_domain; t++)
                type_mat(c, t) = cell_type(t);
            for (int64_t sz = 0; sz < size_domain; sz++)
                size_mat(c, sz) = cell_size(sz);
        }
        double flops = static_cast<double>(n_cells) *
                       static_cast<double>(templates_.size()) *
                       static_cast<double>(cell * cell) * 4.0;
        op.setFlops(flops);
        op.setBytesRead(flops);
        op.setBytesWritten(
            static_cast<double>(type_mat.numel() +
                                size_mat.numel()) *
            4.0);
    }

    Tensor type_cal = tensor::softmax(
        tensor::mulScalar(type_mat, matchTemperature));
    Tensor size_cal = tensor::softmax(
        tensor::mulScalar(size_mat, matchTemperature));
    for (int64_t c = 0; c < n_cells; c++) {
        Tensor ct({type_domain});
        Tensor cs({size_domain});
        for (int64_t t = 0; t < type_domain; t++)
            ct(t) = type_cal(c, t);
        for (int64_t sz = 0; sz < size_domain; sz++)
            cs(sz) = size_cal(c, sz);
        belief.cellBeliefs.push_back({std::move(ct), std::move(cs)});
    }

    Tensor type_scores = tensor::maxAxis(type_mat, 0);
    Tensor size_scores = tensor::maxAxis(size_mat, 0);
    belief.pmfs[1] =
        tensor::softmax(tensor::mulScalar(
                            type_scores.reshaped({1, type_domain}),
                            matchTemperature))
            .reshaped({type_domain});
    belief.pmfs[2] =
        tensor::softmax(tensor::mulScalar(
                            size_scores.reshaped({1, size_domain}),
                            matchTemperature))
            .reshaped({size_domain});

    // Color from the mean lit intensity (renderer maps color c to
    // intensity 0.3 + 0.07 c).
    float mean = lit_count > 0 ? static_cast<float>(
                                     lit_sum /
                                     static_cast<double>(lit_count))
                               : 0.3f;
    int color_est = std::clamp(
        static_cast<int>(std::lround((mean - 0.3f) / 0.07f)), 0,
        color_domain - 1);
    belief.pmfs[3] = peakedPmf(color_domain, color_est);
    return belief;
}

} // namespace nsbench::workloads
