#include "workloads/nlm.hh"

#include <algorithm>

#include "cache/precompute.hh"
#include "core/profiler.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace nsbench::workloads
{

using core::OpCategory;
using core::OpGraph;
using core::Phase;
using core::PhaseScope;
using core::ScopedOp;
using tensor::Shape;
using tensor::Tensor;

namespace
{

/** Gate steepness for the constructed boolean MLPs. */
constexpr float gateGain = 8.0f;

/** Expand a unary group to binary: channels [u_i..., u_j...]. */
Tensor
expandUnary(const Tensor &unary)
{
    ScopedOp op("nlm_expand", OpCategory::DataTransform);
    int64_t n = unary.size(0);
    int64_t c = unary.size(1);
    Tensor out({n, n, 2 * c});
    for (int64_t i = 0; i < n; i++) {
        for (int64_t j = 0; j < n; j++) {
            for (int64_t ch = 0; ch < c; ch++) {
                out(i, j, ch) = unary(i, ch);
                out(i, j, c + ch) = unary(j, ch);
            }
        }
    }
    op.setBytesRead(static_cast<double>(unary.numel()) * 4.0);
    op.setBytesWritten(static_cast<double>(out.numel()) * 4.0);
    return out;
}

/**
 * Expand a binary group to ternary with all argument orders: output
 * channel p*C + ch holds B[a, b, ch] where (a, b) is the p-th pair of
 * (i, j, k) in the fixed order (i,j), (i,k), (j,i), (j,k), (k,i),
 * (k,j).
 */
Tensor
expandBinaryPerms(const Tensor &binary)
{
    ScopedOp op("nlm_expand", OpCategory::DataTransform);
    int64_t n = binary.size(0);
    int64_t c = binary.size(2);
    Tensor out({n, n, n, 6 * c});
    for (int64_t i = 0; i < n; i++) {
        for (int64_t j = 0; j < n; j++) {
            for (int64_t k = 0; k < n; k++) {
                const std::array<std::pair<int64_t, int64_t>, 6>
                    pairs = {{{i, j},
                              {i, k},
                              {j, i},
                              {j, k},
                              {k, i},
                              {k, j}}};
                for (size_t p = 0; p < pairs.size(); p++) {
                    for (int64_t ch = 0; ch < c; ch++) {
                        out(i, j, k,
                            static_cast<int64_t>(p) * c + ch) =
                            binary(pairs[p].first, pairs[p].second,
                                   ch);
                    }
                }
            }
        }
    }
    op.setBytesRead(static_cast<double>(out.numel()) * 4.0);
    op.setBytesWritten(static_cast<double>(out.numel()) * 4.0);
    return out;
}

/** Binary-group argument permutations: channels [B_ij..., B_ji...]. */
Tensor
permuteBinary(const Tensor &binary)
{
    Tensor swapped = tensor::permute(binary, {1, 0, 2});
    return tensor::concat({binary, swapped}, 2);
}

/**
 * Reduce a ternary group over its last object index with both
 * exists (max) and forall (min) semantics: channels [max..., min...].
 */
Tensor
reduceTernary(const Tensor &ternary)
{
    Tensor mx = tensor::maxAxis(ternary, 2);
    Tensor mn = tensor::neg(tensor::maxAxis(tensor::neg(ternary), 2));
    return tensor::concat({mx, mn}, 2);
}

/** Per-position linear + sigmoid over the channel dimension. */
Tensor
applyMlp(const Tensor &wired, const Tensor &weight, const Tensor &bias)
{
    int64_t c_in = wired.shape().back();
    int64_t positions = wired.numel() / c_in;
    Tensor flat = wired.reshaped({positions, c_in});
    Tensor out = tensor::sigmoid(tensor::linear(flat, weight, bias));
    Shape out_shape = wired.shape();
    out_shape.back() = weight.size(0);
    return out.reshaped(out_shape);
}

} // namespace

uint64_t
NlmBasePredicates::bytes() const
{
    return unary.bytes() + binary.bytes();
}

void
NlmWorkload::setUp(uint64_t seed)
{
    seed_ = seed;
    util::Rng rng(seed);
    graphs_.clear();
    for (int e = 0; e < config_.episodes; e++) {
        graphs_.push_back(data::makeFamilyGraph(
            config_.generations, config_.peoplePerGeneration, rng));
    }

    // Memoize each graph's base predicate tensors. The conversion is
    // pure in the graph (itself pure in config, seed, and episode
    // index) and uninstrumented, so cache-serving it changes neither
    // scores nor the profiled operator stream.
    bases_.clear();
    for (size_t i = 0; i < graphs_.size(); i++) {
        const data::FamilyGraph &graph = graphs_[i];
        std::string key =
            "nlm/base/g" + std::to_string(config_.generations) +
            "/p" + std::to_string(config_.peoplePerGeneration) +
            "/s" + std::to_string(seed) + "/i" + std::to_string(i);
        bases_.push_back(
            cache::PrecomputeCache::global()
                .getOrBuild<NlmBasePredicates>(
                    key,
                    [&graph]() {
                        cache::Sized<NlmBasePredicates> out;
                        auto base =
                            std::make_shared<NlmBasePredicates>();
                        base->unary = graph.unaryTensor();
                        base->binary = graph.binaryTensor();
                        out.value = std::move(base);
                        out.bytes = out.value->bytes();
                        return out;
                    })
                .value);
    }

    // ---- Constructed program weights (trained stand-in).
    layers_.assign(2, LayerWeights{});

    // Layer 1. Binary input channels: 0=parent, 1=eye.
    // Ternary input channel p*2+c with the pair order documented at
    // expandBinaryPerms.
    {
        LayerWeights &l = layers_[0];
        l.ternaryW = Tensor::zeros({2, 12});
        l.ternaryB = Tensor::zeros({2});
        // out0 = AND(parent[i,k], parent[k,j])  (grandparent path)
        l.ternaryW(0, 1 * 2 + 0) = gateGain;  // parent@(i,k)
        l.ternaryW(0, 5 * 2 + 0) = gateGain;  // parent@(k,j)
        l.ternaryB(0) = -1.5f * gateGain;
        // out1 = AND(parent[k,i], parent[k,j], NOT eye[i,j])
        l.ternaryW(1, 4 * 2 + 0) = gateGain;  // parent@(k,i)
        l.ternaryW(1, 5 * 2 + 0) = gateGain;  // parent@(k,j)
        l.ternaryW(1, 0 * 2 + 1) = -2.0f * gateGain; // eye@(i,j)
        l.ternaryB(1) = -1.5f * gateGain;

        // Binary input channels: perms [parent_ij, eye_ij,
        // parent_ji, eye_ji] (0-3), unary [u_i, u_j] (4-5), reduced
        // [max gp, max sib, min gp, min sib] (6-9).
        l.binaryW = Tensor::zeros({4, 10});
        l.binaryB = Tensor::zeros({4});
        auto passthrough = [&](int64_t out, int64_t in) {
            l.binaryW(out, in) = 2.0f * gateGain;
            l.binaryB(out) = -gateGain;
        };
        passthrough(0, 0); // parent
        passthrough(1, 1); // eye
        passthrough(2, 6); // grandparent = exists_k gp_path
        passthrough(3, 7); // sibling = exists_k sib_path
    }

    // Layer 2. Binary input channels now: 0=parent, 1=eye,
    // 2=grandparent, 3=sibling.
    {
        LayerWeights &l = layers_[1];
        l.ternaryW = Tensor::zeros({1, 24});
        l.ternaryB = Tensor::zeros({1});
        // out0 = AND(sibling[i,k], parent[k,j])  (uncle path)
        l.ternaryW(0, 1 * 4 + 3) = gateGain;  // sibling@(i,k)
        l.ternaryW(0, 5 * 4 + 0) = gateGain;  // parent@(k,j)
        l.ternaryB(0) = -1.5f * gateGain;

        // Binary inputs: perms (0-7), unary (8-9), reduced max (10),
        // min (11).
        l.binaryW = Tensor::zeros({3, 12});
        l.binaryB = Tensor::zeros({3});
        auto passthrough = [&](int64_t out, int64_t in) {
            l.binaryW(out, in) = 2.0f * gateGain;
            l.binaryB(out) = -gateGain;
        };
        passthrough(0, 2);  // grandparent carried through
        passthrough(1, 3);  // sibling carried through
        passthrough(2, 10); // uncle = exists_k uncle_path
    }
}

uint64_t
NlmWorkload::storageBytes() const
{
    uint64_t bytes = 0;
    for (const auto &l : layers_) {
        bytes += l.ternaryW.bytes() + l.ternaryB.bytes() +
                 l.binaryW.bytes() + l.binaryB.bytes();
    }
    return bytes;
}

Tensor
NlmWorkload::baseBinary(const NlmBasePredicates &base)
{
    const Tensor &parent = base.binary;
    int64_t n = parent.size(0);

    // Base binary channels: parent plus the equality predicate.
    PhaseScope symbolic(Phase::Symbolic, "nlm/wiring");
    Tensor eye({n, n, 1});
    for (int64_t i = 0; i < n; i++)
        eye(i, i, 0) = 1.0f;
    return tensor::concat({parent, eye}, 2);
}

Tensor
NlmWorkload::evaluateLayer(const Tensor &unary, const Tensor &binary,
                           const LayerWeights &layer)
{
    Tensor tern_in, bin_in;
    Tensor tern_out;
    {
        PhaseScope symbolic(Phase::Symbolic, "nlm/wiring");
        tern_in = expandBinaryPerms(binary);
    }
    {
        PhaseScope neural(Phase::Neural, "nlm/mlp");
        tern_out =
            applyMlp(tern_in, layer.ternaryW, layer.ternaryB);
    }
    {
        PhaseScope symbolic(Phase::Symbolic, "nlm/wiring");
        Tensor reduced = reduceTernary(tern_out);
        bin_in = tensor::concat(
            {permuteBinary(binary), expandUnary(unary), reduced},
            2);
    }
    PhaseScope neural(Phase::Neural, "nlm/mlp");
    return applyMlp(bin_in, layer.binaryW, layer.binaryB);
}

double
NlmWorkload::scoreGraph(const data::FamilyGraph &graph,
                        const Tensor &binary)
{
    int64_t n = binary.size(0);

    // Score: mean IoU of the three derived relations.
    Tensor target = graph.targetTensor();
    util::panicIf(binary.shape() != target.shape(),
                  "NLM: output/target shape mismatch");
    double iou_sum = 0.0;
    for (int64_t ch = 0; ch < 3; ch++) {
        int64_t inter = 0, uni = 0;
        for (int64_t i = 0; i < n; i++) {
            for (int64_t j = 0; j < n; j++) {
                bool pred = binary(i, j, ch) > 0.5f;
                bool truth = target(i, j, ch) > 0.5f;
                inter += (pred && truth) ? 1 : 0;
                uni += (pred || truth) ? 1 : 0;
            }
        }
        iou_sum += uni == 0 ? 1.0
                            : static_cast<double>(inter) /
                                  static_cast<double>(uni);
    }
    return iou_sum / 3.0;
}

double
NlmWorkload::evaluateGraph(const data::FamilyGraph &graph,
                           const NlmBasePredicates &base)
{
    Tensor binary = baseBinary(base);
    for (const auto &layer : layers_)
        binary = evaluateLayer(base.unary, binary, layer);
    return scoreGraph(graph, binary);
}

double
NlmWorkload::run()
{
    util::panicIf(graphs_.empty(), "NLM: setUp() not called");
    double total = 0.0;
    for (size_t i = 0; i < graphs_.size(); i++)
        total += evaluateGraph(graphs_[i], *bases_[i]);
    return total / static_cast<double>(graphs_.size());
}

core::StageSpec
NlmWorkload::stageSpec(int stage) const
{
    // Both layers interleave symbolic wiring with neural MLPs, so
    // neither stage has a single dominant phase.
    return stage == 0
               ? core::StageSpec{"layer1", Phase::Untagged}
               : core::StageSpec{"layer2", Phase::Untagged};
}

void
NlmWorkload::runStage(int stage, core::EpisodeState &state)
{
    // NLM is seed-insensitive and run() consumes no RNG: both stages
    // are pure in the fixed graphs/weights plus the handed-off
    // binary groups.
    if (stage == 0) {
        util::panicIf(graphs_.empty(), "NLM: setUp() not called");
        auto scratch = std::make_shared<EpisodeScratch>();
        scratch->binaries.reserve(graphs_.size());
        for (size_t i = 0; i < graphs_.size(); i++) {
            Tensor binary = baseBinary(*bases_[i]);
            scratch->binaries.push_back(evaluateLayer(
                bases_[i]->unary, binary, layers_[0]));
        }
        state.scratch = std::move(scratch);
        return;
    }
    auto scratch =
        std::static_pointer_cast<EpisodeScratch>(state.scratch);
    double total = 0.0;
    for (size_t i = 0; i < graphs_.size(); i++) {
        Tensor binary = evaluateLayer(
            bases_[i]->unary, scratch->binaries[i], layers_[1]);
        total += scoreGraph(graphs_[i], binary);
    }
    state.scratch.reset();
    state.score = total / static_cast<double>(graphs_.size());
}

OpGraph
NlmWorkload::opGraph() const
{
    OpGraph g;
    auto input = g.addNode("base_predicates", Phase::Untagged);
    auto wiring = g.addNode("nlm/wiring", Phase::Symbolic);
    auto mlp = g.addNode("nlm/mlp", Phase::Neural);
    auto out = g.addNode("derived_relations", Phase::Untagged);
    g.addEdge(input, wiring);
    g.addEdge(wiring, mlp);
    g.addEdge(mlp, out);
    return g;
}


} // namespace nsbench::workloads
