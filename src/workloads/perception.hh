/**
 * @file
 * Shared neural perception frontend for the RPM workloads.
 *
 * NVSA and PrAE both start from a ConvNet that maps a panel image to
 * per-attribute probability mass functions. We cannot ship trained
 * PyTorch weights, so the frontend combines (a) a real ConvNet forward
 * pass — providing the paper's neural compute profile — with (b) a
 * template-matching estimator that extracts the attributes from the
 * rendered image and calibrates the PMFs, standing in for the trained
 * network's accuracy (see DESIGN.md, substitutions).
 */

#ifndef NSBENCH_WORKLOADS_PERCEPTION_HH
#define NSBENCH_WORKLOADS_PERCEPTION_HH

#include <array>
#include <memory>
#include <vector>

#include "data/raven.hh"
#include "nn/layers.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace nsbench::workloads
{

/** Per-attribute PMFs for one perceived panel. */
struct PanelBelief
{
    /** pmfs[a] is a rank-1 tensor over attributeDomain(a, grid). */
    std::array<tensor::Tensor, data::numAttributes> pmfs;

    /**
     * Per-occupied-cell type and size PMFs, in cell scan order. The
     * PrAE scene-inference engine aggregates these object-level
     * distributions itself; NVSA consumes the panel-level pmfs.
     */
    std::vector<std::array<tensor::Tensor, 2>> cellBeliefs;
};

/**
 * The perception frontend.
 */
class RavenPerception
{
  public:
    /**
     * @param grid Panel grid size the frontend is built for.
     * @param seed Weight-initialization seed.
     */
    RavenPerception(int grid, uint64_t seed);

    /**
     * Perceives one panel image: runs the ConvNet trunk and the
     * template estimator, returning calibrated attribute PMFs. All
     * tensor work reports to the global profiler under the current
     * phase.
     */
    PanelBelief perceive(const tensor::Tensor &image);

    /**
     * Batched perception: one ConvNet forward over all panels (the
     * way a deployed frontend batches an RPM's sixteen panels),
     * followed by per-panel template estimation.
     */
    std::vector<PanelBelief>
    perceiveBatch(const std::vector<tensor::Tensor> &images);

    /** Bytes of ConvNet parameters plus template storage. */
    uint64_t storageBytes() const;

  private:
    int grid_;
    std::unique_ptr<nn::Sequential> trunk_;
    /** Rendered cell templates per (type, size), at panel resolution. */
    std::vector<tensor::Tensor> templates_;
    data::RavenGenerator templateRenderer_;

    /** Template-matching estimate of (type, size) for one cell. */
    void matchCell(const tensor::Tensor &image, int64_t cell_row,
                   int64_t cell_col, int64_t cell_size,
                   tensor::Tensor &type_scores,
                   tensor::Tensor &size_scores) const;

    /** Template-path estimation for one image (no trunk forward). */
    PanelBelief estimate(const tensor::Tensor &image);
};

} // namespace nsbench::workloads

#endif // NSBENCH_WORKLOADS_PERCEPTION_HH
