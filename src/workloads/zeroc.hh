/**
 * @file
 * The Zero-shot Concept recognition (ZeroC) workload.
 *
 * Each primitive concept carries an energy-based model — here a bank
 * of matched-filter convolution kernels over several extents, plus a
 * shared conv stack — evaluated as a large ensemble over the input
 * scene (the memory-heavy neural half the paper observes for ZeroC).
 * Hierarchical concepts are graphs whose nodes are primitive concepts
 * and whose edges are relations; zero-shot classification grounds
 * each graph against the energy maps and checks the relational
 * constraints symbolically.
 */

#ifndef NSBENCH_WORKLOADS_ZEROC_HH
#define NSBENCH_WORKLOADS_ZEROC_HH

#include <memory>
#include <string>
#include <vector>

#include "core/workload.hh"
#include "data/images.hh"
#include "nn/layers.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace nsbench::workloads
{

/** ZeroC configuration knobs. */
struct ZerocConfig
{
    int64_t imageSize = 32; ///< Scene edge length.
    int episodes = 6;       ///< Scenes classified per run.
};

/**
 * End-to-end ZeroC cross-domain concept classification.
 */
class ZerocWorkload : public core::Workload
{
  public:
    ZerocWorkload() = default;
    explicit ZerocWorkload(const ZerocConfig &config)
        : config_(config)
    {}

    std::string name() const override { return "ZeroC"; }
    core::Paradigm
    paradigm() const override
    {
        return core::Paradigm::NeuroBracketSymbolic;
    }
    std::string
    taskDescription() const override
    {
        return "zero-shot hierarchical concept classification";
    }

    void setUp(uint64_t seed) override;
    double run() override;
    /** Resets the scene RNG only; energy models and net stay. */
    void reseedEpisodes(uint64_t seed) override;
    core::OpGraph opGraph() const override;
    uint64_t storageBytes() const override;

    const ZerocConfig &config() const { return config_; }

  private:
    ZerocConfig config_;
    std::unique_ptr<util::Rng> rng_;

    /** Matched-filter kernels per (shape, extent). */
    struct EnergyModel
    {
        data::ConceptShape shape;
        std::vector<tensor::Tensor> kernels; ///< [1,1,e,e] each.
        std::vector<float> litCounts;        ///< Lit pixels per kernel.
    };
    std::vector<EnergyModel> energyModels_;
    std::unique_ptr<nn::Sequential> sharedNet_;

    /** One hierarchical concept graph. */
    struct HierarchicalConcept
    {
        std::string name;
        std::vector<data::ConceptShape> constituents;
    };
    std::vector<HierarchicalConcept> concepts_;

    /** Classifies one scene; returns the concept index. */
    int classifyScene(const tensor::Tensor &scene);
};

} // namespace nsbench::workloads

#endif // NSBENCH_WORKLOADS_ZEROC_HH
