#include "workloads/zeroc.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/profiler.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"

namespace nsbench::workloads
{

using core::OpCategory;
using core::OpGraph;
using core::Phase;
using core::PhaseScope;
using core::ScopedOp;
using data::ConceptShape;
using data::PlacedConcept;
using tensor::Tensor;

namespace
{

/** Kernel extents in the energy-model ensemble. */
constexpr std::array<int64_t, 6> kernelExtents = {5, 6, 7, 8, 9, 10};

/** Normalized-energy threshold for an exact template match. */
constexpr float matchThreshold = 0.85f;

/** One detected concept instance. */
struct Detection
{
    ConceptShape shape;
    int64_t extent;
    int64_t row;
    int64_t col;
    float normEnergy;  ///< Match quality in [0, 1].
    float absEnergy;   ///< Evidence mass (scales with template size).
};

} // namespace

void
ZerocWorkload::setUp(uint64_t seed)
{
    rng_ = std::make_unique<util::Rng>(seed);

    energyModels_.clear();
    for (int s = 0; s < data::numConceptShapes; s++) {
        EnergyModel model;
        model.shape = static_cast<ConceptShape>(s);
        for (int64_t e : kernelExtents) {
            PlacedConcept proto{model.shape, 0, 0, e};
            Tensor canvas = data::renderConcept(proto, e);
            float lit = 0.0f;
            for (float v : canvas.data())
                lit += v;
            model.kernels.push_back(canvas.reshaped({1, 1, e, e}));
            model.litCounts.push_back(lit);
        }
        energyModels_.push_back(std::move(model));
    }

    sharedNet_ = std::make_unique<nn::Sequential>();
    sharedNet_->add(std::make_unique<nn::Conv2dLayer>(1, 8, 3, *rng_,
                                                      1, 1));
    sharedNet_->add(std::make_unique<nn::ActivationLayer>(
        nn::Activation::Relu));
    sharedNet_->add(std::make_unique<nn::Conv2dLayer>(8, 8, 3, *rng_,
                                                      1, 1));
    sharedNet_->add(std::make_unique<nn::ActivationLayer>(
        nn::Activation::Relu));

    concepts_ = {
        {"cross_pair",
         {ConceptShape::VerticalLine, ConceptShape::HorizontalLine}},
        {"twin_lines",
         {ConceptShape::VerticalLine, ConceptShape::VerticalLine}},
        {"boxed_line",
         {ConceptShape::Rectangle, ConceptShape::VerticalLine}},
        {"corner", {ConceptShape::LShape}},
    };
}

void
ZerocWorkload::reseedEpisodes(uint64_t seed)
{
    // Only the scene stream restarts (salted like VSAIT's); energy
    // models and the shared net are untouched.
    rng_ = std::make_unique<util::Rng>(seed ^ 0xE9150DE5ULL);
}

uint64_t
ZerocWorkload::storageBytes() const
{
    uint64_t bytes = sharedNet_ ? sharedNet_->paramBytes() : 0;
    for (const auto &model : energyModels_) {
        for (const auto &k : model.kernels)
            bytes += k.bytes();
    }
    return bytes;
}

int
ZerocWorkload::classifyScene(const Tensor &scene)
{
    int64_t s = config_.imageSize;
    Tensor residual = scene.clone();

    std::vector<Detection> detections;
    const int max_instances = 3;
    for (int round = 0; round < max_instances; round++) {
        Detection best{};
        best.normEnergy = -1.0f;

        // ---- Neural: the full energy-model ensemble over the
        // current residual (plus the shared trunk on round 0).
        std::vector<std::pair<size_t, Tensor>> energy_maps;
        {
            PhaseScope neural(Phase::Neural, "zeroc/energy_maps");
            Tensor input = residual.reshaped({1, 1, s, s});
            if (round == 0) {
                Tensor shared = sharedNet_->forward(
                    tensor::transfer(input, "h2d"));
                (void)shared;
            }
            for (size_t m = 0; m < energyModels_.size(); m++) {
                for (const auto &kernel : energyModels_[m].kernels) {
                    energy_maps.emplace_back(
                        m, tensor::conv2d(input, kernel, Tensor()));
                }
            }
        }

        // ---- Symbolic: ground each concept by extracting the
        // energy peak of each model's map bank (one dispatched
        // peak-extraction op per concept model).
        {
            PhaseScope symbolic(Phase::Symbolic, "zeroc/grounding");
            size_t kernels_per_model =
                energyModels_[0].kernels.size();
            for (size_t m = 0; m < energyModels_.size(); m++) {
                const auto &model = energyModels_[m];
                ScopedOp op("peak_extract", OpCategory::Other);
                double scanned = 0.0;
                for (size_t k = 0; k < kernels_per_model; k++) {
                    const Tensor &energy =
                        energy_maps[m * kernels_per_model + k]
                            .second;
                    int64_t e = model.kernels[k].size(2);
                    float lit = model.litCounts[k];

                    auto data = energy.data();
                    float peak = data[0];
                    int64_t arg = 0;
                    for (size_t i = 1; i < data.size(); i++) {
                        if (data[i] > peak) {
                            peak = data[i];
                            arg = static_cast<int64_t>(i);
                        }
                    }
                    scanned += static_cast<double>(data.size());

                    // Normalized match quality; absolute evidence
                    // favours larger templates on ties.
                    float norm = lit > 0.0f ? peak / lit : 0.0f;
                    float abs_energy =
                        peak / std::sqrt(std::max(lit, 1.0f));
                    int64_t ow = s - e + 1;
                    bool better =
                        norm >= matchThreshold &&
                        (best.normEnergy < matchThreshold ||
                         abs_energy > best.absEnergy);
                    if (better || (best.normEnergy < 0.0f &&
                                   norm > best.normEnergy)) {
                        best = {model.shape, e, arg / ow, arg % ow,
                                norm, abs_energy};
                    }
                }
                op.setFlops(scanned);
                op.setBytesRead(scanned * 4.0);
                op.setBytesWritten(8.0);
            }
        }

        if (best.normEnergy < matchThreshold)
            break;

        // ---- Symbolic: commit the grounding and explain away its
        // pixels so remaining instances become visible.
        {
            PhaseScope symbolic(Phase::Symbolic, "zeroc/grounding");
            ScopedOp op("explain_away", OpCategory::Other);
            PlacedConcept placed{best.shape, best.row, best.col,
                                 best.extent};
            Tensor stamp = data::renderConcept(placed, s);
            auto sp = stamp.data();
            auto rp = residual.data();
            for (size_t i = 0; i < rp.size(); i++) {
                if (sp[i] > 0.5f)
                    rp[i] = 0.0f;
            }
            op.setFlops(static_cast<double>(rp.size()));
            op.setBytesRead(static_cast<double>(rp.size()) * 8.0);
            op.setBytesWritten(static_cast<double>(rp.size()) * 4.0);
            detections.push_back(best);
        }
    }

    // ---- Symbolic: verify pairwise relations between groundings
    // (the concept-graph edges), then match the detected multiset
    // plus relations against each hierarchical concept graph.
    int relation_hits = 0;
    {
        PhaseScope symbolic(Phase::Symbolic, "zeroc/graph_match");
        for (size_t a = 0; a < detections.size(); a++) {
            for (size_t b = a + 1; b < detections.size(); b++) {
                ScopedOp op("relation_check", OpCategory::Other);
                const Detection &da = detections[a];
                const Detection &db = detections[b];
                bool parallel = da.shape == db.shape;
                bool perpendicular =
                    (da.shape == ConceptShape::VerticalLine &&
                     db.shape == ConceptShape::HorizontalLine) ||
                    (da.shape == ConceptShape::HorizontalLine &&
                     db.shape == ConceptShape::VerticalLine);
                int64_t dr = std::abs(da.row - db.row);
                int64_t dc = std::abs(da.col - db.col);
                bool attached =
                    dr <= std::max(da.extent, db.extent) + 2 &&
                    dc <= std::max(da.extent, db.extent) + 2;
                if (parallel || perpendicular || attached)
                    relation_hits++;
                op.setFlops(16.0);
                op.setBytesRead(64.0);
                op.setBytesWritten(4.0);
            }
        }
    }
    int best_concept = 0;
    {
        PhaseScope symbolic(Phase::Symbolic, "zeroc/graph_match");
        ScopedOp op("graph_match", OpCategory::Other);
        int best_score = std::numeric_limits<int>::min();
        for (size_t c = 0; c < concepts_.size(); c++) {
            std::map<ConceptShape, int> needed;
            for (ConceptShape shape : concepts_[c].constituents)
                needed[shape]++;
            std::map<ConceptShape, int> found;
            for (const auto &det : detections)
                found[det.shape]++;

            int score = 0;
            for (const auto &[shape, want] : needed) {
                int have = found.count(shape) ? found[shape] : 0;
                score += std::min(have, want);       // matched
                score -= std::max(0, want - have);   // missing
            }
            for (const auto &[shape, have] : found) {
                int want = needed.count(shape) ? needed[shape] : 0;
                score -= std::max(0, have - want);   // spurious
            }
            if (score > best_score) {
                best_score = score;
                best_concept = static_cast<int>(c);
            }
        }
        op.setFlops(static_cast<double>(concepts_.size() *
                                        detections.size() +
                                        static_cast<size_t>(
                                            relation_hits) + 1));
        op.setBytesRead(64.0);
        op.setBytesWritten(8.0);
    }
    return best_concept;
}

double
ZerocWorkload::run()
{
    util::panicIf(!rng_, "ZeroC: setUp() not called");
    int correct = 0;
    for (int e = 0; e < config_.episodes; e++) {
        auto truth = static_cast<size_t>(e) % concepts_.size();
        data::ConceptScene scene = data::makeConceptScene(
            concepts_[truth].constituents, config_.imageSize, *rng_);
        if (classifyScene(scene.pixels) ==
            static_cast<int>(truth)) {
            correct++;
        }
    }
    return static_cast<double>(correct) /
           static_cast<double>(config_.episodes);
}

OpGraph
ZerocWorkload::opGraph() const
{
    OpGraph g;
    auto input = g.addNode("scene_image", Phase::Untagged);
    auto energy = g.addNode("zeroc/energy_maps", Phase::Neural);
    auto ground = g.addNode("zeroc/grounding", Phase::Symbolic);
    auto match = g.addNode("zeroc/graph_match", Phase::Symbolic);
    auto label = g.addNode("concept_label", Phase::Untagged);
    g.addEdge(input, energy);
    g.addEdge(energy, ground);
    g.addEdge(ground, match);
    g.addEdge(match, label);
    return g;
}


} // namespace nsbench::workloads
