#include "workloads/prae.hh"

#include <algorithm>
#include <cmath>

#include "cache/precompute.hh"
#include "core/profiler.hh"
#include "core/sparsity.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"

namespace nsbench::workloads
{

using core::OpCategory;
using core::OpGraph;
using core::Phase;
using core::PhaseScope;
using core::ScopedOp;
using data::AttributeId;
using tensor::Tensor;

namespace
{

/** Enumerates the full rule tables for one grid size. */
std::shared_ptr<const PraeRuleTables>
buildRuleTables(int grid)
{
    auto tables = std::make_shared<PraeRuleTables>();
    for (size_t a = 0; a < data::numAttributes; a++) {
        int domain =
            data::attributeDomain(data::allAttributes[a], grid);
        PraeRuleTables::Table &table = tables->tables[a];
        table.domain = domain;
        table.rules = data::enumerateRules(domain);
        table.apply.resize(table.rules.size());
        for (size_t r = 0; r < table.rules.size(); r++) {
            auto &map = table.apply[r];
            map.resize(static_cast<size_t>(domain) *
                       static_cast<size_t>(domain));
            for (int a1 = 0; a1 < domain; a1++) {
                for (int a2 = 0; a2 < domain; a2++) {
                    map[static_cast<size_t>(a1 * domain + a2)] =
                        data::applyRule(table.rules[r], a1, a2,
                                        domain);
                }
            }
        }
    }
    return tables;
}

} // namespace

uint64_t
PraeRuleTables::bytes() const
{
    uint64_t total = 0;
    for (const auto &table : tables) {
        total += table.rules.size() * sizeof(data::AttributeRule);
        for (const auto &map : table.apply)
            total += map.size() * sizeof(int);
    }
    return total;
}

void
PraeWorkload::setUp(uint64_t seed)
{
    generator_ = std::make_unique<data::RavenGenerator>(config_.grid,
                                                        seed);
    perception_ = std::make_unique<RavenPerception>(config_.grid,
                                                    seed ^ 0x9999);

    // Pre-compute the rule tables the abduction engine enumerates.
    // They depend on the grid alone — no seed — so every replica at
    // the same grid shares one memoized copy when the cache is on.
    int grid = config_.grid;
    ruleTables_ =
        cache::PrecomputeCache::global()
            .getOrBuild<PraeRuleTables>(
                "prae/tables/g" + std::to_string(grid),
                [grid]() {
                    cache::Sized<PraeRuleTables> out;
                    out.value = buildRuleTables(grid);
                    out.bytes = out.value->bytes();
                    return out;
                })
            .value;
}

void
PraeWorkload::reseedEpisodes(uint64_t seed)
{
    // Only the puzzle stream restarts; perception and the
    // precomputed rule tables (the model) are untouched.
    generator_ = std::make_unique<data::RavenGenerator>(config_.grid,
                                                        seed);
}

uint64_t
PraeWorkload::storageBytes() const
{
    uint64_t bytes = perception_ ? perception_->storageBytes() : 0;
    if (ruleTables_) {
        for (const auto &table : ruleTables_->tables) {
            for (const auto &map : table.apply)
                bytes += map.size() * sizeof(int);
        }
    }
    return bytes;
}

PraeWorkload::PerceivedPuzzle
PraeWorkload::perceivePuzzle(const data::RpmPuzzle &puzzle)
{
    // ---- Neural frontend (shared with NVSA).
    PerceivedPuzzle perceived;
    perceived.answerIndex = puzzle.answerIndex;
    perceived.candidates.resize(8);
    {
        PhaseScope neural(Phase::Neural, "prae/perception");
        std::vector<Tensor> images;
        images.reserve(16);
        for (int i = 0; i < 8; i++) {
            images.push_back(generator_->render(
                puzzle.context[static_cast<size_t>(i)]));
        }
        for (int i = 0; i < 8; i++) {
            images.push_back(generator_->render(
                puzzle.candidates[static_cast<size_t>(i)]));
        }
        auto beliefs = perception_->perceiveBatch(images);
        for (int i = 0; i < 8; i++)
            perceived.context[static_cast<size_t>(i)] =
                std::move(beliefs[static_cast<size_t>(i)]);
        for (int i = 0; i < 8; i++)
            perceived.candidates[static_cast<size_t>(i)] =
                std::move(beliefs[static_cast<size_t>(i + 8)]);
    }
    return perceived;
}

bool
PraeWorkload::reasonPuzzle(PerceivedPuzzle &perceived)
{
    std::array<PanelBelief, 8> &context = perceived.context;
    std::vector<PanelBelief> &candidates = perceived.candidates;

    // ---- Scene inference: fuse object-level (per-cell) beliefs into
    // calibrated panel distributions (products of expert cells).
    {
        PhaseScope symbolic(Phase::Symbolic, "prae/scene_inference");
        auto fuse = [](PanelBelief &belief) {
            if (belief.cellBeliefs.empty())
                return;
            Tensor type_prod = belief.cellBeliefs[0][0];
            Tensor size_prod = belief.cellBeliefs[0][1];
            for (size_t c = 1; c < belief.cellBeliefs.size(); c++) {
                if (c == 1) {
                    // The running products still alias cell 0's
                    // beliefs here; the first multiply must allocate
                    // before later rounds can go in place.
                    type_prod = tensor::mul(
                        type_prod, belief.cellBeliefs[c][0]);
                    size_prod = tensor::mul(
                        size_prod, belief.cellBeliefs[c][1]);
                } else {
                    tensor::mulInPlace(type_prod,
                                       belief.cellBeliefs[c][0]);
                    tensor::mulInPlace(size_prod,
                                       belief.cellBeliefs[c][1]);
                }
            }
            int64_t td = type_prod.numel();
            int64_t sd = size_prod.numel();
            belief.pmfs[1] =
                tensor::normalizeSum(type_prod.reshaped({1, td}))
                    .reshaped({td});
            belief.pmfs[2] =
                tensor::normalizeSum(size_prod.reshaped({1, sd}))
                    .reshaped({sd});
        };
        for (auto &belief : context)
            fuse(belief);
        for (auto &belief : candidates)
            fuse(belief);
    }

    // ---- Probabilistic abduction: exhaustive rule scoring.
    // posterior[a][r] = P(rule r | both complete rows).
    std::array<std::vector<double>, data::numAttributes> posteriors;
    {
        PhaseScope symbolic(Phase::Symbolic, "prae/abduction");
        for (size_t a = 0; a < data::numAttributes; a++) {
            const PraeRuleTables::Table &table =
                ruleTables_->tables[a];
            int domain = table.domain;
            posteriors[a].assign(table.rules.size(), 0.0);

            // Each (rule, row) check is its own dispatched operator,
            // matching the fine-grained kernel stream a framework
            // implementation of PrAE emits — the dispatch-bound
            // behaviour the paper observes for symbolic backends.
            for (size_t r = 0; r < table.rules.size(); r++) {
                double log_score = 0.0;
                for (int row = 0; row < 2; row++) {
                    ScopedOp op("prob_abduction", OpCategory::Other);
                    auto p0 = context[static_cast<size_t>(row * 3)]
                                  .pmfs[a]
                                  .data();
                    auto p1 =
                        context[static_cast<size_t>(row * 3 + 1)]
                            .pmfs[a]
                            .data();
                    auto p2 =
                        context[static_cast<size_t>(row * 3 + 2)]
                            .pmfs[a]
                            .data();
                    double row_prob = 0.0;
                    const auto &map = table.apply[r];
                    for (int a1 = 0; a1 < domain; a1++) {
                        for (int a2 = 0; a2 < domain; a2++) {
                            int a3 = map[static_cast<size_t>(
                                a1 * domain + a2)];
                            if (a3 < 0)
                                continue;
                            row_prob +=
                                static_cast<double>(
                                    p0[static_cast<size_t>(a1)]) *
                                p1[static_cast<size_t>(a2)] *
                                p2[static_cast<size_t>(a3)];
                        }
                    }
                    double flops = 3.0 * static_cast<double>(domain) *
                                   static_cast<double>(domain);
                    op.setFlops(flops);
                    op.setBytesRead(flops * 4.0);
                    op.setBytesWritten(8.0);
                    log_score += std::log(row_prob + 1e-12);
                }
                posteriors[a][r] = std::exp(log_score);
            }

            // Normalize the posterior and record its sparsity — the
            // "probability computation" stage of Fig. 5.
            double total = 0.0;
            for (double p : posteriors[a])
                total += p;
            uint64_t zeros = 0;
            for (double &p : posteriors[a]) {
                p = total > 0.0 ? p / total : 0.0;
                if (p < 1e-4)
                    zeros++;
            }
            core::globalProfiler().recordSparsity(
                "prae_rule_posterior/" +
                    std::string(data::attributeName(
                        data::allAttributes[a])),
                zeros, posteriors[a].size());
        }
    }

    // ---- Probabilistic execution: posterior-weighted exhaustive
    // generation of the answer PMF.
    std::array<Tensor, data::numAttributes> predicted;
    {
        PhaseScope symbolic(Phase::Symbolic, "prae/execution");
        for (size_t a = 0; a < data::numAttributes; a++) {
            const PraeRuleTables::Table &table =
                ruleTables_->tables[a];
            int domain = table.domain;
            predicted[a] = Tensor({domain});

            auto p7 = context[6].pmfs[a].data();
            auto p8 = context[7].pmfs[a].data();
            auto out = predicted[a].data();
            for (size_t r = 0; r < table.rules.size(); r++) {
                double weight = posteriors[a][r];
                if (weight <= 0.0)
                    continue;
                ScopedOp op("prob_execute", OpCategory::Other);
                const auto &map = table.apply[r];
                for (int a1 = 0; a1 < domain; a1++) {
                    for (int a2 = 0; a2 < domain; a2++) {
                        int a3 = map[static_cast<size_t>(
                            a1 * domain + a2)];
                        if (a3 < 0)
                            continue;
                        out[static_cast<size_t>(a3)] +=
                            static_cast<float>(
                                weight *
                                static_cast<double>(
                                    p7[static_cast<size_t>(a1)]) *
                                p8[static_cast<size_t>(a2)]);
                    }
                }
                double flops = 3.0 * static_cast<double>(domain) *
                               static_cast<double>(domain);
                op.setFlops(flops);
                op.setBytesRead(flops * 4.0);
                op.setBytesWritten(static_cast<double>(domain) * 4.0);
            }

            predicted[a] =
                tensor::normalizeSum(
                    predicted[a].reshaped({1, domain}))
                    .reshaped({domain});
        }
    }

    // ---- Answer selection by probabilistic matching.
    int best_candidate = 0;
    {
        PhaseScope symbolic(Phase::Symbolic, "prae/answer_select");
        float best_score = -1e30f;
        for (int c = 0; c < 8; c++) {
            float score = 0.0f;
            for (size_t a = 0; a < data::numAttributes; a++) {
                float match = tensor::dot(
                    predicted[a],
                    candidates[static_cast<size_t>(c)].pmfs[a]);
                score += std::log(match + 1e-6f);
            }
            if (score > best_score) {
                best_score = score;
                best_candidate = c;
            }
        }
    }
    return best_candidate == perceived.answerIndex;
}

bool
PraeWorkload::solvePuzzle(const data::RpmPuzzle &puzzle)
{
    PerceivedPuzzle perceived = perceivePuzzle(puzzle);
    return reasonPuzzle(perceived);
}

double
PraeWorkload::run()
{
    util::panicIf(!generator_, "PrAE: setUp() not called");
    int correct = 0;
    for (int e = 0; e < config_.episodes; e++) {
        data::RpmPuzzle puzzle = generator_->generate();
        if (solvePuzzle(puzzle))
            correct++;
    }
    return static_cast<double>(correct) /
           static_cast<double>(config_.episodes);
}

core::StageSpec
PraeWorkload::stageSpec(int stage) const
{
    return stage == 0
               ? core::StageSpec{"perceive", Phase::Neural}
               : core::StageSpec{"reason", Phase::Symbolic};
}

void
PraeWorkload::runStage(int stage, core::EpisodeState &state)
{
    // Stage 0 consumes the whole episode RNG stream (generation +
    // rendering); stage 1 is pure in the perceived beliefs plus the
    // immutable rule tables, so overlapping episodes cannot change a
    // score.
    if (stage == 0) {
        util::panicIf(!generator_, "PrAE: setUp() not called");
        auto scratch = std::make_shared<EpisodeScratch>();
        scratch->puzzles.reserve(
            static_cast<size_t>(config_.episodes));
        for (int e = 0; e < config_.episodes; e++) {
            data::RpmPuzzle puzzle = generator_->generate();
            scratch->puzzles.push_back(perceivePuzzle(puzzle));
        }
        state.scratch = std::move(scratch);
        return;
    }
    auto scratch =
        std::static_pointer_cast<EpisodeScratch>(state.scratch);
    int correct = 0;
    for (PerceivedPuzzle &perceived : scratch->puzzles) {
        if (reasonPuzzle(perceived))
            correct++;
    }
    state.scratch.reset();
    state.score = static_cast<double>(correct) /
                  static_cast<double>(config_.episodes);
}

OpGraph
PraeWorkload::opGraph() const
{
    OpGraph g;
    auto input = g.addNode("panel_images", Phase::Untagged);
    auto percept = g.addNode("prae/perception", Phase::Neural);
    auto scene = g.addNode("prae/scene_inference", Phase::Symbolic);
    auto abduce = g.addNode("prae/abduction", Phase::Symbolic);
    auto exec = g.addNode("prae/execution", Phase::Symbolic);
    auto select = g.addNode("prae/answer_select", Phase::Symbolic);
    auto answer = g.addNode("answer", Phase::Untagged);
    g.addEdge(input, percept);
    g.addEdge(percept, scene);
    g.addEdge(scene, abduce);
    g.addEdge(abduce, exec);
    g.addEdge(exec, select);
    g.addEdge(scene, select);
    g.addEdge(select, answer);
    return g;
}


} // namespace nsbench::workloads
