#include "workloads/nvsa.hh"

#include <algorithm>
#include <cmath>

#include "cache/precompute.hh"
#include "core/profiler.hh"
#include "core/sparsity.hh"
#include "tensor/fused.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "vsa/fft.hh"
#include "vsa/ops.hh"

namespace nsbench::workloads
{

using core::OpGraph;
using core::Phase;
using core::PhaseScope;
using data::AttributeId;
using data::RuleType;
using tensor::Tensor;

namespace
{

/** Decode threshold: ~2.5 sigma of random cosine at dim 1024. */
constexpr float decodeThreshold = 0.08f;

/** Rule-score floor below which scores count as zero (sparsity). */
constexpr float scoreFloor = 0.05f;

/** Cosine clamped to [0, 1]; quasi-orthogonal noise maps near 0. */
float
simPos(const Tensor &a, const Tensor &b)
{
    return std::max(vsa::cosineSimilarity(a, b), 0.0f);
}

/** The VSA-detectable rule candidates, in a fixed order. */
struct VsaRule
{
    RuleType type;
    int delta;
};

const std::array<VsaRule, 8> vsaRules = {{
    {RuleType::Constant, 0},
    {RuleType::Progression, 1},
    {RuleType::Progression, -1},
    {RuleType::Progression, 2},
    {RuleType::Progression, -2},
    {RuleType::Arithmetic, 1},
    {RuleType::Arithmetic, -1},
    {RuleType::DistributeThree, 0},
}};

} // namespace

namespace
{

/** Builds the full codebook bundle from its own RNG stream. */
std::shared_ptr<const NvsaCodebooks>
buildCodebooks(const NvsaConfig &config, uint64_t seed)
{
    auto books = std::make_shared<NvsaCodebooks>();
    util::Rng rng(seed ^ 0x5678);
    for (AttributeId attr : data::allAttributes) {
        int domain = data::attributeDomain(attr, config.grid);
        Tensor base = vsa::unitaryVector(config.hvDim, rng);
        // Atom for value v is the (v+1)-th convolution power, so no
        // value maps to the degenerate identity impulse.
        Tensor atoms({domain, config.hvDim});
        for (int v = 0; v < domain; v++) {
            Tensor atom = vsa::convPower(base, v + 1);
            auto src = atom.data();
            for (int64_t i = 0; i < config.hvDim; i++)
                atoms(v, i) = src[static_cast<size_t>(i)];
        }
        books->attributeBooks.push_back(
            std::make_unique<vsa::Codebook>(std::move(atoms)));
        books->bases.push_back(std::move(base));
    }

    // The object-combination codebook (type x size x color): the
    // large quasi-orthogonal store behind the paper's Takeaway 4.
    int types = data::attributeDomain(AttributeId::Type, config.grid);
    int sizes = data::attributeDomain(AttributeId::Size, config.grid);
    int colors =
        data::attributeDomain(AttributeId::Color, config.grid);
    Tensor combos({types * sizes * colors, config.hvDim});
    int64_t row = 0;
    for (int t = 0; t < types; t++) {
        for (int s = 0; s < sizes; s++) {
            Tensor ts = vsa::fftCircularConvolve(
                books->attributeBooks[1]->atom(t),
                books->attributeBooks[2]->atom(s));
            for (int c = 0; c < colors; c++) {
                Tensor tsc = vsa::fftCircularConvolve(
                    ts, books->attributeBooks[3]->atom(c));
                auto src = tsc.data();
                for (int64_t i = 0; i < config.hvDim; i++)
                    combos(row, i) = src[static_cast<size_t>(i)];
                row++;
            }
        }
    }
    books->comboBook =
        std::make_unique<vsa::Codebook>(std::move(combos));
    if (config.quantizedComboBook) {
        books->quantizedCombo =
            std::make_unique<vsa::QuantizedCodebook>(
                *books->comboBook);
    }
    return books;
}

} // namespace

uint64_t
NvsaCodebooks::bytes() const
{
    uint64_t total = 0;
    for (const auto &book : attributeBooks)
        total += book->bytes();
    for (const auto &base : bases)
        total += base.bytes();
    if (comboBook)
        total += comboBook->bytes();
    if (quantizedCombo)
        total += quantizedCombo->bytes();
    return total;
}

void
NvsaWorkload::setUp(uint64_t seed)
{
    util::panicIf(!vsa::isPowerOfTwo(
                      static_cast<size_t>(config_.hvDim)),
                  "NVSA: hvDim must be a power of two");
    generator_ = std::make_unique<data::RavenGenerator>(config_.grid,
                                                        seed);
    perception_ = std::make_unique<RavenPerception>(config_.grid,
                                                    seed ^ 0x1234);

    // The codebook bundle draws from its own RNG stream (seed ^
    // 0x5678), so serving it from the precompute cache leaves the
    // generator and perception streams — and therefore every score —
    // bit-identical to a fresh build.
    std::string key =
        "nvsa/books/g" + std::to_string(config_.grid) + "/d" +
        std::to_string(config_.hvDim) + "/q" +
        std::to_string(config_.quantizedComboBook ? 1 : 0) + "/s" +
        std::to_string(seed);
    NvsaConfig config = config_;
    books_ = cache::PrecomputeCache::global()
                 .getOrBuild<NvsaCodebooks>(
                     key,
                     [&config, seed]() {
                         cache::Sized<NvsaCodebooks> out;
                         out.value = buildCodebooks(config, seed);
                         out.bytes = out.value->bytes();
                         return out;
                     })
                 .value;
}

void
NvsaWorkload::reseedEpisodes(uint64_t seed)
{
    // Only the puzzle stream restarts; perception weights and the
    // codebooks (the model) are untouched, so long-lived serve
    // replicas answer a seed-s request exactly like a fresh one.
    generator_ = std::make_unique<data::RavenGenerator>(config_.grid,
                                                        seed);
}

uint64_t
NvsaWorkload::storageBytes() const
{
    uint64_t bytes = perception_ ? perception_->storageBytes() : 0;
    if (!books_)
        return bytes;
    for (const auto &book : books_->attributeBooks)
        bytes += book->bytes();
    // A quantized combination book replaces the FP32 one in memory.
    if (books_->quantizedCombo)
        bytes += books_->quantizedCombo->bytes();
    else if (books_->comboBook)
        bytes += books_->comboBook->bytes();
    return bytes;
}

std::array<Tensor, data::numAttributes>
NvsaWorkload::encodePanel(const PanelBelief &belief,
                          bool record_sparsity)
{
    std::array<Tensor, data::numAttributes> hvs;
    for (size_t a = 0; a < data::numAttributes; a++) {
        std::string stage;
        if (record_sparsity) {
            stage = "pmf_to_vsa/" +
                    std::string(data::attributeName(
                        data::allAttributes[a]));
        }
        // NVSA sparsifies the PMF before the transform; entries
        // below 1% contribute nothing and are skipped (the Fig. 5
        // sparsity this stage records).
        hvs[a] = books_->attributeBooks[a]->encodePmf(belief.pmfs[a], stage,
                                               0.01f);
    }
    return hvs;
}

NvsaWorkload::PerceivedPuzzle
NvsaWorkload::perceivePuzzle(const data::RpmPuzzle &puzzle)
{
    // ---- Neural frontend: perceive context and candidate panels.
    PerceivedPuzzle perceived;
    perceived.answerIndex = puzzle.answerIndex;
    perceived.candidates.resize(8);
    {
        PhaseScope neural(Phase::Neural, "nvsa/perception");
        std::vector<Tensor> images;
        images.reserve(16);
        for (int i = 0; i < 8; i++) {
            images.push_back(generator_->render(
                puzzle.context[static_cast<size_t>(i)]));
        }
        for (int i = 0; i < 8; i++) {
            images.push_back(generator_->render(
                puzzle.candidates[static_cast<size_t>(i)]));
        }
        auto beliefs = perception_->perceiveBatch(images);
        for (int i = 0; i < 8; i++)
            perceived.context[static_cast<size_t>(i)] =
                std::move(beliefs[static_cast<size_t>(i)]);
        for (int i = 0; i < 8; i++)
            perceived.candidates[static_cast<size_t>(i)] =
                std::move(beliefs[static_cast<size_t>(i + 8)]);
    }
    return perceived;
}

bool
NvsaWorkload::reasonPuzzle(const PerceivedPuzzle &perceived)
{
    const std::array<PanelBelief, 8> &context_beliefs =
        perceived.context;
    const std::vector<PanelBelief> &candidate_beliefs =
        perceived.candidates;

    // ---- Symbolic backend.
    // PMF -> VSA for all context panels.
    std::array<std::array<Tensor, data::numAttributes>, 8> ctx_hv;
    {
        PhaseScope symbolic(Phase::Symbolic, "nvsa/pmf_to_vsa");
        for (int i = 0; i < 8; i++) {
            ctx_hv[static_cast<size_t>(i)] = encodePanel(
                context_beliefs[static_cast<size_t>(i)], i == 0);
        }
    }

    // Scene transduction: every panel's objects become bound
    // attribute products verified against the combination codebook —
    // the per-object vector-symbolic work that grows with task size
    // (Fig. 2c) and needs the large combination store (Takeaway 4).
    {
        PhaseScope symbolic(Phase::Symbolic, "nvsa/scene_encode");
        auto encode_scene =
            [&](const PanelBelief &belief,
                const std::array<Tensor, data::numAttributes> &hv)
            -> Tensor {
            std::vector<Tensor> objects;
            auto n_objects =
                std::max<size_t>(belief.cellBeliefs.size(), 1);
            for (size_t o = 0; o < n_objects; o++) {
                Tensor object = vsa::circularConvolve(
                    vsa::circularConvolve(hv[1], hv[2]), hv[3]);
                // Tag the object with its slot via permutation.
                Tensor placed = vsa::permuteShift(
                    object, static_cast<int64_t>(o) * 7 + 1);
                vsa::CleanupResult check =
                    books_->quantizedCombo ? books_->quantizedCombo->cleanup(object)
                                    : books_->comboBook->cleanup(object);
                (void)check;
                objects.push_back(std::move(placed));
            }
            return vsa::bundle(objects);
        };
        for (int i = 0; i < 8; i++) {
            Tensor scene = encode_scene(
                context_beliefs[static_cast<size_t>(i)],
                ctx_hv[static_cast<size_t>(i)]);
            (void)scene;
        }
        for (int i = 0; i < 8; i++) {
            auto cand_hv = encodePanel(
                candidate_beliefs[static_cast<size_t>(i)], false);
            Tensor scene = encode_scene(
                candidate_beliefs[static_cast<size_t>(i)], cand_hv);
            (void)scene;
        }
    }

    // Rule detection per attribute via algebra on rows 0 and 1.
    std::array<VsaRule, data::numAttributes> best_rules{};
    {
        PhaseScope symbolic(Phase::Symbolic, "nvsa/rule_detect");
        for (size_t a = 0; a < data::numAttributes; a++) {
            const Tensor &base = books_->bases[a];
            auto hv = [&](int row, int col) -> const Tensor & {
                return ctx_hv[static_cast<size_t>(row * 3 + col)][a];
            };
            auto shift = [&](const Tensor &h, int d) {
                Tensor step = vsa::convPower(base, d);
                return vsa::circularConvolve(h, step);
            };

            Tensor scores(
                {static_cast<int64_t>(vsaRules.size())});
            for (size_t r = 0; r < vsaRules.size(); r++) {
                const VsaRule &rule = vsaRules[r];
                float fit = 1.0f;
                switch (rule.type) {
                  case RuleType::Constant:
                    for (int row = 0; row < 2; row++) {
                        fit *= simPos(hv(row, 0), hv(row, 1)) *
                               simPos(hv(row, 1), hv(row, 2));
                    }
                    break;
                  case RuleType::Progression:
                    for (int row = 0; row < 2; row++) {
                        fit *= simPos(hv(row, 1),
                                      shift(hv(row, 0), rule.delta)) *
                               simPos(hv(row, 2),
                                      shift(hv(row, 1), rule.delta));
                    }
                    break;
                  case RuleType::Arithmetic:
                    for (int row = 0; row < 2; row++) {
                        Tensor pred;
                        if (rule.delta > 0) {
                            // E_{a+1} (*) E_{b+1} = base^{a+b+2};
                            // one inverse step lands on E_{a+b+1}.
                            pred = shift(vsa::circularConvolve(
                                             hv(row, 0), hv(row, 1)),
                                         -1);
                        } else {
                            // corr(E_{b+1}, E_{a+1}) = base^{a-b};
                            // one forward step lands on E_{a-b+1}.
                            pred = shift(vsa::circularCorrelate(
                                             hv(row, 1), hv(row, 0)),
                                         1);
                        }
                        fit *= simPos(hv(row, 2), pred);
                    }
                    break;
                  case RuleType::DistributeThree: {
                    Tensor b0 = vsa::bundle(
                        {hv(0, 0), hv(0, 1), hv(0, 2)});
                    Tensor b1 = vsa::bundle(
                        {hv(1, 0), hv(1, 1), hv(1, 2)});
                    float diversity =
                        1.0f - simPos(hv(0, 0), hv(0, 1));
                    fit = simPos(b0, b1) * diversity;
                    break;
                  }
                }
                scores(static_cast<int64_t>(r)) = fit;
            }

            // Record the rule-probability sparsity (Fig. 5's
            // "probability computation" stage).
            // Fused floor-shift + clamp (same kernel order as the
            // former clamp(addScalar(scores, -floor), 0, 1) chain);
            // scores stays intact for the argmax below.
            Tensor thresholded =
                Tensor::uninitialized(scores.shape());
            tensor::fusedMapUnary(
                "rule_threshold", thresholded, scores, 2.0,
                [](const float *pa, float *po, float *, int64_t n) {
                    util::simd::addScalar(pa, -scoreFloor, po, n);
                    util::simd::clampRange(po, 0.0f, 1.0f, po, n);
                });
            core::recordSpanSparsity(
                "prob_compute/" +
                    std::string(data::attributeName(
                        data::allAttributes[a])),
                std::span<const float>(thresholded.data()));

            best_rules[a] =
                vsaRules[static_cast<size_t>(tensor::argmaxAll(
                    scores))];
        }
    }

    // Rule execution: predict the answer hypervector per attribute,
    // then decode back to PMFs.
    std::array<Tensor, data::numAttributes> answer_pmfs;
    {
        PhaseScope symbolic(Phase::Symbolic, "nvsa/rule_exec");
        for (size_t a = 0; a < data::numAttributes; a++) {
            const Tensor &base = books_->bases[a];
            auto hv = [&](int row, int col) -> const Tensor & {
                return ctx_hv[static_cast<size_t>(row * 3 + col)][a];
            };
            auto shift = [&](const Tensor &h, int d) {
                Tensor step = vsa::convPower(base, d);
                return vsa::circularConvolve(h, step);
            };

            const VsaRule &rule = best_rules[a];
            Tensor pred;
            switch (rule.type) {
              case RuleType::Constant:
                pred = tensor::mulScalar(
                    vsa::bundle({hv(2, 0), hv(2, 1)}), 0.5f);
                break;
              case RuleType::Progression:
                pred = shift(hv(2, 1), rule.delta);
                break;
              case RuleType::Arithmetic:
                if (rule.delta > 0) {
                    pred = shift(vsa::circularConvolve(hv(2, 0),
                                                       hv(2, 1)),
                                 -1);
                } else {
                    pred = shift(vsa::circularCorrelate(hv(2, 1),
                                                        hv(2, 0)),
                                 1);
                }
                break;
              case RuleType::DistributeThree: {
                Tensor b0 =
                    vsa::bundle({hv(0, 0), hv(0, 1), hv(0, 2)});
                pred = tensor::sub(
                    b0, vsa::bundle({hv(2, 0), hv(2, 1)}));
                break;
              }
            }
            answer_pmfs[a] = books_->attributeBooks[a]->decodePmf(
                pred,
                "vsa_to_pmf/" +
                    std::string(data::attributeName(
                        data::allAttributes[a])),
                decodeThreshold);
        }
    }

    // Answer selection: probabilistic match of each candidate's
    // perceived PMFs against the predicted PMFs, plus a combination-
    // codebook verification of the winner.
    int best_candidate = 0;
    {
        PhaseScope symbolic(Phase::Symbolic, "nvsa/answer_select");
        float best_score = -1e30f;
        for (int c = 0; c < 8; c++) {
            float score = 0.0f;
            for (size_t a = 0; a < data::numAttributes; a++) {
                float match = tensor::dot(
                    answer_pmfs[a],
                    candidate_beliefs[static_cast<size_t>(c)]
                        .pmfs[a]);
                score += std::log(match + 1e-6f);
            }
            if (score > best_score) {
                best_score = score;
                best_candidate = c;
            }
        }

    }

    return best_candidate == perceived.answerIndex;
}

bool
NvsaWorkload::solvePuzzle(const data::RpmPuzzle &puzzle)
{
    return reasonPuzzle(perceivePuzzle(puzzle));
}

double
NvsaWorkload::run()
{
    util::panicIf(!generator_, "NVSA: setUp() not called");
    int correct = 0;
    for (int e = 0; e < config_.episodes; e++) {
        data::RpmPuzzle puzzle = generator_->generate();
        if (solvePuzzle(puzzle))
            correct++;
    }
    return static_cast<double>(correct) /
           static_cast<double>(config_.episodes);
}

core::StageSpec
NvsaWorkload::stageSpec(int stage) const
{
    return stage == 0
               ? core::StageSpec{"perceive", Phase::Neural}
               : core::StageSpec{"reason", Phase::Symbolic};
}

void
NvsaWorkload::runStage(int stage, core::EpisodeState &state)
{
    // Stage 0 consumes the whole episode RNG stream (puzzle
    // generation + rendering), so stage 1 is a pure function of the
    // perceived beliefs plus the immutable codebooks — the property
    // that makes cross-episode overlap byte-identical to run().
    if (stage == 0) {
        util::panicIf(!generator_, "NVSA: setUp() not called");
        auto scratch = std::make_shared<EpisodeScratch>();
        scratch->puzzles.reserve(
            static_cast<size_t>(config_.episodes));
        for (int e = 0; e < config_.episodes; e++) {
            data::RpmPuzzle puzzle = generator_->generate();
            scratch->puzzles.push_back(perceivePuzzle(puzzle));
        }
        state.scratch = std::move(scratch);
        return;
    }
    auto scratch =
        std::static_pointer_cast<EpisodeScratch>(state.scratch);
    int correct = 0;
    for (const PerceivedPuzzle &perceived : scratch->puzzles) {
        if (reasonPuzzle(perceived))
            correct++;
    }
    state.scratch.reset();
    state.score = static_cast<double>(correct) /
                  static_cast<double>(config_.episodes);
}

OpGraph
NvsaWorkload::opGraph() const
{
    OpGraph g;
    auto input = g.addNode("panel_images", Phase::Untagged);
    auto percept = g.addNode("nvsa/perception", Phase::Neural);
    auto encode = g.addNode("nvsa/pmf_to_vsa", Phase::Symbolic);
    auto scene = g.addNode("nvsa/scene_encode", Phase::Symbolic);
    auto detect = g.addNode("nvsa/rule_detect", Phase::Symbolic);
    auto exec = g.addNode("nvsa/rule_exec", Phase::Symbolic);
    auto select = g.addNode("nvsa/answer_select", Phase::Symbolic);
    auto answer = g.addNode("answer", Phase::Untagged);
    g.addEdge(input, percept);
    g.addEdge(percept, encode);
    g.addEdge(encode, scene);
    g.addEdge(scene, detect);
    g.addEdge(detect, exec);
    g.addEdge(exec, select);
    g.addEdge(percept, select); // candidate PMFs feed selection too
    g.addEdge(select, answer);
    return g;
}


} // namespace nsbench::workloads
