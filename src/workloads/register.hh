/**
 * @file
 * Explicit workload registration.
 *
 * The seven models register into the global WorkloadRegistry through
 * this function (static-initializer registration would be silently
 * dropped when linking the workloads as a static archive). Idempotent.
 */

#ifndef NSBENCH_WORKLOADS_REGISTER_HH
#define NSBENCH_WORKLOADS_REGISTER_HH

namespace nsbench::workloads
{

/** Registers all seven workloads; safe to call repeatedly. */
void registerAllWorkloads();

} // namespace nsbench::workloads

#endif // NSBENCH_WORKLOADS_REGISTER_HH
