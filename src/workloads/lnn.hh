/**
 * @file
 * The Logical Neural Network (LNN) workload.
 *
 * LNN assigns a neuron to every grounded atom and formula, carries
 * [lower, upper] truth bounds instead of activations, and runs
 * bidirectional (upward/downward) inference passes until the bounds
 * stop moving. The neural half is the vectorized weighted-Lukasiewicz
 * evaluation of formula neurons over all groundings (element-wise
 * tensor ops plus heavy gather/scatter movement — the paper's Fig. 3a
 * observation for LNN); the symbolic half is rule grounding over a
 * LUBM-like knowledge base plus the per-instance truth-bound
 * propagation logic.
 */

#ifndef NSBENCH_WORKLOADS_LNN_HH
#define NSBENCH_WORKLOADS_LNN_HH

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cache/precompute.hh"
#include "core/workload.hh"
#include "data/kbgen.hh"
#include "logic/bounds.hh"
#include "logic/grounding.hh"

namespace nsbench::workloads
{

/** LNN configuration knobs. */
struct LnnConfig
{
    int departments = 4;        ///< KB scale.
    int professorsPerDept = 4;
    int studentsPerDept = 48;
    int coursesPerProf = 2;
    int maxPasses = 8;          ///< Bidirectional inference cap.
};

/**
 * End-to-end LNN theorem proving over the university ontology.
 */
class LnnWorkload : public core::Workload
{
  public:
    LnnWorkload() = default;
    explicit LnnWorkload(const LnnConfig &config) : config_(config) {}

    std::string name() const override { return "LNN"; }
    core::Paradigm
    paradigm() const override
    {
        return core::Paradigm::NeuroSymbolicToNeuro;
    }
    std::string
    taskDescription() const override
    {
        return "truth-bound theorem proving on a university KB";
    }

    void setUp(uint64_t seed) override;
    double run() override;
    /** run() re-evaluates the KB built at setUp(); nothing to reseed. */
    void reseedEpisodes(uint64_t) override {}
    bool seedSensitive() const override { return false; }
    /** Two stages: symbolic grounding, then bidirectional passes. */
    int stageCount() const override { return 2; }
    core::StageSpec stageSpec(int stage) const override;
    void runStage(int stage, core::EpisodeState &state) override;
    core::OpGraph opGraph() const override;
    uint64_t storageBytes() const override;

    const LnnConfig &config() const { return config_; }

  private:
    LnnConfig config_;
    uint64_t seed_ = 0;

    /** Precompute-cache key of the grounded formula graph. */
    std::string groundingKey() const;

    /**
     * Grounding output carried into the inference stage: the shared
     * immutable index plus this episode's mutable neuron state.
     */
    struct GroundState
    {
        cache::CacheHandle<logic::GroundedIndex> handle;
        std::vector<logic::TruthBounds> bounds;
        uint64_t graphBytes = 0;
    };

    /** Symbolic grounding: builds (or cache-serves) the index. */
    GroundState groundKb();

    /** Bidirectional passes over @p gs, then recall x precision. */
    double inferAndScore(GroundState &gs);

    std::unique_ptr<data::UniversityKb> university_;
    std::set<logic::GroundAtom> expectedSenior_;
};

} // namespace nsbench::workloads

#endif // NSBENCH_WORKLOADS_LNN_HH
