#include "workloads/lnn.hh"

#include <algorithm>
#include <set>

#include "cache/precompute.hh"
#include "core/profiler.hh"
#include "logic/grounding.hh"
#include "tensor/fused.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace nsbench::workloads
{

using core::OpCategory;
using core::OpGraph;
using core::Phase;
using core::PhaseScope;
using core::ScopedOp;
using logic::GroundAtom;
using logic::TruthBounds;
using tensor::Tensor;

void
LnnWorkload::setUp(uint64_t seed)
{
    seed_ = seed;
    university_ = std::make_unique<data::UniversityKb>(
        data::makeUniversityKb(config_.departments,
                               config_.professorsPerDept,
                               config_.studentsPerDept,
                               config_.coursesPerProf, seed));
    // Ground truth from classical saturation on a scratch copy,
    // computed here so run() spends no unattributed time on scoring.
    logic::KnowledgeBase truth = university_->kb;
    truth.forwardChain();
    expectedSenior_ = {
        truth.facts(university_->seniorStudent).begin(),
        truth.facts(university_->seniorStudent).end()};
}

uint64_t
LnnWorkload::storageBytes() const
{
    return university_ ? university_->kb.factBytes() : 0;
}

std::string
LnnWorkload::groundingKey() const
{
    // The grounded index is pure in the KB, which is pure in the
    // generator knobs and the model seed.
    return "lnn/grounded/d" + std::to_string(config_.departments) +
           "/p" + std::to_string(config_.professorsPerDept) + "/s" +
           std::to_string(config_.studentsPerDept) + "/c" +
           std::to_string(config_.coursesPerProf) + "/m" +
           std::to_string(seed_);
}

LnnWorkload::GroundState
LnnWorkload::groundKb()
{
    // ---- Symbolic: grounding. Saturate to enumerate candidate
    // atoms, then ground every rule into formula-graph instances.
    // Memoized: the index is immutable and pure in the model seed,
    // so with the precompute cache on, replicas and repeat runs
    // share one build.
    GroundState gs;
    {
        PhaseScope symbolic(Phase::Symbolic, "lnn/grounding");
        gs.handle =
            cache::PrecomputeCache::global()
                .getOrBuild<logic::GroundedIndex>(
                    groundingKey(), [this]() {
                        cache::Sized<logic::GroundedIndex> out;
                        out.value =
                            std::make_shared<logic::GroundedIndex>(
                                logic::buildGroundedIndex(
                                    university_->kb));
                        out.bytes = out.value->graphBytes();
                        return out;
                    });
    }
    // Per-run mutable neuron state; the shared index stays const.
    gs.bounds = gs.handle->initialBounds;

    // Account the grounded formula graph as symbolic working-set
    // memory (it is the LNN's intermediate state) — on hits as well
    // as builds, so logical peaks match the uncached run exactly.
    gs.graphBytes = gs.handle->graphBytes();
    {
        PhaseScope symbolic(Phase::Symbolic, "lnn/grounding");
        core::globalProfiler().recordAlloc(gs.graphBytes);
    }
    return gs;
}

double
LnnWorkload::inferAndScore(GroundState &gs)
{
    const logic::GroundedIndex &g = *gs.handle;
    std::vector<TruthBounds> &bounds = gs.bounds;
    uint64_t graph_bytes = gs.graphBytes;

    auto n_atoms = static_cast<int64_t>(bounds.size());

    // ---- Bidirectional inference passes.
    for (int pass = 0; pass < config_.maxPasses; pass++) {
        float max_change = 0.0f;

        // Pack current bounds into tensors (the neuron state).
        Tensor lower({n_atoms, 1});
        Tensor upper({n_atoms, 1});
        {
            PhaseScope neural(Phase::Neural, "lnn/state_pack");
            ScopedOp op("bound_pack", OpCategory::DataMovement);
            for (int64_t i = 0; i < n_atoms; i++) {
                lower(i, 0) = bounds[static_cast<size_t>(i)].lower;
                upper(i, 0) = bounds[static_cast<size_t>(i)].upper;
            }
            op.setBytesRead(static_cast<double>(n_atoms) * 8.0);
            op.setBytesWritten(static_cast<double>(n_atoms) * 8.0);
        }

        for (const auto &group : g.byRule) {
            if (group.empty())
                continue;
            auto k = static_cast<int64_t>(group[0].body.size());
            auto inst_n = static_cast<int64_t>(group.size());

            // ---- Neural: vectorized weighted-Lukasiewicz AND over
            // every instance of this rule (upward direction).
            Tensor and_lower, and_upper, body_lower_mat,
                body_upper_mat;
            {
                PhaseScope neural(Phase::Neural, "lnn/upward_eval");
                std::vector<Tensor> lo_cols, hi_cols;
                for (int64_t j = 0; j < k; j++) {
                    std::vector<int64_t> rows;
                    rows.reserve(static_cast<size_t>(inst_n));
                    for (const auto &inst : group)
                        rows.push_back(
                            inst.body[static_cast<size_t>(j)]);
                    lo_cols.push_back(tensor::gatherRows(lower, rows));
                    hi_cols.push_back(tensor::gatherRows(upper, rows));
                }
                body_lower_mat = tensor::concat(lo_cols, 1);
                body_upper_mat = tensor::concat(hi_cols, 1);
                float bias = -static_cast<float>(k - 1);
                // Fused bias + clamp over the row sums: same kernels
                // in the same order as the former
                // clamp(addScalar(sumAxis(...), bias), 0, 1) chain,
                // without the two intermediate tensors.
                auto bias_clamp = [bias](Tensor &t) {
                    tensor::fusedMapUnary(
                        "lukasiewicz_and", t, t, 2.0,
                        [bias](const float *a, float *out, float *,
                               int64_t n) {
                            util::simd::addScalar(a, bias, out, n);
                            util::simd::clampRange(out, 0.0f, 1.0f,
                                                   out, n);
                        });
                };
                and_lower = tensor::sumAxis(body_lower_mat, 1);
                bias_clamp(and_lower);
                and_upper = tensor::sumAxis(body_upper_mat, 1);
                bias_clamp(and_upper);
            }

            // ---- Symbolic: upward bound tightening at the heads.
            // Updates dispatch in fixed-size chunks, the granularity
            // a per-node message-passing implementation batches at.
            {
                PhaseScope symbolic(Phase::Symbolic,
                                    "lnn/upward_update");
                constexpr int64_t chunk = 32;
                for (int64_t c0 = 0; c0 < inst_n; c0 += chunk) {
                    ScopedOp op("bound_update", OpCategory::Other);
                    int64_t c1 = std::min(c0 + chunk, inst_n);
                    for (int64_t i = c0; i < c1; i++) {
                        auto &head = bounds[static_cast<size_t>(
                            group[static_cast<size_t>(i)].head)];
                        float new_lower =
                            std::max(head.lower, and_lower.flat(i));
                        max_change = std::max(
                            max_change, new_lower - head.lower);
                        head.lower = new_lower;
                        util::panicIf(head.contradictory(),
                                      "LNN: contradictory bounds");
                    }
                    op.setFlops(static_cast<double>(c1 - c0) * 2.0);
                    op.setBytesRead(static_cast<double>(c1 - c0) *
                                    8.0);
                    op.setBytesWritten(
                        static_cast<double>(c1 - c0) * 4.0);
                }
            }

            // ---- Neural: downward candidate bounds, computed for
            // all body positions at once. With the implication true,
            // AND(body) <= head.upper, so
            // x_j <= head.upper + (k-1) - sum_{i != j} L_i.
            Tensor cand_all;
            {
                PhaseScope neural(Phase::Neural,
                                  "lnn/downward_eval");
                std::vector<int64_t> heads;
                heads.reserve(static_cast<size_t>(inst_n));
                for (const auto &inst : group)
                    heads.push_back(inst.head);
                Tensor head_upper = tensor::gatherRows(upper, heads);
                Tensor sum_lower =
                    tensor::sumAxis(body_lower_mat, 1)
                        .reshaped({inst_n, 1});
                Tensor ones_row = Tensor::ones({1, k});
                // Broadcast [inst,1] -> [inst,k] via rank-1 matmuls.
                Tensor others =
                    tensor::matmul(sum_lower, ones_row);
                tensor::subInPlace(others, body_lower_mat);
                Tensor head_mat =
                    tensor::matmul(head_upper, ones_row);
                // Fused (head + (k-1)) - others, clamped to [0, 1]:
                // identical kernel order to the former addScalar /
                // sub / clamp chain, one pass, no intermediates.
                float slack = static_cast<float>(k - 1);
                tensor::fusedMap(
                    "downward_cand", head_mat, head_mat, others, 3.0,
                    [slack](const float *a, const float *b,
                            float *out, float *scratch, int64_t n) {
                        util::simd::addScalar(a, slack, scratch, n);
                        util::simd::sub(scratch, b, out, n);
                        util::simd::clampRange(out, 0.0f, 1.0f, out,
                                               n);
                    });
                cand_all = head_mat;
            }

            // ---- Symbolic: scatter-min into atom uppers, chunked
            // like the upward updates.
            {
                PhaseScope symbolic(Phase::Symbolic,
                                    "lnn/downward_update");
                constexpr int64_t chunk = 32;
                for (int64_t c0 = 0; c0 < inst_n; c0 += chunk) {
                    ScopedOp op("bound_update", OpCategory::Other);
                    int64_t c1 = std::min(c0 + chunk, inst_n);
                    for (int64_t i = c0; i < c1; i++) {
                        for (int64_t j = 0; j < k; j++) {
                            auto &atom = bounds[static_cast<size_t>(
                                group[static_cast<size_t>(i)]
                                    .body[static_cast<size_t>(j)])];
                            float new_upper = std::min(
                                atom.upper, cand_all(i, j));
                            // Base facts are observations; keep them.
                            if (atom.lower >= 1.0f)
                                new_upper = atom.upper;
                            max_change = std::max(
                                max_change, atom.upper - new_upper);
                            atom.upper = new_upper;
                        }
                    }
                    op.setFlops(static_cast<double>((c1 - c0) * k) *
                                2.0);
                    op.setBytesRead(
                        static_cast<double>((c1 - c0) * k) * 8.0);
                    op.setBytesWritten(
                        static_cast<double>((c1 - c0) * k) * 4.0);
                }
            }
        }

        if (max_change < 1e-6f)
            break;
    }

    core::globalProfiler().recordFree(graph_bytes);

    // ---- Score: recall x precision of proven seniorStudent facts.
    const std::set<GroundAtom> &expected = expectedSenior_;

    size_t proven = 0, proven_correct = 0;
    for (const auto &[atom, id] : g.atomIds) {
        if (atom.predicate != university_->seniorStudent)
            continue;
        if (bounds[id].isTrue()) {
            proven++;
            if (expected.count(atom))
                proven_correct++;
        }
    }
    double recall =
        expected.empty()
            ? 1.0
            : static_cast<double>(proven_correct) /
                  static_cast<double>(expected.size());
    double precision =
        proven == 0 ? 0.0
                    : static_cast<double>(proven_correct) /
                          static_cast<double>(proven);
    return expected.empty() ? 1.0 : recall * precision;
}

double
LnnWorkload::run()
{
    util::panicIf(!university_, "LNN: setUp() not called");
    GroundState gs = groundKb();
    return inferAndScore(gs);
}

core::StageSpec
LnnWorkload::stageSpec(int stage) const
{
    // The inference stage is labeled Neural: the vectorized
    // upward/downward Lukasiewicz evaluation dominates it, while the
    // grounding stage is pure symbolic rule instantiation.
    return stage == 0
               ? core::StageSpec{"ground", Phase::Symbolic}
               : core::StageSpec{"infer", Phase::Neural};
}

void
LnnWorkload::runStage(int stage, core::EpisodeState &state)
{
    // LNN is seed-insensitive: no episode RNG exists, so both stages
    // are pure in the immutable model and the handed-off GroundState.
    if (stage == 0) {
        util::panicIf(!university_, "LNN: setUp() not called");
        state.scratch =
            std::make_shared<GroundState>(groundKb());
        return;
    }
    auto gs = std::static_pointer_cast<GroundState>(state.scratch);
    state.score = inferAndScore(*gs);
    state.scratch.reset();
}

OpGraph
LnnWorkload::opGraph() const
{
    OpGraph g;
    auto kb_in = g.addNode("knowledge_base", Phase::Untagged);
    auto ground = g.addNode("lnn/grounding", Phase::Symbolic);
    auto pack = g.addNode("lnn/state_pack", Phase::Neural);
    auto up_eval = g.addNode("lnn/upward_eval", Phase::Neural);
    auto up_update = g.addNode("lnn/upward_update", Phase::Symbolic);
    auto down_eval = g.addNode("lnn/downward_eval", Phase::Neural);
    auto down_update =
        g.addNode("lnn/downward_update", Phase::Symbolic);
    auto verdict = g.addNode("proof_bounds", Phase::Untagged);
    g.addEdge(kb_in, ground);
    g.addEdge(ground, pack);
    g.addEdge(pack, up_eval);
    g.addEdge(up_eval, up_update);
    g.addEdge(up_update, down_eval);
    g.addEdge(down_eval, down_update);
    g.addEdge(down_update, verdict);
    return g;
}


} // namespace nsbench::workloads
