/**
 * @file
 * The Probabilistic Abduction and Execution (PrAE) learner workload.
 *
 * Shares NVSA's neural perception frontend, but the symbolic backend
 * performs the computation NVSA's vector algebra replaces: a scene
 * inference engine aggregates object-level distributions into panel
 * PMFs, rule abduction exhaustively scores every candidate rule by
 * summing joint probabilities over all (a1, a2) value pairs, and the
 * execution engine generates the answer PMF by posterior-weighted
 * exhaustive enumeration. The paper contrasts exactly these two
 * backends (Sec. III-D vs III-H).
 */

#ifndef NSBENCH_WORKLOADS_PRAE_HH
#define NSBENCH_WORKLOADS_PRAE_HH

#include <array>
#include <memory>
#include <vector>

#include "core/workload.hh"
#include "data/raven.hh"
#include "workloads/perception.hh"

namespace nsbench::workloads
{

/** PrAE configuration knobs. */
struct PraeConfig
{
    int grid = 2;     ///< RPM panel grid size.
    int episodes = 6; ///< Puzzles per profiled run.
};

/**
 * The abduction engine's enumerated rule tables: candidate rules
 * plus predicted-value maps per attribute. Pure in the grid size
 * alone (no seed enters their construction), so one instance is
 * shareable read-only across every replica and seed via the
 * precompute cache.
 */
struct PraeRuleTables
{
    struct Table
    {
        std::vector<data::AttributeRule> rules;
        /** apply[r][a1 * domain + a2] = a3 or -1. */
        std::vector<std::vector<int>> apply;
        int domain = 0;
    };
    std::array<Table, data::numAttributes> tables;

    /** Resident bytes of the apply maps. */
    uint64_t bytes() const;
};

/**
 * End-to-end PrAE: perception -> scene inference -> probabilistic
 * abduction -> probabilistic execution -> answer selection.
 */
class PraeWorkload : public core::Workload
{
  public:
    PraeWorkload() = default;
    explicit PraeWorkload(const PraeConfig &config) : config_(config) {}

    std::string name() const override { return "PrAE"; }
    core::Paradigm
    paradigm() const override
    {
        return core::Paradigm::NeuroPipeSymbolic;
    }
    std::string
    taskDescription() const override
    {
        return "spatial-temporal reasoning via probabilistic "
               "abduction/execution";
    }

    void setUp(uint64_t seed) override;
    double run() override;
    /** Resets the puzzle generator only; rule tables stay. */
    void reseedEpisodes(uint64_t seed) override;
    /** Two stages: neural perception, then symbolic abduction. */
    int stageCount() const override { return 2; }
    core::StageSpec stageSpec(int stage) const override;
    void runStage(int stage, core::EpisodeState &state) override;
    core::OpGraph opGraph() const override;
    uint64_t storageBytes() const override;

    const PraeConfig &config() const { return config_; }

  private:
    PraeConfig config_;
    std::unique_ptr<data::RavenGenerator> generator_;
    std::unique_ptr<RavenPerception> perception_;
    /** Shared immutable rule tables (possibly cache-served). */
    std::shared_ptr<const PraeRuleTables> ruleTables_;

    /** Perception output for one puzzle, carried between stages. */
    struct PerceivedPuzzle
    {
        std::array<PanelBelief, 8> context;
        std::vector<PanelBelief> candidates;
        int answerIndex = 0;
    };

    /** Pipeline handoff: all of one episode's perceived puzzles. */
    struct EpisodeScratch
    {
        std::vector<PerceivedPuzzle> puzzles;
    };

    /** Neural frontend: renders and perceives one puzzle's panels. */
    PerceivedPuzzle perceivePuzzle(const data::RpmPuzzle &puzzle);

    /**
     * Symbolic backend (mutates the beliefs during scene inference);
     * true when the selected candidate is the answer.
     */
    bool reasonPuzzle(PerceivedPuzzle &perceived);

    bool solvePuzzle(const data::RpmPuzzle &puzzle);
};

} // namespace nsbench::workloads

#endif // NSBENCH_WORKLOADS_PRAE_HH
