#include "workloads/vsait.hh"

#include <algorithm>

#include "core/profiler.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "vsa/ops.hh"

namespace nsbench::workloads
{

using core::OpGraph;
using core::Phase;
using core::PhaseScope;
using data::ImageDomain;
using data::SemanticImage;
using tensor::Tensor;

void
VsaitWorkload::setUp(uint64_t seed)
{
    util::panicIf(config_.imageSize % config_.patch != 0,
                  "VSAIT: patch must divide imageSize");
    rng_ = std::make_unique<util::Rng>(seed);

    // Feature extractor and generator convs (the neural half; real
    // VSAIT pairs a VGG-style extractor with a GAN generator, so the
    // stacks here are several blocks deep).
    extractor_ = std::make_unique<nn::Sequential>();
    int64_t ch = 1;
    for (int64_t out : {8, 8, 16, 16}) {
        extractor_->add(std::make_unique<nn::Conv2dLayer>(ch, out, 3,
                                                          *rng_, 1,
                                                          1));
        extractor_->add(std::make_unique<nn::ActivationLayer>(
            nn::Activation::Relu));
        ch = out;
    }

    generator_ = std::make_unique<nn::Sequential>();
    ch = 1;
    for (int64_t out : {8, 8, 8, 1}) {
        generator_->add(std::make_unique<nn::Conv2dLayer>(ch, out, 3,
                                                          *rng_, 1,
                                                          1));
        if (out != 1) {
            generator_->add(std::make_unique<nn::ActivationLayer>(
                nn::Activation::Relu));
        }
        ch = out;
    }

    // Random LSH projection into the hyperspace.
    lshProjection_ = Tensor::randn(
        {config_.hvDim, config_.patch * config_.patch}, *rng_);
}

void
VsaitWorkload::reseedEpisodes(uint64_t seed)
{
    // Only the episode image stream restarts (salted so it is
    // decoupled from the weight-init draws setUp takes from the
    // same seed); convs and the LSH projection are untouched.
    rng_ = std::make_unique<util::Rng>(seed ^ 0xE9150DE5ULL);
}

uint64_t
VsaitWorkload::storageBytes() const
{
    uint64_t bytes = lshProjection_.empty() ? 0
                                            : lshProjection_.bytes();
    if (extractor_)
        bytes += extractor_->paramBytes();
    if (generator_)
        bytes += generator_->paramBytes();
    return bytes;
}

Tensor
VsaitWorkload::extractPatches(const Tensor &image) const
{
    int64_t size = config_.imageSize;
    int64_t p = config_.patch;
    int64_t per_side = size / p;
    Tensor patches({per_side * per_side, p * p});
    for (int64_t pr = 0; pr < per_side; pr++) {
        for (int64_t pc = 0; pc < per_side; pc++) {
            for (int64_t y = 0; y < p; y++) {
                for (int64_t x = 0; x < p; x++) {
                    patches(pr * per_side + pc, y * p + x) =
                        image(0, pr * p + y, pc * p + x);
                }
            }
        }
    }
    return patches;
}

std::vector<int>
VsaitWorkload::patchLabels(const SemanticImage &img) const
{
    int64_t p = config_.patch;
    int64_t per_side = img.size / p;
    std::vector<int> labels;
    labels.reserve(static_cast<size_t>(per_side * per_side));
    for (int64_t pr = 0; pr < per_side; pr++) {
        for (int64_t pc = 0; pc < per_side; pc++) {
            std::array<int, 3> counts{};
            for (int64_t y = 0; y < p; y++) {
                for (int64_t x = 0; x < p; x++) {
                    int label = img.labels[static_cast<size_t>(
                        (pr * p + y) * img.size + pc * p + x)];
                    counts[static_cast<size_t>(label)]++;
                }
            }
            labels.push_back(static_cast<int>(
                std::max_element(counts.begin(), counts.end()) -
                counts.begin()));
        }
    }
    return labels;
}

Tensor
VsaitWorkload::hashPatches(const Tensor &patches) const
{
    // LSH: sign of a random projection, batched as one MatMul.
    Tensor projected = tensor::matmul(
        patches, tensor::transpose2d(lshProjection_));
    return tensor::sign(projected);
}

double
VsaitWorkload::translateOnce()
{
    SemanticImage source =
        data::makeDomainImage(ImageDomain::Source, config_.imageSize,
                              *rng_);
    SemanticImage target =
        data::makeDomainImage(ImageDomain::Target, config_.imageSize,
                              *rng_);

    // ---- Neural: feature extraction + generator pass.
    {
        PhaseScope neural(Phase::Neural, "vsait/feature_extract");
        int64_t s = config_.imageSize;
        Tensor src = tensor::transfer(source.pixels, "h2d")
                         .reshaped({1, 1, s, s});
        Tensor tgt = tensor::transfer(target.pixels, "h2d")
                         .reshaped({1, 1, s, s});
        Tensor f_src = extractor_->forward(src);
        Tensor f_tgt = extractor_->forward(tgt);
        Tensor generated = generator_->forward(src);
        (void)f_src;
        (void)f_tgt;
        (void)generated;
    }

    // ---- Symbolic: hyperspace mapping, style unbind/bind, cleanup.
    std::vector<int64_t> matches;
    {
        PhaseScope symbolic(Phase::Symbolic, "vsait/hyperspace");
        Tensor src_patches = extractPatches(source.pixels);
        Tensor tgt_patches = extractPatches(target.pixels);
        Tensor src_hv = hashPatches(src_patches);
        Tensor tgt_hv = hashPatches(tgt_patches);
        int64_t n = src_hv.size(0);

        auto hv_row = [&](const Tensor &mat, int64_t r) {
            return tensor::slice(mat, 0, r, 1)
                .reshaped({config_.hvDim});
        };

        // Domain style vectors: majority bundles over patch HVs.
        std::vector<Tensor> src_rows, tgt_rows;
        for (int64_t r = 0; r < n; r++) {
            src_rows.push_back(hv_row(src_hv, r));
            tgt_rows.push_back(hv_row(tgt_hv, r));
        }
        Tensor src_style = vsa::bundleMajority(src_rows);
        Tensor tgt_style = vsa::bundleMajority(tgt_rows);

        // Target-patch cleanup memory.
        vsa::Codebook target_book(tgt_hv.clone());

        // Translate each source patch: strip source style, apply
        // target style, clean up to the nearest real target patch.
        PhaseScope matching(Phase::Symbolic, "vsait/matching");
        matches.reserve(static_cast<size_t>(n));
        for (int64_t r = 0; r < n; r++) {
            Tensor content = vsa::unbind(src_rows[static_cast<size_t>(
                                             r)],
                                         src_style);
            Tensor translated = vsa::bind(content, tgt_style);
            matches.push_back(target_book.cleanup(translated).index);
        }
    }

    // ---- Score: semantic consistency across translation.
    std::vector<int> src_labels = patchLabels(source);
    std::vector<int> tgt_labels = patchLabels(target);
    size_t consistent = 0;
    for (size_t r = 0; r < matches.size(); r++) {
        if (src_labels[r] ==
            tgt_labels[static_cast<size_t>(matches[r])]) {
            consistent++;
        }
    }
    return matches.empty()
               ? 0.0
               : static_cast<double>(consistent) /
                     static_cast<double>(matches.size());
}

double
VsaitWorkload::run()
{
    util::panicIf(!rng_, "VSAIT: setUp() not called");
    double total = 0.0;
    for (int e = 0; e < config_.episodes; e++)
        total += translateOnce();
    return total / static_cast<double>(config_.episodes);
}

OpGraph
VsaitWorkload::opGraph() const
{
    OpGraph g;
    auto input = g.addNode("source+target_images", Phase::Untagged);
    auto extract = g.addNode("vsait/feature_extract", Phase::Neural);
    auto hash = g.addNode("vsait/hyperspace", Phase::Symbolic);
    auto match = g.addNode("vsait/matching", Phase::Symbolic);
    auto output = g.addNode("translated_image", Phase::Untagged);
    g.addEdge(input, extract);
    g.addEdge(extract, hash);
    g.addEdge(hash, match);
    g.addEdge(match, output);
    return g;
}


} // namespace nsbench::workloads
