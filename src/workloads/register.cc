#include "workloads/register.hh"

#include <memory>

#include "core/workload.hh"
#include "workloads/lnn.hh"
#include "workloads/ltn.hh"
#include "workloads/nlm.hh"
#include "workloads/nvsa.hh"
#include "workloads/prae.hh"
#include "workloads/vsait.hh"
#include "workloads/zeroc.hh"

namespace nsbench::workloads
{

void
registerAllWorkloads()
{
    static bool done = false;
    if (done)
        return;
    done = true;

    auto &registry = core::WorkloadRegistry::global();
    registry.add("LNN", [] { return std::make_unique<LnnWorkload>(); });
    registry.add("LTN", [] { return std::make_unique<LtnWorkload>(); });
    registry.add("NVSA",
                 [] { return std::make_unique<NvsaWorkload>(); });
    registry.add("NLM", [] { return std::make_unique<NlmWorkload>(); });
    registry.add("VSAIT",
                 [] { return std::make_unique<VsaitWorkload>(); });
    registry.add("ZeroC",
                 [] { return std::make_unique<ZerocWorkload>(); });
    registry.add("PrAE",
                 [] { return std::make_unique<PraeWorkload>(); });
}

} // namespace nsbench::workloads
