#include "net/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>

#include "net/translate.hh"
#include "util/failpoint.hh"
#include "util/logging.hh"

namespace nsbench::net
{

namespace
{

using util::warn;
using util::failpoints::sites::kNetBackendConnect;

/** Blocking write of the whole buffer; false on any hard error. */
bool
sendAll(int fd, const uint8_t *data, size_t size)
{
    size_t sent = 0;
    while (sent < size) {
        ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

/** Sets the socket receive timeout (0 seconds clears it). */
void
setRecvTimeout(int fd, double seconds)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

} // namespace

uint32_t
encodeDeadlineUs(serve::TimePoint deadline, serve::TimePoint now)
{
    if (deadline == serve::noDeadline())
        return 0;
    auto remaining =
        std::chrono::duration_cast<std::chrono::microseconds>(
            deadline - now)
            .count();
    // An already-expired deadline still crosses the wire (as the
    // minimum budget) so the rejection is the server's, matching
    // in-process submit semantics.
    return remaining > 0
               ? static_cast<uint32_t>(
                     std::min<long long>(remaining, 0xffffffffLL))
               : 1;
}

Client::Client(const ClientOptions &options) : options_(options) {}

Client::~Client()
{
    close();
    if (reader_.joinable())
        reader_.join();
    if (retiredReader_.joinable())
        retiredReader_.join();
}

int
Client::dial(uint16_t *ackedVersion)
{
    const std::string host =
        options_.host == "localhost" ? "127.0.0.1" : options_.host;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        warn("net: bad server address '" + options_.host + "'");
        return -1;
    }

    double backoff = options_.backoffInitialSeconds;
    int attempts = std::max(1, options_.connectAttempts);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
            backoff = std::min(backoff * 2.0,
                               options_.backoffMaxSeconds);
        }

        auto attemptFailed = [this] {
            std::lock_guard<std::mutex> lock(statsMu_);
            stats_.connectFailures++;
        };

        if (NSBENCH_FAILPOINT(kNetBackendConnect)) {
            attemptFailed();
            continue;
        }

        int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            attemptFailed();
            continue;
        }
        int rc;
        do {
            rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr));
        } while (rc < 0 && errno == EINTR);
        if (rc < 0) {
            ::close(fd);
            attemptFailed();
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        // Handshake: Hello out, HelloAck back, bounded by a receive
        // timeout so a wedged server cannot hang the dialer.
        std::vector<uint8_t> hello;
        wire::encodeHello(wire::HelloFrame{}, &hello);
        bool ok = sendAll(fd, hello.data(), hello.size());
        if (ok) {
            setRecvTimeout(fd, options_.handshakeTimeoutSeconds);
            std::vector<uint8_t> buf;
            ok = false;
            while (true) {
                uint8_t chunk[256];
                ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
                if (n <= 0) {
                    if (n < 0 && errno == EINTR)
                        continue;
                    break; // Timeout, EOF or error: attempt fails.
                }
                buf.insert(buf.end(), chunk, chunk + n);
                wire::Frame frame;
                wire::DecodeResult result =
                    wire::tryDecode(buf.data(), buf.size(), &frame);
                if (result.status == wire::DecodeStatus::NeedMore)
                    continue;
                // The server acks the version the connection will
                // speak: any release in [kMinVersion, kVersion] is
                // compatible (new frame types are only sent to peers
                // that acked a version defining them).
                ok = result.status == wire::DecodeStatus::Ok &&
                     frame.type == wire::FrameType::HelloAck &&
                     frame.hello.magic == wire::kMagic &&
                     frame.hello.version >= wire::kMinVersion &&
                     frame.hello.version <= wire::kVersion;
                if (ok && ackedVersion)
                    *ackedVersion = frame.hello.version;
                break;
            }
            if (ok)
                setRecvTimeout(fd, 0.0);
        }
        if (!ok) {
            ::close(fd);
            attemptFailed();
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(statsMu_);
            stats_.connects++;
        }
        return fd;
    }
    return -1;
}

bool
Client::connect()
{
    // connectMu_ (== sendMu_? no: its own) serializes dialers so a
    // burst of submits on a dead connection dials once, not N times.
    // Thread objects reader_/retiredReader_ are only touched here,
    // in close() and in the destructor — never under mu_, so joining
    // cannot deadlock with a reader stuck in disconnect().
    std::lock_guard<std::mutex> dialLock(connectMu_);
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (fd_ >= 0)
            return true;
    }
    if (retiredReader_.joinable())
        retiredReader_.join();
    if (reader_.joinable()) {
        if (reader_.get_id() == std::this_thread::get_id())
            retiredReader_ = std::move(reader_); // Joined next time.
        else
            reader_.join();
    }
    uint16_t acked = 0;
    int fd = dial(&acked);
    if (fd < 0)
        return false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        fd_ = fd;
        peerVersion_ = acked;
        generation_++;
    }
    reader_ = std::thread([this, fd] { readerLoop(fd); });
    return true;
}

bool
Client::connected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return fd_ >= 0;
}

void
Client::close()
{
    std::lock_guard<std::mutex> dialLock(connectMu_);
    int fd;
    {
        std::lock_guard<std::mutex> lock(mu_);
        fd = fd_;
    }
    if (fd >= 0)
        ::shutdown(fd, SHUT_RDWR); // Wakes the reader; it tears down.
    if (reader_.joinable() &&
        reader_.get_id() != std::this_thread::get_id())
        reader_.join();
}

serve::RequestStatus
Client::submit(const std::string &workload, uint64_t episodeSeed,
               serve::Callback done, serve::TimePoint deadline)
{
    return submitSeeded(workload, episodeSeed, options_.modelSeed,
                        std::move(done), deadline);
}

serve::RequestStatus
Client::submitSeeded(const std::string &workload,
                     uint64_t episodeSeed, uint64_t modelSeed,
                     serve::Callback done, serve::TimePoint deadline,
                     uint64_t *wireId)
{
    if (wireId)
        *wireId = 0;
    if (!connect())
        return serve::RequestStatus::RejectedUnreachable;

    wire::RequestFrame request;
    request.episodeSeed = episodeSeed;
    request.modelSeed = modelSeed;
    request.workload = workload;
    request.deadlineUs =
        encodeDeadlineUs(deadline, serve::ServeClock::now());

    int fd;
    uint64_t generation;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (fd_ < 0)
            return serve::RequestStatus::RejectedUnreachable;
        request.id = nextId_++;
        pending_[request.id] = std::move(done);
        fd = fd_;
        generation = generation_;
    }

    std::vector<uint8_t> encoded;
    wire::encodeRequest(request, &encoded);
    bool sent;
    {
        std::lock_guard<std::mutex> lock(sendMu_);
        sent = sendAll(fd, encoded.data(), encoded.size());
    }
    if (!sent) {
        // Wake the reader so the connection is torn down properly.
        ::shutdown(fd, SHUT_RDWR);
        std::lock_guard<std::mutex> lock(mu_);
        // If the reader already failed the callback (disconnect won
        // the race) the request terminated; report it admitted.
        bool removed = generation == generation_ &&
                       pending_.erase(request.id) > 0;
        return removed ? serve::RequestStatus::RejectedUnreachable
                       : serve::RequestStatus::Ok;
    }
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        stats_.sent++;
    }
    if (wireId)
        *wireId = request.id;
    return serve::RequestStatus::Ok;
}

void
Client::cancel(uint64_t wireId)
{
    if (wireId == 0)
        return;
    int fd;
    {
        std::lock_guard<std::mutex> lock(mu_);
        // A v1 peer never acked the Cancel frame type; sending one
        // would read as garbage and close the connection. The losing
        // request simply runs to completion there.
        if (fd_ < 0 || peerVersion_ < 2 || !pending_.count(wireId))
            return;
        fd = fd_;
    }
    std::vector<uint8_t> encoded;
    wire::encodeCancel(wire::CancelFrame{wireId}, &encoded);
    bool sent;
    {
        std::lock_guard<std::mutex> lock(sendMu_);
        sent = sendAll(fd, encoded.data(), encoded.size());
    }
    if (!sent) {
        ::shutdown(fd, SHUT_RDWR); // Reader tears the connection down.
        return;
    }
    std::lock_guard<std::mutex> lock(statsMu_);
    stats_.cancelsSent++;
}

uint16_t
Client::peerVersion() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return fd_ >= 0 ? peerVersion_ : 0;
}

serve::Response
Client::call(const std::string &workload, uint64_t episodeSeed,
             serve::TimePoint deadline)
{
    struct Waiter
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        serve::Response response;
    };
    auto waiter = std::make_shared<Waiter>();
    uint64_t wire_id = 0;
    serve::RequestStatus status = submitSeeded(
        workload, episodeSeed, options_.modelSeed,
        [waiter](const serve::Response &response) {
            std::lock_guard<std::mutex> lock(waiter->mu);
            waiter->response = response;
            waiter->done = true;
            waiter->cv.notify_one();
        },
        deadline, &wire_id);
    if (status != serve::RequestStatus::Ok) {
        serve::Response response;
        response.status = status;
        return response;
    }
    std::unique_lock<std::mutex> lock(waiter->mu);
    if (deadline == serve::noDeadline()) {
        // The caller asked for no time limit; honor it.
        waiter->cv.wait(lock, [&] { return waiter->done; });
        return waiter->response;
    }
    serve::TimePoint give_up =
        deadline + std::chrono::duration_cast<
                       serve::ServeClock::duration>(
                       std::chrono::duration<double>(
                           options_.callGraceSeconds));
    if (waiter->cv.wait_until(lock, give_up,
                              [&] { return waiter->done; }))
        return waiter->response;
    lock.unlock();

    // The server blew through the deadline plus grace — likely
    // wedged. Reclaim the callback so the wait can end; if the
    // reader claimed it first, the response is instants away and we
    // wait for it (exactly-once either way).
    bool reclaimed;
    {
        std::lock_guard<std::mutex> clientLock(mu_);
        reclaimed = pending_.erase(wire_id) > 0;
    }
    if (!reclaimed) {
        std::unique_lock<std::mutex> relock(waiter->mu);
        waiter->cv.wait(relock, [&] { return waiter->done; });
        return waiter->response;
    }
    {
        std::lock_guard<std::mutex> statsLock(statsMu_);
        stats_.callTimeouts++;
    }
    serve::Response expired;
    expired.status = serve::RequestStatus::Expired;
    return expired;
}

void
Client::readerLoop(int fd)
{
    std::vector<uint8_t> buf;
    bool alive = true;
    while (alive) {
        uint8_t chunk[4096];
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        buf.insert(buf.end(), chunk, chunk + n);

        size_t offset = 0;
        while (offset < buf.size()) {
            wire::Frame frame;
            wire::DecodeResult result = wire::tryDecode(
                buf.data() + offset, buf.size() - offset, &frame);
            if (result.status == wire::DecodeStatus::NeedMore)
                break;
            if (result.status == wire::DecodeStatus::Malformed ||
                frame.type != wire::FrameType::Response) {
                alive = false; // Server spoke nonsense; hang up.
                break;
            }
            offset += result.consumed;

            serve::Callback done;
            {
                std::lock_guard<std::mutex> lock(mu_);
                auto it = pending_.find(frame.response.id);
                if (it != pending_.end()) {
                    done = std::move(it->second);
                    pending_.erase(it);
                }
            }
            if (done) {
                {
                    std::lock_guard<std::mutex> lock(statsMu_);
                    stats_.received++;
                }
                done(toResponse(frame.response));
            }
        }
        if (offset > 0)
            buf.erase(buf.begin(),
                      buf.begin() + static_cast<long>(offset));
    }
    disconnect(fd);
}

void
Client::disconnect(int fd)
{
    std::map<uint64_t, serve::Callback> orphans;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (fd_ != fd)
            return; // A newer generation owns the state.
        fd_ = -1;
        orphans.swap(pending_);
    }
    ::close(fd);
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        stats_.disconnects++;
        stats_.orphaned += orphans.size();
    }
    serve::Response failed;
    failed.status = serve::RequestStatus::Failed;
    for (auto &[id, done] : orphans)
        done(failed);
}

ClientStats
Client::stats() const
{
    std::lock_guard<std::mutex> lock(statsMu_);
    return stats_;
}

} // namespace nsbench::net
