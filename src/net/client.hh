/**
 * @file
 * Wire-protocol client: the other end of net/tcp_server.
 *
 * One Client owns one TCP connection (re-established on demand with
 * exponential backoff) and multiplexes any number of in-flight
 * requests over it, matched to callers by the request id. Two APIs,
 * mirroring serve::Server:
 *
 *  - submit(): async. Returns Ok iff the request was written to a
 *    handshaken connection, in which case the callback fires exactly
 *    once — with the server's response, or with status Failed if the
 *    connection dies first. A submit that cannot reach a server at
 *    all returns RejectedUnreachable and never calls back.
 *  - call(): blocking convenience wrapper over submit().
 *
 * Many threads may submit/call concurrently: writes serialize on a
 * send mutex (frames are small — well under one kernel buffer — so
 * a blocking sendAll holds it briefly), and a single reader thread
 * dispatches responses. This pipelines naturally: a closed-loop
 * client with N threads keeps N requests on the wire at once.
 *
 * RemoteTarget adapts a Client to serve::LoadTarget so the stock
 * load generator drives a remote server unchanged.
 */

#ifndef NSBENCH_NET_CLIENT_HH
#define NSBENCH_NET_CLIENT_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.hh"
#include "serve/loadgen.hh"
#include "serve/request.hh"

namespace nsbench::net
{

/** Connection knobs. */
struct ClientOptions
{
    std::string host = "127.0.0.1"; ///< Server address (IPv4).
    uint16_t port = 0;              ///< Server port.
    /** Model seed stamped on every request; 0 -> accept the server's
     *  default (the common case). */
    uint64_t modelSeed = 0;
    /** Connect attempts before reporting unreachable; each failed
     *  attempt backs off exponentially. */
    int connectAttempts = 10;
    double backoffInitialSeconds = 0.05; ///< First retry delay.
    double backoffMaxSeconds = 1.0;      ///< Backoff ceiling.
    /** Bound on waiting for the HelloAck after connecting. */
    double handshakeTimeoutSeconds = 5.0;
    /** Extra wait call() allows past the request deadline before it
     *  gives up on a wedged-but-connected server and synthesizes an
     *  Expired response (the server normally expires the request
     *  itself; the grace keeps the common path server-authoritative). */
    double callGraceSeconds = 1.0;
};

/** Point-in-time transport counters (client side). */
struct ClientStats
{
    uint64_t connects = 0;       ///< Successful connect+handshakes.
    uint64_t connectFailures = 0;///< Failed connect attempts.
    uint64_t sent = 0;           ///< Request frames written.
    uint64_t received = 0;       ///< Response frames matched.
    uint64_t disconnects = 0;    ///< Connections lost or closed.
    uint64_t orphaned = 0;       ///< In-flight requests failed by a
                                 ///< disconnect.
    uint64_t cancelsSent = 0;    ///< Cancel frames written (v2 peers).
    uint64_t callTimeouts = 0;   ///< call() waits that gave up and
                                 ///< synthesized Expired locally.
};

/**
 * Encodes an absolute deadline as the wire's relative microsecond
 * budget, as seen from @p now: noDeadline() -> 0 (no deadline), an
 * already-expired deadline -> 1 (the minimum budget, so the rejection
 * is the server's), and budgets beyond the u32 range (~71.6 minutes)
 * clamp to 0xffffffff. Pure — exposed for the wire boundary tests.
 */
uint32_t encodeDeadlineUs(serve::TimePoint deadline,
                          serve::TimePoint now);

class Client
{
  public:
    explicit Client(const ClientOptions &options);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Ensures a handshaken connection, dialing with backoff if
     * needed. Safe to skip: submit()/call() connect lazily.
     * @return true when connected.
     */
    bool connect();

    /** True while a handshaken connection is up. */
    bool connected() const;

    /**
     * Sends one request. @p deadline crosses the wire as a relative
     * microsecond budget (noDeadline() -> none), so client and
     * server clocks need not agree.
     */
    serve::RequestStatus submit(const std::string &workload,
                                uint64_t episodeSeed,
                                serve::Callback done,
                                serve::TimePoint deadline =
                                    serve::noDeadline());

    /**
     * submit() with an explicit model seed — the router forwards
     * each request's own seed rather than a per-client constant.
     * When @p wireId is non-null and the request was written, it
     * receives the connection-level correlation id, usable with
     * cancel() (0 when nothing was sent).
     */
    serve::RequestStatus submitSeeded(const std::string &workload,
                                      uint64_t episodeSeed,
                                      uint64_t modelSeed,
                                      serve::Callback done,
                                      serve::TimePoint deadline =
                                          serve::noDeadline(),
                                      uint64_t *wireId = nullptr);

    /**
     * Best-effort abandonment of an in-flight request by the wire id
     * submitSeeded() reported. Sends a Cancel frame when the peer
     * speaks protocol v2+ (no-op otherwise — old servers would treat
     * it as garbage). The request's callback still fires exactly
     * once: with the server's answer, its Canceled response, or
     * Failed on disconnect.
     */
    void cancel(uint64_t wireId);

    /** Protocol version the current connection's peer acked; 0 when
     *  disconnected. */
    uint16_t peerVersion() const;

    /**
     * Blocking submit; the returned status is the submit status or
     * the response's, whichever terminated the request. The wait is
     * bounded by @p deadline plus callGraceSeconds: if a connected
     * server never answers, call() reclaims the pending callback and
     * returns a synthesized Expired response instead of hanging
     * (with noDeadline() the wait is unbounded — the caller asked
     * for no time limit).
     */
    serve::Response call(const std::string &workload,
                         uint64_t episodeSeed,
                         serve::TimePoint deadline =
                             serve::noDeadline());

    /**
     * Closes the connection; every in-flight request fails with
     * status Failed. A later submit() reconnects.
     */
    void close();

    ClientStats stats() const;

  private:
    /** Dials + handshakes once; returns the fd or -1. On success
     *  @p ackedVersion receives the version the server acked. */
    int dial(uint16_t *ackedVersion);
    /** Fails all pending requests and tears the connection down. */
    void disconnect(int fd);
    void readerLoop(int fd);

    ClientOptions options_;

    mutable std::mutex mu_;    ///< Connection state + pending map.
    int fd_ = -1;              ///< -1 when disconnected.
    uint64_t generation_ = 0;  ///< Bumps on every (re)connect.
    uint16_t peerVersion_ = 0; ///< Acked version; 0 -> disconnected.
    uint64_t nextId_ = 1;
    std::map<uint64_t, serve::Callback> pending_;

    /** Serializes dialers and owns the thread handles below; never
     *  held while waiting on mu_'s owners. */
    std::mutex connectMu_;
    std::thread reader_;
    std::thread retiredReader_; ///< Previous generation, join lazily.

    std::mutex sendMu_;        ///< Serializes request writes.

    mutable std::mutex statsMu_;
    ClientStats stats_;
};

/**
 * serve::LoadTarget over a remote server. The workload list must be
 * supplied by the caller (the CLI's --workloads flag): a remote
 * client cannot introspect the server's registry, and the loadgen
 * needs the list up front to build its mix.
 */
class RemoteTarget : public serve::LoadTarget
{
  public:
    RemoteTarget(Client &client, std::vector<std::string> workloads)
        : client_(client), workloads_(std::move(workloads))
    {
    }

    std::vector<std::string>
    servedWorkloads() const override
    {
        return workloads_;
    }

    serve::RequestStatus
    submit(const std::string &workload, uint64_t seed,
           serve::Callback done, serve::TimePoint deadline) override
    {
        return client_.submit(workload, seed, std::move(done),
                              deadline);
    }

    serve::Response
    call(const std::string &workload, uint64_t seed,
         serve::TimePoint deadline) override
    {
        return client_.call(workload, seed, deadline);
    }

  private:
    Client &client_;
    std::vector<std::string> workloads_;
};

} // namespace nsbench::net

#endif // NSBENCH_NET_CLIENT_HH
