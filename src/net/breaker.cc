#include "net/breaker.hh"

namespace nsbench::net
{

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
    case BreakerState::Closed:
        return "closed";
    case BreakerState::Open:
        return "open";
    case BreakerState::HalfOpen:
        return "half_open";
    }
    return "unknown";
}

CircuitBreaker::CircuitBreaker(const BreakerOptions &options)
    : options_(options)
{
}

void
CircuitBreaker::observe(bool failed, double latencySeconds)
{
    double a = options_.alpha;
    if (samples_ == 0) {
        // Seed from the first outcome so the EWMAs are meaningful
        // immediately instead of climbing from zero for 1/alpha
        // samples.
        errorEwma_ = failed ? 1.0 : 0.0;
        latencyEwma_ = failed ? 0.0 : latencySeconds;
    } else {
        errorEwma_ += a * ((failed ? 1.0 : 0.0) - errorEwma_);
        if (!failed)
            latencyEwma_ += a * (latencySeconds - latencyEwma_);
    }
    samples_++;
}

void
CircuitBreaker::trip(int64_t nowUs)
{
    state_ = BreakerState::Open;
    openedAtUs_ = nowUs;
    probesInFlight_ = 0;
    opens_++;
}

void
CircuitBreaker::maybeHalfOpen(int64_t nowUs)
{
    if (state_ != BreakerState::Open)
        return;
    auto window =
        static_cast<int64_t>(options_.openSeconds * 1e6);
    if (nowUs - openedAtUs_ >= window) {
        state_ = BreakerState::HalfOpen;
        probesInFlight_ = 0;
    }
}

bool
CircuitBreaker::allow(int64_t nowUs)
{
    std::lock_guard<std::mutex> lock(mu_);
    maybeHalfOpen(nowUs);
    switch (state_) {
    case BreakerState::Closed:
        return true;
    case BreakerState::Open:
        return false;
    case BreakerState::HalfOpen:
        if (probesInFlight_ >= options_.halfOpenProbes)
            return false;
        probesInFlight_++;
        probes_++;
        return true;
    }
    return true;
}

void
CircuitBreaker::onSuccess(double latencySeconds,
                          double referenceSeconds, int64_t nowUs)
{
    std::lock_guard<std::mutex> lock(mu_);
    maybeHalfOpen(nowUs);

    bool tooSlow = referenceSeconds > 0.0 &&
                   latencySeconds >
                       options_.latencyFactor * referenceSeconds;

    if (state_ == BreakerState::HalfOpen) {
        if (probesInFlight_ > 0)
            probesInFlight_--;
        if (tooSlow) {
            // The probe answered, but still tail-latency-sick:
            // answering slowly is exactly what the breaker exists to
            // keep out of the ring.
            trip(nowUs);
            return;
        }
        // Recovered. The backend re-earns trust from a clean slate:
        // stale sick-era EWMAs must not trip it again instantly.
        state_ = BreakerState::Closed;
        errorEwma_ = 0.0;
        latencyEwma_ = latencySeconds;
        samples_ = 1;
        return;
    }

    observe(false, latencySeconds);
    if (state_ == BreakerState::Closed &&
        samples_ >= options_.minSamples && referenceSeconds > 0.0 &&
        latencyEwma_ >
            options_.latencyFactor * referenceSeconds)
        trip(nowUs);
}

void
CircuitBreaker::onFailure(int64_t nowUs)
{
    std::lock_guard<std::mutex> lock(mu_);
    maybeHalfOpen(nowUs);

    if (state_ == BreakerState::HalfOpen) {
        if (probesInFlight_ > 0)
            probesInFlight_--;
        trip(nowUs);
        return;
    }

    observe(true, 0.0);
    if (state_ == BreakerState::Closed &&
        samples_ >= options_.minSamples &&
        errorEwma_ > options_.errorThreshold)
        trip(nowUs);
}

void
CircuitBreaker::onUnreachable(int64_t nowUs)
{
    std::lock_guard<std::mutex> lock(mu_);
    maybeHalfOpen(nowUs);
    if (state_ == BreakerState::HalfOpen && probesInFlight_ > 0)
        probesInFlight_--;
    observe(true, 0.0);
    trip(nowUs);
}

BreakerState
CircuitBreaker::state(int64_t nowUs)
{
    std::lock_guard<std::mutex> lock(mu_);
    maybeHalfOpen(nowUs);
    return state_;
}

BreakerSnapshot
CircuitBreaker::snapshot(int64_t nowUs)
{
    std::lock_guard<std::mutex> lock(mu_);
    maybeHalfOpen(nowUs);
    BreakerSnapshot snap;
    snap.state = state_;
    snap.errorRate = errorEwma_;
    snap.latencySeconds = latencyEwma_;
    snap.samples = samples_;
    snap.opens = opens_;
    snap.probes = probes_;
    return snap;
}

} // namespace nsbench::net
