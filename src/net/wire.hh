/**
 * @file
 * The nsbench serving wire protocol.
 *
 * A versioned, length-prefixed binary framing for driving a
 * serve::Server over a byte stream. Every frame is
 *
 *     u32 bodyLength | u8 frameType | payload...
 *
 * with every integer little-endian on the wire regardless of host
 * order (explicit byte-at-a-time encode/decode, no struct punning).
 * Scores travel as the raw 8-byte IEEE-754 bit pattern of the double,
 * so a remote response is *byte-identical* to the in-process score —
 * the determinism contract survives the network hop.
 *
 * A connection opens with a handshake: the client sends Hello (magic
 * + protocol version), the server answers HelloAck or closes. After
 * the handshake the client sends Request frames and the server
 * answers one Response frame per request, matched by the
 * client-chosen request id; responses may arrive in any order
 * (pipelining).
 *
 * Decoding is defensive by construction: tryDecode() never reads past
 * the buffered bytes, rejects bodies above kMaxBody, and classifies
 * every violation as Malformed — the transport's contract is to close
 * such a connection, never to crash or hang (the `net` test tier
 * feeds a corpus of truncated/oversized/garbage frames to enforce
 * this).
 */

#ifndef NSBENCH_NET_WIRE_HH
#define NSBENCH_NET_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nsbench::net::wire
{

/** Handshake magic ("NSBW" little-endian). */
inline constexpr uint32_t kMagic = 0x5742534E;

/** Protocol version this library speaks. Version history:
 *   1 — Hello/HelloAck/Request/Response.
 *   2 — adds Cancel (client -> server, best-effort hedge pruning).
 * Handshakes accept any version in [kMinVersion, kVersion]; a peer
 * that acked version 1 is never sent Cancel frames. */
inline constexpr uint16_t kVersion = 2;

/** Oldest protocol version still accepted in a handshake. */
inline constexpr uint16_t kMinVersion = 1;

/** Hard upper bound on a frame body; larger lengths are malformed. */
inline constexpr uint32_t kMaxBody = 16 * 1024;

/** Longest accepted workload name on the wire. */
inline constexpr size_t kMaxWorkloadName = 256;

/** Frame discriminator (first body byte). */
enum class FrameType : uint8_t
{
    Hello = 1,    ///< Client -> server handshake open.
    HelloAck = 2, ///< Server -> client handshake accept.
    Request = 3,  ///< Client -> server inference request.
    Response = 4, ///< Server -> client completion record.
    Cancel = 5,   ///< Client -> server: abandon a request (v2+).
};

/** Handshake payload (both directions). */
struct HelloFrame
{
    uint32_t magic = kMagic;
    uint16_t version = kVersion;
};

/** Response flag bits (Response::flags). */
enum ResponseFlags : uint32_t
{
    kFlagCached = 1u << 0,    ///< Served from the result cache.
    kFlagStale = 1u << 1,     ///< Stale-cache fallback after failure.
    kFlagPipelined = 1u << 2, ///< Ran in a stage-pipelined batch.
};

/**
 * One inference request. The model seed is informational — a server
 * builds its replicas once at its own model seed; 0 means "whatever
 * the server was built with" and routers hash it for affinity.
 * The deadline is *relative* (microseconds from receipt; 0 = none)
 * so the protocol needs no clock synchronization.
 */
struct RequestFrame
{
    uint64_t id = 0;          ///< Client-chosen correlation id.
    uint64_t episodeSeed = 0; ///< Episode-stream seed to evaluate.
    uint64_t modelSeed = 0;   ///< 0 -> server default.
    uint32_t deadlineUs = 0;  ///< Relative deadline; 0 -> none.
    uint32_t flags = 0;       ///< Reserved; must echo as sent.
    std::string workload;     ///< Registered workload name.
};

/**
 * One completion record; mirrors serve::Response. `status` carries
 * the numeric value of serve::RequestStatus.
 */
struct ResponseFrame
{
    uint64_t id = 0;          ///< The request's correlation id.
    uint8_t status = 0;       ///< serve::RequestStatus value.
    uint64_t scoreBits = 0;   ///< Raw IEEE-754 bits of the score.
    double latencySeconds = 0.0;
    double queueSeconds = 0.0;
    double serviceSeconds = 0.0;
    double neuralSeconds = 0.0;
    double symbolicSeconds = 0.0;
    uint32_t batchSize = 0;
    uint32_t shared = 0;
    uint32_t retries = 0;
    uint32_t flags = 0;       ///< ResponseFlags bits.

    /** The score as a double, bit-exact. */
    double score() const;

    /** Stores @p value's bit pattern into scoreBits. */
    void setScore(double value);
};

/**
 * Best-effort abandonment of an earlier Request (hedged duplicates
 * that lost the race). The server may still answer the request —
 * cancellation is advisory, and the Cancel itself is never
 * acknowledged. Protocol version 2+.
 */
struct CancelFrame
{
    uint64_t id = 0; ///< Correlation id of the request to abandon.
};

/** A decoded frame: `type` selects which member is meaningful. */
struct Frame
{
    FrameType type = FrameType::Hello;
    HelloFrame hello;
    RequestFrame request;
    ResponseFrame response;
    CancelFrame cancel;
};

/** Outcome of one tryDecode() attempt. */
enum class DecodeStatus
{
    NeedMore,  ///< Buffer holds a frame prefix; read more bytes.
    Ok,        ///< One frame decoded; `consumed` bytes were used.
    Malformed, ///< Protocol violation; close the connection.
};

/** tryDecode() result: status plus bytes consumed on Ok. */
struct DecodeResult
{
    DecodeStatus status = DecodeStatus::NeedMore;
    size_t consumed = 0;
};

/** Appends an encoded Hello frame to @p out. */
void encodeHello(const HelloFrame &hello, std::vector<uint8_t> *out);

/** Appends an encoded HelloAck frame to @p out. */
void encodeHelloAck(const HelloFrame &hello,
                    std::vector<uint8_t> *out);

/** Appends an encoded Request frame to @p out. */
void encodeRequest(const RequestFrame &request,
                   std::vector<uint8_t> *out);

/** Appends an encoded Response frame to @p out. */
void encodeResponse(const ResponseFrame &response,
                    std::vector<uint8_t> *out);

/** Appends an encoded Cancel frame to @p out (protocol v2+). */
void encodeCancel(const CancelFrame &cancel,
                  std::vector<uint8_t> *out);

/**
 * Attempts to decode one frame from the front of
 * @p buffer[0..size). On Ok fills @p frame and reports how many
 * bytes the frame occupied; the caller erases them and calls again
 * (a read may have buffered several frames). Never reads past
 * @p size.
 */
DecodeResult tryDecode(const uint8_t *buffer, size_t size,
                       Frame *frame);

} // namespace nsbench::net::wire

#endif // NSBENCH_NET_WIRE_HH
