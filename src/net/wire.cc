#include "net/wire.hh"

#include <cstring>

namespace nsbench::net::wire
{

namespace
{

/** Little-endian append helpers (host-order independent). */
void
putU8(std::vector<uint8_t> *out, uint8_t value)
{
    out->push_back(value);
}

void
putU16(std::vector<uint8_t> *out, uint16_t value)
{
    out->push_back(static_cast<uint8_t>(value));
    out->push_back(static_cast<uint8_t>(value >> 8));
}

void
putU32(std::vector<uint8_t> *out, uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out->push_back(static_cast<uint8_t>(value >> shift));
}

void
putU64(std::vector<uint8_t> *out, uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out->push_back(static_cast<uint8_t>(value >> shift));
}

void
putF64(std::vector<uint8_t> *out, double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    putU64(out, bits);
}

/**
 * Bounds-checked little-endian reader over a frame body. Every get
 * reports failure instead of reading past the end; decoders check
 * ok() once at the end (failed gets return zeroes, which are then
 * discarded).
 */
class Cursor
{
  public:
    Cursor(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    uint8_t
    getU8()
    {
        if (!take(1))
            return 0;
        return data_[pos_ - 1];
    }

    uint16_t
    getU16()
    {
        if (!take(2))
            return 0;
        const uint8_t *p = data_ + pos_ - 2;
        return static_cast<uint16_t>(p[0] |
                                     (static_cast<uint16_t>(p[1])
                                      << 8));
    }

    uint32_t
    getU32()
    {
        if (!take(4))
            return 0;
        const uint8_t *p = data_ + pos_ - 4;
        uint32_t value = 0;
        for (int i = 3; i >= 0; i--)
            value = (value << 8) | p[i];
        return value;
    }

    uint64_t
    getU64()
    {
        if (!take(8))
            return 0;
        const uint8_t *p = data_ + pos_ - 8;
        uint64_t value = 0;
        for (int i = 7; i >= 0; i--)
            value = (value << 8) | p[i];
        return value;
    }

    double
    getF64()
    {
        uint64_t bits = getU64();
        double value = 0.0;
        std::memcpy(&value, &bits, sizeof value);
        return value;
    }

    std::string
    getString(size_t length)
    {
        if (!take(length))
            return {};
        return std::string(
            reinterpret_cast<const char *>(data_ + pos_ - length),
            length);
    }

    /** True iff no get ever ran past the end. */
    bool ok() const { return ok_; }

    /** True iff the body was consumed exactly (no trailing bytes). */
    bool exhausted() const { return ok_ && pos_ == size_; }

  private:
    bool
    take(size_t n)
    {
        if (!ok_ || size_ - pos_ < n) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/** Frames a finished body: length prefix + splice into @p out. */
void
frameBody(const std::vector<uint8_t> &body, std::vector<uint8_t> *out)
{
    putU32(out, static_cast<uint32_t>(body.size()));
    out->insert(out->end(), body.begin(), body.end());
}

void
encodeHelloBody(FrameType type, const HelloFrame &hello,
                std::vector<uint8_t> *out)
{
    std::vector<uint8_t> body;
    putU8(&body, static_cast<uint8_t>(type));
    putU32(&body, hello.magic);
    putU16(&body, hello.version);
    frameBody(body, out);
}

} // namespace

double
ResponseFrame::score() const
{
    double value = 0.0;
    std::memcpy(&value, &scoreBits, sizeof value);
    return value;
}

void
ResponseFrame::setScore(double value)
{
    std::memcpy(&scoreBits, &value, sizeof scoreBits);
}

void
encodeHello(const HelloFrame &hello, std::vector<uint8_t> *out)
{
    encodeHelloBody(FrameType::Hello, hello, out);
}

void
encodeHelloAck(const HelloFrame &hello, std::vector<uint8_t> *out)
{
    encodeHelloBody(FrameType::HelloAck, hello, out);
}

void
encodeRequest(const RequestFrame &request, std::vector<uint8_t> *out)
{
    std::vector<uint8_t> body;
    putU8(&body, static_cast<uint8_t>(FrameType::Request));
    putU64(&body, request.id);
    putU64(&body, request.episodeSeed);
    putU64(&body, request.modelSeed);
    putU32(&body, request.deadlineUs);
    putU32(&body, request.flags);
    putU16(&body, static_cast<uint16_t>(request.workload.size()));
    body.insert(body.end(), request.workload.begin(),
                request.workload.end());
    frameBody(body, out);
}

void
encodeResponse(const ResponseFrame &response,
               std::vector<uint8_t> *out)
{
    std::vector<uint8_t> body;
    putU8(&body, static_cast<uint8_t>(FrameType::Response));
    putU64(&body, response.id);
    putU8(&body, response.status);
    putU64(&body, response.scoreBits);
    putF64(&body, response.latencySeconds);
    putF64(&body, response.queueSeconds);
    putF64(&body, response.serviceSeconds);
    putF64(&body, response.neuralSeconds);
    putF64(&body, response.symbolicSeconds);
    putU32(&body, response.batchSize);
    putU32(&body, response.shared);
    putU32(&body, response.retries);
    putU32(&body, response.flags);
    frameBody(body, out);
}

void
encodeCancel(const CancelFrame &cancel, std::vector<uint8_t> *out)
{
    std::vector<uint8_t> body;
    putU8(&body, static_cast<uint8_t>(FrameType::Cancel));
    putU64(&body, cancel.id);
    frameBody(body, out);
}

DecodeResult
tryDecode(const uint8_t *buffer, size_t size, Frame *frame)
{
    if (size < 4)
        return {DecodeStatus::NeedMore, 0};
    uint32_t length = 0;
    for (int i = 3; i >= 0; i--)
        length = (length << 8) | buffer[i];
    // An empty body cannot even hold the type byte; an oversized one
    // is a length-bomb. Both are protocol violations, not short reads.
    if (length == 0 || length > kMaxBody)
        return {DecodeStatus::Malformed, 0};
    if (size - 4 < length)
        return {DecodeStatus::NeedMore, 0};

    Cursor cursor(buffer + 4, length);
    uint8_t type = cursor.getU8();
    switch (static_cast<FrameType>(type)) {
    case FrameType::Hello:
    case FrameType::HelloAck: {
        frame->type = static_cast<FrameType>(type);
        frame->hello.magic = cursor.getU32();
        frame->hello.version = cursor.getU16();
        break;
    }
    case FrameType::Request: {
        frame->type = FrameType::Request;
        RequestFrame &request = frame->request;
        request.id = cursor.getU64();
        request.episodeSeed = cursor.getU64();
        request.modelSeed = cursor.getU64();
        request.deadlineUs = cursor.getU32();
        request.flags = cursor.getU32();
        uint16_t nameLength = cursor.getU16();
        if (nameLength == 0 || nameLength > kMaxWorkloadName)
            return {DecodeStatus::Malformed, 0};
        request.workload = cursor.getString(nameLength);
        break;
    }
    case FrameType::Response: {
        frame->type = FrameType::Response;
        ResponseFrame &response = frame->response;
        response.id = cursor.getU64();
        response.status = cursor.getU8();
        response.scoreBits = cursor.getU64();
        response.latencySeconds = cursor.getF64();
        response.queueSeconds = cursor.getF64();
        response.serviceSeconds = cursor.getF64();
        response.neuralSeconds = cursor.getF64();
        response.symbolicSeconds = cursor.getF64();
        response.batchSize = cursor.getU32();
        response.shared = cursor.getU32();
        response.retries = cursor.getU32();
        response.flags = cursor.getU32();
        break;
    }
    case FrameType::Cancel: {
        frame->type = FrameType::Cancel;
        frame->cancel.id = cursor.getU64();
        break;
    }
    default:
        return {DecodeStatus::Malformed, 0};
    }
    // A frame whose fields ran short, or whose body carries trailing
    // junk, is malformed — exact framing is part of the contract.
    if (!cursor.exhausted())
        return {DecodeStatus::Malformed, 0};
    return {DecodeStatus::Ok, 4 + static_cast<size_t>(length)};
}

} // namespace nsbench::net::wire
