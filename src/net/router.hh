/**
 * @file
 * Sharded request router over the wire protocol.
 *
 * A Router is a FrameServer (same protocol as the serve front end —
 * clients cannot tell the difference) whose handler forwards each
 * request to one of N backend servers and relays the response. The
 * pieces:
 *
 *  - Consistent-hash placement: a ring of virtual nodes (FNV-1a 64,
 *    `virtualNodes` points per backend) keyed by (workload,
 *    modelSeed, episodeSeed). The same request always lands on the
 *    same backend, so each backend's result cache and single-flight
 *    table see the full repeat-rate of their key range — sharding
 *    multiplies cache capacity instead of diluting hit rate. Adding
 *    or losing a backend remaps only the ring arcs it owned.
 *
 *  - Health: a per-backend circuit breaker (net/breaker.hh). An
 *    unreachable submit trips it instantly (the old binary
 *    down-marking, preserved for dead backends); error-rate and
 *    latency EWMAs trip it for the subtler slow-not-dead case, where
 *    a backend answers everything but at a multiple of its peers'
 *    latency. An open breaker is walked past on the ring like a
 *    saturated backend; after `retryDownSeconds` it admits bounded
 *    half-open probes that decide recovery. The latency reference a
 *    backend is judged against is the smallest latency EWMA among
 *    the *other* backends — the healthiest peer — so one sick shard
 *    cannot drag the yardstick up with it.
 *
 *  - Hedging: when a forwarded request is still unanswered after the
 *    workload's tracked p95 latency, the router re-issues it to the
 *    next distinct ring backend. First response wins and is relayed
 *    (safe: the determinism contract makes both answers
 *    byte-identical); the loser is pruned from its backend's queue
 *    with a wire Cancel frame. Hedges are budgeted: at most
 *    `hedgeBudget` (default 5%) extra load on top of primary
 *    forwards, and hedging stays off for a workload until
 *    `hedgeMinSamples` completions have made its p95 trustworthy.
 *    Exactly-once relay is a first-writer-wins flag on the relay
 *    state; the losing completion only feeds health counters.
 *
 *  - Backpressure: at most `maxInflightPerBackend` forwarded
 *    requests per backend; a saturated backend is walked past like
 *    an open-breaker one. When every backend is open or saturated
 *    the router sheds with RejectedUnreachable — it never queues.
 *
 * The router keeps its own ServerMetrics: transport counters from
 * its FrameServer, per-workload offered/rejected/latency from the
 * relay path, so `nsbench route` prints the standard tables.
 */

#ifndef NSBENCH_NET_ROUTER_HH
#define NSBENCH_NET_ROUTER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "net/breaker.hh"
#include "net/client.hh"
#include "net/tcp_server.hh"
#include "serve/metrics.hh"
#include "util/format.hh"
#include "util/stats.hh"

namespace nsbench::net
{

/** Router configuration. */
struct RouterOptions
{
    FrameServerOptions listen;          ///< Front-end bind address.
    std::vector<std::string> backends;  ///< "host:port" per shard.
    int virtualNodes = 64;              ///< Ring points per backend.
    uint64_t maxInflightPerBackend = 256; ///< Backpressure cap.
    /** Open-breaker window: how long a tripped backend is walked
     *  past before half-open probes test it again. */
    double retryDownSeconds = 1.0;
    /** Breaker thresholds (openSeconds is overridden by
     *  retryDownSeconds above — one knob, not two). */
    BreakerOptions breaker;
    /** Master switch for hedged requests. */
    bool hedging = true;
    /** Completions a workload needs before its p95 is trusted as a
     *  hedge delay. Below this, no hedges are issued for it. */
    uint64_t hedgeMinSamples = 32;
    /** Clamp on the tracked-p95 hedge delay. The floor keeps
     *  microsecond-fast workloads from hedging everything; the
     *  ceiling keeps one pathological tail sample from disabling
     *  hedging outright. */
    double hedgeMinDelaySeconds = 0.001;
    double hedgeMaxDelaySeconds = 1.0;
    /** Hedge budget as a fraction of primary forwards: hedges are
     *  denied once hedgesSent exceeds this share (≤5% extra load at
     *  the default). */
    double hedgeBudget = 0.05;
    /**
     * Template for backend connections. connectAttempts is forced to
     * 1: forwarding runs on the event-loop thread, so reconnect
     * patience is traded for fast failover (the breaker's open
     * window provides the backoff instead).
     */
    ClientOptions clientTemplate;
};

/** Point-in-time per-backend counters. */
struct BackendStats
{
    std::string endpoint;      ///< "host:port".
    bool down = false;         ///< Breaker not Closed.
    std::string breakerState;  ///< "closed" / "open" / "half_open".
    double errorRate = 0.0;    ///< Breaker error EWMA, [0, 1].
    double latencySeconds = 0.0; ///< Breaker latency EWMA.
    uint64_t inflight = 0;     ///< Forwarded, not yet answered.
    uint64_t forwarded = 0;    ///< Requests sent to this backend.
    uint64_t hedges = 0;       ///< Hedge re-issues sent to it.
    uint64_t hedgeWins = 0;    ///< Hedges it answered first.
    uint64_t cancels = 0;      ///< Cancel frames sent to it.
    uint64_t failovers = 0;    ///< Requests rerouted *away* from it.
    uint64_t saturated = 0;    ///< Walk-pasts due to the cap.
    uint64_t downMarks = 0;    ///< Breaker trips (-> Open).
    uint64_t probes = 0;       ///< Half-open probes admitted.
};

/** Router-wide tail-tolerance counters. */
struct HedgeStats
{
    uint64_t hedgesSent = 0;   ///< Hedge re-issues written.
    uint64_t hedgesWon = 0;    ///< Hedges that answered first.
    uint64_t hedgesDenied = 0; ///< Due hedges dropped by the budget.
    uint64_t cancelsSent = 0;  ///< Cancel frames sent to losers.
};

class Router
{
  public:
    /** Binds, connects nothing yet (backends dial lazily), serves. */
    explicit Router(const RouterOptions &options);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** The bound front-end port. */
    uint16_t port() const { return frames_->port(); }

    /** Graceful drain of the front end; idempotent. */
    void shutdown();

    /** Relay + transport metrics (standard serve tables). */
    serve::ServerMetrics &metrics() { return metrics_; }

    std::vector<BackendStats> backendStats() const;

    HedgeStats hedgeStats() const;

    /** One row per backend, for the CLI report. */
    util::Table backendTable() const;

    /**
     * The per-backend health as a JSON array — one object per
     * backend with endpoint, breaker state/EWMAs and the forwarding
     * counters. Embedded by `route --json` and pinned by the tail
     * tier's reporting test.
     */
    std::string backendJson() const;

    /**
     * Ring lookup without forwarding: the backend index that
     * (workload, modelSeed, episodeSeed) maps to when every backend
     * is healthy. Exposed for the placement tests.
     */
    size_t shardOf(const std::string &workload, uint64_t modelSeed,
                   uint64_t episodeSeed) const;

  private:
    struct Backend
    {
        std::string endpoint;
        std::atomic<uint64_t> inflight{0};
        std::atomic<uint64_t> forwarded{0};
        std::atomic<uint64_t> hedges{0};
        std::atomic<uint64_t> hedgeWins{0};
        std::atomic<uint64_t> cancels{0};
        std::atomic<uint64_t> failovers{0};
        std::atomic<uint64_t> saturated{0};

        CircuitBreaker breaker;

        /** Declared last: destroyed first, so callbacks fired while
         *  the client's destructor fails its in-flight requests can
         *  still touch the counters above. */
        std::unique_ptr<Client> client;

        explicit Backend(const BreakerOptions &options)
            : breaker(options)
        {
        }
    };

    /** One submission attempt (primary or hedge). The wire id is
     *  filled in by sendTo after the frame is written; an attempt is
     *  only published to Relay::attempts once it is valid. */
    struct Attempt
    {
        size_t backend = 0;
        uint64_t wireId = 0;
        bool hedge = false;
    };

    /**
     * Shared state of one front-end request being relayed. The
     * primary completion, the hedge completion and the hedge timer
     * all hold a shared_ptr; `responded` is the first-writer-wins
     * guard that keeps the front-end response exactly-once.
     */
    struct Relay
    {
        FrameServer::SessionPtr session;
        uint64_t id = 0;
        std::string workload;
        uint64_t episodeSeed = 0;
        uint64_t modelSeed = 0;
        serve::TimePoint deadline;
        std::vector<size_t> candidates; ///< Ring walk order.

        std::atomic<bool> responded{false};
        std::mutex mu; ///< Guards attempts.
        std::vector<std::shared_ptr<Attempt>> attempts;
    };
    using RelayPtr = std::shared_ptr<Relay>;

    void handle(const FrameServer::SessionPtr &session,
                const wire::RequestFrame &request);
    /** Ring walk: distinct backend indices in preference order. */
    std::vector<size_t> candidatesFor(uint64_t keyHash) const;

    /**
     * Submits @p relay to backend @p index. Ok means the request is
     * on the wire and its completion owns the relay bookkeeping;
     * RejectedUnreachable means the breaker was fed and the caller
     * should walk on; anything else is the backend's verdict.
     */
    serve::RequestStatus sendTo(const RelayPtr &relay, size_t index,
                                bool hedge);
    /** Completion of one attempt (runs on a client reader thread). */
    void complete(const RelayPtr &relay,
                  const std::shared_ptr<Attempt> &attempt,
                  std::chrono::steady_clock::time_point sentAt,
                  const serve::Response &response);
    /** Sends Cancel frames for every attempt except @p winner. */
    void cancelLosers(const RelayPtr &relay, const Attempt *winner);

    /**
     * Re-issues @p relay to the next untried, admissible ring
     * candidate. Shared by the hedge timer (extra attempt while the
     * primary is slow) and the Failed-completion failover (the
     * connection died under the request). True when a send stuck.
     */
    bool retryElsewhere(const RelayPtr &relay, bool hedge);

    /** Queues a hedge timer for @p relay when hedging applies. */
    void scheduleHedge(const RelayPtr &relay);
    /** The hedge timer thread body. */
    void hedgeLoop();
    /** Fires one due hedge: budget check, pick a backend, send. */
    void fireHedge(const RelayPtr &relay);

    /** Smallest latency EWMA among backends other than @p self —
     *  the healthy-peer yardstick fed to the breaker (0 when there
     *  is no peer with samples, which disables the latency trip). */
    double referenceLatency(size_t self) const;

    /** Microseconds on the steady clock — the breaker time base. */
    static int64_t nowUs();

    RouterOptions options_;
    serve::ServerMetrics metrics_;
    std::vector<std::unique_ptr<Backend>> backends_;
    /** (point hash, backend index), sorted by hash. Immutable after
     *  construction, so lookups are lock-free. */
    std::vector<std::pair<uint64_t, size_t>> ring_;

    std::atomic<uint64_t> primaryForwarded_{0};
    std::atomic<uint64_t> hedgesSent_{0};
    std::atomic<uint64_t> hedgesWon_{0};
    std::atomic<uint64_t> hedgesDenied_{0};
    std::atomic<uint64_t> cancelsSent_{0};

    /** Per-workload completion-latency p95 (hedge delay source). */
    mutable std::mutex latencyMu_;
    std::map<std::string, util::P2Quantile> latency_;

    /** Hedge timer: min-heap of (fire time, relay), one thread. */
    struct HedgeEntry
    {
        std::chrono::steady_clock::time_point at;
        std::weak_ptr<Relay> relay;
        bool operator>(const HedgeEntry &other) const
        {
            return at > other.at;
        }
    };
    std::mutex hedgeMu_;
    std::condition_variable hedgeCv_;
    bool hedgeStop_ = false;
    std::priority_queue<HedgeEntry, std::vector<HedgeEntry>,
                        std::greater<HedgeEntry>>
        hedgeQueue_;
    std::thread hedgeThread_;
    std::once_flag hedgeJoinOnce_;

    std::unique_ptr<FrameServer> frames_;
};

} // namespace nsbench::net

#endif // NSBENCH_NET_ROUTER_HH
