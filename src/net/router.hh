/**
 * @file
 * Sharded request router over the wire protocol.
 *
 * A Router is a FrameServer (same protocol as the serve front end —
 * clients cannot tell the difference) whose handler forwards each
 * request to one of N backend servers and relays the response. The
 * pieces:
 *
 *  - Consistent-hash placement: a ring of virtual nodes (FNV-1a 64,
 *    `virtualNodes` points per backend) keyed by (workload,
 *    modelSeed, episodeSeed). The same request always lands on the
 *    same backend, so each backend's result cache and single-flight
 *    table see the full repeat-rate of their key range — sharding
 *    multiplies cache capacity instead of diluting hit rate. Adding
 *    or losing a backend remaps only the ring arcs it owned.
 *
 *  - Health: a backend whose submit reports unreachable is marked
 *    down and skipped for `retryDownSeconds`, after which the next
 *    request probes it again (the client redials lazily). Requests
 *    for a down backend fail over to the next distinct backend on
 *    the ring walk — a stable secondary, so failover traffic is
 *    itself cache-friendly.
 *
 *  - Backpressure: at most `maxInflightPerBackend` forwarded
 *    requests per backend; a saturated backend is walked past like
 *    a down one. When every backend is down or saturated the router
 *    sheds with RejectedUnreachable — it never queues.
 *
 * The router keeps its own ServerMetrics: transport counters from
 * its FrameServer, per-workload offered/rejected/latency from the
 * relay path, so `nsbench route` prints the standard tables.
 */

#ifndef NSBENCH_NET_ROUTER_HH
#define NSBENCH_NET_ROUTER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/client.hh"
#include "net/tcp_server.hh"
#include "serve/metrics.hh"
#include "util/format.hh"

namespace nsbench::net
{

/** Router configuration. */
struct RouterOptions
{
    FrameServerOptions listen;          ///< Front-end bind address.
    std::vector<std::string> backends;  ///< "host:port" per shard.
    int virtualNodes = 64;              ///< Ring points per backend.
    uint64_t maxInflightPerBackend = 256; ///< Backpressure cap.
    double retryDownSeconds = 1.0;      ///< Down-backend probe period.
    /**
     * Template for backend connections. connectAttempts is forced to
     * 1: forwarding runs on the event-loop thread, so reconnect
     * patience is traded for fast failover (the down/retry cycle
     * provides the backoff instead).
     */
    ClientOptions clientTemplate;
};

/** Point-in-time per-backend counters. */
struct BackendStats
{
    std::string endpoint;      ///< "host:port".
    bool down = false;         ///< Currently marked unreachable.
    uint64_t inflight = 0;     ///< Forwarded, not yet answered.
    uint64_t forwarded = 0;    ///< Requests sent to this backend.
    uint64_t failovers = 0;    ///< Requests rerouted *away* from it.
    uint64_t saturated = 0;    ///< Walk-pasts due to the cap.
    uint64_t downMarks = 0;    ///< Times marked down.
};

class Router
{
  public:
    /** Binds, connects nothing yet (backends dial lazily), serves. */
    explicit Router(const RouterOptions &options);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** The bound front-end port. */
    uint16_t port() const { return frames_->port(); }

    /** Graceful drain of the front end; idempotent. */
    void shutdown();

    /** Relay + transport metrics (standard serve tables). */
    serve::ServerMetrics &metrics() { return metrics_; }

    std::vector<BackendStats> backendStats() const;

    /** One row per backend, for the CLI report. */
    util::Table backendTable() const;

    /**
     * Ring lookup without forwarding: the backend index that
     * (workload, modelSeed, episodeSeed) maps to when every backend
     * is healthy. Exposed for the placement tests.
     */
    size_t shardOf(const std::string &workload, uint64_t modelSeed,
                   uint64_t episodeSeed) const;

  private:
    struct Backend
    {
        std::string endpoint;
        std::atomic<uint64_t> inflight{0};
        std::atomic<uint64_t> forwarded{0};
        std::atomic<uint64_t> failovers{0};
        std::atomic<uint64_t> saturated{0};
        std::atomic<uint64_t> downMarks{0};

        std::mutex mu; ///< Guards the health fields below.
        bool down = false;
        std::chrono::steady_clock::time_point retryAt{};

        /** Declared last: destroyed first, so callbacks fired while
         *  the client's destructor fails its in-flight requests can
         *  still touch the counters above. */
        std::unique_ptr<Client> client;
    };

    void handle(const FrameServer::SessionPtr &session,
                const wire::RequestFrame &request);
    /** Ring walk: distinct backend indices in preference order. */
    std::vector<size_t> candidatesFor(uint64_t keyHash) const;
    /** True when the backend may take a request right now. */
    bool eligible(Backend &backend) const;
    void markDown(Backend &backend);

    RouterOptions options_;
    serve::ServerMetrics metrics_;
    std::vector<std::unique_ptr<Backend>> backends_;
    /** (point hash, backend index), sorted by hash. Immutable after
     *  construction, so lookups are lock-free. */
    std::vector<std::pair<uint64_t, size_t>> ring_;
    std::unique_ptr<FrameServer> frames_;
};

} // namespace nsbench::net

#endif // NSBENCH_NET_ROUTER_HH
