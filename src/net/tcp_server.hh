/**
 * @file
 * Epoll-based TCP front end for the serving runtime.
 *
 * Two layers:
 *
 *  - FrameServer: the transport. One event-loop thread owns a
 *    listening socket, an epoll set and the per-connection state
 *    machines (nonblocking sockets, buffered partial reads/writes,
 *    handshake validation, bounds-checked frame decode). Every
 *    decoded request frame is handed to a caller-supplied handler
 *    together with a Session handle whose respond() is safe to call
 *    from any thread at any later time — serve worker threads
 *    complete requests long after the loop has moved on.
 *
 *  - TcpServer: the binding. Forwards each decoded request into
 *    serve::Server::submit and streams the response frame back from
 *    the server's completion callback. Transport counters (accepted
 *    connections, bytes, frames, malformed input) fold into the
 *    server's ServerMetrics so `nsbench serve` prints one unified
 *    report.
 *
 * The router reuses FrameServer with its own handler, which is why
 * the transport takes an explicit ServerMetrics rather than a
 * serve::Server.
 *
 * Threading contract: sockets are read, decoded and closed only on
 * the loop thread. respond() from other threads appends to the
 * connection's write buffer under its mutex and wakes the loop via
 * an eventfd; the loop performs the actual send. A connection that
 * dies with responses still in flight simply drops them — the
 * client sees the close and fails its pending requests itself.
 *
 * Shutdown drains: stop accepting, reject new request frames with
 * RejectedShutdown, wait (bounded) for in-flight requests to respond
 * and write buffers to flush, then close everything.
 */

#ifndef NSBENCH_NET_TCP_SERVER_HH
#define NSBENCH_NET_TCP_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.hh"
#include "serve/metrics.hh"
#include "serve/server.hh"

namespace nsbench::net
{

/** Transport knobs, shared by the serve front end and the router. */
struct FrameServerOptions
{
    std::string host = "127.0.0.1"; ///< Bind address (IPv4 dotted).
    uint16_t port = 0;              ///< 0 -> kernel-assigned port.
    int backlog = 128;              ///< listen() backlog.
    /** Shutdown drain bound: how long to wait for in-flight requests
     *  to complete and write buffers to empty before closing. */
    double drainSeconds = 5.0;
};

/**
 * The generic length-prefixed-frame transport: accept loop, epoll
 * event loop, per-connection read/write buffering and wire decode.
 * Construction binds, listens and starts the loop thread; requests
 * are delivered to the handler on the loop thread.
 */
class FrameServer
{
  public:
    class Session;
    using SessionPtr = std::shared_ptr<Session>;

    /**
     * Called on the loop thread for every well-formed request frame
     * on a handshaken connection. Must not block: dispatch to worker
     * threads and call session->respond() when done (immediately is
     * fine too — respond() from the handler itself is supported).
     */
    using Handler =
        std::function<void(const SessionPtr &, const wire::RequestFrame &)>;

    /**
     * Called on the loop thread for every Cancel frame from a v2+
     * client. Advisory: the handler prunes the request if it can and
     * does nothing otherwise; Cancel is never acknowledged. A null
     * handler ignores Cancel frames (they are still well-formed).
     */
    using CancelHandler =
        std::function<void(const SessionPtr &, uint64_t id)>;

    /** One accepted connection; hand out via shared_ptr so worker
     *  callbacks can outlive the socket safely. */
    class Session : public std::enable_shared_from_this<Session>
    {
      public:
        /**
         * Queues @p frame for transmission and wakes the loop.
         * Thread-safe; callable exactly once per delivered request
         * (the in-flight accounting that shutdown's drain waits on
         * is balanced by this call). Responding on a connection that
         * already closed is a silent no-op.
         */
        void respond(const wire::ResponseFrame &frame);

      private:
        friend class FrameServer;

        explicit Session(int fd) : fd_(fd) {}

        int fd_;                       ///< Loop thread only.
        bool handshaken_ = false;      ///< Loop thread only.
        uint16_t version_ = 0;         ///< Negotiated; loop thread only.
        std::vector<uint8_t> in_;      ///< Loop thread only.

        std::mutex mu_;                ///< Guards the fields below.
        bool closed_ = false;          ///< Socket gone; drop output.
        std::vector<uint8_t> out_;     ///< Pending bytes to send.
        size_t outOffset_ = 0;         ///< Sent prefix of out_.
        uint64_t inflight_ = 0;        ///< Delivered, not responded.

        FrameServer *server_ = nullptr;///< For respond() wakeups.
    };

    /**
     * Binds @p options.host:port, starts listening and launches the
     * event-loop thread. Dies (fatal) if the socket setup fails —
     * a front end that cannot bind has nothing to offer.
     */
    FrameServer(const FrameServerOptions &options, Handler handler,
                serve::ServerMetrics &metrics,
                CancelHandler cancelHandler = nullptr);

    /** Drains and joins the loop (idempotent). */
    ~FrameServer();

    FrameServer(const FrameServer &) = delete;
    FrameServer &operator=(const FrameServer &) = delete;

    /** The bound TCP port (resolves port 0 to the kernel's pick). */
    uint16_t port() const { return port_; }

    /**
     * Graceful stop: closes the listener, answers further request
     * frames with RejectedShutdown, waits up to drainSeconds for
     * in-flight requests and queued output, closes all connections
     * and joins the loop thread. Idempotent, callable from any
     * thread except the loop itself.
     */
    void shutdown();

  private:
    void loop();
    void handleAccept();
    void handleReadable(const SessionPtr &session);
    void handleWritable(const SessionPtr &session);
    void handleFrame(const SessionPtr &session, const wire::Frame &frame);
    /** Flushes queued output; returns false if the send failed. */
    bool flushSession(const SessionPtr &session);
    void closeSession(const SessionPtr &session);
    void drainFlushQueue();
    void updateWriteInterest(const SessionPtr &session);
    /** Called by Session::respond() to schedule a flush. */
    void requestFlush(const SessionPtr &session);
    void wake();
    /** True when every session is idle (no inflight, no output). */
    bool drained();

    FrameServerOptions options_;
    Handler handler_;
    CancelHandler cancelHandler_;
    serve::ServerMetrics &metrics_;

    int listenFd_ = -1;
    int epollFd_ = -1;
    int wakeFd_ = -1;
    uint16_t port_ = 0;

    std::atomic<bool> stopping_{false};

    std::mutex flushMu_;
    std::vector<std::weak_ptr<Session>> flushQueue_;

    /** Loop thread only: fd -> session. */
    std::map<int, SessionPtr> sessions_;

    std::thread loopThread_;
    std::once_flag shutdownOnce_;
};

/**
 * The serving front end: a FrameServer whose handler submits into a
 * serve::Server and responds from its completion callbacks. The
 * server outlives the front end; its metrics absorb the transport
 * counters.
 */
class TcpServer
{
  public:
    explicit TcpServer(serve::Server &server,
                       const FrameServerOptions &options = {});

    /** The bound TCP port. */
    uint16_t port() const { return frames_->port(); }

    /** Graceful drain; idempotent (also runs on destruction). */
    void shutdown() { frames_->shutdown(); }

  private:
    void handle(const FrameServer::SessionPtr &session,
                const wire::RequestFrame &request);
    void handleCancel(const FrameServer::SessionPtr &session,
                      uint64_t id);

    /**
     * In-flight cancel tokens keyed by (session, wire request id).
     * Inserted before submit, erased by the completion callback, so
     * a Cancel frame can find its request without any id-allocation
     * race. Shared with the callbacks: the serve::Server outlives
     * this front end and may complete requests after it is gone.
     */
    struct LiveRequests
    {
        std::mutex mu;
        std::map<std::pair<const void *, uint64_t>,
                 serve::CancelToken>
            tokens;
    };

    serve::Server &server_;
    std::shared_ptr<LiveRequests> live_;
    std::unique_ptr<FrameServer> frames_;
};

} // namespace nsbench::net

#endif // NSBENCH_NET_TCP_SERVER_HH
